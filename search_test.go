package rprism

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/subjects"
)

// searchCorpus builds a store of families×variants generated traces and
// returns the engine plus the digest of one member.
func searchCorpus(t *testing.T, families, variants, n int) (*Engine, Digest) {
	t.Helper()
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var query Digest
	for fam := 1; fam <= families; fam++ {
		for v := 0; v < variants; v++ {
			id, _, err := store.Put(subjects.GenCorpusTrace(fam, v, n))
			if err != nil {
				t.Fatal(err)
			}
			if fam == 1 && v == 0 {
				query = id
			}
		}
	}
	return NewEngine(WithCorpus(store)), query
}

// TestSearchPrunedMatchesExhaustive is the acceptance property: the
// sketch-pruned top-K is identical to the exhaustive all-pairs scan —
// for nearest and farthest ranking, at every parallelism.
func TestSearchPrunedMatchesExhaustive(t *testing.T) {
	eng, query := searchCorpus(t, 4, 6, 200)
	ctx := context.Background()
	for _, farthest := range []bool{false, true} {
		var want []SearchHit
		for _, par := range []int{1, 2, 4} {
			for _, exhaustive := range []bool{true, false} {
				res, err := eng.Search(ctx, FromCorpus(query), SearchOptions{
					K: 5, Farthest: farthest, Exhaustive: exhaustive,
					Diff: DiffOptions{Parallelism: par},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Hits) != 5 {
					t.Fatalf("got %d hits, want 5", len(res.Hits))
				}
				if exhaustive && res.Pruned != 0 {
					t.Errorf("exhaustive run pruned %d candidates", res.Pruned)
				}
				if want == nil {
					want = res.Hits
				} else if !reflect.DeepEqual(res.Hits, want) {
					t.Errorf("farthest=%v par=%d exhaustive=%v: hits differ from baseline\ngot  %+v\nwant %+v",
						farthest, par, exhaustive, res.Hits, want)
				}
			}
		}
	}
}

func TestSearchPrunesAndRanksByFamily(t *testing.T) {
	eng, query := searchCorpus(t, 4, 6, 200)
	res, err := eng.Search(context.Background(), FromCorpus(query), SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus != 23 { // 24 stored minus the query itself
		t.Errorf("Corpus = %d, want 23", res.Corpus)
	}
	if res.Pruned == 0 {
		t.Error("nearest search pruned nothing on a clearly clustered corpus")
	}
	if res.Evaluated+res.Pruned != res.Corpus {
		t.Errorf("Evaluated %d + Pruned %d != Corpus %d", res.Evaluated, res.Pruned, res.Corpus)
	}
	// The query is fam1-var0; its 5 nearest must be the other fam1
	// variants (cross-family traces share no vocabulary at all).
	for _, h := range res.Hits {
		if !strings.HasPrefix(h.Name, "fam01-") {
			t.Errorf("nearest hit %s is not from the query's family", h.Name)
		}
	}
}

func TestSearchFromExternalTraceAndPrefix(t *testing.T) {
	eng, query := searchCorpus(t, 2, 3, 120)
	ctx := context.Background()
	// An in-memory query that matches nothing stored byte-for-byte.
	ext, err := eng.Search(ctx, FromTrace(subjects.GenCorpusTrace(1, 99, 120)), SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Corpus != 6 || len(ext.Hits) != 2 {
		t.Fatalf("external query: corpus %d hits %d", ext.Corpus, len(ext.Hits))
	}
	// A short digest prefix resolves like git.
	pre, err := eng.Search(ctx, FromCorpusID(query.String()[:10]), SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Query != query.String() {
		t.Errorf("prefix query resolved to %s, want %s", pre.Query, query.String())
	}
}

func TestSearchWithoutCorpusFails(t *testing.T) {
	eng := NewEngine()
	_, err := eng.Search(context.Background(), FromCorpusID("abcd"), SearchOptions{})
	if err == nil || !strings.Contains(err.Error(), "WithCorpus") {
		t.Errorf("err = %v, want a WithCorpus diagnosis", err)
	}
}

func TestSearchAnalysisRegistered(t *testing.T) {
	eng, query := searchCorpus(t, 2, 3, 100)
	params, _ := json.Marshal(map[string]any{"k": 3})
	out, err := eng.RunAnalysis(context.Background(), "search", AnalysisRequest{
		Sources: map[string]Source{"query": FromCorpus(query)},
		Params:  params,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out.(*SearchResult)
	if !ok {
		t.Fatalf("search analysis returned %T", out)
	}
	if res.K != 3 || len(res.Hits) != 3 {
		t.Errorf("result = %+v", res)
	}
	if _, err := eng.RunAnalysis(context.Background(), "search", AnalysisRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("missing query role: err = %v, want ErrBadRequest", err)
	}
}

func TestClusterCorpus(t *testing.T) {
	eng, _ := searchCorpus(t, 3, 4, 150)
	res, err := eng.ClusterCorpus(context.Background(), ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != 12 || res.Threshold != 0.5 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Clusters) != 3 || res.Singletons != 0 {
		t.Fatalf("got %d clusters (%d singletons), want 3 family clusters", len(res.Clusters), res.Singletons)
	}
	for _, c := range res.Clusters {
		if c.Size != 4 || len(c.Members) != 4 {
			t.Errorf("cluster size %d, want 4", c.Size)
		}
		fam := c.Members[0].Name[:5]
		for _, m := range c.Members {
			if m.Name[:5] != fam {
				t.Errorf("cluster mixes families: %+v", c.Members)
			}
		}
	}
	if res.Index.Sketches != 12 {
		t.Errorf("index stats = %+v", res.Index)
	}
	// Registry dispatch with a custom threshold.
	params, _ := json.Marshal(map[string]float64{"threshold": 0.99})
	out, err := eng.RunAnalysis(context.Background(), "cluster", AnalysisRequest{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	strict := out.(*ClusterResult)
	if len(strict.Clusters) <= 3 {
		t.Errorf("threshold 0.99 should shatter the family clusters, got %d", len(strict.Clusters))
	}
}

func TestSearchRaceUnderSharedEngine(t *testing.T) {
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var query Digest
	for fam := 1; fam <= 2; fam++ {
		for v := 0; v < 4; v++ {
			id, _, err := store.Put(subjects.GenCorpusTrace(fam, v, 100))
			if err != nil {
				t.Fatal(err)
			}
			if fam == 1 && v == 0 {
				query = id
			}
		}
	}
	eng2 := NewEngine(WithCorpus(store), WithWorkers(3))
	ctx := context.Background()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := eng2.Search(ctx, FromCorpus(query), SearchOptions{K: 3, Diff: DiffOptions{Parallelism: 2}})
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
