package main

import (
	"errors"
	"fmt"
	"os"

	rprism "repro"
	"repro/internal/trace"
)

// loadTraceFile loads a trace for a CLI flag, translating low-level I/O
// and gob-decode failures into actionable messages. Every subcommand
// funnels trace reads through here so a missing or corrupt file exits
// with a clear diagnosis and a non-zero status instead of a raw decode
// error.
func loadTraceFile(flagName, path string) (*rprism.Trace, error) {
	t, err := rprism.LoadTrace(path)
	if err == nil {
		return t, nil
	}
	var fe *trace.FormatError
	switch {
	case errors.As(err, &fe):
		return nil, fmt.Errorf("-%s: trace file %q is damaged: %s data is malformed at byte offset %d: %s (the file may be truncated or partially written; re-record it or restore from a backup)",
			flagName, path, fe.Format, fe.Offset, fe.Msg)
	case errors.Is(err, os.ErrNotExist):
		return nil, fmt.Errorf("-%s: trace file %q does not exist (record one with 'rprism trace -src prog.mj -out %s')",
			flagName, path, path)
	case errors.Is(err, os.ErrPermission):
		return nil, fmt.Errorf("-%s: trace file %q is not readable: permission denied", flagName, path)
	case isDirectory(path):
		return nil, fmt.Errorf("-%s: %q is a directory, not a trace file", flagName, path)
	default:
		return nil, fmt.Errorf("-%s: %q is not a valid trace file: %v (expected the binary format written by 'rprism trace' or SaveTrace)",
			flagName, path, err)
	}
}

func isDirectory(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// loadSource is loadTraceFile lifted to the Engine API: the trace is
// read eagerly (so a bad path fails with the friendly diagnosis before
// any analysis starts) and handed to the engine as a Source.
func loadSource(flagName, path string) (rprism.Source, error) {
	t, err := loadTraceFile(flagName, path)
	if err != nil {
		return nil, err
	}
	return rprism.FromTrace(t), nil
}
