package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	rprism "repro"
	"repro/capture"
)

// TestRecordHelperProcess is not a real test: when re-executed by
// TestCmdRecordDisk with the helper variable set, the test binary plays
// the role of a real Go program embedding the capture shim.
func TestRecordHelperProcess(t *testing.T) {
	if os.Getenv("RPRISM_RECORD_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	rec, on, err := capture.StartFromEnv()
	if err != nil || !on {
		os.Exit(3)
	}
	self := capture.Obj(1, "App", 1)
	exit := rec.Enter("App.main/0", self)
	rec.Emit(capture.Event{Kind: capture.KindSet, Target: self, Member: "state", Args: []capture.Repr{capture.Val("Int", "7")}})
	exit()
	if _, err := rec.Close(); err != nil {
		os.Exit(4)
	}
	// A nonzero RPRISM_RECORD_EXITCODE simulates a recorded program that
	// fails after a valid capture — the exit-code-forwarding case.
	if v := os.Getenv("RPRISM_RECORD_EXITCODE"); v != "" {
		n, _ := strconv.Atoi(v)
		os.Exit(n)
	}
	os.Exit(0)
}

// TestCmdRecordDisk drives `rprism record -- <cmd>` end to end: the
// child is this test binary re-executed as a capture-embedding program,
// the injection travels via the environment contract, and the recorded
// segments come back as a loadable trace file.
func TestCmdRecordDisk(t *testing.T) {
	out := filepath.Join(t.TempDir(), "child.trace")
	t.Setenv("RPRISM_RECORD_HELPER", "1")
	err := cmdRecord(context.Background(), []string{
		"-out", out, "-name", "child", "--",
		os.Args[0], "-test.run=TestRecordHelperProcess",
	})
	if err != nil {
		t.Fatalf("cmdRecord: %v", err)
	}
	tr, err := rprism.LoadTrace(out)
	if err != nil {
		t.Fatalf("recorded trace does not load: %v", err)
	}
	if tr.Len() != 3 { // call + set + return
		t.Fatalf("recorded %d entries, want 3", tr.Len())
	}
	if tr.Entries[1].Method != "App.main/0" {
		t.Errorf("middle entry context %q, want App.main/0", tr.Entries[1].Method)
	}
}

// TestCmdRecordForwardsExitCode: wrapping a failing program in `rprism
// record` must stay transparent to CI gates — the capture is recovered
// AND the child's own exit code comes back as an exitCodeError, which
// main() turns into rprism's exit status.
func TestCmdRecordForwardsExitCode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fail.trace")
	t.Setenv("RPRISM_RECORD_HELPER", "1")
	t.Setenv("RPRISM_RECORD_EXITCODE", "7")
	err := cmdRecord(context.Background(), []string{
		"-out", out, "-name", "fail", "--",
		os.Args[0], "-test.run=TestRecordHelperProcess",
	})
	var ec exitCodeError
	if !errors.As(err, &ec) {
		t.Fatalf("want exitCodeError, got %v", err)
	}
	if ec.code != 7 {
		t.Errorf("forwarded code = %d, want 7", ec.code)
	}
	// The failing run's capture was still recovered and saved.
	if tr, err := rprism.LoadTrace(out); err != nil || tr.Len() != 3 {
		t.Errorf("capture of failing child not recovered: %v", err)
	}
}

func TestCmdRecordValidation(t *testing.T) {
	if err := cmdRecord(context.Background(), []string{"-out", "x.trace"}); err == nil {
		t.Error("record without a command succeeded")
	}
	if err := cmdRecord(context.Background(), []string{"--", "true"}); err == nil {
		t.Error("disk record without -out/-dir succeeded")
	}
}
