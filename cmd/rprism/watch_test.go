package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	rprism "repro"
	"repro/internal/capture"
	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/trace"
)

// watchServe spins up a full rprism-serve stack (corpus, engine,
// HTTP handler) for the watch CLI to talk to.
func watchServe(t *testing.T) (*httptest.Server, *corpus.Store) {
	t.Helper()
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := rprism.NewEngine(rprism.WithCorpus(store))
	srv := server.New(eng, server.Options{})
	t.Cleanup(eng.Close) // before ts.Close (LIFO): watches end, SSE drains
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, store
}

func watchCLITrace(n int) *trace.Trace {
	tr := trace.New("watchcli")
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%5), Class: "Node", Seq: 1 + i%5}
		tr.Append(trace.ThreadID(i%2), fmt.Sprintf("C.m%d/0", i%3), obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: fmt.Sprintf("C.m%d/0", (i+1)%3)})
	}
	return tr
}

// streamFrames POSTs capture protocol frames and returns the ack — the
// raw wire path a live program's stream sink uses.
func streamFrames(t *testing.T, url string, frames []capture.StreamFrame) capture.StreamAck {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/traces/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack capture.StreamAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	return ack
}

// TestCmdWatchEndToEnd is the acceptance path of the watch feature: a
// live capture stream diverges from its pinned baseline, the sentinel's
// divergence event reaches the CLI over SSE within one appended
// segment, and the CLI exits non-zero (errDiverged → exit code 3). The
// control half: a clean replay ends with exit 0 and zero divergence
// events.
func TestCmdWatchEndToEnd(t *testing.T) {
	ts, _ := watchServe(t)

	base := watchCLITrace(200)
	ack, err := capture.StreamTrace(context.Background(), ts.URL, base, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Trace == nil {
		t.Fatal("baseline did not finalize")
	}
	baseDig := ack.Trace.ID

	// Divergence run: open a live session, watch it, stream a clean
	// prefix then a divergent segment, then abort.
	var enc trace.WireEncoder
	open := streamFrames(t, ts.URL, []capture.StreamFrame{{Frame: capture.FrameOpen, Name: "live"}})
	sessID := open.Session

	done := make(chan error, 1)
	go func() {
		done <- cmdWatch(context.Background(), []string{sessID, "-url", ts.URL, "-baseline", baseDig})
	}()
	// The watch must exist before divergent data lands… it does not have
	// to (attach evaluates the backlog), but waiting pins the "event
	// within one appended segment" claim.
	awaitWatchCount(t, ts.URL, 1)

	seg := enc.Segment(base.Entries[:100])
	streamFrames(t, ts.URL, []capture.StreamFrame{
		{Frame: capture.FrameOpen, Session: sessID},
		{Frame: capture.FrameSegment, Symbols: seg.Symbols, Entries: seg.Entries},
	})

	divergent := trace.New("live")
	for _, e := range base.Entries[:100] {
		divergent.Append(e.TID, e.Method, e.Self, e.Event)
	}
	novel := trace.Repr{Loc: trace.Loc(700), Class: "Bug", Seq: 2}
	for k := 0; k < 10; k++ {
		divergent.Append(0, "Bug.trip/0", novel,
			trace.Event{Kind: trace.KindCall, Target: novel, Member: "Bug.trip/0"})
	}
	seg = enc.Segment(divergent.Entries[100:])
	streamFrames(t, ts.URL, []capture.StreamFrame{
		{Frame: capture.FrameOpen, Session: sessID},
		{Frame: capture.FrameSegment, Symbols: seg.Symbols, Entries: seg.Entries},
	})

	// The divergence must surface from the appended segment alone —
	// before anything ends the session.
	awaitWatch(t, ts.URL, func(list []watchInfo) bool {
		return len(list) == 1 && list[0].Diverged
	})

	// End the session; the watch emits its terminal event and the CLI
	// returns. It must report the divergence it saw.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+sessID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	select {
	case err := <-done:
		if !errors.Is(err, errDiverged) {
			t.Fatalf("cmdWatch returned %v, want errDiverged", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cmdWatch did not return after session delete")
	}

	// Control run: replay the baseline verbatim and close cleanly — the
	// CLI must exit clean (no divergence).
	var enc2 trace.WireEncoder
	open2 := streamFrames(t, ts.URL, []capture.StreamFrame{{Frame: capture.FrameOpen, Name: "control"}})
	done2 := make(chan error, 1)
	go func() {
		done2 <- cmdWatch(context.Background(), []string{open2.Session, "-url", ts.URL, "-baseline", baseDig})
	}()
	awaitWatchCount(t, ts.URL, 1)
	seg2 := enc2.Segment(base.Entries)
	streamFrames(t, ts.URL, []capture.StreamFrame{
		{Frame: capture.FrameOpen, Session: open2.Session},
		{Frame: capture.FrameSegment, Symbols: seg2.Symbols, Entries: seg2.Entries},
		{Frame: capture.FrameClose},
	})
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("control cmdWatch returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("control cmdWatch did not return after session close")
	}
}

// awaitWatch polls GET /watches until pred accepts the listing.
func awaitWatch(t *testing.T, url string, pred func([]watchInfo) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/watches")
		if err != nil {
			t.Fatal(err)
		}
		var list []watchInfo
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err == nil && pred(list) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watch listing never reached the awaited state")
}

func awaitWatchCount(t *testing.T, url string, want int) {
	t.Helper()
	awaitWatch(t, url, func(list []watchInfo) bool { return len(list) == want })
}

// TestCmdWatchValidation pins the CLI argument contract.
func TestCmdWatchValidation(t *testing.T) {
	if err := cmdWatch(context.Background(), nil); err == nil {
		t.Fatal("watch without a session succeeded")
	}
	if err := cmdWatch(context.Background(), []string{"sess1"}); err == nil {
		t.Fatal("watch without -url/-baseline succeeded")
	}
}
