//go:build unix

package main

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// TestRunChildRelaysSignal: a SIGTERM delivered to the rprism process
// must reach the recorded child (which lives in its own process group,
// so the terminal's signal would NOT have) — and the child's reaction,
// here a trapped `exit 42`, must surface through childExitCode. rprism
// itself survives the signal; that is the point: it has a capture to
// recover after the child stops.
func TestRunChildRelaysSignal(t *testing.T) {
	// Keep the test process alive if the SIGTERM below wins the race with
	// runChild's own Notify registration.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	child := exec.Command("sh", "-c", `trap 'exit 42' TERM; echo ready; while :; do sleep 0.05; done`)
	stdout, err := child.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- runChild(child) }()

	// Wait for the trap to be installed before signaling.
	if sc := bufio.NewScanner(stdout); !sc.Scan() || sc.Text() != "ready" {
		t.Fatalf("child never reported ready: %v", sc.Err())
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("want ExitError from trapped child, got %v", err)
		}
		if code := childExitCode(ee); code != 42 {
			t.Errorf("childExitCode = %d, want the trap's 42", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM never reached the child's process group")
	}
}

// TestChildExitCodeSignalDeath: a child killed outright by a signal (no
// trap) maps to the conventional 128+N.
func TestChildExitCodeSignalDeath(t *testing.T) {
	child := exec.Command("sleep", "60")
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := child.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("want ExitError, got %v", err)
	}
	if code := childExitCode(ee); code != 128+int(syscall.SIGKILL) {
		t.Errorf("childExitCode = %d, want %d", code, 128+int(syscall.SIGKILL))
	}
}
