package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	rprism "repro"
	"repro/internal/capture"
	"repro/internal/inject"
	"repro/internal/trace"
	"repro/internal/weave"
)

// multiFlag is a repeatable, comma-splittable string-list flag
// (-match a/... -match b, or -match a/...,b).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			*m = append(*m, p)
		}
	}
	return nil
}

// cmdRecord runs a real program with capture injected — the live-capture
// analog of `rprism trace` for Go binaries that embed the capture shim
// (capture.StartFromEnv):
//
//	rprism record -out run.trace -- ./myprog arg1 arg2
//	rprism record -url http://localhost:8372 -- ./myprog
//
// With --weave the command is not a prebuilt binary but a Go package
// pattern: the zero-touch weaver (internal/weave) rebuilds it with every
// function instrumented, so a stock Go module records without embedding
// anything:
//
//	rprism record --weave -out run.trace -- ./cmd/anything arg1
//
// Disk mode (default, or -dir) points the child at a segment directory,
// then reassembles the segments after it exits — tolerating a truncated
// trailing segment if the child crashed mid-write — and saves the trace.
// With -url the child streams straight into an rprism-serve session
// instead, so the run is diffable while it is still executing.
//
// The child runs in its own process group; SIGINT/SIGTERM are relayed to
// it (the capture is recovered after it exits), and its exit code is
// forwarded as rprism's own.
func cmdRecord(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "output trace file (disk mode)")
	name := fs.String("name", "record", "trace name")
	dir := fs.String("dir", "", "segment directory to keep (disk mode; default: a temp dir)")
	url := fs.String("url", "", "stream to this rprism-serve URL instead of recording to disk")
	segment := fs.Int("segment", 0, "entries per segment/stream frame (0 = capture default)")
	weaveOn := fs.Bool("weave", false, "treat <cmd> as a Go package pattern: rebuild it with zero-touch instrumentation, then record")
	var match, exclude multiFlag
	fs.Var(&match, "match", "weave only packages matching this pattern (repeatable; cmd/go ... wildcards)")
	fs.Var(&exclude, "exclude", "do not weave packages matching this pattern (repeatable)")
	weaveMode := fs.String("weave-mode", "overlay", "weave build integration: overlay or toolexec")
	weaveDeps := fs.Bool("weave-deps", false, "also weave the target's module dependencies (stdlib is never woven)")
	weaveKeep := fs.Bool("weave-keep", false, "keep the weave work directory (rewritten sources, overlay, config)")
	weaveSrc := fs.String("weave-src", "", "rprism source checkout providing the capture runtime (default: $"+weave.EnvRuntimeSrc+" or auto-detected)")
	weaveBin := fs.String("weave-bin", "", "also copy the woven binary to this path")
	_ = fs.Parse(args)
	argv := fs.Args()
	if len(argv) == 0 {
		return fmt.Errorf("record: no command given (usage: rprism record [flags] -- <cmd> [args...])")
	}
	if !*weaveOn && (len(match) > 0 || len(exclude) > 0 || *weaveBin != "") {
		return fmt.Errorf("record: -match/-exclude/-weave-bin only apply with --weave")
	}

	cfg := inject.CaptureConfig{Name: *name, URL: *url, SegmentLimit: *segment}
	keepDir := *dir != ""
	if *url != "" && (*out != "" || keepDir) {
		// Silently ignoring -out/-dir would leave the user expecting a
		// file that never appears; the two sinks are mutually exclusive.
		return fmt.Errorf("record: -url streams to a server and writes no local files; drop -out/-dir (download via the server, or record to disk and 'rprism attach' afterwards)")
	}
	if *url == "" {
		if *out == "" && !keepDir {
			return fmt.Errorf("record: disk mode needs -out (or -dir) to keep the recording")
		}
		cfg.Dir = *dir
		if cfg.Dir == "" {
			tmp, err := os.MkdirTemp("", "rprism-record-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			cfg.Dir = tmp
		}
	}

	if *weaveOn {
		mode, err := weave.ParseMode(*weaveMode)
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		res, err := weave.Weave(ctx, weave.Config{
			Patterns:    argv[:1],
			Match:       match,
			Exclude:     exclude,
			IncludeDeps: *weaveDeps,
			RuntimeDir:  *weaveSrc,
			Mode:        mode,
			KeepWork:    *weaveKeep,
			Stderr:      os.Stderr,
		})
		if res != nil {
			defer res.Cleanup()
		}
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "rprism record:", w)
		}
		funcs := 0
		for _, p := range res.Packages {
			funcs += p.Funcs
		}
		fmt.Fprintf(os.Stderr, "rprism record: wove %d packages (%d functions) of %s\n",
			len(res.Packages), funcs, res.ModulePath)
		if *weaveKeep {
			fmt.Fprintf(os.Stderr, "rprism record: weave work kept in %s\n", res.WorkDir)
		}
		if *weaveBin != "" {
			if err := copyFile(res.Binary, *weaveBin); err != nil {
				return fmt.Errorf("record: copying woven binary: %w", err)
			}
		}
		argv = append([]string{res.Binary}, argv[1:]...)
	}

	child := exec.Command(argv[0], argv[1:]...)
	child.Stdout = os.Stdout
	child.Stderr = os.Stderr
	child.Stdin = os.Stdin
	child.Env = cfg.Environ(os.Environ())
	runErr := runChild(child)
	var exitErr *exec.ExitError
	if runErr != nil {
		if !errors.As(runErr, &exitErr) {
			return fmt.Errorf("record: %s: %w", argv[0], runErr)
		}
		// A failing child is still a recorded run — often the interesting
		// one. Report it and recover whatever was captured.
		fmt.Fprintf(os.Stderr, "rprism record: %s exited with %s (recovering the capture)\n",
			argv[0], exitErr)
	}
	// The child's exit code becomes rprism's own, so wrapping a program
	// in `rprism record` is transparent to CI gates and shell scripts.
	var childErr error
	if exitErr != nil {
		childErr = exitCodeError{code: childExitCode(exitErr)}
	}

	if *url != "" {
		fmt.Printf("recorded: streamed to %s (GET %s/sessions or /traces to inspect)\n", *url, *url)
		return childErr
	}

	tr, rep, err := trace.LoadSegmentsReport(cfg.Dir, *name)
	if err != nil {
		return fmt.Errorf("record: no capture recovered from %s: %w (did the child call capture.StartFromEnv?)", cfg.Dir, err)
	}
	if rep.Truncated() {
		fmt.Fprintf(os.Stderr, "rprism record: %s\n", rep.Warning)
	}
	stats := trace.ComputeStats(tr)
	fmt.Printf("recorded: %s\n", stats)
	if *out != "" {
		if err := rprism.SaveTrace(tr, *out); err != nil {
			return err
		}
		fmt.Printf("saved: %s (digest %s)\n", *out, tr.ComputeDigest())
	}
	return childErr
}

// copyFile copies the woven binary to a user-chosen path, preserving
// executability.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o755)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// cmdAttach streams an existing trace file into an rprism-serve session
// over the capture wire protocol — segment-framed, resumable, finalized
// into a content digest — instead of one monolithic PUT /traces upload:
//
//	rprism attach -url http://localhost:8372 -trace run.trace
func cmdAttach(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	url := fs.String("url", "", "rprism-serve base URL")
	path := fs.String("trace", "", "trace file to stream")
	name := fs.String("name", "", "override the trace name")
	batch := fs.Int("batch", 4096, "entries per segment frame")
	_ = fs.Parse(args)
	if *url == "" || *path == "" {
		return fmt.Errorf("attach: -url and -trace are required")
	}
	tr, err := loadTraceFile("trace", *path)
	if err != nil {
		return err
	}
	if *name != "" {
		tr.Name = *name
	}
	ack, err := capture.StreamTrace(ctx, strings.TrimRight(*url, "/"), tr, *batch, nil)
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d entries in session %s\n", ack.Entries, ack.Session)
	if ack.Trace != nil {
		state := "stored"
		if !ack.Trace.Created {
			state = "deduplicated to existing trace"
		}
		fmt.Printf("finalized: %s (%s)\n", ack.Trace.ID, state)
	}
	return nil
}
