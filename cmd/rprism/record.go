package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	rprism "repro"
	"repro/internal/capture"
	"repro/internal/inject"
	"repro/internal/trace"
)

// cmdRecord runs a real program with capture injected — the live-capture
// analog of `rprism trace` for Go binaries that embed the capture shim
// (capture.StartFromEnv):
//
//	rprism record -out run.trace -- ./myprog arg1 arg2
//	rprism record -url http://localhost:8372 -- ./myprog
//
// Disk mode (default, or -dir) points the child at a segment directory,
// then reassembles the segments after it exits — tolerating a truncated
// trailing segment if the child crashed mid-write — and saves the trace.
// With -url the child streams straight into an rprism-serve session
// instead, so the run is diffable while it is still executing.
func cmdRecord(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "output trace file (disk mode)")
	name := fs.String("name", "record", "trace name")
	dir := fs.String("dir", "", "segment directory to keep (disk mode; default: a temp dir)")
	url := fs.String("url", "", "stream to this rprism-serve URL instead of recording to disk")
	segment := fs.Int("segment", 0, "entries per segment/stream frame (0 = capture default)")
	_ = fs.Parse(args)
	argv := fs.Args()
	if len(argv) == 0 {
		return fmt.Errorf("record: no command given (usage: rprism record [flags] -- <cmd> [args...])")
	}

	cfg := inject.CaptureConfig{Name: *name, URL: *url, SegmentLimit: *segment}
	keepDir := *dir != ""
	if *url != "" && (*out != "" || keepDir) {
		// Silently ignoring -out/-dir would leave the user expecting a
		// file that never appears; the two sinks are mutually exclusive.
		return fmt.Errorf("record: -url streams to a server and writes no local files; drop -out/-dir (download via the server, or record to disk and 'rprism attach' afterwards)")
	}
	if *url == "" {
		if *out == "" && !keepDir {
			return fmt.Errorf("record: disk mode needs -out (or -dir) to keep the recording")
		}
		cfg.Dir = *dir
		if cfg.Dir == "" {
			tmp, err := os.MkdirTemp("", "rprism-record-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			cfg.Dir = tmp
		}
	}

	child := exec.CommandContext(ctx, argv[0], argv[1:]...)
	child.Stdout = os.Stdout
	child.Stderr = os.Stderr
	child.Stdin = os.Stdin
	child.Env = cfg.Environ(os.Environ())
	runErr := child.Run()
	if runErr != nil {
		var exitErr *exec.ExitError
		if !errors.As(runErr, &exitErr) {
			return fmt.Errorf("record: %s: %w", argv[0], runErr)
		}
		// A failing child is still a recorded run — often the interesting
		// one. Report it and recover whatever was captured.
		fmt.Fprintf(os.Stderr, "rprism record: %s exited with %s (recovering the capture)\n",
			argv[0], exitErr)
	}

	if *url != "" {
		fmt.Printf("recorded: streamed to %s (GET %s/sessions or /traces to inspect)\n", *url, *url)
		// A failing child still exits this command non-zero, exactly as
		// disk mode does — CI gating on the recorded program's status
		// must see it.
		return runErr
	}

	tr, rep, err := trace.LoadSegmentsReport(cfg.Dir, *name)
	if err != nil {
		return fmt.Errorf("record: no capture recovered from %s: %w (did the child call capture.StartFromEnv?)", cfg.Dir, err)
	}
	if rep.Truncated() {
		fmt.Fprintf(os.Stderr, "rprism record: %s\n", rep.Warning)
	}
	stats := trace.ComputeStats(tr)
	fmt.Printf("recorded: %s\n", stats)
	if *out != "" {
		if err := rprism.SaveTrace(tr, *out); err != nil {
			return err
		}
		fmt.Printf("saved: %s (digest %s)\n", *out, tr.ComputeDigest())
	}
	return runErr
}

// cmdAttach streams an existing trace file into an rprism-serve session
// over the capture wire protocol — segment-framed, resumable, finalized
// into a content digest — instead of one monolithic PUT /traces upload:
//
//	rprism attach -url http://localhost:8372 -trace run.trace
func cmdAttach(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	url := fs.String("url", "", "rprism-serve base URL")
	path := fs.String("trace", "", "trace file to stream")
	name := fs.String("name", "", "override the trace name")
	batch := fs.Int("batch", 4096, "entries per segment frame")
	_ = fs.Parse(args)
	if *url == "" || *path == "" {
		return fmt.Errorf("attach: -url and -trace are required")
	}
	tr, err := loadTraceFile("trace", *path)
	if err != nil {
		return err
	}
	if *name != "" {
		tr.Name = *name
	}
	ack, err := capture.StreamTrace(ctx, strings.TrimRight(*url, "/"), tr, *batch, nil)
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d entries in session %s\n", ack.Entries, ack.Session)
	if ack.Trace != nil {
		state := "stored"
		if !ack.Trace.Created {
			state = "deduplicated to existing trace"
		}
		fmt.Printf("finalized: %s (%s)\n", ack.Trace.ID, state)
	}
	return nil
}
