package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// errDiverged is the sentinel error of `rprism watch`: the watched
// session diverged from its baseline. main maps it to exit code 3 so CI
// can distinguish "regression detected" from operational failures.
var errDiverged = errors.New("watch: session diverged from baseline")

// watchEvent mirrors the server's sentinel event wire format (the
// fields this command prints).
type watchEvent struct {
	Seq        uint64 `json:"seq"`
	Kind       string `json:"kind"`
	WatchID    string `json:"watch_id"`
	SessionID  string `json:"session_id"`
	Baseline   string `json:"baseline"`
	Entries    int    `json:"entries"`
	Watermark  int64  `json:"eid_watermark"`
	Candidates int    `json:"candidates"`
	Summary    []struct {
		EID    int64  `json:"eid"`
		Kind   string `json:"kind"`
		Method string `json:"method"`
		Member string `json:"member"`
		Class  string `json:"class"`
	} `json:"summary"`
	Reason string `json:"reason"`
}

// cmdWatch attaches a regression sentinel to a live rprism-serve
// session and tails its event stream:
//
//	rprism watch <session> -url http://localhost:8372 -baseline <digest>
//
// The command blocks until the watch closes (session over, watch
// detached server-side, or Ctrl-C) and exits 0 if the session never
// diverged, 3 on divergence, 1 on operational errors — so a CI job can
// gate on "the new build replayed its baseline cleanly".
func cmdWatch(ctx context.Context, args []string) error {
	session := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		session, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	url := fs.String("url", "", "rprism-serve base URL")
	baseline := fs.String("baseline", "", "baseline trace digest to diff the session against")
	webhook := fs.String("webhook", "", "also deliver divergence events to this webhook URL")
	expectedOld := fs.String("expected-old", "", "expected-change pair: old trace digest")
	expectedNew := fs.String("expected-new", "", "expected-change pair: new trace digest")
	asJSON := fs.Bool("json", false, "print raw events as JSON lines")
	_ = fs.Parse(args)
	if session == "" && fs.NArg() > 0 {
		session = fs.Arg(0)
	}
	if session == "" {
		return fmt.Errorf("watch: no session given (usage: rprism watch <session> -url URL -baseline DIGEST)")
	}
	if *url == "" || *baseline == "" {
		return fmt.Errorf("watch: -url and -baseline are required")
	}
	base := strings.TrimRight(*url, "/")

	w, err := createWatch(ctx, base, map[string]any{
		"session":      session,
		"baseline":     *baseline,
		"webhook":      *webhook,
		"expected_old": *expectedOld,
		"expected_new": *expectedNew,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rprism watch: %s watching session %s against %s\n", w.ID, w.Session, w.Baseline)

	diverged, err := tailWatch(ctx, base, w.ID, *asJSON)
	if err != nil {
		return err
	}
	if diverged {
		return errDiverged
	}
	return nil
}

// watchInfo is the subset of the server's watch resource this command
// reads.
type watchInfo struct {
	ID       string `json:"id"`
	Session  string `json:"session"`
	Baseline string `json:"baseline"`
	Diverged bool   `json:"diverged"`
	Closed   bool   `json:"closed"`
}

func createWatch(ctx context.Context, base string, body map[string]any) (*watchInfo, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/watches", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("watch: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("watch: create failed: %s", serverErr(resp.StatusCode, payload))
	}
	var w watchInfo
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, fmt.Errorf("watch: bad create response: %w", err)
	}
	return &w, nil
}

// tailWatch follows the watch's SSE stream to its terminal event,
// reconnecting with Last-Event-ID resume semantics if the connection
// drops, and reports whether a divergence event was seen.
func tailWatch(ctx context.Context, base, id string, asJSON bool) (diverged bool, err error) {
	var after uint64
	for retries := 0; ; {
		done, derr := tailOnce(ctx, base, id, &after, &diverged, asJSON)
		if done || ctx.Err() != nil {
			return diverged, derr
		}
		if derr != nil {
			retries++
			if retries > 5 {
				return diverged, derr
			}
			select {
			case <-time.After(time.Duration(retries) * 200 * time.Millisecond):
			case <-ctx.Done():
				return diverged, ctx.Err()
			}
			continue
		}
		retries = 0
	}
}

// tailOnce consumes one SSE connection. done is true when the watch
// reached its terminal event (or is already gone server-side — it
// closed while we were disconnected).
func tailOnce(ctx context.Context, base, id string, after *uint64, diverged *bool, asJSON bool) (done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/watches/%s/events?after=%d", base, id, *after), nil)
	if err != nil {
		return true, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, fmt.Errorf("watch: events stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The watch finished and was reaped between connections; whatever
		// state we accumulated is all there is.
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return true, fmt.Errorf("watch: events stream: %s", serverErr(resp.StatusCode, payload))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return true, fmt.Errorf("watch: bad event: %w", err)
		}
		*after = ev.Seq
		if asJSON {
			fmt.Println(strings.TrimPrefix(line, "data: "))
		} else {
			printEvent(ev)
		}
		switch ev.Kind {
		case "divergence":
			*diverged = true
		case "watch_closed":
			return true, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return false, fmt.Errorf("watch: events stream: %w", err)
	}
	// EOF without a terminal event: server went away mid-stream; resume.
	return ctx.Err() != nil, ctx.Err()
}

func printEvent(ev watchEvent) {
	switch ev.Kind {
	case "divergence":
		fmt.Printf("DIVERGENCE session=%s baseline=%s entries=%d watermark=%d candidates=%d\n",
			ev.SessionID, ev.Baseline, ev.Entries, ev.Watermark, ev.Candidates)
		for _, c := range ev.Summary {
			fmt.Printf("  eid=%d %s %s", c.EID, c.Kind, c.Member)
			if c.Class != "" {
				fmt.Printf(" class=%s", c.Class)
			}
			if c.Method != "" {
				fmt.Printf(" in=%s", c.Method)
			}
			fmt.Println()
		}
	case "watch_closed":
		fmt.Printf("watch closed: %s (entries=%d)\n", ev.Reason, ev.Entries)
	default:
		fmt.Printf("%s: %+v\n", ev.Kind, ev)
	}
}

// serverErr renders a server error payload, preferring the JSON
// envelope's message.
func serverErr(status int, payload []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(payload, &env) == nil && env.Error.Message != "" {
		return fmt.Sprintf("%s (%s)", env.Error.Message, env.Error.Code)
	}
	return fmt.Sprintf("HTTP %d", status)
}
