// Command rprism is the CLI front end: trace a program, diff two traces,
// explore views, or run the full regression-cause analysis.
//
//	rprism trace   -src prog.mj -out run.trace [-args a,b] [-exclude C,D]
//	rprism record  -out run.trace [-url serveURL] -- <cmd> [args...]
//	rprism attach  -url serveURL -trace run.trace [-batch N]
//	rprism watch   <session> -url serveURL -baseline <digest> [-webhook URL]
//	rprism diff    -left a.trace -right b.trace [-lcs] [-max 20] [-parallel N]
//	rprism views   -trace run.trace [-show "CM:Main.main/0"] [-max 50]
//	rprism analyze -orig-correct .. -new-correct .. -orig-regr .. -new-regr .. [-removal]
//	rprism convert -dir corpusDir | -trace run.trace [-out new.trace] [-compress]
//	rprism search  <ref> -dir corpusDir | -url serveURL [-k 10] [-farthest]
//	rprism flaky   <refs...> -dir corpusDir | -url serveURL
//	rprism analyses
//
// Every subcommand drives the shared rprism.Engine; analyses run under a
// signal-bound context, so Ctrl-C aborts a long diff mid-loop instead of
// leaving it burning CPU until process teardown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	rprism "repro"
	"repro/internal/lang"
	"repro/internal/trace"
	"repro/internal/views"
)

// eng is the process-wide analysis engine all subcommands share.
var eng = rprism.NewEngine()

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Ctrl-C / SIGTERM cancels the in-flight analysis promptly: the
	// engine threads this context through the differencing hot loops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch os.Args[1] {
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "record":
		err = cmdRecord(ctx, os.Args[2:])
	case "attach":
		err = cmdAttach(ctx, os.Args[2:])
	case "watch":
		err = cmdWatch(ctx, os.Args[2:])
	case "diff":
		err = cmdDiff(ctx, os.Args[2:])
	case "views":
		err = cmdViews(ctx, os.Args[2:])
	case "analyze":
		err = cmdAnalyze(ctx, os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "protocol":
		err = cmdProtocol(ctx, os.Args[2:])
	case "impact":
		err = cmdImpact(ctx, os.Args[2:])
	case "search":
		err = cmdSearch(ctx, os.Args[2:])
	case "flaky":
		err = cmdFlaky(ctx, os.Args[2:])
	case "analyses":
		err = cmdAnalyses()
	default:
		usage()
	}
	if err != nil {
		var ec exitCodeError
		if errors.As(err, &ec) {
			// `rprism record` forwards the wrapped command's exit code; the
			// failure was already reported, so no extra noise here.
			os.Exit(ec.code)
		}
		fmt.Fprintln(os.Stderr, "rprism:", err)
		if errors.Is(err, errDiverged) {
			os.Exit(3) // regression detected, as distinct from operational failure
		}
		os.Exit(1)
	}
}

// exitCodeError carries a specific process exit code through the error
// return path — the wrapped child's status, forwarded verbatim.
type exitCodeError struct{ code int }

func (e exitCodeError) Error() string { return fmt.Sprintf("exit status %d", e.code) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rprism {trace|record|attach|watch|diff|views|analyze|convert|check|protocol|impact|search|flaky|analyses} [flags]")
	os.Exit(2)
}

// cmdAnalyses lists the analyses registered with the engine — the same
// listing rprism-serve exposes at GET /analyses.
func cmdAnalyses() error {
	for _, a := range rprism.Analyses() {
		fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		if len(a.Roles) > 0 {
			fmt.Printf("%-12s   traces: %s\n", "", strings.Join(a.Roles, ", "))
		}
		if a.Params != "" {
			fmt.Printf("%-12s   params: %s\n", "", a.Params)
		}
	}
	return nil
}

// cmdCheck parses and type-checks a program without running it.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	src := fs.String("src", "", "program source file")
	_ = fs.Parse(args)
	if *src == "" {
		return fmt.Errorf("check: -src is required")
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(string(text))
	if err != nil {
		return err
	}
	if err := lang.TypeCheck(prog); err != nil {
		return err
	}
	fmt.Println(lang.TypeCheckSummary(prog))
	return nil
}

// cmdProtocol infers the object protocol of a class from a trace.
func cmdProtocol(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("protocol", flag.ExitOnError)
	path := fs.String("trace", "", "trace file")
	class := fs.String("class", "", "class to infer the protocol of")
	against := fs.String("against", "", "optional second trace to diff protocols against")
	_ = fs.Parse(args)
	if *path == "" || *class == "" {
		return fmt.Errorf("protocol: -trace and -class are required")
	}
	src, err := loadSource("trace", *path)
	if err != nil {
		return err
	}
	model, err := eng.Infer(ctx, src, *class)
	if err != nil {
		return err
	}
	fmt.Print(model)
	if *against == "" {
		return nil
	}
	src2, err := loadSource("against", *against)
	if err != nil {
		return err
	}
	model2, err := eng.Infer(ctx, src2, *class)
	if err != nil {
		return err
	}
	fmt.Println("drift against second trace:")
	for _, ch := range rprism.DiffProtocols(model, model2) {
		fmt.Println(" ", ch)
	}
	return nil
}

// cmdImpact prints the impact surface of a trace pair.
func cmdImpact(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("impact", flag.ExitOnError)
	left := fs.String("left", "", "left trace file")
	right := fs.String("right", "", "right trace file")
	maxItems := fs.Int("max", 10, "max items per dimension")
	parallel := fs.Int("parallel", 0, "intra-diff worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	_ = fs.Parse(args)
	if *left == "" || *right == "" {
		return fmt.Errorf("impact: -left and -right are required")
	}
	l, err := loadSource("left", *left)
	if err != nil {
		return err
	}
	r, err := loadSource("right", *right)
	if err != nil {
		return err
	}
	opts := eng.DefaultDiffOptions()
	opts.Parallelism = *parallel
	surface, err := eng.ImpactWith(ctx, l, r, opts)
	if err != nil {
		return err
	}
	fmt.Print(surface.Report(*maxItems))
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	src := fs.String("src", "", "program source file")
	out := fs.String("out", "", "output trace file")
	progArgs := fs.String("args", "", "comma-separated program arguments")
	exclude := fs.String("exclude", "", "comma-separated classes to exclude (pointcut)")
	jsonl := fs.String("jsonl", "", "also export the trace as JSON lines to this file")
	_ = fs.Parse(args)
	if *src == "" || *out == "" {
		return fmt.Errorf("trace: -src and -out are required")
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		return err
	}
	prog, err := rprism.Compile(string(text))
	if err != nil {
		return err
	}
	opts := rprism.RunOptions{TraceName: *out}
	if *progArgs != "" {
		opts.Args = strings.Split(*progArgs, ",")
	}
	if *exclude != "" {
		opts.Pointcut = &rprism.Pointcut{ExcludeClasses: strings.Split(*exclude, ",")}
	}
	res, err := rprism.Run(prog, opts)
	if err != nil {
		return err
	}
	fmt.Print(res.Output)
	if res.Err != nil {
		fmt.Println("program error:", res.Err)
	}
	stats := trace.ComputeStats(res.Trace)
	fmt.Printf("trace: %s\n", stats)
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		if err := res.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return rprism.SaveTrace(res.Trace, *out)
}

func cmdDiff(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	left := fs.String("left", "", "left trace file")
	right := fs.String("right", "", "right trace file")
	useLCS := fs.Bool("lcs", false, "use the LCS baseline instead of views-based differencing")
	maxSeqs := fs.Int("max", 20, "max difference sequences to print")
	parallel := fs.Int("parallel", 0, "intra-diff worker goroutines (0 = GOMAXPROCS, 1 = serial; output is identical)")
	_ = fs.Parse(args)
	if *left == "" || *right == "" {
		return fmt.Errorf("diff: -left and -right are required")
	}
	l, err := loadSource("left", *left)
	if err != nil {
		return err
	}
	r, err := loadSource("right", *right)
	if err != nil {
		return err
	}
	var res *rprism.DiffResult
	if *useLCS {
		res, err = eng.DiffLCS(ctx, l, r, rprism.LCSOptions{})
	} else {
		opts := eng.DefaultDiffOptions()
		opts.Parallelism = *parallel
		res, err = eng.DiffWith(ctx, l, r, opts)
	}
	if err != nil {
		return err
	}
	fmt.Print(res.Format(*maxSeqs))
	fmt.Printf("compares=%d mem=%.1fMB\n", res.Stats.Compares, float64(res.Stats.MemBytes)/1e6)
	return nil
}

func cmdViews(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("views", flag.ExitOnError)
	path := fs.String("trace", "", "trace file")
	show := fs.String("show", "", "view to display, as TYPE:KEY (e.g. CM:Main.main/0)")
	maxEntries := fs.Int("max", 50, "max entries to print")
	_ = fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("views: -trace is required")
	}
	src, err := loadSource("trace", *path)
	if err != nil {
		return err
	}
	web, err := eng.Views(ctx, src)
	if err != nil {
		return err
	}
	if *show == "" {
		c := web.Count()
		fmt.Printf("%d views: %d thread, %d method, %d target-object, %d active-object\n",
			c.Total, c.Thread, c.Method, c.TargetObject, c.ActiveObject)
		for _, n := range web.Names() {
			fmt.Printf("  %s:%s (%d entries)\n", n.Type, n.KeyString(), web.View(n).Len())
		}
		return nil
	}
	parts := strings.SplitN(*show, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("views: -show wants TYPE:KEY")
	}
	typ, ok := views.ParseType(parts[0])
	if !ok {
		return fmt.Errorf("views: unknown type %q (TH, CM, TO, AO)", parts[0])
	}
	name, err := views.ParseName(typ, parts[1])
	if err != nil {
		return err
	}
	v := web.View(name)
	if v == nil {
		return fmt.Errorf("views: no view %s", name)
	}
	entries := web.Entries(name)
	if len(entries) > *maxEntries {
		entries = entries[:*maxEntries]
	}
	fmt.Print(trace.FormatEntries(entries))
	return nil
}

func cmdAnalyze(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	oc := fs.String("orig-correct", "", "original version, non-regressing test")
	nc := fs.String("new-correct", "", "new version, non-regressing test")
	or := fs.String("orig-regr", "", "original version, regressing test")
	nr := fs.String("new-regr", "", "new version, regressing test")
	removal := fs.Bool("removal", false, "use (A-B)-C for code-removal regressions")
	maxSeqs := fs.Int("max", 10, "max candidate sequences to print")
	parallel := fs.Int("parallel", 0, "intra-diff worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	_ = fs.Parse(args)
	load := func(p, what string) (rprism.Source, error) {
		if p == "" {
			return nil, fmt.Errorf("analyze: -%s is required", what)
		}
		return loadSource(what, p)
	}
	in := rprism.RegressionSources{Removal: *removal}
	var err error
	if in.OrigCorrect, err = load(*oc, "orig-correct"); err != nil {
		return err
	}
	if in.NewCorrect, err = load(*nc, "new-correct"); err != nil {
		return err
	}
	if in.OrigRegr, err = load(*or, "orig-regr"); err != nil {
		return err
	}
	if in.NewRegr, err = load(*nr, "new-regr"); err != nil {
		return err
	}
	opts := eng.DefaultDiffOptions()
	opts.Parallelism = *parallel
	an, err := eng.AnalyzeRegressionWith(ctx, in, opts)
	if err != nil {
		return err
	}
	fmt.Print(an.Report(*maxSeqs))
	return nil
}
