package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	rprism "repro"
	"repro/internal/corpus"
)

// cmdSearch finds the stored traces nearest to (or farthest from) a
// query reference:
//
//	rprism search <ref> -dir corpusDir [-k 10] [-farthest] [-exhaustive] [-json]
//	rprism search <ref> -url http://host:port [-k 10] [-farthest] [-json]
//
// <ref> is a stored digest (full or short prefix) or a local trace
// file. Local mode opens the corpus directory directly; remote mode
// posts to a running rprism-serve.
func cmdSearch(ctx context.Context, args []string) error {
	ref, args := peelRef(args)
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (local mode)")
	url := fs.String("url", "", "rprism-serve base URL (remote mode)")
	k := fs.Int("k", 10, "how many traces to return")
	farthest := fs.Bool("farthest", false, "rank by most-divergent instead of least")
	exhaustive := fs.Bool("exhaustive", false, "diff every stored trace (no sketch pruning)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	_ = fs.Parse(args)
	if ref == "" && fs.NArg() > 0 {
		ref = fs.Arg(0)
	}
	if ref == "" {
		return fmt.Errorf("search: a query reference is required (digest, short prefix, or trace file)")
	}

	if *url != "" {
		params, _ := json.Marshal(map[string]any{"k": *k, "farthest": *farthest, "exhaustive": *exhaustive})
		var res rprism.SearchResult
		if err := runRemote(ctx, *url, "search", map[string]string{"query": ref}, params, &res); err != nil {
			return err
		}
		return printSearch(&res, *jsonOut)
	}

	if *dir == "" {
		return fmt.Errorf("search: -dir (local corpus) or -url (rprism-serve) is required")
	}
	store, err := corpus.New(*dir, corpus.Options{})
	if err != nil {
		return err
	}
	e := rprism.NewEngine(rprism.WithCorpus(store))
	query, err := refSource(ref)
	if err != nil {
		return err
	}
	res, err := e.Search(ctx, query, rprism.SearchOptions{
		K: *k, Farthest: *farthest, Exhaustive: *exhaustive,
	})
	if err != nil {
		return err
	}
	return printSearch(res, *jsonOut)
}

// cmdFlaky mines systematic divergence out of repeated runs:
//
//	rprism flaky <ref> <ref> [<ref>...] -dir corpusDir [-json]
//	rprism flaky <ref> <ref> [<ref>...] -url http://host:port [-json]
//
// Each <ref> is a stored digest (full or short prefix) or a local trace
// file. The runs are diffed pairwise; difference signatures present in
// every pair are the systematic causes, the rest is run-to-run noise.
func cmdFlaky(ctx context.Context, args []string) error {
	var refs []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		refs = append(refs, args[0])
		args = args[1:]
	}
	fs := flag.NewFlagSet("flaky", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (local mode)")
	url := fs.String("url", "", "rprism-serve base URL (remote mode)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	_ = fs.Parse(args)
	refs = append(refs, fs.Args()...)
	if len(refs) < 2 {
		return fmt.Errorf("flaky: at least 2 run references are required (digests, short prefixes, or trace files)")
	}

	if *url != "" {
		traces := make(map[string]string, len(refs))
		for i, ref := range refs {
			traces[fmt.Sprintf("run%03d", i)] = ref
		}
		var res rprism.FlakyResult
		if err := runRemote(ctx, *url, "flaky", traces, nil, &res); err != nil {
			return err
		}
		return printFlaky(&res, *jsonOut)
	}

	var e *rprism.Engine
	if *dir != "" {
		store, err := corpus.New(*dir, corpus.Options{})
		if err != nil {
			return err
		}
		e = rprism.NewEngine(rprism.WithCorpus(store))
	} else {
		// All-file runs need no corpus; a digest ref without -dir will
		// fail resolution with the engine's own diagnosis.
		e = eng
	}
	runs := make([]rprism.Source, len(refs))
	for i, ref := range refs {
		src, err := refSource(ref)
		if err != nil {
			return err
		}
		runs[i] = src
	}
	res, err := e.Flaky(ctx, runs, rprism.FlakyOptions{})
	if err != nil {
		return err
	}
	return printFlaky(res, *jsonOut)
}

// peelRef takes the leading positional argument (if any) ahead of flag
// parsing, matching the `rprism watch <session>` idiom.
func peelRef(args []string) (string, []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// refSource turns a CLI trace reference — an existing file path, or a
// corpus digest / short prefix — into an engine source.
func refSource(ref string) (rprism.Source, error) {
	if fi, err := os.Stat(ref); err == nil && !fi.IsDir() {
		return loadSource("ref", ref)
	}
	return rprism.FromCorpusID(ref), nil
}

// runRemote posts a generic /run/{analysis} request to rprism-serve and
// decodes the wrapped result into out.
func runRemote(ctx context.Context, baseURL, analysis string, traces map[string]string, params json.RawMessage, out any) error {
	body, _ := json.Marshal(map[string]any{"traces": traces, "params": params})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(baseURL, "/")+"/run/"+analysis, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("%s: %w", analysis, err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", analysis, serverErr(resp.StatusCode, payload))
	}
	var wrapped struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(payload, &wrapped); err != nil || wrapped.Result == nil {
		return fmt.Errorf("%s: unexpected response: %.200s", analysis, payload)
	}
	return json.Unmarshal(wrapped.Result, out)
}

func printSearch(res *rprism.SearchResult, asJSON bool) error {
	if asJSON {
		return printJSON(res)
	}
	rank := "nearest"
	if res.Farthest {
		rank = "farthest"
	}
	fmt.Printf("query %s: top %d %s of %d stored traces (%d diffed, %d pruned)\n",
		shortID(res.Query), res.K, rank, res.Corpus, res.Evaluated, res.Pruned)
	for i, h := range res.Hits {
		name := h.Name
		if name == "" {
			name = "-"
		}
		fmt.Printf("%3d. %s  diffs=%-6d jaccard=%.2f  entries=%-7d %s\n",
			i+1, shortID(h.ID), h.NumDiffs, h.Jaccard, h.Entries, name)
	}
	return nil
}

func printFlaky(res *rprism.FlakyResult, asJSON bool) error {
	if asJSON {
		return printJSON(res)
	}
	fmt.Printf("%d runs, %d pairwise diffs\n", res.Runs, len(res.Pairs))
	for _, p := range res.Pairs {
		fmt.Printf("  run%d vs run%d: %d diffs\n", p.Left, p.Right, p.NumDiffs)
	}
	fmt.Printf("systematic signatures (present in every pair): %d; noise signatures: %d\n",
		len(res.Common), res.Noise)
	for _, sig := range res.Common {
		loc := sig.Method
		if loc == "" {
			loc = "-"
		}
		fmt.Printf("  %-8s member=%s class=%s nargs=%d in %s\n",
			sig.Kind, orDash(sig.Member), orDash(sig.Class), sig.NArgs, loc)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
