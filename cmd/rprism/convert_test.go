package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/trace"
)

func convertFixture() *trace.Trace {
	tr := trace.New("fix")
	for i := 0; i < 25; i++ {
		tr.Append(trace.ThreadID(i%3), fmt.Sprintf("C.m%d/0", i%5),
			trace.Repr{Loc: trace.Loc(i + 1), Class: "C", Seq: i + 1},
			trace.Event{Kind: trace.KindCall, Member: fmt.Sprintf("C.m%d/0", i%5),
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i))}})
	}
	return tr
}

func TestConvertSingleFile(t *testing.T) {
	tr := convertFixture()
	want := tr.ComputeDigest()
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := tr.SaveFormat(path, trace.FormatGob); err != nil {
		t.Fatal(err)
	}

	if _, err := convertFile(path, "", trace.RSEGOptions{}); err != nil {
		t.Fatal(err)
	}
	if f, err := trace.SniffFile(path); err != nil || f != trace.FormatRSEG {
		t.Fatalf("after convert file sniffs as %v, %v", f, err)
	}
	got, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.ComputeDigest(); d != want {
		t.Errorf("conversion changed digest: %s, want %s", d, want)
	}

	// Idempotent: a second run skips.
	msg, err := convertFile(path, "", trace.RSEGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "skipped") {
		t.Errorf("second convert did not skip: %q", msg)
	}
}

func TestConvertToSeparateOutput(t *testing.T) {
	tr := convertFixture()
	dir := t.TempDir()
	src := filepath.Join(dir, "run.jsonl")
	dst := filepath.Join(dir, "run.rseg")
	if err := tr.SaveFormat(src, trace.FormatJSONL); err != nil {
		t.Fatal(err)
	}
	if _, err := convertFile(src, dst, trace.RSEGOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	// Source untouched, destination equivalent.
	if f, _ := trace.SniffFile(src); f != trace.FormatJSONL {
		t.Error("convert -out rewrote the source")
	}
	got, err := trace.Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.ComputeDigest(); d != tr.ComputeDigest() {
		t.Errorf("converted copy digest %s, want %s", d, tr.ComputeDigest())
	}
}

func TestConvertCorpusDir(t *testing.T) {
	// A corpus written by an earlier gob-only version: force gob segments,
	// then convert the directory in place and reopen it.
	dir := t.TempDir()
	store, err := corpus.New(dir, corpus.Options{SegmentLimit: 8, SegmentFormat: trace.FormatGob})
	if err != nil {
		t.Fatal(err)
	}
	tr := convertFixture()
	id, created, err := store.Put(tr)
	if err != nil || !created {
		t.Fatalf("Put = %v, %v", created, err)
	}

	if err := convertDir(dir, trace.RSEGOptions{}); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) == 0 {
		t.Fatal("corpus has no segments")
	}
	for _, p := range segs {
		if f, err := trace.SniffFile(p); err != nil || f != trace.FormatRSEG {
			t.Errorf("segment %s sniffs as %v, %v after convert", p, f, err)
		}
	}

	// Idempotent second run.
	if err := convertDir(dir, trace.RSEGOptions{}); err != nil {
		t.Fatalf("second convert failed: %v", err)
	}

	// The store reopens and serves the trace under its original digest.
	reopened, err := corpus.New(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.ComputeDigest(); d != id {
		t.Errorf("converted corpus trace digest %s, want %s", d, id)
	}
}

func TestConvertRefusesCorruptInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.seg")
	tr := convertFixture()
	if err := tr.SaveFormat(path, trace.FormatJSONL); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := convertDir(dir, trace.RSEGOptions{}); err == nil {
		t.Fatal("convert accepted a corrupt segment")
	}
	// The damaged original is left in place, untouched.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(raw)/2 {
		t.Error("convert modified a file it failed to convert")
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*rseg-tmp*")); len(tmps) != 0 {
		t.Errorf("convert left temp files behind: %v", tmps)
	}
}
