package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rprism "repro"
	"repro/internal/corpus"
	"repro/internal/subjects"
	"repro/internal/trace"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("command failed: %v\n%s", runErr, out)
	}
	return string(out)
}

// searchFixtureDir populates a corpus directory with 2 families × 3
// variants and returns (dir, digest of fam01-var00).
func searchFixtureDir(t *testing.T) (string, trace.Digest) {
	t.Helper()
	dir := t.TempDir()
	store, err := corpus.New(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var query trace.Digest
	for fam := 1; fam <= 2; fam++ {
		for v := 0; v < 3; v++ {
			id, _, err := store.Put(subjects.GenCorpusTrace(fam, v, 80))
			if err != nil {
				t.Fatal(err)
			}
			if fam == 1 && v == 0 {
				query = id
			}
		}
	}
	return dir, query
}

func TestCmdSearchLocal(t *testing.T) {
	dir, query := searchFixtureDir(t)
	out := captureStdout(t, func() error {
		return cmdSearch(context.Background(), []string{query.String(), "-dir", dir, "-k", "2"})
	})
	if !strings.Contains(out, "top 2 nearest of 5 stored traces") {
		t.Errorf("unexpected header:\n%s", out)
	}
	if !strings.Contains(out, "fam01-var01") || !strings.Contains(out, "fam01-var02") {
		t.Errorf("nearest hits are not the query's family:\n%s", out)
	}
	// The same query by short prefix, as JSON.
	raw := captureStdout(t, func() error {
		return cmdSearch(context.Background(), []string{query.String()[:10], "-dir", dir, "-k", "2", "-json"})
	})
	var res rprism.SearchResult
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatalf("-json output is not a SearchResult: %v\n%s", err, raw)
	}
	if res.Query != query.String() || len(res.Hits) != 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestCmdSearchValidation(t *testing.T) {
	if err := cmdSearch(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "reference") {
		t.Errorf("missing ref: err = %v", err)
	}
	if err := cmdSearch(context.Background(), []string{"abcd1234"}); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Errorf("missing mode: err = %v", err)
	}
}

func TestCmdFlakyLocalFiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for v := 0; v < 3; v++ {
		tr := subjects.GenCorpusTrace(1, v, 60)
		p := filepath.Join(dir, tr.Name+".trace")
		if err := tr.SaveFormat(p, trace.FormatGob); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	out := captureStdout(t, func() error {
		return cmdFlaky(context.Background(), paths)
	})
	if !strings.Contains(out, "3 runs, 3 pairwise diffs") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCmdFlakyCorpusRefs(t *testing.T) {
	dir, query := searchFixtureDir(t)
	out := captureStdout(t, func() error {
		return cmdFlaky(context.Background(), []string{query.String()[:12], "-dir", dir,
			// fam01-var01 and fam01-var02 by full digest.
			subjects.GenCorpusTrace(1, 1, 80).ComputeDigest().String(),
			subjects.GenCorpusTrace(1, 2, 80).ComputeDigest().String()})
	})
	if !strings.Contains(out, "3 runs") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if err := cmdFlaky(context.Background(), []string{"onlyone"}); err == nil {
		t.Error("single run accepted")
	}
}
