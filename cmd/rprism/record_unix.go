//go:build unix

package main

import (
	"os"
	"os/exec"
	"os/signal"
	"syscall"
)

// runChild runs the recorded program in its own process group and
// relays SIGINT/SIGTERM to that group — the recorder must outlive the
// signal to recover the capture, so it cannot simply share the terminal
// group's fate, and it must not swallow the signal either (the child is
// the one being asked to stop). Returns cmd.Wait's error.
func runChild(cmd *exec.Cmd) error {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return err
	}
	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-sigs:
				if s, ok := sig.(syscall.Signal); ok {
					// Negative pid: the whole process group, so grandchildren
					// the recorded program spawned stop too.
					_ = syscall.Kill(-cmd.Process.Pid, s)
				}
			case <-done:
				return
			}
		}
	}()
	err := cmd.Wait()
	signal.Stop(sigs)
	close(done)
	return err
}

// childExitCode maps a child's failure to the exit code `rprism record`
// forwards: the child's own code, or the conventional 128+N when a
// signal ended it.
func childExitCode(ee *exec.ExitError) int {
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		return 128 + int(ws.Signal())
	}
	if c := ee.ExitCode(); c >= 0 {
		return c
	}
	return 1
}
