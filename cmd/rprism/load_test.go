package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestLoadTraceFileErrors(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.trace")
	if err := os.WriteFile(corrupt, []byte("this is not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.trace")
	good := trace.New("good")
	good.Append(1, "M.m/0", trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: "M.m/0"})
	if err := good.Save(truncated); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	valid := filepath.Join(dir, "valid.trace")
	if err := good.Save(valid); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, flag, path string
		wantErr          []string // all must appear in the message
	}{
		{"missing file", "left", filepath.Join(dir, "nope.trace"),
			[]string{"-left", "does not exist", "rprism trace"}},
		{"corrupt file", "right", corrupt,
			[]string{"-right", "not a valid trace file", corrupt}},
		// A truncated RSEG file is structurally detected: the message
		// names the file, the format, and the byte offset of the damage.
		{"truncated file", "trace", truncated,
			[]string{"-trace", "damaged", truncated, "rseg", "byte offset"}},
		{"directory", "left", dir,
			[]string{"-left", "directory"}},
		{"valid file", "left", valid, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := loadTraceFile(tc.flag, tc.path)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if tr.Len() != 1 {
					t.Fatalf("loaded %d entries", tr.Len())
				}
				return
			}
			if err != nil && tr != nil {
				t.Error("returned both a trace and an error")
			}
			if err == nil {
				t.Fatal("expected an error")
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}
