package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
)

// cmdConvert migrates traces to the RSEG columnar format.
//
//	rprism convert -trace run.trace [-out new.trace] [-compress]
//	rprism convert -dir corpusOrSegmentDir [-compress]
//
// Directory mode rewrites every *.seg file in place; single-file mode
// rewrites one trace (or copies it converted when -out is given). The
// conversion is verify-then-swap: each file's replacement is written to
// a temporary path, loaded back, and checked against the original's
// canonical content digest before it is renamed over the source — an
// interrupted or failed convert never damages the original. Files that
// already are RSEG are skipped, so re-running is a no-op; when the
// directory is a corpus (meta sidecars present), each stored trace is
// additionally reassembled and verified against its content address.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus or segment directory to convert in place")
	path := fs.String("trace", "", "single trace file to convert")
	out := fs.String("out", "", "output path for -trace (default: rewrite in place)")
	compress := fs.Bool("compress", false, "DEFLATE-compress the RSEG blocks")
	_ = fs.Parse(args)
	if (*dir == "") == (*path == "") {
		return fmt.Errorf("convert: exactly one of -dir and -trace is required")
	}
	opts := trace.RSEGOptions{Compress: *compress}
	if *path != "" {
		res, err := convertFile(*path, *out, opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	}
	return convertDir(*dir, opts)
}

// convertFile converts one trace file, returning a one-line report.
// With dst == "" the source is rewritten in place (and skipped when it
// already is RSEG); otherwise the converted copy is written to dst.
func convertFile(src, dst string, opts trace.RSEGOptions) (string, error) {
	format, err := trace.SniffFile(src)
	if err != nil {
		return "", fmt.Errorf("convert: %w", err)
	}
	inPlace := dst == ""
	if inPlace {
		if format == trace.FormatRSEG {
			return fmt.Sprintf("%s: already rseg, skipped", src), nil
		}
		dst = src
	}
	t, err := loadForConvert(src)
	if err != nil {
		return "", err
	}
	if err := writeVerified(t, dst, opts); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s: %s → rseg (%d entries)", dst, format, t.Len()), nil
}

// convertDir converts every segment file under dir in place, then
// re-verifies any corpus traces against their content addresses.
func convertDir(dir string, opts trace.RSEGOptions) error {
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("convert: scan %s: %w", dir, err)
	}
	if len(segs) == 0 {
		return fmt.Errorf("convert: no segment files (*.seg) under %q", dir)
	}
	converted, skipped := 0, 0
	for _, p := range segs {
		format, err := trace.SniffFile(p)
		if err != nil {
			return fmt.Errorf("convert: %w", err)
		}
		if format == trace.FormatRSEG {
			skipped++
			continue
		}
		t, err := loadForConvert(p)
		if err != nil {
			return err
		}
		if err := writeVerified(t, p, opts); err != nil {
			return err
		}
		converted++
	}
	fmt.Printf("%s: converted %d segment(s), %d already rseg\n", dir, converted, skipped)

	// A corpus directory carries one meta sidecar per stored trace; the
	// sidecar name is the trace's content digest. Reassembling each trace
	// from its (now RSEG) segments and re-deriving the digest proves the
	// migration preserved every content address.
	metas, err := filepath.Glob(filepath.Join(dir, "*.meta.json"))
	if err != nil {
		return fmt.Errorf("convert: scan %s: %w", dir, err)
	}
	for _, p := range metas {
		id := strings.TrimSuffix(filepath.Base(p), ".meta.json")
		t, err := trace.LoadSegments(dir, id)
		if err != nil {
			return fmt.Errorf("convert: reassemble %s after conversion: %w", id, err)
		}
		if got := t.ComputeDigest().String(); got != id {
			return fmt.Errorf("convert: trace %s reassembles to digest %s after conversion: content address broken", id, got)
		}
	}
	if len(metas) > 0 {
		fmt.Printf("%s: verified %d corpus trace(s) against their content addresses\n", dir, len(metas))
	}
	return nil
}

// loadForConvert loads a source trace with the CLI's friendly error
// translation (a corrupt input names its file and offset rather than
// surfacing a raw decode error).
func loadForConvert(path string) (*trace.Trace, error) {
	t, err := loadTraceFile("trace", path)
	if err != nil {
		return nil, fmt.Errorf("convert: %w", err)
	}
	return t, nil
}

// writeVerified writes t as RSEG to a temporary file next to dst, loads
// the temporary back and compares canonical digests, and only then
// renames it into place. The original is never touched until the
// replacement has proven byte-exact content.
func writeVerified(t *trace.Trace, dst string, opts trace.RSEGOptions) error {
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".rseg-tmp-*")
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op after a successful rename
	if err := t.WriteRSEGOpts(tmp, opts); err != nil {
		tmp.Close()
		return fmt.Errorf("convert: encode %s: %w", dst, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	back, err := trace.Load(tmpPath)
	if err != nil {
		return fmt.Errorf("convert: verify %s: %w", dst, err)
	}
	if want, got := t.ComputeDigest(), back.ComputeDigest(); want != got {
		return fmt.Errorf("convert: verify %s: converted digest %s, want %s", dst, got, want)
	}
	if err := os.Rename(tmpPath, dst); err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	return nil
}
