package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	rprism "repro"
	"repro/capture"
)

// TestWeaveBaselineHelperProcess is the hand-instrumented twin of
// examples/weave: same functions, same goroutine shape, same workload
// knob — but the capture brackets are written by hand, exactly as the
// weaver would inject them (same hook ids, same Func reprs, a spawn
// routed through Recorder.Go, main's exit hook before Close). It is the
// interpreter-free baseline the zero-touch weaver is measured against.
func TestWeaveBaselineHelperProcess(t *testing.T) {
	if os.Getenv("RPRISM_WEAVE_BASELINE") != "1" {
		t.Skip("helper process entry point")
	}
	rec, on, err := capture.StartFromEnv()
	if err != nil || !on {
		os.Exit(3)
	}
	enter := func(name string) func(...capture.Repr) {
		id := "repro/examples/weave." + name
		return rec.Enter(id, capture.Val("Func", id))
	}

	type counter struct {
		mu sync.Mutex
		n  int
	}
	add := func(c *counter, delta int) {
		defer enter("counter.add/1")()
		c.mu.Lock()
		c.n += delta
		c.mu.Unlock()
	}
	total := func(c *counter) int {
		defer enter("counter.total/0")()
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
	step := func(c *counter, i int) {
		defer enter("step/2")()
		if i%3 == 0 {
			add(c, 2)
			return
		}
		add(c, 1)
	}
	work := func(c *counter, iters int, wg *sync.WaitGroup) {
		defer enter("work/3")()
		defer wg.Done()
		for i := 0; i < iters; i++ {
			step(c, i)
		}
	}
	iterations := func() int {
		defer enter("iterations/0")()
		if v := os.Getenv("WEAVE_DEMO_ITERS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				return n
			}
		}
		return 4
	}
	mainBody := func() {
		defer enter("main/0")()
		c := &counter{}
		iters := iterations()
		var wg sync.WaitGroup
		wg.Add(3)
		for w := 0; w < 3; w++ {
			rec.Go(func() { work(c, iters, &wg) })
		}
		wg.Wait()
		fmt.Println("total:", total(c))
	}
	mainBody()
	if _, err := rec.Close(); err != nil {
		os.Exit(4)
	}
	os.Exit(0)
}

// TestWeaveEquivalence is the acceptance test for the zero-touch weaver:
// `rprism record --weave` on the stock examples/weave program must
// produce a trace that diffs cleanly against the hand-instrumented
// baseline above — zero difference sequences on a matched workload, and
// an empty regression candidate set D when the four-trace §4.1 protocol
// is run across the instrumentation boundary (manual = "original
// version", woven = "new version", iteration count = the workload).
func TestWeaveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("weaves and runs binaries")
	}
	dir := t.TempDir()

	recordWoven := func(iters string) *rprism.Trace {
		t.Helper()
		t.Setenv("WEAVE_DEMO_ITERS", iters)
		out := filepath.Join(dir, "woven-"+iters+".trace")
		err := cmdRecord(context.Background(), []string{
			"-out", out, "-name", "woven", "--weave", "--",
			"repro/examples/weave",
		})
		if err != nil {
			t.Fatalf("record --weave (iters=%s): %v", iters, err)
		}
		tr, err := rprism.LoadTrace(out)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	recordBaseline := func(iters string) *rprism.Trace {
		t.Helper()
		t.Setenv("WEAVE_DEMO_ITERS", iters)
		t.Setenv("RPRISM_WEAVE_BASELINE", "1")
		out := filepath.Join(dir, "manual-"+iters+".trace")
		err := cmdRecord(context.Background(), []string{
			"-out", out, "-name", "manual", "--",
			os.Args[0], "-test.run=TestWeaveBaselineHelperProcess",
		})
		if err != nil {
			t.Fatalf("record baseline (iters=%s): %v", iters, err)
		}
		tr, err := rprism.LoadTrace(out)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	woven4, woven7 := recordWoven("4"), recordWoven("7")
	manual4, manual7 := recordBaseline("4"), recordBaseline("7")
	os.Unsetenv("WEAVE_DEMO_ITERS")
	os.Unsetenv("RPRISM_WEAVE_BASELINE")

	if woven4.Len() == 0 || manual4.Len() == 0 {
		t.Fatalf("empty capture: woven=%d manual=%d", woven4.Len(), manual4.Len())
	}
	ctx := context.Background()
	e := rprism.NewEngine()

	// Matched workload, different instrumentation: semantically identical.
	d, err := e.Diff(ctx, rprism.FromTrace(manual4), rprism.FromTrace(woven4))
	if err != nil {
		t.Fatal(err)
	}
	if n := d.NumDiffs(); n != 0 {
		t.Errorf("woven vs hand-instrumented trace has %d difference sequences, want 0", n)
		for _, s := range d.Sequences[:min(n, 5)] {
			t.Logf("  %s: %d left / %d right", s.Kind, len(s.Left), len(s.Right))
		}
	}

	// Different workloads must be visibly different, or the empty diff
	// above (and the empty D below) would be vacuous.
	dw, err := e.Diff(ctx, rprism.FromTrace(woven4), rprism.FromTrace(woven7))
	if err != nil {
		t.Fatal(err)
	}
	if dw.NumDiffs() == 0 {
		t.Fatal("iters=4 vs iters=7 traces diff clean; workload knob is broken")
	}

	// The §4.1 protocol across the instrumentation boundary: treating the
	// weaver as the "code change", no difference survives filtering — the
	// regression candidate set is empty.
	an, err := e.AnalyzeRegression(ctx, rprism.RegressionSources{
		OrigCorrect: rprism.FromTrace(manual4),
		NewCorrect:  rprism.FromTrace(woven4),
		OrigRegr:    rprism.FromTrace(manual7),
		NewRegr:     rprism.FromTrace(woven7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.D) != 0 {
		t.Errorf("regression candidate set D has %d entries, want 0 (weaver is not a semantic change)", len(an.D))
	}
}
