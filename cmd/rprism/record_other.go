//go:build !unix

package main

import (
	"os"
	"os/exec"
	"os/signal"
)

// runChild runs the recorded program, forwarding interrupt signals to
// it directly (no process groups off unix). Returns cmd.Wait's error.
func runChild(cmd *exec.Cmd) error {
	if err := cmd.Start(); err != nil {
		return err
	}
	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, os.Interrupt)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-sigs:
				_ = cmd.Process.Signal(sig)
			case <-done:
				return
			}
		}
	}()
	err := cmd.Wait()
	signal.Stop(sigs)
	close(done)
	return err
}

// childExitCode maps a child's failure to the forwarded exit code.
func childExitCode(ee *exec.ExitError) int {
	if c := ee.ExitCode(); c >= 0 {
		return c
	}
	return 1
}
