// Command rprism-serve runs the trace-analysis service: a content-
// addressed corpus of uploaded traces plus the views/diff/regression
// pipeline behind an HTTP JSON API.
//
//	rprism-serve -addr :8372 -dir corpus -workers 8
//
// Quickstart:
//
//	rprism trace -src prog.mj -out run.trace
//	curl -T run.trace http://localhost:8372/traces        # -> {"id": "..."}
//	curl "http://localhost:8372/diff?left=ID1&right=ID2"
//
// With -blob-bucket the corpus gains a third tier behind memory and
// disk: every stored trace is written through to an S3-compatible
// object store (or fs://dir, or mem:// for tests) and traces evicted
// from the -disk-cache bound hydrate back transparently on access.
// With -peers and -node-id several rprism-serve processes sharing one
// bucket form a digest-sharded cluster: each node owns a contiguous
// range of digest space, requests for another node's traces forward
// there, and a dead node degrades to slower bucket reads instead of
// errors. Every blob/cluster flag also reads an RPRISM_* environment
// variable (flag wins), so a fleet can share one env file:
//
//	RPRISM_BLOB_BUCKET=corpus RPRISM_BLOB_ENDPOINT=http://minio:9000 \
//	RPRISM_BLOB_ACCESS_KEY=... RPRISM_BLOB_SECRET_KEY=... \
//	RPRISM_PEERS=a=http://n1:8372,b=http://n2:8372 \
//	RPRISM_NODE_ID=a rprism-serve -dir /var/lib/rprism
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// closes immediately and in-flight analyses get a grace period.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	rprism "repro"
	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/server"
)

// envOr returns the flag default: $key when set, else def. Flags
// resolved this way read the environment at startup but still yield to
// an explicit command-line value.
func envOr(key, def string) string {
	if v, ok := os.LookupEnv(key); ok {
		return v
	}
	return def
}

func envOrInt(key string, def int) int {
	if v, ok := os.LookupEnv(key); ok {
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
			return n
		}
	}
	return def
}

// serveConfig is everything run() needs, flags and environment merged.
type serveConfig struct {
	addr       string
	dir        string
	workers    int
	parallel   int
	traceCache int
	webCache   int
	segLimit   int
	verify     bool
	grace      time.Duration
	reqTimeout time.Duration
	debounce   time.Duration
	ring       int

	blob      blob.Config
	blobPfx   string
	diskCache int
	peers     string
	nodeID    string
}

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.addr, "addr", ":8372", "listen address")
	flag.StringVar(&cfg.dir, "dir", "corpus", "corpus directory (created if missing)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "max concurrent analyses")
	flag.IntVar(&cfg.parallel, "parallel", 0, "intra-diff worker goroutines per analysis, clamped to free worker slots (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.traceCache, "trace-cache", 16, "decoded traces kept in memory")
	flag.IntVar(&cfg.webCache, "web-cache", 8, "built view webs kept in memory")
	flag.IntVar(&cfg.segLimit, "segment-limit", 1<<16, "entries per on-disk segment")
	flag.BoolVar(&cfg.verify, "verify", false, "verify digests of traces loaded from disk")
	flag.DurationVar(&cfg.grace, "grace", 15*time.Second, "shutdown grace period")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 0, "kill analyses exceeding this deadline (0 = none)")
	flag.DurationVar(&cfg.debounce, "watch-debounce", 0, "quiet period coalescing appends before a watch re-evaluates (0 = default)")
	flag.IntVar(&cfg.ring, "watch-ring", 0, "events buffered per watch for SSE replay (0 = default)")

	flag.StringVar(&cfg.blob.Bucket, "blob-bucket", envOr("RPRISM_BLOB_BUCKET", ""),
		"object-store bucket backing the corpus (\"\" = disk only; also fs://dir or mem://) [$RPRISM_BLOB_BUCKET]")
	flag.StringVar(&cfg.blob.Endpoint, "blob-endpoint", envOr("RPRISM_BLOB_ENDPOINT", ""),
		"S3-compatible endpoint URL, e.g. http://minio:9000 [$RPRISM_BLOB_ENDPOINT]")
	flag.StringVar(&cfg.blob.AccessKey, "blob-access-key", envOr("RPRISM_BLOB_ACCESS_KEY", ""),
		"S3 access key (empty = unsigned requests) [$RPRISM_BLOB_ACCESS_KEY]")
	flag.StringVar(&cfg.blob.SecretKey, "blob-secret-key", envOr("RPRISM_BLOB_SECRET_KEY", ""),
		"S3 secret key [$RPRISM_BLOB_SECRET_KEY]")
	flag.StringVar(&cfg.blob.Region, "blob-region", envOr("RPRISM_BLOB_REGION", "us-east-1"),
		"S3 signing region [$RPRISM_BLOB_REGION]")
	flag.StringVar(&cfg.blobPfx, "blob-prefix", envOr("RPRISM_BLOB_PREFIX", ""),
		"key prefix inside the bucket, letting clusters share one bucket [$RPRISM_BLOB_PREFIX]")
	flag.IntVar(&cfg.diskCache, "disk-cache", envOrInt("RPRISM_DISK_CACHE", 0),
		"max traces kept on local disk when a blob bucket backs the corpus (0 = unbounded) [$RPRISM_DISK_CACHE]")
	flag.StringVar(&cfg.peers, "peers", envOr("RPRISM_PEERS", ""),
		"cluster membership as id=url,... including this node [$RPRISM_PEERS]")
	flag.StringVar(&cfg.nodeID, "node-id", envOr("RPRISM_NODE_ID", ""),
		"this node's id within -peers [$RPRISM_NODE_ID]")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rprism-serve:", err)
		os.Exit(1)
	}
}

func run(cfg serveConfig) error {
	backend, err := cfg.blob.Open()
	if err != nil {
		return fmt.Errorf("opening blob backend: %w", err)
	}
	store, err := corpus.New(cfg.dir, corpus.Options{
		TraceCacheSize:  cfg.traceCache,
		WebCacheSize:    cfg.webCache,
		SegmentLimit:    cfg.segLimit,
		VerifyOnLoad:    cfg.verify,
		Blob:            backend,
		BlobPrefix:      cfg.blobPfx,
		DiskCacheTraces: cfg.diskCache,
	})
	if err != nil {
		return err
	}

	var cl *cluster.Cluster
	if cfg.peers != "" || cfg.nodeID != "" {
		peers, err := cluster.ParsePeers(cfg.peers)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		if cfg.nodeID == "" {
			return fmt.Errorf("-peers requires -node-id (or RPRISM_NODE_ID) naming this node")
		}
		if cl, err = cluster.New(cluster.Options{Self: cfg.nodeID, Peers: peers}); err != nil {
			return err
		}
		if backend == nil {
			// Legal but fragile: without a shared bucket a dead peer's
			// traces are unreachable instead of degrading to bucket reads.
			log.Printf("rprism-serve: warning: cluster mode without -blob-bucket has no fallback tier")
		}
	}

	// One Engine per process: the server dispatches every analysis —
	// legacy endpoints and POST /run/{analysis} alike — through it. The
	// engine's own worker budget mirrors the server pool so intra-diff
	// workers are clamped to the same slots the requests occupy: a lone
	// big diff fans out across the machine, a full queue degrades every
	// diff toward serial instead of oversubscribing.
	eng := rprism.NewEngine(rprism.WithCorpus(store),
		rprism.WithWorkers(cfg.workers),
		rprism.WithDiffParallelism(cfg.parallel),
		rprism.WithSentinelOptions(rprism.SentinelOptions{Debounce: cfg.debounce, RingSize: cfg.ring}))
	srv := server.New(eng, server.Options{
		Workers:        cfg.workers,
		RequestTimeout: cfg.reqTimeout,
		Cluster:        cl,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	node := ""
	if cl != nil {
		node = fmt.Sprintf(", node %s of %d", cfg.nodeID, len(cl.Peers()))
	}
	log.Printf("rprism-serve: listening on %s (corpus %s, %d traces, %d workers, %d analyses%s)",
		cfg.addr, cfg.dir, store.Len(), cfg.workers, len(rprism.Analyses()), node)
	err = srv.ListenAndServe(ctx, cfg.addr, cfg.grace)
	log.Printf("rprism-serve: shut down")
	return err
}
