// Command rprism-serve runs the trace-analysis service: a content-
// addressed corpus of uploaded traces plus the views/diff/regression
// pipeline behind an HTTP JSON API.
//
//	rprism-serve -addr :8372 -dir corpus -workers 8
//
// Quickstart:
//
//	rprism trace -src prog.mj -out run.trace
//	curl -T run.trace http://localhost:8372/traces        # -> {"id": "..."}
//	curl "http://localhost:8372/diff?left=ID1&right=ID2"
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener
// closes immediately and in-flight analyses get a grace period.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	rprism "repro"
	"repro/internal/corpus"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	dir := flag.String("dir", "corpus", "corpus directory (created if missing)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent analyses")
	parallel := flag.Int("parallel", 0, "intra-diff worker goroutines per analysis, clamped to free worker slots (0 = GOMAXPROCS)")
	traceCache := flag.Int("trace-cache", 16, "decoded traces kept in memory")
	webCache := flag.Int("web-cache", 8, "built view webs kept in memory")
	segLimit := flag.Int("segment-limit", 1<<16, "entries per on-disk segment")
	verify := flag.Bool("verify", false, "verify digests of traces loaded from disk")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period")
	reqTimeout := flag.Duration("request-timeout", 0, "kill analyses exceeding this deadline (0 = none)")
	debounce := flag.Duration("watch-debounce", 0, "quiet period coalescing appends before a watch re-evaluates (0 = default)")
	ring := flag.Int("watch-ring", 0, "events buffered per watch for SSE replay (0 = default)")
	flag.Parse()

	if err := run(*addr, *dir, *workers, *parallel, *traceCache, *webCache, *segLimit, *verify, *grace, *reqTimeout, *debounce, *ring); err != nil {
		fmt.Fprintln(os.Stderr, "rprism-serve:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers, parallel, traceCache, webCache, segLimit int, verify bool, grace, reqTimeout, debounce time.Duration, ring int) error {
	store, err := corpus.New(dir, corpus.Options{
		TraceCacheSize: traceCache,
		WebCacheSize:   webCache,
		SegmentLimit:   segLimit,
		VerifyOnLoad:   verify,
	})
	if err != nil {
		return err
	}
	// One Engine per process: the server dispatches every analysis —
	// legacy endpoints and POST /run/{analysis} alike — through it. The
	// engine's own worker budget mirrors the server pool so intra-diff
	// workers are clamped to the same slots the requests occupy: a lone
	// big diff fans out across the machine, a full queue degrades every
	// diff toward serial instead of oversubscribing.
	eng := rprism.NewEngine(rprism.WithCorpus(store),
		rprism.WithWorkers(workers),
		rprism.WithDiffParallelism(parallel),
		rprism.WithSentinelOptions(rprism.SentinelOptions{Debounce: debounce, RingSize: ring}))
	srv := server.New(eng, server.Options{Workers: workers, RequestTimeout: reqTimeout})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("rprism-serve: listening on %s (corpus %s, %d traces, %d workers, %d analyses)",
		addr, dir, store.Len(), workers, len(rprism.Analyses()))
	err = srv.ListenAndServe(ctx, addr, grace)
	log.Printf("rprism-serve: shut down")
	return err
}
