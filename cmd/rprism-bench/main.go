// Command rprism-bench regenerates the paper's tables and figures:
//
//	rprism-bench -exp table1    Table 1 (benchmark & analysis characteristics)
//	rprism-bench -exp table2    Table 2 (view counts and set sizes)
//	rprism-bench -exp fig14a    Fig. 14(a) accuracy histogram
//	rprism-bench -exp fig14b    Fig. 14(b) speedup histogram
//	rprism-bench -exp myfaces   §4.2 motivating-example walkthrough
//	rprism-bench -exp all       everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig14a, fig14b, myfaces, all, none")
	bugs := flag.Int("bugs", 0, "override number of injected bugs for fig14 experiments")
	jsonPath := flag.String("json", "", "write machine-readable hot-path measurements (ns/op, allocs/op, compares/op, symbol stats) to this file")
	flag.Parse()

	if *exp != "none" {
		if err := run(*exp, *bugs); err != nil {
			fmt.Fprintln(os.Stderr, "rprism-bench:", err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		if err := writeJSONReport(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "rprism-bench:", err)
			os.Exit(1)
		}
	}
}

func run(exp string, bugs int) error {
	needCases := exp == "table1" || exp == "table2" || exp == "all"
	needQuant := exp == "fig14a" || exp == "fig14b" || exp == "all"

	var cases []experiments.CaseResult
	var err error
	if needCases {
		if cases, err = experiments.RunAllCases(experiments.DefaultLCSBudget); err != nil {
			return err
		}
	}
	var quant []experiments.QuantResult
	if needQuant {
		cfg := experiments.DefaultQuantConfig()
		if bugs > 0 {
			cfg.Bugs = bugs
		}
		if quant, err = experiments.RunQuant(cfg); err != nil {
			return err
		}
	}

	switch exp {
	case "table1":
		fmt.Println(experiments.Table1(cases))
	case "table2":
		fmt.Println(experiments.Table2(cases))
	case "fig14a":
		fmt.Println(experiments.Fig14a(quant))
		fmt.Println(experiments.QuantSummary(quant))
	case "fig14b":
		fmt.Println(experiments.Fig14b(quant))
		fmt.Println(experiments.QuantSummary(quant))
	case "myfaces":
		out, err := experiments.MotivatingExample()
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "all":
		fmt.Println(experiments.Table1(cases))
		fmt.Println(experiments.Table2(cases))
		fmt.Println(experiments.Fig14a(quant))
		fmt.Println(experiments.Fig14b(quant))
		fmt.Println(experiments.QuantSummary(quant))
		out, err := experiments.MotivatingExample()
		if err != nil {
			return err
		}
		fmt.Println(out)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	ss := trace.GlobalSymbolStats()
	fmt.Printf("symbol table: %d distinct symbols, %.1f KB interned\n",
		ss.Distinct, float64(ss.Bytes)/1024)
	return nil
}
