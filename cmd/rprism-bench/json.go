package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	rprism "repro"
	"repro/capture"
	"repro/capture/woven"
	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/index"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/server"
	"repro/internal/subjects"
	"repro/internal/trace"
	"repro/internal/views"
)

// BenchRecord is one machine-readable measurement.
type BenchRecord struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	ComparesPerOp int64   `json:"compares_per_op,omitempty"`
	DiffsPerOp    int     `json:"diffs_per_op,omitempty"`
	// Workers is the intra-diff (or build) worker count of a parallel
	// hot-path row; SpeedupVsSerial is that row's wall-clock speedup over
	// the workers=1 row of the same family, measured in this run.
	Workers         int     `json:"workers,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// EntriesPerSec is the streaming-ingestion throughput of an
	// incremental-append row: trace entries absorbed into a live web per
	// second.
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
	// SpeedupVsJSONL is a format row's wall-clock speedup over the
	// JSONLIngest baseline of the same run — the RSEG trajectory number.
	SpeedupVsJSONL float64 `json:"speedup_vs_jsonl,omitempty"`
	// SpeedupVsFullRediff is the sentinel row's wall-clock speedup of an
	// incremental re-diff over a from-scratch re-diff of the same
	// snapshot, measured in this run.
	SpeedupVsFullRediff float64 `json:"speedup_vs_full_rediff,omitempty"`
	// SlowdownVsUnwoven is a weave-overhead row's per-call cost relative
	// to the WeaveUnwoven baseline of the same run: what a function call
	// pays for being woven, with hooks disabled or recording.
	SlowdownVsUnwoven float64 `json:"slowdown_vs_unwoven,omitempty"`
	// SpeedupVsExhaustive is the TopKPruned row's wall-clock speedup over
	// the exhaustive all-pairs scan of the same corpus and query,
	// measured in this run after asserting both rank identically.
	SpeedupVsExhaustive float64 `json:"speedup_vs_exhaustive,omitempty"`
	// SketchFractionOfPut is the SketchCompute row's cost as a fraction
	// of the CorpusPut row — the ingest overhead the similarity index
	// adds to Store.Put (acceptance budget: < 0.05).
	SketchFractionOfPut float64 `json:"sketch_fraction_of_put,omitempty"`
	// SlowdownVsLocal compares a remote-flavored row against its local
	// counterpart measured in the same run: BlobGetCold (bucket
	// hydration) vs BlobGetHydrated (warm disk tier), and
	// ServeDiffForwarded (one cluster forwarding hop) vs ServeDiffLocal
	// (the owner answers directly).
	SlowdownVsLocal float64 `json:"slowdown_vs_local,omitempty"`
}

// BenchReport is the file written by -json: the perf trajectory of the
// pipeline hot paths, trackable across PRs.
type BenchReport struct {
	Benchmarks []BenchRecord     `json:"benchmarks"`
	Symbols    trace.SymbolStats `json:"symbols"`
	// CorpusCaches snapshots the search corpus's trace/web LRU counters
	// after the TopK rows ran — hit ratios on a realistic search load.
	CorpusCaches *corpus.Stats `json:"corpus_caches,omitempty"`
}

// sinkInt defeats dead-code elimination in the weave-overhead rows.
var sinkInt int

//go:noinline
func unwovenStep(n int) int { return n + 1 }

//go:noinline
func wovenStep(n int) int {
	defer woven.Enter("bench.wovenStep/1")()
	return n + 1
}

// multithreadedPair runs the parallel-diff subject twice (clean and
// biased), producing a trace pair whose diff decomposes into independent
// per-thread-pair units.
func multithreadedPair(workers, iters int) (*trace.Trace, *trace.Trace, error) {
	runIt := func(bias string) (*trace.Trace, error) {
		res, err := interp.Run(lang.MustParse(subjects.MultithreadedSource(workers, iters, bias)), interp.Options{})
		if err != nil {
			return nil, err
		}
		if res.Err != nil && !res.Err.Aborted {
			return nil, res.Err
		}
		return res.Trace, nil
	}
	l, err := runIt("0")
	if err != nil {
		return nil, nil, err
	}
	r, err := runIt("1")
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// writeJSONReport measures the pipeline hot paths with testing.Benchmark
// and writes the report to path.
func writeJSONReport(path string) error {
	prog := lang.MustParse(subjects.RhinoSource())
	script := subjects.GenScript(30, 5)
	runTrace := func(src *lang.Program) (*trace.Trace, error) {
		res, err := interp.Run(src, interp.Options{Args: []string{script}})
		if err != nil {
			return nil, err
		}
		if res.Err != nil && !res.Err.Aborted {
			return nil, res.Err
		}
		return res.Trace, nil
	}
	l, err := runTrace(prog)
	if err != nil {
		return err
	}
	bad := lang.MustParse(strings.Replace(subjects.RhinoSource(),
		`if (sym.equals("+")) { return a + b; }`,
		`if (sym.equals("+")) { return a + b + a % 13 / 12; }`, 1))
	r, err := runTrace(bad)
	if err != nil {
		return err
	}

	var report BenchReport
	// record measures fn and returns the appended record so callers can
	// attach result-derived metrics (compares, diffs) afterwards.
	record := func(name string, fn func(b *testing.B)) *BenchRecord {
		res := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, BenchRecord{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		return &report.Benchmarks[len(report.Benchmarks)-1]
	}

	record("ViewsBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			views.Build(l)
		}
	})
	var vd *diff.Result
	rec := record("ViewDiff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vd = diff.ViewDiff(l, r, diff.ViewOptions{})
		}
	})
	rec.ComparesPerOp = vd.Stats.Compares
	rec.DiffsPerOp = vd.NumDiffs()

	// The serve hot path: diff over cached webs, amortizing Build.
	dir, err := os.MkdirTemp("", "rprism-bench-corpus")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := corpus.New(dir, corpus.Options{})
	if err != nil {
		return err
	}
	lid, _, err := store.Put(l)
	if err != nil {
		return err
	}
	rid, _, err := store.Put(r)
	if err != nil {
		return err
	}
	wl, err := store.Views(lid)
	if err != nil {
		return err
	}
	wr, err := store.Views(rid)
	if err != nil {
		return err
	}
	var cd *diff.Result
	rec = record("ViewDiffCachedWebs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cd = diff.ViewDiffWebs(wl, wr, diff.ViewOptions{})
		}
	})
	rec.ComparesPerOp = cd.Stats.Compares
	rec.DiffsPerOp = cd.NumDiffs()

	// The same hot path through the Engine API: FromCorpus sources
	// resolving against the store's web cache. Tracks the abstraction
	// tax of the public API — it must stay within noise of
	// ViewDiffCachedWebs (see BenchmarkEngineDiffCached).
	eng := rprism.NewEngine(rprism.WithCorpus(store))
	left, right := rprism.FromCorpus(lid), rprism.FromCorpus(rid)
	ctx := context.Background()
	var ed *diff.Result
	rec = record("EngineDiffCached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if ed, err = eng.Diff(ctx, left, right); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec.ComparesPerOp = ed.Stats.Compares
	rec.DiffsPerOp = ed.NumDiffs()

	// The parallel hot paths: the per-thread-pair diff worker pool and
	// the sharded web build, on a multithreaded subject. The workers=1
	// rows are the serial baselines; higher rows carry their speedup.
	// Every worker count produces the identical Result, so compares/op
	// are recorded once from the serial row.
	ml, mr, err := multithreadedPair(8, 150)
	if err != nil {
		return err
	}
	mwl, mwr := views.Build(ml), views.Build(mr)
	var serialNs float64
	var pd *diff.Result
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		rec = record(fmt.Sprintf("ViewDiffParallel/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pd = diff.ViewDiffWebs(mwl, mwr, diff.ViewOptions{Parallelism: w})
			}
		})
		rec.Workers = w
		rec.ComparesPerOp = pd.Stats.Compares
		rec.DiffsPerOp = pd.NumDiffs()
		if w == 1 {
			serialNs = rec.NsPerOp
		} else if rec.NsPerOp > 0 {
			rec.SpeedupVsSerial = serialNs / rec.NsPerOp
		}
	}
	var buildSerialNs float64
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		rec = record(fmt.Sprintf("ViewsBuildParallel/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := views.BuildCtxOpts(ctx, ml, views.BuildOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rec.Workers = w
		if w == 1 {
			buildSerialNs = rec.NsPerOp
		} else if rec.NsPerOp > 0 {
			rec.SpeedupVsSerial = buildSerialNs / rec.NsPerOp
		}
	}

	// Streaming ingestion: the incremental builder absorbing the trace in
	// capture-sized segments, the serve-side cost of one live session
	// (mirrors BenchmarkIncrementalAppend). The throughput row is what a
	// deployment sizes its capture fan-in against.
	const ingestSegment = 4096
	rec = record("IncrementalAppend", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ib := views.NewIncrementalBuilder(ml.Name)
			for lo := 0; lo < ml.Len(); lo += ingestSegment {
				hi := lo + ingestSegment
				if hi > ml.Len() {
					hi = ml.Len()
				}
				if err := ib.Append(ml.Entries[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if rec.NsPerOp > 0 {
		rec.EntriesPerSec = float64(ml.Len()) / (rec.NsPerOp / 1e9)
	}

	// The sentinel hot path: a watched quiet session takes one small
	// single-thread segment and the watch re-diffs against its pinned
	// baseline (mirrors BenchmarkSentinelIncrementalRediff). One of 17
	// thread pairs is dirty, so the incremental evaluation recomputes
	// ~6% of the pairs and patches the merged similarity/difference
	// state; the full row is what every evaluation would cost without
	// the cache, and the speedup is the always-on-watch economics.
	const sentinelTail = 96
	sentBase, _, err := multithreadedPair(16, 100)
	if err != nil {
		return err
	}
	sentWL := views.Build(sentBase)
	liveTr := trace.New("bench-live")
	for _, e := range sentBase.Entries {
		liveTr.Append(e.TID, e.Method, e.Self, e.Event)
	}
	quiet := trace.Repr{Loc: trace.Loc(9001), Class: "Quiet", Seq: 1}
	for k := 0; k < sentinelTail; k++ {
		liveTr.Append(0, "Quiet.tick/0", quiet,
			trace.Event{Kind: trace.KindCall, Target: quiet, Member: "Quiet.tick/0"})
	}
	ib2 := views.NewIncrementalBuilder(liveTr.Name)
	if err := ib2.Append(liveTr.Entries[:sentBase.Len()]); err != nil {
		return err
	}
	snap0 := ib2.Snapshot()
	if err := ib2.Append(liveTr.Entries[sentBase.Len():]); err != nil {
		return err
	}
	snap1 := ib2.Snapshot()
	rec = record("SentinelIncrementalRediff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inc := diff.NewIncremental(sentWL, diff.ViewOptions{})
			if _, _, err := inc.Rediff(ctx, snap0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := inc.Rediff(ctx, snap1); err != nil {
				b.Fatal(err)
			}
		}
	})
	incNs := rec.NsPerOp
	if incNs > 0 {
		rec.EntriesPerSec = float64(sentinelTail) / (incNs / 1e9)
	}
	incIdx := len(report.Benchmarks) - 1
	rec = record("SentinelFullRediff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diff.ViewDiffWebsCtx(ctx, sentWL, snap1, diff.ViewOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if incNs > 0 {
		report.Benchmarks[incIdx].SpeedupVsFullRediff = rec.NsPerOp / incNs
	}

	// Segment-format ingestion: decoding the multithreaded trace from an
	// in-memory image in each on-disk encoding. JSONLIngest is the legacy
	// baseline; the RSEG rows carry their speedup over it.
	var jsonlImage bytes.Buffer
	if err := ml.WriteJSONL(&jsonlImage); err != nil {
		return err
	}
	var rsegImage bytes.Buffer
	if err := ml.WriteRSEG(&rsegImage); err != nil {
		return err
	}
	rsegPath := filepath.Join(dir, "bench.rseg")
	if err := os.WriteFile(rsegPath, rsegImage.Bytes(), 0o644); err != nil {
		return err
	}
	rec = record("JSONLIngest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.ReadJSONL("bench", bytes.NewReader(jsonlImage.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonlNs := rec.NsPerOp
	rec = record("RSEGIngest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rd, err := trace.OpenRSEGBytes(rsegImage.Bytes(), "bench")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rd.Trace(); err != nil {
				b.Fatal(err)
			}
			rd.Close()
		}
	})
	if rec.NsPerOp > 0 {
		rec.SpeedupVsJSONL = jsonlNs / rec.NsPerOp
	}
	rec = record("RSEGLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.LoadRSEG(rsegPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	if rec.NsPerOp > 0 {
		rec.SpeedupVsJSONL = jsonlNs / rec.NsPerOp
	}
	// The corpus disk tier end to end: a cold store serving Get from RSEG
	// segments (mirrors BenchmarkCorpusGetCold).
	rec = record("CorpusGetCold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold, err := corpus.New(dir, corpus.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cold.Get(lid); err != nil {
				b.Fatal(err)
			}
		}
	})
	if rec.NsPerOp > 0 {
		rec.SpeedupVsJSONL = jsonlNs / rec.NsPerOp
	}

	// The corpus-scale search rows (mirror BenchmarkTopKPruned /
	// BenchmarkTopKExhaustive): top-10 divergence search over a 200-trace
	// generated corpus, sketch-pruned vs the exhaustive all-pairs
	// baseline. The results are asserted identical outside the timers;
	// the pruned row carries the measured speedup.
	searchDir, err := os.MkdirTemp("", "rprism-bench-search")
	if err != nil {
		return err
	}
	defer os.RemoveAll(searchDir)
	searchStore, err := corpus.New(searchDir, corpus.Options{
		TraceCacheSize: 256, WebCacheSize: 256,
	})
	if err != nil {
		return err
	}
	var queryID trace.Digest
	for fam := 1; fam <= 10; fam++ {
		for v := 0; v < 20; v++ {
			id, _, err := searchStore.Put(subjects.GenCorpusTrace(fam, v, 300))
			if err != nil {
				return err
			}
			if fam == 1 && v == 0 {
				queryID = id
			}
			if _, err := searchStore.Views(id); err != nil {
				return err
			}
		}
	}
	searchEng := rprism.NewEngine(rprism.WithCorpus(searchStore))
	query := rprism.FromCorpus(queryID)
	prunedRes, err := searchEng.Search(ctx, query, rprism.SearchOptions{K: 10})
	if err != nil {
		return err
	}
	exhaustRes, err := searchEng.Search(ctx, query, rprism.SearchOptions{K: 10, Exhaustive: true})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(prunedRes.Hits, exhaustRes.Hits) {
		return fmt.Errorf("pruned top-10 differs from exhaustive baseline")
	}
	rec = record("TopKExhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := searchEng.Search(ctx, query, rprism.SearchOptions{K: 10, Exhaustive: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	exhaustNs := rec.NsPerOp
	rec.DiffsPerOp = exhaustRes.Evaluated
	rec = record("TopKPruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := searchEng.Search(ctx, query, rprism.SearchOptions{K: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec.DiffsPerOp = prunedRes.Evaluated
	if rec.NsPerOp > 0 {
		rec.SpeedupVsExhaustive = exhaustNs / rec.NsPerOp
	}
	searchStats := searchStore.Stats()
	report.CorpusCaches = &searchStats

	// The sketch ingest tax: what Store.Put pays for sketching a trace it
	// writes (the sketch is folded into the same segment-write pass).
	rec = record("CorpusPut", func(b *testing.B) {
		b.ReportAllocs()
		putDir, err := os.MkdirTemp("", "rprism-bench-put")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(putDir)
		putStore, err := corpus.New(putDir, corpus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tr := subjects.GenCorpusTrace(99, i, 300)
			b.StartTimer()
			if _, _, err := putStore.Put(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	putNs := rec.NsPerOp
	skTr := subjects.GenCorpusTrace(99, 0, 300)
	rec = record("SketchCompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.SketchTrace(skTr)
		}
	})
	if putNs > 0 {
		rec.SketchFractionOfPut = rec.NsPerOp / putNs
	}

	// The weave tax (mirrors BenchmarkWeaveOverhead): what one function
	// call pays for being woven — with hooks disabled (a woven binary run
	// outside the recorder) and while recording to a disk capture.
	rec = record("WeaveUnwoven", func(b *testing.B) {
		b.ReportAllocs()
		acc := 0
		for i := 0; i < b.N; i++ {
			acc = unwovenStep(acc)
		}
		sinkInt = acc
	})
	unwovenNs := rec.NsPerOp
	woven.Attach(nil)
	rec = record("WeaveHookOff", func(b *testing.B) {
		b.ReportAllocs()
		acc := 0
		for i := 0; i < b.N; i++ {
			acc = wovenStep(acc)
		}
		sinkInt = acc
	})
	if unwovenNs > 0 {
		rec.SlowdownVsUnwoven = rec.NsPerOp / unwovenNs
	}
	weaveDir, err := os.MkdirTemp("", "rprism-bench-weave-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(weaveDir)
	wrec, err := capture.Start(capture.Options{Name: "bench", Dir: weaveDir})
	if err != nil {
		return err
	}
	woven.Attach(wrec)
	rec = record("WeaveHookRecording", func(b *testing.B) {
		b.ReportAllocs()
		acc := 0
		for i := 0; i < b.N; i++ {
			acc = wovenStep(acc)
		}
		sinkInt = acc
	})
	woven.Attach(nil)
	if _, err := wrec.Close(); err != nil {
		return err
	}
	if unwovenNs > 0 {
		rec.SlowdownVsUnwoven = rec.NsPerOp / unwovenNs
	}

	// The blob tier end to end: Get on a store whose trace exists only
	// in the bucket (cold — list, download and decode the segments) vs a
	// store whose disk tier already holds it (hydrated — decode only).
	// The delta is the pure hydration cost a cache miss pays.
	bucket := blob.NewMem()
	blobDir, err := os.MkdirTemp("", "rprism-bench-blob")
	if err != nil {
		return err
	}
	defer os.RemoveAll(blobDir)
	seedStore, err := corpus.New(blobDir, corpus.Options{Blob: bucket})
	if err != nil {
		return err
	}
	blid, _, err := seedStore.Put(ml)
	if err != nil {
		return err
	}
	rec = record("BlobGetHydrated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			warm, err := corpus.New(blobDir, corpus.Options{Blob: bucket})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := warm.Get(blid); err != nil {
				b.Fatal(err)
			}
		}
	})
	hydratedNs := rec.NsPerOp
	rec = record("BlobGetCold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			coldDir, err := os.MkdirTemp("", "rprism-bench-blob-cold")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			coldStore, err := corpus.New(coldDir, corpus.Options{Blob: bucket})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := coldStore.Get(blid); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(coldDir)
			b.StartTimer()
		}
	})
	if hydratedNs > 0 {
		rec.SlowdownVsLocal = rec.NsPerOp / hydratedNs
	}

	// The cluster serve rows: one GET /diff through the HTTP API when
	// the receiving node owns the left digest (local) and when the
	// request lands on the peer (one buffered forwarding hop). The delta
	// is the cluster tax — proxying, not recomputing.
	serveLocalNs, serveRows, err := clusterServeRows(record, l, r)
	if err != nil {
		return err
	}
	if serveLocalNs > 0 {
		serveRows.SlowdownVsLocal = serveRows.NsPerOp / serveLocalNs
	}

	report.Symbols = trace.GlobalSymbolStats()
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(report.Benchmarks), path)
	return nil
}

// clusterServeRows measures the ServeDiffLocal and ServeDiffForwarded
// rows on a live two-node ring sharing one in-memory bucket. It returns
// the local row's ns/op and the forwarded record (for the caller to
// attach the slowdown).
func clusterServeRows(record func(string, func(*testing.B)) *BenchRecord,
	l, r *trace.Trace) (float64, *BenchRecord, error) {
	bucket := blob.NewMem()
	nodes := make([]*httptest.Server, 2)
	nodes[0], nodes[1] = httptest.NewUnstartedServer(nil), httptest.NewUnstartedServer(nil)
	peers := make([]cluster.Peer, 2)
	for i, id := range []string{"a", "b"} {
		peers[i] = cluster.Peer{ID: id, URL: "http://" + nodes[i].Listener.Addr().String()}
	}
	clusters := make([]*cluster.Cluster, 2)
	for i := range nodes {
		dir, err := os.MkdirTemp("", "rprism-bench-cluster")
		if err != nil {
			return 0, nil, err
		}
		defer os.RemoveAll(dir)
		store, err := corpus.New(dir, corpus.Options{Blob: bucket})
		if err != nil {
			return 0, nil, err
		}
		cl, err := cluster.New(cluster.Options{Self: peers[i].ID, Peers: peers})
		if err != nil {
			return 0, nil, err
		}
		clusters[i] = cl
		srv := server.New(rprism.NewEngine(rprism.WithCorpus(store)), server.Options{Cluster: cl})
		nodes[i].Config.Handler = srv.Handler()
		nodes[i].Start()
		defer nodes[i].Close()
	}

	upload := func(tr *trace.Trace) (string, error) {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return "", err
		}
		req, err := http.NewRequest(http.MethodPut, nodes[0].URL+"/traces", &buf)
		if err != nil {
			return "", err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var info struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("upload: status %d", resp.StatusCode)
		}
		return info.ID, nil
	}
	lid, err := upload(l)
	if err != nil {
		return 0, nil, err
	}
	rid, err := upload(r)
	if err != nil {
		return 0, nil, err
	}
	ld, err := trace.ParseDigest(lid)
	if err != nil {
		return 0, nil, err
	}
	// The left digest decides ownership: the owner serves the diff
	// locally, the other node takes the forwarding hop.
	ownerURL, otherURL := nodes[0].URL, nodes[1].URL
	if clusters[0].Owner(ld).ID == "b" {
		ownerURL, otherURL = otherURL, ownerURL
	}
	get := func(b *testing.B, base string) {
		resp, err := http.Get(base + "/diff?left=" + lid + "&right=" + rid)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("diff: status %d", resp.StatusCode)
		}
	}
	rec := record("ServeDiffLocal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			get(b, ownerURL)
		}
	})
	localNs := rec.NsPerOp
	rec = record("ServeDiffForwarded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			get(b, otherURL)
		}
	})
	return localNs, rec, nil
}
