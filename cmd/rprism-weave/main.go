// Command rprism-weave is the go build -toolexec companion of `rprism
// record --weave -weave-mode=toolexec`: go build re-executes it around
// every toolchain invocation, and it rewrites compile and link argument
// lists so the target's packages come out instrumented for rprism
// capture. It is configured through the RPRISM_WEAVE_CONFIG environment
// variable (written by the orchestrating rprism process) and behaves as
// a transparent passthrough without it. Not intended to be run by hand.
package main

import (
	"os"

	"repro/internal/weave"
)

func main() {
	os.Exit(weave.RunToolexec(os.Args[1:]))
}
