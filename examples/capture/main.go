// Command capture is a real Go program instrumented with the rprism
// capture shim: a pool of goroutines hammering a shared counter, each
// recording calls, field writes, and spawn ancestry into the trace
// grammar. Run it under the recorder CLI:
//
//	rprism record -out run.trace -- go run ./examples/capture
//	rprism record -url http://localhost:8372 -- go run ./examples/capture -workers 4 -iters 200
//
// Standalone (no injection) it just does its work untraced — the shim
// only activates when `rprism record` exports the capture environment.
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/capture"
)

func main() {
	workers := flag.Int("workers", 3, "concurrent workers")
	iters := flag.Int("iters", 50, "increments per worker")
	delay := flag.Duration("delay", time.Millisecond, "pause between increments (gives live sessions a window)")
	flag.Parse()

	rec, traced, err := capture.StartFromEnv()
	if err != nil {
		fmt.Println("capture:", err)
		return
	}
	if !traced {
		fmt.Println("running untraced (use 'rprism record -- go run ./examples/capture')")
		rec = nil
	}

	var counter atomic.Int64
	counterRepr := capture.Obj(1, "Counter", 1)

	work := func(w int) {
		self := capture.Obj(int64(10+w), "Worker", w+1)
		if rec != nil {
			exit := rec.Enter("Worker.run/1", self, capture.Val("Int", fmt.Sprint(w)))
			defer exit()
		}
		for i := 0; i < *iters; i++ {
			v := counter.Add(1)
			if rec != nil {
				rec.Emit(capture.Event{Kind: capture.KindSet, Target: counterRepr, Member: "value",
					Args: []capture.Repr{capture.Val("Int", fmt.Sprint(v))}})
			}
			time.Sleep(*delay)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		run := func() {
			defer wg.Done()
			work(w)
		}
		if rec != nil {
			rec.Go(run) // records fork/end with spawn ancestry
		} else {
			go run()
		}
	}
	wg.Wait()
	fmt.Printf("counted to %d with %d workers\n", counter.Load(), *workers)

	if rec != nil {
		sum, err := rec.Close()
		if err != nil {
			fmt.Println("capture close:", err)
			return
		}
		fmt.Printf("captured %d entries on %d threads\n", sum.Entries, sum.Threads)
		if sum.TraceID != "" {
			fmt.Printf("finalized in corpus: %s (session %s)\n", sum.TraceID, sum.Session)
		}
	}
}
