// Quickstart: compile two versions of a tiny program, trace both, and
// print the semantic diff produced by views-based trace differencing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rprism "repro"
)

const original = `
class Range {
  Int min;
  Int max;
  Range(Int a, Int b) { super(); this.min = a; this.max = b; }
  Bool contains(Int x) { return x >= this.min && x <= this.max; }
}
class Main {
  void main() {
    let r = new Range(32, 127);
    Sys.print(r.contains(10));
    Sys.print(r.contains(64));
    Sys.print(r.contains(200));
  }
}`

func main() {
	// The "new version" ships the classic off-by-a-constant regression.
	buggy := original[:0] + original
	buggy = replaceOnce(buggy, "new Range(32, 127)", "new Range(1, 127)")

	left := mustTrace(original, "v1")
	right := mustTrace(buggy, "v2")

	d := rprism.Diff(left, right, rprism.DiffOptions{})
	fmt.Println("=== semantic diff (views-based) ===")
	fmt.Print(d.Format(10))
	fmt.Printf("\ncompare operations: %d\n", d.Stats.Compares)

	// The same pair under the quadratic LCS baseline, for comparison.
	l, err := rprism.DiffLCS(left, right, rprism.LCSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LCS baseline found %d diffs with %d compares\n",
		l.NumDiffs(), l.Stats.Compares)
}

func mustTrace(src, name string) *rprism.Trace {
	prog, err := rprism.Compile(src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	res, err := rprism.Run(prog, rprism.RunOptions{TraceName: name})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if res.Err != nil {
		log.Fatalf("%s: runtime error: %v", name, res.Err)
	}
	fmt.Printf("%s output: %q (%d trace entries)\n", name, res.Output, res.Trace.Len())
	return res.Trace
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	log.Fatalf("pattern %q not found", old)
	return s
}
