// Regression hunt: the full §4.1 protocol on the motivating example
// (MYFACES-1130). Four traces are collected — original/new version ×
// non-regressing/regressing test — and the analysis computes
// D = (A − B) ∩ C, printing the candidate regression causes with full
// dynamic context.
//
//	go run ./examples/regressionhunt
package main

import (
	"fmt"
	"log"

	rprism "repro"
	"repro/internal/subjects"
)

func main() {
	s := subjects.MyFaces()
	fmt.Printf("subject: %s (%d lines)\n", s.Name, s.LOC())
	fmt.Printf("regressing test: document type %q\n", s.RegrArgs[0])
	fmt.Printf("similar non-regressing test: document type %q\n\n", s.CorrectArgs[0])

	tr, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original output (regressing input): %q\n", tr.Outputs["orig-regr"])
	fmt.Printf("new      output (regressing input): %q\n\n", tr.Outputs["new-regr"])

	an, err := rprism.AnalyzeRegression(rprism.RegressionInput{
		OrigCorrect: tr.OrigCorrect,
		NewCorrect:  tr.NewCorrect,
		OrigRegr:    tr.OrigRegr,
		NewRegr:     tr.NewRegr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(an.Report(5))
	fmt.Println("\nNote the first candidates: the BinaryCharFilter constructing a")
	fmt.Println("NumericEntityUtil with min = 1 instead of 32 — the planted cause.")
}
