// Protocols: object protocol inference and typestate checking — one of
// the paper's envisioned view-based analyses (§4). The target-object
// views of a trace give each object's method-call lifetime directly; from
// those we infer a protocol model per class, check a declared typestate
// property, and diff inferred protocols across two program versions to
// expose protocol drift.
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"
	"strings"

	rprism "repro"
	"repro/internal/protocol"
)

const connV1 = `
class Conn {
  Bool open;
  void connect() { this.open = true; return; }
  Int query(Int q) { return q * 2; }
  void disconnect() { this.open = false; return; }
}
class Main {
  void session(Conn c, Int queries) {
    c.connect();
    let i = 0;
    while (i < queries) {
      Sys.print(c.query(i));
      i = i + 1;
    }
    c.disconnect();
    return;
  }
  void main() {
    this.session(new Conn(), 2);
    this.session(new Conn(), 0);
    this.session(new Conn(), 4);
  }
}`

func main() {
	web1 := traceWeb(connV1)
	model1 := protocol.Infer(web1, "Conn")
	fmt.Println("inferred from version 1:")
	fmt.Print(model1)

	// Version 2 "optimizes" connection reuse and sneaks in a
	// query-after-disconnect.
	connV2 := strings.Replace(connV1,
		"c.disconnect();\n    return;",
		"c.disconnect();\n    let stale = c.query(99);\n    return;", 1)
	web2 := traceWeb(connV2)
	model2 := protocol.Infer(web2, "Conn")

	fmt.Println("\nprotocol drift between versions:")
	for _, ch := range protocol.DiffModels(model1, model2) {
		fmt.Println(" ", ch)
	}

	decl := protocol.Decl{
		Class: "Conn",
		Allowed: map[string][]string{
			protocol.Start: {"connect"},
			"connect":      {"query", "disconnect"},
			"query":        {"query", "disconnect"},
		},
	}
	fmt.Println("\ntypestate check of version 2 against the declared protocol:")
	for _, v := range protocol.CheckTrace(web2, decl) {
		fmt.Println(" ", v)
	}
}

func traceWeb(src string) *rprism.Web {
	prog, err := rprism.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rprism.Run(prog, rprism.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	return rprism.BuildViews(res.Trace)
}
