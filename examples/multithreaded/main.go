// Multithreaded: thread-view correlation on the Derby-1633 scenario. The
// subject runs background lock-manager and statistics threads next to the
// query-processing thread; XTH pairs the threads across executions by
// spawn-stack similarity, and the views-based diff confines the
// regression differences to the query thread.
//
//	go run ./examples/multithreaded
package main

import (
	"fmt"
	"log"

	rprism "repro"
	"repro/internal/subjects"
	"repro/internal/views"
)

func main() {
	s := subjects.Derby1633()
	tr, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orig threads: %v\n", tr.OrigRegr.ThreadIDs())
	fmt.Printf("new  threads: %v\n", tr.NewRegr.ThreadIDs())

	m := views.MatchThreads(tr.OrigRegr, tr.NewRegr)
	fmt.Printf("thread correlation (XTH): %v\n\n", m.Pairs)

	d := rprism.Diff(tr.OrigRegr, tr.NewRegr, rprism.DiffOptions{})
	perThread := map[int]int{}
	for _, id := range d.DiffLeft {
		perThread[int(tr.OrigRegr.Entries[id].TID)]++
	}
	fmt.Printf("differences by original-version thread: %v\n", perThread)
	fmt.Println("(the background threads correlate cleanly; the query thread")
	fmt.Println(" carries the compilation-abort divergence)")
	fmt.Println()

	web := rprism.BuildViews(tr.OrigRegr)
	c := web.Count()
	fmt.Printf("view web over the original trace: %d views (%d thread, %d method, %d target-object, %d active-object)\n",
		c.Total, c.Thread, c.Method, c.TargetObject, c.ActiveObject)
}
