// Codegen: differencing across dynamically generated code (the
// XALANJ-1725 scenario). The regression's cause lives in a compiler that
// generates class source at run time; the effect only manifests when the
// generated class executes. Static analyses cannot connect the two —
// execution traces contain both.
//
//	go run ./examples/codegen
package main

import (
	"fmt"
	"log"
	"strings"

	rprism "repro"
	"repro/internal/subjects"
)

func main() {
	s := subjects.Xalan1725()
	tr, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orig transform: %q\n", strings.TrimSpace(tr.Outputs["orig-regr"]))
	fmt.Printf("new  transform: %q\n\n", strings.TrimSpace(tr.Outputs["new-regr"]))

	d := rprism.Diff(tr.OrigRegr, tr.NewRegr, rprism.DiffOptions{})
	fmt.Printf("views-based diff: %d differences in %d sequences\n\n",
		d.NumDiffs(), len(d.Sequences))

	// Count how many differing entries execute *inside* the generated
	// Translet class — events no static tool could attribute.
	inGenerated := 0
	for _, id := range d.DiffRight {
		e := tr.NewRegr.Entries[id]
		if strings.HasPrefix(e.Method, "Translet.") ||
			strings.HasPrefix(e.Event.Member, "Translet.") {
			inGenerated++
		}
	}
	fmt.Printf("%d differing entries lie inside the run-time generated Translet class\n", inGenerated)
	fmt.Println()
	fmt.Print(d.Format(4))
}
