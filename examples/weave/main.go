// A stock Go program with no capture imports and no hand
// instrumentation: the subject of rprism's zero-touch weaver. Build and
// record it with
//
//	rprism record --weave -out demo.rseg -- ./examples/weave
//
// and every function below shows up in the trace — entries, exits, and
// three worker goroutines with spawn ancestry — without this file ever
// mentioning rprism. The same worker-pool shape as examples/capture,
// which hand-brackets its functions, so the two make a weave-vs-manual
// comparison pair.
package main

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) add(delta int) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

func (c *counter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func step(c *counter, i int) {
	if i%3 == 0 {
		c.add(2)
		return
	}
	c.add(1)
}

func work(c *counter, iters int, wg *sync.WaitGroup) {
	defer wg.Done()
	for i := 0; i < iters; i++ {
		step(c, i)
	}
}

func iterations() int {
	// WEAVE_DEMO_ITERS exists so tests can record the same binary twice
	// with different workloads and diff the traces.
	if v := os.Getenv("WEAVE_DEMO_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

func main() {
	c := &counter{}
	iters := iterations()
	var wg sync.WaitGroup
	wg.Add(3)
	for w := 0; w < 3; w++ {
		go work(c, iters, &wg)
	}
	wg.Wait()
	fmt.Println("total:", c.total())
}
