package rprism

import (
	"context"
	"fmt"

	"repro/internal/regression"
	"repro/internal/sentinel"
	"repro/internal/trace"
)

// The always-on regression sentinel, engine-side: Engine.WatchSession
// pins a stored baseline against a live corpus session and hands the
// pair to the sentinel monitor, which re-diffs the session
// incrementally on every appended segment and raises a DivergenceEvent
// on the first non-empty candidate set. Aliases re-export the sentinel
// vocabulary at the API surface.

// SentinelOptions configure the engine's watch monitor (debounce, event
// ring size, webhook retry policy, metrics counters).
type SentinelOptions = sentinel.Options

// Watch is one attached session monitor.
type Watch = sentinel.Watch

// WatchInfo summarizes a watch.
type WatchInfo = sentinel.Info

// WatchEvent is a structured watch notification (divergence or terminal
// watch-closed).
type WatchEvent = sentinel.Event

// WithSentinelOptions configures the monitor Engine.Sentinel constructs
// on first use. Note the engine always injects its own worker-budget
// gate when WithWorkers is set and no Acquire is given: watch
// evaluations then queue behind (and count against) the same slot pool
// as interactive analyses.
func WithSentinelOptions(o SentinelOptions) EngineOption {
	return func(e *Engine) { e.sentinelOpts = o }
}

// Sentinel returns the engine's watch monitor, creating it on first
// use. The monitor is shut down by Engine.Close.
func (e *Engine) Sentinel() *sentinel.Monitor {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sentinel == nil {
		opts := e.sentinelOpts
		if opts.Acquire == nil && e.workers != nil {
			opts.Acquire = func(ctx context.Context) (func(), error) {
				_, release, err := e.acquire(ctx)
				return release, err
			}
		}
		e.sentinel = sentinel.New(opts)
	}
	return e.sentinel
}

// Close shuts the engine's background machinery down: every watch is
// detached (emitting its terminal event) and pending webhook deliveries
// drain. Analyses in flight are unaffected; an engine without watches
// needs no Close.
func (e *Engine) Close() {
	e.mu.Lock()
	m := e.sentinel
	e.mu.Unlock()
	if m != nil {
		m.Close()
	}
}

// WatchConfig configures Engine.WatchSession.
type WatchConfig struct {
	// Baseline is the pinned baseline's corpus digest (hex). Required.
	Baseline string
	// Analysis names the analysis semantics (default "regression").
	Analysis string
	// Webhook, when set, receives divergence events as JSON POSTs with
	// at-least-once retry.
	Webhook string
	// ExpectedOld/ExpectedNew are optional corpus digests of an
	// expected-change trace pair: their diff's right-side signatures (B
	// in the paper's D = (A − B) ∩ C) are subtracted from the watch's
	// candidate set, so an intended change does not alarm. Both or
	// neither must be set.
	ExpectedOld string
	ExpectedNew string
	// DiffOpts override the engine's default differencing options.
	DiffOpts DiffOptions
}

// WatchSession attaches a sentinel watch to an open corpus session: the
// session is re-diffed against the pinned baseline on every appended
// segment (incrementally — only thread pairs that grew are recomputed)
// and the first non-empty candidate set emits a divergence event to the
// watch's SSE subscribers and webhook. The watch detaches when the
// session closes or aborts, when Monitor.Detach is called, or at
// Engine.Close.
func (e *Engine) WatchSession(ctx context.Context, sessionID string, cfg WatchConfig) (*Watch, error) {
	if e.store == nil {
		return nil, fmt.Errorf("rprism: engine has no corpus; sessions require WithCorpus")
	}
	sess, err := e.store.Session(sessionID)
	if err != nil {
		return nil, err
	}
	dig, err := trace.ParseDigest(cfg.Baseline)
	if err != nil {
		return nil, fmt.Errorf("rprism: watch baseline: %w", err)
	}
	wl, err := e.store.ViewsCtx(ctx, dig)
	if err != nil {
		return nil, fmt.Errorf("rprism: watch baseline: %w", err)
	}
	opts := cfg.DiffOpts
	if opts == (DiffOptions{}) {
		opts = e.diffOpts
	}
	spec := sentinel.Spec{
		Session:        sess,
		Baseline:       wl,
		BaselineDigest: dig,
		Analysis:       cfg.Analysis,
		Webhook:        cfg.Webhook,
		DiffOpts:       opts,
	}
	if cfg.ExpectedOld != "" || cfg.ExpectedNew != "" {
		if cfg.ExpectedOld == "" || cfg.ExpectedNew == "" {
			return nil, fmt.Errorf("rprism: expected-change pair needs both old and new digests")
		}
		b, err := e.DiffWith(ctx, FromCorpusID(cfg.ExpectedOld), FromCorpusID(cfg.ExpectedNew), opts)
		if err != nil {
			return nil, fmt.Errorf("rprism: expected-change diff: %w", err)
		}
		spec.Expected = make(map[regression.Signature]bool, len(b.DiffRight))
		for _, eid := range b.DiffRight {
			spec.Expected[regression.EntrySignature(b.Right.Entries[eid])] = true
		}
	}
	return e.Sentinel().Attach(spec)
}
