package rprism

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/views"
)

// Digest is the content address of a trace in a corpus store.
type Digest = trace.Digest

// ParseDigest parses the hex form of a trace digest.
func ParseDigest(s string) (Digest, error) { return trace.ParseDigest(s) }

// A Source names a trace for the Engine without saying how to get it: an
// in-memory trace, a pre-built web, a file on disk, a corpus digest, or a
// program yet to be run. Sources resolve lazily — inside the analysis
// call, under its context — and exactly once per Source value: the
// loaded trace and its built view web are memoized (file reads and
// program runs per Source, webs in the engine or corpus cache), so
// passing one Source to many analyses pays for resolution a single time.
//
// The interface is sealed; construct sources with FromTrace, FromWeb,
// FromFile, FromCorpus, FromCorpusID, FromRun, or FromSession (the one
// deliberate exception to once-only resolution: live sessions resolve
// to a fresh snapshot per analysis).
type Source interface {
	// resolve materializes the source's view web on e, honoring ctx.
	resolve(ctx context.Context, e *Engine) (*views.Web, error)
	// resolveTrace materializes only the raw trace — for analyses (the
	// LCS baseline) that never need a web, so none is built or cached.
	resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error)
}

// FromTrace sources an in-memory trace. The engine caches the built web,
// keyed by trace identity, so repeated analyses over the same trace skip
// web construction.
func FromTrace(t *Trace) Source { return &traceSource{t: t} }

type traceSource struct{ t *Trace }

func (s *traceSource) resolve(ctx context.Context, e *Engine) (*views.Web, error) {
	if s.t == nil {
		return nil, fmt.Errorf("rprism: FromTrace(nil)")
	}
	return e.cachedWeb(ctx, s.t)
}

func (s *traceSource) resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error) {
	if s.t == nil {
		return nil, fmt.Errorf("rprism: FromTrace(nil)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.t, nil
}

// FromWeb sources an already-built view web, for callers that manage
// their own web lifecycle.
func FromWeb(w *Web) Source { return &webSource{w: w} }

type webSource struct{ w *views.Web }

func (s *webSource) resolve(ctx context.Context, e *Engine) (*views.Web, error) {
	if s.w == nil {
		return nil, fmt.Errorf("rprism: FromWeb(nil)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.w, nil
}

func (s *webSource) resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error) {
	if s.w == nil {
		return nil, fmt.Errorf("rprism: FromWeb(nil)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.w.Trace, nil
}

// FromFile sources a trace file written by SaveTrace (or `rprism trace`).
// The file is read on first resolution and memoized in the Source.
func FromFile(path string) Source { return &fileSource{path: path} }

type fileSource struct {
	path string
	once sync.Once
	t    *trace.Trace
	err  error
}

func (s *fileSource) resolve(ctx context.Context, e *Engine) (*views.Web, error) {
	t, err := s.resolveTrace(ctx, e)
	if err != nil {
		return nil, err
	}
	return e.cachedWeb(ctx, t)
}

func (s *fileSource) resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.once.Do(func() { s.t, s.err = trace.Load(s.path) })
	if s.err != nil {
		return nil, fmt.Errorf("rprism: source %q: %w", s.path, s.err)
	}
	return s.t, nil
}

// FromCorpus sources a stored trace by digest. It requires an engine
// constructed WithCorpus; the web comes out of the store's single-flight
// cache, so concurrent analyses of one trace share a single build.
func FromCorpus(id Digest) Source { return &corpusSource{id: id} }

// FromCorpusID is FromCorpus for a hex digest string (parsed at
// resolution time, so construction cannot fail). A git-style short
// prefix (≥ 4 hex chars) resolves to the unique stored digest that
// begins with it.
func FromCorpusID(id string) Source { return &corpusSource{raw: id, parse: true} }

type corpusSource struct {
	id    Digest
	raw   string
	parse bool
}

func (s *corpusSource) digest(e *Engine) (Digest, error) {
	if e.store == nil {
		return Digest{}, fmt.Errorf("rprism: FromCorpus on an engine without a corpus (construct it WithCorpus)")
	}
	if !s.parse {
		return s.id, nil
	}
	id, err := trace.ParseDigest(s.raw)
	if err != nil {
		// Not a full digest — try it as a short prefix against the store.
		if rid, rerr := e.store.ResolvePrefix(s.raw); rerr == nil {
			return rid, nil
		} else if errors.Is(rerr, corpus.ErrNotFound) {
			return Digest{}, rerr
		}
		return Digest{}, fmt.Errorf("%w: corpus source: %v", ErrBadRequest, err)
	}
	return id, nil
}

func (s *corpusSource) resolve(ctx context.Context, e *Engine) (*views.Web, error) {
	id, err := s.digest(e)
	if err != nil {
		return nil, err
	}
	return e.store.ViewsCtx(ctx, id)
}

func (s *corpusSource) resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error) {
	id, err := s.digest(e)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.store.Get(id)
}

// FromSession sources a live, append-open capture session. Unlike every
// other source it is deliberately NOT memoized: each resolution takes a
// fresh point-in-time snapshot of the still-growing session (trace and
// query-ready web), so an analysis sees the program as of the moment it
// started while the session keeps streaming underneath it. Snapshots
// are immutable and share storage with the session, making resolution
// O(views + objects), not O(entries).
func FromSession(s *corpus.Session) Source { return &sessionSource{s: s} }

type sessionSource struct{ s *corpus.Session }

func (s *sessionSource) resolve(ctx context.Context, e *Engine) (*views.Web, error) {
	if s.s == nil {
		return nil, fmt.Errorf("rprism: FromSession(nil)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.s.Web(), nil
}

func (s *sessionSource) resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error) {
	if s.s == nil {
		return nil, fmt.Errorf("rprism: FromSession(nil)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.s.Snapshot(), nil
}

// FromRun sources the trace of executing a compiled program under the
// tracing interpreter. The run happens on first resolution and is
// memoized in the Source; a program error that still yielded a trace
// (Sys.abort) resolves to the partial trace, matching Run's semantics.
func FromRun(p *Program, opts RunOptions) Source { return &runSource{p: p, opts: opts} }

type runSource struct {
	p    *Program
	opts RunOptions
	once sync.Once
	t    *trace.Trace
	err  error
}

func (s *runSource) resolve(ctx context.Context, e *Engine) (*views.Web, error) {
	t, err := s.resolveTrace(ctx, e)
	if err != nil {
		return nil, err
	}
	return e.cachedWeb(ctx, t)
}

func (s *runSource) resolveTrace(ctx context.Context, e *Engine) (*trace.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.once.Do(func() {
		res, err := interp.Run(s.p, s.opts)
		if err != nil {
			s.err = err
			return
		}
		if res.Err != nil && res.Trace == nil {
			s.err = fmt.Errorf("rprism: run source: %s", res.Err.Msg)
			return
		}
		s.t = res.Trace
	})
	if s.err != nil {
		return nil, s.err
	}
	return s.t, nil
}
