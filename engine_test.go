package rprism

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/trace"
)

// slowSyntheticPair builds two single-threaded traces with no entry in
// common: every divergence point fails quick-scan, fails exploration,
// and pays escalating correspondence scans — the adversarial workload
// for the differencing semantics, and exactly the "runaway request"
// cancellation exists to kill.
func slowSyntheticPair(n int) (*Trace, *Trace) {
	mk := func(side string) *Trace {
		tr := trace.New(side)
		for i := 0; i < n; i++ {
			m := fmt.Sprintf("%s.m%d/0", side, i)
			tr.Append(1, m, trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: m})
		}
		return tr
	}
	return mk("CancelL"), mk("CancelR")
}

// TestDiffCancellation aborts a large synthetic diff via its context and
// requires a prompt context.Canceled return with no goroutines left
// behind. Run under -race in CI.
func TestDiffCancellation(t *testing.T) {
	l, r := slowSyntheticPair(6000)
	eng := NewEngine()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		res *DiffResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := eng.Diff(ctx, FromTrace(l), FromTrace(r))
		done <- out{res, err}
	}()
	// Give the diff a moment to get deep into its scan loops, then pull
	// the plug and clock the unwind.
	time.Sleep(50 * time.Millisecond)
	canceledAt := time.Now()
	cancel()

	select {
	case o := <-done:
		elapsed := time.Since(canceledAt)
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("aborted diff returned err=%v, want context.Canceled", o.err)
		}
		if o.res != nil {
			t.Error("aborted diff returned a non-nil result")
		}
		// "Promptly": the unwind crosses a few poll intervals, not the
		// rest of a multi-second evaluation. Generous bound for -race.
		if elapsed > 2*time.Second {
			t.Errorf("cancellation took %v, want well under 2s", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled diff never returned")
	}

	// No goroutine may outlive the aborted analysis.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked by aborted diff: %d before, %d after", before, g)
	}
}

// TestCancellationReachesEveryAnalysis drives each cancellable engine
// entry point with an already-dead context.
func TestCancellationReachesEveryAnalysis(t *testing.T) {
	l, r := slowSyntheticPair(64)
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := eng.Diff(ctx, FromTrace(l), FromTrace(r)); !errors.Is(err, context.Canceled) {
		t.Errorf("Diff: %v", err)
	}
	if _, err := eng.DiffLCS(ctx, FromTrace(l), FromTrace(r), LCSOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("DiffLCS: %v", err)
	}
	if _, err := eng.AnalyzeRegression(ctx, RegressionSources{
		OrigCorrect: FromTrace(l), NewCorrect: FromTrace(l),
		OrigRegr: FromTrace(l), NewRegr: FromTrace(r),
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeRegression: %v", err)
	}
	if _, err := eng.Infer(ctx, FromTrace(l), "CancelL"); !errors.Is(err, context.Canceled) {
		t.Errorf("Infer: %v", err)
	}
	if _, err := eng.Impact(ctx, FromTrace(l), FromTrace(r)); !errors.Is(err, context.Canceled) {
		t.Errorf("Impact: %v", err)
	}
}

func compileAndRun(t *testing.T, src string) *RunResult {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineMatchesLegacyPipeline checks the Engine path returns exactly
// what the deprecated free functions return on the same traces.
func TestEngineMatchesLegacyPipeline(t *testing.T) {
	v2 := strings.Replace(v1, "c.bump(2);", "c.bump(3);", 1)
	r1 := compileAndRun(t, v1)
	r2 := compileAndRun(t, v2)

	eng := NewEngine()
	ctx := context.Background()

	want := Diff(r1.Trace, r2.Trace, DiffOptions{})
	got, err := eng.Diff(ctx, FromTrace(r1.Trace), FromTrace(r2.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDiffs() != want.NumDiffs() || len(got.Sequences) != len(want.Sequences) {
		t.Errorf("engine diff %d/%d, legacy %d/%d",
			got.NumDiffs(), len(got.Sequences), want.NumDiffs(), len(want.Sequences))
	}

	wantAn, err := AnalyzeRegression(RegressionInput{
		OrigCorrect: r1.Trace, NewCorrect: r1.Trace,
		OrigRegr: r1.Trace, NewRegr: r2.Trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotAn, err := eng.AnalyzeRegression(ctx, RegressionSources{
		OrigCorrect: FromTrace(r1.Trace), NewCorrect: FromTrace(r1.Trace),
		OrigRegr: FromTrace(r1.Trace), NewRegr: FromTrace(r2.Trace),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotAn.Sizes != wantAn.Sizes || len(gotAn.D) != len(wantAn.D) {
		t.Errorf("engine regression %+v/%d, legacy %+v/%d",
			gotAn.Sizes, len(gotAn.D), wantAn.Sizes, len(wantAn.D))
	}

	wantModel := InferProtocol(BuildViews(r1.Trace), "Counter")
	gotModel, err := eng.Infer(ctx, FromTrace(r1.Trace), "Counter")
	if err != nil {
		t.Fatal(err)
	}
	if gotModel.Objects != wantModel.Objects {
		t.Errorf("engine protocol objects=%d, legacy %d", gotModel.Objects, wantModel.Objects)
	}
}

// TestEngineWebCache checks FromTrace sources share one web build per
// trace across analyses.
func TestEngineWebCache(t *testing.T) {
	res := compileAndRun(t, v1)
	eng := NewEngine()
	ctx := context.Background()

	w1, err := eng.Views(ctx, FromTrace(res.Trace))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := eng.Views(ctx, FromTrace(res.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("two sources over one trace resolved to distinct webs")
	}
}

// TestEngineSources exercises every Source constructor end to end.
func TestEngineSources(t *testing.T) {
	res := compileAndRun(t, v1)
	ctx := context.Background()

	t.Run("FromFile", func(t *testing.T) {
		eng := NewEngine()
		path := t.TempDir() + "/t.trace"
		if err := SaveTrace(res.Trace, path); err != nil {
			t.Fatal(err)
		}
		w, err := eng.Views(ctx, FromFile(path))
		if err != nil {
			t.Fatal(err)
		}
		if w.Trace.Len() != res.Trace.Len() {
			t.Errorf("file source: %d entries, want %d", w.Trace.Len(), res.Trace.Len())
		}
		if _, err := eng.Views(ctx, FromFile(path+".missing")); err == nil {
			t.Error("missing file resolved")
		}
	})

	t.Run("FromRun", func(t *testing.T) {
		eng := NewEngine()
		p, err := Compile(v1)
		if err != nil {
			t.Fatal(err)
		}
		src := FromRun(p, RunOptions{})
		w, err := eng.Views(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if w.Count().Total == 0 {
			t.Error("run source built no views")
		}
		// Memoized: the second resolution must not re-run the program.
		w2, err := eng.Views(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if w != w2 {
			t.Error("run source re-resolved to a different web")
		}
	})

	t.Run("FromCorpus", func(t *testing.T) {
		store, err := corpus.New(t.TempDir(), corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := store.Put(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(WithCorpus(store))
		w, err := eng.Views(ctx, FromCorpus(id))
		if err != nil {
			t.Fatal(err)
		}
		if w.Trace.Len() != res.Trace.Len() {
			t.Errorf("corpus source: %d entries, want %d", w.Trace.Len(), res.Trace.Len())
		}
		if _, err := eng.Views(ctx, FromCorpusID("zzzz")); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad digest string: %v", err)
		}
		// An engine without a corpus must reject corpus sources clearly.
		if _, err := NewEngine().Views(ctx, FromCorpus(id)); err == nil ||
			!strings.Contains(err.Error(), "WithCorpus") {
			t.Errorf("corpus-less engine: %v", err)
		}
	})
}

// TestRegistry covers registration, discovery, and dispatch — including
// a user-registered analysis living alongside the built-ins.
func TestRegistry(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range Analyses() {
		names[a.Name] = true
	}
	for _, want := range []string{"diff", "regression", "protocol", "typestate", "impact"} {
		if !names[want] {
			t.Errorf("built-in analysis %q not registered", want)
		}
	}
	if len(names) < 5 {
		t.Fatalf("only %d analyses registered", len(names))
	}

	res := compileAndRun(t, v1)
	eng := NewEngine()
	ctx := context.Background()

	Register("test-entry-count", func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		src, err := req.Source("trace")
		if err != nil {
			return nil, err
		}
		w, err := e.Views(ctx, src)
		if err != nil {
			return nil, err
		}
		return w.Trace.Len(), nil
	})

	out, err := eng.RunAnalysis(ctx, "test-entry-count", AnalysisRequest{
		Sources: map[string]Source{"trace": FromTrace(res.Trace)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.(int) != res.Trace.Len() {
		t.Errorf("custom analysis returned %v, want %d", out, res.Trace.Len())
	}

	if _, err := eng.RunAnalysis(ctx, "no-such-analysis", AnalysisRequest{}); err == nil {
		t.Error("unknown analysis dispatched")
	}
	if _, err := eng.RunAnalysis(ctx, "diff", AnalysisRequest{
		Sources: map[string]Source{"left": FromTrace(res.Trace)},
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("missing role: %v", err)
	}
	if _, err := eng.RunAnalysis(ctx, "protocol", AnalysisRequest{
		Sources: map[string]Source{"trace": FromTrace(res.Trace)},
		Params:  json.RawMessage(`{"window": "not a number"`),
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad params: %v", err)
	}
}

// TestRegistryDiffHonorsParams checks wire params reach the differ.
func TestRegistryDiffHonorsParams(t *testing.T) {
	v2 := strings.Replace(v1, "c.bump(2);", "c.bump(3);", 1)
	r1 := compileAndRun(t, v1)
	r2 := compileAndRun(t, v2)
	eng := NewEngine()
	ctx := context.Background()

	want := Diff(r1.Trace, r2.Trace, DiffOptions{Window: 5, Radius: 2})
	out, err := eng.RunAnalysis(ctx, "diff", AnalysisRequest{
		Sources: map[string]Source{"left": FromTrace(r1.Trace), "right": FromTrace(r2.Trace)},
		Params:  json.RawMessage(`{"window": 5, "radius": 2}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*DiffResult)
	if got.NumDiffs() != want.NumDiffs() {
		t.Errorf("params ignored: %d diffs, want %d", got.NumDiffs(), want.NumDiffs())
	}
}

// TestEngineWorkerBudget checks a saturated engine blocks until a slot
// frees, honors ctx while queued, and lets one analysis's nested engine
// calls reenter its own slot instead of deadlocking.
func TestEngineWorkerBudget(t *testing.T) {
	res := compileAndRun(t, v1)
	eng := NewEngine(WithWorkers(1))
	ctx := context.Background()

	// Occupy the only slot.
	_, release, err := eng.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := eng.Diff(shortCtx, FromTrace(res.Trace), FromTrace(res.Trace)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued past a dead context: %v", err)
	}
	release()
	if _, err := eng.Diff(ctx, FromTrace(res.Trace), FromTrace(res.Trace)); err != nil {
		t.Errorf("freed slot still blocked: %v", err)
	}

	// Reentrancy: a registered analysis running under RunAnalysis's slot
	// may drive every engine method without claiming a second slot —
	// with Workers(1), any double-acquire here would deadlock.
	Register("test-budget-reentrant", func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		src, err := req.Source("trace")
		if err != nil {
			return nil, err
		}
		if _, err := e.Views(ctx, src); err != nil {
			return nil, err
		}
		return e.Diff(ctx, src, src)
	})
	reentrantCtx, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if _, err := eng.RunAnalysis(reentrantCtx, "test-budget-reentrant", AnalysisRequest{
		Sources: map[string]Source{"trace": FromTrace(res.Trace)},
	}); err != nil {
		t.Errorf("nested engine calls deadlocked or failed under Workers(1): %v", err)
	}
}

// TestIntraDiffWorkersClampedToSlotBudget pins the oversubscription
// contract of WithDiffParallelism: intra-diff workers beyond the
// analysis's own slot are granted only from free WithWorkers slots, and
// are returned afterwards.
func TestIntraDiffWorkersClampedToSlotBudget(t *testing.T) {
	eng := NewEngine(WithWorkers(3), WithDiffParallelism(8))

	// An analysis holding one slot asks for the engine default (8): two
	// slots are free, so it gets 1 + 2 workers and the budget is full.
	_, release, err := eng.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, releasePar := eng.intraWorkers(0)
	if par != 3 {
		t.Errorf("intraWorkers(0) granted %d with 2 free slots, want 3", par)
	}
	if len(eng.workers) != 3 {
		t.Errorf("budget shows %d/3 slots used during the diff, want 3", len(eng.workers))
	}
	releasePar()
	if len(eng.workers) != 1 {
		t.Errorf("budget shows %d/3 slots used after release, want the analysis's own 1", len(eng.workers))
	}
	release()

	// A per-call request below the free budget is honored exactly.
	par, releasePar = eng.intraWorkers(2)
	if par != 2 {
		t.Errorf("intraWorkers(2) = %d, want 2", par)
	}
	releasePar()
	if len(eng.workers) != 0 {
		t.Errorf("slots leaked: %d still held", len(eng.workers))
	}

	// Without a worker budget the request passes through unclamped, and
	// an unset engine defaults to GOMAXPROCS.
	unbounded := NewEngine(WithDiffParallelism(5))
	if par, rel := unbounded.intraWorkers(0); par != 5 {
		t.Errorf("unbounded engine granted %d, want the configured 5", par)
	} else {
		rel()
	}
	plain := NewEngine()
	if par, rel := plain.intraWorkers(0); par != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS (%d)", par, runtime.GOMAXPROCS(0))
	} else {
		rel()
	}
}

// TestEngineDiffParallelismEquivalence drives the same diff through the
// engine at serial and forced-parallel settings: the results must be
// identical — the engine knob changes scheduling, never output.
func TestEngineDiffParallelismEquivalence(t *testing.T) {
	v2 := strings.Replace(v1, "c.bump(2);", "c.bump(3);", 1)
	res1 := compileAndRun(t, v1)
	res2 := compileAndRun(t, v2)
	eng := NewEngine()
	ctx := context.Background()

	opts := eng.DefaultDiffOptions()
	opts.Parallelism = 1
	serial, err := eng.DiffWith(ctx, FromTrace(res1.Trace), FromTrace(res2.Trace), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	parallel, err := eng.DiffWith(ctx, FromTrace(res1.Trace), FromTrace(res2.Trace), opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumDiffs() != parallel.NumDiffs() ||
		len(serial.Sequences) != len(parallel.Sequences) ||
		serial.Stats != parallel.Stats {
		t.Errorf("parallel engine diff diverged: serial %d diffs %+v, parallel %d diffs %+v",
			serial.NumDiffs(), serial.Stats, parallel.NumDiffs(), parallel.Stats)
	}
}
