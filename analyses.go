package rprism

import (
	"repro/internal/diff"
	"repro/internal/impact"
	"repro/internal/protocol"
)

// The paper's §4 lists further view-based dynamic analyses its trace
// abstraction enables: object protocol inference, property checking
// (typestate), and impact analysis. This file exposes our implementations
// of those extensions.

// ProtocolModel is an inferred per-class object protocol: the observed
// method-order transitions over all instances in a trace.
type ProtocolModel = protocol.Model

// ProtocolDecl declares a typestate property: the permitted method-order
// transitions for a class.
type ProtocolDecl = protocol.Decl

// ProtocolViolation is a typestate breach observed in a trace.
type ProtocolViolation = protocol.Violation

// ProtocolChange is one transition added or removed between two inferred
// protocols (protocol drift across versions).
type ProtocolChange = protocol.Change

// InferProtocol infers the object protocol of a class from the trace's
// target-object views.
//
// Deprecated: use (*Engine).Infer with a Source.
func InferProtocol(w *Web, class string) *ProtocolModel { return protocol.Infer(w, class) }

// DiffProtocols reports transitions present in exactly one of two
// inferred protocols.
func DiffProtocols(old, new *ProtocolModel) []ProtocolChange { return protocol.DiffModels(old, new) }

// CheckProtocol verifies every object of the declared class follows the
// typestate property, returning all violations in trace order.
//
// Deprecated: use (*Engine).Check with a Source.
func CheckProtocol(w *Web, d ProtocolDecl) []ProtocolViolation { return protocol.CheckTrace(w, d) }

// ImpactSurface ranks the methods, classes, objects, and threads touched
// by the behavioural differences of a trace pair.
type ImpactSurface = impact.Surface

// ComputeImpact builds the impact surface of a differencing result.
//
// Deprecated: use (*Engine).Impact with Sources, which diffs and ranks
// in one cancellable call.
func ComputeImpact(res *diff.Result) *ImpactSurface { return impact.Compute(res) }
