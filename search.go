package rprism

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/index"
	"repro/internal/trace"
)

// SearchOptions tune the corpus-scale divergence search.
type SearchOptions struct {
	// K is how many traces to return (default 10).
	K int
	// Farthest ranks by most-divergent instead of least-divergent.
	Farthest bool
	// Exhaustive disables sketch-bound pruning and diffs every stored
	// trace — the correctness baseline the pruned path is tested and
	// benchmarked against. Results are identical either way.
	Exhaustive bool
	// Diff tunes the exact per-pair differencing of the refine stage.
	// Parallelism here is the across-candidate fan-out width (each
	// individual diff runs serial); it is clamped to free worker slots.
	Diff DiffOptions
}

// SearchHit is one ranked trace of a search result.
type SearchHit struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	Entries  int     `json:"entries"`
	NumDiffs int     `json:"num_diffs"` // exact, from the views differencer
	Jaccard  float64 `json:"jaccard"`   // estimated sketch similarity to the query
}

// SearchResult ranks the stored traces nearest to (or farthest from) a
// query. Hits carry exact divergence counts: pruning only ever skips
// candidates whose sketch bounds prove they cannot enter the top-K, so
// the result is identical to the exhaustive all-pairs scan.
type SearchResult struct {
	Query     string      `json:"query"` // resolved query digest
	K         int         `json:"k"`
	Farthest  bool        `json:"farthest,omitempty"`
	Corpus    int         `json:"corpus"`    // candidate pool (stored traces excluding the query)
	Evaluated int         `json:"evaluated"` // exact diffs computed
	Pruned    int         `json:"pruned"`    // candidates skipped by sketch bounds
	Hits      []SearchHit `json:"hits"`
}

// Search finds the K stored traces least (or, with opts.Farthest, most)
// divergent from the query under the exact views-differencing metric
// (diff.Result.NumDiffs), without diffing the whole corpus: candidates
// are ordered by their sketch bound — the =e-class count-vector lower
// bound for nearest, the entry-sum upper bound for farthest — and the
// scan stops as soon as the bound proves no remaining candidate can
// displace the current Kth-best exact distance. The query may be any
// Source; a corpus-backed query is excluded from its own results.
func (e *Engine) Search(ctx context.Context, query Source, opts SearchOptions) (*SearchResult, error) {
	if query == nil {
		return nil, fmt.Errorf("rprism: nil Source")
	}
	if e.store == nil {
		return nil, fmt.Errorf("rprism: Search on an engine without a corpus (construct it WithCorpus)")
	}
	if opts.K <= 0 {
		opts.K = 10
	}
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := e.store.EnsureIndexed(); err != nil {
		return nil, err
	}

	// Resolve the query's sketch and digest. A corpus source resolves
	// through the store's sketch tiers (no trace decode); anything else
	// sketches its resolved trace directly.
	var qid Digest
	var qsk *index.Sketch
	if cs, ok := query.(*corpusSource); ok {
		if qid, err = cs.digest(e); err != nil {
			return nil, err
		}
		if qsk, err = e.store.Sketch(qid); err != nil {
			return nil, err
		}
	} else {
		t, err := query.resolveTrace(ctx, e)
		if err != nil {
			return nil, err
		}
		qsk = index.SketchTrace(t)
		qid = t.ComputeDigest()
	}
	qweb, err := e.Views(ctx, query)
	if err != nil {
		return nil, err
	}

	type cand struct {
		id    Digest
		meta  corpus.Meta
		sk    *index.Sketch
		bound int // lower bound (nearest) or upper bound (farthest)
	}
	metas := e.store.List()
	cands := make([]cand, 0, len(metas))
	for _, m := range metas {
		id, err := trace.ParseDigest(m.ID)
		if err != nil || id == qid {
			continue
		}
		sk, err := e.store.Sketch(id)
		if err != nil {
			return nil, err
		}
		c := cand{id: id, meta: m, sk: sk}
		if opts.Farthest {
			c.bound = index.DiffUpperBound(qsk, sk)
		} else {
			c.bound = index.DiffLowerBound(qsk, sk)
		}
		cands = append(cands, c)
	}
	// Bound order: most promising first, so the Kth-best cutoff tightens
	// as early as possible. Digest order breaks ties deterministically.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bound != cands[j].bound {
			if opts.Farthest {
				return cands[i].bound > cands[j].bound
			}
			return cands[i].bound < cands[j].bound
		}
		return cands[i].id.String() < cands[j].id.String()
	})

	pairOpts := opts.Diff
	pairOpts.Parallelism = 1 // parallelism is spent across candidates
	par, releasePar := e.intraWorkers(opts.Diff.Parallelism)
	defer releasePar()
	if par > len(cands) {
		par = len(cands)
	}

	type hit struct {
		c        cand
		numDiffs int
	}
	var (
		mu      sync.Mutex
		next    int
		pruned  int
		done    []hit
		scanErr error
	)
	// kthBest returns the exact Kth-best distance among completed diffs.
	// It only ever tightens as results land, so a prune decision made
	// against it stays valid no matter how the workers interleave.
	kthBest := func() (int, bool) {
		if len(done) < opts.K {
			return 0, false
		}
		ds := make([]int, len(done))
		for i, h := range done {
			ds[i] = h.numDiffs
		}
		sort.Ints(ds)
		if opts.Farthest {
			return ds[len(ds)-opts.K], true
		}
		return ds[opts.K-1], true
	}
	worker := func() {
		for {
			mu.Lock()
			if scanErr != nil || next >= len(cands) {
				mu.Unlock()
				return
			}
			if !opts.Exhaustive {
				if cutoff, ok := kthBest(); ok {
					c := cands[next]
					// Strict inequality: a candidate whose bound ties the
					// cutoff could still tie into the top-K, so only a
					// provably-losing bound is skipped. Bounds are sorted,
					// so everything after this candidate loses too.
					if (!opts.Farthest && c.bound > cutoff) || (opts.Farthest && c.bound < cutoff) {
						pruned += len(cands) - next
						next = len(cands)
						mu.Unlock()
						return
					}
				}
			}
			c := cands[next]
			next++
			mu.Unlock()

			cweb, err := e.store.ViewsCtx(ctx, c.id)
			var res *DiffResult
			if err == nil {
				res, err = diff.ViewDiffWebsCtx(ctx, qweb, cweb, pairOpts)
			}
			mu.Lock()
			if err != nil {
				if scanErr == nil {
					scanErr = err
				}
			} else {
				done = append(done, hit{c: c, numDiffs: res.NumDiffs()})
			}
			mu.Unlock()
		}
	}
	if par <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < par; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); worker() }()
		}
		wg.Wait()
	}
	if scanErr != nil {
		return nil, scanErr
	}

	sort.Slice(done, func(i, j int) bool {
		if done[i].numDiffs != done[j].numDiffs {
			if opts.Farthest {
				return done[i].numDiffs > done[j].numDiffs
			}
			return done[i].numDiffs < done[j].numDiffs
		}
		return done[i].c.id.String() < done[j].c.id.String()
	})
	out := &SearchResult{
		Query:     qid.String(),
		K:         opts.K,
		Farthest:  opts.Farthest,
		Corpus:    len(cands),
		Evaluated: len(done),
		Pruned:    pruned,
		Hits:      []SearchHit{},
	}
	for i, h := range done {
		if i >= opts.K {
			break
		}
		out.Hits = append(out.Hits, SearchHit{
			ID:       h.c.id.String(),
			Name:     h.c.meta.Name,
			Entries:  h.c.meta.Entries,
			NumDiffs: h.numDiffs,
			Jaccard:  index.EstimatedJaccard(qsk, h.c.sk),
		})
	}
	return out, nil
}

func init() {
	RegisterAnalysis(AnalysisInfo{
		Name:   "search",
		Doc:    "corpus-scale divergence search: the K stored traces least (or most) divergent from the query, sketch-pruned but exact",
		Roles:  []string{"query"},
		Params: "k, farthest, exhaustive, plus the diff tunables (parallelism = across-candidate fan-out)",
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		query, err := req.Source("query")
		if err != nil {
			return nil, err
		}
		p, err := decodeParams[struct {
			diffParams
			K          *int  `json:"k"`
			Farthest   *bool `json:"farthest"`
			Exhaustive *bool `json:"exhaustive"`
		}](req.Params)
		if err != nil {
			return nil, err
		}
		opts := SearchOptions{Diff: p.apply(e.DefaultDiffOptions())}
		if p.K != nil {
			opts.K = *p.K
		}
		if p.Farthest != nil {
			opts.Farthest = *p.Farthest
		}
		if p.Exhaustive != nil {
			opts.Exhaustive = *p.Exhaustive
		}
		return e.Search(ctx, query, opts)
	})
}
