package rprism

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/subjects"
)

// benchSearchCorpus materializes the 200-trace benchmark corpus: 10
// families × 20 variants, ~300 entries each, all view-webs pre-built so
// the timed region measures search strategy rather than first-touch
// decode cost. (20 variants per family keeps the whole top-10
// within one family, which is what gives the sketch bounds something
// to prune against.) Returns the engine and the digest of fam01-var00.
func benchSearchCorpus(b *testing.B) (*Engine, Digest) {
	b.Helper()
	store, err := corpus.New(b.TempDir(), corpus.Options{
		TraceCacheSize: 256, WebCacheSize: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	var query Digest
	for fam := 1; fam <= 10; fam++ {
		for v := 0; v < 20; v++ {
			id, _, err := store.Put(subjects.GenCorpusTrace(fam, v, 300))
			if err != nil {
				b.Fatal(err)
			}
			if fam == 1 && v == 0 {
				query = id
			}
			if _, err := store.Views(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := store.EnsureIndexed(); err != nil {
		b.Fatal(err)
	}
	return NewEngine(WithCorpus(store)), query
}

// BenchmarkTopKPruned and BenchmarkTopKExhaustive are the headline
// pair: identical top-10 results (asserted outside the timer), with the
// pruned scan skipping every candidate whose sketch lower bound proves
// it cannot displace the Kth-best exact distance. Compare with
//
//	go test -bench 'TopK(Pruned|Exhaustive)$' -benchtime=5x .
func BenchmarkTopKPruned(b *testing.B) {
	eng, query := benchSearchCorpus(b)
	ctx := context.Background()
	pruned, err := eng.Search(ctx, FromCorpus(query), SearchOptions{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	exhaustive, err := eng.Search(ctx, FromCorpus(query), SearchOptions{K: 10, Exhaustive: true})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(pruned.Hits, exhaustive.Hits) {
		b.Fatal("pruned top-10 differs from exhaustive baseline")
	}
	if pruned.Pruned == 0 {
		b.Fatal("pruned search evaluated the whole corpus")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(ctx, FromCorpus(query), SearchOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKExhaustive(b *testing.B) {
	eng, query := benchSearchCorpus(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(ctx, FromCorpus(query), SearchOptions{K: 10, Exhaustive: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchCompute isolates the per-Put sketching cost; read next
// to BenchmarkCorpusPut (internal/corpus) it bounds the ingest overhead
// the index adds — the acceptance budget is <5% of Store.Put.
func BenchmarkSketchCompute(b *testing.B) {
	tr := subjects.GenCorpusTrace(1, 0, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.SketchTrace(tr)
	}
}

func BenchmarkClusterCorpus(b *testing.B) {
	eng, _ := benchSearchCorpus(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ClusterCorpus(ctx, ClusterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
