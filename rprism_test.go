package rprism

import (
	"path/filepath"
	"strings"
	"testing"
)

const v1 = `
class Counter {
  Int n;
  void bump(Int by) { this.n = this.n + by; return; }
}
class Main {
  void main() {
    let c = new Counter();
    c.bump(1);
    c.bump(2);
    Sys.print(c.n);
  }
}`

func TestCompileRunDiffPipeline(t *testing.T) {
	v2 := strings.Replace(v1, "c.bump(2);", "c.bump(3);", 1)

	p1, err := Compile(v1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(v2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(p1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != "3\n" || r2.Output != "4\n" {
		t.Fatalf("outputs: %q %q", r1.Output, r2.Output)
	}

	d := Diff(r1.Trace, r2.Trace, DiffOptions{})
	if d.NumDiffs() == 0 {
		t.Fatal("no differences found")
	}
	l, err := DiffLCS(r1.Trace, r2.Trace, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumDiffs() == 0 {
		t.Fatal("LCS found no differences")
	}

	web := BuildViews(r1.Trace)
	if web.Count().Total == 0 {
		t.Fatal("no views built")
	}
}

func TestCompileRejectsBadPrograms(t *testing.T) {
	if _, err := Compile(`class Main { void main() { return y; } }`); err == nil {
		t.Error("unknown variable must fail compilation")
	}
	if _, err := Compile(`class {`); err == nil {
		t.Error("syntax error must fail compilation")
	}
}

func TestTraceRoundTripThroughDisk(t *testing.T) {
	p, err := Compile(v1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := SaveTrace(r.Trace, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Trace.Len() {
		t.Errorf("round trip: %d vs %d entries", got.Len(), r.Trace.Len())
	}
}

func TestAnalysesFacade(t *testing.T) {
	p, err := Compile(v1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	web := BuildViews(r.Trace)

	m := InferProtocol(web, "Counter")
	if m.Objects != 1 || !m.Allows("bump", "bump") {
		t.Errorf("protocol: %s", m)
	}
	if got := DiffProtocols(m, m); len(got) != 0 {
		t.Errorf("self drift: %v", got)
	}
	decl := ProtocolDecl{Class: "Counter", Allowed: map[string][]string{
		"^": {"bump"}, "bump": {"bump"},
	}}
	if v := CheckProtocol(web, decl); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}

	v2 := strings.Replace(v1, "c.bump(2);", "c.bump(3);", 1)
	p2, err := Compile(v2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeImpact(Diff(r.Trace, r2.Trace, DiffOptions{}))
	if s.Total == 0 || len(s.Classes) == 0 {
		t.Errorf("impact surface empty: %+v", s)
	}
}
