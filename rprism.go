// Package rprism is a Go reproduction of RPRISM, the system of
// "Semantics-Aware Trace Analysis" (Hoffman, Eugster, Jagannathan,
// PLDI 2009): semantic views over execution traces, linear-time
// views-based trace differencing, and automated regression-cause
// analysis.
//
// The pipeline, through the Engine API:
//
//	prog, _ := rprism.Compile(src)              // mini-Java program
//	eng     := rprism.NewEngine()               // shared analysis engine
//	left    := rprism.FromRun(prog, rprism.RunOptions{Args: []string{...}})
//	right   := rprism.FromFile("run2.trace")    // any Source works anywhere
//	d, _    := eng.Diff(ctx, left, right)       // views-based differencing
//	an, _   := eng.AnalyzeRegression(ctx, ...)  // D = (A − B) ∩ C
//
// The Engine resolves Sources to cached view webs, honors context
// cancellation inside every analysis hot loop, and dispatches any
// analysis registered with Register — the built-ins (diff, regression,
// protocol, typestate, impact) plus yours. The free functions below
// predate the Engine and remain as thin deprecated wrappers for one
// release.
//
// The original tool instruments Java through AspectJ load-time weaving;
// here a tracing interpreter for a Featherweight-Java-style language
// (extended with assignments, threads, reflection, and run-time class
// definition) plays that role. Everything downstream of the trace
// grammar is faithful to the paper; see DESIGN.md for the substitution
// table and EXPERIMENTS.md for reproduced results.
package rprism

import (
	"repro/internal/diff"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/regression"
	"repro/internal/trace"
	"repro/internal/views"
)

// Program is a compiled (parsed and checked) program.
type Program = lang.Program

// Trace is an execution trace — a sequence of entries per Fig. 4 of the
// paper.
type Trace = trace.Trace

// Entry is one trace entry.
type Entry = trace.Entry

// RunOptions configures program execution; see interp.Options.
type RunOptions = interp.Options

// RunResult carries the trace, program output, and any runtime error.
type RunResult = interp.Result

// Pointcut filters which events are recorded (AspectJ-style exclusion of
// library internals).
type Pointcut = interp.Pointcut

// Web is the linked structure of all semantic views over one trace.
type Web = views.Web

// ViewName identifies one view: thread, method, target-object, or
// active-object.
type ViewName = views.Name

// DiffResult is the outcome of differencing two traces: similarity sets,
// difference sets, and difference sequences.
type DiffResult = diff.Result

// DiffOptions are the tunables of the views-based differencing semantics
// (window size ω, exploration radius δ, relaxed correlation).
type DiffOptions = diff.ViewOptions

// LCSOptions configure the baseline LCS differencing (algorithm and
// memory budget).
type LCSOptions = diff.LCSOptions

// RegressionInput bundles the four traces of the §4.1 analysis protocol.
type RegressionInput = regression.Input

// RegressionAnalysis is the analysis outcome: the candidate set D and the
// regression-related difference sequences.
type RegressionAnalysis = regression.Analysis

// Compile parses and statically checks a program in the mini-Java
// language.
func Compile(src string) (*Program, error) {
	p, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Run executes the program under the tracing interpreter, producing an
// execution trace alongside the program output. Runtime failures
// (including Sys.abort) are reported in RunResult.Err with the partial
// trace preserved.
func Run(p *Program, opts RunOptions) (*RunResult, error) {
	return interp.Run(p, opts)
}

// BuildViews constructs the linked view web over a trace: thread views,
// method views, target-object views, and active-object views (§2.4).
//
// Deprecated: use (*Engine).Views with a Source; the engine caches the
// built web and honors cancellation.
func BuildViews(t *Trace) *Web { return views.Build(t) }

// Diff compares two traces with the views-based differencing semantics of
// Fig. 12 — linear in time and space.
//
// Deprecated: use (*Engine).Diff (or DiffWith), which caches view webs
// across calls and honors context cancellation in the hot loops.
func Diff(left, right *Trace, opts DiffOptions) *DiffResult {
	return diff.ViewDiff(left, right, opts)
}

// DiffWebs compares two traces through their pre-built view webs,
// skipping web construction. Webs are read-only during differencing, so
// the same web can serve many concurrent diffs (the rprism-serve cache
// path).
//
// Deprecated: use (*Engine).Diff with FromWeb sources.
func DiffWebs(left, right *Web, opts DiffOptions) *DiffResult {
	return diff.ViewDiffWebs(left, right, opts)
}

// DiffLCS compares two traces with the optimized-LCS baseline of Fig. 11.
// It returns lcs.ErrMemoryBudget when the DP table would exceed the
// configured budget.
//
// Deprecated: use (*Engine).DiffLCS, which honors context cancellation
// between DP rows.
func DiffLCS(left, right *Trace, opts LCSOptions) (*DiffResult, error) {
	return diff.LCSDiff(left, right, opts)
}

// AnalyzeRegression runs the full §4.1 regression-cause analysis over the
// four traces of the protocol.
//
// Deprecated: use (*Engine).AnalyzeRegression with RegressionSources;
// the engine reuses cached webs across the three differencing passes and
// honors cancellation.
func AnalyzeRegression(in RegressionInput) (*RegressionAnalysis, error) {
	return regression.Analyze(in)
}

// LoadTrace reads a trace file written by SaveTrace.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// SaveTrace writes a trace to disk for offline analysis.
func SaveTrace(t *Trace, path string) error { return t.Save(path) }
