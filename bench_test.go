package rprism

// The bench harness regenerates every table and figure of the paper's
// evaluation (§5). Expensive experiment inputs (the case-study results
// and the injected-regression sweep) are computed once per `go test
// -bench` process and shared between related benchmarks; each table or
// figure is printed exactly once to stdout.
//
//	go test -bench=Table1 .        Table 1
//	go test -bench=Table2 .        Table 2
//	go test -bench=Fig14 .         Fig. 14(a) and (b)
//	go test -bench=Motivating .    §4.2 walkthrough
//	go test -bench=Ablation .      design-choice ablations (DESIGN.md)
//	go test -bench=. -benchmem .   everything

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lcs"
	"repro/internal/subjects"
	"repro/internal/trace"
	"repro/internal/views"
)

var (
	casesOnce    sync.Once
	casesResults []experiments.CaseResult
	casesErr     error

	quantOnce    sync.Once
	quantResults []experiments.QuantResult
	quantErr     error

	printTable1 sync.Once
	printTable2 sync.Once
	printFig14a sync.Once
	printFig14b sync.Once
	printMotiv  sync.Once
)

func caseStudies(b *testing.B) []experiments.CaseResult {
	b.Helper()
	casesOnce.Do(func() {
		casesResults, casesErr = experiments.RunAllCases(experiments.DefaultLCSBudget)
	})
	if casesErr != nil {
		b.Fatal(casesErr)
	}
	return casesResults
}

func quant(b *testing.B) []experiments.QuantResult {
	b.Helper()
	quantOnce.Do(func() {
		quantResults, quantErr = experiments.RunQuant(experiments.DefaultQuantConfig())
	})
	if quantErr != nil {
		b.Fatal(quantErr)
	}
	return quantResults
}

// BenchmarkTable1 regenerates Table 1: benchmark and analysis
// characteristics of the four real-life case studies under both
// differencing approaches, including the LCS out-of-memory failure on the
// largest (Derby) trace.
func BenchmarkTable1(b *testing.B) {
	results := caseStudies(b)
	printTable1.Do(func() { fmt.Println("\n" + experiments.Table1(results)) })
	// Per-iteration cost: one full views-based analysis of the smallest
	// subject (the table itself is a one-shot artifact).
	s := subjects.MyFaces()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCase(s, experiments.DefaultLCSBudget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2: view counts (original version) and
// the sizes of the analysis sets A, B, C, D.
func BenchmarkTable2(b *testing.B) {
	results := caseStudies(b)
	printTable2.Do(func() { fmt.Println("\n" + experiments.Table2(results)) })
	tr, err := subjects.MyFaces().Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views.Build(tr.OrigRegr).Count()
	}
}

// BenchmarkFig14aAccuracy regenerates the accuracy histogram of Fig. 14(a)
// over regressions injected into the Rhino-like subject per the paper's
// root-cause distribution.
func BenchmarkFig14aAccuracy(b *testing.B) {
	results := quant(b)
	printFig14a.Do(func() {
		fmt.Println("\n" + experiments.Fig14a(results))
		fmt.Println(experiments.QuantSummary(results))
	})
	benchOneQuantDiff(b, results)
}

// BenchmarkFig14bSpeedup regenerates the speedup histogram of Fig. 14(b)
// from the same experiment sweep.
func BenchmarkFig14bSpeedup(b *testing.B) {
	results := quant(b)
	printFig14b.Do(func() { fmt.Println("\n" + experiments.Fig14b(results)) })
	benchOneQuantDiff(b, results)
}

// benchOneQuantDiff measures the views-based differencing cost on a
// representative injected-regression trace pair.
func benchOneQuantDiff(b *testing.B, results []experiments.QuantResult) {
	b.Helper()
	prog := lang.MustParse(subjects.RhinoSource())
	script := results[1].Script
	l := mustRun(b, prog, script)
	r := mustRun(b, prog, script)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff.ViewDiff(l, r, diff.ViewOptions{})
	}
}

// BenchmarkMotivatingExample regenerates the §4.2 walkthrough: the
// motivating example's candidate causes with full dynamic context.
func BenchmarkMotivatingExample(b *testing.B) {
	printMotiv.Do(func() {
		out, err := experiments.MotivatingExample()
		if err != nil {
			b.Fatal(err)
		}
		fmt.Println("\n" + out)
	})
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MotivatingExample(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro-benchmarks over the pipeline stages ----

func mustRun(b *testing.B, p *lang.Program, args ...string) *trace.Trace {
	b.Helper()
	res, err := interp.Run(p, interp.Options{Args: args})
	if err != nil {
		b.Fatal(err)
	}
	if res.Err != nil && !res.Err.Aborted {
		b.Fatal(res.Err)
	}
	return res.Trace
}

func rhinoPair(b *testing.B, stmts int) (*trace.Trace, *trace.Trace) {
	b.Helper()
	prog := lang.MustParse(subjects.RhinoSource())
	good := mustRun(b, prog, subjects.GenScript(stmts, 5))
	// A version with a planted boundary bug in Machine.arith that fires on
	// roughly 8% of additions, scattering divergences through the trace.
	src := strings.Replace(subjects.RhinoSource(),
		`if (sym.equals("+")) { return a + b; }`,
		`if (sym.equals("+")) { return a + b + a % 13 / 12; }`, 1)
	bad := mustRun(b, lang.MustParse(src), subjects.GenScript(stmts, 5))
	return good, bad
}

// mtPair runs the multithreaded subject twice, the right version with a
// planted per-iteration bias, yielding a trace pair whose diff decomposes
// into `workers` independent thread-pair units.
func mtPair(b *testing.B, workers, iters int) (*trace.Trace, *trace.Trace) {
	b.Helper()
	l := mustRun(b, lang.MustParse(subjects.MultithreadedSource(workers, iters, "0")))
	r := mustRun(b, lang.MustParse(subjects.MultithreadedSource(workers, iters, "1")))
	return l, r
}

// BenchmarkViewDiffParallel measures the intra-diff worker pool on a
// medium multithreaded subject over cached webs: workers=1 is the serial
// baseline, the other rows show the wall-clock scaling (every row
// produces the identical Result). Speedup rows also land in
// `rprism-bench -json`.
func BenchmarkViewDiffParallel(b *testing.B) {
	l, r := mtPair(b, 8, 150)
	wl, wr := views.Build(l), views.Build(r)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var compares int64
			for i := 0; i < b.N; i++ {
				res := diff.ViewDiffWebs(wl, wr, diff.ViewOptions{Parallelism: w})
				compares = res.Stats.Compares
			}
			b.ReportMetric(float64(compares), "compares/op")
		})
	}
}

// BenchmarkViewsBuildParallel measures the two-pass sharded web build
// against the serial single-pass construction on the same trace.
func BenchmarkViewsBuildParallel(b *testing.B) {
	l, _ := mtPair(b, 8, 300)
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := views.BuildCtxOpts(ctx, l, views.BuildOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpreter measures tracing-interpreter throughput
// (entries/op reported as custom metric).
func BenchmarkInterpreter(b *testing.B) {
	prog := lang.MustParse(subjects.RhinoSource())
	script := subjects.GenScript(30, 5)
	var entries int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := interp.Run(prog, interp.Options{Args: []string{script}})
		if err != nil {
			b.Fatal(err)
		}
		entries = res.Trace.Len()
	}
	b.ReportMetric(float64(entries), "entries/op")
}

// BenchmarkViewsBuild measures view-web construction.
func BenchmarkViewsBuild(b *testing.B) {
	prog := lang.MustParse(subjects.RhinoSource())
	tr := mustRun(b, prog, subjects.GenScript(30, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views.Build(tr)
	}
}

// BenchmarkViewDiffMedium and BenchmarkLCSDiffMedium compare the two
// differencing semantics on a mid-size trace pair with a planted bug.
func BenchmarkViewDiffMedium(b *testing.B) {
	l, r := rhinoPair(b, 30)
	b.ResetTimer()
	var compares int64
	for i := 0; i < b.N; i++ {
		res := diff.ViewDiff(l, r, diff.ViewOptions{})
		compares = res.Stats.Compares
	}
	b.ReportMetric(float64(compares), "compares/op")
}

func BenchmarkLCSDiffMedium(b *testing.B) {
	l, r := rhinoPair(b, 30)
	b.ResetTimer()
	var compares int64
	for i := 0; i < b.N; i++ {
		res, err := diff.LCSDiff(l, r, diff.LCSOptions{})
		if err != nil {
			b.Fatal(err)
		}
		compares = res.Stats.Compares
	}
	b.ReportMetric(float64(compares), "compares/op")
}

// ---- ablations over the design choices called out in DESIGN.md ----

// BenchmarkAblationWindow varies ω, the windowed-LCS size used when
// exploring correlated secondary views.
func BenchmarkAblationWindow(b *testing.B) {
	l, r := rhinoPair(b, 30)
	for _, w := range []int{5, 15, 40} {
		b.Run(fmt.Sprintf("omega=%d", w), func(b *testing.B) {
			var diffs int
			var compares int64
			for i := 0; i < b.N; i++ {
				res := diff.ViewDiff(l, r, diff.ViewOptions{Window: w})
				diffs, compares = res.NumDiffs(), res.Stats.Compares
			}
			b.ReportMetric(float64(diffs), "diffs/op")
			b.ReportMetric(float64(compares), "compares/op")
		})
	}
}

// BenchmarkAblationRadius varies δ, the neighborhood radius for
// secondary-view collection.
func BenchmarkAblationRadius(b *testing.B) {
	l, r := rhinoPair(b, 30)
	for _, rad := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("delta=%d", rad), func(b *testing.B) {
			var diffs int
			for i := 0; i < b.N; i++ {
				res := diff.ViewDiff(l, r, diff.ViewOptions{Radius: rad})
				diffs = res.NumDiffs()
			}
			b.ReportMetric(float64(diffs), "diffs/op")
		})
	}
}

// BenchmarkAblationRelaxed toggles the §5 relaxed correlation on a
// method-rename refactoring, the scenario it exists for.
func BenchmarkAblationRelaxed(b *testing.B) {
	src := subjects.Xalan1802() // wholesale-renamed module
	tr, err := src.Run()
	if err != nil {
		b.Fatal(err)
	}
	for _, relaxed := range []bool{false, true} {
		b.Run(fmt.Sprintf("relaxed=%v", relaxed), func(b *testing.B) {
			var diffs int
			for i := 0; i < b.N; i++ {
				res := diff.ViewDiff(tr.OrigRegr, tr.NewRegr, diff.ViewOptions{Relaxed: relaxed})
				diffs = res.NumDiffs()
			}
			b.ReportMetric(float64(diffs), "diffs/op")
		})
	}
}

// BenchmarkAblationReprDepth varies the value-representation depth cap:
// deeper representations improve correlation specificity at tracing cost.
func BenchmarkAblationReprDepth(b *testing.B) {
	prog := lang.MustParse(subjects.RhinoSource())
	script := subjects.GenScript(20, 5)
	for _, depth := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := interp.Run(prog, interp.Options{
					Args: []string{script}, ReprDepth: depth,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLCSAlgorithm compares the DP baseline against
// Hirschberg's linear-space variant (space for time, §3.2).
func BenchmarkAblationLCSAlgorithm(b *testing.B) {
	l, r := rhinoPair(b, 15)
	for _, alg := range []struct {
		name string
		a    lcs.Algorithm
	}{{"dp", lcs.DP}, {"hirschberg", lcs.Hirschberg}} {
		b.Run(alg.name, func(b *testing.B) {
			var mem int64
			for i := 0; i < b.N; i++ {
				res, err := diff.LCSDiff(l, r, diff.LCSOptions{Algorithm: alg.a})
				if err != nil {
					b.Fatal(err)
				}
				mem = res.Stats.MemBytes
			}
			b.ReportMetric(float64(mem), "tablebytes/op")
		})
	}
}

// BenchmarkAblationQuickScan toggles the cheap pre-exploration lookahead:
// with it off, every divergence pays for secondary-view exploration.
func BenchmarkAblationQuickScan(b *testing.B) {
	l, r := rhinoPair(b, 30)
	for _, qs := range []int{-1, 2, 8} {
		b.Run(fmt.Sprintf("quickscan=%d", qs), func(b *testing.B) {
			var compares int64
			var expl int64
			for i := 0; i < b.N; i++ {
				res := diff.ViewDiff(l, r, diff.ViewOptions{QuickScan: qs})
				compares, expl = res.Stats.Compares, res.Stats.ViewExplorations
			}
			b.ReportMetric(float64(compares), "compares/op")
			b.ReportMetric(float64(expl), "explorations/op")
		})
	}
}

// BenchmarkServeDiffConcurrent measures the rprism-serve hot path: N
// goroutines concurrently diffing the same trace pair out of a shared
// corpus. "cached" amortizes one view-web build per trace across every
// request (the store's single-flight memo + diff.ViewDiffWebs); the
// "rebuild" baseline pays two views.Build calls per request, which is
// what serving diffs without the corpus cache would cost.
func BenchmarkServeDiffConcurrent(b *testing.B) {
	l, r := rhinoPair(b, 30)
	b.Run("cached", func(b *testing.B) {
		store, err := corpus.New(b.TempDir(), corpus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lid, _, err := store.Put(l)
		if err != nil {
			b.Fatal(err)
		}
		rid, _, err := store.Put(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				wl, err := store.Views(lid)
				if err != nil {
					b.Error(err)
					return
				}
				wr, err := store.Views(rid)
				if err != nil {
					b.Error(err)
					return
				}
				diff.ViewDiffWebs(wl, wr, diff.ViewOptions{})
			}
		})
	})
	b.Run("rebuild", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				diff.ViewDiff(l, r, diff.ViewOptions{})
			}
		})
	})
}

// BenchmarkEngineDiffCached proves the Engine API adds no overhead over
// calling diff.ViewDiffWebs by hand: both sub-benchmarks diff the same
// corpus-cached web pair, "webs" through the free function, "engine"
// through Engine.Diff with FromCorpus sources (source resolution, ctx
// polling, worker accounting included). ns/op and allocs/op must stay
// within noise of each other — compare with
// `go test -bench=EngineDiffCached -benchmem .`.
func BenchmarkEngineDiffCached(b *testing.B) {
	l, r := rhinoPair(b, 30)
	store, err := corpus.New(b.TempDir(), corpus.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lid, _, err := store.Put(l)
	if err != nil {
		b.Fatal(err)
	}
	rid, _, err := store.Put(r)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := store.Views(lid)
	if err != nil {
		b.Fatal(err)
	}
	wr, err := store.Views(rid)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("webs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			diff.ViewDiffWebs(wl, wr, diff.ViewOptions{})
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := NewEngine(WithCorpus(store))
		left, right := FromCorpus(lid), FromCorpus(rid)
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Diff(ctx, left, right); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSegmentedTracing measures the disk-offloading trace writer
// against in-memory collection (the §5 segmentation mechanism).
func BenchmarkSegmentedTracing(b *testing.B) {
	prog := lang.MustParse(subjects.RhinoSource())
	script := subjects.GenScript(20, 5)
	b.Run("inmemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := interp.Run(prog, interp.Options{Args: []string{script}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("segmented", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			opts := interp.Options{
				Args: []string{script}, TraceName: fmt.Sprintf("t%d", i),
				SegmentDir: dir, SegmentLimit: 4096,
			}
			if _, err := interp.Run(prog, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
