package woven

import (
	"testing"

	"repro/capture"
)

// BenchmarkWeaveOverhead measures what a woven function pays per call in
// the three states a woven binary runs in: hooks disabled (the common
// case — the binary was built woven but is not being recorded), hooks
// recording to an in-memory-buffered disk sink, and the unwoven
// baseline (a plain function call). rprism-bench -json reports the
// recording/unwoven ratio as slowdown_vs_unwoven.

//go:noinline
func unwovenStep(n int) int { return n + 1 }

//go:noinline
func wovenStep(n int) int {
	defer Enter("bench.wovenStep/1")()
	return n + 1
}

func BenchmarkWeaveOverhead(b *testing.B) {
	b.Run("unwoven", func(b *testing.B) {
		acc := 0
		for i := 0; i < b.N; i++ {
			acc = unwovenStep(acc)
		}
		_ = acc
	})
	b.Run("hooks-off", func(b *testing.B) {
		Attach(nil)
		acc := 0
		for i := 0; i < b.N; i++ {
			acc = wovenStep(acc)
		}
		_ = acc
	})
	b.Run("recording", func(b *testing.B) {
		rec, err := capture.Start(capture.Options{Name: "bench", Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		Attach(rec)
		defer func() {
			Attach(nil)
			rec.Close()
		}()
		b.ResetTimer()
		acc := 0
		for i := 0; i < b.N; i++ {
			acc = wovenStep(acc)
		}
		_ = acc
	})
}
