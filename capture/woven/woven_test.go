package woven

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/capture"
	"repro/internal/trace"
)

func TestDisabledHooksAreInert(t *testing.T) {
	Attach(nil)
	if Active() {
		t.Fatal("Active with no recorder")
	}
	exit := Enter("m.f/0")
	exit() // must not panic
	done := make(chan struct{})
	Go(func() { close(done) })
	<-done
	Close() // closing a never-attached runtime is a no-op
}

func TestAttachedHooksRecord(t *testing.T) {
	dir := t.TempDir()
	rec, err := capture.Start(capture.Options{Name: "w", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	Attach(rec)
	defer Attach(nil)
	if !Active() {
		t.Fatal("not active after Attach")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	func() {
		defer Enter("m.outer/0")()
		Go(func() {
			defer wg.Done()
			defer Enter("m.inner/0")()
		})
	}()
	wg.Wait()
	// Close through the package: detaches, flushes, finalizes.
	Close()
	if Active() {
		t.Fatal("still active after Close")
	}
	// A second Close must be harmless.
	Close()

	tr, err := trace.LoadSegments(dir, "w")
	if err != nil {
		t.Fatal(err)
	}
	members := map[string]bool{}
	forks := 0
	for _, e := range tr.Entries {
		if e.Event.Kind == trace.KindCall {
			members[e.Event.Member] = true
		}
		if e.Event.Kind == trace.KindFork {
			forks++
		}
	}
	if !members["m.outer/0"] || !members["m.inner/0"] {
		t.Errorf("missing hooks: %v", members)
	}
	if forks != 1 {
		t.Errorf("forks = %d, want 1", forks)
	}
}

func TestLateHooksAfterCloseDegrade(t *testing.T) {
	dir := t.TempDir()
	rec, err := capture.Start(capture.Options{Name: "late", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	Attach(rec)
	// An exit hook captured while recording...
	exit := Enter("m.f/0")
	Close()
	// ...invoked after Close: the recorder's own done-guard absorbs it.
	exit()
	if _, err := trace.LoadSegments(dir, "late"); err != nil {
		t.Fatalf("capture not finalized: %v", err)
	}
	// And the segment glob must still load exactly what was recorded
	// before Close — the late exit added nothing.
	paths, _ := filepath.Glob(filepath.Join(dir, "late.*.seg"))
	if len(paths) == 0 {
		t.Fatal("no segments written")
	}
}

func TestFuncReprCached(t *testing.T) {
	a := funcRepr("m.f/1")
	b := funcRepr("m.f/1")
	if a.Class != b.Class || a.Str != b.Str || a.Hash != b.Hash {
		t.Error("cached reprs differ")
	}
	if want := capture.Val("Func", "m.f/1"); a.Class != want.Class || a.Str != want.Str {
		t.Errorf("repr = %+v, want %+v", a, want)
	}
}
