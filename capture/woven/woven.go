// Package woven is the runtime half of rprism's zero-touch weaver: the
// package `internal/weave` injects into every instrumented function of a
// target module. Woven code never imports it directly — the weaver adds
//
//	import __rprism_weave "repro/capture/woven"
//
// to each rewritten file and brackets function bodies with
//
//	defer __rprism_weave.Enter("pkg.Type.method/2")()
//
// while `go` statements are routed through Go so spawn ancestry and
// thread ids match the interpreter's fork/end conventions, and the main
// function additionally defers Close so the capture finalizes cleanly.
//
// The package is inert unless activated: its init consults the
// `rprism record` environment contract (inject.CaptureConfig) via
// capture.StartFromEnv, so a woven binary run outside the recorder pays
// one atomic load per hook and records nothing. Embedders that manage
// their own Recorder can Attach it instead.
//
// Re-entrancy and lifecycle guards, in order of defense:
//   - the weaver hard-excludes this package, repro/capture, and their
//     transitive closure from weaving, so a hook can never fire from
//     inside the recorder's own machinery;
//   - hooks observe the recorder through one atomic pointer that Close
//     swaps to nil before closing, so late hooks (goroutines outliving
//     main) degrade to no-ops instead of racing finalization;
//   - the recorder itself discards events after Close, so even an exit
//     hook captured before Close and invoked after it stays safe.
package woven

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/capture"
)

// rec is the process-wide recorder woven hooks report to; nil means
// hooks are disabled (not running under `rprism record`, or closed).
var rec atomic.Pointer[capture.Recorder]

// noopExit is the exit hook returned while recording is disabled; one
// shared value keeps the disabled fast path allocation-free.
var noopExit = func(...capture.Repr) {}

// reprs caches the per-hook function representation (a primitive Repr
// classed "Func" whose value is the hook id) so steady-state hooks do
// not rehash the id on every call.
var reprs sync.Map // hook id (string) → capture.Repr

func init() {
	r, on, err := capture.StartFromEnv()
	if err != nil {
		// A malformed injection must fail loudly (the recording the user
		// asked for is not happening) but not take the program down.
		fmt.Fprintln(os.Stderr, "rprism weave:", err)
		return
	}
	if on {
		rec.Store(r)
	}
}

// funcRepr returns the cached representation of a hook id.
func funcRepr(id string) capture.Repr {
	if v, ok := reprs.Load(id); ok {
		return v.(capture.Repr)
	}
	v, _ := reprs.LoadOrStore(id, capture.Val("Func", id))
	return v.(capture.Repr)
}

// Enter records entry into the woven function identified by the stable
// hook id and returns the exit hook the weaver defers:
//
//	defer __rprism_weave.Enter("repro/examples/weave.work/3")()
//
// When recording is disabled it returns a shared no-op.
func Enter(id string) func(...capture.Repr) {
	r := rec.Load()
	if r == nil {
		return noopExit
	}
	return r.Enter(id, funcRepr(id))
}

// Go runs fn on a new goroutine, recording the thread fork with the
// spawning goroutine's stack as ancestry when recording is enabled. The
// weaver rewrites every `go` statement through it.
func Go(fn func()) {
	if r := rec.Load(); r != nil {
		r.Go(fn)
		return
	}
	go fn()
}

// Close detaches and closes the recorder, flushing and finalizing the
// capture (the last disk segment, or the stream's closing frame). The
// weaver defers it first in main so it runs after main's own exit hook;
// goroutines still running afterwards degrade to no-op hooks. Close is
// safe to call when recording never started, and only the first call
// closes.
func Close() {
	if r := rec.Swap(nil); r != nil {
		if _, err := r.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rprism weave:", err)
		}
	}
}

// Attach installs an explicitly started recorder for woven hooks to
// report to, replacing any current one (which is NOT closed — the
// caller owns it). Programs built with the weaver but wanting a
// programmatic sink (tests, benchmarks) use this instead of the
// environment contract.
func Attach(r *capture.Recorder) { rec.Store(r) }

// Active reports whether woven hooks are currently recording.
func Active() bool { return rec.Load() != nil }
