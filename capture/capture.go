// Package capture is the public embedding surface of rprism's live
// capture tier: a lightweight in-process tracer for real Go programs.
// Embed a Recorder, bracket instrumented functions with Enter and its
// returned exit hook, and the execution streams into the rprism trace
// grammar — to disk segments, or live into an rprism-serve session
// where it can be diffed against the corpus while the program is still
// running.
//
//	rec, err := capture.Start(capture.Options{ServerURL: "http://localhost:8372", Name: "worker"})
//	...
//	exit := rec.Enter("Pool.dispatch/1", poolRepr, jobRepr)
//	defer exit()
//
// Programs meant to run under `rprism record` use StartFromEnv, which
// activates only when the capture environment is injected.
//
// The implementation lives in internal/capture; this package pins the
// supported surface.
package capture

import (
	icapture "repro/internal/capture"
	"repro/internal/trace"
)

// Options configure a Recorder; see internal/capture.Options.
type Options = icapture.Options

// Recorder is the in-process tracer.
type Recorder = icapture.Recorder

// Summary reports what a closed Recorder captured.
type Summary = icapture.Summary

// Repr is the extended object representation recorded events carry.
type Repr = trace.Repr

// Event is one trace event.
type Event = trace.Event

// EventKind enumerates the trace grammar's event kinds.
type EventKind = trace.EventKind

// The event kinds embedders emit directly (calls, returns, forks, and
// ends are recorded by Enter/exit hooks and Go).
const (
	KindGet  = trace.KindGet
	KindSet  = trace.KindSet
	KindInit = trace.KindInit
)

// Start opens a recorder on the configured sink (disk directory or
// rprism-serve URL).
func Start(opts Options) (*Recorder, error) { return icapture.Start(opts) }

// StartFromEnv starts a recorder when the process was launched with
// capture injected (`rprism record`); the boolean reports whether it
// was.
func StartFromEnv() (*Recorder, bool, error) { return icapture.StartFromEnv() }

// Obj builds the representation of a heap object: a stable location, a
// class name, and an optional per-class creation sequence number.
func Obj(loc int64, class string, seq int) Repr {
	return Repr{Loc: trace.Loc(loc), Class: class, Seq: seq}
}

// Val builds the representation of a value (a primitive): a class name
// and its rendered value, hashed for cross-run comparison.
func Val(class, str string) Repr { return trace.PrimRepr(class, str) }
