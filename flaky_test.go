package rprism

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"testing"

	"repro/internal/trace"
)

// flakyRun builds run #idx of a synthetic subject: most entries are
// identical across runs, one entry diverges in EVERY run (the
// systematic cause, at Sys.check), and one diverges only in run 2 (the
// scheduling noise, at Noise.jitter).
func flakyRun(idx, n int) *trace.Trace {
	t := trace.New("subject")
	obj := trace.Repr{Loc: 1, Class: "Subject", Seq: 1}
	for i := 0; i < n; i++ {
		method := "Subject.step/1"
		v := i
		switch {
		case i == n/2:
			method = "Sys.check/1"
			v = 1_000_000 + idx // differs in every run
		case i == n/3 && idx == 2:
			method = "Noise.jitter/1"
			v = 2_000_000 // differs only in run 2
		case i == n/3:
			method = "Noise.jitter/1"
		}
		val := trace.Repr{Class: "Int", Hash: uint64(v), Str: strconv.Itoa(v)}
		t.Append(trace.ThreadID(i%2+1), method, obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: method, Args: []trace.Repr{val}})
	}
	t.EnsureSyms()
	return t
}

func TestFlakySeparatesSystematicFromNoise(t *testing.T) {
	eng := NewEngine()
	runs := []Source{FromTrace(flakyRun(0, 60)), FromTrace(flakyRun(1, 60)), FromTrace(flakyRun(2, 60))}
	res, err := eng.Flaky(context.Background(), runs, FlakyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 || len(res.Pairs) != 3 {
		t.Fatalf("result = %+v, want 3 runs and 3 pairwise diffs", res)
	}
	if len(res.Common) != 1 {
		t.Fatalf("Common = %+v, want exactly the Sys.check signature", res.Common)
	}
	sys := res.Common[0]
	if sys.Method != "Sys.check/1" || sys.Pairs != 3 {
		t.Errorf("systematic signature = %+v, want Sys.check/1 in all 3 pairs", sys)
	}
	if res.Noise == 0 {
		t.Error("the run-2-only Noise.jitter divergence was not classified as noise")
	}
	for _, p := range res.Pairs {
		if p.NumDiffs == 0 {
			t.Errorf("pair %+v found no diffs; every run pair diverges at Sys.check", p)
		}
	}
}

// With exactly two runs there is a single pair, so every difference is
// trivially "common" — the documented degenerate case.
func TestFlakyTwoRunsEverythingCommon(t *testing.T) {
	eng := NewEngine()
	res, err := eng.Flaky(context.Background(),
		[]Source{FromTrace(flakyRun(0, 40)), FromTrace(flakyRun(1, 40))}, FlakyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Noise != 0 || len(res.Common) == 0 {
		t.Errorf("two-run result = %+v, want all signatures common", res)
	}
}

func TestFlakyNeedsTwoRuns(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.Flaky(context.Background(), []Source{FromTrace(flakyRun(0, 10))}, FlakyOptions{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
}

func TestFlakyAnalysisRegistered(t *testing.T) {
	eng := NewEngine()
	out, err := eng.RunAnalysis(context.Background(), "flaky", AnalysisRequest{
		Sources: map[string]Source{
			"run000": FromTrace(flakyRun(0, 50)),
			"run001": FromTrace(flakyRun(1, 50)),
			"run002": FromTrace(flakyRun(2, 50)),
		},
		Params: json.RawMessage(`{"parallelism": 2}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out.(*FlakyResult)
	if !ok {
		t.Fatalf("flaky analysis returned %T", out)
	}
	if len(res.Common) != 1 || res.Common[0].Method != "Sys.check/1" {
		t.Errorf("Common = %+v", res.Common)
	}
}
