package rprism

import (
	"context"
	"fmt"

	"repro/internal/corpus"
)

// ClusterOptions tune the corpus partition.
type ClusterOptions struct {
	// Threshold is the minimum estimated Jaccard similarity (MinHash slot
	// agreement) for two traces to join one cluster (default 0.5, the
	// index's LSH banding threshold).
	Threshold float64
}

// ClusterMember is one trace of a cluster.
type ClusterMember struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Entries int    `json:"entries"`
}

// Cluster is one group of mutually similar stored traces.
type Cluster struct {
	Size    int             `json:"size"`
	Members []ClusterMember `json:"members"`
}

// ClusterResult partitions the corpus by sketch similarity.
type ClusterResult struct {
	Traces     int               `json:"traces"`
	Threshold  float64           `json:"threshold"`
	Singletons int               `json:"singletons"` // traces similar to nothing stored
	Clusters   []Cluster         `json:"clusters"`
	Index      corpus.IndexStats `json:"index"`
}

// ClusterCorpus partitions the stored traces into similarity clusters:
// LSH band cohabitation proposes candidate pairs, estimated Jaccard ≥
// the threshold confirms them, and confirmed pairs are closed
// transitively. No exact diffs run — this is the coarse map of the
// corpus ("which runs behave alike"), with Search as the exact lens on
// any one neighborhood.
func (e *Engine) ClusterCorpus(ctx context.Context, opts ClusterOptions) (*ClusterResult, error) {
	if e.store == nil {
		return nil, fmt.Errorf("rprism: ClusterCorpus on an engine without a corpus (construct it WithCorpus)")
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 0.5
	}
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := e.store.EnsureIndexed(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	groups := e.store.SimilarityIndex().Clusters(opts.Threshold)
	out := &ClusterResult{
		Threshold: opts.Threshold,
		Clusters:  []Cluster{},
		Index:     e.store.IndexStats(),
	}
	for _, g := range groups {
		c := Cluster{Size: len(g)}
		for _, id := range g {
			m := ClusterMember{ID: id.String()}
			if meta, err := e.store.Meta(id); err == nil {
				m.Name = meta.Name
				m.Entries = meta.Entries
			}
			c.Members = append(c.Members, m)
		}
		out.Traces += len(g)
		if len(g) == 1 {
			out.Singletons++
		}
		out.Clusters = append(out.Clusters, c)
	}
	return out, nil
}

func init() {
	RegisterAnalysis(AnalysisInfo{
		Name:   "cluster",
		Doc:    "corpus partition by sketch similarity: LSH-proposed pairs confirmed by estimated Jaccard, closed transitively",
		Params: "threshold (estimated Jaccard in (0,1], default 0.5)",
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		p, err := decodeParams[struct {
			Threshold *float64 `json:"threshold"`
		}](req.Params)
		if err != nil {
			return nil, err
		}
		var opts ClusterOptions
		if p.Threshold != nil {
			opts.Threshold = *p.Threshold
		}
		return e.ClusterCorpus(ctx, opts)
	})
}
