package rprism

// Allocation guards for the interned-symbol refactor: views.Build and
// diff.ViewDiff must allocate strictly less than the string-keyed
// baseline they replaced. The baseline constants were measured on this
// exact workload (Rhino subject, GenScript(10, 3), planted arithmetic
// bug) at the commit immediately before the refactor; the guards assert
// a comfortable margin below them so ordinary variance cannot flake.

import (
	"strings"
	"testing"

	"repro/internal/diff"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/subjects"
	"repro/internal/views"
)

// Pre-refactor AllocsPerRun on the guard workload (string-keyed views,
// fmt.Sprintf correlation keys), recorded before the symbol core landed.
const (
	baselineBuildAllocs    = 13771
	baselineViewDiffAllocs = 27631
)

func guardTraces(t *testing.T) (*Trace, *Trace) {
	t.Helper()
	script := subjects.GenScript(10, 3)
	run := func(src string) *Trace {
		res, err := interp.Run(lang.MustParse(src), interp.Options{Args: []string{script}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Trace
	}
	l := run(subjects.RhinoSource())
	bad := strings.Replace(subjects.RhinoSource(),
		`if (sym.equals("+")) { return a + b; }`,
		`if (sym.equals("+")) { return a + b + a % 13 / 12; }`, 1)
	r := run(bad)
	return l, r
}

func TestViewsBuildAllocsBelowStringKeyedBaseline(t *testing.T) {
	l, _ := guardTraces(t)
	got := testing.AllocsPerRun(10, func() { views.Build(l) })
	if got >= baselineBuildAllocs {
		t.Errorf("views.Build allocates %.0f/run, not below the string-keyed baseline %d",
			got, baselineBuildAllocs)
	}
	// The refactor removed per-entry name slices and Sprintf keys; hold
	// the gains, not just the letter of "strictly less".
	if got > baselineBuildAllocs/2 {
		t.Errorf("views.Build allocates %.0f/run, regressed past half the baseline %d",
			got, baselineBuildAllocs)
	}
}

func TestViewDiffAllocsBelowStringKeyedBaseline(t *testing.T) {
	l, r := guardTraces(t)
	got := testing.AllocsPerRun(10, func() { diff.ViewDiff(l, r, diff.ViewOptions{}) })
	if got >= baselineViewDiffAllocs {
		t.Errorf("diff.ViewDiff allocates %.0f/run, not below the string-keyed baseline %d",
			got, baselineViewDiffAllocs)
	}
}
