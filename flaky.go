package rprism

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/diff"
	"repro/internal/regression"
	"repro/internal/trace"
	"repro/internal/views"
)

// FlakyOptions tune the flaky-cause analysis.
type FlakyOptions struct {
	// Diff tunes each pairwise differencing pass.
	Diff DiffOptions
}

// FlakySignature is one canonical difference signature (the §4.1
// cross-execution key: event kind, member, target class, enclosing
// method, arity — run-specific values excluded) with how many of the
// pairwise diffs it appeared in.
type FlakySignature struct {
	Kind   string `json:"kind"`
	Member string `json:"member,omitempty"`
	Class  string `json:"class,omitempty"`
	Method string `json:"method,omitempty"`
	NArgs  int    `json:"nargs"`
	Pairs  int    `json:"pairs"` // pairwise diffs containing the signature
}

// FlakyPair summarizes one pairwise diff.
type FlakyPair struct {
	Left     int `json:"left"`  // run index
	Right    int `json:"right"` // run index
	NumDiffs int `json:"num_diffs"`
}

// FlakyResult separates systematic behavioral divergence from
// run-to-run noise across k runs of one subject.
type FlakyResult struct {
	Runs  int         `json:"runs"`
	Pairs []FlakyPair `json:"pairs"`
	// Common holds the signatures present in EVERY pairwise diff — the
	// systematic divergence a real regression would show. Noise counts
	// the signatures that appeared in some pair but not all: the flaky
	// residue (scheduling, timing, allocation order).
	Common []FlakySignature `json:"common"`
	Noise  int              `json:"noise"`
}

// Flaky diffs k runs of the same subject pairwise and intersects the
// difference-signature sets across pairs. A signature surviving every
// pairwise diff marks divergence no pair of runs agrees on — a
// systematic cause; a signature appearing in only some pairs is
// run-to-run noise. Two runs make one pair, so with exactly two runs
// every difference is "common" — three or more runs are what give the
// intersection its noise-cancelling power.
func (e *Engine) Flaky(ctx context.Context, runs []Source, opts FlakyOptions) (*FlakyResult, error) {
	if len(runs) < 2 {
		return nil, fmt.Errorf("%w: flaky analysis needs at least 2 runs (got %d)", ErrBadRequest, len(runs))
	}
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	webs := make([]*views.Web, len(runs))
	for i, src := range runs {
		if src == nil {
			return nil, fmt.Errorf("%w: flaky run %d is nil", ErrBadRequest, i)
		}
		if webs[i], err = e.Views(ctx, src); err != nil {
			return nil, err
		}
	}
	// The pairwise passes share one slot-clamped parallelism, resolved
	// once: each diff spends it on its own thread-view pairs.
	par, releasePar := e.intraWorkers(opts.Diff.Parallelism)
	defer releasePar()
	pairOpts := opts.Diff
	pairOpts.Parallelism = par

	out := &FlakyResult{Runs: len(runs), Pairs: []FlakyPair{}, Common: []FlakySignature{}}
	counts := make(map[regression.Signature]int)
	pairs := 0
	for i := 0; i < len(runs); i++ {
		for j := i + 1; j < len(runs); j++ {
			res, err := diff.ViewDiffWebsCtx(ctx, webs[i], webs[j], pairOpts)
			if err != nil {
				return nil, err
			}
			pairs++
			out.Pairs = append(out.Pairs, FlakyPair{Left: i, Right: j, NumDiffs: res.NumDiffs()})
			// One pair contributes each signature at most once, from
			// either side of its diff.
			seen := make(map[regression.Signature]bool)
			for _, eid := range res.DiffLeft {
				seen[regression.EntrySignature(res.Left.Entries[eid])] = true
			}
			for _, eid := range res.DiffRight {
				seen[regression.EntrySignature(res.Right.Entries[eid])] = true
			}
			for sig := range seen {
				counts[sig]++
			}
		}
	}
	for sig, n := range counts {
		if n < pairs {
			out.Noise++
			continue
		}
		out.Common = append(out.Common, FlakySignature{
			Kind:   sig.Kind.String(),
			Member: trace.SymStr(sig.Member),
			Class:  trace.SymStr(sig.Class),
			Method: trace.SymStr(sig.Method),
			NArgs:  sig.NArgs,
			Pairs:  n,
		})
	}
	sort.Slice(out.Common, func(i, j int) bool {
		a, b := out.Common[i], out.Common[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Member != b.Member {
			return a.Member < b.Member
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.NArgs < b.NArgs
	})
	return out, nil
}

func init() {
	RegisterAnalysis(AnalysisInfo{
		Name:   "flaky",
		Doc:    "flaky-cause mining: diff k runs pairwise, intersect difference signatures — common = systematic divergence, rest = noise",
		Roles:  []string{"run1", "run2", "... (any role names; sorted lexicographically as run order)"},
		Params: "the diff tunables",
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		roles := make([]string, 0, len(req.Sources))
		for role := range req.Sources {
			roles = append(roles, role)
		}
		sort.Strings(roles)
		runs := make([]Source, 0, len(roles))
		for _, role := range roles {
			if src := req.Sources[role]; src != nil {
				runs = append(runs, src)
			}
		}
		p, err := decodeParams[diffParams](req.Params)
		if err != nil {
			return nil, err
		}
		return e.Flaky(ctx, runs, FlakyOptions{Diff: p.apply(e.DefaultDiffOptions())})
	})
}
