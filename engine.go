package rprism

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/impact"
	"repro/internal/protocol"
	"repro/internal/regression"
	"repro/internal/sentinel"
	"repro/internal/trace"
	"repro/internal/views"
)

// Engine is the shared entry point of the analysis family: construct one
// per process (or per tenant) with functional options, feed it traces
// through Sources, and run any registered analysis against it. The CLI,
// the rprism-serve service, and the bench harness all drive the same
// Engine, which owns the cross-cutting concerns the free functions never
// could: a view-web cache shared across analyses, an optional
// corpus-backed store, a worker budget, default differencing options —
// and cancellation: every analysis method takes a context.Context that is
// honored inside the hot loops (views.BuildCtx, diff.ViewDiffWebsCtx,
// the LCS DP rows), so a canceled request stops burning CPU within
// microseconds.
//
// An Engine is safe for concurrent use by any number of goroutines.
type Engine struct {
	store    *corpus.Store
	symbols  *trace.SymbolTable
	diffOpts diff.ViewOptions
	workers  chan struct{} // nil: unbounded

	sentinelOpts sentinel.Options

	mu       sync.Mutex
	webs     map[*trace.Trace]*views.Web
	webOrder []*trace.Trace // FIFO eviction order
	webCap   int
	sentinel *sentinel.Monitor // lazily created by Sentinel()
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithCorpus backs the engine with a content-addressed trace store:
// FromCorpus sources resolve through it, and its single-flight view-web
// cache is shared with every other consumer of the store.
func WithCorpus(store *corpus.Store) EngineOption {
	return func(e *Engine) { e.store = store }
}

// WithSymbolTable sets the symbol table the engine reports stats from.
// Interning itself is process-wide (trace.Symbols); a custom table is
// useful for isolated accounting in multi-tenant embeddings.
func WithSymbolTable(st *trace.SymbolTable) EngineOption {
	return func(e *Engine) { e.symbols = st }
}

// WithWorkers bounds the number of concurrently executing analyses. A
// caller over budget blocks until a slot frees or its context ends.
// Zero or negative n means unbounded (the default).
func WithWorkers(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.workers = make(chan struct{}, n)
		}
	}
}

// WithDiffOptions sets the default views-differencing tunables used by
// Diff, AnalyzeRegression, and Impact when the caller does not override
// them per call.
func WithDiffOptions(o DiffOptions) EngineOption {
	return func(e *Engine) { e.diffOpts = o }
}

// WithDiffParallelism sets the default intra-diff worker count: how many
// goroutines one views-based diff uses to evaluate its correlated
// thread-view pairs concurrently (0 keeps the diff layer's default,
// GOMAXPROCS; 1 forces the serial path). Results are byte-identical at
// any setting.
//
// Intra-diff workers draw on the same slot budget as WithWorkers: an
// analysis holding its one slot claims extra slots — without blocking —
// for each additional worker, so the engine's total concurrency never
// exceeds the WithWorkers bound no matter how the two knobs are
// combined. Under load the extra slots simply aren't granted and diffs
// degrade toward serial, which is exactly the right pressure response
// for a serve deployment.
func WithDiffParallelism(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.diffOpts.Parallelism = n
		}
	}
}

// WithWebCacheSize bounds the engine's own web cache for non-corpus
// sources (default 32 webs). Corpus-backed sources are cached by the
// store instead and do not count against this bound.
func WithWebCacheSize(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.webCap = n
		}
	}
}

// NewEngine constructs an engine. With no options it is self-contained:
// in-process web caching, unbounded workers, default DiffOptions, the
// process-wide symbol table, and no corpus (FromCorpus sources fail).
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		webs:   make(map[*trace.Trace]*views.Web),
		webCap: 32,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Corpus returns the engine's trace store, or nil when it has none.
func (e *Engine) Corpus() *corpus.Store { return e.store }

// DefaultDiffOptions returns the engine's default differencing tunables.
func (e *Engine) DefaultDiffOptions() DiffOptions { return e.diffOpts }

// SymbolStats reports the engine's symbol table statistics (the
// process-wide table unless WithSymbolTable overrode it).
func (e *Engine) SymbolStats() trace.SymbolStats {
	if e.symbols != nil {
		return e.symbols.Stats()
	}
	return trace.GlobalSymbolStats()
}

// slotKey marks a context as already holding this engine's worker slot,
// making acquire reentrant: an analysis that calls other engine methods
// (RunAnalysis → DiffWith → Views) claims exactly one slot for the whole
// call tree instead of deadlocking on itself.
type slotKey struct{}

// acquire claims a worker slot (when a budget is configured), honoring
// ctx while waiting. It returns the context to run the analysis under —
// tagged with the slot when one was claimed — and a release func the
// caller must defer after a nil error.
func (e *Engine) acquire(ctx context.Context) (context.Context, func(), error) {
	noop := func() {}
	if err := ctx.Err(); err != nil {
		return ctx, noop, err
	}
	if e.workers == nil {
		return ctx, noop, nil
	}
	if held, _ := ctx.Value(slotKey{}).(*Engine); held == e {
		return ctx, noop, nil // reentrant: the caller's slot covers us
	}
	select {
	case e.workers <- struct{}{}:
		return context.WithValue(ctx, slotKey{}, e), func() { <-e.workers }, nil
	case <-ctx.Done():
		return ctx, noop, ctx.Err()
	}
}

// intraWorkers resolves the intra-diff parallelism for an analysis that
// already holds one worker slot. The request (0 = engine default, then
// GOMAXPROCS) is granted only as far as free slots allow: each worker
// beyond the first claims one extra slot without blocking, so total
// engine concurrency — analyses plus their inner workers — never
// exceeds the WithWorkers budget. The returned release func returns the
// extra slots; callers must defer it.
func (e *Engine) intraWorkers(requested int) (int, func()) {
	par := requested
	if par == 0 {
		par = e.diffOpts.Parallelism
	}
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par < 1 {
		par = 1
	}
	if e.workers == nil || par == 1 {
		return par, func() {}
	}
	extra := 0
	for extra < par-1 {
		select {
		case e.workers <- struct{}{}:
			extra++
		default:
			par = 1 + extra // budget exhausted; run narrower, not over
		}
	}
	if extra == 0 {
		return par, func() {}
	}
	return par, func() {
		for i := 0; i < extra; i++ {
			<-e.workers
		}
	}
}

// cachedWeb returns the engine-cached web for a trace, building it under
// ctx on a miss. Distinct goroutines missing on the same trace may both
// build (webs are immutable and identical, so the second admission wins
// harmlessly); the corpus path single-flights instead.
func (e *Engine) cachedWeb(ctx context.Context, t *trace.Trace) (*views.Web, error) {
	e.mu.Lock()
	w, ok := e.webs[t]
	e.mu.Unlock()
	if ok {
		return w, nil
	}
	// The build's shard workers draw on the worker budget exactly like
	// intra-diff workers: the caller's slot plus whatever is free. Only a
	// grant below the build layer's automatic width (GOMAXPROCS) is
	// forced through — otherwise automatic mode decides, keeping its
	// small-trace serial threshold.
	par, releasePar := e.intraWorkers(0)
	var bopts views.BuildOptions
	if par < runtime.GOMAXPROCS(0) {
		bopts.Workers = par
	}
	w, err := views.BuildCtxOpts(ctx, t, bopts)
	releasePar()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev, ok := e.webs[t]; ok {
		w = prev // another goroutine won the race; share its web
	} else {
		e.webs[t] = w
		e.webOrder = append(e.webOrder, t)
		for len(e.webOrder) > e.webCap {
			delete(e.webs, e.webOrder[0])
			e.webOrder[0] = nil // release the trace, not just the map entry
			e.webOrder = e.webOrder[1:]
		}
	}
	e.mu.Unlock()
	return w, nil
}

// Views resolves a source to its (cached) view web — the Engine form of
// BuildViews. Analyses that need direct web access (custom traversals,
// view listings) start here. Web construction is heavy, so Views counts
// against the worker budget like any other analysis entry point.
func (e *Engine) Views(ctx context.Context, src Source) (*Web, error) {
	if src == nil {
		return nil, fmt.Errorf("rprism: nil Source")
	}
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return src.resolve(ctx, e)
}

// Diff runs the views-based differencing of Fig. 12 over two sources
// with the engine's default options.
func (e *Engine) Diff(ctx context.Context, left, right Source) (*DiffResult, error) {
	return e.DiffWith(ctx, left, right, e.diffOpts)
}

// DiffWith is Diff with per-call differencing options. The effective
// intra-diff parallelism is the per-call Parallelism, else the engine's
// WithDiffParallelism default, else GOMAXPROCS — clamped to the free
// WithWorkers slots so concurrent analyses cannot oversubscribe.
func (e *Engine) DiffWith(ctx context.Context, left, right Source, opts DiffOptions) (*DiffResult, error) {
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	wl, err := e.Views(ctx, left)
	if err != nil {
		return nil, err
	}
	wr, err := e.Views(ctx, right)
	if err != nil {
		return nil, err
	}
	par, releasePar := e.intraWorkers(opts.Parallelism)
	defer releasePar()
	opts.Parallelism = par
	return diff.ViewDiffWebsCtx(ctx, wl, wr, opts)
}

// DiffLCS runs the quadratic LCS baseline of Fig. 11 over two sources.
// Unlike the views path it needs raw traces, not webs, so sources
// resolve down to their traces here — no web is built or cached.
func (e *Engine) DiffLCS(ctx context.Context, left, right Source, opts LCSOptions) (*DiffResult, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("rprism: nil Source")
	}
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	l, err := left.resolveTrace(ctx, e)
	if err != nil {
		return nil, err
	}
	r, err := right.resolveTrace(ctx, e)
	if err != nil {
		return nil, err
	}
	return diff.LCSDiffCtx(ctx, l, r, opts)
}

// RegressionSources names the four traces of the §4.1 analysis protocol
// as engine sources, plus the set-algebra mode.
type RegressionSources struct {
	OrigCorrect Source // original version, non-regressing test
	NewCorrect  Source // new version, non-regressing test
	OrigRegr    Source // original version, regressing test
	NewRegr     Source // new version, regressing test
	// Removal switches to D = (A − B) − C for regressions caused by code
	// removed in the new version.
	Removal bool
}

// AnalyzeRegression runs the full regression-cause analysis over four
// sources with the engine's default differencing options.
func (e *Engine) AnalyzeRegression(ctx context.Context, in RegressionSources) (*RegressionAnalysis, error) {
	return e.AnalyzeRegressionWith(ctx, in, e.diffOpts)
}

// AnalyzeRegressionWith is AnalyzeRegression with per-call options.
func (e *Engine) AnalyzeRegressionWith(ctx context.Context, in RegressionSources, opts DiffOptions) (*RegressionAnalysis, error) {
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	var webs regression.Webs
	if webs.OrigCorrect, err = e.Views(ctx, in.OrigCorrect); err != nil {
		return nil, err
	}
	if webs.NewCorrect, err = e.Views(ctx, in.NewCorrect); err != nil {
		return nil, err
	}
	if webs.OrigRegr, err = e.Views(ctx, in.OrigRegr); err != nil {
		return nil, err
	}
	if webs.NewRegr, err = e.Views(ctx, in.NewRegr); err != nil {
		return nil, err
	}
	// The three differencing passes inside the analysis share one
	// slot-clamped parallelism, resolved once here.
	par, releasePar := e.intraWorkers(opts.Parallelism)
	defer releasePar()
	opts.Parallelism = par
	return regression.AnalyzeWebsCtx(ctx, webs, in.Removal, opts)
}

// Infer infers the object protocol of a class from a source's
// target-object views.
func (e *Engine) Infer(ctx context.Context, src Source, class string) (*ProtocolModel, error) {
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	w, err := e.Views(ctx, src)
	if err != nil {
		return nil, err
	}
	return protocol.Infer(w, class), nil
}

// Check verifies every object of the declared class follows the typestate
// property, returning all violations in trace order.
func (e *Engine) Check(ctx context.Context, src Source, decl ProtocolDecl) ([]ProtocolViolation, error) {
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	w, err := e.Views(ctx, src)
	if err != nil {
		return nil, err
	}
	return protocol.CheckTrace(w, decl), nil
}

// Impact diffs two sources with the engine's default options and ranks
// the methods, classes, objects, and threads the behavioural
// differences touch.
func (e *Engine) Impact(ctx context.Context, left, right Source) (*ImpactSurface, error) {
	return e.ImpactWith(ctx, left, right, e.diffOpts)
}

// ImpactWith is Impact with per-call differencing options.
func (e *Engine) ImpactWith(ctx context.Context, left, right Source, opts DiffOptions) (*ImpactSurface, error) {
	res, err := e.DiffWith(ctx, left, right, opts)
	if err != nil {
		return nil, err
	}
	return impact.Compute(res), nil
}
