package rprism

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrBadRequest marks analysis failures caused by the request itself —
// a missing source role, malformed params — rather than by the engine
// or its data. Servers map it to a 400-class response with errors.Is.
var ErrBadRequest = errors.New("bad analysis request")

// The analysis registry is the extension point the paper's §4 promises:
// one trace abstraction (views) carrying a whole family of dynamic
// analyses. Built-in analyses self-register here under stable names, the
// server's generic POST /run/{analysis} endpoint dispatches through it,
// and embedders add their own analyses with Register — no server or CLI
// change required to expose a new one.

// AnalysisRequest is the uniform invocation payload of a registered
// analysis: named trace sources plus analysis-specific parameters as raw
// JSON (nil means defaults). Each analysis documents its roles and
// parameters in its AnalysisInfo.
type AnalysisRequest struct {
	// Sources maps role names (e.g. "left", "right", "trace",
	// "orig_correct") to the traces the analysis consumes.
	Sources map[string]Source
	// Params carries analysis-specific tunables; JSON so the request can
	// cross the wire unchanged.
	Params json.RawMessage
}

// Source returns the source bound to a role, or a descriptive error.
func (r AnalysisRequest) Source(role string) (Source, error) {
	s, ok := r.Sources[role]
	if !ok || s == nil {
		return nil, fmt.Errorf("%w: missing the %q trace", ErrBadRequest, role)
	}
	return s, nil
}

// AnalysisFunc runs one analysis on an engine. The returned value is the
// analysis's native result (e.g. *DiffResult); generic callers that need
// a wire form marshal or render it themselves.
type AnalysisFunc func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error)

// AnalysisInfo describes a registered analysis for discovery
// (GET /analyses, CLI listings).
type AnalysisInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
	// Roles are the source role names the analysis requires.
	Roles []string `json:"roles,omitempty"`
	// Params documents the accepted Params fields, informally.
	Params string `json:"params,omitempty"`
}

var registry = struct {
	sync.RWMutex
	fns   map[string]AnalysisFunc
	infos map[string]AnalysisInfo
}{
	fns:   make(map[string]AnalysisFunc),
	infos: make(map[string]AnalysisInfo),
}

// Register adds an analysis under a name, replacing any previous
// registration. Metadata-carrying registrations use RegisterAnalysis;
// Register is the shorthand for a bare function.
func Register(name string, fn AnalysisFunc) {
	RegisterAnalysis(AnalysisInfo{Name: name}, fn)
}

// RegisterAnalysis adds an analysis with discovery metadata. It panics on
// an empty name or nil function — registration happens at init time,
// where misconfiguration should fail loudly.
func RegisterAnalysis(info AnalysisInfo, fn AnalysisFunc) {
	if info.Name == "" || fn == nil {
		panic("rprism: RegisterAnalysis needs a name and a function")
	}
	registry.Lock()
	defer registry.Unlock()
	registry.fns[info.Name] = fn
	registry.infos[info.Name] = info
}

// Analyses lists every registered analysis, sorted by name.
func Analyses() []AnalysisInfo {
	registry.RLock()
	out := make([]AnalysisInfo, 0, len(registry.infos))
	for _, info := range registry.infos {
		out = append(out, info)
	}
	registry.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupAnalysis returns the registered function for a name.
func LookupAnalysis(name string) (AnalysisFunc, bool) {
	registry.RLock()
	defer registry.RUnlock()
	fn, ok := registry.fns[name]
	return fn, ok
}

// RunAnalysis dispatches a registered analysis by name — the engine-side
// half of the server's generic /run/{analysis} endpoint. The whole
// dispatch claims one worker-budget slot; engine methods the analysis
// calls reenter that slot instead of claiming more, so a registered
// analysis counts as exactly one unit of concurrency however much
// engine machinery it drives.
func (e *Engine) RunAnalysis(ctx context.Context, name string, req AnalysisRequest) (any, error) {
	fn, ok := LookupAnalysis(name)
	if !ok {
		return nil, fmt.Errorf("rprism: unknown analysis %q (GET /analyses or rprism.Analyses() lists the registered ones)", name)
	}
	ctx, release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return fn(ctx, e, req)
}

// ---- built-in analyses ----

// diffParams are the wire tunables of the diff-flavored analyses;
// unset fields fall back to the engine's defaults.
type diffParams struct {
	Window     *int  `json:"window"`
	Radius     *int  `json:"radius"`
	MaxScan    *int  `json:"max_scan"`
	QuickScan  *int  `json:"quick_scan"`
	MaxExplore *int  `json:"max_explore"`
	Relaxed    *bool `json:"relaxed"`
	// Parallelism requests intra-diff workers for this call; the engine
	// clamps it to its free worker slots, so a request can ask for more
	// than the deployment will grant. Results are identical either way.
	Parallelism *int  `json:"parallelism"`
	Removal     *bool `json:"removal"` // regression only
}

func (p diffParams) apply(o DiffOptions) DiffOptions {
	if p.Parallelism != nil {
		o.Parallelism = *p.Parallelism
	}
	if p.Window != nil {
		o.Window = *p.Window
	}
	if p.Radius != nil {
		o.Radius = *p.Radius
	}
	if p.MaxScan != nil {
		o.MaxScan = *p.MaxScan
	}
	if p.QuickScan != nil {
		o.QuickScan = *p.QuickScan
	}
	if p.MaxExplore != nil {
		o.MaxExplore = *p.MaxExplore
	}
	if p.Relaxed != nil {
		o.Relaxed = *p.Relaxed
	}
	return o
}

func decodeParams[T any](raw json.RawMessage) (T, error) {
	var p T
	if len(raw) == 0 {
		return p, nil
	}
	if err := json.Unmarshal(raw, &p); err != nil {
		return p, fmt.Errorf("%w: bad params: %v", ErrBadRequest, err)
	}
	return p, nil
}

func init() {
	RegisterAnalysis(AnalysisInfo{
		Name:   "diff",
		Doc:    "views-based trace differencing (Fig. 12): similarity sets, difference sets, difference sequences",
		Roles:  []string{"left", "right"},
		Params: "window, radius, max_scan, quick_scan, max_explore, relaxed, parallelism",
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		left, err := req.Source("left")
		if err != nil {
			return nil, err
		}
		right, err := req.Source("right")
		if err != nil {
			return nil, err
		}
		p, err := decodeParams[diffParams](req.Params)
		if err != nil {
			return nil, err
		}
		return e.DiffWith(ctx, left, right, p.apply(e.DefaultDiffOptions()))
	})

	RegisterAnalysis(AnalysisInfo{
		Name:   "regression",
		Doc:    "§4.1 regression-cause analysis: D = (A − B) ∩ C over the four-trace protocol",
		Roles:  []string{"orig_correct", "new_correct", "orig_regr", "new_regr"},
		Params: "removal, plus the diff tunables",
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		var in RegressionSources
		var err error
		if in.OrigCorrect, err = req.Source("orig_correct"); err != nil {
			return nil, err
		}
		if in.NewCorrect, err = req.Source("new_correct"); err != nil {
			return nil, err
		}
		if in.OrigRegr, err = req.Source("orig_regr"); err != nil {
			return nil, err
		}
		if in.NewRegr, err = req.Source("new_regr"); err != nil {
			return nil, err
		}
		p, err := decodeParams[diffParams](req.Params)
		if err != nil {
			return nil, err
		}
		if p.Removal != nil {
			in.Removal = *p.Removal
		}
		return e.AnalyzeRegressionWith(ctx, in, p.apply(e.DefaultDiffOptions()))
	})

	RegisterAnalysis(AnalysisInfo{
		Name:   "protocol",
		Doc:    "object protocol inference (§4): observed method-order transitions of a class",
		Roles:  []string{"trace"},
		Params: `class (required)`,
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		src, err := req.Source("trace")
		if err != nil {
			return nil, err
		}
		p, err := decodeParams[struct {
			Class string `json:"class"`
		}](req.Params)
		if err != nil {
			return nil, err
		}
		if p.Class == "" {
			return nil, fmt.Errorf(`%w: protocol analysis needs params {"class": "..."}`, ErrBadRequest)
		}
		return e.Infer(ctx, src, p.Class)
	})

	RegisterAnalysis(AnalysisInfo{
		Name:   "typestate",
		Doc:    "typestate property checking (§4): verify objects follow a declared protocol",
		Roles:  []string{"trace"},
		Params: `class (required), allowed: {state: [methods...]}`,
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		src, err := req.Source("trace")
		if err != nil {
			return nil, err
		}
		decl, err := decodeParams[ProtocolDecl](req.Params)
		if err != nil {
			return nil, err
		}
		if decl.Class == "" {
			return nil, fmt.Errorf(`%w: typestate analysis needs params {"class": "...", "allowed": {...}}`, ErrBadRequest)
		}
		violations, err := e.Check(ctx, src, decl)
		if err != nil {
			return nil, err
		}
		if violations == nil {
			violations = []ProtocolViolation{}
		}
		return violations, nil
	})

	RegisterAnalysis(AnalysisInfo{
		Name:   "impact",
		Doc:    "impact analysis (§4): methods, classes, objects, and threads the behavioural differences touch",
		Roles:  []string{"left", "right"},
		Params: "the diff tunables",
	}, func(ctx context.Context, e *Engine, req AnalysisRequest) (any, error) {
		left, err := req.Source("left")
		if err != nil {
			return nil, err
		}
		right, err := req.Source("right")
		if err != nil {
			return nil, err
		}
		p, err := decodeParams[diffParams](req.Params)
		if err != nil {
			return nil, err
		}
		return e.ImpactWith(ctx, left, right, p.apply(e.DefaultDiffOptions()))
	})
}
