package rprism

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/trace"
)

// TestFromSessionLiveDiff checks the engine-level live-source semantics:
// FromSession resolves to a fresh snapshot per analysis, so the same
// Source value sees the session grow between calls — unlike every other
// (memoized) source.
func TestFromSessionLiveDiff(t *testing.T) {
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithCorpus(store))
	ctx := context.Background()

	mk := func(n int, bias string) *trace.Trace {
		tr := trace.New("s")
		for i := 0; i < n; i++ {
			obj := trace.Repr{Loc: trace.Loc(1 + i%5), Class: "C", Seq: 1 + i%5}
			tr.Append(0, "C.m/0", obj, trace.Event{Kind: trace.KindSet, Target: obj, Member: "f",
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i%7)+bias)}})
		}
		return tr
	}
	baseline := mk(120, "")
	baseID, _, err := store.Put(baseline)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := store.OpenSession("live")
	if err != nil {
		t.Fatal(err)
	}
	grow := mk(120, "x")
	if _, err := sess.Append(grow.Entries[:40]); err != nil {
		t.Fatal(err)
	}
	live := FromSession(sess)

	d1, err := eng.Diff(ctx, live, FromCorpus(baseID))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(grow.Entries[40:]); err != nil {
		t.Fatal(err)
	}
	d2, err := eng.Diff(ctx, live, FromCorpus(baseID))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Left.Len() >= d2.Left.Len() {
		t.Errorf("same Source did not see session growth: %d then %d entries",
			d1.Left.Len(), d2.Left.Len())
	}
	if d2.NumDiffs() == 0 {
		t.Error("biased live session diffs clean against baseline")
	}

	// The trace path resolves live too (LCS baseline needs raw traces).
	if _, err := eng.DiffLCS(ctx, live, FromCorpus(baseID), LCSOptions{}); err != nil {
		t.Errorf("DiffLCS over a live session: %v", err)
	}

	if _, err := eng.Diff(ctx, FromSession(nil), FromCorpus(baseID)); err == nil {
		t.Error("FromSession(nil) resolved")
	}
}
