package rprism_test

import (
	"context"
	"fmt"

	rprism "repro"
)

const exampleV1 = `
class Counter {
  Int n;
  void bump(Int by) { this.n = this.n + by; return; }
}
class Main {
  void main() {
    let c = new Counter();
    c.bump(1);
    c.bump(2);
    Sys.print(c.n);
  }
}`

// ExampleEngine_Diff runs the views-based differencing of two program
// versions through the Engine API: compile, source both runs, diff under
// a context.
func ExampleEngine_Diff() {
	v2 := `
class Counter {
  Int n;
  void bump(Int by) { this.n = this.n + by + by; return; }
}
class Main {
  void main() {
    let c = new Counter();
    c.bump(1);
    c.bump(2);
    Sys.print(c.n);
  }
}`
	p1, err := rprism.Compile(exampleV1)
	if err != nil {
		panic(err)
	}
	p2, err := rprism.Compile(v2)
	if err != nil {
		panic(err)
	}

	eng := rprism.NewEngine()
	res, err := eng.Diff(context.Background(),
		rprism.FromRun(p1, rprism.RunOptions{}),
		rprism.FromRun(p2, rprism.RunOptions{}))
	if err != nil {
		panic(err)
	}
	fmt.Println("found differences:", res.NumDiffs() > 0)
	fmt.Println("difference sequences:", len(res.Sequences) > 0)
	// Output:
	// found differences: true
	// difference sequences: true
}

// ExampleRegister adds a custom analysis to the registry; it becomes
// dispatchable by name everywhere — Engine.RunAnalysis here, and
// POST /run/{name} on a running rprism-serve.
func ExampleRegister() {
	rprism.Register("entry-count", func(ctx context.Context, e *rprism.Engine, req rprism.AnalysisRequest) (any, error) {
		src, err := req.Source("trace")
		if err != nil {
			return nil, err
		}
		web, err := e.Views(ctx, src)
		if err != nil {
			return nil, err
		}
		return web.Trace.Len() > 0, nil
	})

	p, err := rprism.Compile(exampleV1)
	if err != nil {
		panic(err)
	}
	eng := rprism.NewEngine()
	out, err := eng.RunAnalysis(context.Background(), "entry-count", rprism.AnalysisRequest{
		Sources: map[string]rprism.Source{"trace": rprism.FromRun(p, rprism.RunOptions{})},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("trace has entries:", out)
	// Output:
	// trace has entries: true
}
