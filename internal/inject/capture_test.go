package inject

import (
	"strings"
	"testing"
)

func TestCaptureConfigConflictingSinks(t *testing.T) {
	_, on, err := CaptureConfigFromEnviron([]string{
		EnvCaptureDir + "=/tmp/segs",
		EnvCaptureURL + "=http://localhost:8372",
	})
	if err == nil {
		t.Fatal("want error for Dir+URL conflict")
	}
	if on {
		t.Error("conflicting config must not report enabled")
	}
	if !strings.Contains(err.Error(), EnvCaptureDir) || !strings.Contains(err.Error(), EnvCaptureURL) {
		t.Errorf("error should name both variables: %v", err)
	}
}

func TestCaptureConfigSingleSinkStillWorks(t *testing.T) {
	c, on, err := CaptureConfigFromEnviron([]string{EnvCaptureDir + "=/tmp/segs"})
	if err != nil || !on || c.Dir != "/tmp/segs" {
		t.Fatalf("dir-only config rejected: %+v %v %v", c, on, err)
	}
	c, on, err = CaptureConfigFromEnviron([]string{EnvCaptureURL + "=http://x"})
	if err != nil || !on || c.URL != "http://x" {
		t.Fatalf("url-only config rejected: %+v %v %v", c, on, err)
	}
	// Round trip: Environ output parses back to the same config.
	c2, on, err := CaptureConfigFromEnviron(CaptureConfig{Dir: "/d", Name: "n", SegmentLimit: 7}.Environ(nil))
	if err != nil || !on || c2.Dir != "/d" || c2.Name != "n" || c2.SegmentLimit != 7 {
		t.Fatalf("round trip failed: %+v %v %v", c2, on, err)
	}
}
