// Package inject implements the regression-injection framework of the
// quantitative assessment (§5.1): seeded AST mutations drawn from the
// root-cause distribution found for semantic bugs in the Mozilla project
// [13] — missing features 26.4%, missing cases 17.3%, boundary conditions
// 10.3%, control flow 16.0%, wrong expressions 5.8%, typos 24.2%. Each
// injected regression is validated to make the associated test case fail
// before it is used in an experiment.
package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
)

// Category is a root-cause category.
type Category uint8

const (
	// MissingFeature removes a feature invocation (call or field update).
	MissingFeature Category = iota
	// MissingCase removes a conditional case (an else branch).
	MissingCase
	// Boundary perturbs a boundary condition (comparison op or bound).
	Boundary
	// ControlFlow negates or corrupts a branch condition.
	ControlFlow
	// WrongExpr corrupts an arithmetic expression.
	WrongExpr
	// Typo slightly corrupts a literal constant.
	Typo
)

var categoryNames = [...]string{
	"missing-feature", "missing-case", "boundary", "control-flow", "wrong-expression", "typo",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Distribution is the paper's root-cause distribution, in per-mil.
var Distribution = []struct {
	Cat    Category
	Weight int
}{
	{MissingFeature, 264},
	{MissingCase, 173},
	{Boundary, 103},
	{ControlFlow, 160},
	{WrongExpr, 58},
	{Typo, 242},
}

// Mutation describes an injected regression.
type Mutation struct {
	Category Category
	Class    string
	Method   string
	Desc     string
}

func (m Mutation) String() string {
	return fmt.Sprintf("%s in %s.%s: %s", m.Category, m.Class, m.Method, m.Desc)
}

// site is one applicable mutation, bound to a cloned AST.
type site struct {
	mut   Mutation
	apply func()
}

// Inject clones the program and applies one mutation chosen by the seeded
// generator: category by the paper's distribution, then a uniform site of
// that category (falling back to any category with available sites). It
// returns false when the program offers no mutation sites at all.
func Inject(p *lang.Program, seed int64) (*lang.Program, Mutation, bool) {
	rng := rand.New(rand.NewSource(seed))
	clone := p.Clone()
	sites := collectSites(clone)
	if len(sites) == 0 {
		return nil, Mutation{}, false
	}
	cat := pickCategory(rng)
	chosen := filterSites(sites, cat)
	if len(chosen) == 0 {
		chosen = sites
	}
	s := chosen[rng.Intn(len(chosen))]
	s.apply()
	return clone, s.mut, true
}

// InjectValidated retries derived seeds until validate accepts the
// mutated program (i.e. the designated test case actually fails). Each
// retry re-clones from the pristine original.
func InjectValidated(p *lang.Program, seed int64, maxTries int, validate func(*lang.Program) bool) (*lang.Program, Mutation, bool) {
	for k := 0; k < maxTries; k++ {
		mutated, mut, ok := Inject(p, seed+int64(k)*7919)
		if !ok {
			return nil, Mutation{}, false
		}
		if validate(mutated) {
			return mutated, mut, true
		}
	}
	return nil, Mutation{}, false
}

func pickCategory(rng *rand.Rand) Category {
	total := 0
	for _, d := range Distribution {
		total += d.Weight
	}
	r := rng.Intn(total)
	for _, d := range Distribution {
		if r < d.Weight {
			return d.Cat
		}
		r -= d.Weight
	}
	return Typo
}

func filterSites(sites []site, cat Category) []site {
	var out []site
	for _, s := range sites {
		if s.mut.Category == cat {
			out = append(out, s)
		}
	}
	return out
}

// collectSites enumerates every applicable mutation in the (cloned)
// program, with closures that perform the mutation in place.
func collectSites(p *lang.Program) []site {
	var sites []site
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			w := &walker{class: c.Name, method: m.Name}
			w.stmts(&m.Body)
			sites = append(sites, w.sites...)
		}
		if c.Ctor != nil {
			w := &walker{class: c.Name, method: "<init>"}
			w.stmts(&c.Ctor.Body)
			sites = append(sites, w.sites...)
		}
	}
	return sites
}

type walker struct {
	class, method string
	sites         []site
}

func (w *walker) add(cat Category, desc string, apply func()) {
	w.sites = append(w.sites, site{
		mut:   Mutation{Category: cat, Class: w.class, Method: w.method, Desc: desc},
		apply: apply,
	})
}

func (w *walker) stmts(body *[]lang.Stmt) {
	for i := range *body {
		w.stmt(body, i)
	}
}

func (w *walker) stmt(body *[]lang.Stmt, i int) {
	s := (*body)[i]
	switch s := s.(type) {
	case *lang.Let:
		w.expr(&s.Init)
	case *lang.AssignLocal:
		w.expr(&s.Val)
	case *lang.AssignField:
		// Removing a field update models a missing feature: state the new
		// version should have established is silently absent.
		b, idx := body, i
		w.add(MissingFeature, fmt.Sprintf("remove field update .%s", s.Name), func() {
			removeStmt(b, idx)
		})
		w.expr(&s.Val)
		w.expr(&s.Obj)
	case *lang.If:
		cond := &s.Cond
		w.add(ControlFlow, "negate branch condition", func() {
			*cond = &lang.Unary{Op: "!", X: *cond, Pos: (*cond).ExprPos()}
		})
		if len(s.Else) > 0 {
			st := s
			w.add(MissingCase, "drop else branch", func() { st.Else = nil })
		} else if len(s.Then) > 0 {
			st := s
			w.add(MissingCase, "drop then branch", func() { st.Then = nil })
		}
		w.expr(&s.Cond)
		w.stmts(&s.Then)
		w.stmts(&s.Else)
	case *lang.While:
		w.expr(&s.Cond)
		w.stmts(&s.Body)
	case *lang.Return:
		if s.Val != nil {
			w.expr(&s.Val)
		}
	case *lang.Spawn:
		w.stmts(&s.Body)
	case *lang.ExprStmt:
		if _, isCall := s.X.(*lang.Call); isCall {
			b, idx := body, i
			w.add(MissingFeature, "remove call statement", func() { removeStmt(b, idx) })
		}
		w.expr(&s.X)
	case *lang.SuperCall:
		for k := range s.Args {
			w.expr(&s.Args[k])
		}
	}
}

func (w *walker) expr(ep *lang.Expr) {
	switch e := (*ep).(type) {
	case *lang.Binary:
		switch e.Op {
		case "<", "<=", ">", ">=":
			be := e
			w.add(Boundary, fmt.Sprintf("off-by-one comparison %s", e.Op), func() {
				be.Op = offByOne(be.Op)
			})
			if lit, ok := e.R.(*lang.IntLit); ok {
				w.add(Boundary, fmt.Sprintf("perturb bound %d", lit.Val), func() { lit.Val++ })
			}
		case "+", "-", "*":
			be := e
			w.add(WrongExpr, fmt.Sprintf("corrupt operator %s", e.Op), func() {
				if be.Op == "+" {
					be.Op = "-"
				} else {
					be.Op = "+"
				}
			})
		case "==", "!=":
			be := e
			w.add(ControlFlow, fmt.Sprintf("flip comparison %s", e.Op), func() {
				if be.Op == "==" {
					be.Op = "!="
				} else {
					be.Op = "=="
				}
			})
		}
		w.expr(&e.L)
		w.expr(&e.R)
	case *lang.Unary:
		w.expr(&e.X)
	case *lang.Call:
		for k := range e.Args {
			if lit, ok := e.Args[k].(*lang.IntLit); ok {
				w.add(Typo, fmt.Sprintf("typo in argument %d", lit.Val), func() { lit.Val++ })
			}
		}
		w.expr(&e.Recv)
		for k := range e.Args {
			w.expr(&e.Args[k])
		}
	case *lang.New:
		for k := range e.Args {
			if lit, ok := e.Args[k].(*lang.IntLit); ok {
				w.add(Typo, fmt.Sprintf("typo in constructor argument %d", lit.Val), func() { lit.Val-- })
			}
			w.expr(&e.Args[k])
		}
	case *lang.FieldAccess:
		w.expr(&e.Obj)
	case *lang.StrLit:
		if len(e.Val) > 1 {
			lit := e
			w.add(Typo, fmt.Sprintf("typo in string %q", e.Val), func() {
				lit.Val = lit.Val[:len(lit.Val)-1]
			})
		}
	}
}

func offByOne(op string) string {
	switch op {
	case "<":
		return "<="
	case "<=":
		return "<"
	case ">":
		return ">="
	default:
		return ">"
	}
}

// removeStmt replaces the statement with an empty If (a no-op that keeps
// slice indices of other pending sites valid).
func removeStmt(body *[]lang.Stmt, i int) {
	(*body)[i] = &lang.If{
		Cond: &lang.BoolLit{Val: false},
		Then: nil,
		Pos:  (*body)[i].StmtPos(),
	}
}
