package inject

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
)

const subject = `
class Range {
  Int min;
  Int max;
  Range(Int a, Int b) { super(); this.min = a; this.max = b; }
  Bool contains(Int x) {
    if (x < this.min) { return false; }
    if (x > this.max) { return false; }
    return true;
  }
}
class Main {
  void main() {
    let r = new Range(32, 127);
    let i = 0;
    let hits = 0;
    while (i < 200) {
      if (r.contains(i)) { hits = hits + 1; } else { Sys.print("skip " + i); }
      i = i + 3;
    }
    Sys.print("hits=" + hits);
  }
}`

func output(t *testing.T, p *lang.Program) (string, bool) {
	t.Helper()
	res, err := interp.Run(p, interp.Options{MaxSteps: 200000})
	if err != nil {
		return "", false
	}
	if res.Err != nil {
		return "error: " + res.Err.Error(), true
	}
	return res.Output, true
}

func TestInjectDeterministic(t *testing.T) {
	p := lang.MustParse(subject)
	m1, mut1, ok1 := Inject(p, 42)
	m2, mut2, ok2 := Inject(p, 42)
	if !ok1 || !ok2 {
		t.Fatal("injection failed")
	}
	if mut1 != mut2 {
		t.Errorf("same seed, different mutations: %v vs %v", mut1, mut2)
	}
	if lang.Print(m1) != lang.Print(m2) {
		t.Error("same seed, different programs")
	}
}

func TestInjectDoesNotTouchOriginal(t *testing.T) {
	p := lang.MustParse(subject)
	before := lang.Print(p)
	for seed := int64(0); seed < 20; seed++ {
		Inject(p, seed)
	}
	if lang.Print(p) != before {
		t.Fatal("Inject mutated the original program")
	}
}

func TestInjectChangesProgram(t *testing.T) {
	p := lang.MustParse(subject)
	changed := 0
	for seed := int64(0); seed < 30; seed++ {
		m, _, ok := Inject(p, seed)
		if !ok {
			t.Fatal("no sites")
		}
		if lang.Print(m) != lang.Print(p) {
			changed++
		}
	}
	if changed < 25 {
		t.Errorf("only %d/30 injections changed the program text", changed)
	}
}

func TestInjectedProgramsStillCheck(t *testing.T) {
	p := lang.MustParse(subject)
	for seed := int64(0); seed < 30; seed++ {
		m, mut, ok := Inject(p, seed)
		if !ok {
			t.Fatal("no sites")
		}
		if err := lang.Check(m); err != nil {
			t.Errorf("seed %d (%v): mutated program fails checks: %v", seed, mut, err)
		}
	}
}

func TestCategoryDistributionRoughlyMatchesPaper(t *testing.T) {
	p := lang.MustParse(subject)
	counts := map[Category]int{}
	const n = 3000
	for seed := int64(0); seed < n; seed++ {
		_, mut, ok := Inject(p, seed)
		if !ok {
			t.Fatal("no sites")
		}
		counts[mut.Category]++
	}
	// The subject offers sites in every category, so observed frequencies
	// should be within a few points of the paper's distribution.
	for _, d := range Distribution {
		got := float64(counts[d.Cat]) / n * 1000
		want := float64(d.Weight)
		if got < want*0.6-10 || got > want*1.4+10 {
			t.Errorf("category %v: %.0f per-mil, want about %.0f (counts=%v)",
				d.Cat, got, want, counts)
		}
	}
}

func TestInjectValidatedProducesFailingTest(t *testing.T) {
	p := lang.MustParse(subject)
	baseline, ok := output(t, p)
	if !ok {
		t.Fatal("baseline does not run")
	}
	mutated, mut, ok := InjectValidated(p, 7, 100, func(m *lang.Program) bool {
		out, ran := output(t, m)
		return ran && out != baseline
	})
	if !ok {
		t.Fatal("could not produce a validated regression in 100 tries")
	}
	out, _ := output(t, mutated)
	if out == baseline {
		t.Errorf("validated mutation (%v) does not change behaviour", mut)
	}
}

func TestMutationDescriptions(t *testing.T) {
	p := lang.MustParse(subject)
	seen := map[Category]bool{}
	for seed := int64(0); seed < 200; seed++ {
		_, mut, ok := Inject(p, seed)
		if !ok {
			t.Fatal("no sites")
		}
		seen[mut.Category] = true
		if mut.Class == "" || mut.Method == "" || mut.Desc == "" {
			t.Errorf("incomplete mutation metadata: %+v", mut)
		}
		if !strings.Contains(mut.String(), mut.Desc) {
			t.Errorf("String() missing description: %s", mut)
		}
	}
	for _, d := range Distribution {
		if !seen[d.Cat] {
			t.Errorf("category %v never produced on this subject", d.Cat)
		}
	}
}

func TestInjectNoSites(t *testing.T) {
	p := lang.MustParse(`class Empty {}`)
	if _, _, ok := Inject(p, 1); ok {
		t.Error("program without sites must report failure")
	}
}

func TestMissingFeatureRemovesStatementTraceTransparently(t *testing.T) {
	// A removed call statement must not leave parse artifacts: the printed
	// program must re-parse.
	p := lang.MustParse(subject)
	for seed := int64(0); seed < 50; seed++ {
		m, mut, ok := Inject(p, seed)
		if !ok {
			t.Fatal("no sites")
		}
		if mut.Category != MissingFeature {
			continue
		}
		if _, err := lang.Parse(lang.Print(m)); err != nil {
			t.Errorf("mutated program does not re-parse: %v", err)
		}
	}
}
