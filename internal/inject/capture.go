package inject

import (
	"fmt"
	"strconv"
	"strings"
)

// Process-level capture injection: the environment contract between
// `rprism record` and a child process embedding the capture package.
// The paper's original tool injects instrumentation into the traced
// program from outside (AspectJ load-time weaving); for real Go
// programs the equivalent seam is the process boundary, so the recorder
// CLI "weaves" capture into a child by exporting this configuration and
// the child's capture.StartFromEnv picks it up — no code change beyond
// embedding the shim.

// Environment variables of the capture-injection contract.
const (
	// EnvCaptureDir selects disk capture: the directory the child writes
	// trace segments into.
	EnvCaptureDir = "RPRISM_CAPTURE_DIR"
	// EnvCaptureURL selects live streaming: the base URL of an
	// rprism-serve instance to stream segment frames to.
	EnvCaptureURL = "RPRISM_CAPTURE_URL"
	// EnvCaptureName names the recorded trace (and its segment files).
	EnvCaptureName = "RPRISM_CAPTURE_NAME"
	// EnvCaptureSegment overrides the entries-per-segment limit.
	EnvCaptureSegment = "RPRISM_CAPTURE_SEGMENT"
)

// CaptureConfig is the injected capture configuration. Exactly one of
// Dir and URL selects the sink; the zero value means "capture disabled".
type CaptureConfig struct {
	Dir          string // segment directory (disk capture)
	URL          string // rprism-serve base URL (live streaming)
	Name         string // trace name
	SegmentLimit int    // entries per segment/frame, 0 = capture default
}

// Enabled reports whether the configuration selects any sink.
func (c CaptureConfig) Enabled() bool { return c.Dir != "" || c.URL != "" }

// Environ returns base extended with this configuration, replacing any
// RPRISM_CAPTURE_* variables already present — the environment to start
// an instrumented child process with.
func (c CaptureConfig) Environ(base []string) []string {
	out := make([]string, 0, len(base)+4)
	for _, kv := range base {
		if k, _, ok := strings.Cut(kv, "="); ok {
			switch k {
			case EnvCaptureDir, EnvCaptureURL, EnvCaptureName, EnvCaptureSegment:
				continue
			}
		}
		out = append(out, kv)
	}
	if c.Dir != "" {
		out = append(out, EnvCaptureDir+"="+c.Dir)
	}
	if c.URL != "" {
		out = append(out, EnvCaptureURL+"="+c.URL)
	}
	if c.Name != "" {
		out = append(out, EnvCaptureName+"="+c.Name)
	}
	if c.SegmentLimit > 0 {
		out = append(out, EnvCaptureSegment+"="+strconv.Itoa(c.SegmentLimit))
	}
	return out
}

// CaptureConfigFromEnviron parses the contract back out of an
// environment. The boolean reports whether capture is enabled at all; a
// malformed segment limit — or conflicting sink selection (both Dir and
// URL set, where the contract demands exactly one) — is an error rather
// than a silent default so a typo'd injection fails loudly in the child.
func CaptureConfigFromEnviron(env []string) (CaptureConfig, bool, error) {
	var c CaptureConfig
	for _, kv := range env {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case EnvCaptureDir:
			c.Dir = v
		case EnvCaptureURL:
			c.URL = v
		case EnvCaptureName:
			c.Name = v
		case EnvCaptureSegment:
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return CaptureConfig{}, false, fmt.Errorf("inject: %s=%q: not a non-negative integer", EnvCaptureSegment, v)
			}
			c.SegmentLimit = n
		}
	}
	if c.Dir != "" && c.URL != "" {
		return CaptureConfig{}, false, fmt.Errorf(
			"inject: both %s and %s are set; exactly one sink must be selected", EnvCaptureDir, EnvCaptureURL)
	}
	return c, c.Enabled(), nil
}
