// Package capture is the live-capture tier: a lightweight in-process
// tracer real Go programs embed to record their own execution into the
// rprism trace grammar — the role AspectJ load-time weaving plays for
// the paper's original tool, played here by explicit Enter/Exit/Emit
// hooks (go-tracey style) plus an environment-variable injection
// contract for `rprism record` (see internal/inject).
//
// Architecture: each goroutine records into its own bounded buffer,
// found by goroutine id, so hooks on different goroutines never contend
// on one lock. A buffer that fills — or a periodic flusher — hands its
// batch to the sequencer, which assigns globally consecutive entry ids
// and dense thread ids and feeds one of two sinks: disk segments in the
// trace.SegmentWriter format (§5 segmentation, crash-recoverable via
// trace.LoadSegmentsReport), or live streaming to rprism-serve's
// POST /traces/stream as NDJSON segment frames that build an append-open
// corpus session. Backpressure is blocking, not lossy: a full buffer
// flushes synchronously on the recording goroutine, so a slow sink slows
// the program instead of silently dropping events.
//
// Memory is proportional to goroutines the recorder has seen and not
// retired: goroutines started via Recorder.Go retire their state when
// they finish; any other goroutine that records and then exits (or
// returns to a pool) should call Recorder.EndThread first, or its
// per-goroutine state lives until Close.
//
// Embed it like:
//
//	rec, _ := capture.Start(capture.Options{Dir: "segs", Name: "run"})
//	defer rec.Close()
//
//	func (s *Server) Handle(req Req) {
//		exit := rec.Enter("Server.Handle/1", selfRepr, argRepr)
//		defer exit()
//		...
//	}
package capture

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/inject"
	"repro/internal/trace"
)

// Options configure a Recorder. Exactly one of Dir and ServerURL must be
// set: Dir records trace segments to disk, ServerURL streams them into a
// live rprism-serve session.
type Options struct {
	// Name is the recorded trace's name (default "capture").
	Name string
	// Dir is the directory segments are written into (disk capture).
	Dir string
	// ServerURL is the base URL of an rprism-serve instance to stream to
	// (live capture), e.g. "http://localhost:8372".
	ServerURL string
	// SegmentLimit is the number of entries per disk segment or stream
	// frame (default 4096).
	SegmentLimit int
	// RingSize bounds each goroutine's event buffer; a full buffer
	// flushes synchronously (default 256).
	RingSize int
	// FlushInterval is the period of the background flusher that drains
	// quiet goroutines' buffers so a live session stays current. Default
	// 200ms; negative disables the flusher (flushes then happen only on
	// full buffers, Flush, and Close).
	FlushInterval time.Duration
	// Client is the HTTP client for streaming (default http.DefaultClient
	// with a 30s timeout).
	Client *http.Client
	// SegmentFormat is the on-disk encoding of captured segments (disk
	// capture only). The zero value is the default format, RSEG.
	SegmentFormat trace.Format
	// RetryAttempts bounds how many times a stream request is tried
	// against transient failures — transport errors (connection reset)
	// and 5xx responses — before giving up (default 4). Definitive 4xx
	// rejections never retry.
	RetryAttempts int
	// RetryBackoff is the base of the jittered exponential backoff
	// between stream retries (default 100ms): the wait before try n+1 is
	// uniform in [d/2, 3d/2) with d = RetryBackoff·2ⁿ⁻¹.
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "capture"
	}
	if o.SegmentLimit <= 0 {
		o.SegmentLimit = 4096
	}
	if o.RingSize <= 0 {
		o.RingSize = 256
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 200 * time.Millisecond
	}
	return o
}

// FromEnv builds Options from the inject environment contract. The
// boolean reports whether capture was injected at all.
func FromEnv() (Options, bool, error) {
	cfg, on, err := inject.CaptureConfigFromEnviron(os.Environ())
	if err != nil || !on {
		return Options{}, on, err
	}
	return Options{
		Name:         cfg.Name,
		Dir:          cfg.Dir,
		ServerURL:    cfg.URL,
		SegmentLimit: cfg.SegmentLimit,
	}, true, nil
}

// Summary reports what a closed recorder captured.
type Summary struct {
	// Entries is the number of trace entries recorded.
	Entries int
	// Threads is the number of distinct goroutines that recorded events.
	Threads int
	// Dir is the segment directory (disk capture).
	Dir string
	// Session is the server session id (live capture).
	Session string
	// TraceID is the content digest the server finalized the trace under
	// (live capture).
	TraceID string
	// Created reports whether the server stored new content (live
	// capture; false means the identical execution was already stored).
	Created bool
}

// Recorder is the in-process tracer. All methods are safe for concurrent
// use from any number of goroutines.
type Recorder struct {
	opts Options
	sink sink

	mu      sync.Mutex // sequencer: EID assignment + sink order
	next    trace.EntryID
	nextTID trace.ThreadID
	closed  bool
	err     error // sticky first sink error

	// done mirrors closed for lock-free hook fast paths: once Close has
	// run, Enter/Emit/Go degrade to (almost) free no-ops instead of
	// buffering events that flushShard would only discard — important
	// for woven binaries whose goroutines outlive main's Close.
	done atomic.Bool

	shards sync.Map // goroutine id (uint64) → *gshard

	// spawned tracks goroutines started via Go so Close can wait for
	// their end events: a program-level join (the fn returning) happens
	// before the recorder's own end bookkeeping, so without this a Close
	// racing the last worker would drop its end entry.
	spawned sync.WaitGroup

	stopOnce  sync.Once
	flushStop chan struct{}
	flushDone chan struct{}
}

// Start opens a recorder on the configured sink.
func Start(opts Options) (*Recorder, error) {
	opts = opts.withDefaults()
	if (opts.Dir == "") == (opts.ServerURL == "") {
		return nil, errors.New("capture: exactly one of Options.Dir and Options.ServerURL must be set")
	}
	r := &Recorder{opts: opts}
	if opts.Dir != "" {
		w, err := trace.NewSegmentWriterFormat(opts.Dir, opts.Name, opts.SegmentLimit, opts.SegmentFormat)
		if err != nil {
			return nil, fmt.Errorf("capture: %w", err)
		}
		r.sink = &diskSink{w: w}
	} else {
		r.sink = newStreamSink(opts)
	}
	if opts.FlushInterval > 0 {
		r.flushStop = make(chan struct{})
		r.flushDone = make(chan struct{})
		go r.flusher(opts.FlushInterval)
	}
	return r, nil
}

// StartFromEnv starts a recorder when the process was launched with
// capture injected (see `rprism record`); the boolean reports whether it
// was. Programs embed it unconditionally:
//
//	if rec, on, _ := capture.StartFromEnv(); on {
//		defer rec.Close()
//	}
func StartFromEnv() (*Recorder, bool, error) {
	opts, on, err := FromEnv()
	if err != nil || !on {
		return nil, on, err
	}
	r, err := Start(opts)
	if err != nil {
		return nil, true, err
	}
	return r, true, nil
}

// goid parses the current goroutine's id from its stack header — the
// go-tracey trick; there is no public API for it.
func goid() uint64 {
	var b [64]byte
	s := b[:runtime.Stack(b[:], false)]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	n, _ := strconv.ParseUint(string(s), 10, 64)
	return n
}

// pendingEvent is one recorded event awaiting sequencing: the entry
// context captured at record time, minus the globally assigned ids.
type pendingEvent struct {
	method string
	self   trace.Repr
	ev     trace.Event
}

// frame is one Enter on a goroutine's shadow stack.
type frame struct {
	method string
	self   trace.Repr
}

// gshard is one goroutine's recording state: its dense thread id, its
// shadow call stack (the generic context of the grammar), its spawn
// ancestry (set for goroutines started via Go), and its bounded pending
// buffer.
type gshard struct {
	tid trace.ThreadID

	// flushMu serializes whole flushes of this shard (take + sequence):
	// without it, the background flusher and a ring-full flush could
	// each take a batch under mu but reach the sequencer in the other
	// order, emitting one goroutine's later events before its earlier
	// ones. Lock order is flushMu → mu → Recorder.mu, and record paths
	// take only mu, so the recording goroutine never blocks on a flush
	// in progress beyond the batch handoff.
	flushMu sync.Mutex

	mu      sync.Mutex
	stack   []frame
	spawn   []trace.Frame
	pending []pendingEvent
}

// context returns the current generic context: the innermost Enter'd
// method and receiver, or the thread's root context (empty) outside any.
func (g *gshard) context() (string, trace.Repr) {
	if n := len(g.stack); n > 0 {
		return g.stack[n-1].method, g.stack[n-1].self
	}
	return "", trace.Repr{}
}

// stackFrames snapshots spawn ancestry + shadow stack as trace frames,
// the S̄ of fork/end events. Caller holds g.mu.
func (g *gshard) stackFrames() []trace.Frame {
	out := append([]trace.Frame(nil), g.spawn...)
	caller := trace.Repr{}
	for _, f := range g.stack {
		out = append(out, trace.Frame{Method: f.method, Caller: caller, Callee: f.self})
		caller = f.self
	}
	return out
}

// shard returns the calling goroutine's shard, creating (and numbering)
// it on first use.
func (r *Recorder) shard() *gshard {
	id := goid()
	if g, ok := r.shards.Load(id); ok {
		return g.(*gshard)
	}
	g := r.newShard()
	if prev, loaded := r.shards.LoadOrStore(id, g); loaded {
		return prev.(*gshard) // impossible race on our own goid, but be safe
	}
	return g
}

// newShard allocates a shard with the next dense thread id.
func (r *Recorder) newShard() *gshard {
	r.mu.Lock()
	g := &gshard{tid: r.nextTID}
	r.nextTID++
	r.mu.Unlock()
	return g
}

// Enter records a method invocation — call it at the top of an
// instrumented function — and returns the exit hook to defer. The call
// event is recorded in the caller's context (the enclosing Enter, or the
// thread root) exactly as the tracing interpreter does; events recorded
// until the exit hook runs carry the entered method as their context.
//
//	exit := rec.Enter("Worker.run/1", self, arg)
//	defer exit()
//
// The exit hook records the matching return event; pass it the return
// value's representation, if any.
func (r *Recorder) Enter(method string, self trace.Repr, args ...trace.Repr) func(results ...trace.Repr) {
	if r.done.Load() {
		return noopExit
	}
	g := r.shard()
	g.mu.Lock()
	ctxMethod, ctxSelf := g.context()
	g.stack = append(g.stack, frame{method: method, self: self})
	g.pending = append(g.pending, pendingEvent{
		method: ctxMethod, self: ctxSelf,
		ev: trace.Event{Kind: trace.KindCall, Target: self, Member: method, Args: args},
	})
	full := len(g.pending) >= r.opts.RingSize
	g.mu.Unlock()
	if full {
		r.flushShard(g)
	}
	return func(results ...trace.Repr) { r.exit(g, method, self, results) }
}

// noopExit is the shared exit hook returned once the recorder is done.
var noopExit = func(...trace.Repr) {}

// exit pops the shadow stack down to (and including) the matching Enter
// and records the return event in the revealed context — tolerant of
// skipped exits (panics unwinding past deferred hooks).
func (r *Recorder) exit(g *gshard, method string, self trace.Repr, results []trace.Repr) {
	if r.done.Load() {
		return
	}
	g.mu.Lock()
	for i := len(g.stack) - 1; i >= 0; i-- {
		if g.stack[i].method == method {
			g.stack = g.stack[:i]
			break
		}
	}
	ctxMethod, ctxSelf := g.context()
	g.pending = append(g.pending, pendingEvent{
		method: ctxMethod, self: ctxSelf,
		ev: trace.Event{Kind: trace.KindReturn, Target: self, Member: method, Args: results},
	})
	full := len(g.pending) >= r.opts.RingSize
	g.mu.Unlock()
	if full {
		r.flushShard(g)
	}
}

// EndThread flushes and retires the calling goroutine's recording
// state. Goroutines started via Go retire themselves; any OTHER
// goroutine that recorded events and is about to exit (or return to a
// pool) should call EndThread, or its shard lingers in the recorder for
// the capture's lifetime — in a goroutine-per-request server that is an
// unbounded leak. A goroutine that records again after EndThread simply
// gets a fresh thread id.
func (r *Recorder) EndThread() {
	id := goid()
	g, ok := r.shards.Load(id)
	if !ok {
		return
	}
	r.shards.Delete(id)
	r.flushShard(g.(*gshard))
}

// Emit records a raw event — field reads/writes, creations, anything in
// the grammar — in the calling goroutine's current context (the
// innermost Enter'd method and receiver).
func (r *Recorder) Emit(ev trace.Event) {
	if r.done.Load() {
		return
	}
	g := r.shard()
	g.mu.Lock()
	ctxMethod, ctxSelf := g.context()
	g.pending = append(g.pending, pendingEvent{method: ctxMethod, self: ctxSelf, ev: ev})
	full := len(g.pending) >= r.opts.RingSize
	g.mu.Unlock()
	if full {
		r.flushShard(g)
	}
}

// EmitIn is Emit with an explicit context override, for producers that
// track their own call structure.
func (r *Recorder) EmitIn(method string, self trace.Repr, ev trace.Event) {
	if r.done.Load() {
		return
	}
	g := r.shard()
	g.mu.Lock()
	g.pending = append(g.pending, pendingEvent{method: method, self: self, ev: ev})
	full := len(g.pending) >= r.opts.RingSize
	g.mu.Unlock()
	if full {
		r.flushShard(g)
	}
}

// Go records a thread fork and runs fn on a new goroutine under a fresh
// thread id, with the parent's stack as spawn ancestry — the fork(S̄) /
// end(S̄) bracketing thread correlation scores spawn context with.
// Goroutines not started through Go still record fine (they get a thread
// id on first event) but carry no fork event or ancestry.
func (r *Recorder) Go(fn func()) {
	if r.done.Load() {
		// The program's goroutine must still run; only its bracketing is
		// gone, exactly as if the recorder had never been injected.
		go fn()
		return
	}
	parent := r.shard()
	child := r.newShard()
	parent.mu.Lock()
	ancestry := parent.stackFrames()
	ctxMethod, ctxSelf := parent.context()
	child.spawn = ancestry
	parent.pending = append(parent.pending, pendingEvent{
		method: ctxMethod, self: ctxSelf,
		ev: trace.Event{
			Kind:   trace.KindFork,
			Member: strconv.Itoa(int(child.tid)),
			Stack:  ancestry,
		},
	})
	full := len(parent.pending) >= r.opts.RingSize
	parent.mu.Unlock()
	if full {
		r.flushShard(parent)
	}
	r.spawned.Add(1)
	go func() {
		id := goid()
		r.shards.Store(id, child)
		defer func() {
			defer r.spawned.Done()
			child.mu.Lock()
			ctxM, ctxS := child.context()
			child.pending = append(child.pending, pendingEvent{
				method: ctxM, self: ctxS,
				ev: trace.Event{Kind: trace.KindEnd, Stack: child.spawn},
			})
			child.mu.Unlock()
			r.flushShard(child)
			r.shards.Delete(id)
		}()
		fn()
	}()
}

// flushShard sequences a shard's pending batch: under the sequencer
// lock, every event gets the next global entry id and goes to the sink
// in that order. After Close (or a sticky sink error) late events are
// discarded.
func (r *Recorder) flushShard(g *gshard) {
	g.flushMu.Lock()
	defer g.flushMu.Unlock()
	g.mu.Lock()
	batch := g.pending
	g.pending = nil
	g.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.err != nil {
		return
	}
	for i := range batch {
		p := &batch[i]
		e := trace.Entry{EID: r.next, TID: g.tid, Method: p.method, Self: p.self, Event: p.ev}
		r.next++
		if err := r.sink.append(e); err != nil {
			r.err = fmt.Errorf("capture: sink: %w", err)
			return
		}
	}
}

// flusher periodically drains every shard so buffers on quiet goroutines
// reach the sink (and a live session stays current).
func (r *Recorder) flusher(every time.Duration) {
	defer close(r.flushDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-r.flushStop:
			return
		case <-tick.C:
			r.flushAll()
			r.mu.Lock()
			if err := r.sink.flush(); err != nil && r.err == nil {
				r.err = fmt.Errorf("capture: sink: %w", err)
			}
			r.mu.Unlock()
		}
	}
}

func (r *Recorder) flushAll() {
	r.shards.Range(func(_, v any) bool {
		r.flushShard(v.(*gshard))
		return true
	})
}

// Flush drains every goroutine's buffer and pushes buffered sink data
// downstream (disk: the current segment stays open; stream: a segment
// frame is sent). It returns the recorder's sticky error, if any.
func (r *Recorder) Flush() error {
	r.flushAll()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	if r.closed {
		return errors.New("capture: recorder closed")
	}
	if err := r.sink.flush(); err != nil {
		r.err = fmt.Errorf("capture: sink: %w", err)
	}
	return r.err
}

// Entries reports how many entries have been sequenced so far (buffered
// events not yet flushed are not counted).
func (r *Recorder) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.next)
}

// Close waits for every goroutine started via Go to finish (their end
// events are part of the trace), drains all buffers, finalizes the sink
// — closing the last disk segment, or sending the stream's close frame
// so the server finalizes the session into a content digest — and
// returns the capture summary. Events recorded after Close are
// discarded. Close is idempotent in effect but only the first call
// returns the summary of the capture.
func (r *Recorder) Close() (Summary, error) {
	r.spawned.Wait()
	if r.flushStop != nil {
		r.stopOnce.Do(func() { close(r.flushStop) })
		<-r.flushDone
	}
	r.flushAll()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return Summary{}, errors.New("capture: recorder already closed")
	}
	r.closed = true
	r.done.Store(true)
	sum := Summary{
		Entries: int(r.next),
		Threads: int(r.nextTID),
		Dir:     r.opts.Dir,
	}
	if r.err != nil {
		return sum, r.err
	}
	if err := r.sink.close(&sum); err != nil {
		return sum, fmt.Errorf("capture: sink: %w", err)
	}
	return sum, nil
}
