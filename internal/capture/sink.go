package capture

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/retry"
	"repro/internal/trace"
)

// sink receives sequenced entries in EID order. append and flush run
// under the recorder's sequencer lock; close runs once, last.
type sink interface {
	append(e trace.Entry) error
	flush() error
	close(sum *Summary) error
}

// ---- disk sink ----

// diskSink writes entries through the §5 segment writer: bounded
// segments offloaded to a directory, reassembled later by
// trace.LoadSegments (which tolerates a truncated tail, so a crashed
// capture still yields its flushed prefix).
type diskSink struct {
	w *trace.SegmentWriter
}

func (d *diskSink) append(e trace.Entry) error {
	id, err := d.w.Append(e.TID, e.Method, e.Self, e.Event)
	if err != nil {
		return err
	}
	if id != e.EID {
		return fmt.Errorf("segment writer assigned id %d to entry %d", id, e.EID)
	}
	return nil
}

// flush is a no-op for disk: the segment writer offloads on its own
// limit, and half-full segments stay open until close.
func (d *diskSink) flush() error { return nil }

func (d *diskSink) close(*Summary) error { return d.w.Close() }

// ---- streaming protocol ----

// The wire protocol of POST /traces/stream, shared by this client and
// internal/server. The request body is NDJSON: one StreamFrame per line.
// Every request names its session in an "open" frame (an unknown or
// empty id opens a new session; a known id resumes it), carries any
// number of "segment" frames, and may end with a "close" frame that
// finalizes the session into a content-addressed trace. The response is
// one StreamAck. Entries keep their global EIDs, so re-sending a batch
// after a dropped connection is idempotent — the session skips what it
// already holds.

// Frame kinds of the stream protocol.
const (
	FrameOpen    = "open"
	FrameSegment = "segment"
	FrameClose   = "close"
)

// StreamFrame is one NDJSON line of a capture stream.
type StreamFrame struct {
	Frame string `json:"frame"`
	// Session identifies the session ("" in an open frame: create one).
	Session string `json:"session,omitempty"`
	// Name names the trace (open frames of new sessions).
	Name string `json:"name,omitempty"`
	// Symbols and Entries are the segment payload (segment frames): the
	// symbol delta plus symbol-referencing entries of trace.WireSegment.
	Symbols []string          `json:"symbols,omitempty"`
	Entries []trace.WireEntry `json:"entries,omitempty"`
}

// StreamTraceInfo describes the finalized trace in a close ack.
type StreamTraceInfo struct {
	ID      string `json:"id"` // content digest, hex
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	Created bool   `json:"created"` // false: deduplicated to existing content
}

// StreamAck is the response to one stream request.
type StreamAck struct {
	Session string `json:"session"`
	// Entries is the session's entry count after this request — the
	// client's resume point.
	Entries int `json:"entries"`
	// Trace is set when the request's close frame finalized the session.
	Trace *StreamTraceInfo `json:"trace,omitempty"`
}

// ---- stream sink ----

// streamSink batches sequenced entries into segment frames and POSTs
// them to rprism-serve. Each request is self-contained (open + segments
// [+ close]), so a failed request can simply be retried: the server
// dedups by entry id.
type streamSink struct {
	url      string
	name     string
	client   *http.Client
	batch    int
	attempts int
	backoff  time.Duration
	session  string
	enc      trace.WireEncoder
	buf      []trace.Entry
}

func newStreamSink(opts Options) *streamSink {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	attempts := opts.RetryAttempts
	if attempts <= 0 {
		attempts = 4
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &streamSink{
		url:      opts.ServerURL,
		name:     opts.Name,
		client:   client,
		batch:    opts.SegmentLimit,
		attempts: attempts,
		backoff:  backoff,
	}
}

func (s *streamSink) append(e trace.Entry) error {
	s.buf = append(s.buf, e)
	if len(s.buf) >= s.batch {
		return s.flush()
	}
	return nil
}

func (s *streamSink) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	_, err := s.post(false)
	return err
}

func (s *streamSink) close(sum *Summary) error {
	ack, err := s.post(true)
	if err != nil {
		return err
	}
	sum.Session = s.session
	if ack.Trace != nil {
		sum.TraceID = ack.Trace.ID
		sum.Created = ack.Trace.Created
	}
	return nil
}

// post sends one stream request: open + buffered segment (+ close). On
// success the buffer is released; on transport errors it is retained and
// retried (entry-id and symbol-replay dedup on the server make the
// retry idempotent).
//
// The first post performs a data-free open handshake before shipping
// anything: every data-bearing request must name a session the client
// already knows, or a processed-but-unacked first request would strand
// its data in a session the retry can never find (the retry's anonymous
// open would mint a second session). A lost handshake ack can still
// leak an *empty* session server-side — visible in GET /sessions,
// abortable, and gone on server restart — which is the harmless end of
// that trade.
func (s *streamSink) post(closeSession bool) (*StreamAck, error) {
	if s.session == "" {
		ack, err := s.postFrames([]StreamFrame{{Frame: FrameOpen, Name: s.name}})
		if err != nil {
			return nil, err
		}
		s.session = ack.Session
	}
	return s.postData(closeSession)
}

func (s *streamSink) postData(closeSession bool) (*StreamAck, error) {
	// Encode the segment once; retries resend the identical frame. The
	// symbol delta stays correct across retries because the encoder's
	// table is only advanced here, whether or not the request lands.
	var seg trace.WireSegment
	if len(s.buf) > 0 {
		seg = s.enc.Segment(s.buf)
	}
	frames := []StreamFrame{{Frame: FrameOpen, Session: s.session, Name: s.name}}
	if len(seg.Entries) > 0 {
		frames = append(frames, StreamFrame{Frame: FrameSegment, Symbols: seg.Symbols, Entries: seg.Entries})
	}
	if closeSession {
		frames = append(frames, StreamFrame{Frame: FrameClose})
	}
	ack, err := s.postFrames(frames)
	if err != nil {
		return nil, err
	}
	s.buf = s.buf[:0]
	return ack, nil
}

// postFrames encodes and sends one request body, retrying transient
// failures (transport errors like a reset connection, 5xx responses)
// with the identical bytes under the shared jittered-backoff policy
// (internal/retry), and failing fast on definitive 4xx rejections.
func (s *streamSink) postFrames(frames []StreamFrame) (*StreamAck, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			return nil, err
		}
	}
	var ack *StreamAck
	p := retry.Policy{Attempts: s.attempts, Base: s.backoff}
	if err := p.Do(context.Background(), func() error {
		a, err := s.send(body.Bytes())
		if err != nil {
			return err
		}
		ack = a
		return nil
	}); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return ack, nil
}

func (s *streamSink) send(body []byte) (*StreamAck, error) {
	req, err := http.NewRequest(http.MethodPost, s.url+"/traces/stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		err := fmt.Errorf("server: HTTP %d", resp.StatusCode)
		if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
			err = fmt.Errorf("server: %s (%s)", env.Error.Message, env.Error.Code)
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// Definitive rejection: retrying the identical bytes is wasted.
			return nil, retry.Permanent(err)
		}
		return nil, err
	}
	var ack StreamAck
	if err := json.Unmarshal(raw, &ack); err != nil {
		return nil, fmt.Errorf("bad stream ack: %w", err)
	}
	return &ack, nil
}

// StreamTrace streams an existing in-memory trace into a server session
// in batch-sized segment frames and finalizes it — the engine behind
// `rprism attach`. It returns the close ack (session id + finalized
// trace info).
func StreamTrace(ctx context.Context, url string, t *trace.Trace, batch int, client *http.Client) (*StreamAck, error) {
	if batch <= 0 {
		batch = 4096
	}
	s := newStreamSink(Options{ServerURL: url, Name: t.Name, SegmentLimit: batch, Client: client})
	for lo := 0; lo < t.Len(); lo += batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + batch
		if hi > t.Len() {
			hi = t.Len()
		}
		s.buf = append(s.buf, t.Entries[lo:hi]...)
		if _, err := s.post(false); err != nil {
			return nil, fmt.Errorf("capture: stream %q: %w", t.Name, err)
		}
	}
	ack, err := s.post(true)
	if err != nil {
		return nil, fmt.Errorf("capture: finalize %q: %w", t.Name, err)
	}
	return ack, nil
}
