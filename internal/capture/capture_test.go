package capture

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
	"repro/internal/views"
)

// workload drives a recorder through a multi-goroutine run: a root
// goroutine forks workers via Go, each entering a method, emitting field
// events, and exiting. Returns the number of forked workers.
func workload(r *Recorder, workers, events int) {
	root := Obj(1, "Pool", 1)
	exitMain := r.Enter("Pool.run/0", root)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		r.Go(func() {
			defer wg.Done()
			self := Obj(int64(10+w), "Worker", w+1)
			exit := r.Enter("Worker.work/1", self, trace.PrimRepr("Int", fmt.Sprint(w)))
			for i := 0; i < events; i++ {
				r.Emit(trace.Event{Kind: trace.KindGet, Target: self, Member: "state",
					Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i))}})
			}
			exit(trace.PrimRepr("Int", fmt.Sprint(w*events)))
		})
	}
	wg.Wait()
	exitMain()
}

// Obj/Val mirror the public shim's helpers without importing it (the
// shim imports this package).
func Obj(loc int64, class string, seq int) trace.Repr {
	return trace.Repr{Loc: trace.Loc(loc), Class: class, Seq: seq}
}

func TestDiskCaptureMultiGoroutine(t *testing.T) {
	dir := t.TempDir()
	r, err := Start(Options{Dir: dir, Name: "run", SegmentLimit: 64, RingSize: 16, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const workers, events = 4, 40
	workload(r, workers, events)
	sum, err := r.Close()
	if err != nil {
		t.Fatal(err)
	}
	// main enter/exit + per worker (fork + enter + events + exit + end)
	want := 2 + workers*(events+4)
	if sum.Entries != want {
		t.Errorf("summary reports %d entries, want %d", sum.Entries, want)
	}
	if sum.Threads != workers+1 {
		t.Errorf("summary reports %d threads, want %d", sum.Threads, workers+1)
	}

	tr, err := trace.LoadSegments(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != want {
		t.Fatalf("reassembled %d entries, want %d", tr.Len(), want)
	}
	for i, e := range tr.Entries {
		if int(e.EID) != i {
			t.Fatalf("entry %d has eid %d: ids not dense", i, e.EID)
		}
	}
	if got := len(tr.ThreadIDs()); got != workers+1 {
		t.Errorf("trace has %d threads, want %d", got, workers+1)
	}

	// Grammar structure: one fork per worker (with ancestry), one end per
	// worker, balanced call/return.
	var forks, ends, calls, returns int
	for _, e := range tr.Entries {
		switch e.Event.Kind {
		case trace.KindFork:
			forks++
			if len(e.Event.Stack) == 0 {
				t.Error("fork event carries no spawn ancestry")
			}
			if e.Method != "Pool.run/0" {
				t.Errorf("fork recorded in context %q, want Pool.run/0", e.Method)
			}
		case trace.KindEnd:
			ends++
		case trace.KindCall:
			calls++
		case trace.KindReturn:
			returns++
		}
	}
	if forks != workers || ends != workers {
		t.Errorf("forks=%d ends=%d, want %d each", forks, ends, workers)
	}
	if calls != returns || calls != workers+1 {
		t.Errorf("calls=%d returns=%d, want %d each", calls, returns, workers+1)
	}

	// The captured trace feeds the standard pipeline: a web builds and
	// has the thread/method/object views the workload implies.
	web := views.Build(tr)
	c := web.Count()
	if c.Thread != workers+1 {
		t.Errorf("web has %d thread views, want %d", c.Thread, workers+1)
	}
	if c.Method < 2 {
		t.Errorf("web has %d method views, want >= 2", c.Method)
	}
}

func TestCaptureContextNesting(t *testing.T) {
	// The generic context follows the interpreter's convention: calls and
	// returns are recorded in the caller's context, inner events in the
	// callee's.
	dir := t.TempDir()
	r, err := Start(Options{Dir: dir, Name: "nest", FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := Obj(1, "A", 1), Obj(2, "B", 1)
	exitA := r.Enter("A.outer/0", a)
	exitB := r.Enter("B.inner/0", b)
	r.Emit(trace.Event{Kind: trace.KindSet, Target: b, Member: "f", Args: []trace.Repr{trace.PrimRepr("Int", "1")}})
	exitB()
	exitA()
	if _, err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadSegments(dir, "nest")
	if err != nil {
		t.Fatal(err)
	}
	wantCtx := []string{
		"",          // call A.outer, root context
		"A.outer/0", // call B.inner, recorded in A
		"B.inner/0", // the set, recorded in B
		"A.outer/0", // return B.inner, recorded back in A
		"",          // return A.outer, root context
	}
	if tr.Len() != len(wantCtx) {
		t.Fatalf("recorded %d entries, want %d", tr.Len(), len(wantCtx))
	}
	for i, want := range wantCtx {
		if tr.Entries[i].Method != want {
			t.Errorf("entry %d context %q, want %q", i, tr.Entries[i].Method, want)
		}
	}
}

func TestCaptureStartValidation(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Error("Start accepted empty options (no sink)")
	}
	if _, err := Start(Options{Dir: "x", ServerURL: "http://h"}); err == nil {
		t.Error("Start accepted two sinks")
	}
}

func TestStartFromEnv(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("RPRISM_CAPTURE_DIR", dir)
	t.Setenv("RPRISM_CAPTURE_NAME", "envrun")
	t.Setenv("RPRISM_CAPTURE_SEGMENT", "128")
	r, on, err := StartFromEnv()
	if err != nil || !on {
		t.Fatalf("StartFromEnv: on=%v err=%v", on, err)
	}
	exit := r.Enter("M.m/0", Obj(1, "M", 1))
	exit()
	if _, err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if tr, err := trace.LoadSegments(dir, "envrun"); err != nil || tr.Len() != 2 {
		t.Fatalf("env-injected capture: %v (len %v)", err, tr.Len())
	}
}

func TestStartFromEnvDisabled(t *testing.T) {
	t.Setenv("RPRISM_CAPTURE_DIR", "")
	t.Setenv("RPRISM_CAPTURE_URL", "")
	if _, on, err := StartFromEnv(); on || err != nil {
		t.Fatalf("capture unexpectedly enabled: on=%v err=%v", on, err)
	}
}

// fakeStreamServer implements just enough of POST /traces/stream to test
// the client sink: frame decoding, EID-idempotent appends, session
// continuity, and close acks. failFirst injects one transport failure
// per marked attempt to exercise the retry path.
type fakeStreamServer struct {
	mu       sync.Mutex
	dec      trace.WireDecoder
	entries  []trace.Entry
	session  string
	requests int
	fail     atomic.Int32 // remaining requests to fail with a 500
}

func (f *fakeStreamServer) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.requests++
		if f.fail.Load() > 0 {
			f.fail.Add(-1)
			http.Error(w, `{"error":{"code":"internal","message":"injected"}}`, http.StatusInternalServerError)
			return
		}
		dec := json.NewDecoder(r.Body)
		var closed bool
		for {
			var fr StreamFrame
			if err := dec.Decode(&fr); err != nil {
				break
			}
			switch fr.Frame {
			case FrameOpen:
				if f.session == "" {
					f.session = "live-test"
				} else if fr.Session != "" && fr.Session != f.session {
					t.Errorf("client switched session: %q -> %q", f.session, fr.Session)
				}
			case FrameSegment:
				entries, err := f.dec.Segment(trace.WireSegment{Symbols: fr.Symbols, Entries: fr.Entries})
				if err != nil {
					t.Errorf("segment decode: %v", err)
					return
				}
				for _, e := range entries {
					if int(e.EID) < len(f.entries) {
						continue // idempotent re-delivery
					}
					if int(e.EID) != len(f.entries) {
						t.Errorf("gap: got eid %d, have %d", e.EID, len(f.entries))
						return
					}
					f.entries = append(f.entries, e)
				}
			case FrameClose:
				closed = true
			}
		}
		ack := StreamAck{Session: f.session, Entries: len(f.entries)}
		if closed {
			tr := &trace.Trace{Name: "t", Entries: f.entries}
			ack.Trace = &StreamTraceInfo{ID: tr.ComputeDigest().String(), Name: "t", Entries: len(f.entries), Created: true}
		}
		json.NewEncoder(w).Encode(ack)
	}
}

func TestStreamCaptureWithRetries(t *testing.T) {
	fake := &fakeStreamServer{}
	srv := httptest.NewServer(fake.handler(t))
	defer srv.Close()

	r, err := Start(Options{ServerURL: srv.URL, Name: "live", SegmentLimit: 32, RingSize: 8, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const workers, events = 3, 30
	workload(r, workers, events)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	fake.fail.Store(1) // next request 500s once; the sink must retry
	sum, err := r.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + workers*(events+4)
	if len(fake.entries) != want {
		t.Fatalf("server holds %d entries, want %d", len(fake.entries), want)
	}
	if sum.Session != "live-test" || sum.TraceID == "" || !sum.Created {
		t.Errorf("summary not populated from close ack: %+v", sum)
	}
	// The digest the server computed matches a local batch rebuild of the
	// streamed entries.
	local := &trace.Trace{Name: "live", Entries: fake.entries}
	if got := local.ComputeDigest().String(); got != sum.TraceID {
		t.Errorf("digest mismatch: server %s, local %s", sum.TraceID, got)
	}
}

func TestStreamTraceHelper(t *testing.T) {
	fake := &fakeStreamServer{}
	srv := httptest.NewServer(fake.handler(t))
	defer srv.Close()

	src := trace.New("attach")
	for i := 0; i < 100; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%7), Class: "N", Seq: 1 + i%7}
		src.Append(trace.ThreadID(i%2), "N.m/0", obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: "N.m/0"})
	}
	ack, err := StreamTrace(context.Background(), srv.URL, src, 33, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Trace == nil || ack.Entries != 100 {
		t.Fatalf("ack: %+v", ack)
	}
	if want := src.ComputeDigest().String(); ack.Trace.ID != want {
		t.Errorf("streamed digest %s, want %s", ack.Trace.ID, want)
	}
	if fake.requests < 4 { // 4 segment posts + 1 close
		t.Errorf("expected batched requests, saw %d", fake.requests)
	}
}
