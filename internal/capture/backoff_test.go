package capture

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer fails a configurable prefix of requests — by resetting
// the connection or by returning a status — then serves clean acks.
type flakyServer struct {
	requests atomic.Int32
	resets   atomic.Int32 // remaining requests to kill mid-flight
	fails    atomic.Int32 // remaining requests to fail with failStatus
	status   int
}

func (f *flakyServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		if f.resets.Add(-1) >= 0 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close() // client sees a reset/EOF mid-request
			}
			return
		}
		if f.fails.Add(-1) >= 0 {
			http.Error(w, `{"error":{"code":"x","message":"injected"}}`, f.status)
			return
		}
		json.NewEncoder(w).Encode(StreamAck{Session: "s1"})
	}
}

// TestPostFramesBackoff tables the stream client's retry policy:
// transient failures (5xx, reset connections) retry with backoff up to
// the attempt bound; definitive 4xx rejections fail fast.
func TestPostFramesBackoff(t *testing.T) {
	cases := []struct {
		name     string
		resets   int32
		fails    int32
		status   int
		attempts int
		wantErr  string // "" = success
		wantReqs int32
	}{
		{name: "clean first try", attempts: 4, wantReqs: 1},
		{name: "recovers after one 500", fails: 1, status: 500, attempts: 4, wantReqs: 2},
		{name: "recovers after two 500s", fails: 2, status: 500, attempts: 4, wantReqs: 3},
		{name: "recovers after 503", fails: 1, status: 503, attempts: 4, wantReqs: 2},
		{name: "recovers after connection resets", resets: 2, attempts: 4, wantReqs: 3},
		{name: "reset then 500 then ok", resets: 1, fails: 1, status: 500, attempts: 4, wantReqs: 3},
		{name: "exhausts attempts", fails: 99, status: 500, attempts: 3, wantErr: "3 attempts failed", wantReqs: 3},
		{name: "exhausts attempts on resets", resets: 99, attempts: 2, wantErr: "2 attempts failed", wantReqs: 2},
		{name: "terminal 400 fails fast", fails: 99, status: 400, attempts: 4, wantErr: "injected", wantReqs: 1},
		{name: "terminal 404 fails fast", fails: 99, status: 404, attempts: 4, wantErr: "injected", wantReqs: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &flakyServer{status: tc.status}
			f.resets.Store(tc.resets)
			f.fails.Store(tc.fails)
			srv := httptest.NewServer(f.handler())
			defer srv.Close()

			s := newStreamSink(Options{
				ServerURL:     srv.URL,
				Name:          "flaky",
				SegmentLimit:  8,
				RetryAttempts: tc.attempts,
				RetryBackoff:  time.Millisecond,
			})
			ack, err := s.postFrames([]StreamFrame{{Frame: FrameOpen, Name: "flaky"}})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("postFrames: %v", err)
				}
				if ack.Session != "s1" {
					t.Fatalf("ack: %+v", ack)
				}
			} else {
				if err == nil {
					t.Fatalf("postFrames succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
			}
			if got := f.requests.Load(); got != tc.wantReqs {
				t.Fatalf("server saw %d requests, want %d", got, tc.wantReqs)
			}
		})
	}
}

// The backoff envelope itself (d/2 ≤ wait < 3d/2) is pinned by
// TestJitterBounds in internal/retry, the shared policy both this
// client and the blob backends use.
