// Package weave is rprism's zero-touch instrumenter: it rewrites the
// source of an arbitrary Go module so that every function and method
// records itself through the capture recorder, with no hand edits to the
// target — the role AspectJ load-time weaving plays for the paper's
// original tool, played here at build time.
//
// Two drivers share one rewriting pass (this file):
//
//   - overlay mode (the default, overlay.go): the module's files are
//     rewritten into a work directory and built with `go build -overlay`,
//     which also lets the weaver graft a `require repro` + local
//     `replace` onto the target's go.mod, so a module that has never
//     heard of rprism still links the runtime;
//   - toolexec mode (toolexec.go, `cmd/rprism-weave`): `go build
//     -toolexec=rprism-weave` intercepts each compile, rewrites the
//     package's sources on the fly, and splices prebuilt archives of the
//     runtime into the compiler's and linker's importcfg.
//
// The rewriting itself is textual, not a reprinted AST: edits are
// computed from the parsed syntax and applied as byte splices that never
// add or remove a line, so `//go:build`, `//go:embed`, and every other
// comment directive survive verbatim and stack traces keep their line
// numbers (a `//line` pragma pins the file name too).
package weave

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strconv"
	"strings"
)

const (
	// RuntimeIdent is the identifier injected hooks are qualified with; the
	// leading underscores keep it out of the way of any plausible user name.
	RuntimeIdent = "__rprism_weave"
	// RuntimeImport is the glue package every woven file imports.
	RuntimeImport = "repro/capture/woven"
)

// HookID builds the stable identifier of a woven function: derived only
// from the package import path, receiver type name, function name, and
// declared parameter count, so the same source produces the same id on
// every build, machine, and weaving mode — the property trace
// correlation across program versions depends on.
//
//	repro/examples/weave.work/3          (function)
//	repro/examples/weave.counter.add/1   (method, pointer stars stripped)
func HookID(pkgPath, recv, name string, arity int) string {
	var b strings.Builder
	b.Grow(len(pkgPath) + len(recv) + len(name) + 8)
	b.WriteString(pkgPath)
	b.WriteByte('.')
	if recv != "" {
		b.WriteString(recv)
		b.WriteByte('.')
	}
	b.WriteString(name)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(arity))
	return b.String()
}

// FileInput is one source file handed to RewritePackage.
type FileInput struct {
	// Name is the file's path as diagnostics should report it (the
	// original on-disk path); it is also used for the //line pragma.
	Name string
	Src  []byte
}

// FileOutput is the rewritten counterpart of a FileInput. Unchanged
// files (no woven functions, no go statements) come back verbatim with
// Changed false so callers can skip overlay entries for them.
type FileOutput struct {
	Name    string
	Src     []byte
	Changed bool
}

// PackageStats counts what the weaver did to one package.
type PackageStats struct {
	Funcs   int  // named functions and methods bracketed with Enter/exit
	GoStmts int  // go statements routed through the runtime's Go
	Typed   bool // go-statement hoisting had full type information
}

// PackageInput is one package's worth of rewriting work.
type PackageInput struct {
	// ImportPath prefixes every hook id.
	ImportPath string
	Files      []FileInput
	// MainPkg injects `defer __rprism_weave.Close()` into func main so
	// the capture finalizes when the program returns normally (os.Exit
	// still bypasses it, as it bypasses every defer).
	MainPkg bool
	// CloseOnly restricts the rewrite to that Close defer: no Enter
	// hooks, no go-statement wrapping. Used when filters exclude the main
	// package — tracing is the user's choice, but capture finalization is
	// not, or every recording of such a build would come back empty.
	CloseOnly bool
	// RuntimeImport overrides the glue import path (default RuntimeImport).
	RuntimeImport string
	// Lookup resolves an import path to gc export data (the files `go
	// list -export` or an importcfg name). When set, go statements are
	// hoisted with full type information — untyped constant arguments are
	// inlined, everything else is evaluated at the spawn point exactly as
	// the original `go` statement did. When nil (or when type checking
	// fails), a syntactic approximation is used; see hoistability notes
	// on rewriteGoStmt.
	Lookup func(path string) (io.ReadCloser, error)
	// ImportMap maps source-level import paths to resolved ones
	// (vendoring), applied before Lookup.
	ImportMap map[string]string
	// LinePragmas prepends a `//line <orig>:1` directive to changed files
	// so compiler diagnostics and stack traces report the original path.
	LinePragmas bool
}

// PackageResult is RewritePackage's output.
type PackageResult struct {
	Files    []FileOutput
	Stats    PackageStats
	Warnings []string
}

// RewritePackage rewrites every file of one package: named functions and
// methods gain a `defer Enter(id)()` bracket, go statements are wrapped
// through the runtime's Go with their operands hoisted to preserve
// evaluation timing, and changed files gain the runtime import. Function
// literals are deliberately left unwoven (they have no stable name to
// key a hook id on; the go-statement wrapping still brackets goroutines
// they spawn), as are package init functions (several may share one
// signature, and they can run before the runtime package's own init).
func RewritePackage(in PackageInput) (*PackageResult, error) {
	if in.RuntimeImport == "" {
		in.RuntimeImport = RuntimeImport
	}
	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(in.Files))
	for _, f := range in.Files {
		af, err := parser.ParseFile(fset, f.Name, f.Src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("weave: parse %s: %w", f.Name, err)
		}
		parsed = append(parsed, af)
	}
	res := &PackageResult{}
	var info *types.Info
	if in.Lookup != nil {
		var err error
		if info, err = checkTypes(fset, in.ImportPath, parsed, in.Lookup, in.ImportMap); err != nil {
			info = nil
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: type info unavailable (%v); go statements hoisted syntactically", in.ImportPath, err))
		}
	}
	res.Stats.Typed = info != nil
	for i, f := range in.Files {
		fr := &fileRewriter{
			src:   f.Src,
			tf:    fset.File(parsed[i].Pos()),
			info:  info,
			stats: &res.Stats,
		}
		out := fr.rewrite(parsed[i], in)
		res.Files = append(res.Files, FileOutput{Name: f.Name, Src: out, Changed: fr.changed})
	}
	return res, nil
}

// checkTypes type-checks the package against gc export data of its
// dependencies. Errors are soft: the caller falls back to syntactic
// hoisting.
func checkTypes(fset *token.FileSet, path string, files []*ast.File,
	lookup func(string) (io.ReadCloser, error), importMap map[string]string) (*types.Info, error) {
	mapped := func(p string) (io.ReadCloser, error) {
		if m, ok := importMap[p]; ok {
			p = m
		}
		return lookup(p)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", mapped),
		Error:    func(error) {}, // collect nothing; first hard error surfaces from Check
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	if path == "" {
		path = "main"
	}
	if _, err := conf.Check(path, fset, files, info); err != nil {
		return nil, err
	}
	return info, nil
}

// edit is one byte-range splice: src[off:end] is replaced by text.
// Zero-width edits (off == end) are insertions.
type edit struct {
	off, end int
	text     string
}

// applyEdits splices non-overlapping edits into src.
func applyEdits(src []byte, edits []edit) []byte {
	sort.SliceStable(edits, func(i, j int) bool { return edits[i].off < edits[j].off })
	var out []byte
	last := 0
	for _, e := range edits {
		out = append(out, src[last:e.off]...)
		out = append(out, e.text...)
		last = e.end
	}
	return append(out, src[last:]...)
}

type fileRewriter struct {
	src     []byte
	tf      *token.File
	info    *types.Info
	stats   *PackageStats
	edits   []edit
	tmpN    int
	changed bool
}

func (fr *fileRewriter) offset(p token.Pos) int { return fr.tf.Offset(p) }

func (fr *fileRewriter) rewrite(f *ast.File, in PackageInput) []byte {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue // declarations without bodies (assembly stubs) have nothing to bracket
		}
		name := fd.Name.Name
		if name == "_" || (fd.Recv == nil && name == "init") {
			continue
		}
		isMain := in.MainPkg && fd.Recv == nil && name == "main" && f.Name.Name == "main"
		off := fr.offset(fd.Body.Lbrace) + 1
		if in.CloseOnly {
			if isMain {
				fr.edits = append(fr.edits, edit{off, off, "defer " + RuntimeIdent + ".Close(); "})
			}
			continue
		}
		id := HookID(in.ImportPath, recvTypeName(fd.Recv), name, arity(fd.Type))
		text := "defer " + RuntimeIdent + ".Enter(" + strconv.Quote(id) + ")(); "
		if isMain {
			// Deferred first so it runs last: main's own exit event is
			// recorded before the capture finalizes.
			text = "defer " + RuntimeIdent + ".Close(); " + text
		}
		fr.edits = append(fr.edits, edit{off, off, text})
		fr.stats.Funcs++
	}

	// Go statements, innermost first, so that a statement nested in an
	// operand of an outer one (go func() { go f() }()) is already
	// rewritten when the outer replacement copies that operand's text.
	var gos []*ast.GoStmt
	if !in.CloseOnly {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				gos = append(gos, g)
			}
			return true
		})
	}
	sort.Slice(gos, func(i, j int) bool { return gos[i].Pos() > gos[j].Pos() })
	for _, g := range gos {
		fr.rewriteGoStmt(g)
		fr.stats.GoStmts++
	}

	if len(fr.edits) == 0 {
		return fr.src
	}
	fr.changed = true
	// The import rides the package clause line; `package p; import x "y"`
	// is valid Go and adds no line.
	impOff := fr.offset(f.Name.End())
	fr.edits = append(fr.edits, edit{impOff, impOff,
		"; import " + RuntimeIdent + " " + strconv.Quote(in.RuntimeImport)})
	out := applyEdits(fr.src, fr.edits)
	if in.LinePragmas {
		// Everything below the pragma keeps its original line number (the
		// edits above never add lines), so one pragma pins the whole file.
		out = append([]byte("//line "+fr.tf.Name()+":1\n"), out...)
	}
	return out
}

// rewriteGoStmt replaces `go f(a, b)` with
//
//	{ __rw0_f := f; __rw0_a0 := a; __rw0_a1 := b; __rprism_weave.Go(func() { __rw0_f(__rw0_a0, __rw0_a1) }) }
//
// preserving the statement's evaluation semantics: the function value
// and its arguments are evaluated at the spawn point, in order, on the
// spawning goroutine, exactly as the go statement specifies; only the
// call itself moves into the recorded goroutine. Operand text is copied
// from the (already rewritten) source, so the replacement introduces no
// new lines beyond those the operands already spanned.
//
// Hoisting exceptions, chosen so the rewrite never changes a program's
// types:
//   - constant arguments (with type info: anything constant or nil; without:
//     syntactic literals) are inlined — hoisting an untyped constant
//     through := would re-type it;
//   - a lone multi-valued call argument (go f(g()) with 2-result g) is
//     hoisted into one temp per result when type info says how many, and
//     inlined into the closure otherwise;
//   - builtin callees and direct references to package-level functions
//     are inlined (immutable, and generic functions cannot be hoisted as
//     values without instantiation); method values and func-typed
//     expressions are hoisted so their receiver is evaluated at spawn.
func (fr *fileRewriter) rewriteGoStmt(g *ast.GoStmt) {
	call := g.Call
	off, end := fr.offset(g.Pos()), fr.offset(g.End())
	n := fr.tmpN
	fr.tmpN++

	var b strings.Builder
	b.WriteString("{ ")
	inlineFun := fr.funInlinable(call.Fun)
	funText := fr.take(call.Fun)
	funName := fmt.Sprintf("__rw%d_f", n)
	if !inlineFun {
		fmt.Fprintf(&b, "%s := %s; ", funName, funText)
	}
	callArgs := make([]string, 0, len(call.Args))
	for i, a := range call.Args {
		text := fr.take(a)
		if fr.constArg(a) {
			callArgs = append(callArgs, text)
			continue
		}
		if k := fr.tupleLen(a); k != 1 {
			if k > 1 {
				names := make([]string, k)
				for j := range names {
					names[j] = fmt.Sprintf("__rw%d_a%d_%d", n, i, j)
				}
				fmt.Fprintf(&b, "%s := %s; ", strings.Join(names, ", "), text)
				callArgs = append(callArgs, names...)
			} else {
				// Unknown arity (no type info, lone call argument): evaluate
				// in the goroutine; the only shape that compiles either way.
				callArgs = append(callArgs, text)
			}
			continue
		}
		an := fmt.Sprintf("__rw%d_a%d", n, i)
		fmt.Fprintf(&b, "%s := %s; ", an, text)
		callArgs = append(callArgs, an)
	}
	b.WriteString(RuntimeIdent + ".Go(func() { ")
	if inlineFun {
		b.WriteString(funText)
	} else {
		b.WriteString(funName)
	}
	b.WriteString("(")
	b.WriteString(strings.Join(callArgs, ", "))
	if call.Ellipsis.IsValid() {
		b.WriteString("...")
	}
	b.WriteString(") }) }")
	fr.edits = append(fr.edits, edit{off, end, b.String()})
}

// take returns node's source text with any edits already recorded inside
// its range applied (and consumed), so outer rewrites compose with inner
// ones.
func (fr *fileRewriter) take(nd ast.Node) string {
	off, end := fr.offset(nd.Pos()), fr.offset(nd.End())
	var inner, kept []edit
	for _, e := range fr.edits {
		if e.off >= off && e.end <= end {
			inner = append(inner, edit{e.off - off, e.end - off, e.text})
		} else {
			kept = append(kept, e)
		}
	}
	if len(inner) == 0 {
		return string(fr.src[off:end])
	}
	fr.edits = kept
	return string(applyEdits(fr.src[off:end], inner))
}

// builtinNames is the syntactic fallback for recognizing builtin callees
// (which cannot be hoisted as values). With type information the real
// resolution is used instead, so shadowing is only a concern untyped.
var builtinNames = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true, "complex": true,
	"copy": true, "delete": true, "imag": true, "len": true, "make": true,
	"max": true, "min": true, "new": true, "panic": true, "print": true,
	"println": true, "real": true, "recover": true,
}

// funInlinable reports whether the callee expression should be copied
// into the closure rather than hoisted into a temp.
func (fr *fileRewriter) funInlinable(fun ast.Expr) bool {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if fr.info != nil {
			switch fr.info.Uses[f].(type) {
			case *types.Builtin:
				return true
			case *types.Func:
				// A bare identifier resolving to *types.Func is a
				// package-level function (methods need a selector):
				// immutable, and possibly generic — inline.
				return true
			}
			return false // func-typed variable: hoist for spawn-time value
		}
		return builtinNames[f.Name]
	case *ast.SelectorExpr:
		if fr.info != nil {
			if _, isSel := fr.info.Selections[f]; isSel {
				return false // method value or func field: receiver evaluates at spawn
			}
			if _, ok := fr.info.Uses[f.Sel].(*types.Func); ok {
				return true // qualified package function pkg.F
			}
		}
		return false
	}
	return false
}

// constArg reports whether an argument is a constant (inlined verbatim:
// re-typing it through := could change the program).
func (fr *fileRewriter) constArg(a ast.Expr) bool {
	if fr.info != nil {
		tv, ok := fr.info.Types[a]
		return ok && (tv.Value != nil || tv.IsNil())
	}
	return syntacticallyConst(a)
}

func syntacticallyConst(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return v.Name == "nil" || v.Name == "true" || v.Name == "false"
	case *ast.ParenExpr:
		return syntacticallyConst(v.X)
	case *ast.UnaryExpr:
		switch v.Op {
		case token.ADD, token.SUB, token.XOR, token.NOT:
			return syntacticallyConst(v.X)
		}
		return false
	case *ast.BinaryExpr:
		return syntacticallyConst(v.X) && syntacticallyConst(v.Y)
	}
	return false
}

// tupleLen reports how many values an argument expression produces: 1
// for ordinary expressions, >1 for a multi-valued call, and -1 when a
// lone call argument's arity is unknown (no type info).
func (fr *fileRewriter) tupleLen(a ast.Expr) int {
	if fr.info != nil {
		if tv, ok := fr.info.Types[a]; ok {
			if t, ok := tv.Type.(*types.Tuple); ok {
				return t.Len()
			}
		}
		return 1
	}
	if _, ok := ast.Unparen(a).(*ast.CallExpr); ok {
		return -1
	}
	return 1
}

// recvTypeName extracts the receiver's base type name: stars, parens,
// and generic type parameter lists stripped.
func recvTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	return baseTypeName(recv.List[0].Type)
}

func baseTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return baseTypeName(t.X)
	case *ast.ParenExpr:
		return baseTypeName(t.X)
	case *ast.IndexExpr:
		return baseTypeName(t.X)
	case *ast.IndexListExpr:
		return baseTypeName(t.X)
	}
	return ""
}

// arity counts declared parameters (each name in a grouped list counts;
// a variadic parameter counts once).
func arity(ft *ast.FuncType) int {
	if ft == nil || ft.Params == nil {
		return 0
	}
	n := 0
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}
