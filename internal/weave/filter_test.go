package weave

import "testing"

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"example.com/m", "example.com/m", true},
		{"example.com/m", "example.com/m/sub", false},
		{"example.com/m/...", "example.com/m/sub", true},
		{"example.com/m/...", "example.com/m/sub/deep", true},
		{"example.com/m/...", "example.com/m", true}, // trailing /... matches the root too
		{"example.com/m/...", "example.com/other", false},
		{"...", "anything/at/all", true},
		{"internal/...", "internal", true},
		{"internal/...", "internal/weave", true},
		{"internal/...", "cmd/internal", false},
		{"a/.../c", "a/b/c", true},
		{"a/.../c", "a/b/b2/c", true},
		{"a/.../c", "a/c", false}, // interior ... still needs its slashes
		{"a...", "abc", true},
		{"a...", "b", false},
	}
	for _, c := range cases {
		if got := MatchPattern(c.pattern, c.path); got != c.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

func TestFilterSelects(t *testing.T) {
	cases := []struct {
		name       string
		f          Filter
		importPath string
		relPath    string
		want       bool
	}{
		{"empty filter selects all", Filter{}, "m/p", "p", true},
		{"match by import path", Filter{Match: []string{"m/p/..."}}, "m/p/q", "p/q", true},
		{"match by relative path", Filter{Match: []string{"p/..."}}, "m/p/q", "p/q", true},
		{"relative match with ./ prefix", Filter{Match: []string{"./p/..."}}, "m/p/q", "p/q", true},
		{"match misses", Filter{Match: []string{"other/..."}}, "m/p", "p", false},
		{"exclude wins over match", Filter{Match: []string{"..."}, Exclude: []string{"m/p"}}, "m/p", "p", false},
		{"exclude by relative path", Filter{Exclude: []string{"gen/..."}}, "m/gen/x", "gen/x", false},
		{"exclude leaves siblings", Filter{Exclude: []string{"gen/..."}}, "m/core", "core", true},
		{"no rel path falls back to import path", Filter{Match: []string{"dep.example/..."}}, "dep.example/lib", "", true},
		{"several match patterns OR", Filter{Match: []string{"a/...", "b/..."}}, "m/b/x", "b/x", true},
	}
	for _, c := range cases {
		if got := c.f.Selects(c.importPath, c.relPath); got != c.want {
			t.Errorf("%s: Selects(%q, %q) = %v, want %v", c.name, c.importPath, c.relPath, got, c.want)
		}
	}
}

func TestRuntimeClosureAlwaysExcluded(t *testing.T) {
	// The structural re-entrancy guard: no filter combination may weave
	// the capture runtime's own closure.
	for _, p := range []string{
		"repro",
		"repro/capture",
		"repro/capture/woven",
		"repro/internal/capture",
		"repro/internal/trace",
		"repro/cmd/rprism",
	} {
		if !runtimeExcluded(p) {
			t.Errorf("runtimeExcluded(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"repro/examples/weave", // the e2e subject must stay weavable
		"example.com/capture",  // foreign paths that merely resemble ours
		"reprox/internal/x",
	} {
		if runtimeExcluded(p) {
			t.Errorf("runtimeExcluded(%q) = true, want false", p)
		}
	}
}

func TestSelectPackagesScope(t *testing.T) {
	mod := &listModule{Path: "example.com/m"}
	dep := &listModule{Path: "dep.example/lib"}
	repro := &listModule{Path: "repro"}
	pkgs := []*listPkg{
		{ImportPath: "fmt", Standard: true, GoFiles: []string{"print.go"}},
		{ImportPath: "example.com/m", Module: mod, GoFiles: []string{"main.go"}},
		{ImportPath: "example.com/m/sub", Module: mod, GoFiles: []string{"s.go"}},
		{ImportPath: "example.com/m/vendor-ish", Module: dep, GoFiles: []string{"v.go"}},
		{ImportPath: "dep.example/lib", Module: dep, GoFiles: []string{"l.go"}},
		{ImportPath: "repro/capture", Module: repro, GoFiles: []string{"c.go"}},
		{ImportPath: "example.com/m/empty", Module: mod}, // no Go files (all assembly, say)
	}

	paths := func(sel []*listPkg) []string {
		var out []string
		for _, p := range sel {
			out = append(out, p.ImportPath)
		}
		return out
	}

	// Default scope: main module only; stdlib, other modules (including
	// vendored ones, which keep their own module identity), and the
	// runtime closure are out regardless of filters.
	got := paths(selectPackages(pkgs, "example.com/m", false, Filter{}))
	want := []string{"example.com/m", "example.com/m/sub"}
	if len(got) != len(want) {
		t.Fatalf("default scope = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("default scope = %v, want %v", got, want)
		}
	}

	// IncludeDeps widens to module deps but never stdlib or the runtime.
	got = paths(selectPackages(pkgs, "example.com/m", true, Filter{}))
	for _, p := range got {
		if p == "fmt" || p == "repro/capture" {
			t.Fatalf("IncludeDeps selected %s", p)
		}
	}
	found := false
	for _, p := range got {
		if p == "dep.example/lib" {
			found = true
		}
	}
	if !found {
		t.Fatalf("IncludeDeps did not select the dep: %v", got)
	}

	// Filters compose with scope.
	got = paths(selectPackages(pkgs, "example.com/m", false, Filter{Exclude: []string{"sub"}}))
	for _, p := range got {
		if p == "example.com/m/sub" {
			t.Fatalf("exclude ignored: %v", got)
		}
	}
}
