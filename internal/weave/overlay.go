package weave

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// overlayJSON is the `go build -overlay` file format.
type overlayJSON struct {
	Replace map[string]string
}

// weaveOverlay is the default build integration: rewritten files land in
// the work directory and an overlay file maps the originals onto them,
// so the target tree is never touched. When the target module does not
// already depend on repro, its go.mod is overlaid too, gaining a
// `require repro v0.0.0` plus a local `replace` pointing at the runtime
// checkout — the piece a pure -toolexec integration cannot do, because
// the import graph is fixed before toolexec ever runs.
func weaveOverlay(ctx context.Context, cfg *Config, g *goRunner, res *Result, pkgs, selected []*listPkg, mainPkg *listPkg) error {
	replace := map[string]string{}
	if err := rewriteSelected(cfg, res, pkgs, selected, mainPkg, res.WorkDir, replace); err != nil {
		return err
	}

	if mainPkg.Module.Path != "repro" && !moduleResolvesRepro(ctx, g) {
		runtimeDir, err := resolveRuntimeDir(ctx, cfg, g, mainPkg.Module)
		if err != nil {
			return err
		}
		modFile := filepath.Join(mainPkg.Module.Dir, "go.mod")
		orig, err := os.ReadFile(modFile)
		if err != nil {
			return fmt.Errorf("weave: reading target go.mod: %w", err)
		}
		grafted := graftRuntimeRequire(orig, runtimeDir)
		dst := filepath.Join(res.WorkDir, "go.mod")
		if err := os.WriteFile(dst, grafted, 0o644); err != nil {
			return err
		}
		replace[modFile] = dst
	}

	overlayPath := filepath.Join(res.WorkDir, "overlay.json")
	data, err := json.MarshalIndent(overlayJSON{Replace: replace}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(overlayPath, data, 0o644); err != nil {
		return err
	}

	args := []string{"build", "-overlay", overlayPath, "-o", res.Binary}
	args = append(args, cfg.BuildFlags...)
	args = append(args, cfg.Patterns...)
	fmt.Fprintf(cfg.Stderr, "rprism weave: building %s (%d packages woven, overlay mode)\n", mainPkg.ImportPath, len(selected))
	if _, err := g.run(ctx, args...); err != nil {
		return fmt.Errorf("weave: building woven binary: %w\n(rewritten sources kept in %s)", err, res.WorkDir)
	}
	return nil
}

// moduleResolvesRepro reports whether the target module already resolves
// a module named repro (already requires it, or IS it) — in that case
// its go.mod is left alone.
func moduleResolvesRepro(ctx context.Context, g *goRunner) bool {
	out, err := g.run(ctx, "list", "-m", "-f", "{{.Dir}}", "repro")
	return err == nil && strings.TrimSpace(string(out)) != ""
}

// graftRuntimeRequire appends the runtime requirement to a go.mod. The
// version is a placeholder — the replace directive pins resolution to
// the local checkout, so no fetch ever happens.
func graftRuntimeRequire(gomod []byte, runtimeDir string) []byte {
	var b strings.Builder
	b.Write(gomod)
	if len(gomod) > 0 && gomod[len(gomod)-1] != '\n' {
		b.WriteByte('\n')
	}
	b.WriteString("\nrequire repro v0.0.0\n\nreplace repro => ")
	b.WriteString(runtimeDir)
	b.WriteByte('\n')
	return []byte(b.String())
}
