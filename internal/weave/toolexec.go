package weave

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// EnvToolexecConfig points the rprism-weave toolexec binary at its
// configuration file; without it the binary is a transparent passthrough.
const EnvToolexecConfig = "RPRISM_WEAVE_CONFIG"

// ToolexecConfig is the contract between the orchestrating `rprism
// record --weave -weave-mode=toolexec` process and the rprism-weave
// binary go build re-executes for every compile and link.
type ToolexecConfig struct {
	// Salt is appended to the compile and link tools' `-V=full` output so
	// the build cache never confuses woven objects with stock ones (and
	// distinct weave configurations with each other).
	Salt string
	// ModulePath is the target module.
	ModulePath string
	// MainPackage is the real import path of the main package; the
	// compiler is handed `-p main` for it, so hook ids need the mapping.
	MainPackage string
	// Weave lists the import paths to instrument (the orchestrator's
	// package selection, already filtered).
	Weave []string
	// MainCloseOnly marks a main package the filters excluded: it still
	// receives the Close defer (capture finalization is not optional),
	// but no Enter hooks or go-statement wrapping.
	MainCloseOnly bool
	// RuntimeImport is the glue package woven files import.
	RuntimeImport string
	// PackageFiles maps the runtime closure's import paths to prebuilt
	// archives, spliced into compile and link importcfgs.
	PackageFiles map[string]string
	// NoTypes forces syntactic go-statement hoisting.
	NoTypes bool

	weave map[string]bool
}

func loadToolexecConfig() (*ToolexecConfig, error) {
	path := os.Getenv(EnvToolexecConfig)
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", EnvToolexecConfig, err)
	}
	var c ToolexecConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	c.weave = make(map[string]bool, len(c.Weave))
	for _, p := range c.Weave {
		c.weave[p] = true
	}
	return &c, nil
}

// RunToolexec is cmd/rprism-weave's entire behavior: invoked by go build
// as `rprism-weave <tool> <args...>`, it rewrites the argument lists of
// compile (woven sources, augmented importcfg) and link (augmented
// importcfg) invocations, runs the real tool, and propagates its exit
// code. Configured through EnvToolexecConfig; without it, a passthrough.
func RunToolexec(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rprism-weave <tool> [args...] (a go build -toolexec program; see rprism record --weave)")
		return 2
	}
	cfg, err := loadToolexecConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rprism-weave:", err)
		return 1
	}
	tool, rest := args[0], args[1:]
	base := strings.TrimSuffix(filepath.Base(tool), ".exe")

	if len(rest) == 1 && strings.HasPrefix(rest[0], "-V") {
		return toolVersion(tool, rest, base, cfg)
	}

	var cleanup func()
	if cfg != nil {
		switch base {
		case "compile":
			rest, cleanup, err = cfg.rewriteCompile(rest)
		case "link":
			rest, cleanup, err = cfg.rewriteLink(rest)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rprism-weave:", err)
			return 1
		}
	}
	if cleanup != nil {
		defer cleanup()
	}
	cmd := exec.Command(tool, rest...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "rprism-weave:", err)
		return 1
	}
	return 0
}

// toolVersion answers go build's tool-identity probe. The salt rides on
// the tools whose output the weaver changes, keying the build cache on
// the weave configuration.
func toolVersion(tool string, args []string, base string, cfg *ToolexecConfig) int {
	out, err := exec.Command(tool, args...).Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rprism-weave:", err)
		return 1
	}
	v := strings.TrimSpace(string(out))
	if cfg != nil && (base == "compile" || base == "link") {
		v += " rprism-weave-" + cfg.Salt
	}
	fmt.Println(v)
	return 0
}

// rewriteCompile intercepts one compiler invocation: when the package is
// in the weave set, its source files are rewritten into a scratch
// directory, the importcfg gains the runtime archives, and the argument
// list is rebuilt accordingly.
func (c *ToolexecConfig) rewriteCompile(args []string) ([]string, func(), error) {
	pkgPath := ""
	importcfgIdx := -1
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-p":
			if i+1 < len(args) {
				pkgPath = args[i+1]
				i++
			}
		case "-importcfg":
			if i+1 < len(args) {
				importcfgIdx = i + 1
				i++
			}
		}
	}
	actual := pkgPath
	mainPkg := pkgPath == "main"
	if mainPkg && c.MainPackage != "" {
		actual = c.MainPackage
	}
	if importcfgIdx < 0 {
		return args, nil, nil
	}
	closeOnly := false
	if !c.weave[actual] {
		if !c.MainCloseOnly || actual != c.MainPackage {
			return args, nil, nil
		}
		closeOnly = true
	}

	// Source files are the trailing .go arguments.
	first := len(args)
	for first > 0 && strings.HasSuffix(args[first-1], ".go") {
		first--
	}
	if first == len(args) {
		return args, nil, nil
	}

	pkgFiles, importMap, err := readImportcfg(args[importcfgIdx])
	if err != nil {
		return nil, nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := pkgFiles[path]
		if !ok {
			f, ok = c.PackageFiles[path]
		}
		if !ok {
			return nil, fmt.Errorf("weave: no export data for %q", path)
		}
		return os.Open(f)
	}
	if c.NoTypes {
		lookup = nil
	}

	in := PackageInput{
		ImportPath:    actual,
		MainPkg:       mainPkg,
		CloseOnly:     closeOnly,
		RuntimeImport: c.RuntimeImport,
		Lookup:        lookup,
		ImportMap:     importMap,
		LinePragmas:   true,
	}
	for _, f := range args[first:] {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, nil, err
		}
		in.Files = append(in.Files, FileInput{Name: f, Src: src})
	}
	out, err := RewritePackage(in)
	if err != nil {
		return nil, nil, err
	}
	for _, w := range out.Warnings {
		fmt.Fprintln(os.Stderr, "rprism-weave:", w)
	}

	scratch, err := os.MkdirTemp("", "rprism-weave-pkg-*")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(scratch) }
	rewritten := append([]string(nil), args...)
	for i, fo := range out.Files {
		if !fo.Changed {
			continue
		}
		dst := filepath.Join(scratch, fmt.Sprintf("%03d_%s", i, filepath.Base(fo.Name)))
		if err := os.WriteFile(dst, fo.Src, 0o644); err != nil {
			cleanup()
			return nil, nil, err
		}
		rewritten[first+i] = dst
	}

	newCfg, err := augmentImportcfg(args[importcfgIdx], pkgFiles, c.PackageFiles, scratch)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	rewritten[importcfgIdx] = newCfg
	return rewritten, cleanup, nil
}

// rewriteLink splices the runtime archives into the linker's importcfg,
// so object files referencing the woven runtime resolve even though the
// stock build never linked it.
func (c *ToolexecConfig) rewriteLink(args []string) ([]string, func(), error) {
	importcfgIdx := -1
	for i := 0; i < len(args)-1; i++ {
		if args[i] == "-importcfg" {
			importcfgIdx = i + 1
		}
	}
	if importcfgIdx < 0 {
		return args, nil, nil
	}
	pkgFiles, _, err := readImportcfg(args[importcfgIdx])
	if err != nil {
		return nil, nil, err
	}
	scratch, err := os.MkdirTemp("", "rprism-weave-link-*")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(scratch) }
	newCfg, err := augmentImportcfg(args[importcfgIdx], pkgFiles, c.PackageFiles, scratch)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	rewritten := append([]string(nil), args...)
	rewritten[importcfgIdx] = newCfg
	return rewritten, cleanup, nil
}

// readImportcfg parses the packagefile and importmap directives of a
// compiler/linker importcfg.
func readImportcfg(path string) (pkgFiles, importMap map[string]string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	pkgFiles = map[string]string{}
	importMap = map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		verb, rest, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		k, v, ok := strings.Cut(rest, "=")
		if !ok {
			continue
		}
		switch verb {
		case "packagefile":
			pkgFiles[k] = v
		case "importmap":
			importMap[k] = v
		}
	}
	return pkgFiles, importMap, nil
}

// augmentImportcfg writes a copy of the importcfg extended with
// packagefile entries for every runtime archive not already present.
func augmentImportcfg(orig string, present, runtime map[string]string, scratch string) (string, error) {
	data, err := os.ReadFile(orig)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Write(data)
	if len(data) > 0 && data[len(data)-1] != '\n' {
		b.WriteByte('\n')
	}
	paths := make([]string, 0, len(runtime))
	for p := range runtime {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, ok := present[p]; ok {
			continue
		}
		fmt.Fprintf(&b, "packagefile %s=%s\n", p, runtime[p])
	}
	out := filepath.Join(scratch, "importcfg")
	return out, os.WriteFile(out, []byte(b.String()), 0o644)
}

// weaveToolexec is the toolexec-mode orchestrator: prebuild the runtime
// closure as archives (the importcfg splice material), build the
// rprism-weave tool, write its configuration, and run the target's build
// under -toolexec. Unlike overlay mode, the target's go.mod is never
// touched — the injected import is satisfied entirely below go build's
// module layer, which also means this mode cannot weave a module whose
// build the go command itself would refuse.
func weaveToolexec(ctx context.Context, cfg *Config, g *goRunner, res *Result, pkgs, selected []*listPkg, mainPkg *listPkg) error {
	runtimeDir, err := resolveRuntimeDir(ctx, cfg, g, mainPkg.Module)
	if err != nil {
		return err
	}
	rg := &goRunner{bin: cfg.GoBin, dir: runtimeDir, env: cfg.Env}

	closure, err := listPackages(ctx, rg, false, []string{cfg.RuntimeImport})
	if err != nil {
		return fmt.Errorf("weave: listing runtime closure in %s: %w", runtimeDir, err)
	}
	arDir := filepath.Join(res.WorkDir, "archives")
	if err := os.MkdirAll(arDir, 0o755); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Stderr, "rprism weave: prebuilding %d runtime packages (toolexec mode)\n", len(closure))
	pkgFiles := make(map[string]string, len(closure))
	for i, p := range closure {
		if p.ImportPath == "unsafe" {
			continue // no archive: resolved inside the compiler
		}
		ar := filepath.Join(arDir, fmt.Sprintf("%03d.a", i))
		args := []string{"build", "-buildmode=archive", "-o", ar}
		args = append(args, cfg.BuildFlags...)
		args = append(args, p.ImportPath)
		if _, err := rg.run(ctx, args...); err != nil {
			return fmt.Errorf("weave: prebuilding %s: %w", p.ImportPath, err)
		}
		pkgFiles[p.ImportPath] = ar
	}

	tool := filepath.Join(res.WorkDir, "rprism-weave")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	if _, err := rg.run(ctx, "build", "-o", tool, "repro/cmd/rprism-weave"); err != nil {
		return fmt.Errorf("weave: building toolexec binary: %w", err)
	}

	var weaveList []string
	for _, p := range selected {
		if len(p.CgoFiles) > 0 {
			res.Warnings = append(res.Warnings, fmt.Sprintf("%s: cgo package left unwoven (toolexec mode)", p.ImportPath))
			continue
		}
		weaveList = append(weaveList, p.ImportPath)
		res.Packages = append(res.Packages, WovenPackage{ImportPath: p.ImportPath})
	}
	sort.Strings(weaveList)

	tc := ToolexecConfig{
		ModulePath:    mainPkg.Module.Path,
		MainPackage:   mainPkg.ImportPath,
		Weave:         weaveList,
		MainCloseOnly: mainExcluded(selected, mainPkg),
		RuntimeImport: cfg.RuntimeImport,
		PackageFiles:  pkgFiles,
		NoTypes:       cfg.NoTypes,
	}
	if tc.MainCloseOnly {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("%s: excluded by filters; woven for capture finalization only", mainPkg.ImportPath))
	}
	tc.Salt, err = toolexecSalt(&tc, pkgFiles[cfg.RuntimeImport])
	if err != nil {
		return err
	}
	tcData, err := json.MarshalIndent(&tc, "", "  ")
	if err != nil {
		return err
	}
	tcPath := filepath.Join(res.WorkDir, "weave.json")
	if err := os.WriteFile(tcPath, tcData, 0o644); err != nil {
		return err
	}

	env := append(append([]string(nil), cfg.Env...), EnvToolexecConfig+"="+tcPath)
	bg := &goRunner{bin: cfg.GoBin, dir: cfg.Dir, env: env}
	args := []string{"build", "-toolexec=" + tool, "-o", res.Binary}
	args = append(args, cfg.BuildFlags...)
	args = append(args, cfg.Patterns...)
	fmt.Fprintf(cfg.Stderr, "rprism weave: building %s (%d packages woven, toolexec mode)\n", mainPkg.ImportPath, len(weaveList))
	if _, err := bg.run(ctx, args...); err != nil {
		return fmt.Errorf("weave: building woven binary: %w\n(weave config kept in %s)", err, res.WorkDir)
	}
	return nil
}

// toolexecSalt derives the cache-busting salt from the weave
// configuration's semantic content plus the glue archive's bytes (which
// stand in for the runtime's source version). Archive *paths* are
// excluded on purpose: they point into a fresh temp dir per invocation,
// and hashing them would defeat the build cache entirely.
func toolexecSalt(tc *ToolexecConfig, glueArchive string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%v\n%v\n%s\n%v\n", tc.ModulePath, tc.MainPackage, tc.Weave, tc.MainCloseOnly, tc.RuntimeImport, tc.NoTypes)
	if glueArchive != "" {
		f, err := os.Open(glueArchive)
		if err != nil {
			return "", err
		}
		defer f.Close()
		if _, err := io.Copy(h, f); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:12], nil
}
