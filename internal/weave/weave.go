package weave

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Mode selects the build-integration mechanism.
type Mode int

const (
	// ModeOverlay rewrites sources into a work directory and builds with
	// `go build -overlay` (default: simplest, debuggable, and able to
	// graft the runtime dependency onto a foreign go.mod).
	ModeOverlay Mode = iota
	// ModeToolexec builds with `go build -toolexec=rprism-weave`,
	// rewriting each package inside the compiler invocation itself.
	ModeToolexec
)

func (m Mode) String() string {
	switch m {
	case ModeOverlay:
		return "overlay"
	case ModeToolexec:
		return "toolexec"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -weave-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "overlay":
		return ModeOverlay, nil
	case "toolexec":
		return ModeToolexec, nil
	}
	return 0, fmt.Errorf("weave: unknown mode %q (want overlay or toolexec)", s)
}

// Config configures one weaving build.
type Config struct {
	// Patterns are the package patterns to build (e.g. "./cmd/server");
	// exactly one main package must match.
	Patterns []string
	// Dir is the directory to resolve Patterns in (the target module's
	// checkout); empty means the current directory.
	Dir string
	// Match/Exclude narrow which packages are woven (see Filter).
	Match   []string
	Exclude []string
	// IncludeDeps weaves the target's module dependencies too; by default
	// only packages of the main module are woven. The standard library
	// and the rprism runtime closure are never woven.
	IncludeDeps bool
	// RuntimeDir is the repro module checkout providing the capture
	// runtime; see resolveRuntimeDir for the fallback chain.
	RuntimeDir string
	// RuntimeImport overrides the injected glue import path (tests only).
	RuntimeImport string
	// Mode picks overlay (default) or toolexec integration.
	Mode Mode
	// BuildFlags are extra `go build` flags (-race, -tags, ...).
	BuildFlags []string
	// Output is the path for the woven binary; empty means
	// <workdir>/bin/<basename of main package>.
	Output string
	// WorkDir hosts rewritten sources and build scratch; empty means a
	// fresh temp directory.
	WorkDir string
	// KeepWork leaves the work directory behind for inspection (it is
	// also always kept when the build fails).
	KeepWork bool
	// NoTypes disables export-data type checking, forcing the syntactic
	// go-statement hoisting (tests and debugging).
	NoTypes bool
	// GoBin is the go tool to invoke (default "go").
	GoBin string
	// Env is the build environment (default os.Environ()).
	Env []string
	// Stderr receives progress and warnings (default io.Discard).
	Stderr io.Writer
}

// WovenPackage reports per-package weaving statistics.
type WovenPackage struct {
	ImportPath string
	Files      int // files actually changed
	Funcs      int
	GoStmts    int
	Typed      bool
}

// Result describes a completed weave.
type Result struct {
	// Binary is the woven executable.
	Binary string
	// WorkDir holds the rewritten sources, overlay, and scratch files.
	WorkDir string
	// MainPackage is the import path of the woven main package.
	MainPackage string
	// ModulePath is the target module's path.
	ModulePath string
	// Packages lists every package that was woven.
	Packages []WovenPackage
	// Warnings accumulates non-fatal degradations (untyped hoisting,
	// skipped cgo files).
	Warnings []string

	keep bool
}

// Cleanup removes the work directory unless the configuration asked to
// keep it.
func (r *Result) Cleanup() {
	if r == nil || r.keep || r.WorkDir == "" {
		return
	}
	os.RemoveAll(r.WorkDir)
}

// runtimeClosurePrefixes are import-path prefixes that are never woven
// regardless of filters: the capture runtime's own module closure. A
// hook firing from inside the recorder would re-enter it, so exclusion
// here is structural, not advisory. (repro/examples is deliberately NOT
// excluded — the e2e tests weave it.)
var runtimeClosurePrefixes = []string{
	"repro/capture",
	"repro/internal",
	"repro/cmd",
}

func runtimeExcluded(importPath string) bool {
	if importPath == "repro" {
		return true
	}
	for _, p := range runtimeClosurePrefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// selectPackages applies the weaving scope (module membership, runtime
// exclusion, filters) to the dependency-closed package list.
func selectPackages(pkgs []*listPkg, modPath string, includeDeps bool, f Filter) []*listPkg {
	var out []*listPkg
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		if runtimeExcluded(p.ImportPath) {
			continue
		}
		if !includeDeps && p.Module.Path != modPath {
			continue
		}
		if !f.Selects(p.ImportPath, p.relPath(modPath)) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Weave builds cfg.Patterns with every in-scope function instrumented,
// returning the path of the woven binary. The caller owns the returned
// Result's work directory (call Cleanup).
func Weave(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("weave: no package patterns")
	}
	if cfg.GoBin == "" {
		cfg.GoBin = "go"
	}
	if cfg.Env == nil {
		cfg.Env = os.Environ()
	}
	if cfg.Stderr == nil {
		cfg.Stderr = io.Discard
	}
	if cfg.RuntimeImport == "" {
		cfg.RuntimeImport = RuntimeImport
	}
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	dir, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	cfg.Dir = dir
	g := &goRunner{bin: cfg.GoBin, dir: cfg.Dir, env: cfg.Env}

	pkgs, err := listPackages(ctx, g, !cfg.NoTypes, cfg.Patterns)
	if err != nil {
		return nil, err
	}
	var mainPkg *listPkg
	for _, p := range pkgs {
		if p.Error != nil && !p.Standard {
			return nil, fmt.Errorf("weave: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Name == "main" && !p.Standard {
			if mainPkg != nil {
				return nil, fmt.Errorf("weave: patterns match more than one main package (%s, %s); weave one binary at a time", mainPkg.ImportPath, p.ImportPath)
			}
			mainPkg = p
		}
	}
	if mainPkg == nil {
		return nil, fmt.Errorf("weave: patterns match no main package")
	}
	if mainPkg.Module == nil {
		return nil, fmt.Errorf("weave: %s is not in a module; the weaver requires module mode", mainPkg.ImportPath)
	}
	mod := mainPkg.Module

	workDir := cfg.WorkDir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "rprism-weave-*")
		if err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}
	res := &Result{
		WorkDir:     workDir,
		MainPackage: mainPkg.ImportPath,
		ModulePath:  mod.Path,
		keep:        cfg.KeepWork,
	}
	ok := false
	defer func() {
		if !ok {
			// Failed builds keep the work directory: the rewritten sources
			// are the evidence.
			res.keep = true
		}
	}()

	selected := selectPackages(pkgs, mod.Path, cfg.IncludeDeps, Filter{Match: cfg.Match, Exclude: cfg.Exclude})
	if len(selected) == 0 {
		return res, fmt.Errorf("weave: filters select no packages in module %s", mod.Path)
	}

	binary := cfg.Output
	if binary == "" {
		base := filepath.Base(mainPkg.ImportPath)
		if runtime.GOOS == "windows" {
			base += ".exe"
		}
		binary = filepath.Join(workDir, "bin", base)
	}
	if binary, err = filepath.Abs(binary); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(binary), 0o755); err != nil {
		return nil, err
	}
	res.Binary = binary

	switch cfg.Mode {
	case ModeOverlay:
		err = weaveOverlay(ctx, &cfg, g, res, pkgs, selected, mainPkg)
	case ModeToolexec:
		err = weaveToolexec(ctx, &cfg, g, res, pkgs, selected, mainPkg)
	default:
		err = fmt.Errorf("weave: unknown mode %v", cfg.Mode)
	}
	if err != nil {
		return res, err
	}
	ok = true
	return res, nil
}

// rewriteSelected runs the rewriting pass over the selected packages,
// writing changed files under workDir/src and recording them in the
// replace map (original path → rewritten path). Shared by both modes'
// test paths; the overlay build consumes the replace map directly.
func rewriteSelected(cfg *Config, res *Result, pkgs, selected []*listPkg, mainPkg *listPkg, workDir string, replace map[string]string) error {
	lookup := exportLookup(pkgs)
	if cfg.NoTypes {
		lookup = nil
	}
	srcDir := filepath.Join(workDir, "src")
	if err := os.MkdirAll(srcDir, 0o755); err != nil {
		return err
	}
	seq := 0
	for _, p := range selected {
		if len(p.CgoFiles) > 0 {
			res.Warnings = append(res.Warnings, fmt.Sprintf("%s: cgo files left unwoven", p.ImportPath))
		}
		in := PackageInput{
			ImportPath:    p.ImportPath,
			MainPkg:       p == mainPkg,
			RuntimeImport: cfg.RuntimeImport,
			Lookup:        lookup,
			ImportMap:     p.ImportMap,
			LinePragmas:   true,
		}
		for _, f := range p.absGoFiles() {
			src, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			in.Files = append(in.Files, FileInput{Name: f, Src: src})
		}
		out, err := RewritePackage(in)
		if err != nil {
			return err
		}
		res.Warnings = append(res.Warnings, out.Warnings...)
		wp := WovenPackage{
			ImportPath: p.ImportPath,
			Funcs:      out.Stats.Funcs,
			GoStmts:    out.Stats.GoStmts,
			Typed:      out.Stats.Typed,
		}
		for _, fo := range out.Files {
			if !fo.Changed {
				continue
			}
			wp.Files++
			dst := filepath.Join(srcDir, fmt.Sprintf("%03d_%s", seq, filepath.Base(fo.Name)))
			seq++
			if err := os.WriteFile(dst, fo.Src, 0o644); err != nil {
				return err
			}
			replace[fo.Name] = dst
		}
		res.Packages = append(res.Packages, wp)
	}

	// Filters may exclude the main package from tracing, but never from
	// lifecycle management: without main's Close defer the capture's
	// buffered tail would be lost and every recording would come back
	// empty. Weave just that one defer in.
	if mainExcluded(selected, mainPkg) {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("%s: excluded by filters; woven for capture finalization only", mainPkg.ImportPath))
		in := PackageInput{
			ImportPath:    mainPkg.ImportPath,
			MainPkg:       true,
			CloseOnly:     true,
			RuntimeImport: cfg.RuntimeImport,
			LinePragmas:   true,
		}
		for _, f := range mainPkg.absGoFiles() {
			src, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			in.Files = append(in.Files, FileInput{Name: f, Src: src})
		}
		out, err := RewritePackage(in)
		if err != nil {
			return err
		}
		for _, fo := range out.Files {
			if !fo.Changed {
				continue
			}
			dst := filepath.Join(srcDir, fmt.Sprintf("%03d_%s", seq, filepath.Base(fo.Name)))
			seq++
			if err := os.WriteFile(dst, fo.Src, 0o644); err != nil {
				return err
			}
			replace[fo.Name] = dst
		}
	}
	return nil
}

// mainExcluded reports whether filters dropped the main package from
// the weave set.
func mainExcluded(selected []*listPkg, mainPkg *listPkg) bool {
	for _, p := range selected {
		if p == mainPkg {
			return false
		}
	}
	return true
}
