package weave

import (
	"regexp"
	"strings"
	"sync"
)

// Filter is the --match/--exclude package selection of `rprism record
// --weave`. Patterns use the cmd/go wildcard grammar: "..." matches any
// string (including the empty one), and a trailing "/..." also matches
// the path before it, so "repro/internal/..." selects repro/internal
// itself. Each pattern is tried against both the full import path and
// the module-relative path, so `--match internal/...` works without
// spelling the module prefix.
//
// Selection order: an empty Match list matches everything in scope;
// Exclude always wins over Match. Standard-library and vendored-module
// exclusion is not the filter's job — the weaver has already narrowed
// the candidate set to the target module (plus its module deps when
// requested) before the filter runs.
type Filter struct {
	Match   []string
	Exclude []string
}

// Selects reports whether the package survives the filter. importPath is
// the full import path; relPath is the module-relative form ("." for the
// module root, "" when unknown).
func (f Filter) Selects(importPath, relPath string) bool {
	if len(f.Match) > 0 && !matchAny(f.Match, importPath, relPath) {
		return false
	}
	return !matchAny(f.Exclude, importPath, relPath)
}

func matchAny(patterns []string, importPath, relPath string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		if MatchPattern(p, importPath) || (relPath != "" && MatchPattern(p, relPath)) {
			return true
		}
	}
	return false
}

var (
	patternMu sync.Mutex
	patternRe = map[string]*regexp.Regexp{}
)

// MatchPattern reports whether a cmd/go-style package pattern matches
// path: "..." is a wildcard for any string, and a pattern ending in
// "/..." additionally matches the prefix with the suffix removed.
func MatchPattern(pattern, path string) bool {
	if pattern == path {
		return true
	}
	if strings.HasSuffix(pattern, "/...") && path == strings.TrimSuffix(pattern, "/...") {
		return true
	}
	if !strings.Contains(pattern, "...") {
		return false
	}
	patternMu.Lock()
	re := patternRe[pattern]
	if re == nil {
		re = regexp.MustCompile("^" + strings.ReplaceAll(regexp.QuoteMeta(pattern), `\.\.\.`, ".*") + "$")
		patternRe[pattern] = re
	}
	patternMu.Unlock()
	return re.MatchString(path)
}
