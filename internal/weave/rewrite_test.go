package weave

import (
	"fmt"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// rewriteOne runs the syntactic (no type info) rewriting pass over a
// single file and returns the output text.
func rewriteOne(t *testing.T, importPath string, mainPkg bool, src string) (string, *PackageResult) {
	t.Helper()
	res, err := RewritePackage(PackageInput{
		ImportPath: importPath,
		MainPkg:    mainPkg,
		Files:      []FileInput{{Name: "in.go", Src: []byte(src)}},
	})
	if err != nil {
		t.Fatalf("RewritePackage: %v", err)
	}
	return string(res.Files[0].Src), res
}

// mustParse asserts the rewritten output is still valid Go.
func mustParse(t *testing.T, src string) {
	t.Helper()
	if _, err := parser.ParseFile(token.NewFileSet(), "out.go", src, parser.ParseComments); err != nil {
		t.Fatalf("rewritten output does not parse: %v\n%s", err, src)
	}
}

func TestHookIDConventions(t *testing.T) {
	src := `package p

type box[T any] struct{ v T }

func plain(a, b int, c string) {}

func (x *box[T]) get() T { return x.v }

func (box[T]) blank(_ int) {}

func variadic(xs ...int) {}

func grouped(a, b int) {}

func init() { plain(1, 2, "") }

func _() {}
`
	out, res := rewriteOne(t, "example.com/m/p", false, src)
	mustParse(t, out)
	for _, want := range []string{
		`.Enter("example.com/m/p.plain/3")`,
		`.Enter("example.com/m/p.box.get/0")`,   // generic method, pointer receiver: stars and [T] stripped
		`.Enter("example.com/m/p.box.blank/1")`, // anonymous receiver still keys on the type
		`.Enter("example.com/m/p.variadic/1")`,
		`.Enter("example.com/m/p.grouped/2")`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing hook %s in:\n%s", want, out)
		}
	}
	// init must not be woven (it can run before the runtime's own init),
	// nor the blank function.
	if strings.Contains(out, `init/0`) || strings.Contains(out, `p._/`) {
		t.Errorf("init or blank function was woven:\n%s", out)
	}
	if res.Stats.Funcs != 5 {
		t.Errorf("Funcs = %d, want 5", res.Stats.Funcs)
	}
}

func TestAnonymousFuncsLeftUnwoven(t *testing.T) {
	src := `package p

func named() {
	f := func() int { return 1 }
	_ = f()
	func() {}()
}
`
	out, res := rewriteOne(t, "m/p", false, src)
	mustParse(t, out)
	if got := strings.Count(out, ".Enter("); got != 1 {
		t.Errorf("Enter hooks = %d, want 1 (literals must stay unwoven):\n%s", got, out)
	}
	if res.Stats.Funcs != 1 {
		t.Errorf("Funcs = %d, want 1", res.Stats.Funcs)
	}
}

func TestMainGetsClose(t *testing.T) {
	src := "package main\n\nfunc main() {}\n"
	out, _ := rewriteOne(t, "m/cmd/x", true, src)
	mustParse(t, out)
	want := `func main() {defer __rprism_weave.Close(); defer __rprism_weave.Enter("m/cmd/x.main/0")(); }`
	if !strings.Contains(out, want) {
		t.Errorf("main bracket wrong:\n%s", out)
	}
	// Close only in the main package's main.
	outLib, _ := rewriteOne(t, "m/p", false, src)
	if strings.Contains(outLib, ".Close()") {
		t.Errorf("non-main package got Close:\n%s", outLib)
	}
}

func TestUnchangedFileStaysVerbatim(t *testing.T) {
	src := "package p\n\nconst K = 1\n\nvar V = K\n"
	out, res := rewriteOne(t, "m/p", false, src)
	if out != src {
		t.Errorf("file without functions was modified:\n%s", out)
	}
	if res.Files[0].Changed {
		t.Error("Changed = true for untouched file")
	}
	if strings.Contains(out, RuntimeIdent) {
		t.Error("runtime import injected into untouched file")
	}
}

func TestGoStatementRewrites(t *testing.T) {
	src := `package p

type obj struct{}

func (obj) m(a int, b string) {}

func f(a int) {}

func g(xs ...int) {}

func spawnAll(o obj, ch chan int) {
	go f(1)
	go o.m(2, "s")
	go func(x int) { _ = x }(3)
	go g(1, 2, 3)
	xs := []int{1}
	go g(xs...)
	go println(len(xs))
	go func() {
		go f(4)
	}()
}
`
	out, res := rewriteOne(t, "m/p", false, src)
	mustParse(t, out)
	if got := strings.Count(out, RuntimeIdent+".Go(func() {"); got != 8 {
		t.Errorf("Go wraps = %d, want 8:\n%s", got, out)
	}
	if strings.Contains(out, "go f(") || strings.Contains(out, "go o.m(") {
		t.Errorf("raw go statement survived:\n%s", out)
	}
	if res.Stats.GoStmts != 8 {
		t.Errorf("GoStmts = %d, want 8", res.Stats.GoStmts)
	}
	// Constants inline; the method value and non-constant args hoist.
	if !strings.Contains(out, "_f := o.m; ") {
		t.Errorf("method value not hoisted:\n%s", out)
	}
	if strings.Contains(out, ":= 1;") || strings.Contains(out, `:= "s";`) {
		t.Errorf("constant argument was hoisted:\n%s", out)
	}
	// Variadic spread preserved.
	if !strings.Contains(out, "...) }) }") {
		t.Errorf("ellipsis lost:\n%s", out)
	}
	// Builtin callee stays inline in the closure.
	if !strings.Contains(out, "println(") || strings.Contains(out, ":= println") {
		t.Errorf("builtin callee mishandled:\n%s", out)
	}
}

func TestNestedGoInsideOperand(t *testing.T) {
	src := `package p

func f() {}

func spawn() {
	go func() {
		go f()
	}()
}
`
	out, _ := rewriteOne(t, "m/p", false, src)
	mustParse(t, out)
	// The inner go statement must be rewritten inside the hoisted outer
	// closure, not left raw.
	if strings.Contains(out, "go f()") {
		t.Errorf("inner go statement left raw:\n%s", out)
	}
	if got := strings.Count(out, RuntimeIdent+".Go("); got != 2 {
		t.Errorf("Go wraps = %d, want 2:\n%s", got, out)
	}
}

func TestLineNumbersPreserved(t *testing.T) {
	src := `package main

func helper(a int,
	b string) {
}

func main() {
	go helper(1, "x")
}
`
	res, err := RewritePackage(PackageInput{
		ImportPath:  "m",
		MainPkg:     true,
		Files:       []FileInput{{Name: "/abs/orig.go", Src: []byte(src)}},
		LinePragmas: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := string(res.Files[0].Src)
	mustParse(t, out)
	if !strings.HasPrefix(out, "//line /abs/orig.go:1\n") {
		t.Errorf("missing //line pragma:\n%s", out)
	}
	// Pragma adds exactly one line; every edit is line-neutral.
	if gotLines, wantLines := strings.Count(out, "\n"), strings.Count(src, "\n")+1; gotLines != wantLines {
		t.Errorf("line count %d, want %d:\n%s", gotLines, wantLines, out)
	}
	// Multi-line arity still counts both parameters.
	if !strings.Contains(out, "helper/2") {
		t.Errorf("arity across lines wrong:\n%s", out)
	}
}

func TestDirectivesSurvive(t *testing.T) {
	src := `//go:build linux || darwin || windows || !tinygo

package p

//go:noinline
func hot() {}
`
	out, _ := rewriteOne(t, "m/p", false, src)
	mustParse(t, out)
	if !strings.Contains(out, "//go:build linux") || !strings.Contains(out, "//go:noinline") {
		t.Errorf("comment directives lost:\n%s", out)
	}
}

func TestRuntimeImportInjectedOnce(t *testing.T) {
	src := "package p\n\nfunc a() {}\n\nfunc b() {}\n"
	out, _ := rewriteOne(t, "m/p", false, src)
	mustParse(t, out)
	want := `; import __rprism_weave "` + RuntimeImport + `"`
	if got := strings.Count(out, want); got != 1 {
		t.Errorf("import injections = %d, want 1:\n%s", got, out)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	_, err := RewritePackage(PackageInput{
		ImportPath: "m/p",
		Files:      []FileInput{{Name: "bad.go", Src: []byte("package p\nfunc {")}},
	})
	if err == nil {
		t.Fatal("want parse error")
	}
}

func TestArityTable(t *testing.T) {
	cases := []struct {
		params string
		want   int
	}{
		{"", 0},
		{"a int", 1},
		{"a, b int", 2},
		{"a int, b string", 2},
		{"xs ...int", 1},
		{"int, string", 2},
		{"a, b, c int, d ...bool", 4},
	}
	for _, c := range cases {
		src := fmt.Sprintf("package p\n\nfunc f(%s) {}\n", c.params)
		out, _ := rewriteOne(t, "m/p", false, src)
		if !strings.Contains(out, fmt.Sprintf("m/p.f/%d", c.want)) {
			t.Errorf("params %q: want arity %d in:\n%s", c.params, c.want, out)
		}
	}
}
