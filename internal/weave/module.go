package weave

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// goRunner runs the go tool for the weaver: fixed working directory and
// environment, stderr captured so failures carry the tool's diagnostics.
type goRunner struct {
	bin string
	dir string
	env []string
}

func (g *goRunner) run(ctx context.Context, args ...string) ([]byte, error) {
	cmd := exec.CommandContext(ctx, g.bin, args...)
	cmd.Dir = g.dir
	cmd.Env = g.env
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(errb.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go %s: %s", args[0], msg)
	}
	return out.Bytes(), nil
}

// listModule describes the owning module of a listed package.
type listModule struct {
	Path string
	Dir  string
	Main bool
}

// listPkg is the subset of `go list -json` the weaver consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Export     string // gc export data, when listed with -export
	Module     *listModule
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

func (p *listPkg) absGoFiles() []string {
	out := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		out[i] = filepath.Join(p.Dir, f)
	}
	return out
}

// relPath returns the module-relative import path for filter matching:
// "." for the module root package, "" when the package is outside mod.
func (p *listPkg) relPath(modPath string) string {
	if p.Module == nil || p.Module.Path != modPath {
		return ""
	}
	if p.ImportPath == modPath {
		return "."
	}
	return strings.TrimPrefix(p.ImportPath, modPath+"/")
}

// listPackages runs `go list -deps -json` over patterns, optionally with
// -export so each dependency's gc export data is available for the typed
// go-statement hoisting.
func listPackages(ctx context.Context, g *goRunner, export bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-deps", "-json=ImportPath,Name,Dir,Standard,Export,Module,GoFiles,CgoFiles,ImportMap,Incomplete,Error"}
	if export {
		args = append(args, "-export")
	}
	args = append(args, patterns...)
	out, err := g.run(ctx, args...)
	if err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("weave: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup over the listed packages'
// export data, keyed by import path.
func exportLookup(pkgs []*listPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("weave: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// envValue extracts KEY from an environ-shaped list (last wins).
func envValue(env []string, key string) string {
	v := ""
	for _, kv := range env {
		if k, val, ok := strings.Cut(kv, "="); ok && k == key {
			v = val
		}
	}
	return v
}

// EnvRuntimeSrc names the rprism source checkout for weaving targets
// that do not already depend on module repro.
const EnvRuntimeSrc = "RPRISM_WEAVE_SRC"

// resolveRuntimeDir locates the repro module source the woven binary
// links against, trying in order: the target module itself (when it IS
// repro), the explicit config, the RPRISM_WEAVE_SRC environment
// variable, the target's own module graph (it already requires repro),
// and finally the module containing the weaver's process working
// directory.
func resolveRuntimeDir(ctx context.Context, cfg *Config, g *goRunner, mod *listModule) (string, error) {
	if mod != nil && mod.Path == "repro" {
		return mod.Dir, nil
	}
	if cfg.RuntimeDir != "" {
		return filepath.Abs(cfg.RuntimeDir)
	}
	if v := envValue(cfg.Env, EnvRuntimeSrc); v != "" {
		return filepath.Abs(v)
	}
	if out, err := g.run(ctx, "list", "-m", "-f", "{{.Dir}}", "repro"); err == nil {
		if dir := strings.TrimSpace(string(out)); dir != "" {
			return dir, nil
		}
	}
	if wd, err := os.Getwd(); err == nil {
		here := &goRunner{bin: g.bin, dir: wd, env: g.env}
		if out, err := here.run(ctx, "list", "-m", "-f", "{{.Path}}\t{{.Dir}}"); err == nil {
			if path, dir, ok := strings.Cut(strings.TrimSpace(string(out)), "\t"); ok && path == "repro" {
				return dir, nil
			}
		}
	}
	return "", fmt.Errorf("weave: cannot locate the rprism runtime source; pass -weave-src or set %s to the repro module checkout", EnvRuntimeSrc)
}
