package weave

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/trace"
)

// repoRoot locates the repro checkout this test file lives in — the
// runtime source woven binaries link against.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// demoModule writes a small two-package module with no rprism imports:
// the canonical zero-touch subject. Returns its directory.
func demoModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/demo\n\ngo 1.24\n")
	write("main.go", `package main

import (
	"sync"

	"example.com/demo/sub"
)

func run(n int) int {
	var wg sync.WaitGroup
	wg.Add(1)
	total := 0
	go func(k int) {
		defer wg.Done()
		total = sub.Work(k)
	}(n)
	wg.Wait()
	return total
}

func main() {
	println(run(3) + useGen())
}
`)
	write("sub/sub.go", `package sub

type Acc struct{ n int }

func (a *Acc) Add(d int) { a.n += d }

func (a Acc) Total() int { return a.n }

func Work(n int) int {
	a := &Acc{}
	for i := 0; i < n; i++ {
		a.Add(i)
	}
	return a.Total()
}
`)
	write("gen/gen.go", `package gen

// A package the filter tests exclude.
func Generated() int { return 42 }
`)
	write("main_use_gen.go", `package main

import "example.com/demo/gen"

func useGen() int { return gen.Generated() }
`)
	return dir
}

// weaveAndRecord weaves the module, runs the woven binary under the
// capture env contract, and returns the reassembled trace.
func weaveAndRecord(t *testing.T, cfg Config) (*trace.Trace, *Result) {
	t.Helper()
	res, err := Weave(context.Background(), cfg)
	if res != nil {
		t.Cleanup(res.Cleanup)
	}
	if err != nil {
		t.Fatalf("Weave: %v", err)
	}
	capDir := t.TempDir()
	child := exec.Command(res.Binary)
	child.Env = inject.CaptureConfig{Dir: capDir, Name: "t"}.Environ(os.Environ())
	if out, err := child.CombinedOutput(); err != nil {
		t.Fatalf("woven binary failed: %v\n%s", err, out)
	}
	tr, err := trace.LoadSegments(capDir, "t")
	if err != nil {
		t.Fatalf("loading capture: %v", err)
	}
	return tr, res
}

// callMembers collects the distinct method ids invoked in a trace.
func callMembers(tr *trace.Trace) map[string]bool {
	out := map[string]bool{}
	for _, e := range tr.Entries {
		if e.Event.Kind == trace.KindCall {
			out[e.Event.Member] = true
		}
	}
	return out
}

func TestWeaveExternalModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := demoModule(t)
	tr, res := weaveAndRecord(t, Config{
		Patterns:   []string{"."},
		Dir:        dir,
		RuntimeDir: repoRoot(t),
	})

	if res.ModulePath != "example.com/demo" || res.MainPackage != "example.com/demo" {
		t.Errorf("module/main = %s/%s", res.ModulePath, res.MainPackage)
	}
	members := callMembers(tr)
	for _, want := range []string{
		"example.com/demo.main/0",
		"example.com/demo.run/1",
		"example.com/demo/sub.Work/1",
		"example.com/demo/sub.Acc.Add/1",
		"example.com/demo/sub.Acc.Total/0",
		"example.com/demo/gen.Generated/0",
	} {
		if !members[want] {
			t.Errorf("missing woven call %s (have %v)", want, members)
		}
	}
	// Stdlib is never woven: no sync or println hooks may appear.
	for m := range members {
		if strings.HasPrefix(m, "sync.") || strings.HasPrefix(m, "runtime.") {
			t.Errorf("stdlib function woven: %s", m)
		}
	}
	// The goroutine spawn must be bracketed: one fork, one end beyond
	// the main thread's.
	stats := trace.ComputeStats(tr)
	if stats.ByKind[trace.KindFork] != 1 {
		t.Errorf("forks = %d, want 1", stats.ByKind[trace.KindFork])
	}
	if stats.Threads != 2 {
		t.Errorf("threads = %d, want 2", stats.Threads)
	}
}

func TestWeaveFilters(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := demoModule(t)
	tr, _ := weaveAndRecord(t, Config{
		Patterns:   []string{"."},
		Dir:        dir,
		Exclude:    []string{"gen/...", "example.com/demo/sub"},
		RuntimeDir: repoRoot(t),
	})
	members := callMembers(tr)
	if !members["example.com/demo.run/1"] {
		t.Errorf("main package should stay woven: %v", members)
	}
	for m := range members {
		if strings.Contains(m, "/sub.") || strings.Contains(m, "/gen.") {
			t.Errorf("excluded package still woven: %s", m)
		}
	}

	// And the dual: -match narrows to one package.
	tr2, res2 := weaveAndRecord(t, Config{
		Patterns:   []string{"."},
		Dir:        dir,
		Match:      []string{"sub"},
		RuntimeDir: repoRoot(t),
	})
	members2 := callMembers(tr2)
	if members2["example.com/demo.run/1"] {
		t.Errorf("unmatched main package was woven: %v", members2)
	}
	if !members2["example.com/demo/sub.Work/1"] {
		t.Errorf("matched package not woven: %v", members2)
	}
	for _, p := range res2.Packages {
		if p.ImportPath != "example.com/demo/sub" && p.Files > 0 {
			t.Errorf("package %s has woven files outside the match", p.ImportPath)
		}
	}
}

func TestWeaveNoMainPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list")
	}
	dir := demoModule(t)
	_, err := Weave(context.Background(), Config{
		Patterns:   []string{"./sub"},
		Dir:        dir,
		RuntimeDir: repoRoot(t),
	})
	if err == nil || !strings.Contains(err.Error(), "no main package") {
		t.Fatalf("want 'no main package' error, got %v", err)
	}
}

func TestWeaveReproExample(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	// Weaving inside the repro module itself: no go.mod grafting, and
	// the runtime-closure exclusion keeps the recorder out of the weave.
	root := repoRoot(t)
	tr, res := weaveAndRecord(t, Config{
		Patterns: []string{"./examples/weave"},
		Dir:      root,
	})
	members := callMembers(tr)
	for _, want := range []string{
		"repro/examples/weave.main/0",
		"repro/examples/weave.work/3",
		"repro/examples/weave.step/2",
		"repro/examples/weave.counter.add/1",
		"repro/examples/weave.counter.total/0",
	} {
		if !members[want] {
			t.Errorf("missing woven call %s (have %v)", want, members)
		}
	}
	for m := range members {
		if strings.HasPrefix(m, "repro/capture") || strings.HasPrefix(m, "repro/internal") {
			t.Errorf("runtime closure woven: %s", m)
		}
	}
	for _, p := range res.Packages {
		if !p.Typed {
			t.Errorf("package %s fell back to syntactic hoisting", p.ImportPath)
		}
	}
	stats := trace.ComputeStats(tr)
	if stats.ByKind[trace.KindFork] != 3 || stats.Threads != 4 {
		t.Errorf("forks/threads = %d/%d, want 3/4", stats.ByKind[trace.KindFork], stats.Threads)
	}
}

// TestWeaveToolexecMode exercises the -toolexec integration end to end.
// It prebuilds the runtime closure as archives, so the first run is
// expensive; gated behind RPRISM_WEAVE_TOOLEXEC=1 (the CI weave-smoke
// job sets it).
func TestWeaveToolexecMode(t *testing.T) {
	if os.Getenv("RPRISM_WEAVE_TOOLEXEC") == "" {
		t.Skip("set RPRISM_WEAVE_TOOLEXEC=1 to run the toolexec-mode build")
	}
	root := repoRoot(t)
	tr, _ := weaveAndRecord(t, Config{
		Patterns: []string{"./examples/weave"},
		Dir:      root,
		Mode:     ModeToolexec,
	})
	members := callMembers(tr)
	for _, want := range []string{
		"repro/examples/weave.main/0",
		"repro/examples/weave.counter.add/1",
	} {
		if !members[want] {
			t.Errorf("missing woven call %s (have %v)", want, members)
		}
	}
}
