package weave

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadAndAugmentImportcfg(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "importcfg")
	content := `# import config
packagefile fmt=/cache/fmt.a
packagefile sync=/cache/sync.a
importmap old.example/x=vendored.example/x
`
	if err := os.WriteFile(orig, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgFiles, importMap, err := readImportcfg(orig)
	if err != nil {
		t.Fatal(err)
	}
	if pkgFiles["fmt"] != "/cache/fmt.a" || pkgFiles["sync"] != "/cache/sync.a" {
		t.Errorf("packagefile parse wrong: %v", pkgFiles)
	}
	if importMap["old.example/x"] != "vendored.example/x" {
		t.Errorf("importmap parse wrong: %v", importMap)
	}

	augmented, err := augmentImportcfg(orig, pkgFiles, map[string]string{
		"repro/capture/woven": "/ar/woven.a",
		"fmt":                 "/ar/fmt.a", // already present: must NOT be duplicated
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(augmented)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "packagefile repro/capture/woven=/ar/woven.a\n") {
		t.Errorf("runtime entry missing:\n%s", out)
	}
	if strings.Count(out, "packagefile fmt=") != 1 {
		t.Errorf("duplicate fmt entry:\n%s", out)
	}
	if !strings.HasPrefix(out, content) {
		t.Errorf("original content not preserved:\n%s", out)
	}
}

func TestRewriteCompilePassthrough(t *testing.T) {
	c := &ToolexecConfig{
		MainPackage: "example.com/demo",
		weave:       map[string]bool{"example.com/demo/sub": true},
	}
	// A package outside the weave set passes through untouched.
	args := []string{"-o", "out.a", "-p", "fmt", "-importcfg", "no-such-file", "print.go"}
	got, cleanup, err := c.rewriteCompile(args)
	if err != nil || cleanup != nil {
		t.Fatalf("passthrough errored: %v", err)
	}
	for i := range args {
		if got[i] != args[i] {
			t.Fatalf("passthrough changed args: %v", got)
		}
	}
	// So does an invocation with no importcfg at all (e.g. -V probes
	// routed elsewhere, or exotic builds).
	if _, _, err := c.rewriteCompile([]string{"-p", "example.com/demo/sub"}); err != nil {
		t.Fatalf("no-importcfg passthrough errored: %v", err)
	}
}

func TestRewriteCompileWeavesMainUnderPMain(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "main.go")
	if err := os.WriteFile(src, []byte("package main\n\nfunc main() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	importcfg := filepath.Join(dir, "importcfg")
	if err := os.WriteFile(importcfg, []byte("packagefile runtime=/cache/runtime.a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &ToolexecConfig{
		MainPackage:   "example.com/demo",
		RuntimeImport: RuntimeImport,
		PackageFiles:  map[string]string{"repro/capture/woven": "/ar/woven.a"},
		NoTypes:       true, // no export data in this synthetic compile
		weave:         map[string]bool{"example.com/demo": true},
	}
	// The compiler names main packages "-p main"; the config maps that
	// back to the real import path for hook ids.
	args := []string{"-o", "out.a", "-p", "main", "-importcfg", importcfg, "-pack", src}
	got, cleanup, err := c.rewriteCompile(args)
	if err != nil {
		t.Fatal(err)
	}
	if cleanup == nil {
		t.Fatal("expected a woven compile (cleanup func)")
	}
	defer cleanup()
	rewrittenSrc := got[len(got)-1]
	if rewrittenSrc == src {
		t.Fatal("source file not swapped")
	}
	data, err := os.ReadFile(rewrittenSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `.Enter("example.com/demo.main/0")`) {
		t.Errorf("hook id not mapped through MainPackage:\n%s", data)
	}
	if !strings.Contains(string(data), ".Close()") {
		t.Errorf("main package missing Close:\n%s", data)
	}
	// The importcfg argument must point at the augmented copy.
	var gotCfg string
	for i := 0; i < len(got)-1; i++ {
		if got[i] == "-importcfg" {
			gotCfg = got[i+1]
		}
	}
	if gotCfg == importcfg || gotCfg == "" {
		t.Fatalf("importcfg not swapped: %q", gotCfg)
	}
	cfgData, err := os.ReadFile(gotCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cfgData), "packagefile repro/capture/woven=/ar/woven.a") {
		t.Errorf("augmented importcfg missing runtime:\n%s", cfgData)
	}
}

func TestRewriteCompileCloseOnlyMain(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "main.go")
	if err := os.WriteFile(src, []byte("package main\n\nfunc helper() {}\n\nfunc main() { helper() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	importcfg := filepath.Join(dir, "importcfg")
	if err := os.WriteFile(importcfg, []byte("packagefile runtime=/cache/runtime.a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &ToolexecConfig{
		MainPackage:   "example.com/demo",
		MainCloseOnly: true,
		RuntimeImport: RuntimeImport,
		NoTypes:       true,
		weave:         map[string]bool{}, // main filtered out entirely
	}
	got, cleanup, err := c.rewriteCompile([]string{"-p", "main", "-importcfg", importcfg, src})
	if err != nil {
		t.Fatal(err)
	}
	if cleanup == nil {
		t.Fatal("close-only main must still be rewritten")
	}
	defer cleanup()
	data, err := os.ReadFile(got[len(got)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ".Close()") {
		t.Errorf("Close missing:\n%s", data)
	}
	if strings.Contains(string(data), ".Enter(") {
		t.Errorf("close-only main gained Enter hooks:\n%s", data)
	}
}

func TestToolexecSaltStability(t *testing.T) {
	glue := filepath.Join(t.TempDir(), "woven.a")
	if err := os.WriteFile(glue, []byte("archive-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	tc := &ToolexecConfig{
		ModulePath:  "example.com/demo",
		MainPackage: "example.com/demo",
		Weave:       []string{"example.com/demo", "example.com/demo/sub"},
	}
	s1, err := toolexecSalt(tc, glue)
	if err != nil {
		t.Fatal(err)
	}
	// Same semantic config, different archive paths (a new temp work
	// dir) must produce the same salt, or every weave run would rebuild
	// the world.
	tc2 := *tc
	tc2.PackageFiles = map[string]string{"fmt": "/somewhere/else.a"}
	s2, err := toolexecSalt(&tc2, glue)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("salt depends on archive paths: %s vs %s", s1, s2)
	}
	// But a different weave set must change it.
	tc3 := *tc
	tc3.Weave = []string{"example.com/demo"}
	s3, err := toolexecSalt(&tc3, glue)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("salt ignores the weave set")
	}
	// And so must different runtime source (glue archive content).
	glue2 := filepath.Join(t.TempDir(), "woven.a")
	if err := os.WriteFile(glue2, []byte("other-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := toolexecSalt(tc, glue2)
	if err != nil {
		t.Fatal(err)
	}
	if s4 == s1 {
		t.Error("salt ignores runtime archive content")
	}
}

func TestCloseOnlyRewrite(t *testing.T) {
	res, err := RewritePackage(PackageInput{
		ImportPath: "m",
		MainPkg:    true,
		CloseOnly:  true,
		Files: []FileInput{{Name: "main.go", Src: []byte(`package main

func helper() {}

func spawn() { go helper() }

func main() { spawn() }
`)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := string(res.Files[0].Src)
	if !strings.Contains(out, "func main() {defer __rprism_weave.Close(); ") {
		t.Errorf("Close missing:\n%s", out)
	}
	if strings.Contains(out, ".Enter(") || strings.Contains(out, ".Go(") {
		t.Errorf("close-only rewrite instrumented more than main:\n%s", out)
	}
	if res.Stats.Funcs != 0 || res.Stats.GoStmts != 0 {
		t.Errorf("stats should be zero for close-only: %+v", res.Stats)
	}
}
