package blob

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/retry"
)

// S3Options configure the S3-compatible backend.
type S3Options struct {
	// Endpoint is the service URL (http://127.0.0.1:9000 for a local
	// minio; https://s3.amazonaws.com for AWS).
	Endpoint string
	// Bucket must already exist; the backend never creates buckets.
	Bucket string
	// AccessKey/SecretKey enable SigV4 signing. Both empty sends
	// unsigned requests — the right mode for anonymous test stubs.
	AccessKey string
	SecretKey string
	// Region is the SigV4 signing region (default "us-east-1" — what
	// minio answers to unless configured otherwise).
	Region string
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

// S3 talks the S3 REST API over plain net/http: path-style object
// URLs ({endpoint}/{bucket}/{key}), list-type=2 listings with
// continuation, and optional SigV4 signing — no SDK dependency. It
// performs no retries of its own; wrap it in WithRetry.
type S3 struct {
	endpoint string // no trailing slash
	bucket   string
	ak, sk   string
	region   string
	client   *http.Client
}

// NewS3 builds the backend. It performs no network I/O; a wrong
// endpoint surfaces on first use.
func NewS3(opts S3Options) (*S3, error) {
	if opts.Endpoint == "" || opts.Bucket == "" {
		return nil, fmt.Errorf("blob: S3 backend needs an endpoint and a bucket")
	}
	if (opts.AccessKey == "") != (opts.SecretKey == "") {
		return nil, fmt.Errorf("blob: S3 credentials need both access key and secret key")
	}
	if _, err := url.Parse(opts.Endpoint); err != nil {
		return nil, fmt.Errorf("blob: bad S3 endpoint: %w", err)
	}
	region := opts.Region
	if region == "" {
		region = "us-east-1"
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &S3{
		endpoint: strings.TrimSuffix(opts.Endpoint, "/"),
		bucket:   opts.Bucket,
		ak:       opts.AccessKey,
		sk:       opts.SecretKey,
		region:   region,
		client:   client,
	}, nil
}

func (s *S3) objectURL(key string) string {
	return s.endpoint + "/" + s.bucket + "/" + awsEncodePath(key)
}

// send issues one request, signing it when credentials are set, and
// classifies the response status: 404 wraps ErrNotFound, other 4xx are
// permanent (retrying identical bytes is wasted), 5xx and transport
// errors stay transient for WithRetry.
func (s *S3) send(ctx context.Context, method, rawurl string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rawurl, rd)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("blob: %w", err))
	}
	if body != nil {
		req.ContentLength = int64(len(body))
	}
	if s.ak != "" {
		SignV4(req, body, s.ak, s.sk, s.region, time.Now().UTC())
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("blob: %s %s: %w", method, rawurl, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	err = fmt.Errorf("blob: %s %s: HTTP %d: %s", method, rawurl, resp.StatusCode,
		strings.TrimSpace(string(raw)))
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("%w (%s)", ErrNotFound, strings.TrimPrefix(rawurl, s.endpoint+"/"))
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, retry.Permanent(err)
	default:
		return nil, err
	}
}

func (s *S3) Put(ctx context.Context, key string, data []byte) error {
	resp, err := s.send(ctx, http.MethodPut, s.objectURL(key), data)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

func (s *S3) Get(ctx context.Context, key string) (io.ReadCloser, error) {
	resp, err := s.send(ctx, http.MethodGet, s.objectURL(key), nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

func (s *S3) Stat(ctx context.Context, key string) (int64, error) {
	resp, err := s.send(ctx, http.MethodHead, s.objectURL(key), nil)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.ContentLength, nil
}

func (s *S3) Delete(ctx context.Context, key string) error {
	resp, err := s.send(ctx, http.MethodDelete, s.objectURL(key), nil)
	if err != nil {
		// S3 DELETE of a missing key returns 204; a stub answering 404
		// still satisfies the Backend contract (idempotent delete).
		if errors.Is(err, ErrNotFound) {
			return nil
		}
		return err
	}
	resp.Body.Close()
	return nil
}

// listResult is the subset of ListBucketResult (list-type=2) the
// backend consumes.
type listResult struct {
	IsTruncated           bool   `xml:"IsTruncated"`
	NextContinuationToken string `xml:"NextContinuationToken"`
	Contents              []struct {
		Key string `xml:"Key"`
	} `xml:"Contents"`
}

func (s *S3) List(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	token := ""
	for {
		q := url.Values{}
		q.Set("list-type", "2")
		if prefix != "" {
			q.Set("prefix", prefix)
		}
		if token != "" {
			q.Set("continuation-token", token)
		}
		resp, err := s.send(ctx, http.MethodGet, s.endpoint+"/"+s.bucket+"?"+q.Encode(), nil)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("blob: list %s: %w", prefix, err)
		}
		var lr listResult
		if err := xml.Unmarshal(raw, &lr); err != nil {
			return nil, retry.Permanent(fmt.Errorf("blob: bad list response: %w", err))
		}
		for _, c := range lr.Contents {
			out = append(out, c.Key)
		}
		if !lr.IsTruncated || lr.NextContinuationToken == "" {
			break
		}
		token = lr.NextContinuationToken
	}
	return sortKeys(out), nil
}

// ---- SigV4 ----

// SignV4 signs req in place with AWS Signature Version 4 (service
// "s3", single-chunk upload): it sets x-amz-date, x-amz-content-sha256
// and Authorization. body must be the exact payload bytes (nil for
// bodyless requests). Exported so the in-process stub can verify
// signatures by recomputation — the client and the verifier share one
// implementation of the canonicalization rules.
func SignV4(req *http.Request, body []byte, accessKey, secretKey, region string, now time.Time) {
	payloadHash := sha256.Sum256(body)
	hashHex := hex.EncodeToString(payloadHash[:])
	amzDate := now.Format("20060102T150405Z")
	req.Header.Set("x-amz-date", amzDate)
	req.Header.Set("x-amz-content-sha256", hashHex)
	signed := []string{"host", "x-amz-content-sha256", "x-amz-date"}
	auth := authorizationV4(req.Method, req.URL, req.Host, req.Header, signed,
		hashHex, accessKey, secretKey, region, now)
	req.Header.Set("Authorization", auth)
}

// authorizationV4 computes the Authorization header value from the
// request components. signedHeaders must be sorted lowercase names;
// host is resolved from the explicit host argument or the URL.
func authorizationV4(method string, u *url.URL, host string, hdr http.Header,
	signedHeaders []string, payloadHash, accessKey, secretKey, region string, now time.Time) string {
	if host == "" {
		host = u.Host
	}
	var canonHdrs strings.Builder
	for _, h := range signedHeaders {
		v := hdr.Get(h)
		if h == "host" {
			v = host
		}
		canonHdrs.WriteString(h + ":" + strings.TrimSpace(v) + "\n")
	}
	canonReq := strings.Join([]string{
		method,
		canonicalURI(u),
		canonicalQuery(u),
		canonHdrs.String(),
		strings.Join(signedHeaders, ";"),
		payloadHash,
	}, "\n")
	date := now.Format("20060102")
	scope := date + "/" + region + "/s3/aws4_request"
	reqHash := sha256.Sum256([]byte(canonReq))
	sts := strings.Join([]string{
		"AWS4-HMAC-SHA256",
		now.Format("20060102T150405Z"),
		scope,
		hex.EncodeToString(reqHash[:]),
	}, "\n")
	key := hmacSHA256([]byte("AWS4"+secretKey), date)
	key = hmacSHA256(key, region)
	key = hmacSHA256(key, "s3")
	key = hmacSHA256(key, "aws4_request")
	sig := hex.EncodeToString(hmacSHA256(key, sts))
	return fmt.Sprintf("AWS4-HMAC-SHA256 Credential=%s/%s, SignedHeaders=%s, Signature=%s",
		accessKey, scope, strings.Join(signedHeaders, ";"), sig)
}

func hmacSHA256(key []byte, msg string) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(msg))
	return h.Sum(nil)
}

// canonicalURI is the AWS-encoded path: each segment percent-encoded
// with the unreserved set, '/' preserved.
func canonicalURI(u *url.URL) string {
	if u.Path == "" {
		return "/"
	}
	// Re-encode from the decoded path so the canonical form is
	// independent of how the caller escaped it.
	return "/" + awsEncodePath(strings.TrimPrefix(u.Path, "/"))
}

// awsEncodePath percent-encodes a path (keeping '/') with the AWS
// unreserved set: A–Z a–z 0–9 - . _ ~.
func awsEncodePath(p string) string {
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		c := p[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~', c == '/':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// canonicalQuery is the sorted, AWS-encoded query string.
func canonicalQuery(u *url.URL) string {
	q := u.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			parts = append(parts, awsEncodeQuery(k)+"="+awsEncodeQuery(v))
		}
	}
	return strings.Join(parts, "&")
}

// awsEncodeQuery percent-encodes a query component ('/' is encoded
// here, unlike in paths).
func awsEncodeQuery(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}
