package blob

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Op names one backend operation, for fault-injection hooks.
type Op string

// The operations a fault hook can intercept.
const (
	OpPut    Op = "put"
	OpGet    Op = "get"
	OpStat   Op = "stat"
	OpDelete Op = "delete"
	OpList   Op = "list"
)

// Mem is the in-memory, fault-injectable backend behind the test
// suites: a mutex-guarded map plus two fault mechanisms — a
// transient-burst counter (FailNext: the next n operations fail with a
// retryable error, simulating a 5xx burst or a flapping network) and
// an arbitrary per-operation hook (SetFault: return any error,
// including retry.Permanent-wrapped ones, or nil to let the call
// through).
type Mem struct {
	mu      sync.Mutex
	objects map[string][]byte
	failN   int
	fault   func(op Op, key string) error
	ops     int64
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{objects: make(map[string][]byte)}
}

// FailNext makes the next n operations fail with a transient error.
func (m *Mem) FailNext(n int) {
	m.mu.Lock()
	m.failN = n
	m.mu.Unlock()
}

// SetFault installs a per-operation hook consulted before every call;
// nil clears it. The hook runs with no lock held on the object map.
func (m *Mem) SetFault(f func(op Op, key string) error) {
	m.mu.Lock()
	m.fault = f
	m.mu.Unlock()
}

// Ops returns the number of operations attempted (including faulted
// ones) — the retry assertions in tests count calls with it.
func (m *Mem) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Len returns the number of stored objects.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objects)
}

// check consumes one fault, if armed.
func (m *Mem) check(op Op, key string) error {
	m.mu.Lock()
	m.ops++
	fault := m.fault
	if m.failN > 0 {
		m.failN--
		m.mu.Unlock()
		return fmt.Errorf("blob: injected transient failure (%s %s)", op, key)
	}
	m.mu.Unlock()
	if fault != nil {
		return fault(op, key)
	}
	return nil
}

func (m *Mem) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := m.check(OpPut, key); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.objects[key] = cp
	m.mu.Unlock()
	return nil
}

func (m *Mem) Get(ctx context.Context, key string) (io.ReadCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := m.check(OpGet, key); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.objects[key]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (m *Mem) Stat(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := m.check(OpStat, key); err != nil {
		return 0, err
	}
	m.mu.Lock()
	data, ok := m.objects[key]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return int64(len(data)), nil
}

func (m *Mem) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := m.check(OpDelete, key); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.objects, key)
	m.mu.Unlock()
	return nil
}

func (m *Mem) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := m.check(OpList, prefix); err != nil {
		return nil, err
	}
	m.mu.Lock()
	var out []string
	for k := range m.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	m.mu.Unlock()
	return sortKeys(out), nil
}
