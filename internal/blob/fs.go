package blob

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FS is the local-directory backend: every object is one file under
// the root, the key encoded as an escaped file name. It doubles as the
// shared-NFS deployment and the zero-dependency local default.
type FS struct {
	dir string
}

// NewFS opens (or creates) a directory-backed store.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	return &FS{dir: dir}, nil
}

// escape maps an object key to a safe flat file name. Corpus keys are
// digest-derived (hex, dots, an optional operator prefix with
// slashes); slashes become a rare unicode-safe escape so one object is
// always one file and List never needs to walk a tree.
func escape(key string) string {
	return strings.ReplaceAll(key, "/", "%2F")
}

func unescape(name string) string {
	return strings.ReplaceAll(name, "%2F", "/")
}

func (f *FS) path(key string) string { return filepath.Join(f.dir, escape(key)) }

// Put writes atomically: temp file + rename, so a reader (or a crash)
// never observes a half-written object.
func (f *FS) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("blob: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("blob: %w", err)
	}
	return nil
}

func (f *FS) Get(ctx context.Context, key string) (io.ReadCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc, err := os.Open(f.path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("blob: %w", err)
	}
	return rc, nil
}

func (f *FS) Stat(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(f.path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return 0, fmt.Errorf("blob: %w", err)
	}
	return fi.Size(), nil
}

func (f *FS) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(f.path(key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blob: %w", err)
	}
	return nil
}

func (f *FS) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".put-") {
			continue
		}
		key := unescape(e.Name())
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
	}
	return sortKeys(out), nil
}
