package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// S3Stub is an in-process S3-compatible object store: enough of the
// REST API (path-style PUT/GET/HEAD/DELETE object, list-type=2 bucket
// listing with continuation) for the S3 backend, the cluster e2e
// tests, and the CI cluster job to run against real HTTP without
// minio. When credentials are set it verifies SigV4 signatures by
// recomputing them with the shared signer; FailNext injects transient
// 503 bursts to exercise the retry policy end to end.
type S3Stub struct {
	bucket string
	ak, sk string
	region string

	mu       sync.Mutex
	objects  map[string][]byte
	failN    int
	reqs     int64
	pageSize int
}

// NewS3Stub creates an empty stub serving one bucket. Empty
// credentials accept unsigned requests; set both to require valid
// SigV4 signatures.
func NewS3Stub(bucket, accessKey, secretKey, region string) *S3Stub {
	if region == "" {
		region = "us-east-1"
	}
	return &S3Stub{
		bucket:  bucket,
		ak:      accessKey,
		sk:      secretKey,
		region:  region,
		objects: make(map[string][]byte),
	}
}

// FailNext makes the next n requests answer 503 — a transient burst.
func (s *S3Stub) FailNext(n int) {
	s.mu.Lock()
	s.failN = n
	s.mu.Unlock()
}

// SetPageSize caps listing pages at n keys regardless of the
// client's max-keys, forcing the continuation-token loop in tests.
func (s *S3Stub) SetPageSize(n int) {
	s.mu.Lock()
	s.pageSize = n
	s.mu.Unlock()
}

// Requests returns how many requests the stub has seen.
func (s *S3Stub) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reqs
}

// Len returns the number of stored objects.
func (s *S3Stub) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

func (s *S3Stub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.reqs++
	if s.failN > 0 {
		s.failN--
		s.mu.Unlock()
		http.Error(w, "injected transient failure", http.StatusServiceUnavailable)
		return
	}
	s.mu.Unlock()

	body, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.ak != "" {
		if !s.verifySignature(r, body) {
			http.Error(w, "SignatureDoesNotMatch", http.StatusForbidden)
			return
		}
	}

	bucket, key, ok := splitBucketKey(r.URL)
	if !ok || bucket != s.bucket {
		http.Error(w, "NoSuchBucket", http.StatusNotFound)
		return
	}
	if key == "" {
		if r.Method == http.MethodGet && r.URL.Query().Get("list-type") == "2" {
			s.serveList(w, r)
			return
		}
		http.Error(w, "NotImplemented", http.StatusNotImplemented)
		return
	}
	switch r.Method {
	case http.MethodPut:
		s.mu.Lock()
		s.objects[key] = body
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	case http.MethodGet, http.MethodHead:
		s.mu.Lock()
		data, ok := s.objects[key]
		s.mu.Unlock()
		if !ok {
			http.Error(w, "NoSuchKey", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(http.StatusOK)
		if r.Method == http.MethodGet {
			w.Write(data)
		}
	case http.MethodDelete:
		s.mu.Lock()
		delete(s.objects, key)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "MethodNotAllowed", http.StatusMethodNotAllowed)
	}
}

// serveList answers a list-type=2 bucket listing, honoring prefix,
// max-keys (default 1000) and continuation-token (the key to resume
// strictly after) so the client's pagination loop is exercised.
func (s *S3Stub) serveList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	after := q.Get("continuation-token")
	maxKeys := 1000
	if v := q.Get("max-keys"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			maxKeys = n
		}
	}
	s.mu.Lock()
	if s.pageSize > 0 && s.pageSize < maxKeys {
		maxKeys = s.pageSize
	}
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) && (after == "" || k > after) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	truncated := len(keys) > maxKeys
	next := ""
	if truncated {
		keys = keys[:maxKeys]
		next = keys[len(keys)-1]
	}

	type contents struct {
		Key string `xml:"Key"`
	}
	type listBucketResult struct {
		XMLName               xml.Name   `xml:"ListBucketResult"`
		IsTruncated           bool       `xml:"IsTruncated"`
		NextContinuationToken string     `xml:"NextContinuationToken,omitempty"`
		Contents              []contents `xml:"Contents"`
	}
	res := listBucketResult{IsTruncated: truncated, NextContinuationToken: next}
	for _, k := range keys {
		res.Contents = append(res.Contents, contents{Key: k})
	}
	w.Header().Set("Content-Type", "application/xml")
	fmt.Fprint(w, xml.Header)
	_ = xml.NewEncoder(w).Encode(res)
}

// verifySignature recomputes the SigV4 signature of the incoming
// request with the stub's credentials and the SignedHeaders list the
// client declared, and compares. The client and this verifier share
// one canonicalization implementation (authorizationV4), so a passing
// round trip proves the two ends agree on the spec.
func (s *S3Stub) verifySignature(r *http.Request, body []byte) bool {
	auth := r.Header.Get("Authorization")
	if !strings.HasPrefix(auth, "AWS4-HMAC-SHA256 ") {
		return false
	}
	fields := map[string]string{}
	for _, part := range strings.Split(strings.TrimPrefix(auth, "AWS4-HMAC-SHA256 "), ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 {
			fields[kv[0]] = kv[1]
		}
	}
	signed := strings.Split(fields["SignedHeaders"], ";")
	amzDate := r.Header.Get("x-amz-date")
	now, err := time.Parse("20060102T150405Z", amzDate)
	if err != nil {
		return false
	}
	payloadHash := r.Header.Get("x-amz-content-sha256")
	gotHash := sha256.Sum256(body)
	if payloadHash != hex.EncodeToString(gotHash[:]) {
		return false
	}
	want := authorizationV4(r.Method, r.URL, r.Host, r.Header, signed,
		payloadHash, strings.Split(fields["Credential"], "/")[0], s.sk, s.region, now)
	return auth == want
}

func readBody(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// splitBucketKey parses a path-style URL path into bucket and key.
func splitBucketKey(u *url.URL) (bucket, key string, ok bool) {
	p := strings.TrimPrefix(u.Path, "/")
	if p == "" {
		return "", "", false
	}
	parts := strings.SplitN(p, "/", 2)
	bucket = parts[0]
	if len(parts) == 2 {
		key = parts[1]
	}
	return bucket, key, true
}
