package blob

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/retry"
)

// conformance runs the Backend contract against one implementation:
// put/get/stat round trips, ErrNotFound on misses, idempotent delete,
// sorted prefix listing, and keys containing dots and slashes.
func conformance(t *testing.T, b Backend) {
	t.Helper()
	ctx := context.Background()

	if _, err := b.Get(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if _, err := b.Stat(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat(absent) = %v, want ErrNotFound", err)
	}
	if err := b.Delete(ctx, "absent"); err != nil {
		t.Fatalf("Delete(absent) = %v, want nil (idempotent)", err)
	}

	objects := map[string][]byte{
		"aa11.000000.seg":        []byte("segment zero"),
		"aa11.000001.seg":        []byte("segment one"),
		"aa11.meta.json":         []byte(`{"id":"aa11"}`),
		"aa11.sketch.json":       []byte(`{"v":1}`),
		"bb22.000000.seg":        []byte("other trace"),
		"pre/fix/cc33.meta.json": []byte("slashed key"),
	}
	for k, v := range objects {
		if err := b.Put(ctx, k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	for k, v := range objects {
		rc, err := b.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatalf("read %s: %v", k, err)
		}
		if string(got) != string(v) {
			t.Fatalf("Get(%s) = %q, want %q", k, got, v)
		}
		n, err := b.Stat(ctx, k)
		if err != nil {
			t.Fatalf("Stat(%s): %v", k, err)
		}
		if n != int64(len(v)) {
			t.Fatalf("Stat(%s) = %d, want %d", k, n, len(v))
		}
	}

	keys, err := b.List(ctx, "aa11.")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"aa11.000000.seg", "aa11.000001.seg", "aa11.meta.json", "aa11.sketch.json"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("List(aa11.) = %v, want %v", keys, want)
	}
	keys, err = b.List(ctx, "pre/")
	if err != nil {
		t.Fatalf("List(pre/): %v", err)
	}
	if !reflect.DeepEqual(keys, []string{"pre/fix/cc33.meta.json"}) {
		t.Fatalf("List(pre/) = %v", keys)
	}

	// Overwrite, then delete, then miss.
	if err := b.Put(ctx, "bb22.000000.seg", []byte("rewritten")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err := GetBytes(ctx, b, "bb22.000000.seg")
	if err != nil || string(got) != "rewritten" {
		t.Fatalf("after overwrite: %q, %v", got, err)
	}
	if err := b.Delete(ctx, "bb22.000000.seg"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := b.Get(ctx, "bb22.000000.seg"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
	}
}

func TestFSConformance(t *testing.T) {
	b, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, b)
}

func TestMemConformance(t *testing.T) {
	conformance(t, NewMem())
}

func TestS3Conformance(t *testing.T) {
	stub := NewS3Stub("traces", "", "", "")
	srv := httptest.NewServer(stub)
	defer srv.Close()
	b, err := NewS3(S3Options{Endpoint: srv.URL, Bucket: "traces"})
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, b)
}

func TestS3ConformanceSigned(t *testing.T) {
	stub := NewS3Stub("traces", "AKIDEXAMPLE", "secret/key+chars", "eu-central-1")
	srv := httptest.NewServer(stub)
	defer srv.Close()
	b, err := NewS3(S3Options{
		Endpoint: srv.URL, Bucket: "traces",
		AccessKey: "AKIDEXAMPLE", SecretKey: "secret/key+chars", Region: "eu-central-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, b)
}

// TestS3RejectsBadSignature proves the stub actually verifies: a
// client signing with the wrong secret is refused, and the 403 is
// classified permanent (no retry burn).
func TestS3RejectsBadSignature(t *testing.T) {
	stub := NewS3Stub("traces", "AK", "right-secret", "")
	srv := httptest.NewServer(stub)
	defer srv.Close()
	b, err := NewS3(S3Options{Endpoint: srv.URL, Bucket: "traces", AccessKey: "AK", SecretKey: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	err = b.Put(context.Background(), "k", []byte("v"))
	if err == nil {
		t.Fatal("Put with wrong secret succeeded")
	}
	if !retry.IsPermanent(err) {
		t.Fatalf("403 must be permanent, got %v", err)
	}
}

// TestS3ListPagination forces small pages so the continuation-token
// loop runs: 7 keys, max-keys=2 (the stub honors max-keys; the client
// always follows NextContinuationToken).
func TestS3ListPagination(t *testing.T) {
	stub := NewS3Stub("traces", "", "", "")
	srv := httptest.NewServer(stub)
	defer srv.Close()
	ctx := context.Background()
	b, err := NewS3(S3Options{Endpoint: srv.URL, Bucket: "traces"})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 7; i++ {
		k := fmt.Sprintf("dig.%06d.seg", i)
		want = append(want, k)
		if err := b.Put(ctx, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stub.SetPageSize(2) // 7 keys / pages of 2 → 4 requests
	before := stub.Requests()
	keys, err := b.List(ctx, "dig.")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("List = %v, want %v", keys, want)
	}
	if got := stub.Requests() - before; got != 4 {
		t.Fatalf("pagination took %d requests, want 4", got)
	}
}

// TestRetryingBackendTransientBurst: a 5xx burst shorter than the
// attempt bound heals; the op count proves retries actually happened.
func TestRetryingBackendTransientBurst(t *testing.T) {
	mem := NewMem()
	retries := 0
	b := WithRetry(mem, retry.Policy{Attempts: 4, Base: time.Millisecond}, func() { retries++ })
	ctx := context.Background()

	if err := b.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("clean put: %v", err)
	}
	mem.FailNext(2)
	if err := b.Put(ctx, "k2", []byte("v2")); err != nil {
		t.Fatalf("put under burst: %v", err)
	}
	if retries != 2 {
		t.Fatalf("onRetry fired %d times, want 2", retries)
	}
	mem.FailNext(3)
	if _, err := GetBytes(ctx, b, "k"); err != nil {
		t.Fatalf("get under burst: %v", err)
	}
}

// TestRetryingBackendExhaustsAttempts: a burst longer than the bound
// fails with the attempts-failed error.
func TestRetryingBackendExhaustsAttempts(t *testing.T) {
	mem := NewMem()
	b := WithRetry(mem, retry.Policy{Attempts: 3, Base: time.Millisecond}, nil)
	mem.FailNext(99)
	err := b.Put(context.Background(), "k", []byte("v"))
	if err == nil {
		t.Fatal("put succeeded under permanent burst")
	}
	if got := mem.Ops(); got != 3 {
		t.Fatalf("backend saw %d ops, want 3", got)
	}
}

// TestRetryingBackendPermanentFailsFast: ErrNotFound and
// Permanent-marked faults must not burn attempts.
func TestRetryingBackendPermanentFailsFast(t *testing.T) {
	mem := NewMem()
	b := WithRetry(mem, retry.Policy{Attempts: 5, Base: time.Millisecond}, nil)
	ctx := context.Background()

	if _, err := b.Get(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if got := mem.Ops(); got != 1 {
		t.Fatalf("not-found burned %d ops, want 1", got)
	}

	rejected := errors.New("quota exceeded")
	mem.SetFault(func(op Op, key string) error { return retry.Permanent(rejected) })
	before := mem.Ops()
	if err := b.Put(ctx, "k", nil); !errors.Is(err, rejected) {
		t.Fatalf("Put = %v, want %v", err, rejected)
	}
	if got := mem.Ops() - before; got != 1 {
		t.Fatalf("permanent fault burned %d ops, want 1", got)
	}
}

// TestS3RetryAgainstStubBurst exercises the full stack over real
// HTTP: stub 503 burst → transient error → retry → success.
func TestS3RetryAgainstStubBurst(t *testing.T) {
	stub := NewS3Stub("traces", "", "", "")
	srv := httptest.NewServer(stub)
	defer srv.Close()
	raw, err := NewS3(S3Options{Endpoint: srv.URL, Bucket: "traces"})
	if err != nil {
		t.Fatal(err)
	}
	b := WithRetry(raw, retry.Policy{Attempts: 4, Base: time.Millisecond}, nil)
	ctx := context.Background()
	if err := b.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	stub.FailNext(2)
	got, err := GetBytes(ctx, b, "k")
	if err != nil {
		t.Fatalf("get under 503 burst: %v", err)
	}
	if string(got) != "v" {
		t.Fatalf("got %q", got)
	}
}

// TestConfigOpen tables the operator spellings.
func TestConfigOpen(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		cfg     Config
		want    string // type name, "" = nil backend
		wantErr bool
	}{
		{name: "unset", cfg: Config{}, want: ""},
		{name: "mem", cfg: Config{Bucket: "mem://"}, want: "*blob.Mem"},
		{name: "fs", cfg: Config{Bucket: "fs://" + dir}, want: "*blob.FS"},
		{name: "fs empty path", cfg: Config{Bucket: "fs://"}, wantErr: true},
		{name: "s3", cfg: Config{Bucket: "b", Endpoint: "http://127.0.0.1:9000"}, want: "*blob.S3"},
		{name: "s3 no endpoint", cfg: Config{Bucket: "b"}, wantErr: true},
		{name: "s3 half creds", cfg: Config{Bucket: "b", Endpoint: "http://x", AccessKey: "a"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := tc.cfg.Open()
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			got := ""
			if b != nil {
				got = fmt.Sprintf("%T", b)
			}
			if got != tc.want {
				t.Fatalf("Open = %s, want %s", got, tc.want)
			}
		})
	}
}
