package blob

import (
	"context"
	"errors"
	"io"

	"repro/internal/retry"
)

// WithRetry layers the repo-wide transient-failure policy over a
// backend: transport errors and 5xx-class failures retry under
// jittered exponential backoff (the capture stream client's policy,
// extracted into internal/retry); ErrNotFound and retry.Permanent-
// marked errors fail fast. onRetry, if non-nil, is invoked once per
// re-attempt — the corpus feeds its retry counter with it.
//
// Get retries the open, not the streamed read: a reader that fails
// mid-stream surfaces to the caller, whose own read loop decides
// (corpus hydration re-requests the whole object).
func WithRetry(b Backend, p retry.Policy, onRetry func()) Backend {
	return &retrying{b: b, policy: p, onRetry: onRetry}
}

type retrying struct {
	b       Backend
	policy  retry.Policy
	onRetry func()
}

// do runs op under the policy, classifying ErrNotFound as permanent
// so a missing object is not hammered Attempts times.
func (r *retrying) do(ctx context.Context, op func() error) error {
	first := true
	return r.policy.Do(ctx, func() error {
		if !first && r.onRetry != nil {
			r.onRetry()
		}
		first = false
		err := op()
		if errors.Is(err, ErrNotFound) {
			return retry.Permanent(err)
		}
		return err
	})
}

func (r *retrying) Put(ctx context.Context, key string, data []byte) error {
	return r.do(ctx, func() error { return r.b.Put(ctx, key, data) })
}

func (r *retrying) Get(ctx context.Context, key string) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := r.do(ctx, func() error {
		var err error
		rc, err = r.b.Get(ctx, key)
		return err
	})
	return rc, err
}

func (r *retrying) Stat(ctx context.Context, key string) (int64, error) {
	var n int64
	err := r.do(ctx, func() error {
		var err error
		n, err = r.b.Stat(ctx, key)
		return err
	})
	return n, err
}

func (r *retrying) Delete(ctx context.Context, key string) error {
	return r.do(ctx, func() error { return r.b.Delete(ctx, key) })
}

func (r *retrying) List(ctx context.Context, prefix string) ([]string, error) {
	var keys []string
	err := r.do(ctx, func() error {
		var err error
		keys, err = r.b.List(ctx, prefix)
		return err
	})
	return keys, err
}
