// Package blob is the pluggable object-store tier under the trace
// corpus: a minimal key/value backend holding the same files the disk
// tier does (segments, meta sidecars, sketch sidecars), addressed by
// flat string keys.
//
// Three implementations ship:
//
//   - FS: a local directory — the shared-filesystem deployment, and the
//     zero-dependency default for single-machine clusters;
//   - S3: an S3-compatible HTTP client speaking path-style requests
//     (minio, Ceph RGW, AWS) with optional SigV4 signing — no SDK
//     dependency;
//   - Mem: an in-memory map with fault injection, for tests.
//
// Backends are deliberately dumb: no retries, no prefixing, no
// tiering. WithRetry layers the repo-wide transient-failure policy
// (internal/retry) over any backend; internal/corpus owns key layout
// and the read-through/write-through logic.
package blob

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ErrNotFound reports a key the backend does not hold. Implementations
// wrap it so errors.Is works across backends, and WithRetry treats it
// as permanent.
var ErrNotFound = errors.New("blob: key not found")

// Backend is a minimal object store. Implementations must be safe for
// concurrent use. Keys are flat opaque strings (the corpus uses
// "<prefix><digest>.<n>.seg" and sidecar names); values are immutable
// once put — the corpus is content-addressed, so overwriting a key
// with different bytes never happens in correct operation.
type Backend interface {
	// Put stores data under key, overwriting any existing object.
	Put(ctx context.Context, key string, data []byte) error
	// Get opens a streaming reader over the object. The caller must
	// close it. A missing key wraps ErrNotFound.
	Get(ctx context.Context, key string) (io.ReadCloser, error)
	// Stat returns the object's size without fetching it. A missing key
	// wraps ErrNotFound.
	Stat(ctx context.Context, key string) (int64, error)
	// Delete removes the object. Deleting a missing key is not an error
	// (S3 semantics).
	Delete(ctx context.Context, key string) error
	// List returns the keys beginning with prefix, sorted.
	List(ctx context.Context, prefix string) ([]string, error)
}

// GetBytes fetches a whole object. Small sidecars and bounded segment
// files are read this way; the streaming Get remains for anything
// bigger.
func GetBytes(ctx context.Context, b Backend, key string) ([]byte, error) {
	rc, err := b.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

// Config is the operator-facing description of a backend, the
// flag/env surface of rprism-serve (-blob-bucket, -blob-endpoint, …).
type Config struct {
	// Bucket selects the backend. Three spellings:
	//
	//	mybucket        an S3 bucket (requires Endpoint)
	//	fs:///var/blob  a local directory backend
	//	mem://          an in-memory backend (testing)
	//
	// Empty means no blob tier.
	Bucket string
	// Endpoint is the S3-compatible service URL (e.g.
	// http://127.0.0.1:9000 for a local minio). Required for bucket
	// backends, ignored otherwise.
	Endpoint string
	// AccessKey/SecretKey enable SigV4 request signing. Empty sends
	// unsigned path-style requests (minio stubs, anonymous buckets).
	AccessKey string
	SecretKey string
	// Region is the SigV4 signing region (default "us-east-1").
	Region string
}

// IsConfigured reports whether a blob tier was requested.
func (c Config) IsConfigured() bool { return c.Bucket != "" }

// Open builds the configured backend, or (nil, nil) when no blob tier
// is configured.
func (c Config) Open() (Backend, error) {
	switch {
	case c.Bucket == "":
		return nil, nil
	case c.Bucket == "mem://":
		return NewMem(), nil
	case strings.HasPrefix(c.Bucket, "fs://"):
		dir := strings.TrimPrefix(c.Bucket, "fs://")
		if dir == "" {
			return nil, fmt.Errorf("blob: fs:// bucket needs a path (fs:///var/rprism-blob)")
		}
		return NewFS(dir)
	default:
		if c.Endpoint == "" {
			return nil, fmt.Errorf("blob: bucket %q needs an S3 endpoint (-blob-endpoint or fs://path)", c.Bucket)
		}
		return NewS3(S3Options{
			Endpoint:  c.Endpoint,
			Bucket:    c.Bucket,
			AccessKey: c.AccessKey,
			SecretKey: c.SecretKey,
			Region:    c.Region,
		})
	}
}

// sortKeys is the shared List postcondition.
func sortKeys(keys []string) []string {
	sort.Strings(keys)
	return keys
}
