package impact

import (
	"strings"
	"testing"

	"repro/internal/diff"
	"repro/internal/interp"
	"repro/internal/lang"
)

func diffFor(t *testing.T, srcL, srcR string) *diff.Result {
	t.Helper()
	run := func(src string) *interp.Result {
		res, err := interp.Run(lang.MustParse(src), interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("runtime error: %v", res.Err)
		}
		return res
	}
	return diff.ViewDiff(run(srcL).Trace, run(srcR).Trace, diff.ViewOptions{})
}

const impactV1 = `
class Store {
  Int v;
  void put(Int x) { this.v = x; return; }
  Int get() { return this.v; }
}
class Audit {
  Int seen;
  void note(Int x) { this.seen = this.seen + 1; return; }
}
class Main {
  void main() {
    let s = new Store();
    let a = new Audit();
    s.put(41);
    a.note(s.get());
    Sys.print(s.get());
  }
}`

func TestImpactSurface(t *testing.T) {
	v2 := strings.Replace(impactV1, "s.put(41);", "s.put(42);", 1)
	res := diffFor(t, impactV1, v2)
	if res.NumDiffs() == 0 {
		t.Fatal("no diffs to attribute")
	}
	s := Compute(res)
	if s.Total != res.NumDiffs() {
		t.Errorf("total = %d, want %d", s.Total, res.NumDiffs())
	}
	// The Store class must be impacted; methods must include the putter
	// or its caller.
	foundStore := false
	for _, it := range s.Classes {
		if it.Name == "Store" {
			foundStore = true
		}
	}
	if !foundStore {
		t.Errorf("Store not in impacted classes: %+v", s.Classes)
	}
	// Ranking: items sorted by descending entry count.
	for i := 1; i < len(s.Methods); i++ {
		if s.Methods[i].Entries > s.Methods[i-1].Entries {
			t.Errorf("methods not ranked: %+v", s.Methods)
		}
	}
	// Left/Right tallies add up.
	for _, it := range s.Methods {
		if it.Left+it.Right != it.Entries {
			t.Errorf("tally mismatch: %+v", it)
		}
	}
	rep := s.Report(3)
	if !strings.Contains(rep, "impact surface") || !strings.Contains(rep, "methods:") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestImpactIdenticalTracesEmpty(t *testing.T) {
	res := diffFor(t, impactV1, impactV1)
	s := Compute(res)
	if s.Total != 0 || len(s.Methods) != 0 {
		t.Errorf("identical traces should have empty surface: %+v", s)
	}
}

func TestImpactThreadDimension(t *testing.T) {
	v1 := `
class W { Int n; void work(Int k) { this.n = k; return; } }
class Main {
  void main() {
    let w = new W();
    spawn { w.work(1); }
    Sys.print("m");
  }
}`
	v2 := strings.Replace(v1, "w.work(1)", "w.work(2)", 1)
	res := diffFor(t, v1, v2)
	s := Compute(res)
	if len(s.Threads) == 0 {
		t.Fatalf("no thread attribution: %+v", s)
	}
	// The differing work happens on the spawned thread.
	if !strings.Contains(s.Threads[0].Name, "thread") {
		t.Errorf("thread item = %+v", s.Threads[0])
	}
}
