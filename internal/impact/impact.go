// Package impact implements another of the paper's envisioned view-based
// analyses (§4: "impact analysis"): given a trace differencing result, it
// computes the impact surface of the change — which methods, classes,
// objects, and threads the behavioural differences touch, ranked by how
// many differing entries each absorbs. Developers read it as "what else
// did this change perturb?".
package impact

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/diff"
	"repro/internal/trace"
)

// Item is one impacted program element.
type Item struct {
	Name    string
	Entries int // differing entries attributed to the element
	Left    int // of which from the original version
	Right   int
}

// Surface is the full impact report.
type Surface struct {
	Methods []Item // by enclosing qualified method
	Classes []Item // by target object class
	Objects []Item // by target class + creation sequence
	Threads []Item
	Total   int
}

// Compute builds the impact surface of a differencing result.
func Compute(res *diff.Result) *Surface {
	type key struct {
		dim  int
		name string
	}
	counts := map[key]*Item{}
	bump := func(dim int, name string, left bool) {
		if name == "" {
			return
		}
		k := key{dim, name}
		it := counts[k]
		if it == nil {
			it = &Item{Name: name}
			counts[k] = it
		}
		it.Entries++
		if left {
			it.Left++
		} else {
			it.Right++
		}
	}
	add := func(t *trace.Trace, eids []trace.EntryID, left bool) {
		for _, id := range eids {
			e := t.Entries[id]
			bump(0, e.Method, left)
			if c := e.Event.Target.Class; c != "" && e.Event.Target.Loc != trace.NoLoc {
				bump(1, c, left)
				bump(2, fmt.Sprintf("%s#%d", c, e.Event.Target.Seq), left)
			}
			bump(3, fmt.Sprintf("thread %d", e.TID), left)
		}
	}
	add(res.Left, res.DiffLeft, true)
	add(res.Right, res.DiffRight, false)

	s := &Surface{Total: res.NumDiffs()}
	for k, it := range counts {
		switch k.dim {
		case 0:
			s.Methods = append(s.Methods, *it)
		case 1:
			s.Classes = append(s.Classes, *it)
		case 2:
			s.Objects = append(s.Objects, *it)
		case 3:
			s.Threads = append(s.Threads, *it)
		}
	}
	for _, list := range [][]Item{s.Methods, s.Classes, s.Objects, s.Threads} {
		sortItems(list)
	}
	return s
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Entries != items[j].Entries {
			return items[i].Entries > items[j].Entries
		}
		return items[i].Name < items[j].Name
	})
}

// Report renders the surface, listing at most max items per dimension.
func (s *Surface) Report(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "impact surface: %d differing entries\n", s.Total)
	dims := []struct {
		title string
		items []Item
	}{
		{"methods", s.Methods},
		{"classes", s.Classes},
		{"objects", s.Objects},
		{"threads", s.Threads},
	}
	for _, d := range dims {
		fmt.Fprintf(&b, "%s:\n", d.title)
		for i, it := range d.items {
			if max > 0 && i >= max {
				fmt.Fprintf(&b, "  ... %d more\n", len(d.items)-max)
				break
			}
			fmt.Fprintf(&b, "  %-40s %5d (%d old / %d new)\n", it.Name, it.Entries, it.Left, it.Right)
		}
	}
	return b.String()
}
