package diff

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/subjects"
	"repro/internal/trace"
)

// TestViewDiffEmpiricalLinearity checks the paper's central complexity
// claim (§3.3: "our technique exhibits O(n) complexity in both space and
// time") empirically: quadrupling the trace size must grow compare
// operations by roughly 4x, not 16x. The workload plants a bug that
// fires on a fixed fraction of operations, so divergence density is
// size-independent.
func TestViewDiffEmpiricalLinearity(t *testing.T) {
	pair := func(stmts int) (*trace.Trace, *trace.Trace) {
		prog := lang.MustParse(subjects.RhinoSource())
		bugSrc := strings.Replace(subjects.RhinoSource(),
			`if (sym.equals("+")) { return a + b; }`,
			`if (sym.equals("+")) { return a + b + a % 13 / 12; }`, 1)
		bug := lang.MustParse(bugSrc)
		script := subjects.GenScript(stmts, 5)
		runIt := func(p *lang.Program) *trace.Trace {
			res, err := interp.Run(p, interp.Options{Args: []string{script}})
			if err != nil {
				t.Fatal(err)
			}
			return res.Trace
		}
		return runIt(prog), runIt(bug)
	}

	l1, r1 := pair(10)
	l2, r2 := pair(40)
	small := ViewDiff(l1, r1, ViewOptions{})
	large := ViewDiff(l2, r2, ViewOptions{})

	sizeRatio := float64(l2.Len()) / float64(l1.Len())
	compareRatio := float64(large.Stats.Compares) / float64(small.Stats.Compares)
	if sizeRatio < 3 {
		t.Fatalf("workload scaling broken: size ratio %.1f", sizeRatio)
	}
	// Linear behaviour: compare growth within ~2.5x of size growth.
	// Quadratic behaviour would put compareRatio near sizeRatio².
	if compareRatio > 2.5*sizeRatio {
		t.Errorf("compares grew %.1fx for a %.1fx size increase (superlinear):"+
			" small=%d large=%d", compareRatio, sizeRatio,
			small.Stats.Compares, large.Stats.Compares)
	}
	// Space: the differ's working memory estimate must also stay linear.
	memRatio := float64(large.Stats.MemBytes) / float64(small.Stats.MemBytes)
	if memRatio > 2.5*sizeRatio {
		t.Errorf("memory grew %.1fx for a %.1fx size increase", memRatio, sizeRatio)
	}
}

// TestLCSEmpiricalQuadratic is the contrast case: on the same scattered
// workload the DP baseline's compares grow quadratically.
func TestLCSEmpiricalQuadratic(t *testing.T) {
	prog := lang.MustParse(subjects.RhinoSource())
	bugSrc := strings.Replace(subjects.RhinoSource(),
		`if (sym.equals("+")) { return a + b; }`,
		`if (sym.equals("+")) { return a + b + a % 13 / 12; }`, 1)
	bug := lang.MustParse(bugSrc)
	compares := func(stmts int) (int, int64) {
		script := subjects.GenScript(stmts, 5)
		runIt := func(p *lang.Program) *trace.Trace {
			res, err := interp.Run(p, interp.Options{Args: []string{script}})
			if err != nil {
				t.Fatal(err)
			}
			return res.Trace
		}
		l, r := runIt(prog), runIt(bug)
		res, err := LCSDiff(l, r, LCSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return l.Len(), res.Stats.Compares
	}
	n1, c1 := compares(10)
	n2, c2 := compares(30)
	sizeRatio := float64(n2) / float64(n1)
	compareRatio := float64(c2) / float64(c1)
	// Quadratic: the ratio should be much closer to sizeRatio² than to
	// sizeRatio.
	if compareRatio < 2*sizeRatio {
		t.Errorf("LCS compares grew only %.1fx for %.1fx size: unexpectedly sublinear"+
			" (did trimming swallow the workload?)", compareRatio, sizeRatio)
	}
}
