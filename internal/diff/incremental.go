package diff

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/lcs"
	"repro/internal/trace"
	"repro/internal/views"
)

// pairKey identifies a correlated thread-view pair across evaluations.
type pairKey struct {
	lid, rid trace.ThreadID
}

// cachedUnit is an evaluated unit plus the fingerprint of every
// growth-sensitive right-side read it performed. A unit's inputs are the
// fixed left web and, on the right, its thread view's EID prefix, entry
// payloads, links (NamesOf), and positions (PosIn) — all of which are
// append-stable under views.IncrementalBuilder growth. The only read
// whose outcome can change when the right web grows is a secondary-view
// window that was clamped at the view's tail (see unit.trackTail), so
// validity reduces to two length checks.
type cachedUnit struct {
	u        *unit
	rightLen int // right thread view length at evaluation time
}

// valid reports whether re-evaluating the unit against wr would read
// exactly the inputs it read at cache time: the right thread view has
// not grown, and no view it took a tail-clamped window over has grown.
func (c *cachedUnit) valid(wr *views.Web) bool {
	if viewLen(wr, views.ThreadName(c.u.rid)) != c.rightLen {
		return false
	}
	for name, n := range c.u.tailViews {
		if viewLen(wr, name) != n {
			return false
		}
	}
	return true
}

func viewLen(w *views.Web, n views.Name) int {
	if v := w.View(n); v != nil {
		return len(v.EIDs)
	}
	return 0
}

// Incremental re-diffs a growing right-hand trace against a pinned
// left-hand baseline, caching per-thread-pair unit results between
// evaluations. On each Rediff only the dirty pairs — those whose
// growth-sensitive inputs changed since their cached evaluation — are
// recomputed; clean pairs reuse their cached outputs. The merge is
// incremental too: the similarity unions are kept as reference counts
// over the cached units and patched by the delta of evicted and
// admitted units, and the difference sets are extended by scanning only
// the entries appended since the previous evaluation — so a quiet
// 100-thread session whose appends touch a handful of threads re-diffs
// in O(dirty pairs + appended entries), not O(trace). The Result is
// DeepEqual to a from-scratch ViewDiffWebs over the same snapshot.
//
// Contract: successive Rediff calls must pass snapshots of the same
// monotonically growing trace (e.g. corpus Session.Web snapshots) —
// each right web an append-only extension of the previous one. The
// cache cannot detect a caller that substitutes an unrelated trace of
// coincidentally equal view lengths. Incremental is not safe for
// concurrent use; the sentinel serializes evaluations per watch.
//
// Ownership: the returned Result's SimilarLeft and SimilarRight maps
// are the Incremental's live merged state, shared across calls — they
// are valid until the next Rediff, which may mutate them in place. A
// caller retaining a Result across evaluations must copy them. The
// DiffLeft/DiffRight slices and everything else are safe to retain:
// slices are either extended past their returned length or replaced,
// never rewritten.
type Incremental struct {
	wl      *views.Web
	wlBytes int64 // wl.MemBytes(), fixed for the Incremental's lifetime
	opts    ViewOptions
	tm      *views.ThreadMatcher
	pairs   map[pairKey]*cachedUnit
	lastLen int // right trace length at the previous Rediff

	// Merged similarity state: refL/refR count, per entry, how many
	// cached units mark it similar (units may mark entries on other
	// threads via cross-thread anchors, so marks overlap); simL/simR are
	// the membership maps handed to Results — an entry is present iff
	// its count is positive.
	refL, refR map[trace.EntryID]int32
	simL, simR map[trace.EntryID]bool

	// Merged difference state. diffL mirrors diffsFromSimilar(left,
	// simL) and is rebuilt only when left membership changes. diffR
	// covers the first diffRLen right entries (all with EID <= diffRMax)
	// and is extended by scanning appended entries; it is rebuilt when
	// membership changes inside the covered prefix or EIDs stop growing
	// monotonically.
	diffL     []trace.EntryID
	diffLDone bool
	diffR     []trace.EntryID
	diffRLen  int
	diffRMax  trace.EntryID
}

// NewIncremental pins the baseline web and differencing options for a
// sequence of incremental re-diffs.
func NewIncremental(baseline *views.Web, opts ViewOptions) *Incremental {
	return &Incremental{
		wl:       baseline,
		wlBytes:  baseline.MemBytes(),
		opts:     opts,
		tm:       views.NewThreadMatcher(baseline.Trace),
		pairs:    make(map[pairKey]*cachedUnit),
		refL:     make(map[trace.EntryID]int32),
		refR:     make(map[trace.EntryID]int32),
		simL:     make(map[trace.EntryID]bool),
		simR:     make(map[trace.EntryID]bool),
		diffRMax: -1,
	}
}

// IncrementalStats describes one Rediff evaluation: how many correlated
// thread pairs the snapshot had, and how many were recomputed versus
// served from the cache. Dirty/Pairs is the dirty-pair ratio surfaced in
// /stats.
type IncrementalStats struct {
	Pairs  int // correlated thread pairs this evaluation
	Dirty  int // pairs recomputed (cache miss or invalidated)
	Reused int // pairs served from the cache
}

// Rediff evaluates the diff of the pinned baseline against the snapshot
// web wr, reusing cached per-pair results where valid. Thread matching
// is recomputed per call (new threads can appear and shift pairings —
// that affects only the hit rate, never correctness, because a pair is
// cached under both tids). Cached entries for pairs absent from the
// current matching are pruned.
func (inc *Incremental) Rediff(ctx context.Context, wr *views.Web) (*Result, IncrementalStats, error) {
	var st IncrementalStats
	if n := wr.Trace.Len(); n < inc.lastLen {
		return nil, st, fmt.Errorf("diff: incremental right trace shrank (%d -> %d entries); snapshots must grow append-only", inc.lastLen, n)
	}
	opts := inc.opts.withDefaults()
	tm := inc.tm.Match(wr.Trace)

	lids := make([]trace.ThreadID, 0, len(tm.Pairs))
	for lid := range tm.Pairs {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })

	budget := lcs.NewBudget(opts.LCSCellBudget)
	units := make([]*unit, len(lids))
	var dirty []*unit
	next := make(map[pairKey]*cachedUnit, len(lids))
	for i, lid := range lids {
		rid := tm.Pairs[lid]
		key := pairKey{lid, rid}
		if c, ok := inc.pairs[key]; ok && c.valid(wr) {
			units[i] = c.u
			next[key] = c
			continue
		}
		u := newUnit(ctx, opts, inc.wl, wr, lid, rid, budget)
		u.trackTail = true
		units[i] = u
		dirty = append(dirty, u)
	}
	st.Pairs = len(units)
	st.Dirty = len(dirty)
	st.Reused = len(units) - len(dirty)

	runUnits(ctx, dirty, opts.Parallelism)
	for _, u := range dirty {
		if u.err != nil {
			return nil, st, u.err
		}
	}
	// Admit the fresh evaluations. Dropping the web/context/budget
	// references keeps a cached unit from pinning old snapshots or
	// context chains; nothing after evalPair reads them.
	for _, u := range dirty {
		rlen := viewLen(wr, views.ThreadName(u.rid))
		u.ctx, u.wl, u.wr, u.budget = nil, nil, nil, nil
		next[pairKey{u.lid, u.rid}] = &cachedUnit{u: u, rightLen: rlen}
	}

	// Patch the merged similarity unions by the cache delta: units that
	// left the cache (invalidated, replaced, or pruned) release their
	// marks, fresh units acquire theirs. Touched entries are then
	// reconciled against the membership maps — an entry released and
	// re-acquired by the unit's re-evaluation nets out to no change.
	var touchedL, touchedR []trace.EntryID
	for key, c := range inc.pairs {
		if next[key] != c {
			touchedL = updateRefs(inc.refL, c.u.similarLeft, -1, touchedL)
			touchedR = updateRefs(inc.refR, c.u.similarRight, -1, touchedR)
		}
	}
	for _, u := range dirty {
		touchedL = updateRefs(inc.refL, u.similarLeft, +1, touchedL)
		touchedR = updateRefs(inc.refR, u.similarRight, +1, touchedR)
	}
	inc.pairs = next
	inc.lastLen = wr.Trace.Len()

	leftChanged, _ := syncMembership(inc.refL, inc.simL, touchedL, -1)
	_, rightInterior := syncMembership(inc.refR, inc.simR, touchedR, inc.diffRMax)
	inc.refreshDiffs(wr.Trace, leftChanged, rightInterior)

	return inc.buildResult(wr, tm, units), st, nil
}

// updateRefs applies a reference-count delta for every entry a unit
// marks similar, recording the touched entry ids.
func updateRefs(ref map[trace.EntryID]int32, marks map[trace.EntryID]bool, d int32, touched []trace.EntryID) []trace.EntryID {
	for id := range marks {
		if n := ref[id] + d; n == 0 {
			delete(ref, id)
		} else {
			ref[id] = n
		}
		touched = append(touched, id)
	}
	return touched
}

// syncMembership reconciles the membership map against the reference
// counts for the touched entries. It reports whether any membership
// actually changed, and whether a change landed at or below boundary
// (pass -1 to ignore the boundary).
func syncMembership(ref map[trace.EntryID]int32, sim map[trace.EntryID]bool, touched []trace.EntryID, boundary trace.EntryID) (changed, belowBoundary bool) {
	for _, id := range touched {
		now := ref[id] > 0
		if now == sim[id] {
			continue
		}
		if now {
			sim[id] = true
		} else {
			delete(sim, id)
		}
		changed = true
		if id <= boundary {
			belowBoundary = true
		}
	}
	return changed, belowBoundary
}

// refreshDiffs brings the merged difference sets up to date. The left
// trace is fixed, so diffL only changes when left membership does. diffR
// normally extends by scanning just the appended entries; membership
// changes inside the already-covered prefix, or EIDs that stop growing
// monotonically, force a from-scratch rebuild of the side.
func (inc *Incremental) refreshDiffs(r *trace.Trace, leftChanged, rightInterior bool) {
	if leftChanged || !inc.diffLDone {
		inc.diffL = diffsFromSimilar(inc.wl.Trace, inc.simL)
		inc.diffLDone = true
	}
	rebuild := rightInterior
	if !rebuild {
		for _, e := range r.Entries[inc.diffRLen:] {
			if e.IsEOF() {
				continue
			}
			if e.EID <= inc.diffRMax {
				rebuild = true
				break
			}
			inc.diffRMax = e.EID
			if !inc.simR[e.EID] {
				inc.diffR = append(inc.diffR, e.EID)
			}
		}
	}
	if rebuild {
		inc.diffR = diffsFromSimilar(r, inc.simR)
		inc.diffRMax = -1
		for _, e := range r.Entries {
			if !e.IsEOF() && e.EID > inc.diffRMax {
				inc.diffRMax = e.EID
			}
		}
	}
	inc.diffRLen = len(r.Entries)
}

// buildResult assembles the Result from the cached units and the merged
// similarity/difference state. It mirrors mergeUnits exactly — same
// unit order, same unmatched-thread sequences, same filtering, same
// Stats — so an incremental Result is byte-identical to a from-scratch
// one over the same snapshot (TestIncrementalRediffEquivalence pins
// this); only the union and difference computations are amortized.
func (inc *Incremental) buildResult(wr *views.Web, tm views.ThreadMatch, units []*unit) *Result {
	l, r := inc.wl.Trace, wr.Trace
	res := &Result{
		Left: l, Right: r,
		SimilarLeft:  inc.simL,
		SimilarRight: inc.simR,
	}
	var st Stats
	for _, u := range units {
		res.Sequences = append(res.Sequences, u.seqs...)
		st.Compares += u.compares
		st.ViewExplorations += u.explorations
		st.MemBytes += u.memBytes()
	}
	st.MemBytes += inc.wlBytes + wr.MemBytes()

	for _, lid := range tm.LeftOnly {
		if v := inc.wl.ThreadView(lid); v != nil {
			res.Sequences = append(res.Sequences, Sequence{Kind: Delete, Left: v.EIDs})
		}
	}
	for _, rid := range tm.RightOnly {
		if v := wr.ThreadView(rid); v != nil {
			res.Sequences = append(res.Sequences, Sequence{Kind: Insert, Right: v.EIDs})
		}
	}

	res.DiffLeft = inc.diffL
	res.DiffRight = inc.diffR
	res.Sequences = filterSequences(res.Sequences, inc.simL, inc.simR)
	res.Stats = st
	return res
}
