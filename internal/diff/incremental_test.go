package diff

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/views"
)

// TestIncrementalRediffEquivalence is the soundness property of the
// incremental cache: for a right-hand trace absorbed segment by segment,
// every Rediff over the growing snapshot deep-equals a from-scratch
// ViewDiffWebs over the same snapshot — sequences, similarity sets,
// difference sets, and Stats included. The CI race job runs this under
// -race at -cpu=1,2,4.
func TestIncrementalRediffEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 5; seed++ {
		threads := 2 + int(seed)%3
		l := synthTraceMT("l", 300+int(seed*41)%150, threads, seed)
		r := mutateTrace(l, seed+50)
		wl := views.Build(l)
		opts := ViewOptions{Parallelism: 1 + int(seed)%3}

		inc := NewIncremental(wl, opts)
		b := views.NewIncrementalBuilder(r.Name)
		rng := rand.New(rand.NewSource(seed + 900))
		for lo := 0; lo < r.Len(); {
			hi := lo + 1 + rng.Intn(60)
			if hi > r.Len() {
				hi = r.Len()
			}
			if err := b.Append(r.Entries[lo:hi]); err != nil {
				t.Fatalf("seed %d: append [%d:%d): %v", seed, lo, hi, err)
			}
			lo = hi

			w := b.Snapshot()
			got, st, err := inc.Rediff(ctx, w)
			if err != nil {
				t.Fatalf("seed %d: Rediff at %d entries: %v", seed, w.Trace.Len(), err)
			}
			if st.Dirty+st.Reused != st.Pairs {
				t.Fatalf("seed %d: inconsistent stats %+v", seed, st)
			}
			want := ViewDiffWebs(wl, w, opts)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d: incremental diverged from scratch at %d entries\n"+
					"scratch: diffs=%d seqs=%d stats=%+v\n"+
					"incremental: diffs=%d seqs=%d stats=%+v (eval %+v)",
					seed, w.Trace.Len(),
					want.NumDiffs(), len(want.Sequences), want.Stats,
					got.NumDiffs(), len(got.Sequences), got.Stats, st)
			}
		}
	}
}

// TestIncrementalRediffReuse pins the point of the cache: a re-evaluation
// over an unchanged snapshot recomputes nothing, and appends confined to
// one thread (with events linking only to views of their own) dirty at
// most that thread's pair.
func TestIncrementalRediffReuse(t *testing.T) {
	ctx := context.Background()
	l := synthTraceMT("l", 400, 4, 21)
	r := mutateTrace(l, 22)
	wl := views.Build(l)
	opts := ViewOptions{Parallelism: 2}

	inc := NewIncremental(wl, opts)
	b := views.NewIncrementalBuilder(r.Name)
	if err := b.Append(r.Entries); err != nil {
		t.Fatal(err)
	}
	w := b.Snapshot()
	first, st, err := inc.Rediff(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 0 || st.Dirty != st.Pairs {
		t.Fatalf("cold cache: %+v, want all pairs dirty", st)
	}

	// Same snapshot again: nothing grew, nothing recomputes.
	again, st, err := inc.Rediff(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dirty != 0 || st.Reused != st.Pairs {
		t.Fatalf("unchanged snapshot: %+v, want all pairs reused", st)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("fully cached re-evaluation changed the result")
	}

	// Quiet-session appends: tail entries on thread 0 only, with a
	// method/object distinct from everything in the trace so they link
	// only to views no other pair has windowed over.
	tailObj := trace.Repr{Loc: trace.Loc(999), Class: "Tail", Seq: 77}
	for seg := 0; seg < 3; seg++ {
		prev := r.Len()
		for k := 0; k < 10; k++ {
			ev := trace.Event{Kind: trace.KindCall, Target: tailObj, Member: "Tail.only/1",
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(seg*10+k))}}
			r.Append(0, "Tail.only/1", tailObj, ev)
		}
		if err := b.Append(r.Entries[prev:]); err != nil {
			t.Fatal(err)
		}
		w = b.Snapshot()
		got, st, err := inc.Rediff(ctx, w)
		if err != nil {
			t.Fatal(err)
		}
		if st.Dirty > 1 {
			t.Fatalf("segment %d: single-thread append dirtied %d of %d pairs", seg, st.Dirty, st.Pairs)
		}
		want := ViewDiffWebs(wl, w, opts)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("segment %d: incremental diverged from scratch", seg)
		}
	}
}

// TestIncrementalRediffShrinkRejected pins the append-only contract.
func TestIncrementalRediffShrinkRejected(t *testing.T) {
	l := synthTraceMT("l", 120, 2, 3)
	r := mutateTrace(l, 4)
	wl := views.Build(l)
	inc := NewIncremental(wl, ViewOptions{Parallelism: 1})
	if _, _, err := inc.Rediff(context.Background(), views.Build(r)); err != nil {
		t.Fatal(err)
	}
	short := trace.New("short")
	short.Append(0, "A.run/0", trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: "A.run/0"})
	if _, _, err := inc.Rediff(context.Background(), views.Build(short)); err == nil {
		t.Fatal("Rediff accepted a shrunken right trace")
	}
}
