package diff

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// synthTrace builds a deterministic synthetic trace of n entries over a
// small pool of classes/methods/objects, rich enough to produce all four
// view types.
func synthTrace(name string, n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.New(name)
	methods := []string{"A.run/0", "B.step/1", "C.emit/1"}
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + rng.Intn(4)), Class: "C", Seq: 1 + rng.Intn(4)}
		val := trace.PrimRepr("Int", fmt.Sprint(rng.Intn(20)))
		var ev trace.Event
		switch rng.Intn(4) {
		case 0:
			ev = trace.Event{Kind: trace.KindGet, Target: obj, Member: "f", Args: []trace.Repr{val}}
		case 1:
			ev = trace.Event{Kind: trace.KindSet, Target: obj, Member: "f", Args: []trace.Repr{val}}
		case 2:
			ev = trace.Event{Kind: trace.KindCall, Target: obj, Member: methods[rng.Intn(3)], Args: []trace.Repr{val}}
		default:
			ev = trace.Event{Kind: trace.KindReturn, Target: obj, Member: methods[rng.Intn(3)]}
		}
		t.Append(0, methods[rng.Intn(3)], obj, ev)
	}
	return t
}

// mutateTrace returns a copy with a few entries value-perturbed, a small
// block deleted, and a small block duplicated — the ingredients of real
// version-to-version drift.
func mutateTrace(t *trace.Trace, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	out := trace.New(t.Name + "-mut")
	skipFrom, skipLen := -1, 0
	if t.Len() > 20 {
		skipFrom = rng.Intn(t.Len() - 10)
		skipLen = 1 + rng.Intn(5)
	}
	for i, e := range t.Entries {
		if skipFrom >= 0 && i >= skipFrom && i < skipFrom+skipLen {
			continue
		}
		ev := e.Event
		if rng.Intn(10) == 0 && len(ev.Args) > 0 {
			args := append([]trace.Repr(nil), ev.Args...)
			args[0] = trace.PrimRepr("Int", fmt.Sprint(100+rng.Intn(50)))
			ev.Args = args
		}
		out.Append(e.TID, e.Method, e.Self, ev)
		if rng.Intn(25) == 0 {
			out.Append(e.TID, e.Method, e.Self, ev) // duplication
		}
	}
	return out
}

func TestPropertyViewDiffPartition(t *testing.T) {
	prop := func(seed int64) bool {
		n := 50 + int(seed%100+100)%100
		l := synthTrace("l", n, seed)
		r := mutateTrace(l, seed+1)
		res := ViewDiff(l, r, ViewOptions{})
		// Every non-eof entry is either similar or a difference, never both.
		for _, e := range l.Entries {
			inDiff := false
			for _, id := range res.DiffLeft {
				if id == e.EID {
					inDiff = true
				}
			}
			if inDiff == res.SimilarLeft[e.EID] {
				return false
			}
		}
		for _, e := range r.Entries {
			inDiff := false
			for _, id := range res.DiffRight {
				if id == e.EID {
					inDiff = true
				}
			}
			if inDiff == res.SimilarRight[e.EID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIdenticalTracesAllSimilar(t *testing.T) {
	prop := func(seed int64) bool {
		l := synthTrace("l", 80, seed)
		r := synthTrace("r", 80, seed)
		res := ViewDiff(l, r, ViewOptions{})
		return res.NumDiffs() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyViewsNeverWorseThanTrivial(t *testing.T) {
	// The diff set can never exceed the full trace sizes, and similarity
	// is sound: every similar-marked left entry has SOME =e partner in
	// the right trace.
	prop := func(seed int64) bool {
		l := synthTrace("l", 60, seed)
		r := mutateTrace(l, seed*7+3)
		res := ViewDiff(l, r, ViewOptions{})
		if len(res.DiffLeft) > l.Len() || len(res.DiffRight) > r.Len() {
			return false
		}
		for eid := range res.SimilarLeft {
			found := false
			for _, re := range r.Entries {
				if trace.EventEqual(l.Entries[eid], re) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLCSAndViewsAgreeOnEqualTraces(t *testing.T) {
	prop := func(seed int64) bool {
		l := synthTrace("l", 70, seed)
		r := synthTrace("r", 70, seed)
		lres, err := LCSDiff(l, r, LCSOptions{})
		if err != nil {
			return false
		}
		vres := ViewDiff(l, r, ViewOptions{})
		return lres.NumDiffs() == 0 && vres.NumDiffs() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertySequencesCoverDiffs(t *testing.T) {
	prop := func(seed int64) bool {
		l := synthTrace("l", 90, seed)
		r := mutateTrace(l, seed+11)
		res := ViewDiff(l, r, ViewOptions{})
		// The sequences partition exactly the diff entries.
		seen := map[trace.EntryID]bool{}
		total := 0
		for _, s := range res.Sequences {
			for _, id := range s.Left {
				if seen[id] {
					return false
				}
				seen[id] = true
				total++
			}
		}
		return total == len(res.DiffLeft)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
