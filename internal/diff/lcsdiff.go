package diff

import (
	"context"

	"repro/internal/lcs"
	"repro/internal/trace"
)

// LCSOptions configures the baseline differ.
type LCSOptions struct {
	// Algorithm selects the LCS implementation (DP with prefix/suffix
	// trimming by default).
	Algorithm lcs.Algorithm
	// MemoryBudget caps the DP table in cells; exceeding it returns
	// lcs.ErrMemoryBudget — the Table 1 out-of-memory outcome.
	MemoryBudget int64
}

// LCSDiff implements the LCS-based trace differencing semantics of
// Fig. 11: Δ is the longest common subsequence of the two traces under
// event equality =e; everything else is a difference. Contiguous runs of
// differences between consecutive correspondence points become difference
// sequences (insertion / deletion / modification).
func LCSDiff(l, r *trace.Trace, opts LCSOptions) (*Result, error) {
	return LCSDiffCtx(context.Background(), l, r, opts)
}

// LCSDiffCtx is LCSDiff with cancellation: the quadratic DP (or
// Hirschberg recursion) polls ctx between rows and aborts with its error.
func LCSDiffCtx(ctx context.Context, l, r *trace.Trace, opts LCSOptions) (*Result, error) {
	cnt := &counter{}
	eq := func(i, j int) bool { return cnt.equal(l.Entries[i], r.Entries[j]) }
	pairs, st, err := lcs.Compute(l.Len(), r.Len(), eq, lcs.Options{
		Algorithm:    opts.Algorithm,
		MemoryBudget: opts.MemoryBudget,
		Ctx:          ctx,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Left: l, Right: r,
		SimilarLeft:  make(map[trace.EntryID]bool, len(pairs)),
		SimilarRight: make(map[trace.EntryID]bool, len(pairs)),
	}
	for _, p := range pairs {
		res.SimilarLeft[trace.EntryID(p.I)] = true
		res.SimilarRight[trace.EntryID(p.J)] = true
	}
	res.DiffLeft = diffsFromSimilar(l, res.SimilarLeft)
	res.DiffRight = diffsFromSimilar(r, res.SimilarRight)
	res.Sequences = gapSequences(l, r, pairs)
	res.Stats = Stats{Compares: cnt.compares, MemBytes: st.Cells * 4}
	return res, nil
}

// gapSequences converts the gaps between consecutive LCS correspondence
// points into difference sequences.
func gapSequences(l, r *trace.Trace, pairs []lcs.Pair) []Sequence {
	var out []Sequence
	li, ri := 0, 0
	emit := func(lEnd, rEnd int) {
		var seq Sequence
		for i := li; i < lEnd; i++ {
			if !l.Entries[i].IsEOF() {
				seq.Left = append(seq.Left, trace.EntryID(i))
			}
		}
		for j := ri; j < rEnd; j++ {
			if !r.Entries[j].IsEOF() {
				seq.Right = append(seq.Right, trace.EntryID(j))
			}
		}
		if seq.Size() == 0 {
			return
		}
		switch {
		case len(seq.Left) == 0:
			seq.Kind = Insert
		case len(seq.Right) == 0:
			seq.Kind = Delete
		default:
			seq.Kind = Modify
		}
		out = append(out, seq)
	}
	for _, p := range pairs {
		emit(p.I, p.J)
		li, ri = p.I+1, p.J+1
	}
	emit(l.Len(), r.Len())
	return out
}
