// Package diff implements the paper's two trace-differencing semantics:
// the LCS baseline of Fig. 11 (well-known diff, quadratic, with the
// common-prefix/suffix optimization of §5.1) and the views-based semantics
// of Fig. 12, which walks correlated thread views in lock step and, at
// points of divergence, explores linked secondary views with windowed LCS
// to find semantically corresponding entries — achieving linear time and
// space on full program traces.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// SeqKind classifies a difference sequence by which sides contribute.
type SeqKind uint8

const (
	// Modify has differing entries on both sides.
	Modify SeqKind = iota
	// Delete has entries only on the left (removed in the new version).
	Delete
	// Insert has entries only on the right (added in the new version).
	Insert
)

func (k SeqKind) String() string {
	switch k {
	case Modify:
		return "modify"
	case Delete:
		return "delete"
	case Insert:
		return "insert"
	}
	return "?"
}

// Sequence is one difference sequence: a contiguous run of differences
// representing a single higher-level semantic difference (§5.1 —
// "RPRISM organizes contiguous sets of differences into difference
// sequences, thereby organizing tool output into comprehensible units").
type Sequence struct {
	Kind  SeqKind
	Left  []trace.EntryID // differing entries from the left trace
	Right []trace.EntryID // differing entries from the right trace
}

// Size returns the number of differing entries in the sequence.
func (s Sequence) Size() int { return len(s.Left) + len(s.Right) }

// Stats accounts the cost of a differencing run.
type Stats struct {
	// Compares counts trace-entry compare operations (=e evaluations) —
	// the paper's speedup unit.
	Compares int64
	// MemBytes accounts peak working memory beyond the traces themselves.
	// The LCS baseline reports its DP table. The views-based differ sums
	// real per-unit accounting at merge — memo entries, the largest DP
	// table each unit held, anchor scratch, similarity sets, sequence
	// storage — plus the two view webs' own memory (views.Web.MemBytes).
	// Every term is deterministic, so the figure is identical at any
	// ViewOptions.Parallelism.
	MemBytes int64
	// ViewExplorations counts secondary-view LCS computations performed
	// by the views-based semantics.
	ViewExplorations int64
}

// Result is the outcome of differencing a trace pair.
type Result struct {
	Left, Right *trace.Trace
	// SimilarLeft/SimilarRight are the Δ sets: entries found similar.
	SimilarLeft  map[trace.EntryID]bool
	SimilarRight map[trace.EntryID]bool
	// DiffLeft/DiffRight are the difference sets (ascending entry ids).
	DiffLeft  []trace.EntryID
	DiffRight []trace.EntryID
	// Sequences groups the differences into difference sequences.
	Sequences []Sequence
	Stats     Stats
}

// NumDiffs returns the total number of differing entries.
func (r *Result) NumDiffs() int { return len(r.DiffLeft) + len(r.DiffRight) }

// counter wraps EventEqual with compare-operation accounting.
type counter struct{ compares int64 }

func (c *counter) equal(a, b trace.Entry) bool {
	c.compares++
	return trace.EventEqual(a, b)
}

// diffsFromSimilar derives the sorted difference set of one side.
func diffsFromSimilar(t *trace.Trace, similar map[trace.EntryID]bool) []trace.EntryID {
	var out []trace.EntryID
	for _, e := range t.Entries {
		if e.IsEOF() {
			continue
		}
		if !similar[e.EID] {
			out = append(out, e.EID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Format renders a human-readable semantic diff: each difference sequence
// with its entries, in context. This is the "full semantic diff between
// the original and new versions" output of contribution 3.
func (r *Result) Format(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d differences (%d left, %d right) in %d sequences\n",
		r.NumDiffs(), len(r.DiffLeft), len(r.DiffRight), len(r.Sequences))
	for i, seq := range r.Sequences {
		if max > 0 && i >= max {
			fmt.Fprintf(&b, "... %d more sequences\n", len(r.Sequences)-max)
			break
		}
		fmt.Fprintf(&b, "--- sequence %d (%s, %d entries)\n", i+1, seq.Kind, seq.Size())
		for _, id := range seq.Left {
			fmt.Fprintf(&b, "  - %s\n", r.Left.Entries[id])
		}
		for _, id := range seq.Right {
			fmt.Fprintf(&b, "  + %s\n", r.Right.Entries[id])
		}
	}
	return b.String()
}
