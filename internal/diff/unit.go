package diff

import (
	"context"
	"errors"

	"repro/internal/lcs"
	"repro/internal/trace"
	"repro/internal/views"
)

// unit evaluates one correlated thread-view pair under →V. It is the
// parallel decomposition of the views-based differencing semantics:
// every piece of mutable state the evaluation touches — the similarity
// sets, the windowed-LCS memo table, the compare counter, the anchor
// scratch, the cancellation poller, the memory accounting — lives in the
// unit, so any number of units may run on different goroutines without
// synchronization, and running them in any order (or serially) produces
// the same per-unit outputs. The orchestrator in ViewDiffWebsCtx merges
// unit outputs in ascending-left-tid order, which makes the final Result
// byte-identical for every ViewOptions.Parallelism setting.
//
// The only cross-unit object is the optional shared lcs.Budget, which
// bounds concurrently live DP cells; it blocks rather than fails, so it
// shapes scheduling, never results.
type unit struct {
	ctx      context.Context
	err      error // first ctx error observed; sticky
	steps    int   // cancellation-poll counter
	opts     ViewOptions
	wl, wr   *views.Web
	lid, rid trace.ThreadID
	budget   *lcs.Budget // shared DP-cell pool, nil = unlimited

	// Outputs, merged by the orchestrator.
	seqs         []Sequence
	similarLeft  map[trace.EntryID]bool
	similarRight map[trace.EntryID]bool
	compares     int64
	explorations int64

	// Working state and its accounting.
	memo       map[memoKey]bool
	peakCells  int64 // largest windowed-LCS DP table (cells)
	maxAnchors int   // widest anchor set of a single divergence

	// Incremental-cache support (Incremental): when trackTail is set the
	// unit records every right-side view it windowed over where the
	// window was clamped at the view's tail — the only reads whose
	// outcome can change when the right web grows without the right
	// thread view growing. tailViews maps each such view to its length
	// at evaluation time; see cachedUnit.valid for the invalidation rule.
	trackTail bool
	tailViews map[views.Name]int
}

func newUnit(ctx context.Context, opts ViewOptions, wl, wr *views.Web,
	lid, rid trace.ThreadID, budget *lcs.Budget) *unit {
	return &unit{
		ctx: ctx, opts: opts, wl: wl, wr: wr, lid: lid, rid: rid, budget: budget,
		similarLeft:  make(map[trace.EntryID]bool),
		similarRight: make(map[trace.EntryID]bool),
	}
}

// equal is the counted =e comparison — the paper's speedup unit. The
// counter is unit-local; totals are summed at merge.
func (u *unit) equal(a, b trace.Entry) bool {
	u.compares++
	return trace.EventEqual(a, b)
}

// canceled polls the context every 256 bumps. Once an error is observed
// it is sticky: every subsequent call reports true without touching the
// context again, so the evaluation unwinds through its nested loops in
// microseconds regardless of trace size.
func (u *unit) canceled() bool {
	if u.err != nil {
		return true
	}
	u.steps++
	if u.steps&255 != 0 {
		return false
	}
	u.err = u.ctx.Err()
	return u.err != nil
}

// Per-element sizes for the unit's memory accounting. A memo entry is a
// 48-byte key plus a bool rounded up to map-bucket granularity; an
// anchor is four words; a similarity mark is an 8-byte key plus a bool
// in map buckets; DP cells are int32.
const (
	memoEntryBytes = 64
	anchorBytes    = 32
	markBytes      = 16
	dpCellBytes    = 4
)

// memBytes accounts the unit's peak working memory: memo entries, the
// largest DP table it held live, its widest anchor scratch, its
// similarity sets, and its difference sequences. Every term is a
// deterministic function of the inputs, so the orchestrator's sum is
// identical at any parallelism.
func (u *unit) memBytes() int64 {
	seqEntries := 0
	for _, s := range u.seqs {
		seqEntries += len(s.Left) + len(s.Right)
	}
	return int64(len(u.memo))*memoEntryBytes +
		u.peakCells*dpCellBytes +
		int64(u.maxAnchors)*anchorBytes +
		int64(len(u.similarLeft)+len(u.similarRight))*markBytes +
		int64(seqEntries)*8
}

type memoKey struct {
	lv, rv           views.Name
	lBucket, rBucket int
}

// anchor is a pair of similar entries discovered in linked views, located
// by their positions in the current thread-view pair (-1 when the entry
// belongs to a different thread).
type anchor struct {
	posL, posR int
	eidL, eidR trace.EntryID
}

// evalPair evaluates the unit's thread-view pair.
func (u *unit) evalPair() {
	lv, rv := u.wl.ThreadView(u.lid), u.wr.ThreadView(u.rid)
	if lv == nil || rv == nil {
		return
	}
	L, R := lv.EIDs, rv.EIDs
	thL := views.ThreadName(u.lid)
	thR := views.ThreadName(u.rid)

	var seq Sequence
	flush := func() {
		if seq.Size() > 0 {
			switch {
			case len(seq.Left) == 0:
				seq.Kind = Insert
			case len(seq.Right) == 0:
				seq.Kind = Delete
			default:
				seq.Kind = Modify
			}
			u.seqs = append(u.seqs, seq)
			seq = Sequence{}
		}
	}

	i, j := 0, 0
	desyncUntil := 0 // backoff threshold after a failed full resync
	failStreak := 0  // consecutive failed resyncs; escalates the scan limit
	for i < len(L) && j < len(R) {
		if u.canceled() {
			return
		}
		el, er := u.wl.Trace.Entries[L[i]], u.wr.Trace.Entries[R[j]]
		if u.equal(el, er) {
			// STEP-VIEW-MATCH
			flush()
			u.mark(L[i], R[j])
			i++
			j++
			continue
		}
		skip := func(ni, nj int) {
			for k := i; k < ni; k++ {
				seq.Left = append(seq.Left, L[k])
			}
			for k := j; k < nj; k++ {
				seq.Right = append(seq.Right, R[k])
			}
			i, j = ni, nj
		}
		// Cheap lookahead first: small genuine divergences resynchronize
		// within a few entries without any secondary-view work.
		if ni, nj, ok := u.scan(L, R, i, j, u.opts.QuickScan); ok {
			skip(ni, nj)
			continue
		}
		if i+j < desyncUntil {
			// A recent full scan found no correspondence point; the traces
			// are massively diverged here. Consume pairs cheaply until
			// we're past the region the failed scan already covered —
			// this bounds total scan work linearly.
			seq.Left = append(seq.Left, L[i])
			seq.Right = append(seq.Right, R[j])
			i++
			j++
			continue
		}
		// STEP-VIEW-NOMATCH: explore linked secondary views around the
		// diverging entries and collect similar entries.
		anchors := u.explore(thL, thR, L, R, i, j)
		for _, a := range anchors {
			u.mark(a.eidL, a.eidR)
		}
		// The scan limit escalates after consecutive failures so that
		// one-sided insertions larger than MaxScan (which a fixed-limit
		// scan with pairwise consumption would never realign past) are
		// eventually bridged; it is capped by the remaining work so total
		// scan cost stays proportional to the trace length.
		limit := u.opts.MaxScan << failStreak
		if rem := (len(L) - i) + (len(R) - j); limit > rem {
			limit = rem
		}
		if ni, nj, ok := u.resyncLimit(L, R, i, j, anchors, limit); ok {
			failStreak = 0
			skip(ni, nj)
			continue
		}
		// No correspondence point within bounds: back off and consume one
		// entry from each side as differences.
		if failStreak < 8 {
			failStreak++
		}
		desyncUntil = i + j + limit
		seq.Left = append(seq.Left, L[i])
		seq.Right = append(seq.Right, R[j])
		i++
		j++
	}
	if u.err != nil {
		return
	}
	for ; i < len(L); i++ {
		seq.Left = append(seq.Left, L[i])
	}
	for ; j < len(R); j++ {
		seq.Right = append(seq.Right, R[j])
	}
	flush()
}

func (u *unit) mark(l, r trace.EntryID) {
	u.similarLeft[l] = true
	u.similarRight[r] = true
}

// resyncLimit finds the next pair of corresponding entries (η2, η4): the
// closest equal pair ahead within limit, where "closest" minimizes the
// total number of skipped entries — approximating the minimality side
// condition (γL′ ∩=e γR′ = ⟨⟩) of STEP-VIEW-NOMATCH. Anchor pairs
// discovered in secondary views bound the search; an anti-diagonal scan
// then looks for anything closer.
func (u *unit) resyncLimit(L, R []trace.EntryID, i, j int, anchors []anchor, limit int) (int, int, bool) {
	bestSum := -1
	bi, bj := 0, 0
	for _, a := range anchors {
		if a.posL < i || a.posR < j || (a.posL == i && a.posR == j) {
			continue
		}
		if sum := (a.posL - i) + (a.posR - j); bestSum == -1 || sum < bestSum {
			bestSum, bi, bj = sum, a.posL, a.posR
		}
	}
	scanTo := limit
	if bestSum != -1 && bestSum-1 < scanTo {
		scanTo = bestSum - 1
	}
	if ni, nj, ok := u.scan(L, R, i, j, scanTo); ok {
		return ni, nj, true
	}
	if bestSum != -1 {
		return bi, bj, true
	}
	return 0, 0, false
}

// scan searches anti-diagonals s = 1..limit for the nearest pair of equal
// entries ahead of (i, j), minimizing the total number of skipped entries.
// A candidate pair is "confirmed" when the following entries also match
// (or a trace ends there); a confirmed pair is preferred — resynchronizing
// on a spurious singleton match of a common event (the 0-or-null problem
// of §3.2) would cascade misalignment downstream. An unconfirmed
// candidate is kept as a fallback and returned if no confirmed pair turns
// up within a few further diagonals.
func (u *unit) scan(L, R []trace.EntryID, i, j, limit int) (int, int, bool) {
	fallbackI, fallbackJ := -1, -1
	fallbackDeadline := 0
	for s := 1; s <= limit; s++ {
		// Scans escalate to trace-length limits on massively diverged
		// inputs, so the scan itself must be cancellable; a late diagonal
		// alone can cost millions of comparisons, hence the inner poll.
		if u.canceled() {
			return 0, 0, false
		}
		if fallbackI >= 0 && s > fallbackDeadline {
			return fallbackI, fallbackJ, true
		}
		// Walk the anti-diagonal from its balanced middle outward: in
		// highly repetitive trace regions (scanning loops) every phase of
		// the repetition matches =e, and the balanced pair is the one
		// that keeps both sides in phase; a side-biased order would lock
		// onto a phase-shifted match and misalign everything after it.
		for k := 0; k <= s; k++ {
			if k&8191 == 8191 && u.canceled() {
				return 0, 0, false
			}
			di := s/2 + (k+1)/2
			if k%2 == 1 {
				di = s/2 - (k+1)/2
			}
			if di < 0 || di > s {
				continue
			}
			dj := s - di
			if i+di >= len(L) || j+dj >= len(R) {
				continue
			}
			if !u.equal(u.wl.Trace.Entries[L[i+di]], u.wr.Trace.Entries[R[j+dj]]) {
				continue
			}
			confirmed := i+di+1 >= len(L) || j+dj+1 >= len(R) ||
				u.equal(u.wl.Trace.Entries[L[i+di+1]], u.wr.Trace.Entries[R[j+dj+1]])
			if confirmed {
				return i + di, j + dj, true
			}
			if fallbackI < 0 {
				fallbackI, fallbackJ = i+di, j+dj
				fallbackDeadline = s + 8
			}
		}
	}
	if fallbackI >= 0 {
		return fallbackI, fallbackJ, true
	}
	return 0, 0, false
}

// explore implements SIMILAR-FROM-LINKED-VIEWS: for entries η5/η6 within δ
// of the diverging entries in the two thread views, correlated secondary
// views (matching views) are compared by LCS over fixed-size windows
// around the linking entries; every matched pair is a similar-entry
// anchor.
//
// Candidate pairs come from an index over the correlation keys (method
// signature, object class+seq, object value) rather than a cross product,
// so per-divergence work is bounded by the number of distinct linked
// views. The §5 relaxed pairs are a fallback used only when standard
// correlation yields no anchors ahead of the divergence point.
func (u *unit) explore(thL, thR views.Name, L, R []trace.EntryID, i, j int) []anchor {
	if u.memo == nil {
		u.memo = make(map[memoKey]bool)
	}
	lc := u.collectLinked(u.wl, L, i)
	rc := u.collectLinked(u.wr, R, j)

	// Index the right side by correlation keys.
	byKey := make(map[corrKey]linked, len(rc))
	for _, rk := range rc {
		keys, n := correlationKeys(rk)
		for _, k := range keys[:n] {
			if _, dup := byKey[k]; !dup {
				byKey[k] = rk
			}
		}
	}

	budget := u.opts.MaxExplore
	var out []anchor
	// The thread views themselves are trivially correlated (they are the
	// pair being evaluated): a local window LCS around the divergence
	// point anchors nearby reorderings.
	out = append(out, u.windowLCS(thL, thR,
		linked{name: thL, eid: L[i], offset: 0},
		linked{name: thR, eid: R[j], offset: 0}, &budget)...)
	for _, lk := range lc {
		if budget <= 0 {
			break
		}
		keys, n := correlationKeys(lk)
		for _, k := range keys[:n] {
			rk, ok := byKey[k]
			if !ok || rk.name.Type != lk.name.Type {
				continue
			}
			out = append(out, u.windowLCS(thL, thR, lk, rk, &budget)...)
			break
		}
	}
	if u.opts.Relaxed && !anyAhead(out, i, j) {
		// Relaxed context-sensitive correlation: pair views whose linking
		// entries sit at the same distance from the point of divergence,
		// tolerating renamed/split/combined methods.
		byOffset := make(map[int]linked, len(rc))
		for _, rk := range rc {
			if _, dup := byOffset[rk.offset]; !dup {
				byOffset[rk.offset] = rk
			}
		}
		for _, lk := range lc {
			if budget <= 0 {
				break
			}
			rk, ok := byOffset[lk.offset]
			if !ok || rk.name.Type != lk.name.Type {
				continue
			}
			out = append(out, u.windowLCS(thL, thR, lk, rk, &budget)...)
		}
	}
	if len(out) > u.maxAnchors {
		u.maxAnchors = len(out)
	}
	return out
}

// corrKey is one Xτ correlation criterion of a linked view, encoded as a
// comparable struct of interned symbols and small integers — map keys on
// the exploration path are built without any string formatting.
type corrKey struct {
	kind    uint8 // one of the ck* key kinds
	a, b, c uint64
}

const (
	ckInvalid   uint8 = iota
	ckMethod          // a = method symbol
	ckTargetSeq       // a = class symbol, b = creation seq
	ckTargetVal       // a = class symbol, b = value hash, c = value-string symbol
	ckActiveSeq       // a = class symbol, b = creation seq
)

// correlationKeys encodes the Xτ correlation criteria of a linked view:
// method signature for CM; class+seq and class+value for TO; class+seq
// for AO (either TO criterion suffices, §3.1). Returns the keys in a
// fixed-size array to keep the exploration path allocation-free.
func correlationKeys(lk linked) ([2]corrKey, int) {
	var keys [2]corrKey
	switch lk.name.Type {
	case views.Method:
		keys[0] = corrKey{kind: ckMethod, a: lk.name.Key}
		return keys, 1
	case views.TargetObject:
		t := lk.entry.Event.Target
		n := 0
		if t.Loc != trace.NoLoc && t.Seq != 0 {
			keys[n] = corrKey{kind: ckTargetSeq, a: uint64(t.ClassSym), b: uint64(t.Seq)}
			n++
		}
		if t.HasValue() {
			keys[n] = corrKey{kind: ckTargetVal, a: uint64(t.ClassSym), b: t.Hash, c: uint64(t.StrSym)}
			n++
		}
		return keys, n
	case views.ActiveObject:
		s := lk.entry.Self
		if s.Loc != trace.NoLoc && s.Seq != 0 {
			keys[0] = corrKey{kind: ckActiveSeq, a: uint64(s.ClassSym), b: uint64(s.Seq)}
			return keys, 1
		}
	}
	return keys, 0
}

func anyAhead(anchors []anchor, i, j int) bool {
	for _, a := range anchors {
		if a.posL >= i && a.posR >= j && !(a.posL == i && a.posR == j) {
			return true
		}
	}
	return false
}

// linked is a secondary view reachable from an entry near the divergence
// point, with the linking entry and its thread-view offset.
type linked struct {
	name   views.Name
	eid    trace.EntryID
	entry  trace.Entry
	offset int // distance from the divergence point in the thread view
}

// collectLinked gathers the distinct non-thread views linked from entries
// within ±δ of position pos in the thread view, keeping the first linking
// entry per view.
func (u *unit) collectLinked(w *views.Web, tv []trace.EntryID, pos int) []linked {
	seen := make(map[views.Name]bool)
	var out []linked
	lo, hi := pos-u.opts.Radius, pos+u.opts.Radius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(tv) {
		hi = len(tv) - 1
	}
	for p := lo; p <= hi; p++ {
		eid := tv[p]
		for _, n := range w.NamesOf(eid) {
			if n.Type == views.Thread || seen[n] {
				continue
			}
			seen[n] = true
			out = append(out, linked{
				name:   n,
				eid:    eid,
				entry:  w.Trace.Entries[eid],
				offset: p - pos,
			})
		}
	}
	return out
}

// windowLCS computes the LCS over fixed ω-windows of a correlated view
// pair, centered at the linking entries, and converts matched pairs into
// anchors (memoized per window bucket so repeated divergences nearby do
// not recompute the same comparison). The DP table draws on the shared
// cell budget when one is configured, and its peak size feeds the unit's
// memory accounting.
func (u *unit) windowLCS(thL, thR views.Name, lk, rk linked, budget *int) []anchor {
	if *budget <= 0 {
		return nil
	}
	lpos, okL := u.wl.PosIn(lk.name, lk.eid)
	rpos, okR := u.wr.PosIn(rk.name, rk.eid)
	if !okL || !okR {
		return nil
	}
	key := memoKey{lk.name, rk.name, lpos / u.opts.Window, rpos / u.opts.Window}
	if u.memo[key] {
		return nil
	}
	u.memo[key] = true
	u.explorations++
	*budget--

	if u.trackTail {
		// Views grow append-only, so a window whose upper bound was NOT
		// clamped at the view's tail returns the identical slice on any
		// later snapshot. A tail-clamped window is the one read that can
		// change without the right thread view itself growing; record the
		// view's length so the cache can detect that growth.
		if v := u.wr.View(rk.name); v != nil && rpos+u.opts.Window+1 > len(v.EIDs) {
			if u.tailViews == nil {
				u.tailViews = make(map[views.Name]int)
			}
			u.tailViews[rk.name] = len(v.EIDs)
		}
	}
	lwin := u.wl.Window(lk.name, lk.eid, u.opts.Window)
	rwin := u.wr.Window(rk.name, rk.eid, u.opts.Window)
	if len(lwin) == 0 || len(rwin) == 0 {
		return nil
	}
	eq := func(a, b int) bool {
		return u.equal(u.wl.Trace.Entries[lwin[a]], u.wr.Trace.Entries[rwin[b]])
	}
	pairs, st, err := lcs.Compute(len(lwin), len(rwin), eq, lcs.Options{Ctx: u.ctx, Budget: u.budget})
	if st.Cells > u.peakCells {
		u.peakCells = st.Cells
	}
	if err != nil {
		// A window exceeding the whole shared budget is skipped — that
		// outcome is deterministic. Anything else is cancellation (from
		// the DP rows or a blocked Reserve) and must stick to the unit:
		// swallowing it would let a unit finish "successfully" with the
		// aborted window's anchors silently missing.
		if !errors.Is(err, lcs.ErrMemoryBudget) && u.err == nil {
			u.err = err
		}
		return nil
	}
	out := make([]anchor, 0, len(pairs))
	for _, p := range pairs {
		a := anchor{eidL: lwin[p.I], eidR: rwin[p.J], posL: -1, posR: -1}
		if pos, ok := u.wl.PosIn(thL, a.eidL); ok {
			a.posL = pos
		}
		if pos, ok := u.wr.PosIn(thR, a.eidR); ok {
			a.posR = pos
		}
		out = append(out, a)
	}
	return out
}
