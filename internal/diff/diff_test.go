package diff

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lcs"
	"repro/internal/trace"
)

func runTrace(t *testing.T, src string, args ...string) *trace.Trace {
	t.Helper()
	res, err := interp.Run(lang.MustParse(src), interp.Options{Args: args})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Err != nil && !res.Err.Aborted {
		t.Fatalf("runtime error: %v", res.Err)
	}
	return res.Trace
}

func checkInvariants(t *testing.T, r *Result) {
	t.Helper()
	// Diff and similar sets partition the non-eof entries on each side.
	for _, e := range r.Left.Entries {
		if e.IsEOF() {
			continue
		}
		inDiff := false
		for _, id := range r.DiffLeft {
			if id == e.EID {
				inDiff = true
				break
			}
		}
		if inDiff == r.SimilarLeft[e.EID] {
			t.Fatalf("left entry %d: diff=%v similar=%v", e.EID, inDiff, r.SimilarLeft[e.EID])
		}
	}
	// Sequence entries are all in the diff sets.
	for _, s := range r.Sequences {
		for _, id := range s.Left {
			if r.SimilarLeft[id] {
				t.Fatalf("sequence contains similar left entry %d", id)
			}
		}
		for _, id := range s.Right {
			if r.SimilarRight[id] {
				t.Fatalf("sequence contains similar right entry %d", id)
			}
		}
		if s.Size() == 0 {
			t.Fatal("empty sequence")
		}
	}
}

func TestIdenticalTracesNoDiffs(t *testing.T) {
	src := `
class C {
  Int v;
  C(Int v) { super(); this.v = v; }
  Int get() { return this.v; }
}
class Main {
  void main() {
    let c = new C(7);
    Sys.print(c.get());
  }
}`
	l, r := runTrace(t, src), runTrace(t, src)
	lres, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lres.NumDiffs() != 0 {
		t.Errorf("LCS diffs = %d, want 0\n%s", lres.NumDiffs(), lres.Format(5))
	}
	vres := ViewDiff(l, r, ViewOptions{})
	if vres.NumDiffs() != 0 {
		t.Errorf("views diffs = %d, want 0\n%s", vres.NumDiffs(), vres.Format(5))
	}
	checkInvariants(t, lres)
	checkInvariants(t, vres)
}

// The motivating example's essence: a constant changed (32 → 1) deep in a
// constructor. Both differs must pinpoint the changed set/init events.
func TestChangedConstantLocalized(t *testing.T) {
	mk := func(min int) string {
		return fmt.Sprintf(`
class Util {
  Int min;
  Int max;
  Util(Int a, Int b) { super(); this.min = a; this.max = b; }
  Bool conv(Int x) { return x < this.min || x > this.max; }
}
class Main {
  void main() {
    Sys.print("start");
    let u = new Util(%d, 127);
    Sys.print(u.conv(10));
    Sys.print(u.conv(50));
    Sys.print("end");
  }
}`, min)
	}
	l := runTrace(t, mk(32))
	r := runTrace(t, mk(1))

	for _, mode := range []string{"lcs", "views"} {
		var res *Result
		if mode == "lcs" {
			var err error
			res, err = LCSDiff(l, r, LCSOptions{})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			res = ViewDiff(l, r, ViewOptions{})
		}
		checkInvariants(t, res)
		if res.NumDiffs() == 0 {
			t.Fatalf("%s: no diffs found", mode)
		}
		// All diffs must involve the changed value: init args, the min set,
		// min gets, or the flipped conv(10) result chain.
		for _, id := range res.DiffLeft {
			e := l.Entries[id]
			s := e.String()
			if !strings.Contains(s, "32") && !strings.Contains(s, "conv") &&
				!strings.Contains(s, "true") && !strings.Contains(s, "false") &&
				!strings.Contains(s, "init Util") && !strings.Contains(s, "<init>") {
				t.Errorf("%s: unrelated diff: %s", mode, s)
			}
		}
		// The set of the min field must be among the diffs.
		foundSet := false
		for _, id := range res.DiffRight {
			e := r.Entries[id]
			if e.Event.Kind == trace.KindSet && e.Event.Member == "min" {
				foundSet = true
			}
		}
		if !foundSet {
			t.Errorf("%s: changed field write not in diff set", mode)
		}
	}
}

// Reordered independent operations: LCS marks one of the swapped blocks
// as differences; views-based correlates both via target-object views and
// reports fewer (ideally zero) differences — the paper's accuracy > 100%.
func TestViewsDetectReorderings(t *testing.T) {
	mk := func(swapped bool) string {
		ab := `a.ping(); b.pong();`
		if swapped {
			ab = `b.pong(); a.ping();`
		}
		return `
class Ping {
  Int n;
  void ping() { this.n = this.n + 1; return; }
}
class Pong {
  Int n;
  void pong() { this.n = this.n + 2; return; }
}
class Main {
  void main() {
    let a = new Ping();
    let b = new Pong();
    Sys.print("before");
    ` + ab + `
    Sys.print("after");
  }
}`
	}
	l := runTrace(t, mk(false))
	r := runTrace(t, mk(true))

	lres, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vres := ViewDiff(l, r, ViewOptions{})
	checkInvariants(t, vres)
	if lres.NumDiffs() == 0 {
		t.Fatal("LCS should report the reordering as differences")
	}
	if vres.NumDiffs() >= lres.NumDiffs() {
		t.Errorf("views diffs (%d) should be fewer than LCS diffs (%d)\nviews:\n%s",
			vres.NumDiffs(), lres.NumDiffs(), vres.Format(10))
	}
}

// A new parameter added to a method: LCS gravitates toward correlating
// the identical surrounding values, isolating the new argument (§3.2).
func TestInsertionIsolated(t *testing.T) {
	mk := func(extra bool) string {
		call, decl := "c.go(1);", "Int go(Int x) { this.v = x; return x; }"
		if extra {
			call, decl = "c.go(1, 9);", "Int go(Int x, Int y) { this.v = x; return x; }"
		}
		return `
class C {
  Int v;
  ` + decl + `
}
class Main {
  void main() {
    Sys.print("s");
    let c = new C();
    ` + call + `
    Sys.print("e");
  }
}`
	}
	l := runTrace(t, mk(false))
	r := runTrace(t, mk(true))
	res, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDiffs() == 0 || res.NumDiffs() > 6 {
		t.Errorf("diffs = %d, want a small isolated set\n%s", res.NumDiffs(), res.Format(10))
	}
	vres := ViewDiff(l, r, ViewOptions{})
	checkInvariants(t, vres)
	if vres.NumDiffs() == 0 {
		t.Error("views must flag the changed call")
	}
}

func TestViewsFewerComparesOnLargeTraces(t *testing.T) {
	// The bug perturbs the output of every 7th iteration of a stateless
	// computation, scattering small divergences across the whole trace so
	// common-prefix/suffix trimming cannot save the LCS baseline — the
	// situation of real regressions, where incorrect events are
	// interleaved with large stretches of correct behaviour.
	mk := func(bug bool) string {
		bias := "0"
		if bug {
			bias = "1"
		}
		return `
class Calc {
  Int f(Int x) { return x * 3 % 101; }
}
class Main {
  void main() {
    let c = new Calc();
    let i = 0;
    while (i < 300) {
      let v = c.f(i);
      if (i % 7 == 0) {
        Sys.print(v + ` + bias + `);
      } else {
        Sys.print(v);
      }
      i = i + 1;
    }
  }
}`
	}
	l := runTrace(t, mk(false))
	r := runTrace(t, mk(true))
	if l.Len() < 1000 {
		t.Fatalf("trace too small for this test: %d", l.Len())
	}
	lres, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vres := ViewDiff(l, r, ViewOptions{})
	if vres.Stats.Compares >= lres.Stats.Compares {
		t.Errorf("views compares = %d, LCS compares = %d: no speedup",
			vres.Stats.Compares, lres.Stats.Compares)
	}
	speedup := float64(lres.Stats.Compares) / float64(vres.Stats.Compares)
	if speedup < 2 {
		t.Errorf("speedup = %.2fx, want >= 2x on a %d-entry trace", speedup, l.Len())
	}
}

func TestLCSMemoryExhaustion(t *testing.T) {
	src := `
class Main {
  void main() {
    let i = 0;
    while (i < 100) { Sys.print(i * i); i = i + 1; }
  }
}`
	// Different outputs so prefix/suffix trimming cannot bypass the table.
	src2 := strings.Replace(src, "i * i", "i * i + 1", 1)
	l, r := runTrace(t, src), runTrace(t, src2)
	_, err := LCSDiff(l, r, LCSOptions{MemoryBudget: 1000})
	if !errors.Is(err, lcs.ErrMemoryBudget) {
		t.Errorf("err = %v, want memory budget exhaustion", err)
	}
	// The views-based differ handles the same pair in bounded memory.
	vres := ViewDiff(l, r, ViewOptions{})
	checkInvariants(t, vres)
	if vres.NumDiffs() == 0 {
		t.Error("views differ found nothing")
	}
}

func TestDifferenceSequencesGroupContiguousRuns(t *testing.T) {
	mk := func(a, b int) string {
		return fmt.Sprintf(`
class Main {
  void main() {
    Sys.print("block1");
    Sys.print(%d);
    Sys.print("block2");
    Sys.print(%d);
    Sys.print("block3");
  }
}`, a, b)
	}
	l := runTrace(t, mk(1, 2))
	r := runTrace(t, mk(10, 20))
	res, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequences) != 2 {
		t.Errorf("sequences = %d, want 2 (one per changed print)\n%s",
			len(res.Sequences), res.Format(10))
	}
	for _, s := range res.Sequences {
		if s.Kind != Modify {
			t.Errorf("sequence kind = %v, want modify", s.Kind)
		}
	}
}

func TestDeleteAndInsertKinds(t *testing.T) {
	base := `
class Main {
  void main() {
    Sys.print("a");
    %s
    Sys.print("b");
  }
}`
	l := runTrace(t, fmt.Sprintf(base, `Sys.print("extra");`))
	r := runTrace(t, fmt.Sprintf(base, ""))
	res, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequences) != 1 || res.Sequences[0].Kind != Delete {
		t.Errorf("want one delete sequence, got %+v", res.Sequences)
	}
	res2, err := LCSDiff(r, l, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Sequences) != 1 || res2.Sequences[0].Kind != Insert {
		t.Errorf("want one insert sequence, got %+v", res2.Sequences)
	}
}

func TestMultithreadedDiffPerThread(t *testing.T) {
	mk := func(workB string) string {
		return `
class Worker {
  Int id;
  Worker(Int id) { super(); this.id = id; }
  void work(Int bias) {
    let i = 0;
    while (i < 10) { Sys.print(this.id * 1000 + i + bias); i = i + 1; }
  }
}
class Main {
  void main() {
    let a = new Worker(1);
    let b = new Worker(2);
    spawn { a.work(0); }
    spawn { b.work(` + workB + `); }
    Sys.print("main done");
  }
}`
	}
	l := runTrace(t, mk("0"))
	r := runTrace(t, mk("5")) // only worker b's behaviour changes
	res := ViewDiff(l, r, ViewOptions{})
	checkInvariants(t, res)
	if res.NumDiffs() == 0 {
		t.Fatal("no diffs found")
	}
	// All differences must be on worker b's thread: the other threads'
	// behaviour is unchanged and must correlate cleanly.
	for _, id := range res.DiffLeft {
		e := l.Entries[id]
		if s := e.String(); !strings.Contains(s, "work") && !strings.Contains(s, "100") &&
			!strings.Contains(s, "200") {
			t.Errorf("unexpected diff outside workers: %s", s)
		}
	}
	// Thread 1 (worker a) events must not appear among diffs.
	for _, id := range res.DiffLeft {
		if l.Entries[id].TID == 1 {
			t.Errorf("worker a entry %d flagged as diff: %s", id, l.Entries[id])
		}
	}
}

func TestViewDiffAbortedTrace(t *testing.T) {
	ok := `
class Main {
  void main() {
    Sys.print("q1");
    Sys.print("q2");
  }
}`
	bad := `
class Main {
  void main() {
    Sys.print("q1");
    Sys.abort("compile error");
    Sys.print("q2");
  }
}`
	l, r := runTrace(t, ok), runTrace(t, bad)
	res := ViewDiff(l, r, ViewOptions{})
	checkInvariants(t, res)
	if res.NumDiffs() == 0 {
		t.Error("divergence after abort must be flagged")
	}
}

func TestFormatOutput(t *testing.T) {
	l := runTrace(t, `class Main { void main() { Sys.print(1); } }`)
	r := runTrace(t, `class Main { void main() { Sys.print(2); } }`)
	res, err := LCSDiff(l, r, LCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format(0)
	if !strings.Contains(out, "sequence 1") || !strings.Contains(out, "differences") {
		t.Errorf("format output:\n%s", out)
	}
	// Truncation.
	out = res.Format(1)
	if out == "" {
		t.Error("empty format")
	}
}

func TestViewExplorationsCounted(t *testing.T) {
	l := runTrace(t, `class Main { void main() { Sys.print(1); Sys.print("x"); } }`)
	r := runTrace(t, `class Main { void main() { Sys.print(2); Sys.print("x"); } }`)
	// QuickScan < 0 disables the cheap lookahead so every divergence
	// exercises the exploration machinery.
	res := ViewDiff(l, r, ViewOptions{QuickScan: -1})
	if res.Stats.ViewExplorations == 0 {
		t.Error("divergence must trigger secondary-view exploration")
	}
	if res.Stats.Compares == 0 {
		t.Error("compares not counted")
	}
}
