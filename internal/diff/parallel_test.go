package diff

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/views"
)

// synthTraceMT builds a deterministic synthetic trace of n entries spread
// over several threads, rich enough to produce all four view types. The
// threads have no fork ancestry, so MatchThreads pairs them greedily by
// spawn order — deterministic, which is all the equivalence tests need.
func synthTraceMT(name string, n, threads int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.New(name)
	methods := []string{"A.run/0", "B.step/1", "C.emit/1"}
	for i := 0; i < n; i++ {
		tid := trace.ThreadID(rng.Intn(threads))
		obj := trace.Repr{Loc: trace.Loc(1 + rng.Intn(6)), Class: "C", Seq: 1 + rng.Intn(6)}
		val := trace.PrimRepr("Int", fmt.Sprint(rng.Intn(20)))
		var ev trace.Event
		switch rng.Intn(4) {
		case 0:
			ev = trace.Event{Kind: trace.KindGet, Target: obj, Member: "f", Args: []trace.Repr{val}}
		case 1:
			ev = trace.Event{Kind: trace.KindSet, Target: obj, Member: "f", Args: []trace.Repr{val}}
		case 2:
			ev = trace.Event{Kind: trace.KindCall, Target: obj, Member: methods[rng.Intn(3)], Args: []trace.Repr{val}}
		default:
			ev = trace.Event{Kind: trace.KindReturn, Target: obj, Member: methods[rng.Intn(3)]}
		}
		t.Append(tid, methods[rng.Intn(3)], obj, ev)
	}
	return t
}

// awaitGoroutines waits for the goroutine count to drop back to the
// baseline, tolerating runtime bookkeeping goroutines that need a moment
// to exit. It fails the test with a full stack dump if workers leak.
func awaitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestParallelDiffMatchesSerial is the equivalence property of the
// parallel refactor: for randomized multithreaded trace pairs, the diff
// at every worker count deep-equals the serial result — sequences,
// similarity sets, difference sets, and Stats included. The CI race job
// runs this under -race at -cpu=1,2,4.
func TestParallelDiffMatchesSerial(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for seed := int64(1); seed <= 6; seed++ {
		threads := 1 + int(seed)%4
		l := synthTraceMT("l", 300+int(seed*37)%200, threads, seed)
		r := mutateTrace(l, seed+100)
		wl, wr := views.Build(l), views.Build(r)

		serial := ViewDiffWebs(wl, wr, ViewOptions{Parallelism: 1})
		for _, workers := range []int{2, 4, 8} {
			par := ViewDiffWebs(wl, wr, ViewOptions{Parallelism: workers})
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("seed %d, workers=%d: parallel result diverged from serial\n"+
					"serial: diffs=%d seqs=%d stats=%+v\n"+
					"parallel: diffs=%d seqs=%d stats=%+v",
					seed, workers,
					serial.NumDiffs(), len(serial.Sequences), serial.Stats,
					par.NumDiffs(), len(par.Sequences), par.Stats)
			}
		}
	}
	awaitGoroutines(t, baseline)
}

// TestParallelDiffSharedCellBudget re-runs the equivalence with a tight
// shared lcs.Budget: units block on the pool instead of failing, so even
// a budget that fits exactly one window at a time must not change the
// result at any parallelism.
func TestParallelDiffSharedCellBudget(t *testing.T) {
	l := synthTraceMT("l", 400, 4, 17)
	r := mutateTrace(l, 18)
	wl, wr := views.Build(l), views.Build(r)

	// One 15-window LCS table is at most (2*15+2)^2 = 1024 cells.
	opts := ViewOptions{Parallelism: 1, LCSCellBudget: 1024}
	serial := ViewDiffWebs(wl, wr, opts)
	unbounded := ViewDiffWebs(wl, wr, ViewOptions{Parallelism: 1})
	if !reflect.DeepEqual(serial, unbounded) {
		t.Fatal("a budget large enough for every single window must not change the serial result")
	}
	for _, workers := range []int{2, 4, 8} {
		opts.Parallelism = workers
		par := ViewDiffWebs(wl, wr, opts)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d with shared budget diverged from serial", workers)
		}
	}
}

// TestParallelDiffCancellation proves all units unwind promptly: a
// pre-canceled context fails before any unit starts, and a cancellation
// mid-evaluation returns within a bounded delay with every worker
// goroutine gone.
func TestParallelDiffCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Two unrelated random traces diverge massively, making the diff far
	// slower than the cancellation lag below.
	l := synthTraceMT("l", 6000, 4, 5)
	r := synthTraceMT("r", 6000, 4, 99)
	wl, wr := views.Build(l), views.Build(r)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ViewDiffWebsCtx(ctx, wl, wr, ViewOptions{Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}
	awaitGoroutines(t, baseline)

	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ViewDiffWebsCtx(ctx, wl, wr, ViewOptions{Parallelism: 4})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond) // let units get into their hot loops
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		// A nil error would mean the whole diff beat a 2ms cancel — on
		// this workload that indicates the unwind path was skipped.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
		}
		if lag := time.Since(start); lag > 2*time.Second {
			t.Errorf("units took %v to unwind after cancel", lag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("diff did not unwind after cancellation")
	}
	awaitGoroutines(t, baseline)
}

// TestSerialPathSpawnsNoGoroutines pins the Parallelism=1 contract: the
// serial path is today's inline evaluation, not a one-worker pool.
func TestSerialPathSpawnsNoGoroutines(t *testing.T) {
	l := synthTraceMT("l", 200, 3, 7)
	r := mutateTrace(l, 8)
	wl, wr := views.Build(l), views.Build(r)
	before := runtime.NumGoroutine()
	ViewDiffWebs(wl, wr, ViewOptions{Parallelism: 1})
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("serial diff grew the goroutine count %d -> %d", before, after)
	}
}
