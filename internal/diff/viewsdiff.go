package diff

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/lcs"
	"repro/internal/trace"
	"repro/internal/views"
)

// ViewOptions are the tunables of the views-based differencing semantics.
type ViewOptions struct {
	// Window is ω: the fixed window size (entries on each side of the
	// linking entry) for LCS over correlated secondary views.
	Window int
	// Radius is δ: how far around the differing entries the linked
	// secondary views are collected (SIMILAR-FROM-LINKED-VIEWS).
	Radius int
	// MaxScan bounds the search for the next correspondence point in the
	// primary views, keeping the evaluation linear.
	MaxScan int
	// QuickScan is the cheap lookahead tried before secondary-view
	// exploration: divergences that resynchronize within this many skipped
	// entries (a handful of genuinely changed events) skip the exploration
	// machinery entirely.
	QuickScan int
	// MaxExplore caps the number of windowed-LCS computations per
	// divergence point, bounding per-divergence work by a constant — part
	// of the linear-complexity argument.
	MaxExplore int
	// Relaxed enables the context-sensitive correlation relaxation of §5:
	// views also correlate when their linking entries are the same
	// distance from the current point of divergence, tolerating renames
	// and split/merged methods. Relaxed pairs are only explored when the
	// standard correlation functions produced no usable anchors.
	Relaxed bool
	// Parallelism is the number of worker goroutines evaluating
	// correlated thread-view pairs concurrently. Each pair is an
	// independent work unit with its own similarity sets, memo table, and
	// counters; unit outputs are merged in ascending-left-tid order, so
	// the Result is byte-identical for every setting. 0 means
	// GOMAXPROCS; 1 is the serial path (no goroutines spawned).
	Parallelism int
	// LCSCellBudget caps the DP cells all units of this diff may hold
	// live at once during windowed-LCS exploration (0 = unlimited). Units
	// needing cells while the pool is full block until others release —
	// scheduling changes, results do not. Only a single window larger
	// than the whole budget fails its exploration, a condition
	// independent of scheduling, so determinism is preserved.
	LCSCellBudget int64
}

// DefaultViewOptions returns the configuration used throughout the
// evaluation.
func DefaultViewOptions() ViewOptions {
	return ViewOptions{Window: 15, Radius: 8, MaxScan: 1000, QuickScan: 2,
		MaxExplore: 32, Relaxed: true}
}

func (o ViewOptions) withDefaults() ViewOptions {
	d := DefaultViewOptions()
	if o.Window == 0 {
		o.Window = d.Window
	}
	if o.Radius == 0 {
		o.Radius = d.Radius
	}
	if o.MaxScan == 0 {
		o.MaxScan = d.MaxScan
	}
	if o.QuickScan == 0 {
		o.QuickScan = d.QuickScan
	}
	if o.MaxExplore == 0 {
		o.MaxExplore = d.MaxExplore
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}

// ViewDiff implements the views-based trace differencing semantics of
// Fig. 12. Correlated thread-view pairs (XTH) are evaluated in lock step:
// equal heads are consumed into Δ (STEP-VIEW-MATCH); at divergence points
// the secondary views linked near the diverging entries are explored with
// windowed LCS to find semantically similar entries — possibly very far
// apart in the thread views — and evaluation resumes at the next point of
// correspondence (STEP-VIEW-NOMATCH). The union of all pairs' Δ sets
// yields the final similarity set; differences follow by subtraction.
func ViewDiff(l, r *trace.Trace, opts ViewOptions) *Result {
	return ViewDiffWebs(views.Build(l), views.Build(r), opts)
}

// ViewDiffCtx is ViewDiff with cancellation: both web constructions and
// the differencing evaluation poll ctx and abort with its error.
func ViewDiffCtx(ctx context.Context, l, r *trace.Trace, opts ViewOptions) (*Result, error) {
	wl, err := views.BuildCtx(ctx, l)
	if err != nil {
		return nil, err
	}
	wr, err := views.BuildCtx(ctx, r)
	if err != nil {
		return nil, err
	}
	return ViewDiffWebsCtx(ctx, wl, wr, opts)
}

// ViewDiffWebs runs the views-based differencing semantics over
// pre-built view webs, skipping web construction entirely. This is the
// entry point for callers that amortize Build across many diffs — the
// corpus view cache hands the same *views.Web to concurrent requests.
// The webs (and their underlying traces) are only read, never written,
// so any number of ViewDiffWebs calls may share them; all mutable
// differencing state is per-call.
func ViewDiffWebs(wl, wr *views.Web, opts ViewOptions) *Result {
	res, _ := ViewDiffWebsCtx(context.Background(), wl, wr, opts)
	return res
}

// ViewDiffWebsCtx is ViewDiffWebs with cancellation and intra-diff
// parallelism. The paper's semantics evaluate each correlated
// thread-view pair independently, so the evaluation decomposes into one
// work unit per pair: units carry all mutable state (similarity sets,
// memo table, compare counter, anchor scratch, cancellation poller) and
// run on a bounded pool of ViewOptions.Parallelism workers. Their
// outputs are merged in ascending-left-tid order, which makes sequence
// ordering, filterSequences behavior, and Stats deterministic — the
// Result is byte-identical to the serial path regardless of scheduling.
//
// Cancellation: every unit polls ctx in its hot loops (lock-step pair
// walking, correspondence scans, DP rows); when ctx is canceled all
// units unwind within microseconds, queued units never start, and the
// context's error is returned with a nil result. This is the hook that
// lets the analysis service kill runaway diffs.
func ViewDiffWebsCtx(ctx context.Context, wl, wr *views.Web, opts ViewOptions) (*Result, error) {
	opts = opts.withDefaults()
	l, r := wl.Trace, wr.Trace
	tm := views.MatchThreads(l, r)

	// Deterministic order over matched pairs: ascending left tid. Units
	// are created, and their outputs merged, in this order.
	lids := make([]trace.ThreadID, 0, len(tm.Pairs))
	for lid := range tm.Pairs {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })

	budget := lcs.NewBudget(opts.LCSCellBudget)
	units := make([]*unit, len(lids))
	for i, lid := range lids {
		units[i] = newUnit(ctx, opts, wl, wr, lid, tm.Pairs[lid], budget)
	}
	runUnits(ctx, units, opts.Parallelism)
	for _, u := range units {
		if u.err != nil {
			return nil, u.err
		}
	}

	return mergeUnits(wl, wr, tm, units), nil
}

// mergeUnits performs the deterministic merge of evaluated units into a
// Result: sequences concatenate in unit (ascending left tid) order;
// similarity marks union — a unit may mark entries on other threads via
// cross-thread anchors, so subtraction and sequence filtering run only
// after every unit has merged. It is shared by the from-scratch path
// (ViewDiffWebsCtx) and the incremental path (Incremental.Rediff), which
// is what makes an incremental Result byte-identical to a from-scratch
// one over the same snapshot: the per-unit outputs are equal, and the
// merge is a pure function of them.
func mergeUnits(wl, wr *views.Web, tm views.ThreadMatch, units []*unit) *Result {
	l, r := wl.Trace, wr.Trace
	res := &Result{
		Left: l, Right: r,
		SimilarLeft:  make(map[trace.EntryID]bool),
		SimilarRight: make(map[trace.EntryID]bool),
	}
	var st Stats
	for _, u := range units {
		res.Sequences = append(res.Sequences, u.seqs...)
		for id := range u.similarLeft {
			res.SimilarLeft[id] = true
		}
		for id := range u.similarRight {
			res.SimilarRight[id] = true
		}
		st.Compares += u.compares
		st.ViewExplorations += u.explorations
		st.MemBytes += u.memBytes()
	}
	st.MemBytes += wl.MemBytes() + wr.MemBytes()

	// Unmatched threads: everything they did is a difference.
	for _, lid := range tm.LeftOnly {
		if v := wl.ThreadView(lid); v != nil {
			res.Sequences = append(res.Sequences, Sequence{Kind: Delete, Left: v.EIDs})
		}
	}
	for _, rid := range tm.RightOnly {
		if v := wr.ThreadView(rid); v != nil {
			res.Sequences = append(res.Sequences, Sequence{Kind: Insert, Right: v.EIDs})
		}
	}

	res.DiffLeft = diffsFromSimilar(l, res.SimilarLeft)
	res.DiffRight = diffsFromSimilar(r, res.SimilarRight)
	res.Sequences = filterSequences(res.Sequences, res.SimilarLeft, res.SimilarRight)
	res.Stats = st
	return res
}

// runUnits evaluates the units on a bounded worker pool. workers <= 1
// (or a single unit) runs inline on the caller's goroutine — the serial
// path spawns nothing. A canceled context is observed before each unit
// starts, so pending units fail fast instead of evaluating.
func runUnits(ctx context.Context, units []*unit, workers int) {
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, u := range units {
			if err := ctx.Err(); err != nil {
				u.err = err
				return
			}
			u.evalPair()
			if u.err != nil {
				return
			}
		}
		return
	}
	work := make(chan *unit, len(units))
	for _, u := range units {
		work <- u
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				if err := ctx.Err(); err != nil {
					u.err = err // drain cheaply; evalPair never starts
					continue
				}
				u.evalPair()
			}
		}()
	}
	wg.Wait()
}

// filterSequences drops entries that later exploration marked similar and
// removes empty sequences, re-deriving each sequence's kind. It runs on
// the merged sequence list with the merged similarity sets: anchors found
// by one unit can mark entries inside another unit's sequences, so
// filtering must happen after the merge.
func filterSequences(seqs []Sequence, similarLeft, similarRight map[trace.EntryID]bool) []Sequence {
	out := seqs[:0]
	for _, s := range seqs {
		var left, right []trace.EntryID
		for _, id := range s.Left {
			if !similarLeft[id] {
				left = append(left, id)
			}
		}
		for _, id := range s.Right {
			if !similarRight[id] {
				right = append(right, id)
			}
		}
		if len(left)+len(right) == 0 {
			continue
		}
		kind := Modify
		switch {
		case len(left) == 0:
			kind = Insert
		case len(right) == 0:
			kind = Delete
		}
		out = append(out, Sequence{Kind: kind, Left: left, Right: right})
	}
	return out
}
