package diff

import (
	"context"
	"sort"

	"repro/internal/lcs"
	"repro/internal/trace"
	"repro/internal/views"
)

// ViewOptions are the tunables of the views-based differencing semantics.
type ViewOptions struct {
	// Window is ω: the fixed window size (entries on each side of the
	// linking entry) for LCS over correlated secondary views.
	Window int
	// Radius is δ: how far around the differing entries the linked
	// secondary views are collected (SIMILAR-FROM-LINKED-VIEWS).
	Radius int
	// MaxScan bounds the search for the next correspondence point in the
	// primary views, keeping the evaluation linear.
	MaxScan int
	// QuickScan is the cheap lookahead tried before secondary-view
	// exploration: divergences that resynchronize within this many skipped
	// entries (a handful of genuinely changed events) skip the exploration
	// machinery entirely.
	QuickScan int
	// MaxExplore caps the number of windowed-LCS computations per
	// divergence point, bounding per-divergence work by a constant — part
	// of the linear-complexity argument.
	MaxExplore int
	// Relaxed enables the context-sensitive correlation relaxation of §5:
	// views also correlate when their linking entries are the same
	// distance from the current point of divergence, tolerating renames
	// and split/merged methods. Relaxed pairs are only explored when the
	// standard correlation functions produced no usable anchors.
	Relaxed bool
}

// DefaultViewOptions returns the configuration used throughout the
// evaluation.
func DefaultViewOptions() ViewOptions {
	return ViewOptions{Window: 15, Radius: 8, MaxScan: 1000, QuickScan: 2,
		MaxExplore: 32, Relaxed: true}
}

func (o ViewOptions) withDefaults() ViewOptions {
	d := DefaultViewOptions()
	if o.Window == 0 {
		o.Window = d.Window
	}
	if o.Radius == 0 {
		o.Radius = d.Radius
	}
	if o.MaxScan == 0 {
		o.MaxScan = d.MaxScan
	}
	if o.QuickScan == 0 {
		o.QuickScan = d.QuickScan
	}
	if o.MaxExplore == 0 {
		o.MaxExplore = d.MaxExplore
	}
	return o
}

// ViewDiff implements the views-based trace differencing semantics of
// Fig. 12. Correlated thread-view pairs (XTH) are evaluated in lock step:
// equal heads are consumed into Δ (STEP-VIEW-MATCH); at divergence points
// the secondary views linked near the diverging entries are explored with
// windowed LCS to find semantically similar entries — possibly very far
// apart in the thread views — and evaluation resumes at the next point of
// correspondence (STEP-VIEW-NOMATCH). The union of all pairs' Δ sets
// yields the final similarity set; differences follow by subtraction.
func ViewDiff(l, r *trace.Trace, opts ViewOptions) *Result {
	return ViewDiffWebs(views.Build(l), views.Build(r), opts)
}

// ViewDiffCtx is ViewDiff with cancellation: both web constructions and
// the differencing evaluation poll ctx and abort with its error.
func ViewDiffCtx(ctx context.Context, l, r *trace.Trace, opts ViewOptions) (*Result, error) {
	wl, err := views.BuildCtx(ctx, l)
	if err != nil {
		return nil, err
	}
	wr, err := views.BuildCtx(ctx, r)
	if err != nil {
		return nil, err
	}
	return ViewDiffWebsCtx(ctx, wl, wr, opts)
}

// ViewDiffWebs runs the views-based differencing semantics over
// pre-built view webs, skipping web construction entirely. This is the
// entry point for callers that amortize Build across many diffs — the
// corpus view cache hands the same *views.Web to concurrent requests.
// The webs (and their underlying traces) are only read, never written,
// so any number of ViewDiffWebs calls may share them; all mutable
// differencing state is per-call.
func ViewDiffWebs(wl, wr *views.Web, opts ViewOptions) *Result {
	res, _ := ViewDiffWebsCtx(context.Background(), wl, wr, opts)
	return res
}

// ViewDiffWebsCtx is ViewDiffWebs with cancellation. The evaluation's
// hot loops (lock-step pair walking and correspondence scans) poll ctx
// every few hundred steps; when it is canceled the evaluation unwinds
// immediately and the context's error is returned with a nil result.
// This is the hook that lets the analysis service kill runaway diffs.
func ViewDiffWebsCtx(ctx context.Context, wl, wr *views.Web, opts ViewOptions) (*Result, error) {
	opts = opts.withDefaults()
	l, r := wl.Trace, wr.Trace
	d := &differ{
		ctx:  ctx,
		opts: opts,
		cnt:  &counter{},
		wl:   wl,
		wr:   wr,
		res: &Result{
			Left: l, Right: r,
			SimilarLeft:  make(map[trace.EntryID]bool),
			SimilarRight: make(map[trace.EntryID]bool),
		},
	}
	tm := views.MatchThreads(l, r)

	// Deterministic order over matched pairs: ascending left tid.
	lids := make([]trace.ThreadID, 0, len(tm.Pairs))
	for lid := range tm.Pairs {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	for _, lid := range lids {
		d.evalPair(lid, tm.Pairs[lid])
	}
	if d.err != nil {
		return nil, d.err
	}

	// Unmatched threads: everything they did is a difference.
	for _, lid := range tm.LeftOnly {
		if v := d.wl.ThreadView(lid); v != nil {
			d.res.Sequences = append(d.res.Sequences, Sequence{Kind: Delete, Left: v.EIDs})
		}
	}
	for _, rid := range tm.RightOnly {
		if v := d.wr.ThreadView(rid); v != nil {
			d.res.Sequences = append(d.res.Sequences, Sequence{Kind: Insert, Right: v.EIDs})
		}
	}

	d.res.DiffLeft = diffsFromSimilar(l, d.res.SimilarLeft)
	d.res.DiffRight = diffsFromSimilar(r, d.res.SimilarRight)
	d.res.Sequences = d.filterSequences(d.res.Sequences)
	d.res.Stats = Stats{
		Compares:         d.cnt.compares,
		ViewExplorations: d.explorations,
		MemBytes: int64(l.Len()+r.Len())*48 + // view webs (indices + names)
			int64(len(d.memo))*24,
	}
	return d.res, nil
}

type differ struct {
	ctx          context.Context
	err          error // first ctx error observed; sticky
	steps        int   // cancellation-poll counter
	opts         ViewOptions
	cnt          *counter
	wl, wr       *views.Web
	res          *Result
	memo         map[memoKey]bool
	explorations int64
}

// canceled polls the context every 256 bumps. Once an error is observed
// it is sticky: every subsequent call reports true without touching the
// context again, so the evaluation unwinds through its nested loops in
// microseconds regardless of trace size.
func (d *differ) canceled() bool {
	if d.err != nil {
		return true
	}
	d.steps++
	if d.steps&255 != 0 {
		return false
	}
	d.err = d.ctx.Err()
	return d.err != nil
}

type memoKey struct {
	lv, rv           views.Name
	lBucket, rBucket int
}

// anchor is a pair of similar entries discovered in linked views, located
// by their positions in the current thread-view pair (-1 when the entry
// belongs to a different thread).
type anchor struct {
	posL, posR int
	eidL, eidR trace.EntryID
}

// evalPair evaluates one correlated thread-view pair under →V.
func (d *differ) evalPair(lid, rid trace.ThreadID) {
	lv, rv := d.wl.ThreadView(lid), d.wr.ThreadView(rid)
	if lv == nil || rv == nil {
		return
	}
	L, R := lv.EIDs, rv.EIDs
	thL := views.ThreadName(lid)
	thR := views.ThreadName(rid)

	var seq Sequence
	flush := func() {
		if seq.Size() > 0 {
			switch {
			case len(seq.Left) == 0:
				seq.Kind = Insert
			case len(seq.Right) == 0:
				seq.Kind = Delete
			default:
				seq.Kind = Modify
			}
			d.res.Sequences = append(d.res.Sequences, seq)
			seq = Sequence{}
		}
	}

	i, j := 0, 0
	desyncUntil := 0 // backoff threshold after a failed full resync
	failStreak := 0  // consecutive failed resyncs; escalates the scan limit
	for i < len(L) && j < len(R) {
		if d.canceled() {
			return
		}
		el, er := d.wl.Trace.Entries[L[i]], d.wr.Trace.Entries[R[j]]
		if d.cnt.equal(el, er) {
			// STEP-VIEW-MATCH
			flush()
			d.mark(L[i], R[j])
			i++
			j++
			continue
		}
		skip := func(ni, nj int) {
			for k := i; k < ni; k++ {
				seq.Left = append(seq.Left, L[k])
			}
			for k := j; k < nj; k++ {
				seq.Right = append(seq.Right, R[k])
			}
			i, j = ni, nj
		}
		// Cheap lookahead first: small genuine divergences resynchronize
		// within a few entries without any secondary-view work.
		if ni, nj, ok := d.scan(L, R, i, j, d.opts.QuickScan); ok {
			skip(ni, nj)
			continue
		}
		if i+j < desyncUntil {
			// A recent full scan found no correspondence point; the traces
			// are massively diverged here. Consume pairs cheaply until
			// we're past the region the failed scan already covered —
			// this bounds total scan work linearly.
			seq.Left = append(seq.Left, L[i])
			seq.Right = append(seq.Right, R[j])
			i++
			j++
			continue
		}
		// STEP-VIEW-NOMATCH: explore linked secondary views around the
		// diverging entries and collect similar entries.
		anchors := d.explore(thL, thR, L, R, i, j)
		for _, a := range anchors {
			d.mark(a.eidL, a.eidR)
		}
		// The scan limit escalates after consecutive failures so that
		// one-sided insertions larger than MaxScan (which a fixed-limit
		// scan with pairwise consumption would never realign past) are
		// eventually bridged; it is capped by the remaining work so total
		// scan cost stays proportional to the trace length.
		limit := d.opts.MaxScan << failStreak
		if rem := (len(L) - i) + (len(R) - j); limit > rem {
			limit = rem
		}
		if ni, nj, ok := d.resyncLimit(L, R, i, j, anchors, limit); ok {
			failStreak = 0
			skip(ni, nj)
			continue
		}
		// No correspondence point within bounds: back off and consume one
		// entry from each side as differences.
		if failStreak < 8 {
			failStreak++
		}
		desyncUntil = i + j + limit
		seq.Left = append(seq.Left, L[i])
		seq.Right = append(seq.Right, R[j])
		i++
		j++
	}
	if d.err != nil {
		return
	}
	for ; i < len(L); i++ {
		seq.Left = append(seq.Left, L[i])
	}
	for ; j < len(R); j++ {
		seq.Right = append(seq.Right, R[j])
	}
	flush()
}

func (d *differ) mark(l, r trace.EntryID) {
	d.res.SimilarLeft[l] = true
	d.res.SimilarRight[r] = true
}

// resync finds the next pair of corresponding entries (η2, η4): the
// closest equal pair ahead, where "closest" minimizes the total number of
// skipped entries — approximating the minimality side condition
// (γL′ ∩=e γR′ = ⟨⟩) of STEP-VIEW-NOMATCH. Anchor pairs discovered in
// secondary views bound the search; an anti-diagonal scan then looks for
// anything closer.
func (d *differ) resync(L, R []trace.EntryID, i, j int, anchors []anchor) (int, int, bool) {
	return d.resyncLimit(L, R, i, j, anchors, d.opts.MaxScan)
}

func (d *differ) resyncLimit(L, R []trace.EntryID, i, j int, anchors []anchor, limit int) (int, int, bool) {
	bestSum := -1
	bi, bj := 0, 0
	for _, a := range anchors {
		if a.posL < i || a.posR < j || (a.posL == i && a.posR == j) {
			continue
		}
		if sum := (a.posL - i) + (a.posR - j); bestSum == -1 || sum < bestSum {
			bestSum, bi, bj = sum, a.posL, a.posR
		}
	}
	scanTo := limit
	if bestSum != -1 && bestSum-1 < scanTo {
		scanTo = bestSum - 1
	}
	if ni, nj, ok := d.scan(L, R, i, j, scanTo); ok {
		return ni, nj, true
	}
	if bestSum != -1 {
		return bi, bj, true
	}
	return 0, 0, false
}

// scan searches anti-diagonals s = 1..limit for the nearest pair of equal
// entries ahead of (i, j), minimizing the total number of skipped entries.
// A candidate pair is "confirmed" when the following entries also match
// (or a trace ends there); a confirmed pair is preferred — resynchronizing
// on a spurious singleton match of a common event (the 0-or-null problem
// of §3.2) would cascade misalignment downstream. An unconfirmed
// candidate is kept as a fallback and returned if no confirmed pair turns
// up within a few further diagonals.
func (d *differ) scan(L, R []trace.EntryID, i, j, limit int) (int, int, bool) {
	fallbackI, fallbackJ := -1, -1
	fallbackDeadline := 0
	for s := 1; s <= limit; s++ {
		// Scans escalate to trace-length limits on massively diverged
		// inputs, so the scan itself must be cancellable; a late diagonal
		// alone can cost millions of comparisons, hence the inner poll.
		if d.canceled() {
			return 0, 0, false
		}
		if fallbackI >= 0 && s > fallbackDeadline {
			return fallbackI, fallbackJ, true
		}
		// Walk the anti-diagonal from its balanced middle outward: in
		// highly repetitive trace regions (scanning loops) every phase of
		// the repetition matches =e, and the balanced pair is the one
		// that keeps both sides in phase; a side-biased order would lock
		// onto a phase-shifted match and misalign everything after it.
		for k := 0; k <= s; k++ {
			if k&8191 == 8191 && d.canceled() {
				return 0, 0, false
			}
			di := s/2 + (k+1)/2
			if k%2 == 1 {
				di = s/2 - (k+1)/2
			}
			if di < 0 || di > s {
				continue
			}
			dj := s - di
			if i+di >= len(L) || j+dj >= len(R) {
				continue
			}
			if !d.cnt.equal(d.wl.Trace.Entries[L[i+di]], d.wr.Trace.Entries[R[j+dj]]) {
				continue
			}
			confirmed := i+di+1 >= len(L) || j+dj+1 >= len(R) ||
				d.cnt.equal(d.wl.Trace.Entries[L[i+di+1]], d.wr.Trace.Entries[R[j+dj+1]])
			if confirmed {
				return i + di, j + dj, true
			}
			if fallbackI < 0 {
				fallbackI, fallbackJ = i+di, j+dj
				fallbackDeadline = s + 8
			}
		}
	}
	if fallbackI >= 0 {
		return fallbackI, fallbackJ, true
	}
	return 0, 0, false
}

// explore implements SIMILAR-FROM-LINKED-VIEWS: for entries η5/η6 within δ
// of the diverging entries in the two thread views, correlated secondary
// views (matching views) are compared by LCS over fixed-size windows
// around the linking entries; every matched pair is a similar-entry
// anchor.
//
// Candidate pairs come from an index over the correlation keys (method
// signature, object class+seq, object value) rather than a cross product,
// so per-divergence work is bounded by the number of distinct linked
// views. The §5 relaxed pairs are a fallback used only when standard
// correlation yields no anchors ahead of the divergence point.
func (d *differ) explore(thL, thR views.Name, L, R []trace.EntryID, i, j int) []anchor {
	if d.memo == nil {
		d.memo = make(map[memoKey]bool)
	}
	lc := d.collectLinked(d.wl, L, i)
	rc := d.collectLinked(d.wr, R, j)

	// Index the right side by correlation keys.
	byKey := make(map[corrKey]linked, len(rc))
	for _, rk := range rc {
		keys, n := correlationKeys(rk)
		for _, k := range keys[:n] {
			if _, dup := byKey[k]; !dup {
				byKey[k] = rk
			}
		}
	}

	budget := d.opts.MaxExplore
	var out []anchor
	// The thread views themselves are trivially correlated (they are the
	// pair being evaluated): a local window LCS around the divergence
	// point anchors nearby reorderings.
	out = append(out, d.windowLCS(thL, thR,
		linked{name: thL, eid: L[i], offset: 0},
		linked{name: thR, eid: R[j], offset: 0}, &budget)...)
	for _, lk := range lc {
		if budget <= 0 {
			break
		}
		keys, n := correlationKeys(lk)
		for _, k := range keys[:n] {
			rk, ok := byKey[k]
			if !ok || rk.name.Type != lk.name.Type {
				continue
			}
			out = append(out, d.windowLCS(thL, thR, lk, rk, &budget)...)
			break
		}
	}
	if d.opts.Relaxed && !anyAhead(out, i, j) {
		// Relaxed context-sensitive correlation: pair views whose linking
		// entries sit at the same distance from the point of divergence,
		// tolerating renamed/split/combined methods.
		byOffset := make(map[int]linked, len(rc))
		for _, rk := range rc {
			if _, dup := byOffset[rk.offset]; !dup {
				byOffset[rk.offset] = rk
			}
		}
		for _, lk := range lc {
			if budget <= 0 {
				break
			}
			rk, ok := byOffset[lk.offset]
			if !ok || rk.name.Type != lk.name.Type {
				continue
			}
			out = append(out, d.windowLCS(thL, thR, lk, rk, &budget)...)
		}
	}
	return out
}

// corrKey is one Xτ correlation criterion of a linked view, encoded as a
// comparable struct of interned symbols and small integers — map keys on
// the exploration path are built without any string formatting.
type corrKey struct {
	kind    uint8 // one of the ck* key kinds
	a, b, c uint64
}

const (
	ckInvalid   uint8 = iota
	ckMethod          // a = method symbol
	ckTargetSeq       // a = class symbol, b = creation seq
	ckTargetVal       // a = class symbol, b = value hash, c = value-string symbol
	ckActiveSeq       // a = class symbol, b = creation seq
)

// correlationKeys encodes the Xτ correlation criteria of a linked view:
// method signature for CM; class+seq and class+value for TO; class+seq
// for AO (either TO criterion suffices, §3.1). Returns the keys in a
// fixed-size array to keep the exploration path allocation-free.
func correlationKeys(lk linked) ([2]corrKey, int) {
	var keys [2]corrKey
	switch lk.name.Type {
	case views.Method:
		keys[0] = corrKey{kind: ckMethod, a: lk.name.Key}
		return keys, 1
	case views.TargetObject:
		t := lk.entry.Event.Target
		n := 0
		if t.Loc != trace.NoLoc && t.Seq != 0 {
			keys[n] = corrKey{kind: ckTargetSeq, a: uint64(t.ClassSym), b: uint64(t.Seq)}
			n++
		}
		if t.HasValue() {
			keys[n] = corrKey{kind: ckTargetVal, a: uint64(t.ClassSym), b: t.Hash, c: uint64(t.StrSym)}
			n++
		}
		return keys, n
	case views.ActiveObject:
		s := lk.entry.Self
		if s.Loc != trace.NoLoc && s.Seq != 0 {
			keys[0] = corrKey{kind: ckActiveSeq, a: uint64(s.ClassSym), b: uint64(s.Seq)}
			return keys, 1
		}
	}
	return keys, 0
}

func anyAhead(anchors []anchor, i, j int) bool {
	for _, a := range anchors {
		if a.posL >= i && a.posR >= j && !(a.posL == i && a.posR == j) {
			return true
		}
	}
	return false
}

// linked is a secondary view reachable from an entry near the divergence
// point, with the linking entry and its thread-view offset.
type linked struct {
	name   views.Name
	eid    trace.EntryID
	entry  trace.Entry
	offset int // distance from the divergence point in the thread view
}

// collectLinked gathers the distinct non-thread views linked from entries
// within ±δ of position pos in the thread view, keeping the first linking
// entry per view.
func (d *differ) collectLinked(w *views.Web, tv []trace.EntryID, pos int) []linked {
	seen := make(map[views.Name]bool)
	var out []linked
	lo, hi := pos-d.opts.Radius, pos+d.opts.Radius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(tv) {
		hi = len(tv) - 1
	}
	for p := lo; p <= hi; p++ {
		eid := tv[p]
		for _, n := range w.NamesOf(eid) {
			if n.Type == views.Thread || seen[n] {
				continue
			}
			seen[n] = true
			out = append(out, linked{
				name:   n,
				eid:    eid,
				entry:  w.Trace.Entries[eid],
				offset: p - pos,
			})
		}
	}
	return out
}

// windowLCS computes the LCS over fixed ω-windows of a correlated view
// pair, centered at the linking entries, and converts matched pairs into
// anchors (memoized per window bucket so repeated divergences nearby do
// not recompute the same comparison).
func (d *differ) windowLCS(thL, thR views.Name, lk, rk linked, budget *int) []anchor {
	if *budget <= 0 {
		return nil
	}
	lpos, okL := d.wl.PosIn(lk.name, lk.eid)
	rpos, okR := d.wr.PosIn(rk.name, rk.eid)
	if !okL || !okR {
		return nil
	}
	key := memoKey{lk.name, rk.name, lpos / d.opts.Window, rpos / d.opts.Window}
	if d.memo[key] {
		return nil
	}
	d.memo[key] = true
	d.explorations++
	*budget--

	lwin := d.wl.Window(lk.name, lk.eid, d.opts.Window)
	rwin := d.wr.Window(rk.name, rk.eid, d.opts.Window)
	if len(lwin) == 0 || len(rwin) == 0 {
		return nil
	}
	eq := func(a, b int) bool {
		return d.cnt.equal(d.wl.Trace.Entries[lwin[a]], d.wr.Trace.Entries[rwin[b]])
	}
	pairs, _, err := lcs.Compute(len(lwin), len(rwin), eq, lcs.Options{})
	if err != nil {
		return nil
	}
	out := make([]anchor, 0, len(pairs))
	for _, p := range pairs {
		a := anchor{eidL: lwin[p.I], eidR: rwin[p.J], posL: -1, posR: -1}
		if pos, ok := d.wl.PosIn(thL, a.eidL); ok {
			a.posL = pos
		}
		if pos, ok := d.wr.PosIn(thR, a.eidR); ok {
			a.posR = pos
		}
		out = append(out, a)
	}
	return out
}

// filterSequences drops entries that later exploration marked similar and
// removes empty sequences, re-deriving each sequence's kind.
func (d *differ) filterSequences(seqs []Sequence) []Sequence {
	out := seqs[:0]
	for _, s := range seqs {
		var left, right []trace.EntryID
		for _, id := range s.Left {
			if !d.res.SimilarLeft[id] {
				left = append(left, id)
			}
		}
		for _, id := range s.Right {
			if !d.res.SimilarRight[id] {
				right = append(right, id)
			}
		}
		if len(left)+len(right) == 0 {
			continue
		}
		kind := Modify
		switch {
		case len(left) == 0:
			kind = Insert
		case len(right) == 0:
			kind = Delete
		}
		out = append(out, Sequence{Kind: kind, Left: left, Right: right})
	}
	return out
}
