// Package interp executes programs of the mini-Java language under the
// operational semantics of the paper's Fig. 6, emitting an execution trace
// as it runs. It plays the role RPRISM's AspectJ load-time weaver plays
// for Java: the dynamic instrumentation substrate. It supports
// deterministic multithreading (FORK-E / END-E), pointcut-style event
// filters, trace segmentation, and reflection / run-time class definition
// intrinsics that model dynamic code generation.
package interp

import (
	"fmt"
	"strconv"

	"repro/internal/trace"
)

// Kind tags runtime values.
type Kind uint8

const (
	KNull Kind = iota
	KBool
	KInt
	KFloat
	KStr
	KRef
)

// Value is a runtime value: one of the value objects D(d) of Fig. 3 or a
// heap reference l(C).
type Value struct {
	Kind  Kind
	Bool  bool
	Int   int64
	Float float64
	Str   string
	Ref   trace.Loc
}

// NullV is the null reference.
func NullV() Value { return Value{Kind: KNull} }

// BoolV wraps a Bool value object.
func BoolV(b bool) Value { return Value{Kind: KBool, Bool: b} }

// IntV wraps an Int value object.
func IntV(v int64) Value { return Value{Kind: KInt, Int: v} }

// FloatV wraps a Float value object.
func FloatV(v float64) Value { return Value{Kind: KFloat, Float: v} }

// StrV wraps a String value object.
func StrV(s string) Value { return Value{Kind: KStr, Str: s} }

// RefV wraps a heap reference.
func RefV(l trace.Loc) Value { return Value{Kind: KRef, Ref: l} }

// TypeName returns the D type name for value objects, or "null"/"ref".
func (v Value) TypeName() string {
	switch v.Kind {
	case KNull:
		return "null"
	case KBool:
		return "Bool"
	case KInt:
		return "Int"
	case KFloat:
		return "Float"
	case KStr:
		return "String"
	default:
		return "ref"
	}
}

// Literal renders the primitive literal d for value objects.
func (v Value) Literal() string {
	switch v.Kind {
	case KNull:
		return "null"
	case KBool:
		return strconv.FormatBool(v.Bool)
	case KInt:
		return strconv.FormatInt(v.Int, 10)
	case KFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KStr:
		return v.Str
	default:
		return fmt.Sprintf("ref@%d", v.Ref)
	}
}

// Equal is the == semantics of the language: structural on value objects,
// reference identity on heap objects, and null == null.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// Int/Float comparisons promote.
		if v.Kind == KInt && o.Kind == KFloat {
			return float64(v.Int) == o.Float
		}
		if v.Kind == KFloat && o.Kind == KInt {
			return v.Float == float64(o.Int)
		}
		return false
	}
	switch v.Kind {
	case KNull:
		return true
	case KBool:
		return v.Bool == o.Bool
	case KInt:
		return v.Int == o.Int
	case KFloat:
		return v.Float == o.Float
	case KStr:
		return v.Str == o.Str
	default:
		return v.Ref == o.Ref
	}
}
