package interp

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/trace"
)

func run(t *testing.T, src string, args ...string) *Result {
	t.Helper()
	res, err := Run(lang.MustParse(src), Options{Args: args})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func mustSucceed(t *testing.T, res *Result) *Result {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("runtime error: %v\noutput:\n%s", res.Err, res.Output)
	}
	return res
}

func TestHelloWorld(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    Sys.print("hello");
  }
}`))
	if res.Output != "hello\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  Int fib(Int n) {
    if (n < 2) { return n; }
    return this.fib(n - 1) + this.fib(n - 2);
  }
  void main() {
    let i = 0;
    let acc = 0;
    while (i < 10) {
      acc = acc + this.fib(i);
      i = i + 1;
    }
    Sys.print(acc);
    Sys.print(7 % 3);
    Sys.print(1.5 + 2);
    Sys.print(10 / 4);
    Sys.print(-(3) * 2);
  }
}`))
	want := "88\n1\n3.5\n2\n-6\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestFieldsAndConstructors(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Range {
  Int min;
  Int max;
  Range(Int a, Int b) {
    super();
    this.min = a;
    this.max = b;
  }
  Bool contains(Int x) { return x >= this.min && x <= this.max; }
}
class Main {
  void main() {
    let r = new Range(32, 127);
    Sys.print(r.contains(31));
    Sys.print(r.contains(32));
    Sys.print(r.min);
  }
}`))
	if res.Output != "false\ntrue\n32\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestInheritanceAndDynamicDispatch(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Animal {
  String noise() { return "?"; }
  String speak() { return "I say " + this.noise(); }
}
class Dog extends Animal {
  String noise() { return "woof"; }
}
class Puppy extends Dog {
}
class Main {
  void main() {
    Sys.print(new Puppy().speak());
    Sys.print(new Animal().speak());
  }
}`))
	if res.Output != "I say woof\nI say ?\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestSuperConstructorChaining(t *testing.T) {
	res := mustSucceed(t, run(t, `
class A {
  Int x;
  A(Int v) { super(); this.x = v; }
}
class B extends A {
  Int y;
  B(Int v) { super(v * 2); this.y = v; }
}
class Main {
  void main() {
    let b = new B(5);
    Sys.print(b.x);
    Sys.print(b.y);
  }
}`))
	if res.Output != "10\n5\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestStringBuiltins(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    let s = "text/html";
    Sys.print(s.equals("text/html"));
    Sys.print(s.length());
    Sys.print(s.contains("html"));
    Sys.print(s.substring(0, 4));
    Sys.print(s.charAt(0));
    Sys.print(s.indexOf("/"));
    Sys.print("a".concat("b"));
    Sys.print(s.startsWith("text"));
    Sys.print("x" + 1 + true);
    Sys.print(42 .toStr());
  }
}`))
	want := "true\n9\ntrue\ntext\n116\n4\nab\ntrue\nx1true\n42\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestProgramArgs(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    Sys.print(Sys.numArgs());
    Sys.print(Sys.arg(0));
    Sys.print(Sys.parseInt(Sys.arg(1)) + 1);
    Sys.print(Sys.arg(9));
  }
}`, "text/html", "41"))
	if res.Output != "2\ntext/html\n42\n\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"null deref field", `class C { Int x; } class Main { void main() { let c = null; Sys.print(c.x); } }`, "null dereference"},
		{"null deref call", `class Main { void main() { let c = null; c.m(); } }`, "null dereference"},
		{"no such method", `class C {} class Main { void main() { new C().m(); } }`, "no method"},
		{"no such field", `class C {} class Main { void main() { let c = new C(); Sys.print(c.x); } }`, "no field"},
		{"unknown class", `class Main { void main() { let x = new Nope(); } }`, "unknown class"},
		{"div by zero", `class Main { void main() { let x = 1 / 0; } }`, "division by zero"},
		{"mod by zero", `class Main { void main() { let x = 1 % 0; } }`, "modulo by zero"},
		{"bad condition", `class Main { void main() { if (1) { } } }`, "not Bool"},
		{"arity", `class C { Int f(Int x) { return x; } } class Main { void main() { new C().f(); } }`, "expects 1"},
		{"ctor arity", `class C { C(Int x) { super(); } } class Main { void main() { let c = new C(); } }`, "expects 1"},
		{"abort", `class Main { void main() { Sys.abort("query compilation failed"); } }`, "query compilation failed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, c.src)
			if res.Err == nil {
				t.Fatalf("expected runtime error containing %q", c.frag)
			}
			if !strings.Contains(res.Err.Error(), c.frag) {
				t.Errorf("error %q does not contain %q", res.Err, c.frag)
			}
		})
	}
}

func TestAbortKeepsPartialTrace(t *testing.T) {
	res := run(t, `
class Main {
  void main() {
    Sys.print("before");
    Sys.abort("boom");
    Sys.print("after");
  }
}`)
	if res.Err == nil || !res.Err.Aborted {
		t.Fatalf("want abort, got %v", res.Err)
	}
	if !strings.Contains(res.Output, "before") || strings.Contains(res.Output, "after") {
		t.Errorf("output = %q", res.Output)
	}
	if res.Trace.Len() == 0 {
		t.Error("trace should contain pre-abort entries")
	}
}

func TestStepBudget(t *testing.T) {
	res, err := Run(lang.MustParse(`
class Main {
  void main() {
    while (true) { let x = 1; }
  }
}`), Options{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Msg, "step budget") {
		t.Errorf("want step budget error, got %v", res.Err)
	}
}

func TestSetupErrors(t *testing.T) {
	if _, err := Run(lang.MustParse(`class C {}`), Options{}); err == nil {
		t.Error("missing Main must fail")
	}
	if _, err := Run(lang.MustParse(`class Main {}`), Options{}); err == nil {
		t.Error("missing main method must fail")
	}
	if _, err := Run(lang.MustParse(`class Main { void main() { return y; } }`), Options{}); err == nil {
		t.Error("check errors must fail")
	}
}

// ---- trace semantics (Fig. 6) ----

func kinds(tr *trace.Trace) []trace.EventKind {
	var out []trace.EventKind
	for _, e := range tr.Entries {
		out = append(out, e.Event.Kind)
	}
	return out
}

func findEntries(tr *trace.Trace, kind trace.EventKind, member string) []trace.Entry {
	var out []trace.Entry
	for _, e := range tr.Entries {
		if e.Event.Kind == kind && (member == "" || e.Event.Member == member) {
			out = append(out, e)
		}
	}
	return out
}

func TestTraceShapeOfSimpleRun(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Util {
  Int min;
  Util(Int m) { super(); this.min = m; }
  Bool ok(Int x) { return x >= this.min; }
}
class Main {
  void main() {
    let u = new Util(32);
    Sys.print(u.ok(40));
  }
}`))
	tr := res.Trace

	inits := findEntries(tr, trace.KindInit, "Util")
	if len(inits) != 1 {
		t.Fatalf("want 1 Util init event, got %d", len(inits))
	}
	init := inits[0]
	if len(init.Event.Args) != 1 || init.Event.Args[0].Str != "Int:[32]" {
		t.Errorf("init args = %v", init.Event.Args)
	}
	if init.Event.Target.Class != "Util" || init.Event.Target.Seq != 1 {
		t.Errorf("init target = %+v", init.Event.Target)
	}

	sets := findEntries(tr, trace.KindSet, "min")
	if len(sets) != 1 {
		t.Fatalf("want 1 set event, got %d", len(sets))
	}
	if sets[0].Method != "Util.<init>/1" {
		t.Errorf("set context method = %q", sets[0].Method)
	}

	gets := findEntries(tr, trace.KindGet, "min")
	if len(gets) != 1 || gets[0].Method != "Util.ok/1" {
		t.Fatalf("get events = %+v", gets)
	}

	calls := findEntries(tr, trace.KindCall, "Util.ok/1")
	if len(calls) != 1 {
		t.Fatalf("want 1 call to Util.ok, got %d", len(calls))
	}
	// Call recorded in the caller's context (METH-E).
	if calls[0].Method != "Main.main/0" {
		t.Errorf("call context = %q, want Main.main/0", calls[0].Method)
	}
	rets := findEntries(tr, trace.KindReturn, "Util.ok/1")
	if len(rets) != 1 || rets[0].Method != "Main.main/0" {
		t.Fatalf("return events = %+v", rets)
	}
	if len(rets[0].Event.Args) != 1 || rets[0].Event.Args[0].Str != "Bool:[true]" {
		t.Errorf("return value repr = %v", rets[0].Event.Args)
	}
}

func TestValueRepresentationsRecursive(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Inner {
  Int v;
  Inner(Int v) { super(); this.v = v; }
}
class Outer {
  Inner inner;
  Outer(Inner i) { super(); this.inner = i; }
}
class Main {
  void main() {
    let o = new Outer(new Inner(7));
    let x = o.inner;
  }
}`))
	gets := findEntries(res.Trace, trace.KindGet, "inner")
	if len(gets) != 1 {
		t.Fatalf("gets = %+v", gets)
	}
	tgt := gets[0].Event.Target
	if tgt.Str != "Outer:[Inner:[Int:[7]]]" {
		t.Errorf("outer repr = %q", tgt.Str)
	}
}

func TestOpaqueClassHasEmptyValueRepr(t *testing.T) {
	res := mustSucceed(t, run(t, `
opaque class Log {
  void add(String m) { return; }
}
class Main {
  void main() {
    let l = new Log();
    l.add("x");
  }
}`))
	calls := findEntries(res.Trace, trace.KindCall, "Log.add/1")
	if len(calls) != 1 {
		t.Fatalf("calls = %+v", calls)
	}
	if calls[0].Event.Target.HasValue() {
		t.Errorf("opaque target must have empty value repr: %+v", calls[0].Event.Target)
	}
	if calls[0].Event.Target.Seq != 1 {
		t.Errorf("seq = %d", calls[0].Event.Target.Seq)
	}
}

func TestCreationSequenceNumbers(t *testing.T) {
	res := mustSucceed(t, run(t, `
class C {}
class D {}
class Main {
  void main() {
    let a = new C();
    let b = new C();
    let c = new D();
  }
}`))
	inits := findEntries(res.Trace, trace.KindInit, "")
	var seqs []int
	for _, e := range inits {
		if e.Event.Member == "C" || e.Event.Member == "D" {
			seqs = append(seqs, e.Event.Target.Seq)
		}
	}
	want := []int{1, 2, 1}
	if len(seqs) != 3 || seqs[0] != want[0] || seqs[1] != want[1] || seqs[2] != want[2] {
		t.Errorf("seqs = %v, want %v", seqs, want)
	}
}

func TestCyclicObjectsSerializeWithoutHanging(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Node {
  Node next;
}
class Main {
  void main() {
    let a = new Node();
    let b = new Node();
    a.next = b;
    b.next = a;
    let x = a.next;
  }
}`))
	if res.Trace.Len() == 0 {
		t.Fatal("no trace")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
class Worker {
  Int id;
  Worker(Int id) { super(); this.id = id; }
  void work() {
    let i = 0;
    while (i < 20) { Sys.print(this.id * 100 + i); i = i + 1; }
  }
}
class Main {
  void main() {
    let w1 = new Worker(1);
    let w2 = new Worker(2);
    spawn { w1.work(); }
    spawn { w2.work(); }
    let i = 0;
    while (i < 20) { Sys.print(i); i = i + 1; }
  }
}`
	first := run(t, src)
	for k := 0; k < 3; k++ {
		again := run(t, src)
		if again.Output != first.Output {
			t.Fatal("outputs differ across runs")
		}
		if again.Trace.Len() != first.Trace.Len() {
			t.Fatal("trace lengths differ across runs")
		}
		for j := range first.Trace.Entries {
			if !trace.EventEqual(first.Trace.Entries[j], again.Trace.Entries[j]) {
				t.Fatalf("entry %d differs across runs", j)
			}
			if first.Trace.Entries[j].TID != again.Trace.Entries[j].TID {
				t.Fatalf("entry %d thread differs across runs", j)
			}
		}
	}
}

func TestThreadsInterleaveAndFork(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void run(Int n) {
    let i = 0;
    while (i < n) { Sys.print("w" + i); i = i + 1; }
  }
  void main() {
    spawn { this.run(30); }
    let i = 0;
    while (i < 30) { Sys.print("m" + i); i = i + 1; }
  }
}`))
	tr := res.Trace
	forks := findEntries(tr, trace.KindFork, "")
	if len(forks) != 1 {
		t.Fatalf("forks = %d", len(forks))
	}
	if len(forks[0].Event.Stack) == 0 {
		t.Error("fork must record spawn ancestry")
	}
	ends := findEntries(tr, trace.KindEnd, "")
	if len(ends) != 2 {
		t.Errorf("ends = %d, want 2 (main + worker)", len(ends))
	}
	ids := tr.ThreadIDs()
	if len(ids) != 2 {
		t.Fatalf("thread ids = %v", ids)
	}
	// Both threads' outputs must be complete.
	if !strings.Contains(res.Output, "m29") || !strings.Contains(res.Output, "w29") {
		t.Errorf("missing output lines:\n%s", res.Output)
	}
	// With quantum 50 and >50 events per thread, output must interleave:
	// some worker line must appear before the last main line.
	wIdx := strings.Index(res.Output, "w0")
	mLast := strings.Index(res.Output, "m29")
	if wIdx == -1 || mLast == -1 || wIdx > mLast {
		t.Errorf("threads did not interleave: w0@%d m29@%d", wIdx, mLast)
	}
}

func TestNestedSpawnAncestry(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    spawn {
      spawn {
        Sys.print("grandchild");
      }
      Sys.print("child");
    }
    Sys.print("parent");
  }
}`))
	forks := findEntries(res.Trace, trace.KindFork, "")
	if len(forks) != 2 {
		t.Fatalf("forks = %d", len(forks))
	}
	// The second fork (from the child) must have deeper ancestry than the first.
	if len(forks[1].Event.Stack) <= len(forks[0].Event.Stack) {
		t.Errorf("grandchild ancestry depth %d should exceed child's %d",
			len(forks[1].Event.Stack), len(forks[0].Event.Stack))
	}
}

func TestSpawnCapturesLocalsByValue(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    let x = 1;
    spawn { Sys.print("spawned " + x); }
    x = 2;
    Sys.print("main " + x);
  }
}`))
	if !strings.Contains(res.Output, "spawned 1") {
		t.Errorf("spawn must capture locals at spawn time:\n%s", res.Output)
	}
}

func TestReflectIntrinsics(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Greeter {
  String who;
  Greeter(String w) { super(); this.who = w; }
  String greet() { return "hi " + this.who; }
}
class Main {
  void main() {
    let g = Reflect.create("Greeter", "bob");
    Sys.print(Reflect.call(g, "greet"));
    Sys.print(Reflect.hasClass("Greeter"));
    Sys.print(Reflect.hasClass("Nope"));
    Sys.print(Reflect.className(g));
  }
}`))
	want := "hi bob\ntrue\nfalse\nGreeter\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestRuntimeDefineClass(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    let src = "class Gen { Int mul(Int x) { return x * 3; } }";
    Runtime.defineClass(src);
    let g = Reflect.create("Gen");
    Sys.print(Reflect.call(g, "mul", 14));
  }
}`))
	if res.Output != "42\n" {
		t.Errorf("output = %q", res.Output)
	}
	// The generated class's execution appears in the trace like any other.
	calls := findEntries(res.Trace, trace.KindCall, "Gen.mul/1")
	if len(calls) != 1 {
		t.Errorf("calls to generated code = %d, want 1", len(calls))
	}
}

func TestRuntimeDefineClassErrors(t *testing.T) {
	res := run(t, `
class Main {
  void main() {
    Runtime.defineClass("class {");
  }
}`)
	if res.Err == nil || !strings.Contains(res.Err.Msg, "parse") {
		t.Errorf("want parse error, got %v", res.Err)
	}
	res = run(t, `
class Main {
  void main() {
    Runtime.defineClass("class Main { }");
  }
}`)
	if res.Err == nil || !strings.Contains(res.Err.Msg, "duplicate") {
		t.Errorf("want duplicate error, got %v", res.Err)
	}
}

func TestPointcutExcludesLibraryInternals(t *testing.T) {
	src := `
class Lib {
  Int help(Int x) {
    let noise = 0;
    let i = 0;
    while (i < 10) { noise = noise + this.internal(i); i = i + 1; }
    return noise;
  }
  Int internal(Int x) { return x; }
}
class Main {
  void main() {
    let l = new Lib();
    Sys.print(l.help(1));
  }
}`
	prog := lang.MustParse(src)
	full, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := Run(prog, Options{Pointcut: &Pointcut{ExcludeClasses: []string{"Lib"}}})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Trace.Len() >= full.Trace.Len() {
		t.Fatalf("filter did not shrink trace: %d vs %d", filtered.Trace.Len(), full.Trace.Len())
	}
	// The call *into* Lib.help remains (recorded in Main.main's context)...
	if n := len(findEntries(filtered.Trace, trace.KindCall, "Lib.help/1")); n != 1 {
		t.Errorf("calls into excluded class = %d, want 1", n)
	}
	// ...but events *within* Lib methods are gone.
	if n := len(findEntries(filtered.Trace, trace.KindCall, "Lib.internal/1")); n != 0 {
		t.Errorf("internal calls recorded despite exclusion: %d", n)
	}
	// Outputs agree: filtering changes observation, not semantics.
	if full.Output != filtered.Output {
		t.Error("pointcut filtering changed program output")
	}
}

func TestPointcutPrefixPattern(t *testing.T) {
	pc := &Pointcut{ExcludeClasses: []string{"java*"}, ExcludeMethods: []string{"C.noisy/0"}}
	if pc.AllowContext("javautil", "javautil.x/0") {
		t.Error("prefix pattern must match")
	}
	if pc.AllowContext("C", "C.noisy/0") {
		t.Error("method exclusion must match")
	}
	if !pc.AllowContext("C", "C.fine/0") {
		t.Error("non-matching context must be allowed")
	}
}

func TestEIDsConsecutive(t *testing.T) {
	res := mustSucceed(t, run(t, `
class Main {
  void main() {
    spawn { Sys.print("a"); }
    Sys.print("b");
  }
}`))
	for i, e := range res.Trace.Entries {
		if int(e.EID) != i {
			t.Fatalf("entry %d has eid %d", i, e.EID)
		}
	}
}

func TestTraceKindsWellFormed(t *testing.T) {
	res := mustSucceed(t, run(t, `
class C {
  Int f;
  Int get() { return this.f; }
}
class Main {
  void main() {
    let c = new C();
    c.f = 3;
    Sys.print(c.get());
  }
}`))
	for _, k := range kinds(res.Trace) {
		if k == trace.KindEOF {
			t.Error("fresh trace must not contain eof entries")
		}
	}
}

func TestSegmentedTracingMatchesInMemory(t *testing.T) {
	src := `
class Acc {
  Int total;
  void add(Int x) { this.total = this.total + x; return; }
}
class Main {
  void main() {
    let acc = new Acc();
    let i = 0;
    while (i < 50) { acc.add(i); i = i + 1; }
    Sys.print(acc.total);
  }
}`
	prog := lang.MustParse(src)
	mem, err := Run(prog, Options{TraceName: "seg"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	segRes, err := Run(prog, Options{TraceName: "seg", SegmentDir: dir, SegmentLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if segRes.Err != nil {
		t.Fatal(segRes.Err)
	}
	// With segmentation the in-memory trace stays empty...
	if segRes.Trace.Len() != 0 {
		t.Errorf("segmented run kept %d entries in memory", segRes.Trace.Len())
	}
	// ...and the reassembled segments equal the in-memory trace.
	got, err := trace.LoadSegments(dir, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != mem.Trace.Len() {
		t.Fatalf("segmented %d entries, in-memory %d", got.Len(), mem.Trace.Len())
	}
	for i := range got.Entries {
		if !trace.EventEqual(got.Entries[i], mem.Trace.Entries[i]) {
			t.Fatalf("entry %d differs between segmented and in-memory runs", i)
		}
	}
	if segRes.Output != mem.Output {
		t.Error("segmentation changed program output")
	}
}

func TestQuantumDoesNotChangeSemantics(t *testing.T) {
	src := `
class W { Int n; void work(Int k) { let i = 0; while (i < k) { this.n = this.n + i; i = i + 1; } return; } }
class Main {
  void main() {
    let w = new W();
    spawn { w.work(25); }
    let i = 0;
    while (i < 25) { Sys.print("m" + i); i = i + 1; }
  }
}`
	prog := lang.MustParse(src)
	var outputs []string
	var lengths []int
	for _, q := range []int{5, 50, 500} {
		res, err := Run(prog, Options{Quantum: q})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("quantum %d: %v", q, res.Err)
		}
		outputs = append(outputs, sortLines(res.Output))
		lengths = append(lengths, res.Trace.Len())
	}
	// Different quanta produce different interleavings, but the same
	// multiset of output lines and the same trace length.
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Error("quantum changed the set of output lines")
		}
		if lengths[i] != lengths[0] {
			t.Errorf("quantum changed trace length: %v", lengths)
		}
	}
}

func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
