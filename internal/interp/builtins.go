package interp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/trace"
)

func builtinNamespace(name string) bool {
	return name == "Sys" || name == "Reflect" || name == "Runtime"
}

// callNamespace handles calls on the builtin namespaces. Like user method
// calls, builtin calls are recorded as call/return event pairs so that
// program output and reflective operations anchor trace comparisons.
func (th *threadState) callNamespace(ns string, e *lang.Call) Value {
	args := th.evalAll(e.Args)
	qualified := ns + "." + e.Method + "/" + strconv.Itoa(len(args))
	target := trace.Repr{Class: ns}
	th.tick()
	th.record(trace.Event{Kind: trace.KindCall, Target: target, Member: qualified, Args: th.reprAll(args)})
	ret := th.dispatchNamespace(ns, e.Method, args, e.Pos)
	var retReprs []trace.Repr
	if ret.Kind != KNull {
		retReprs = []trace.Repr{th.i.reprOf(ret, th.i.opts.ReprDepth)}
	}
	th.record(trace.Event{Kind: trace.KindReturn, Target: target, Member: qualified, Args: retReprs})
	return ret
}

func (th *threadState) dispatchNamespace(ns, method string, args []Value, pos lang.Pos) Value {
	i := th.i
	key := ns + "." + method
	switch key {
	case "Sys.print":
		th.need(args, 1, key, pos)
		i.out.WriteString(th.render(args[0]))
		i.out.WriteByte('\n')
		return NullV()
	case "Sys.arg":
		th.need(args, 1, key, pos)
		idx := th.intArg(args[0], key, pos)
		if idx < 0 || int(idx) >= len(i.opts.Args) {
			return StrV("")
		}
		return StrV(i.opts.Args[idx])
	case "Sys.numArgs":
		th.need(args, 0, key, pos)
		return IntV(int64(len(i.opts.Args)))
	case "Sys.parseInt":
		th.need(args, 1, key, pos)
		if args[0].Kind != KStr {
			th.failf(pos, "Sys.parseInt expects a String")
		}
		v, err := strconv.ParseInt(strings.TrimSpace(args[0].Str), 10, 64)
		if err != nil {
			return IntV(0)
		}
		return IntV(v)
	case "Sys.abort":
		th.need(args, 1, key, pos)
		panic(&RuntimeError{Pos: pos, Msg: th.render(args[0]), Aborted: true})
	case "Reflect.create":
		if len(args) < 1 || args[0].Kind != KStr {
			th.failf(pos, "Reflect.create expects a class name String first")
		}
		return th.construct(args[0].Str, args[1:], pos)
	case "Reflect.call":
		if len(args) < 2 || args[1].Kind != KStr {
			th.failf(pos, "Reflect.call expects (object, method name String, args...)")
		}
		if args[0].Kind != KRef {
			th.failf(pos, "Reflect.call on non-object %s", args[0].TypeName())
		}
		return th.invoke(args[0], args[1].Str, args[2:], pos)
	case "Reflect.hasClass":
		th.need(args, 1, key, pos)
		if args[0].Kind != KStr {
			th.failf(pos, "Reflect.hasClass expects a String")
		}
		return BoolV(i.ct.Lookup(args[0].Str) != nil)
	case "Reflect.className":
		th.need(args, 1, key, pos)
		if args[0].Kind != KRef {
			return StrV(args[0].TypeName())
		}
		if st := i.heap.get(args[0].Ref); st != nil {
			return StrV(st.class)
		}
		return StrV("?")
	case "Runtime.defineClass":
		// Dynamic code generation: parse and install classes at run time.
		th.need(args, 1, key, pos)
		if args[0].Kind != KStr {
			th.failf(pos, "Runtime.defineClass expects source text")
		}
		prog, err := lang.Parse(args[0].Str)
		if err != nil {
			th.failf(pos, "Runtime.defineClass: parse: %v", err)
		}
		for _, c := range prog.Classes {
			if err := i.ct.Define(c); err != nil {
				th.failf(pos, "Runtime.defineClass: %v", err)
			}
		}
		return BoolV(true)
	}
	th.failf(pos, "unknown builtin %s", key)
	return NullV()
}

// callValueBuiltin handles methods on value objects (String, Int, Float,
// Bool), recorded like ordinary calls with the primitive as the target —
// matching the paper's example trace entries such as
// "--> STR-1.equals('text/html')".
func (th *threadState) callValueBuiltin(recv Value, method string, args []Value, pos lang.Pos) Value {
	qualified := recv.TypeName() + "." + method + "/" + strconv.Itoa(len(args))
	target := th.i.reprOf(recv, th.i.opts.ReprDepth)
	th.tick()
	th.record(trace.Event{Kind: trace.KindCall, Target: target, Member: qualified, Args: th.reprAll(args)})
	ret := th.dispatchValueBuiltin(recv, method, args, pos)
	var retReprs []trace.Repr
	if ret.Kind != KNull {
		retReprs = []trace.Repr{th.i.reprOf(ret, th.i.opts.ReprDepth)}
	}
	th.record(trace.Event{Kind: trace.KindReturn, Target: target, Member: qualified, Args: retReprs})
	return ret
}

func (th *threadState) dispatchValueBuiltin(recv Value, method string, args []Value, pos lang.Pos) Value {
	if method == "toStr" && len(args) == 0 {
		return StrV(recv.Literal())
	}
	if recv.Kind == KStr {
		return th.stringBuiltin(recv.Str, method, args, pos)
	}
	if recv.Kind == KInt && method == "toFloat" && len(args) == 0 {
		return FloatV(float64(recv.Int))
	}
	if recv.Kind == KFloat && method == "toInt" && len(args) == 0 {
		return IntV(int64(recv.Float))
	}
	th.failf(pos, "%s value has no method %s/%d", recv.TypeName(), method, len(args))
	return NullV()
}

func (th *threadState) stringBuiltin(s, method string, args []Value, pos lang.Pos) Value {
	str := func(k int) string {
		if args[k].Kind != KStr {
			th.failf(pos, "String.%s: argument %d is %s, not String", method, k, args[k].TypeName())
		}
		return args[k].Str
	}
	num := func(k int) int64 { return th.intArg(args[k], "String."+method, pos) }
	switch {
	case method == "equals" && len(args) == 1:
		return BoolV(s == str(0))
	case method == "concat" && len(args) == 1:
		return StrV(s + str(0))
	case method == "length" && len(args) == 0:
		return IntV(int64(len(s)))
	case method == "contains" && len(args) == 1:
		return BoolV(strings.Contains(s, str(0)))
	case method == "startsWith" && len(args) == 1:
		return BoolV(strings.HasPrefix(s, str(0)))
	case method == "indexOf" && len(args) == 1:
		return IntV(int64(strings.Index(s, str(0))))
	case method == "substring" && len(args) == 2:
		a, b := num(0), num(1)
		if a < 0 || b > int64(len(s)) || a > b {
			th.failf(pos, "String.substring(%d, %d) out of range for length %d", a, b, len(s))
		}
		return StrV(s[a:b])
	case method == "charAt" && len(args) == 1:
		k := num(0)
		if k < 0 || k >= int64(len(s)) {
			th.failf(pos, "String.charAt(%d) out of range for length %d", k, len(s))
		}
		return IntV(int64(s[k]))
	case method == "fromChar" && len(args) == 1:
		return StrV(string(rune(num(0))))
	}
	th.failf(pos, "String has no method %s/%d", method, len(args))
	return NullV()
}

func (th *threadState) need(args []Value, n int, what string, pos lang.Pos) {
	if len(args) != n {
		th.failf(pos, "%s expects %d argument(s), got %d", what, n, len(args))
	}
}

func (th *threadState) intArg(v Value, what string, pos lang.Pos) int64 {
	if v.Kind != KInt {
		th.failf(pos, "%s expects an Int, got %s", what, v.TypeName())
	}
	return v.Int
}

// render is the Sys.print formatting of a value.
func (th *threadState) render(v Value) string {
	if v.Kind == KRef {
		if st := th.i.heap.get(v.Ref); st != nil {
			return fmt.Sprintf("%s#%d", st.class, st.seq)
		}
		return "?"
	}
	return v.Literal()
}
