package interp

import (
	"repro/internal/lang"
	"repro/internal/trace"
)

// objectState is one heap object: its dynamic class, field store, and
// per-class creation sequence number (used by object view correlation).
type objectState struct {
	class  string
	seq    int
	fields map[string]Value
	order  []string // declared field order, for deterministic serialization
}

// heap is the object store E of Fig. 6.
type heap struct {
	objects map[trace.Loc]*objectState
	nextLoc trace.Loc
	seqs    map[string]int // per-class creation counters
}

func newHeap() *heap {
	return &heap{objects: make(map[trace.Loc]*objectState), nextLoc: 1, seqs: make(map[string]int)}
}

// alloc creates a fresh object of the given class. Primitive-typed fields
// start at their zero values (as in Java); reference fields start null.
func (h *heap) alloc(class string, fields []lang.Field) (trace.Loc, *objectState) {
	loc := h.nextLoc
	h.nextLoc++
	h.seqs[class]++
	st := &objectState{class: class, seq: h.seqs[class], fields: make(map[string]Value, len(fields))}
	for _, f := range fields {
		st.fields[f.Name] = zeroValue(f.Type)
		st.order = append(st.order, f.Name)
	}
	h.objects[loc] = st
	return loc, st
}

func zeroValue(typ string) Value {
	switch typ {
	case "Int":
		return IntV(0)
	case "Bool":
		return BoolV(false)
	case "Float":
		return FloatV(0)
	case "String":
		return StrV("")
	default:
		return NullV()
	}
}

// get returns the object at loc, or nil.
func (h *heap) get(loc trace.Loc) *objectState { return h.objects[loc] }

// size returns the number of live objects.
func (h *heap) size() int { return len(h.objects) }

// reprOf computes the extended representation E′# of Fig. 8 for a value:
// primitives serialize as D:[d]; heap objects serialize recursively over
// their fields in declared order, up to depth levels deep, with cycle
// detection. Opaque classes yield an empty value representation (the
// paper's default hashCode/toString case), leaving only class name and
// creation sequence number for correlation.
func (i *Interp) reprOf(v Value, depth int) trace.Repr {
	switch v.Kind {
	case KNull:
		return trace.Repr{Class: "null"}
	case KRef:
		st := i.heap.get(v.Ref)
		if st == nil {
			return trace.Repr{Loc: v.Ref, Class: "?"}
		}
		cls := i.ct.Lookup(st.class)
		opaque := cls != nil && cls.Opaque
		if opaque {
			return trace.ObjectRepr(v.Ref, st.class, st.seq, trace.Serialization{}, false)
		}
		visited := map[trace.Loc]bool{}
		ser := i.serialize(v, depth, visited)
		return trace.ObjectRepr(v.Ref, st.class, st.seq, ser, true)
	default:
		return trace.PrimRepr(v.TypeName(), v.Literal())
	}
}

func (i *Interp) serialize(v Value, depth int, visited map[trace.Loc]bool) trace.Serialization {
	switch v.Kind {
	case KRef:
		st := i.heap.get(v.Ref)
		if st == nil {
			return trace.Prim("ref", "?")
		}
		if depth <= 0 || visited[v.Ref] {
			// Beyond the depth cap (or through a cycle) only the class name
			// contributes.
			return trace.Object(st.class, nil)
		}
		cls := i.ct.Lookup(st.class)
		if cls != nil && cls.Opaque {
			return trace.Object(st.class, nil)
		}
		visited[v.Ref] = true
		defer delete(visited, v.Ref)
		fields := make([]trace.Serialization, 0, len(st.order))
		for _, name := range st.order {
			fields = append(fields, i.serialize(st.fields[name], depth-1, visited))
		}
		return trace.Object(st.class, fields)
	default:
		return trace.Prim(v.TypeName(), v.Literal())
	}
}

// shallowRepr is a cheap representation for the entry context ρ (the
// object a method executes on): class, location, and sequence number only.
// Context representations never participate in event equality, so the
// recursive value is not needed.
func (i *Interp) shallowRepr(v Value) trace.Repr {
	switch v.Kind {
	case KRef:
		if st := i.heap.get(v.Ref); st != nil {
			return trace.Repr{Loc: v.Ref, Class: st.class, Seq: st.seq}
		}
		return trace.Repr{Loc: v.Ref, Class: "?"}
	case KNull:
		return trace.Repr{}
	default:
		return trace.Repr{Class: v.TypeName()}
	}
}
