package interp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/trace"
)

// Options configures a run.
type Options struct {
	// TraceName names the produced trace (defaults to "trace").
	TraceName string
	// Args are the program arguments visible via Sys.arg(i); they are the
	// "test case input" of the evaluation protocol.
	Args []string
	// MaxSteps bounds total execution steps (0 means the default 5e6).
	MaxSteps int
	// Quantum is the number of steps a thread runs before the deterministic
	// round-robin scheduler switches (0 means the default 50).
	Quantum int
	// ReprDepth caps the recursion depth of value representations
	// (0 means the default 3).
	ReprDepth int
	// Pointcut filters recorded events; nil records everything.
	Pointcut *Pointcut
	// SegmentDir enables smart trace segmentation (§5): entries are
	// offloaded to disk in segments of SegmentLimit entries and the
	// tracing memory reclaimed, instead of accumulating in Result.Trace.
	// Reassemble with trace.LoadSegments(SegmentDir, TraceName).
	SegmentDir string
	// SegmentLimit is the entries-per-segment flush threshold
	// (0 means the default 4096). Only meaningful with SegmentDir.
	SegmentLimit int
}

func (o Options) withDefaults() Options {
	if o.TraceName == "" {
		o.TraceName = "trace"
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 5_000_000
	}
	if o.Quantum == 0 {
		o.Quantum = 50
	}
	if o.ReprDepth == 0 {
		o.ReprDepth = 3
	}
	return o
}

// Result carries the outcome of a run. On a runtime error (including
// Sys.abort) the trace collected so far is still returned: the Derby-1633
// experiment depends on differencing a trace that ends in an error.
type Result struct {
	Trace   *trace.Trace
	Output  string
	Err     *RuntimeError
	Steps   int
	Objects int
}

// RuntimeError is a dynamic failure: null dereference, unknown method,
// step-budget exhaustion, or an explicit Sys.abort.
type RuntimeError struct {
	Pos     lang.Pos
	Msg     string
	Aborted bool // true for Sys.abort
}

func (e *RuntimeError) Error() string {
	kind := "runtime error"
	if e.Aborted {
		kind = "abort"
	}
	return fmt.Sprintf("%s: %s: %s", kind, e.Pos, e.Msg)
}

// stopSignal unwinds threads after another thread has failed.
type stopSignal struct{}

// Interp is one execution instance.
type Interp struct {
	prog    *lang.Program
	ct      *lang.ClassTable
	heap    *heap
	tr      *trace.Trace
	seg     *trace.SegmentWriter
	out     strings.Builder
	opts    Options
	threads []*threadState
	report  chan struct{}
	steps   int
	stopped bool
	runErr  *RuntimeError
	nextTID trace.ThreadID
	// qualNames caches fully qualified method names ("C.m/2") per method
	// body, so the tracing hot path formats each signature once per run
	// instead of once per invocation. Safe without a lock: the scheduler
	// runs exactly one thread at a time.
	qualNames map[*lang.Method]string
}

// qualifiedName returns the cached "DefClass.method/arity" signature of a
// resolved method body.
func (i *Interp) qualifiedName(m *lang.Method, defClass, method string) string {
	if q, ok := i.qualNames[m]; ok {
		return q
	}
	q := fmt.Sprintf("%s.%s/%d", defClass, method, m.Arity())
	if i.qualNames == nil {
		i.qualNames = make(map[*lang.Method]string)
	}
	i.qualNames[m] = q
	return q
}

// Run executes the program: new Main().main(). Setup failures (missing
// Main class or main method, static check errors) are returned as the
// second result; dynamic failures appear in Result.Err with the partial
// trace preserved.
func Run(prog *lang.Program, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := lang.Check(prog); err != nil {
		return nil, err
	}
	ct, err := lang.NewClassTable(prog)
	if err != nil {
		return nil, err
	}
	mainCls := ct.Lookup("Main")
	if mainCls == nil {
		return nil, fmt.Errorf("interp: program has no Main class")
	}
	if _, _, ok := ct.MBody("main", "Main"); !ok {
		return nil, fmt.Errorf("interp: class Main has no main method")
	}
	i := &Interp{
		prog:   prog,
		ct:     ct,
		heap:   newHeap(),
		tr:     trace.New(opts.TraceName),
		opts:   opts,
		report: make(chan struct{}),
	}
	if opts.SegmentDir != "" {
		limit := opts.SegmentLimit
		if limit == 0 {
			limit = 4096
		}
		seg, err := trace.NewSegmentWriter(opts.SegmentDir, opts.TraceName, limit)
		if err != nil {
			return nil, err
		}
		i.seg = seg
	}
	main := i.newThread(nil, nil, "<toplevel>", "", NullV(), nil)
	go main.run(func(th *threadState) {
		obj := th.evalNew(&lang.New{Class: "Main"})
		th.invoke(obj, "main", nil, lang.Pos{})
	})
	i.schedule()
	if i.seg != nil {
		if err := i.seg.Close(); err != nil {
			return nil, err
		}
	}
	return &Result{
		Trace:   i.tr,
		Output:  i.out.String(),
		Err:     i.runErr,
		Steps:   i.steps,
		Objects: i.heap.size(),
	}, nil
}

// schedule drives the deterministic round-robin scheduler: exactly one
// thread runs at a time; a thread yields after its quantum, at which point
// the next alive thread (in spawn order) resumes.
func (i *Interp) schedule() {
	cursor := 0
	for {
		th := i.nextAlive(&cursor)
		if th == nil {
			return
		}
		th.resume <- struct{}{}
		<-i.report
	}
}

func (i *Interp) nextAlive(cursor *int) *threadState {
	n := len(i.threads)
	if n == 0 {
		return nil
	}
	for k := 0; k < n; k++ {
		idx := (*cursor + k) % n
		if !i.threads[idx].finished {
			*cursor = idx + 1
			return i.threads[idx]
		}
	}
	return nil
}

// frame is one activation record.
type frame struct {
	defClass  string // class defining the executing method
	qualified string // fully qualified method name with arity, e.g. "C.m/2"
	self      Value
	locals    map[string]Value
	spawnSeq  int // per-invocation spawn counter (names spawn bodies stably)
}

// threadState is one thread of control with its stack S.
type threadState struct {
	i          *Interp
	id         trace.ThreadID
	frames     []*frame
	spawnStack []trace.Frame // fork ancestry recorded by FORK-E
	resume     chan struct{}
	finished   bool
	ticks      int
}

func (i *Interp) newThread(body []lang.Stmt, locals map[string]Value, method, defClass string, self Value, ancestry []trace.Frame) *threadState {
	th := &threadState{
		i:          i,
		id:         i.nextTID,
		spawnStack: ancestry,
		resume:     make(chan struct{}),
	}
	i.nextTID++
	th.frames = []*frame{{
		defClass:  defClass,
		qualified: method,
		self:      self,
		locals:    locals,
	}}
	if th.frames[0].locals == nil {
		th.frames[0].locals = make(map[string]Value)
	}
	i.threads = append(i.threads, th)
	_ = body // bodies are executed by the closure passed to run
	return th
}

// run executes fn under the scheduler protocol, converting runtime panics
// into the interpreter-level error state.
func (th *threadState) run(fn func(*threadState)) {
	<-th.resume
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *RuntimeError:
				if th.i.runErr == nil {
					th.i.runErr = e
				}
				th.i.stopped = true
			case stopSignal:
				// unwound after another thread failed
			default:
				panic(r)
			}
		}
		th.finished = true
		th.i.report <- struct{}{}
	}()
	fn(th)
	th.record(trace.Event{Kind: trace.KindEnd, Stack: th.spawnStack})
}

// tick accounts one execution step, enforcing the step budget, honoring
// stop requests, and yielding at quantum boundaries.
func (th *threadState) tick() {
	i := th.i
	if i.stopped {
		panic(stopSignal{})
	}
	i.steps++
	if i.steps > i.opts.MaxSteps {
		panic(&RuntimeError{Msg: fmt.Sprintf("step budget of %d exceeded", i.opts.MaxSteps)})
	}
	th.ticks++
	if th.ticks%i.opts.Quantum == 0 {
		i.report <- struct{}{}
		<-th.resume
		if i.stopped {
			panic(stopSignal{})
		}
	}
}

func (th *threadState) top() *frame { return th.frames[len(th.frames)-1] }

// record emits a trace entry in the current context, subject to the
// pointcut filter. With segmentation enabled, entries go straight to the
// segment writer (which offloads to disk and reclaims memory) instead of
// the in-memory trace.
func (th *threadState) record(ev trace.Event) {
	f := th.top()
	if !th.i.opts.Pointcut.AllowContext(f.defClass, f.qualified) {
		return
	}
	if th.i.seg != nil {
		if _, err := th.i.seg.Append(th.id, f.qualified, th.i.shallowRepr(f.self), ev); err != nil {
			panic(&RuntimeError{Msg: fmt.Sprintf("trace segmentation: %v", err)})
		}
		return
	}
	th.i.tr.Append(th.id, f.qualified, th.i.shallowRepr(f.self), ev)
}

func (th *threadState) failf(pos lang.Pos, format string, args ...any) {
	panic(&RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// stackFrames snapshots the current call stack as trace frames, used as
// the spawn ancestry of forked threads (rule FORK-E tracks "spawn-point
// call stack, call stack of spawn-point of spawning thread, etc.").
func (th *threadState) stackFrames() []trace.Frame {
	out := append([]trace.Frame(nil), th.spawnStack...)
	for _, f := range th.frames {
		out = append(out, trace.Frame{
			Method: f.qualified,
			Callee: th.i.shallowRepr(f.self),
		})
	}
	return out
}

// ---- statement execution ----

// execBlock runs statements; it reports whether a return was executed and
// with what value.
func (th *threadState) execBlock(stmts []lang.Stmt) (bool, Value) {
	for _, s := range stmts {
		if ret, v := th.execStmt(s); ret {
			return true, v
		}
	}
	return false, NullV()
}

func (th *threadState) execStmt(s lang.Stmt) (bool, Value) {
	th.tick()
	switch s := s.(type) {
	case *lang.Let:
		v := th.eval(s.Init)
		th.top().locals[s.Name] = v
	case *lang.AssignLocal:
		f := th.top()
		if _, ok := f.locals[s.Name]; !ok {
			th.failf(s.Pos, "assignment to undeclared variable %s", s.Name)
		}
		f.locals[s.Name] = th.eval(s.Val)
	case *lang.AssignField:
		obj := th.eval(s.Obj)
		val := th.eval(s.Val)
		th.setField(obj, s.Name, val, s.Pos)
	case *lang.If:
		if th.evalBool(s.Cond) {
			return th.execBlock(s.Then)
		}
		return th.execBlock(s.Else)
	case *lang.While:
		for th.evalBool(s.Cond) {
			if ret, v := th.execBlock(s.Body); ret {
				return true, v
			}
		}
	case *lang.Return:
		if s.Val == nil {
			return true, NullV()
		}
		return true, th.eval(s.Val)
	case *lang.Spawn:
		th.spawnThread(s)
	case *lang.ExprStmt:
		th.eval(s.X)
	case *lang.SuperCall:
		th.superInit(s)
	default:
		th.failf(s.StmtPos(), "unhandled statement %T", s)
	}
	return false, NullV()
}

// spawnThread implements rule FORK-E.
func (th *threadState) spawnThread(s *lang.Spawn) {
	i := th.i
	parent := th.top()
	parent.spawnSeq++
	method := fmt.Sprintf("%s$spawn%d", parent.qualified, parent.spawnSeq)
	locals := make(map[string]Value, len(parent.locals))
	for k, v := range parent.locals {
		locals[k] = v
	}
	ancestry := th.stackFrames()
	child := i.newThread(s.Body, locals, method, parent.defClass, parent.self, ancestry)
	th.record(trace.Event{
		Kind:   trace.KindFork,
		Member: strconv.Itoa(int(child.id)),
		Stack:  ancestry,
	})
	body := s.Body
	go child.run(func(ch *threadState) {
		ch.execBlock(body)
	})
}

// superInit runs the superclass constructor body on the same object.
func (th *threadState) superInit(s *lang.SuperCall) {
	f := th.top()
	cls := th.i.ct.Lookup(f.defClass)
	if cls == nil || cls.Super == lang.ObjectClass {
		return // Object's constructor is a no-op
	}
	args := th.evalAll(s.Args)
	th.runCtor(cls.Super, f.self, args, s.Pos)
}

// ---- expression evaluation ----

func (th *threadState) evalAll(es []lang.Expr) []Value {
	out := make([]Value, len(es))
	for i, e := range es {
		out[i] = th.eval(e)
	}
	return out
}

func (th *threadState) evalBool(e lang.Expr) bool {
	v := th.eval(e)
	if v.Kind != KBool {
		th.failf(e.ExprPos(), "condition is %s, not Bool", v.TypeName())
	}
	return v.Bool
}

func (th *threadState) eval(e lang.Expr) Value {
	switch e := e.(type) {
	case *lang.IntLit:
		return IntV(e.Val)
	case *lang.FloatLit:
		return FloatV(e.Val)
	case *lang.StrLit:
		return StrV(e.Val)
	case *lang.BoolLit:
		return BoolV(e.Val)
	case *lang.NullLit:
		return NullV()
	case *lang.This:
		return th.top().self
	case *lang.Var:
		if v, ok := th.top().locals[e.Name]; ok {
			return v
		}
		th.failf(e.Pos, "unknown variable %s", e.Name)
	case *lang.FieldAccess:
		return th.getField(th.eval(e.Obj), e.Name, e.Pos)
	case *lang.Call:
		return th.evalCall(e)
	case *lang.New:
		return th.evalNew(e)
	case *lang.Binary:
		return th.evalBinary(e)
	case *lang.Unary:
		return th.evalUnary(e)
	}
	th.failf(e.ExprPos(), "unhandled expression %T", e)
	return NullV()
}

// getField implements rule FIELD-ACC-E.
func (th *threadState) getField(obj Value, name string, pos lang.Pos) Value {
	st := th.object(obj, name, pos)
	v, ok := st.fields[name]
	if !ok {
		th.failf(pos, "class %s has no field %s", st.class, name)
	}
	th.tick()
	th.record(trace.Event{
		Kind:   trace.KindGet,
		Target: th.i.reprOf(obj, th.i.opts.ReprDepth),
		Member: name,
		Args:   []trace.Repr{th.i.reprOf(v, th.i.opts.ReprDepth)},
	})
	return v
}

// setField implements rule FIELD-ASS-E.
func (th *threadState) setField(obj Value, name string, val Value, pos lang.Pos) {
	st := th.object(obj, name, pos)
	if _, ok := st.fields[name]; !ok {
		th.failf(pos, "class %s has no field %s", st.class, name)
	}
	st.fields[name] = val
	th.tick()
	th.record(trace.Event{
		Kind:   trace.KindSet,
		Target: th.i.reprOf(obj, th.i.opts.ReprDepth),
		Member: name,
		Args:   []trace.Repr{th.i.reprOf(val, th.i.opts.ReprDepth)},
	})
}

func (th *threadState) object(obj Value, member string, pos lang.Pos) *objectState {
	switch obj.Kind {
	case KNull:
		th.failf(pos, "null dereference accessing %s", member)
	case KRef:
		if st := th.i.heap.get(obj.Ref); st != nil {
			return st
		}
		th.failf(pos, "dangling reference accessing %s", member)
	default:
		th.failf(pos, "%s value has no field %s", obj.TypeName(), member)
	}
	return nil
}

// evalNew implements rule CONS-E: allocate, record the init event with the
// constructor arguments and created object, then run the constructor body
// (whose field writes appear as set events), then record the constructor
// return.
func (th *threadState) evalNew(e *lang.New) Value {
	i := th.i
	cls := i.ct.Lookup(e.Class)
	if cls == nil {
		th.failf(e.Pos, "unknown class %s", e.Class)
	}
	args := th.evalAll(e.Args)
	return th.construct(e.Class, args, e.Pos)
}

// construct is shared by new, Reflect.create, and superInit's dispatch.
func (th *threadState) construct(class string, args []Value, pos lang.Pos) Value {
	i := th.i
	fields, err := i.ct.Fields(class)
	if err != nil {
		th.failf(pos, "%v", err)
	}
	loc, _ := i.heap.alloc(class, fields)
	obj := RefV(loc)
	argReprs := th.reprAll(args)
	th.tick()
	th.record(trace.Event{
		Kind:   trace.KindInit,
		Target: i.reprOf(obj, i.opts.ReprDepth),
		Member: class,
		Args:   argReprs,
	})
	th.runCtor(class, obj, args, pos)
	th.record(trace.Event{
		Kind:   trace.KindReturn,
		Target: i.reprOf(obj, i.opts.ReprDepth),
		Member: class + ".<init>",
		Args:   []trace.Repr{i.reprOf(obj, i.opts.ReprDepth)},
	})
	return obj
}

// runCtor executes the declared constructor of exactly the given class on
// obj (no inheritance: constructors chain explicitly via super(...)).
func (th *threadState) runCtor(class string, obj Value, args []Value, pos lang.Pos) {
	ctor := th.i.ct.Ctor(class)
	if ctor == nil {
		if len(args) != 0 {
			th.failf(pos, "class %s has no constructor but got %d argument(s)", class, len(args))
		}
		return
	}
	if len(args) != ctor.Arity() {
		th.failf(pos, "constructor %s expects %d argument(s), got %d", class, ctor.Arity(), len(args))
	}
	locals := make(map[string]Value, len(args))
	for k, p := range ctor.Params {
		locals[p.Name] = args[k]
	}
	th.frames = append(th.frames, &frame{
		defClass:  class,
		qualified: th.i.qualifiedName(ctor, class, "<init>"),
		self:      obj,
		locals:    locals,
	})
	th.execBlock(ctor.Body)
	th.frames = th.frames[:len(th.frames)-1]
}

func (th *threadState) reprAll(vals []Value) []trace.Repr {
	out := make([]trace.Repr, len(vals))
	for i, v := range vals {
		out[i] = th.i.reprOf(v, th.i.opts.ReprDepth)
	}
	return out
}

// evalCall dispatches method calls: builtin namespaces (Sys, Reflect,
// Runtime), value-object builtins (String and friends), or user-defined
// methods via rule METH-E.
func (th *threadState) evalCall(e *lang.Call) Value {
	if ns, ok := e.Recv.(*lang.Var); ok && builtinNamespace(ns.Name) {
		if _, shadowed := th.top().locals[ns.Name]; !shadowed {
			return th.callNamespace(ns.Name, e)
		}
	}
	recv := th.eval(e.Recv)
	args := th.evalAll(e.Args)
	switch recv.Kind {
	case KNull:
		th.failf(e.Pos, "null dereference calling %s", e.Method)
	case KRef:
		return th.invoke(recv, e.Method, args, e.Pos)
	default:
		return th.callValueBuiltin(recv, e.Method, args, e.Pos)
	}
	return NullV()
}

// invoke implements METH-E and RETURN-E: the call event is recorded in the
// caller's context, the body runs in a new frame, and the return event is
// recorded back in the caller's context.
func (th *threadState) invoke(recv Value, method string, args []Value, pos lang.Pos) Value {
	i := th.i
	st := i.heap.get(recv.Ref)
	if st == nil {
		th.failf(pos, "dangling reference calling %s", method)
	}
	m, defClass, ok := i.ct.MBody(method, st.class)
	if !ok {
		th.failf(pos, "class %s has no method %s", st.class, method)
	}
	if len(args) != m.Arity() {
		th.failf(pos, "%s.%s expects %d argument(s), got %d", defClass, method, m.Arity(), len(args))
	}
	qualified := i.qualifiedName(m, defClass, method)
	targetRepr := i.reprOf(recv, i.opts.ReprDepth)
	th.tick()
	th.record(trace.Event{
		Kind:   trace.KindCall,
		Target: targetRepr,
		Member: qualified,
		Args:   th.reprAll(args),
	})
	locals := make(map[string]Value, len(args))
	for k, p := range m.Params {
		locals[p.Name] = args[k]
	}
	th.frames = append(th.frames, &frame{
		defClass:  defClass,
		qualified: qualified,
		self:      recv,
		locals:    locals,
	})
	_, ret := th.execBlock(m.Body)
	th.frames = th.frames[:len(th.frames)-1]
	var retReprs []trace.Repr
	if ret.Kind != KNull {
		retReprs = []trace.Repr{i.reprOf(ret, i.opts.ReprDepth)}
	}
	th.record(trace.Event{
		Kind:   trace.KindReturn,
		Target: i.reprOf(recv, i.opts.ReprDepth),
		Member: qualified,
		Args:   retReprs,
	})
	return ret
}

func (th *threadState) evalUnary(e *lang.Unary) Value {
	v := th.eval(e.X)
	switch e.Op {
	case "!":
		if v.Kind != KBool {
			th.failf(e.Pos, "! applied to %s", v.TypeName())
		}
		return BoolV(!v.Bool)
	case "-":
		switch v.Kind {
		case KInt:
			return IntV(-v.Int)
		case KFloat:
			return FloatV(-v.Float)
		}
		th.failf(e.Pos, "unary - applied to %s", v.TypeName())
	}
	th.failf(e.Pos, "unknown unary operator %s", e.Op)
	return NullV()
}

func (th *threadState) evalBinary(e *lang.Binary) Value {
	// Short-circuit logical operators.
	switch e.Op {
	case "&&":
		if !th.evalBool(e.L) {
			return BoolV(false)
		}
		return BoolV(th.evalBool(e.R))
	case "||":
		if th.evalBool(e.L) {
			return BoolV(true)
		}
		return BoolV(th.evalBool(e.R))
	}
	l := th.eval(e.L)
	r := th.eval(e.R)
	switch e.Op {
	case "==":
		return BoolV(l.Equal(r))
	case "!=":
		return BoolV(!l.Equal(r))
	}
	// String concatenation via +.
	if e.Op == "+" && (l.Kind == KStr || r.Kind == KStr) {
		if l.Kind == KStr && r.Kind == KStr {
			return StrV(l.Str + r.Str)
		}
		if l.Kind == KStr {
			return StrV(l.Str + r.Literal())
		}
		return StrV(l.Literal() + r.Str)
	}
	// Numeric operators, with Int→Float promotion.
	if l.Kind == KInt && r.Kind == KInt {
		return th.intOp(e, l.Int, r.Int)
	}
	lf, lok := numeric(l)
	rf, rok := numeric(r)
	if !lok || !rok {
		th.failf(e.Pos, "operator %s applied to %s and %s", e.Op, l.TypeName(), r.TypeName())
	}
	return th.floatOp(e, lf, rf)
}

func numeric(v Value) (float64, bool) {
	switch v.Kind {
	case KInt:
		return float64(v.Int), true
	case KFloat:
		return v.Float, true
	}
	return 0, false
}

func (th *threadState) intOp(e *lang.Binary, a, b int64) Value {
	switch e.Op {
	case "+":
		return IntV(a + b)
	case "-":
		return IntV(a - b)
	case "*":
		return IntV(a * b)
	case "/":
		if b == 0 {
			th.failf(e.Pos, "division by zero")
		}
		return IntV(a / b)
	case "%":
		if b == 0 {
			th.failf(e.Pos, "modulo by zero")
		}
		return IntV(a % b)
	case "<":
		return BoolV(a < b)
	case "<=":
		return BoolV(a <= b)
	case ">":
		return BoolV(a > b)
	case ">=":
		return BoolV(a >= b)
	}
	th.failf(e.Pos, "unknown operator %s", e.Op)
	return NullV()
}

func (th *threadState) floatOp(e *lang.Binary, a, b float64) Value {
	switch e.Op {
	case "+":
		return FloatV(a + b)
	case "-":
		return FloatV(a - b)
	case "*":
		return FloatV(a * b)
	case "/":
		if b == 0 {
			th.failf(e.Pos, "division by zero")
		}
		return FloatV(a / b)
	case "<":
		return BoolV(a < b)
	case "<=":
		return BoolV(a <= b)
	case ">":
		return BoolV(a > b)
	case ">=":
		return BoolV(a >= b)
	}
	th.failf(e.Pos, "operator %s not defined on Float", e.Op)
	return NullV()
}
