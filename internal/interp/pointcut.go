package interp

import "strings"

// Pointcut selects which execution events are recorded, modelling the
// AspectJ pointcuts RPRISM uses to exclude the internal workings of
// unrelated code such as libraries and data structures (§5.1).
//
// Exclusion is by the *enclosing* context: events that occur while an
// excluded class's method (or an explicitly excluded method) is executing
// are dropped. Calls from included code *into* excluded code remain
// visible, because the call event is recorded in the caller's context —
// exactly the behaviour of a within()-style pointcut.
type Pointcut struct {
	// ExcludeClasses lists class names to exclude; a trailing '*' makes the
	// entry a prefix pattern (e.g. "java*").
	ExcludeClasses []string
	// ExcludeMethods lists fully qualified method names (C.m) to exclude.
	ExcludeMethods []string
}

// AllowContext reports whether events in the given enclosing context
// (defining class + qualified method name) should be recorded.
func (p *Pointcut) AllowContext(class, qualifiedMethod string) bool {
	if p == nil {
		return true
	}
	for _, pat := range p.ExcludeClasses {
		if matchPat(pat, class) {
			return false
		}
	}
	for _, pat := range p.ExcludeMethods {
		if matchPat(pat, qualifiedMethod) {
			return false
		}
	}
	return true
}

func matchPat(pat, s string) bool {
	if strings.HasSuffix(pat, "*") {
		return strings.HasPrefix(s, pat[:len(pat)-1])
	}
	return pat == s
}
