package views

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// IncrementalBuilder grows a view web as trace segments arrive — the
// analysis side of live capture. A streaming session appends each
// decoded segment; at any moment Snapshot returns a Web over everything
// appended so far that is semantically identical to a from-scratch
// BuildCtxOpts over the same entries (see Equivalent), so a live
// session's web is always query-ready: /diff and /run/{analysis} can
// analyze a still-running program.
//
// Concurrency contract: the builder itself is NOT safe for concurrent
// use — callers (corpus.Session) serialize Append and Snapshot under one
// lock. The webs Snapshot returns, however, remain safe to read while
// later Appends extend the builder: every growing structure is extended
// strictly append-only (new arena chunks, new byEntry rows, new slots at
// the tail of each view's entry-id list, copied view/object maps), so a
// snapshot's visible prefix is never rewritten. That is what lets a
// long-running diff proceed against a session that keeps streaming.
//
// Large batches reuse the PR-4 sharded machinery: the entry scan runs on
// per-shard arenas and the per-view fill writes disjoint ranges, exactly
// like the parallel path of BuildCtxOpts, with every view offset shifted
// by the web built so far.
type IncrementalBuilder struct {
	name    string
	entries []trace.Entry
	arenas  [][]Name
	byEntry [][]Name
	views   map[Name]*View
	objects map[trace.Loc]ObjectInfo
}

// NewIncrementalBuilder returns an empty builder for a trace with the
// given name.
func NewIncrementalBuilder(name string) *IncrementalBuilder {
	return &IncrementalBuilder{
		name:    name,
		views:   make(map[Name]*View),
		objects: make(map[trace.Loc]ObjectInfo),
	}
}

// Len returns the number of entries appended so far.
func (b *IncrementalBuilder) Len() int { return len(b.entries) }

// Name returns the trace name snapshots carry.
func (b *IncrementalBuilder) Name() string { return b.name }

// Append extends the web with one segment of entries. Entry ids must
// continue the dense 0..n-1 numbering: entries below the current
// high-water mark are skipped (idempotent re-delivery after a dropped
// stream), an entry past it is an error. Entries are copied in, so the
// caller may reuse its batch slice.
func (b *IncrementalBuilder) Append(entries []trace.Entry) error {
	// Drop the already-applied prefix of a re-delivered batch.
	for len(entries) > 0 && int(entries[0].EID) < len(b.entries) {
		entries = entries[1:]
	}
	if len(entries) == 0 {
		return nil
	}
	for i := range entries {
		if want := len(b.entries) + i; int(entries[i].EID) != want {
			return fmt.Errorf("views: incremental append: entry id %d out of order (want %d)",
				entries[i].EID, want)
		}
	}
	start := len(b.entries)
	b.entries = append(b.entries, entries...)
	// Intern in place on our own copy; hand-built batches get their Syms
	// here, already-interned ones are a read-only scan.
	(&trace.Trace{Entries: b.entries[start:]}).EnsureSyms()
	for range entries {
		b.byEntry = append(b.byEntry, nil)
	}
	if len(entries) >= parallelBuildThreshold {
		b.appendSharded(start)
	} else {
		b.appendSerial(start)
	}
	return nil
}

// appendSerial is the small-batch path: one new exact-sized arena, views
// extended in entry order — the incremental mirror of buildSerial.
func (b *IncrementalBuilder) appendSerial(start int) {
	total := 0
	for i := start; i < len(b.entries); i++ {
		total += nameCount(&b.entries[i])
	}
	arena := make([]Name, 0, total)
	for i := start; i < len(b.entries); i++ {
		e := &b.entries[i]
		if e.Event.Kind == trace.KindEOF {
			continue
		}
		off := len(arena)
		arena = appendNames(arena, e)
		names := arena[off:len(arena):len(arena)]
		b.byEntry[e.EID] = names
		for _, n := range names {
			v := b.views[n]
			if v == nil {
				v = &View{Name: n}
				b.views[n] = v
			}
			v.EIDs = append(v.EIDs, e.EID)
		}
		noteObject(b.objects, e.Event.Target, e.EID)
		noteObject(b.objects, e.Self, e.EID)
	}
	b.arenas = append(b.arenas, arena)
}

// appendSharded is the large-batch path: the batch is cut into
// contiguous shards that scan concurrently into their own arenas, the
// merge extends every touched view to its exact new length, and the
// shards fill their disjoint ranges concurrently — buildParallel with
// all view offsets based past the web built so far.
func (b *IncrementalBuilder) appendSharded(start int) {
	workers := runtime.GOMAXPROCS(0)
	batch := len(b.entries) - start
	if workers > batch {
		workers = batch
	}
	t := &trace.Trace{Name: b.name, Entries: b.entries}
	shards := make([]*buildShard, workers)
	per, rem := batch/workers, batch%workers
	lo := start
	for i := range shards {
		hi := lo + per
		if i < rem {
			hi++
		}
		shards[i] = &buildShard{lo: lo, hi: hi}
		lo = hi
	}

	// Incremental appends are bounded by the batch size, so cancellation
	// plumbing is the session's concern, not the builder's: the shard
	// scans run under a background context.
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *buildShard) {
			defer wg.Done()
			s.scan(context.Background(), t, b.byEntry)
		}(s)
	}
	wg.Wait()
	for _, s := range shards {
		b.arenas = append(b.arenas, s.arena)
	}

	// Merge: offsets continue from each view's current length, and every
	// touched view's entry-id list grows to its exact final size before
	// the concurrent fill writes the new tail slots.
	totals := make(map[Name]int)
	offsets := make([]map[Name]int, len(shards))
	for i, s := range shards {
		offsets[i] = make(map[Name]int, len(s.counts))
		for n, c := range s.counts {
			v := b.views[n]
			if v == nil {
				v = &View{Name: n}
				b.views[n] = v
			}
			offsets[i][n] = len(v.EIDs) + totals[n]
			totals[n] += c
		}
	}
	for n, c := range totals {
		v := b.views[n]
		v.EIDs = append(v.EIDs, make([]trace.EntryID, c)...)
	}
	for _, s := range shards {
		for loc, info := range s.objects {
			if _, seen := b.objects[loc]; !seen {
				b.objects[loc] = info
			}
		}
	}

	for i, s := range shards {
		wg.Add(1)
		go func(s *buildShard, next map[Name]int) {
			defer wg.Done()
			for j := s.lo; j < s.hi; j++ {
				eid := t.Entries[j].EID
				for _, n := range b.byEntry[eid] {
					pos := next[n]
					b.views[n].EIDs[pos] = eid
					next[n] = pos + 1
				}
			}
		}(s, offsets[i])
	}
	wg.Wait()
}

// SnapshotTrace returns the trace over everything appended so far. The
// entries slice is capped at the current length, so later Appends —
// which only write past it — never alias what a reader sees.
func (b *IncrementalBuilder) SnapshotTrace() *trace.Trace {
	n := len(b.entries)
	return &trace.Trace{Name: b.name, Entries: b.entries[:n:n]}
}

// Snapshot returns a query-ready Web over everything appended so far.
// The web is immutable from the reader's perspective: view maps and the
// object index are copied (O(views + objects)), while the heavy
// structures — arenas, entry-id lists, the link table — are shared with
// the builder via length-capped slices whose visible prefixes are never
// rewritten by later Appends.
func (b *IncrementalBuilder) Snapshot() *Web {
	n := len(b.entries)
	vs := make(map[Name]*View, len(b.views))
	for name, v := range b.views {
		vs[name] = &View{Name: name, EIDs: v.EIDs[:len(v.EIDs):len(v.EIDs)]}
	}
	objs := make(map[trace.Loc]ObjectInfo, len(b.objects))
	for loc, info := range b.objects {
		objs[loc] = info
	}
	return &Web{
		Trace:   b.SnapshotTrace(),
		views:   vs,
		byEntry: b.byEntry[:n:n],
		arenas:  b.arenas[:len(b.arenas):len(b.arenas)],
		objects: objs,
	}
}

// Equivalent reports whether two webs are semantically identical: same
// trace entries, same views with the same entry-id lists, same per-entry
// links, same object index, same MemBytes. Arena chunking — one arena
// per build shard or per incremental batch — is an implementation detail
// and deliberately not compared, which is why incremental-vs-batch
// equivalence checks use this instead of reflect.DeepEqual on the Web.
// It returns nil on equivalence or an error naming the first difference.
func Equivalent(a, c *Web) error {
	if a.Trace.Len() != c.Trace.Len() {
		return fmt.Errorf("entry counts differ: %d vs %d", a.Trace.Len(), c.Trace.Len())
	}
	// Entry *contents* matter, not just counts: the canonical content
	// digest covers every version-stable field of every entry, so a
	// builder that ever corrupted a payload while copying or interning
	// batches cannot pass. (One encoding pass per side — this is a
	// verification helper, not a hot path.)
	if ad, cd := a.Trace.ComputeDigest(), c.Trace.ComputeDigest(); ad != cd {
		return fmt.Errorf("trace contents differ: digest %s vs %s", ad, cd)
	}
	an, cn := a.Names(), c.Names()
	if len(an) != len(cn) {
		return fmt.Errorf("view counts differ: %d vs %d", len(an), len(cn))
	}
	for i, n := range an {
		if cn[i] != n {
			return fmt.Errorf("view name %d differs: %v vs %v", i, n, cn[i])
		}
		av, cv := a.views[n], c.views[n]
		if len(av.EIDs) != len(cv.EIDs) {
			return fmt.Errorf("view %v sizes differ: %d vs %d", n, len(av.EIDs), len(cv.EIDs))
		}
		for j := range av.EIDs {
			if av.EIDs[j] != cv.EIDs[j] {
				return fmt.Errorf("view %v entry %d differs: %d vs %d", n, j, av.EIDs[j], cv.EIDs[j])
			}
		}
	}
	for eid := range a.byEntry {
		ae, ce := a.byEntry[eid], c.byEntry[eid]
		if len(ae) != len(ce) {
			return fmt.Errorf("entry %d link counts differ: %d vs %d", eid, len(ae), len(ce))
		}
		for j := range ae {
			if ae[j] != ce[j] {
				return fmt.Errorf("entry %d link %d differs: %v vs %v", eid, j, ae[j], ce[j])
			}
		}
	}
	if len(a.objects) != len(c.objects) {
		return fmt.Errorf("object counts differ: %d vs %d", len(a.objects), len(c.objects))
	}
	for loc, ai := range a.objects {
		if ci, ok := c.objects[loc]; !ok || ai != ci {
			return fmt.Errorf("object l%d differs: %+v vs %+v", loc, ai, c.objects[loc])
		}
	}
	if am, cm := a.MemBytes(), c.MemBytes(); am != cm {
		return fmt.Errorf("MemBytes differ: %d vs %d", am, cm)
	}
	return nil
}
