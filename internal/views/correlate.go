package views

import (
	"sort"

	"repro/internal/trace"
)

// Correlation functions Xτ (§3.1) decide whether the views of a given type
// of two trace entries — one from each program version — semantically
// correspond. They accept entries rather than view names because the
// decision may be context-sensitive (value representations).
//
// They are heuristics: the experimental results show they are effective
// for regression cause analysis (§3.1).

// CorrelateMethod implements XCM: two method views correspond when the
// fully qualified method names (signatures, including arity) are equal.
func CorrelateMethod(a, b trace.Entry) bool {
	if a.Method == "" {
		return false
	}
	if a.MethodSym != trace.NoSym && b.MethodSym != trace.NoSym {
		return a.MethodSym == b.MethodSym
	}
	return a.Method == b.Method
}

// CorrelateTarget implements XTO: the target objects of the two entries
// correspond when their value representations are equal, or when their
// class-specific object creation sequence numbers (and classes) are equal.
func CorrelateTarget(a, b trace.Entry) bool {
	return objectsCorrelate(a.Event.Target, b.Event.Target)
}

// CorrelateActive implements XAO on the executing receivers ρ.
func CorrelateActive(a, b trace.Entry) bool {
	return objectsCorrelate(a.Self, b.Self)
}

func objectsCorrelate(x, y trace.Repr) bool {
	if x.ClassSym != trace.NoSym && y.ClassSym != trace.NoSym {
		if x.ClassSym != y.ClassSym {
			return false
		}
	} else if x.Class != y.Class {
		return false
	}
	if x.Loc == trace.NoLoc && y.Loc == trace.NoLoc {
		// Value objects: correlate by value only.
		return x.HasValue() && x.ValueEqual(y)
	}
	if x.Loc == trace.NoLoc || y.Loc == trace.NoLoc {
		return false
	}
	if x.HasValue() && y.HasValue() && x.ValueEqual(y) {
		return true
	}
	return x.Seq != 0 && x.Seq == y.Seq
}

// ThreadMatch pairs the threads of two traces — XTH. Threads are matched
// by the similarity of their spawn-point call-stack ancestry (and their
// ancestors'), taking the closest match; the main thread of each trace
// (the one with no fork ancestry) always matches the other main thread.
type ThreadMatch struct {
	// Pairs maps left-trace thread ids to right-trace thread ids.
	Pairs map[trace.ThreadID]trace.ThreadID
	// LeftOnly and RightOnly list unmatched threads.
	LeftOnly  []trace.ThreadID
	RightOnly []trace.ThreadID
}

type threadDesc struct {
	id       trace.ThreadID
	ancestry []trace.Frame
	order    int
}

// describeThreads extracts each thread's spawn ancestry from the trace's
// fork events; the thread that is never forked (the main thread) gets an
// empty ancestry.
func describeThreads(t *trace.Trace) []threadDesc {
	forked := make(map[trace.ThreadID][]trace.Frame)
	for _, e := range t.Entries {
		if e.Event.Kind != trace.KindFork {
			continue
		}
		var child trace.ThreadID
		for _, c := range e.Event.Member {
			child = child*10 + trace.ThreadID(c-'0')
		}
		forked[child] = e.Event.Stack
	}
	var out []threadDesc
	for i, id := range t.ThreadIDs() {
		out = append(out, threadDesc{id: id, ancestry: forked[id], order: i})
	}
	return out
}

// MatchThreads computes XTH between two traces. Matching is greedy on
// descending similarity with spawn order as the tiebreaker, so it is
// deterministic.
func MatchThreads(l, r *trace.Trace) ThreadMatch {
	return matchDescs(describeThreads(l), describeThreads(r))
}

// ThreadMatcher computes MatchThreads against a fixed left trace and a
// right trace that grows append-only across calls, amortizing the
// description pass: the left descriptions are extracted once, and each
// Match folds in only the right entries appended since the previous
// call. Successive calls must pass snapshots of the same growing trace
// (each an append-only extension of the previous one); the result is
// identical to MatchThreads over the same pair. Not safe for concurrent
// use.
type ThreadMatcher struct {
	lt      []threadDesc
	forked  map[trace.ThreadID][]trace.Frame
	seen    map[trace.ThreadID]bool
	order   []trace.ThreadID
	scanned int
}

// NewThreadMatcher pins the left-hand trace of a matcher.
func NewThreadMatcher(l *trace.Trace) *ThreadMatcher {
	return &ThreadMatcher{
		lt:     describeThreads(l),
		forked: make(map[trace.ThreadID][]trace.Frame),
		seen:   make(map[trace.ThreadID]bool),
	}
}

// Match computes XTH between the pinned left trace and the snapshot r,
// scanning only entries beyond the previous snapshot's length.
func (m *ThreadMatcher) Match(r *trace.Trace) ThreadMatch {
	for _, e := range r.Entries[m.scanned:] {
		if e.Event.Kind == trace.KindFork {
			var child trace.ThreadID
			for _, c := range e.Event.Member {
				child = child*10 + trace.ThreadID(c-'0')
			}
			m.forked[child] = e.Event.Stack
		}
		if !e.IsEOF() && !m.seen[e.TID] {
			m.seen[e.TID] = true
			m.order = append(m.order, e.TID)
		}
	}
	m.scanned = len(r.Entries)
	rt := make([]threadDesc, 0, len(m.order))
	for i, id := range m.order {
		rt = append(rt, threadDesc{id: id, ancestry: m.forked[id], order: i})
	}
	return matchDescs(m.lt, rt)
}

// matchDescs runs the greedy matching over extracted descriptions — the
// shared core of MatchThreads and ThreadMatcher.Match.
func matchDescs(lt, rt []threadDesc) ThreadMatch {
	type cand struct {
		li, ri int
		score  float64
	}
	var cands []cand
	for i, a := range lt {
		for j, b := range rt {
			// Only threads of equal "kind" may pair: main with main
			// (no ancestry), forked with forked.
			if (len(a.ancestry) == 0) != (len(b.ancestry) == 0) {
				continue
			}
			score := trace.StackSimilarity(a.ancestry, b.ancestry)
			if len(a.ancestry) == 0 {
				score = 1 // main threads always correlate
			}
			if score <= 0 {
				continue
			}
			cands = append(cands, cand{i, j, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].li != cands[j].li {
			return cands[i].li < cands[j].li
		}
		return cands[i].ri < cands[j].ri
	})
	m := ThreadMatch{Pairs: make(map[trace.ThreadID]trace.ThreadID)}
	usedL := make(map[int]bool)
	usedR := make(map[int]bool)
	for _, c := range cands {
		if usedL[c.li] || usedR[c.ri] {
			continue
		}
		usedL[c.li], usedR[c.ri] = true, true
		m.Pairs[lt[c.li].id] = rt[c.ri].id
	}
	for i, d := range lt {
		if !usedL[i] {
			m.LeftOnly = append(m.LeftOnly, d.id)
		}
	}
	for j, d := range rt {
		if !usedR[j] {
			m.RightOnly = append(m.RightOnly, d.id)
		}
	}
	return m
}
