package views

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// appendInSegments feeds tr to a fresh builder in random-sized segments
// drawn from rng, returning the builder.
func appendInSegments(t *testing.T, tr *trace.Trace, rng *rand.Rand, maxSeg int) *IncrementalBuilder {
	t.Helper()
	b := NewIncrementalBuilder(tr.Name)
	for lo := 0; lo < tr.Len(); {
		hi := lo + 1 + rng.Intn(maxSeg)
		if hi > tr.Len() {
			hi = tr.Len()
		}
		if err := b.Append(tr.Entries[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	return b
}

// TestIncrementalMatchesBatch is the incremental-vs-batch equivalence
// property: a builder fed N random segment appends snapshots to a web
// semantically identical to a fresh build over the same entries — for
// small serial appends, threshold-crossing sharded appends, and
// everything between.
func TestIncrementalMatchesBatch(t *testing.T) {
	for _, tc := range []struct {
		n, maxSeg int
	}{
		{1, 1},
		{50, 7},
		{1000, 64},
		{9001, 500},
		{20000, 40000}, // one append over the sharded threshold
		{40000, 17000}, // mixed serial and sharded appends
	} {
		rng := rand.New(rand.NewSource(int64(tc.n)*31 + int64(tc.maxSeg)))
		tr := shardedFixture(tc.n, int64(tc.n))
		b := appendInSegments(t, tr, rng, tc.maxSeg)
		fresh, err := BuildCtxOpts(context.Background(), tr, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("n=%d maxSeg=%d", tc.n, tc.maxSeg)
		got := b.Snapshot()
		requireEqualWebs(t, fresh, got, label)
		if err := Equivalent(fresh, got); err != nil {
			t.Errorf("%s: Equivalent: %v", label, err)
		}
		if b.Len() != tr.Len() {
			t.Errorf("%s: builder holds %d entries, want %d", label, b.Len(), tr.Len())
		}
		if !reflect.DeepEqual(b.SnapshotTrace().Entries, tr.Entries) {
			t.Errorf("%s: snapshot trace entries differ from the source", label)
		}
	}
}

// TestIncrementalMidStreamSnapshots checks every prefix: after each
// append, the snapshot equals a fresh build over the prefix, so a live
// session is query-ready at any moment, not only at the end.
func TestIncrementalMidStreamSnapshots(t *testing.T) {
	tr := shardedFixture(600, 77)
	rng := rand.New(rand.NewSource(77))
	b := NewIncrementalBuilder(tr.Name)
	for lo := 0; lo < tr.Len(); {
		hi := lo + 1 + rng.Intn(90)
		if hi > tr.Len() {
			hi = tr.Len()
		}
		if err := b.Append(tr.Entries[lo:hi]); err != nil {
			t.Fatal(err)
		}
		prefix := &trace.Trace{Name: tr.Name, Entries: tr.Entries[:hi:hi]}
		fresh, err := BuildCtxOpts(context.Background(), prefix, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := Equivalent(fresh, b.Snapshot()); err != nil {
			t.Fatalf("prefix [0,%d): %v", hi, err)
		}
		lo = hi
	}
}

// TestIncrementalSnapshotStableUnderAppends is the liveness property the
// server relies on: webs snapshotted mid-stream stay valid and unchanged
// while the builder keeps appending (readers hold a diff over them
// concurrently). Run under -race this doubles as the no-rewrite proof;
// it also checks the reader goroutines drain (no leaks).
func TestIncrementalSnapshotStableUnderAppends(t *testing.T) {
	tr := shardedFixture(4000, 13)
	rng := rand.New(rand.NewSource(13))
	b := NewIncrementalBuilder(tr.Name)

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	type snap struct {
		web *Web
		n   int
	}
	checks := make(chan error, 64)
	reader := func(s snap) {
		defer wg.Done()
		// Re-walk the snapshot several times while appends continue.
		for k := 0; k < 3; k++ {
			if got := s.web.Trace.Len(); got != s.n {
				checks <- fmt.Errorf("snapshot length changed: %d -> %d", s.n, got)
				return
			}
			total := 0
			for _, n := range s.web.Names() {
				v := s.web.View(n)
				for i, eid := range v.EIDs {
					if int(eid) >= s.n {
						checks <- fmt.Errorf("view %s leaked future entry %d into a %d-entry snapshot", n, eid, s.n)
						return
					}
					if i > 0 && v.EIDs[i-1] >= eid {
						checks <- fmt.Errorf("view %s no longer ascending at %d", n, i)
						return
					}
				}
				total += v.Len()
			}
			if total == 0 && s.n > 0 {
				checks <- fmt.Errorf("%d-entry snapshot has empty views", s.n)
				return
			}
		}
		checks <- nil
	}

	for lo := 0; lo < tr.Len(); {
		hi := lo + 1 + rng.Intn(300)
		if hi > tr.Len() {
			hi = tr.Len()
		}
		if err := b.Append(tr.Entries[lo:hi]); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go reader(snap{web: b.Snapshot(), n: hi})
		lo = hi
	}
	wg.Wait()
	close(checks)
	for err := range checks {
		if err != nil {
			t.Error(err)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("snapshot readers leaked goroutines: %d before, %d after", baseline, g)
	}
}

func TestIncrementalAppendValidation(t *testing.T) {
	tr := shardedFixture(40, 5)
	b := NewIncrementalBuilder("v")
	if err := b.Append(tr.Entries[:10]); err != nil {
		t.Fatal(err)
	}
	// Re-delivery of an already-applied prefix is idempotent.
	if err := b.Append(tr.Entries[:20]); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 20 {
		t.Fatalf("after overlapping redelivery: %d entries, want 20", b.Len())
	}
	// A gap is an error.
	if err := b.Append(tr.Entries[25:]); err == nil {
		t.Error("Append accepted a gapped segment")
	}
	// Empty appends are no-ops.
	if err := b.Append(nil); err != nil || b.Len() != 20 {
		t.Errorf("empty append: err=%v len=%d", err, b.Len())
	}
}

// BenchmarkIncrementalAppend measures streaming-ingestion throughput:
// entries appended per second through the incremental builder in
// capture-sized segments. rprism-bench reports the same figure as its
// entries_per_sec row.
func BenchmarkIncrementalAppend(b *testing.B) {
	tr := shardedFixture(1<<15, 42)
	const seg = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ib := NewIncrementalBuilder(tr.Name)
		for lo := 0; lo < tr.Len(); lo += seg {
			hi := lo + seg
			if hi > tr.Len() {
				hi = tr.Len()
			}
			if err := ib.Append(tr.Entries[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	entries := float64(tr.Len()) * float64(b.N)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(entries/secs, "entries/s")
	}
}
