package views

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/trace"
)

// concurrentFixture builds an interned trace with enough structure to
// exercise every view type and navigation path.
func concurrentFixture() *trace.Trace {
	t := trace.New("concurrent")
	for i := 0; i < 400; i++ {
		obj := trace.Repr{Loc: trace.Loc(i%17 + 1), Class: "Node", Seq: i%17 + 1}
		t.Append(trace.ThreadID(i%3+1), fmt.Sprintf("Node.step%d/0", i%5), obj,
			trace.Event{Kind: trace.KindCall, Target: obj,
				Member: fmt.Sprintf("Node.step%d/0", (i+1)%5)})
	}
	t.EnsureSyms()
	return t
}

// TestWebConcurrentReaders drives every read path of a shared web from
// many goroutines at once. Run under -race it verifies the Build
// contract the corpus view cache depends on: a built web is immutable
// and needs no synchronization.
func TestWebConcurrentReaders(t *testing.T) {
	tr := concurrentFixture()
	w := Build(tr)
	names := w.Names()
	if len(names) == 0 {
		t.Fatal("fixture produced no views")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				n := names[(g+round)%len(names)]
				v := w.View(n)
				if v == nil || v.Len() == 0 {
					t.Errorf("view %s missing or empty", n)
					return
				}
				eid := v.EIDs[round%v.Len()]
				if _, ok := w.PosIn(n, eid); !ok {
					t.Errorf("PosIn(%s, %d) lost a member entry", n, eid)
					return
				}
				w.Window(n, eid, 3)
				w.NamesOf(eid)
				w.Count()
				w.Names()
				if o, ok := w.Object(trace.Loc(round%17 + 1)); !ok || o.Class != "Node" {
					t.Errorf("Object(%d) = %+v, %v", round%17+1, o, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBuildConcurrentOverInternedTrace builds webs over the same
// fully-interned trace from several goroutines — the corpus cache-miss
// pattern where two requests race to construct views of one trace.
func TestBuildConcurrentOverInternedTrace(t *testing.T) {
	tr := concurrentFixture()
	var wg sync.WaitGroup
	webs := make([]*Web, 6)
	for i := range webs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			webs[i] = Build(tr)
		}(i)
	}
	wg.Wait()
	want := webs[0].Count()
	for _, w := range webs[1:] {
		if w.Count() != want {
			t.Errorf("concurrent Build diverged: %+v vs %+v", w.Count(), want)
		}
	}
}
