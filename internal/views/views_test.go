package views

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
)

// runTrace executes a program and returns its trace.
func runTrace(t *testing.T, src string, args ...string) *trace.Trace {
	t.Helper()
	res, err := interp.Run(lang.MustParse(src), interp.Options{Args: args})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("runtime error: %v", res.Err)
	}
	return res.Trace
}

const viewsDemo = `
class Log {
  Int count;
  void add(String msg) { this.count = this.count + 1; return; }
}
class Util {
  Int min;
  Util(Int m) { super(); this.min = m; }
  Bool ok(Int x) { return x >= this.min; }
}
class Main {
  void main() {
    let log = new Log();
    log.count = 0;
    let u = new Util(32);
    log.add("start");
    Sys.print(u.ok(40));
    log.add("done");
  }
}`

func TestThreadViewEqualsFullTraceWhenSingleThreaded(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	tv := w.ThreadView(0)
	if tv == nil {
		t.Fatal("no thread view for main thread")
	}
	// "The example is single threaded, so there is a single thread view
	// which is identical to the full execution trace" (Fig. 2).
	if tv.Len() != tr.Len() {
		t.Errorf("thread view has %d entries, trace has %d", tv.Len(), tr.Len())
	}
	for i, eid := range tv.EIDs {
		if int(eid) != i {
			t.Fatalf("thread view eid %d at position %d", eid, i)
		}
	}
}

func TestViewsPartitionByMapping(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	// Every non-eof entry belongs to exactly one thread view and at most
	// one method/TO/AO view; membership is consistent with NamesOf.
	for _, e := range tr.Entries {
		names := w.NamesOf(e.EID)
		if len(names) == 0 {
			t.Fatalf("entry %d belongs to no view", e.EID)
		}
		for _, n := range names {
			if _, ok := w.PosIn(n, e.EID); !ok {
				t.Fatalf("entry %d not found in its own view %v", e.EID, n)
			}
		}
	}
}

func TestMethodViewContents(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	mv := w.View(MethodName("Log.add/1"))
	if mv == nil {
		t.Fatal("no method view for Log.add/1")
	}
	// Log.add executes twice; each execution contributes get+set events
	// (count increment) recorded while Log.add is on top of the stack.
	for _, e := range w.Entries(MethodName("Log.add/1")) {
		if e.Method != "Log.add/1" {
			t.Errorf("entry %d in method view has context %q", e.EID, e.Method)
		}
	}
	if mv.Len() < 4 {
		t.Errorf("method view too small: %d", mv.Len())
	}
}

func TestTargetObjectViewContents(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	// Find the Log object's location from its init event.
	var logLoc trace.Loc
	for _, e := range tr.Entries {
		if e.Event.Kind == trace.KindInit && e.Event.Member == "Log" {
			logLoc = e.Event.Target.Loc
		}
	}
	if logLoc == trace.NoLoc {
		t.Fatal("no Log init event")
	}
	tov := w.View(LocName(logLoc))
	if tov == nil {
		t.Fatal("no target object view for Log object")
	}
	// The TO view contains only events targeting that object: its init,
	// field accesses on it, and calls/returns where it is the callee.
	for _, e := range w.Entries(LocName(logLoc)) {
		if e.Event.Target.Loc != logLoc {
			t.Errorf("entry %d targets loc %d, not %d", e.EID, e.Event.Target.Loc, logLoc)
		}
	}
	if tov.Len() < 5 {
		t.Errorf("TO view unexpectedly small: %d", tov.Len())
	}
}

func TestActiveObjectView(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	var utilLoc trace.Loc
	for _, e := range tr.Entries {
		if e.Event.Kind == trace.KindInit && e.Event.Member == "Util" {
			utilLoc = e.Event.Target.Loc
		}
	}
	aov := w.View(ActiveName(utilLoc))
	if aov == nil {
		t.Fatal("no AO view for Util object")
	}
	for _, e := range w.Entries(ActiveName(utilLoc)) {
		if e.Self.Loc != utilLoc {
			t.Errorf("entry %d self is %d, want %d", e.EID, e.Self.Loc, utilLoc)
		}
	}
}

func TestStringTargetViewsGroupByValue(t *testing.T) {
	tr := runTrace(t, `
class Main {
  void main() {
    let a = "text/html";
    let b = "text/html";
    let c = "text/plain";
    a.equals("x");
    b.equals("y");
    c.equals("z");
  }
}`)
	w := Build(tr)
	var strViews []*View
	for _, n := range w.Names() {
		if n.Type == TargetObject && n.Key&strValueBit != 0 {
			strViews = append(strViews, w.View(n))
		}
	}
	// Two distinct string values → two string TO views.
	if len(strViews) != 2 {
		t.Fatalf("string TO views = %d, want 2", len(strViews))
	}
}

func TestWindowClamping(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	tv := w.ThreadView(0)
	first := tv.EIDs[0]
	win := w.Window(ThreadName(0), first, 3)
	if len(win) != 4 { // position 0: itself + 3 following
		t.Errorf("window at start = %d entries, want 4", len(win))
	}
	last := tv.EIDs[len(tv.EIDs)-1]
	win = w.Window(ThreadName(0), last, 3)
	if len(win) != 4 {
		t.Errorf("window at end = %d entries, want 4", len(win))
	}
	mid := tv.EIDs[10]
	win = w.Window(ThreadName(0), mid, 3)
	if len(win) != 7 {
		t.Errorf("window mid = %d entries, want 7", len(win))
	}
	if w.Window(ThreadName(99), 0, 3) != nil {
		t.Error("window of missing view must be nil")
	}
}

func TestNavigationAcrossViews(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	// Take a call event on the Log object and navigate: it must appear in
	// the thread view, the caller's method view, and the Log TO view.
	for _, e := range tr.Entries {
		if e.Event.Kind != trace.KindCall || e.Event.Member != "Log.add/1" {
			continue
		}
		names := w.NamesOf(e.EID)
		hasType := map[Type]bool{}
		for _, n := range names {
			hasType[n.Type] = true
		}
		if !hasType[Thread] || !hasType[Method] || !hasType[TargetObject] {
			t.Errorf("call entry %d views = %v", e.EID, names)
		}
	}
}

func TestCount(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	c := w.Count()
	if c.Thread != 1 {
		t.Errorf("thread views = %d", c.Thread)
	}
	if c.Method < 4 { // Main.main, Log.add, Util.ok, ctors...
		t.Errorf("method views = %d", c.Method)
	}
	if c.Total != c.Thread+c.Method+c.TargetObject+c.ActiveObject {
		t.Errorf("counts don't add up: %+v", c)
	}
}

func TestObjectInfo(t *testing.T) {
	tr := runTrace(t, viewsDemo)
	w := Build(tr)
	found := 0
	for l := trace.Loc(1); l < 10; l++ {
		if o, ok := w.Object(l); ok {
			found++
			if o.Class == "" || o.Seq == 0 {
				t.Errorf("incomplete object info: %+v", o)
			}
		}
	}
	if found < 3 { // Main, Log, Util
		t.Errorf("objects observed = %d, want >= 3", found)
	}
}

// ---- correlation ----

func entryWith(method string, target trace.Repr) trace.Entry {
	return trace.Entry{Method: method, Event: trace.Event{Kind: trace.KindCall, Target: target}}
}

func TestCorrelateMethod(t *testing.T) {
	a := entryWith("C.m/2", trace.Repr{})
	b := entryWith("C.m/2", trace.Repr{})
	c := entryWith("C.m/3", trace.Repr{})
	if !CorrelateMethod(a, b) {
		t.Error("equal signatures must correlate")
	}
	if CorrelateMethod(a, c) {
		t.Error("different arity must not correlate")
	}
	if CorrelateMethod(trace.Entry{}, trace.Entry{}) {
		t.Error("empty methods must not correlate")
	}
}

func TestCorrelateTarget(t *testing.T) {
	byValue := func(h uint64) trace.Repr {
		return trace.Repr{Loc: 5, Class: "C", Hash: h, Str: "v", Seq: 9}
	}
	a := entryWith("m", byValue(7))
	b := entryWith("m", trace.Repr{Loc: 8, Class: "C", Hash: 7, Str: "v", Seq: 1})
	if !CorrelateTarget(a, b) {
		t.Error("equal value representations must correlate")
	}
	// Same class + same seq, no values: correlate by creation sequence.
	c := entryWith("m", trace.Repr{Loc: 1, Class: "C", Seq: 3})
	d := entryWith("m", trace.Repr{Loc: 2, Class: "C", Seq: 3})
	if !CorrelateTarget(c, d) {
		t.Error("equal creation sequence must correlate")
	}
	e := entryWith("m", trace.Repr{Loc: 2, Class: "C", Seq: 4})
	if CorrelateTarget(c, e) {
		t.Error("different seq and no value must not correlate")
	}
	f := entryWith("m", trace.Repr{Loc: 2, Class: "D", Seq: 3})
	if CorrelateTarget(c, f) {
		t.Error("different classes must not correlate")
	}
	// Primitive targets (strings) correlate by value only.
	s1 := entryWith("m", trace.Repr{Class: "String", Hash: 5, Str: "x"})
	s2 := entryWith("m", trace.Repr{Class: "String", Hash: 5, Str: "x"})
	s3 := entryWith("m", trace.Repr{Class: "String", Hash: 6, Str: "y"})
	if !CorrelateTarget(s1, s2) || CorrelateTarget(s1, s3) {
		t.Error("string correlation by value failed")
	}
}

func TestCorrelateActive(t *testing.T) {
	a := trace.Entry{Self: trace.Repr{Loc: 1, Class: "C", Seq: 2}}
	b := trace.Entry{Self: trace.Repr{Loc: 9, Class: "C", Seq: 2}}
	c := trace.Entry{Self: trace.Repr{Loc: 9, Class: "C", Seq: 5}}
	if !CorrelateActive(a, b) {
		t.Error("same class+seq must correlate")
	}
	if CorrelateActive(a, c) {
		t.Error("different seq must not correlate")
	}
}

const threadDemo = `
class Main {
  void workA() { let i = 0; while (i < 5) { Sys.print("a" + i); i = i + 1; } }
  void workB() { let i = 0; while (i < 5) { Sys.print("b" + i); i = i + 1; } }
  void main() {
    spawn { this.workA(); }
    spawn { this.workB(); }
    Sys.print("main");
  }
}`

func TestMatchThreadsIdenticalPrograms(t *testing.T) {
	l := runTrace(t, threadDemo)
	r := runTrace(t, threadDemo)
	m := MatchThreads(l, r)
	if len(m.Pairs) != 3 {
		t.Fatalf("matched %d pairs, want 3 (%+v)", len(m.Pairs), m)
	}
	if m.Pairs[0] != 0 {
		t.Errorf("main threads must match: %v", m.Pairs)
	}
	// Spawn order tiebreak: 1↔1, 2↔2.
	if m.Pairs[1] != 1 || m.Pairs[2] != 2 {
		t.Errorf("forked threads mismatched: %v", m.Pairs)
	}
	if len(m.LeftOnly) != 0 || len(m.RightOnly) != 0 {
		t.Errorf("unmatched threads: %+v", m)
	}
}

func TestMatchThreadsExtraThread(t *testing.T) {
	l := runTrace(t, threadDemo)
	r := runTrace(t, `
class Main {
  void workA() { let i = 0; while (i < 5) { Sys.print("a" + i); i = i + 1; } }
  void workB() { let i = 0; while (i < 5) { Sys.print("b" + i); i = i + 1; } }
  void main() {
    spawn { this.workA(); }
    Sys.print("main");
  }
}`)
	m := MatchThreads(l, r)
	if len(m.Pairs) != 2 {
		t.Fatalf("matched %d pairs, want 2", len(m.Pairs))
	}
	if len(m.LeftOnly) != 1 {
		t.Errorf("left-only = %v, want one unmatched", m.LeftOnly)
	}
}

func TestMatchThreadsMainNeverPairsWithWorker(t *testing.T) {
	l := runTrace(t, `class Main { void main() { Sys.print("x"); } }`)
	r := runTrace(t, threadDemo)
	m := MatchThreads(l, r)
	if m.Pairs[0] != 0 {
		t.Errorf("main must pair with main: %v", m.Pairs)
	}
	if len(m.RightOnly) != 2 {
		t.Errorf("right-only = %v", m.RightOnly)
	}
}
