// Package views implements the semantic-views trace abstraction of §2.4:
// named projections over execution traces that selectively aggregate
// events with shared semantic traits. Four view types are provided —
// thread views (TH), method views (CM), target object views (TO), and
// active object views (AO) — linked into a navigable "web" by retaining
// the indices of the original trace inside each projected view.
package views

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Type enumerates the view types (τ in Fig. 7).
type Type uint8

const (
	// Thread views contain the events of one thread, in execution order.
	Thread Type = iota
	// Method views contain the events that occur while one fully
	// qualified method is at the top of the call stack.
	Method
	// TargetObject views contain the events in which one object is the
	// target of a method call, field access, or creation.
	TargetObject
	// ActiveObject views contain the events that occur while one object
	// is on top of the call stack (the executing receiver).
	ActiveObject
)

var typeNames = [...]string{"TH", "CM", "TO", "AO"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Name identifies a specific view: ⟨τ, ν⟩ of Fig. 7.
type Name struct {
	Type Type
	Key  string
}

func (n Name) String() string { return fmt.Sprintf("⟨%s,%s⟩", n.Type, n.Key) }

// View is one projection: the entry ids (ascending) of the base trace
// that belong to the view. Retaining base-trace indices is what links
// views to each other (§2.4).
type View struct {
	Name Name
	EIDs []trace.EntryID
}

// Len returns the number of entries in the view.
func (v *View) Len() int { return len(v.EIDs) }

// ObjectInfo summarizes one heap object observed in a trace.
type ObjectInfo struct {
	Loc      trace.Loc
	Class    string
	Seq      int
	FirstEID trace.EntryID
}

// Web is the complete linked structure of all views over one trace.
type Web struct {
	Trace   *trace.Trace
	views   map[Name]*View
	byEntry [][]Name // view names per entry id (the union of the ω mappings)
	objects map[trace.Loc]ObjectInfo
}

// Build constructs the view web in a single pass over the trace, applying
// the view-name mapping functions ωτ of Fig. 7 to every entry.
func Build(t *trace.Trace) *Web {
	w := &Web{
		Trace:   t,
		views:   make(map[Name]*View),
		byEntry: make([][]Name, len(t.Entries)),
		objects: make(map[trace.Loc]ObjectInfo),
	}
	for _, e := range t.Entries {
		if e.IsEOF() {
			continue
		}
		names := MapEntry(e)
		w.byEntry[e.EID] = names
		for _, n := range names {
			v := w.views[n]
			if v == nil {
				v = &View{Name: n}
				w.views[n] = v
			}
			v.EIDs = append(v.EIDs, e.EID)
		}
		w.noteObject(e.Event.Target, e.EID)
		w.noteObject(e.Self, e.EID)
	}
	return w
}

func (w *Web) noteObject(r trace.Repr, eid trace.EntryID) {
	if r.Loc == trace.NoLoc {
		return
	}
	if _, seen := w.objects[r.Loc]; !seen {
		w.objects[r.Loc] = ObjectInfo{Loc: r.Loc, Class: r.Class, Seq: r.Seq, FirstEID: eid}
	}
}

// MapEntry computes the set of view names an entry belongs to — the union
// of the per-type mapping functions ωτ (Fig. 7).
func MapEntry(e trace.Entry) []Name {
	names := make([]Name, 0, 4)
	names = append(names, Name{Thread, fmt.Sprintf("%d", e.TID)})
	if e.Method != "" {
		names = append(names, Name{Method, e.Method})
	}
	if key, ok := targetKey(e.Event); ok {
		names = append(names, Name{TargetObject, key})
	}
	if e.Self.Loc != trace.NoLoc {
		names = append(names, Name{ActiveObject, locKey(e.Self.Loc)})
	}
	return names
}

// targetKey implements ωTO: the target object's location for field, method
// and creation events. String value objects, which have no location, are
// grouped by value (Java strings are heap objects; ours are primitives).
// Other primitives get no target object view.
func targetKey(ev trace.Event) (string, bool) {
	switch ev.Kind {
	case trace.KindGet, trace.KindSet, trace.KindCall, trace.KindReturn, trace.KindInit:
		t := ev.Target
		if t.Loc != trace.NoLoc {
			return locKey(t.Loc), true
		}
		if t.Class == "String" && t.HasValue() {
			return fmt.Sprintf("str:%x", t.Hash), true
		}
	}
	return "", false
}

func locKey(l trace.Loc) string { return fmt.Sprintf("l%d", l) }

// LocName returns the target-object view name for a heap location.
func LocName(l trace.Loc) Name { return Name{TargetObject, locKey(l)} }

// View returns the view with the given name, or nil.
func (w *Web) View(n Name) *View { return w.views[n] }

// NamesOf returns the view names entry eid belongs to (the links).
func (w *Web) NamesOf(eid trace.EntryID) []Name {
	if eid < 0 || int(eid) >= len(w.byEntry) {
		return nil
	}
	return w.byEntry[eid]
}

// Names returns all view names, sorted (deterministic iteration).
func (w *Web) Names() []Name {
	out := make([]Name, 0, len(w.views))
	for n := range w.views {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// PosIn returns the position of entry eid inside view n, using binary
// search over the view's ascending entry ids. This is the navigation
// operation: "the trace index found in the entry can be used to navigate
// from the entry found in one view to its position in another" (§2.4).
func (w *Web) PosIn(n Name, eid trace.EntryID) (int, bool) {
	v := w.views[n]
	if v == nil {
		return 0, false
	}
	i := sort.Search(len(v.EIDs), func(k int) bool { return v.EIDs[k] >= eid })
	if i < len(v.EIDs) && v.EIDs[i] == eid {
		return i, true
	}
	return 0, false
}

// Window returns the entry ids of view n within ±delta positions of the
// position of eid in that view — the fixed-size window win(η,δ) of Fig. 9,
// applied to a projected view rather than the raw trace.
func (w *Web) Window(n Name, eid trace.EntryID, delta int) []trace.EntryID {
	pos, ok := w.PosIn(n, eid)
	if !ok {
		return nil
	}
	v := w.views[n]
	lo := pos - delta
	if lo < 0 {
		lo = 0
	}
	hi := pos + delta + 1
	if hi > len(v.EIDs) {
		hi = len(v.EIDs)
	}
	return v.EIDs[lo:hi]
}

// Entries materializes the trace entries of a view (testing/CLI helper).
func (w *Web) Entries(n Name) []trace.Entry {
	v := w.views[n]
	if v == nil {
		return nil
	}
	out := make([]trace.Entry, len(v.EIDs))
	for i, id := range v.EIDs {
		out[i] = w.Trace.Entries[id]
	}
	return out
}

// Object returns what is known about a heap location.
func (w *Web) Object(l trace.Loc) (ObjectInfo, bool) {
	o, ok := w.objects[l]
	return o, ok
}

// Counts tallies views by type — the "Number of Views" columns of Table 2.
type Counts struct {
	Total        int
	Thread       int
	Method       int
	TargetObject int
	ActiveObject int
}

// Count computes view counts for the web.
func (w *Web) Count() Counts {
	var c Counts
	for n := range w.views {
		c.Total++
		switch n.Type {
		case Thread:
			c.Thread++
		case Method:
			c.Method++
		case TargetObject:
			c.TargetObject++
		case ActiveObject:
			c.ActiveObject++
		}
	}
	return c
}

// ThreadView returns the thread view for a tid, or nil.
func (w *Web) ThreadView(tid trace.ThreadID) *View {
	return w.views[Name{Thread, fmt.Sprintf("%d", tid)}]
}
