// Package views implements the semantic-views trace abstraction of §2.4:
// named projections over execution traces that selectively aggregate
// events with shared semantic traits. Four view types are provided —
// thread views (TH), method views (CM), target object views (TO), and
// active object views (AO) — linked into a navigable "web" by retaining
// the indices of the original trace inside each projected view.
//
// View names are keyed by integers (thread ids, interned method symbols,
// heap locations, value hashes), never by formatted strings: the web over
// a trace of n entries is built with O(n) word-sized map operations and
// no per-entry string formatting.
package views

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Type enumerates the view types (τ in Fig. 7).
type Type uint8

const (
	// Thread views contain the events of one thread, in execution order.
	Thread Type = iota
	// Method views contain the events that occur while one fully
	// qualified method is at the top of the call stack.
	Method
	// TargetObject views contain the events in which one object is the
	// target of a method call, field access, or creation.
	TargetObject
	// ActiveObject views contain the events that occur while one object
	// is on top of the call stack (the executing receiver).
	ActiveObject
)

var typeNames = [...]string{"TH", "CM", "TO", "AO"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a view-type mnemonic (TH, CM, TO, AO).
func ParseType(s string) (Type, bool) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), true
		}
	}
	return 0, false
}

// strValueBit tags TargetObject keys that identify a value object by its
// value hash rather than a heap location (heap locations are small
// positive integers; bit 63 is never set for them).
const strValueBit = uint64(1) << 63

// Name identifies a specific view: ⟨τ, ν⟩ of Fig. 7. Key is an integer in
// a per-type keyspace: the thread id for TH, the interned method symbol
// for CM, the heap location (or tagged value hash) for TO, and the heap
// location for AO.
type Name struct {
	Type Type
	Key  uint64
}

// String renders the ⟨τ,ν⟩ notation. Like KeyString it formats without
// fmt: rendering shows up in allocation profiles whenever results are
// serialized (view listings, diff reports), and fmt's reflection-driven
// path boxes every argument.
func (n Name) String() string {
	b := make([]byte, 0, 24)
	b = append(b, "⟨"...)
	b = append(b, n.Type.String()...)
	b = append(b, ',')
	b = n.appendKey(b)
	b = append(b, "⟩"...)
	return string(b)
}

// KeyString renders the key in the human-readable notation used by the
// CLI: a decimal thread id, a qualified method name, "l<loc>" for heap
// objects, or "str:<hex hash>" for value objects.
func (n Name) KeyString() string {
	return string(n.appendKey(make([]byte, 0, 20)))
}

// appendKey appends KeyString's rendering to b with plain integer/hex
// formatting — one output allocation per rendered name, no fmt.
func (n Name) appendKey(b []byte) []byte {
	switch n.Type {
	case Thread:
		return strconv.AppendUint(b, n.Key, 10)
	case Method:
		return append(b, trace.SymStr(trace.Sym(n.Key))...)
	case TargetObject:
		if n.Key&strValueBit != 0 {
			b = append(b, "str:"...)
			return strconv.AppendUint(b, n.Key&^strValueBit, 16)
		}
		b = append(b, 'l')
		return strconv.AppendUint(b, n.Key, 10)
	case ActiveObject:
		b = append(b, 'l')
		return strconv.AppendUint(b, n.Key, 10)
	}
	return strconv.AppendUint(b, n.Key, 10)
}

// ThreadName returns the thread view name for a thread id.
func ThreadName(tid trace.ThreadID) Name { return Name{Thread, uint64(tid)} }

// MethodName returns the method view name for a qualified method
// signature, interning it if needed.
func MethodName(qualified string) Name {
	return Name{Method, uint64(trace.Intern(qualified))}
}

// LocName returns the target-object view name for a heap location.
func LocName(l trace.Loc) Name { return Name{TargetObject, uint64(l)} }

// ActiveName returns the active-object view name for a heap location.
func ActiveName(l trace.Loc) Name { return Name{ActiveObject, uint64(l)} }

// StrValueName returns the target-object view name grouping value objects
// by their value hash.
func StrValueName(hash uint64) Name {
	return Name{TargetObject, strValueBit | (hash &^ strValueBit)}
}

// ParseName parses the CLI notation produced by KeyString back into a
// view name: TH takes a decimal tid, CM a qualified method name, TO
// "l<loc>" or "str:<hex>", AO "l<loc>".
func ParseName(typ Type, key string) (Name, error) {
	switch typ {
	case Thread:
		tid, err := strconv.ParseUint(key, 10, 32)
		if err != nil {
			return Name{}, fmt.Errorf("views: thread key %q: %w", key, err)
		}
		return Name{Thread, tid}, nil
	case Method:
		sym, ok := trace.Symbols.Lookup(key)
		if !ok {
			return Name{}, fmt.Errorf("views: unknown method %q", key)
		}
		return Name{Method, uint64(sym)}, nil
	case TargetObject, ActiveObject:
		if rest, ok := strings.CutPrefix(key, "str:"); ok && typ == TargetObject {
			h, err := strconv.ParseUint(rest, 16, 64)
			if err != nil {
				return Name{}, fmt.Errorf("views: value key %q: %w", key, err)
			}
			return StrValueName(h), nil
		}
		rest, ok := strings.CutPrefix(key, "l")
		if !ok {
			return Name{}, fmt.Errorf("views: object key %q must be l<loc> or str:<hex>", key)
		}
		l, err := strconv.ParseUint(rest, 10, 63)
		if err != nil {
			return Name{}, fmt.Errorf("views: object key %q: %w", key, err)
		}
		return Name{typ, l}, nil
	}
	return Name{}, fmt.Errorf("views: unknown view type %v", typ)
}

// View is one projection: the entry ids (ascending) of the base trace
// that belong to the view. Retaining base-trace indices is what links
// views to each other (§2.4).
type View struct {
	Name Name
	EIDs []trace.EntryID
}

// Len returns the number of entries in the view.
func (v *View) Len() int { return len(v.EIDs) }

// ObjectInfo summarizes one heap object observed in a trace.
type ObjectInfo struct {
	Loc      trace.Loc
	Class    string
	Seq      int
	FirstEID trace.EntryID
}

// Web is the complete linked structure of all views over one trace.
type Web struct {
	Trace   *trace.Trace
	views   map[Name]*View
	byEntry [][]Name // view names per entry id (the union of the ω mappings)
	arenas  [][]Name // backing storage for byEntry slices, one per build shard
	objects map[trace.Loc]ObjectInfo
}

// View returns the view with the given name, or nil.
func (w *Web) View(n Name) *View { return w.views[n] }

// NamesOf returns the view names entry eid belongs to (the links).
func (w *Web) NamesOf(eid trace.EntryID) []Name {
	if eid < 0 || int(eid) >= len(w.byEntry) {
		return nil
	}
	return w.byEntry[eid]
}

// Names returns all view names, sorted (deterministic iteration).
func (w *Web) Names() []Name {
	out := make([]Name, 0, len(w.views))
	for n := range w.views {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		if out[i].Type == Method {
			// Method views sort by name, not symbol id, for stable output.
			return trace.SymStr(trace.Sym(out[i].Key)) < trace.SymStr(trace.Sym(out[j].Key))
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// PosIn returns the position of entry eid inside view n, using binary
// search over the view's ascending entry ids. This is the navigation
// operation: "the trace index found in the entry can be used to navigate
// from the entry found in one view to its position in another" (§2.4).
func (w *Web) PosIn(n Name, eid trace.EntryID) (int, bool) {
	v := w.views[n]
	if v == nil {
		return 0, false
	}
	i := sort.Search(len(v.EIDs), func(k int) bool { return v.EIDs[k] >= eid })
	if i < len(v.EIDs) && v.EIDs[i] == eid {
		return i, true
	}
	return 0, false
}

// Window returns the entry ids of view n within ±delta positions of the
// position of eid in that view — the fixed-size window win(η,δ) of Fig. 9,
// applied to a projected view rather than the raw trace.
func (w *Web) Window(n Name, eid trace.EntryID, delta int) []trace.EntryID {
	pos, ok := w.PosIn(n, eid)
	if !ok {
		return nil
	}
	v := w.views[n]
	lo := pos - delta
	if lo < 0 {
		lo = 0
	}
	hi := pos + delta + 1
	if hi > len(v.EIDs) {
		hi = len(v.EIDs)
	}
	return v.EIDs[lo:hi]
}

// Entries materializes the trace entries of a view (testing/CLI helper).
func (w *Web) Entries(n Name) []trace.Entry {
	v := w.views[n]
	if v == nil {
		return nil
	}
	out := make([]trace.Entry, len(v.EIDs))
	for i, id := range v.EIDs {
		out[i] = w.Trace.Entries[id]
	}
	return out
}

// Object returns what is known about a heap location.
func (w *Web) Object(l trace.Loc) (ObjectInfo, bool) {
	o, ok := w.objects[l]
	return o, ok
}

// Counts tallies views by type — the "Number of Views" columns of Table 2.
type Counts struct {
	Total        int
	Thread       int
	Method       int
	TargetObject int
	ActiveObject int
}

// Count computes view counts for the web.
func (w *Web) Count() Counts {
	var c Counts
	for n := range w.views {
		c.Total++
		switch n.Type {
		case Thread:
			c.Thread++
		case Method:
			c.Method++
		case TargetObject:
			c.TargetObject++
		case ActiveObject:
			c.ActiveObject++
		}
	}
	return c
}

// ThreadView returns the thread view for a tid, or nil.
func (w *Web) ThreadView(tid trace.ThreadID) *View {
	return w.views[ThreadName(tid)]
}

// Per-element sizes of the web's backing structures, for MemBytes. Name
// is a uint8 + uint64 padded to 16 bytes; slice headers are three words;
// a View's EIDs are word-sized entry ids; ObjectInfo carries a string
// header, three words, and padding.
const (
	nameBytes       = 16
	sliceHeaderSize = 24
	entryIDBytes    = 8
	objectInfoBytes = 56
)

// MemBytes accounts the web's own memory — the name arenas, the
// per-entry link table, every view's entry-id list, and the object
// index — excluding the underlying trace. It counts logical lengths, not
// allocator capacities, so the figure is identical however the web was
// built (any Workers setting) and is the deterministic web term of the
// differ's Stats.MemBytes.
func (w *Web) MemBytes() int64 {
	var b int64
	for _, a := range w.arenas {
		b += int64(len(a)) * nameBytes
	}
	b += int64(len(w.byEntry)) * sliceHeaderSize
	for _, v := range w.views {
		b += int64(len(v.EIDs))*entryIDBytes + sliceHeaderSize + nameBytes
	}
	b += int64(len(w.objects)) * objectInfoBytes
	return b
}
