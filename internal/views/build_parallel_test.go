package views

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// shardedFixture builds a trace large and varied enough that a parallel
// build spans several shards with every view type represented, including
// EOF entries (which map to no views) scattered through the middle.
func shardedFixture(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.New("sharded")
	methods := []string{"M.a/0", "M.b/1", "N.c/2", "N.d/0", "O.e/1"}
	for i := 0; i < n; i++ {
		if rng.Intn(200) == 0 {
			t.Append(trace.ThreadID(rng.Intn(5)), "", trace.Repr{}, trace.Event{Kind: trace.KindEOF})
			continue
		}
		obj := trace.Repr{Loc: trace.Loc(1 + rng.Intn(40)), Class: "Node", Seq: 1 + rng.Intn(40)}
		val := trace.PrimRepr("Int", fmt.Sprint(rng.Intn(50)))
		var ev trace.Event
		switch rng.Intn(4) {
		case 0:
			ev = trace.Event{Kind: trace.KindGet, Target: obj, Member: "f", Args: []trace.Repr{val}}
		case 1:
			ev = trace.Event{Kind: trace.KindSet, Target: obj, Member: "f", Args: []trace.Repr{val}}
		case 2:
			ev = trace.Event{Kind: trace.KindCall, Target: obj, Member: methods[rng.Intn(5)]}
		default:
			ev = trace.Event{Kind: trace.KindInit, Target: obj, Member: "Node"}
		}
		t.Append(trace.ThreadID(rng.Intn(5)), methods[rng.Intn(5)], obj, ev)
	}
	t.EnsureSyms()
	return t
}

// requireEqualWebs asserts two webs are observably identical: same view
// names, same per-view entry orders, same per-entry links, same object
// index, same memory accounting.
func requireEqualWebs(t *testing.T, want, got *Web, label string) {
	t.Helper()
	wantNames, gotNames := want.Names(), got.Names()
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Fatalf("%s: view name sets differ: %d vs %d names", label, len(wantNames), len(gotNames))
	}
	for _, n := range wantNames {
		if !reflect.DeepEqual(want.View(n).EIDs, got.View(n).EIDs) {
			t.Fatalf("%s: view %s entry ids differ", label, n)
		}
	}
	for eid := range want.Trace.Entries {
		a, b := want.NamesOf(trace.EntryID(eid)), got.NamesOf(trace.EntryID(eid))
		// EOF entries map to no views; a nil and an empty list are the same.
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: entry %d links differ: %v vs %v", label, eid, a, b)
		}
	}
	if want.Count() != got.Count() {
		t.Fatalf("%s: counts differ: %+v vs %+v", label, want.Count(), got.Count())
	}
	if !reflect.DeepEqual(want.objects, got.objects) {
		t.Fatalf("%s: object indexes differ", label)
	}
	if want.MemBytes() != got.MemBytes() {
		t.Fatalf("%s: MemBytes differ: %d vs %d", label, want.MemBytes(), got.MemBytes())
	}
}

// TestParallelBuildMatchesSerial is the sharded-build equivalence
// property: any forced worker count produces a web observably identical
// to the serial pass, shard-boundary entries and EOFs included.
func TestParallelBuildMatchesSerial(t *testing.T) {
	for _, n := range []int{50, 1000, 9001} {
		tr := shardedFixture(n, int64(n))
		serial, err := BuildCtxOpts(context.Background(), tr, BuildOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			par, err := BuildCtxOpts(context.Background(), tr, BuildOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			requireEqualWebs(t, serial, par, fmt.Sprintf("n=%d workers=%d", n, workers))
		}
	}
}

// TestParallelBuildAutoThreshold checks the automatic mode: small traces
// stay serial (one arena), and the choice never changes the web.
func TestParallelBuildAutoThreshold(t *testing.T) {
	tr := shardedFixture(500, 7)
	auto, err := BuildCtx(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.arenas) != 1 {
		t.Errorf("a %d-entry trace should build serially in auto mode, got %d arenas",
			tr.Len(), len(auto.arenas))
	}
	forced, err := BuildCtxOpts(context.Background(), tr, BuildOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualWebs(t, auto, forced, "auto vs forced")
}

// TestParallelBuildCancellation: a canceled context aborts both the
// upfront check and the sharded scan with the context's error.
func TestParallelBuildCancellation(t *testing.T) {
	tr := shardedFixture(20000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtxOpts(ctx, tr, BuildOptions{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel build on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := BuildCtxOpts(ctx, tr, BuildOptions{Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("serial build on canceled ctx: err = %v, want context.Canceled", err)
	}
}
