package views

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// BuildOptions tune web construction. The zero value is the right call
// for nearly everyone: automatic parallelism on large traces, the exact
// serial pass on small ones.
type BuildOptions struct {
	// Workers shards the entry scan and the view filling across this many
	// goroutines. 0 means automatic: GOMAXPROCS workers for traces of at
	// least parallelBuildThreshold entries, serial below that (goroutine
	// startup would dominate). 1 forces the serial pass; n > 1 forces n
	// workers regardless of trace size. Every setting produces an
	// identical web.
	Workers int
}

// parallelBuildThreshold is the trace size below which the automatic
// mode stays serial: sharding a scan this short costs more in goroutine
// startup and merge bookkeeping than the scan itself.
const parallelBuildThreshold = 1 << 14

// buildPollMask throttles context polls in the build loops to one every
// 8192 entries.
const buildPollMask = 8191

// Build constructs the view web over the trace, applying the view-name
// mapping functions ωτ of Fig. 7 to every entry. The per-entry name
// lists live in shared arenas rather than one slice allocation per
// entry.
//
// The returned Web is never written again after Build returns: every
// method on Web is read-only, so a built web may be shared by any number
// of goroutines without synchronization. The corpus view cache relies on
// this to hand one memoized web to N concurrent diff requests. The one
// caveat is the trace itself: Build backfills missing Sym fields via
// EnsureSyms, so the first Build over a given hand-built trace must not
// race another Build of the same trace. Traces produced by the
// interpreter or any loader are fully interned already, making EnsureSyms
// a read-only scan and concurrent Builds safe.
func Build(t *trace.Trace) *Web {
	w, _ := BuildCtxOpts(context.Background(), t, BuildOptions{})
	return w
}

// BuildCtx is Build with cancellation: ctx is polled periodically during
// the construction passes, and a canceled context aborts the build with
// the context's error. Servers building webs over multi-million-entry
// traces use this to kill requests whose clients have gone away.
func BuildCtx(ctx context.Context, t *trace.Trace) (*Web, error) {
	return BuildCtxOpts(ctx, t, BuildOptions{})
}

// BuildCtxOpts is BuildCtx with explicit options. With Workers > 1 the
// construction runs in two parallel passes: the entry scan is sharded
// into contiguous ranges, each producing its own name arena and per-view
// counts; the merge sizes every view's entry-id list exactly from the
// shard counts; then the shards fill their disjoint slice ranges
// concurrently. The web that comes out is identical — same views, same
// orderings, same MemBytes — to the serial one.
func BuildCtxOpts(ctx context.Context, t *trace.Trace, opts BuildOptions) (*Web, error) {
	t.EnsureSyms() // no-op for interpreter- or loader-produced traces
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if len(t.Entries) < parallelBuildThreshold {
			workers = 1
		}
	}
	if workers > len(t.Entries) {
		workers = len(t.Entries)
	}
	if workers <= 1 {
		return buildSerial(ctx, t)
	}
	return buildParallel(ctx, t, workers)
}

// buildSerial is the single-goroutine pass: count, then fill one arena.
func buildSerial(ctx context.Context, t *trace.Trace) (*Web, error) {
	w := &Web{
		Trace:   t,
		views:   make(map[Name]*View),
		byEntry: make([][]Name, len(t.Entries)),
		objects: make(map[trace.Loc]ObjectInfo),
	}
	// First pass: size the arena exactly, so slices into it stay valid.
	total := 0
	for i := range t.Entries {
		total += nameCount(&t.Entries[i])
	}
	arena := make([]Name, 0, total)
	for i := range t.Entries {
		if i&buildPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := &t.Entries[i]
		if e.Event.Kind == trace.KindEOF {
			continue
		}
		start := len(arena)
		arena = appendNames(arena, e)
		names := arena[start:len(arena):len(arena)]
		w.byEntry[e.EID] = names
		for _, n := range names {
			v := w.views[n]
			if v == nil {
				v = &View{Name: n}
				w.views[n] = v
			}
			v.EIDs = append(v.EIDs, e.EID)
		}
		noteObject(w.objects, e.Event.Target, e.EID)
		noteObject(w.objects, e.Self, e.EID)
	}
	w.arenas = [][]Name{arena}
	return w, nil
}

// buildShard is one contiguous entry range's contribution to the web:
// its own name arena (byEntry slices point into it, so it outlives the
// build), per-view membership counts, and first-seen object info.
type buildShard struct {
	lo, hi  int // entry index range [lo, hi)
	arena   []Name
	counts  map[Name]int
	objects map[trace.Loc]ObjectInfo
	err     error
}

// scan is the first parallel pass: compute every entry's names into the
// shard arena (exact-sized by a local count), link byEntry, and tally
// per-view counts. byEntry is shared across shards but each entry id is
// written by exactly one shard.
func (s *buildShard) scan(ctx context.Context, t *trace.Trace, byEntry [][]Name) {
	total := 0
	for i := s.lo; i < s.hi; i++ {
		total += nameCount(&t.Entries[i])
	}
	s.arena = make([]Name, 0, total)
	s.counts = make(map[Name]int)
	s.objects = make(map[trace.Loc]ObjectInfo)
	for i := s.lo; i < s.hi; i++ {
		if i&buildPollMask == 0 {
			if err := ctx.Err(); err != nil {
				s.err = err
				return
			}
		}
		e := &t.Entries[i]
		if e.Event.Kind == trace.KindEOF {
			continue
		}
		start := len(s.arena)
		s.arena = appendNames(s.arena, e)
		names := s.arena[start:len(s.arena):len(s.arena)]
		byEntry[e.EID] = names
		for _, n := range names {
			s.counts[n]++
		}
		noteObject(s.objects, e.Event.Target, e.EID)
		noteObject(s.objects, e.Self, e.EID)
	}
}

// fill is the second parallel pass: write the shard's entry ids into
// each view's pre-sized EIDs slice, starting at the shard's offset.
// Shards write disjoint index ranges of every view, so no
// synchronization is needed, and concatenating contiguous shards in
// order preserves the ascending-entry-id invariant of View.EIDs.
func (s *buildShard) fill(ctx context.Context, t *trace.Trace, w *Web, next map[Name]int) {
	for i := s.lo; i < s.hi; i++ {
		if i&buildPollMask == 0 {
			if err := ctx.Err(); err != nil {
				s.err = err
				return
			}
		}
		eid := t.Entries[i].EID
		for _, n := range w.byEntry[eid] {
			pos := next[n]
			w.views[n].EIDs[pos] = eid
			next[n] = pos + 1
		}
	}
}

func buildParallel(ctx context.Context, t *trace.Trace, workers int) (*Web, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := &Web{
		Trace:   t,
		views:   make(map[Name]*View),
		byEntry: make([][]Name, len(t.Entries)),
		objects: make(map[trace.Loc]ObjectInfo),
	}
	// Contiguous shards, remainder spread over the first few.
	shards := make([]*buildShard, workers)
	per, rem := len(t.Entries)/workers, len(t.Entries)%workers
	lo := 0
	for i := range shards {
		hi := lo + per
		if i < rem {
			hi++
		}
		shards[i] = &buildShard{lo: lo, hi: hi}
		lo = hi
	}

	// Pass 1: sharded entry scan.
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *buildShard) {
			defer wg.Done()
			s.scan(ctx, t, w.byEntry)
		}(s)
	}
	wg.Wait()
	w.arenas = make([][]Name, len(shards))
	for i, s := range shards {
		if s.err != nil {
			return nil, s.err
		}
		w.arenas[i] = s.arena
	}

	// Merge: size every view exactly from the shard counts and record
	// where each shard's run starts inside each view. offsets[i][n] only
	// depends on the counts of shards before i, never on map iteration
	// order, so the layout is deterministic.
	totals := make(map[Name]int)
	offsets := make([]map[Name]int, len(shards))
	for i, s := range shards {
		offsets[i] = make(map[Name]int, len(s.counts))
		for n, c := range s.counts {
			offsets[i][n] = totals[n]
			totals[n] += c
		}
	}
	for n, c := range totals {
		w.views[n] = &View{Name: n, EIDs: make([]trace.EntryID, c)}
	}
	// Objects: first sighting wins. Merging whole shards in range order
	// makes "first" mean first in the trace, exactly as the serial pass.
	for _, s := range shards {
		for loc, info := range s.objects {
			if _, seen := w.objects[loc]; !seen {
				w.objects[loc] = info
			}
		}
	}

	// Pass 2: fill every view's arena concurrently.
	for i, s := range shards {
		wg.Add(1)
		go func(s *buildShard, next map[Name]int) {
			defer wg.Done()
			s.fill(ctx, t, w, next)
		}(s, offsets[i])
	}
	wg.Wait()
	for _, s := range shards {
		if s.err != nil {
			return nil, s.err
		}
	}
	return w, nil
}

func noteObject(objects map[trace.Loc]ObjectInfo, r trace.Repr, eid trace.EntryID) {
	if r.Loc == trace.NoLoc {
		return
	}
	if _, seen := objects[r.Loc]; !seen {
		objects[r.Loc] = ObjectInfo{Loc: r.Loc, Class: r.Class, Seq: r.Seq, FirstEID: eid}
	}
}

// nameCount returns how many view names an entry maps to, mirroring
// appendNames.
func nameCount(e *trace.Entry) int {
	if e.Event.Kind == trace.KindEOF {
		return 0
	}
	n := 1 // thread view
	if e.MethodSym != trace.NoSym {
		n++
	}
	if _, ok := targetKey(&e.Event); ok {
		n++
	}
	if e.Self.Loc != trace.NoLoc {
		n++
	}
	return n
}

// appendNames appends the view names of an entry — the union of the
// per-type mapping functions ωτ (Fig. 7) — to dst.
func appendNames(dst []Name, e *trace.Entry) []Name {
	dst = append(dst, ThreadName(e.TID))
	if e.MethodSym != trace.NoSym {
		dst = append(dst, Name{Method, uint64(e.MethodSym)})
	}
	if n, ok := targetKey(&e.Event); ok {
		dst = append(dst, n)
	}
	if e.Self.Loc != trace.NoLoc {
		dst = append(dst, ActiveName(e.Self.Loc))
	}
	return dst
}

// MapEntry computes the set of view names an entry belongs to.
// Hand-built entries without interned symbols work too: the two Sym
// fields the mapping depends on are backfilled on the local copy (both
// live directly in the Entry value, so the caller's entry — including
// its shared Args/Stack storage — is never written).
func MapEntry(e trace.Entry) []Name {
	e.MethodSym = trace.EnsureSym(e.MethodSym, e.Method)
	e.Event.Target.ClassSym = trace.EnsureSym(e.Event.Target.ClassSym, e.Event.Target.Class)
	return appendNames(make([]Name, 0, 4), &e)
}

// symString is the interned symbol of the class name "String", resolved
// lazily (interning in an init racing other packages' inits is fine, but
// there is no need).
var symString = trace.Intern("String")

// targetKey implements ωTO: the target object's location for field, method
// and creation events. String value objects, which have no location, are
// grouped by value (Java strings are heap objects; ours are primitives).
// Other primitives get no target object view.
func targetKey(ev *trace.Event) (Name, bool) {
	switch ev.Kind {
	case trace.KindGet, trace.KindSet, trace.KindCall, trace.KindReturn, trace.KindInit:
		t := &ev.Target
		if t.Loc != trace.NoLoc {
			return LocName(t.Loc), true
		}
		if t.ClassSym == symString && t.HasValue() {
			return StrValueName(t.Hash), true
		}
	}
	return Name{}, false
}
