package lang

// Program is a parsed compilation unit: a set of class declarations.
// Execution starts at new Main().main() (the thread term T(t;) of Fig. 3).
type Program struct {
	Classes []*Class
}

// Class finds a class by name, or nil.
func (p *Program) Class(name string) *Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Clone deep-copies the program. The regression injector mutates clones so
// the original version stays intact.
func (p *Program) Clone() *Program {
	out := &Program{Classes: make([]*Class, len(p.Classes))}
	for i, c := range p.Classes {
		out.Classes[i] = c.clone()
	}
	return out
}

// Class is a class declaration: class C extends C′ { Ā f̄; K M̄ }.
// Opaque classes have no meaningful cross-version value representation
// (modelling Java classes that keep the default hashCode/toString).
type Class struct {
	Name    string
	Super   string // "Object" when unspecified
	Opaque  bool
	Fields  []Field
	Ctor    *Method // constructor K; nil means the implicit zero-arg ctor
	Methods []*Method
	Pos     Pos
}

func (c *Class) clone() *Class {
	out := *c
	out.Fields = append([]Field(nil), c.Fields...)
	if c.Ctor != nil {
		out.Ctor = c.Ctor.clone()
	}
	out.Methods = make([]*Method, len(c.Methods))
	for i, m := range c.Methods {
		out.Methods[i] = m.clone()
	}
	return &out
}

// Method looks up a directly declared method by name, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Field is one field declaration A f.
type Field struct {
	Type string
	Name string
}

// Param is one formal parameter A x.
type Param struct {
	Type string
	Name string
}

// Method is a method declaration A m(Ā x̄){ t̄; return t; }. The
// constructor is represented as a Method named "<init>" with empty RetType.
type Method struct {
	Name    string
	Params  []Param
	RetType string
	Body    []Stmt
	Pos     Pos
}

func (m *Method) clone() *Method {
	out := *m
	out.Params = append([]Param(nil), m.Params...)
	out.Body = cloneStmts(m.Body)
	return &out
}

// Arity returns the number of formal parameters.
func (m *Method) Arity() int { return len(m.Params) }

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface {
	stmt()
	CloneStmt() Stmt
	StmtPos() Pos
}

// Let declares and initializes a local: let x = e;
type Let struct {
	Name string
	Init Expr
	Pos  Pos
}

// AssignLocal writes a local or parameter: x = e;
type AssignLocal struct {
	Name string
	Val  Expr
	Pos  Pos
}

// AssignField writes a field: e.f = e′;
type AssignField struct {
	Obj  Expr
	Name string
	Val  Expr
	Pos  Pos
}

// If is a conditional with an optional else branch.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// While is a loop.
type While struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// Return exits the enclosing method; Val may be nil for a bare return.
type Return struct {
	Val Expr
	Pos Pos
}

// Spawn starts a new thread T(t̄;) executing Body.
type Spawn struct {
	Body []Stmt
	Pos  Pos
}

// ExprStmt evaluates an expression for effect: e;
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// SuperCall invokes the superclass constructor; only legal as the first
// statement of a constructor body.
type SuperCall struct {
	Args []Expr
	Pos  Pos
}

func (*Let) stmt()         {}
func (*AssignLocal) stmt() {}
func (*AssignField) stmt() {}
func (*If) stmt()          {}
func (*While) stmt()       {}
func (*Return) stmt()      {}
func (*Spawn) stmt()       {}
func (*ExprStmt) stmt()    {}
func (*SuperCall) stmt()   {}

func (s *Let) StmtPos() Pos         { return s.Pos }
func (s *AssignLocal) StmtPos() Pos { return s.Pos }
func (s *AssignField) StmtPos() Pos { return s.Pos }
func (s *If) StmtPos() Pos          { return s.Pos }
func (s *While) StmtPos() Pos       { return s.Pos }
func (s *Return) StmtPos() Pos      { return s.Pos }
func (s *Spawn) StmtPos() Pos       { return s.Pos }
func (s *ExprStmt) StmtPos() Pos    { return s.Pos }
func (s *SuperCall) StmtPos() Pos   { return s.Pos }

func (s *Let) CloneStmt() Stmt {
	return &Let{Name: s.Name, Init: cloneExpr(s.Init), Pos: s.Pos}
}
func (s *AssignLocal) CloneStmt() Stmt {
	return &AssignLocal{Name: s.Name, Val: cloneExpr(s.Val), Pos: s.Pos}
}
func (s *AssignField) CloneStmt() Stmt {
	return &AssignField{Obj: cloneExpr(s.Obj), Name: s.Name, Val: cloneExpr(s.Val), Pos: s.Pos}
}
func (s *If) CloneStmt() Stmt {
	return &If{Cond: cloneExpr(s.Cond), Then: cloneStmts(s.Then), Else: cloneStmts(s.Else), Pos: s.Pos}
}
func (s *While) CloneStmt() Stmt {
	return &While{Cond: cloneExpr(s.Cond), Body: cloneStmts(s.Body), Pos: s.Pos}
}
func (s *Return) CloneStmt() Stmt {
	return &Return{Val: cloneExpr(s.Val), Pos: s.Pos}
}
func (s *Spawn) CloneStmt() Stmt {
	return &Spawn{Body: cloneStmts(s.Body), Pos: s.Pos}
}
func (s *ExprStmt) CloneStmt() Stmt {
	return &ExprStmt{X: cloneExpr(s.X), Pos: s.Pos}
}
func (s *SuperCall) CloneStmt() Stmt {
	return &SuperCall{Args: cloneExprs(s.Args), Pos: s.Pos}
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = s.CloneStmt()
	}
	return out
}

// ---- Expressions ----

// Expr is an expression node.
type Expr interface {
	expr()
	CloneExpr() Expr
	ExprPos() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Val float64
	Pos Pos
}

// StrLit is a string literal.
type StrLit struct {
	Val string
	Pos Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Val bool
	Pos Pos
}

// NullLit is the null reference.
type NullLit struct {
	Pos Pos
}

// This is the receiver reference.
type This struct {
	Pos Pos
}

// Var references a local, parameter, or builtin namespace (Sys, Reflect,
// Runtime).
type Var struct {
	Name string
	Pos  Pos
}

// FieldAccess reads a field: e.f.
type FieldAccess struct {
	Obj  Expr
	Name string
	Pos  Pos
}

// Call invokes a method: e.m(ē).
type Call struct {
	Recv   Expr
	Method string
	Args   []Expr
	Pos    Pos
}

// New allocates an object: new C(ē).
type New struct {
	Class string
	Args  []Expr
	Pos   Pos
}

// Binary applies a binary operator.
type Binary struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// Unary applies ! or unary -.
type Unary struct {
	Op  string
	X   Expr
	Pos Pos
}

func (*IntLit) expr()      {}
func (*FloatLit) expr()    {}
func (*StrLit) expr()      {}
func (*BoolLit) expr()     {}
func (*NullLit) expr()     {}
func (*This) expr()        {}
func (*Var) expr()         {}
func (*FieldAccess) expr() {}
func (*Call) expr()        {}
func (*New) expr()         {}
func (*Binary) expr()      {}
func (*Unary) expr()       {}

func (e *IntLit) ExprPos() Pos      { return e.Pos }
func (e *FloatLit) ExprPos() Pos    { return e.Pos }
func (e *StrLit) ExprPos() Pos      { return e.Pos }
func (e *BoolLit) ExprPos() Pos     { return e.Pos }
func (e *NullLit) ExprPos() Pos     { return e.Pos }
func (e *This) ExprPos() Pos        { return e.Pos }
func (e *Var) ExprPos() Pos         { return e.Pos }
func (e *FieldAccess) ExprPos() Pos { return e.Pos }
func (e *Call) ExprPos() Pos        { return e.Pos }
func (e *New) ExprPos() Pos         { return e.Pos }
func (e *Binary) ExprPos() Pos      { return e.Pos }
func (e *Unary) ExprPos() Pos       { return e.Pos }

func (e *IntLit) CloneExpr() Expr   { c := *e; return &c }
func (e *FloatLit) CloneExpr() Expr { c := *e; return &c }
func (e *StrLit) CloneExpr() Expr   { c := *e; return &c }
func (e *BoolLit) CloneExpr() Expr  { c := *e; return &c }
func (e *NullLit) CloneExpr() Expr  { c := *e; return &c }
func (e *This) CloneExpr() Expr     { c := *e; return &c }
func (e *Var) CloneExpr() Expr      { c := *e; return &c }
func (e *FieldAccess) CloneExpr() Expr {
	return &FieldAccess{Obj: cloneExpr(e.Obj), Name: e.Name, Pos: e.Pos}
}
func (e *Call) CloneExpr() Expr {
	return &Call{Recv: cloneExpr(e.Recv), Method: e.Method, Args: cloneExprs(e.Args), Pos: e.Pos}
}
func (e *New) CloneExpr() Expr {
	return &New{Class: e.Class, Args: cloneExprs(e.Args), Pos: e.Pos}
}
func (e *Binary) CloneExpr() Expr {
	return &Binary{Op: e.Op, L: cloneExpr(e.L), R: cloneExpr(e.R), Pos: e.Pos}
}
func (e *Unary) CloneExpr() Expr {
	return &Unary{Op: e.Op, X: cloneExpr(e.X), Pos: e.Pos}
}

func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	return e.CloneExpr()
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = cloneExpr(e)
	}
	return out
}
