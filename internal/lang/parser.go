package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for the language. Binary operator
// precedence follows Java: || < && < ==,!= < relational < additive <
// multiplicative < unary < postfix.
type Parser struct {
	lx   *Lexer
	tok  Token
	peek *Token
}

// Parse parses a complete program.
func Parse(src string) (*Program, error) {
	p := &Parser{lx: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		c, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, c)
	}
	return prog, nil
}

// MustParse parses or panics; for tests and embedded subject sources that
// are compile-time constants.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) next() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lx.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) is(kind TokKind, text string) bool {
	return p.tok.Kind == kind && p.tok.Text == text
}

func (p *Parser) accept(kind TokKind, text string) (bool, error) {
	if !p.is(kind, text) {
		return false, nil
	}
	return true, p.next()
}

func (p *Parser) expect(kind TokKind, text string) error {
	if !p.is(kind, text) {
		return p.errorf("expected %q, found %s", text, p.tok)
	}
	return p.next()
}

func (p *Parser) ident() (string, error) {
	if p.tok.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %s", p.tok)
	}
	name := p.tok.Text
	return name, p.next()
}

func (p *Parser) classDecl() (*Class, error) {
	pos := p.tok.Pos
	opaque, err := p.accept(TokKeyword, "opaque")
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "class"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	super := "Object"
	if ok, err := p.accept(TokKeyword, "extends"); err != nil {
		return nil, err
	} else if ok {
		if super, err = p.ident(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	c := &Class{Name: name, Super: super, Opaque: opaque, Pos: pos}
	for !p.is(TokPunct, "}") {
		if err := p.member(c); err != nil {
			return nil, err
		}
	}
	return c, p.next() // consume '}'
}

// member parses a field, constructor, or method declaration and adds it to c.
func (p *Parser) member(c *Class) error {
	pos := p.tok.Pos
	first, err := p.ident()
	if err != nil {
		return err
	}
	// Constructor: the class name followed directly by '('.
	if first == c.Name && p.is(TokPunct, "(") {
		m, err := p.methodRest("<init>", "", pos)
		if err != nil {
			return err
		}
		if c.Ctor != nil {
			return &SyntaxError{Pos: pos, Msg: fmt.Sprintf("class %s: duplicate constructor", c.Name)}
		}
		c.Ctor = m
		return nil
	}
	// Otherwise: Type Name followed by ';' (field) or '(' (method).
	name, err := p.ident()
	if err != nil {
		return err
	}
	if ok, err := p.accept(TokPunct, ";"); err != nil {
		return err
	} else if ok {
		c.Fields = append(c.Fields, Field{Type: first, Name: name})
		return nil
	}
	if !p.is(TokPunct, "(") {
		return p.errorf("expected ';' or '(' after member %s.%s", c.Name, name)
	}
	m, err := p.methodRest(name, first, pos)
	if err != nil {
		return err
	}
	c.Methods = append(c.Methods, m)
	return nil
}

func (p *Parser) methodRest(name, retType string, pos Pos) (*Method, error) {
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.is(TokPunct, ")") {
		if len(params) > 0 {
			if err := p.expect(TokPunct, ","); err != nil {
				return nil, err
			}
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		pname, err := p.ident()
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Type: typ, Name: pname})
	}
	if err := p.next(); err != nil { // consume ')'
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Method{Name: name, Params: params, RetType: retType, Body: body, Pos: pos}, nil
}

func (p *Parser) block() ([]Stmt, error) {
	if err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	stmts := []Stmt{}
	for !p.is(TokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.next() // consume '}'
}

func (p *Parser) stmt() (Stmt, error) {
	pos := p.tok.Pos
	switch {
	case p.is(TokKeyword, "let"):
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Let{Name: name, Init: init, Pos: pos}, p.expect(TokPunct, ";")

	case p.is(TokKeyword, "if"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if ok, err := p.accept(TokKeyword, "else"); err != nil {
			return nil, err
		} else if ok {
			if p.is(TokKeyword, "if") {
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else if els, err = p.block(); err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: pos}, nil

	case p.is(TokKeyword, "while"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Pos: pos}, nil

	case p.is(TokKeyword, "return"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if ok, err := p.accept(TokPunct, ";"); err != nil {
			return nil, err
		} else if ok {
			return &Return{Pos: pos}, nil
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Return{Val: val, Pos: pos}, p.expect(TokPunct, ";")

	case p.is(TokKeyword, "spawn"):
		if err := p.next(); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Spawn{Body: body, Pos: pos}, nil

	case p.is(TokKeyword, "super"):
		if err := p.next(); err != nil {
			return nil, err
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &SuperCall{Args: args, Pos: pos}, p.expect(TokPunct, ";")
	}

	// Expression or assignment statement.
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.is(TokOp, "=") {
		if err := p.next(); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch lhs := e.(type) {
		case *Var:
			return &AssignLocal{Name: lhs.Name, Val: val, Pos: pos}, p.expect(TokPunct, ";")
		case *FieldAccess:
			return &AssignField{Obj: lhs.Obj, Name: lhs.Name, Val: val, Pos: pos}, p.expect(TokPunct, ";")
		default:
			return nil, &SyntaxError{Pos: pos, Msg: "left side of assignment must be a variable or field"}
		}
	}
	return &ExprStmt{X: e, Pos: pos}, p.expect(TokPunct, ";")
}

func (p *Parser) args() ([]Expr, error) {
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.is(TokPunct, ")") {
		if len(args) > 0 {
			if err := p.expect(TokPunct, ","); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, p.next() // consume ')'
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) expr() (Expr, error) { return p.binary(0) }

func (p *Parser) binary(level int) (Expr, error) {
	if level == len(binLevels) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binLevels[level] {
			if p.is(TokOp, op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return left, nil
		}
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: matched, L: left, R: right, Pos: pos}
	}
}

func (p *Parser) unary() (Expr, error) {
	if p.is(TokOp, "!") || p.is(TokOp, "-") {
		pos := p.tok.Pos
		op := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x, Pos: pos}, nil
	}
	return p.postfix()
}

func (p *Parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.is(TokPunct, ".") {
		if err := p.next(); err != nil {
			return nil, err
		}
		pos := p.tok.Pos
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.is(TokPunct, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			e = &Call{Recv: e, Method: name, Args: args, Pos: pos}
		} else {
			e = &FieldAccess{Obj: e, Name: name, Pos: pos}
		}
	}
	return e, nil
}

func (p *Parser) primary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokInt:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", p.tok.Text)
		}
		return &IntLit{Val: v, Pos: pos}, p.next()
	case TokFloat:
		v, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", p.tok.Text)
		}
		return &FloatLit{Val: v, Pos: pos}, p.next()
	case TokString:
		v := p.tok.Text
		return &StrLit{Val: v, Pos: pos}, p.next()
	case TokKeyword:
		switch p.tok.Text {
		case "true", "false":
			v := p.tok.Text == "true"
			return &BoolLit{Val: v, Pos: pos}, p.next()
		case "null":
			return &NullLit{Pos: pos}, p.next()
		case "this":
			return &This{Pos: pos}, p.next()
		case "new":
			if err := p.next(); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &New{Class: name, Args: args, Pos: pos}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", p.tok)
	case TokIdent:
		name := p.tok.Text
		return &Var{Name: name, Pos: pos}, p.next()
	case TokPunct:
		if p.tok.Text == "(" {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(TokPunct, ")")
		}
	}
	return nil, p.errorf("unexpected token %s in expression", p.tok)
}
