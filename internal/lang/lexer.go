package lang

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer turns source text into tokens. It supports //-comments and
// /* */ comments, decimal integer and float literals, double-quoted string
// literals with \n \t \" \\ escapes, and the operator set of the language.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// SyntaxError is a lexing or parsing failure with a source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) errorf(p Pos, format string, args ...any) error {
	return &SyntaxError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && strings.HasPrefix(l.src[l.off:], "//"):
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.off:], "/*"):
			start := l.pos()
			l.advance()
			l.advance()
			for !strings.HasPrefix(l.src[l.off:], "*/") {
				if l.peek() == -1 {
					return l.errorf(start, "unterminated block comment")
				}
				l.advance()
			}
			l.advance()
			l.advance()
		default:
			return nil
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// twoCharOps are the multi-character operators, checked before single chars.
var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return Token{Kind: TokEOF, Pos: p}, nil
	case unicode.IsLetter(r) || r == '_':
		start := l.off
		for {
			r := l.peek()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: p}, nil
	case unicode.IsDigit(r):
		start := l.off
		kind := TokInt
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && l.off+1 < len(l.src) && isDigitByte(l.src[l.off+1]) {
			kind = TokFloat
			l.advance()
			for unicode.IsDigit(l.peek()) {
				l.advance()
			}
		}
		return Token{Kind: kind, Text: l.src[start:l.off], Pos: p}, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for {
			c := l.peek()
			switch c {
			case -1, '\n':
				return Token{}, l.errorf(p, "unterminated string literal")
			case '"':
				l.advance()
				return Token{Kind: TokString, Text: b.String(), Pos: p}, nil
			case '\\':
				l.advance()
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return Token{}, l.errorf(p, "bad escape \\%c in string", esc)
				}
			default:
				l.advance()
				b.WriteRune(c)
			}
		}
	}
	for _, op := range twoCharOps {
		if strings.HasPrefix(l.src[l.off:], op) {
			l.advance()
			l.advance()
			return Token{Kind: TokOp, Text: op, Pos: p}, nil
		}
	}
	switch r {
	case '(', ')', '{', '}', ',', ';', '.':
		l.advance()
		return Token{Kind: TokPunct, Text: string(r), Pos: p}, nil
	case '+', '-', '*', '/', '%', '<', '>', '!', '=':
		l.advance()
		return Token{Kind: TokOp, Text: string(r), Pos: p}, nil
	}
	return Token{}, l.errorf(p, "unexpected character %q", r)
}

func isDigitByte(b byte) bool { return '0' <= b && b <= '9' }

// LexAll tokenizes the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
