package lang

import "fmt"

// TypeCheck performs an optional static typing pass, stricter than Check:
// expression types are computed and checked against declarations
// (field/local/parameter assignment, argument passing, returns, operator
// operands, condition types), method overrides must preserve signatures,
// and non-void methods must return on every path.
//
// The language remains usable untyped (the interpreter only requires
// Check); TypeCheck is what a release build would run. Reflective results
// (Reflect.create / Reflect.call) type as the dynamic type, assignable to
// and from everything, since their classes may not exist until run time.
func TypeCheck(p *Program) error {
	ct, err := NewClassTable(p)
	if err != nil {
		return &CheckError{Problems: []string{err.Error()}}
	}
	if err := Check(p); err != nil {
		return err
	}
	tc := &typeChecker{ct: ct}
	for _, c := range p.Classes {
		tc.checkClass(c)
	}
	if tc.probs != nil {
		return &CheckError{Problems: tc.probs}
	}
	return nil
}

// Type names used internally: class names, the primitives, "void",
// dynamicType, and nullType.
const (
	dynamicType = "$dynamic"
	nullType    = "$null"
	voidType    = "void"
)

type typeChecker struct {
	ct    *ClassTable
	probs []string
}

func (tc *typeChecker) errf(pos Pos, format string, args ...any) {
	tc.probs = append(tc.probs, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func isPrimitive(t string) bool {
	switch t {
	case "Int", "Bool", "Float", "String":
		return true
	}
	return false
}

// knownType reports whether t names a primitive, void, or a defined class.
func (tc *typeChecker) knownType(t string) bool {
	return isPrimitive(t) || t == voidType || t == ObjectClass || tc.ct.Lookup(t) != nil
}

// assignable implements the subtyping judgment: reflexivity, class
// subtyping, null to any class type, and the dynamic type both ways.
func (tc *typeChecker) assignable(from, to string) bool {
	if from == to || from == dynamicType || to == dynamicType {
		return true
	}
	if from == nullType {
		return !isPrimitive(to) && to != voidType
	}
	if isPrimitive(from) || isPrimitive(to) {
		return false
	}
	return tc.ct.IsSubclass(from, to)
}

func (tc *typeChecker) checkClass(c *Class) {
	for _, f := range c.Fields {
		if !tc.knownType(f.Type) || f.Type == voidType {
			tc.errf(c.Pos, "class %s: field %s has unknown type %s", c.Name, f.Name, f.Type)
		}
	}
	// Override compatibility: a redeclared method must preserve the full
	// signature of the inherited one.
	for _, m := range c.Methods {
		if c.Super == ObjectClass {
			break
		}
		inherited, _, ok := tc.ct.MBody(m.Name, c.Super)
		if !ok {
			continue
		}
		if inherited.RetType != m.RetType || len(inherited.Params) != len(m.Params) {
			tc.errf(m.Pos, "class %s: method %s overrides with a different signature", c.Name, m.Name)
			continue
		}
		for i := range m.Params {
			if m.Params[i].Type != inherited.Params[i].Type {
				tc.errf(m.Pos, "class %s: method %s overrides with a different signature", c.Name, m.Name)
				break
			}
		}
	}
	for _, m := range c.Methods {
		tc.checkMethod(c, m, false)
	}
	if c.Ctor != nil {
		tc.checkMethod(c, c.Ctor, true)
	}
}

type typeEnv struct {
	parent *typeEnv
	vars   map[string]string
}

func (e *typeEnv) lookup(name string) (string, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return "", false
}

func (e *typeEnv) bind(name, typ string) { e.vars[name] = typ }

func (e *typeEnv) child() *typeEnv {
	return &typeEnv{parent: e, vars: map[string]string{}}
}

func (tc *typeChecker) checkMethod(c *Class, m *Method, isCtor bool) {
	if !isCtor && m.RetType != "" && !tc.knownType(m.RetType) {
		tc.errf(m.Pos, "%s.%s: unknown return type %s", c.Name, m.Name, m.RetType)
	}
	env := &typeEnv{vars: map[string]string{}}
	for _, p := range m.Params {
		if !tc.knownType(p.Type) || p.Type == voidType {
			tc.errf(m.Pos, "%s.%s: parameter %s has unknown type %s", c.Name, m.Name, p.Name, p.Type)
		}
		env.bind(p.Name, p.Type)
	}
	ret := m.RetType
	if isCtor {
		ret = voidType
	}
	returns := tc.checkStmts(c, m, m.Body, env, ret)
	if !isCtor && ret != voidType && ret != "" && !returns {
		tc.errf(m.Pos, "%s.%s: missing return on some path (declared %s)", c.Name, m.Name, ret)
	}
}

// checkStmts types a statement list; it reports whether the list
// definitely returns.
func (tc *typeChecker) checkStmts(c *Class, m *Method, body []Stmt, env *typeEnv, ret string) bool {
	returns := false
	for _, s := range body {
		switch s := s.(type) {
		case *Let:
			t := tc.typeOf(c, m, s.Init, env)
			if t == voidType {
				tc.errf(s.Pos, "%s.%s: let %s bound to void expression", c.Name, m.Name, s.Name)
				t = dynamicType
			}
			if t == nullType {
				t = dynamicType // untyped null local: treated dynamically
			}
			env.bind(s.Name, t)
		case *AssignLocal:
			want, ok := env.lookup(s.Name)
			got := tc.typeOf(c, m, s.Val, env)
			if ok && !tc.assignable(got, want) {
				tc.errf(s.Pos, "%s.%s: cannot assign %s to %s %s", c.Name, m.Name, got, want, s.Name)
			}
		case *AssignField:
			objT := tc.typeOf(c, m, s.Obj, env)
			ft, ok := tc.fieldType(objT, s.Name)
			if !ok {
				if objT != dynamicType {
					tc.errf(s.Pos, "%s.%s: type %s has no field %s", c.Name, m.Name, objT, s.Name)
				}
				break
			}
			got := tc.typeOf(c, m, s.Val, env)
			if !tc.assignable(got, ft) {
				tc.errf(s.Pos, "%s.%s: cannot assign %s to field %s of type %s", c.Name, m.Name, got, s.Name, ft)
			}
		case *If:
			tc.wantBool(c, m, s.Cond, env)
			thenR := tc.checkStmts(c, m, s.Then, env.child(), ret)
			elseR := false
			if s.Else != nil {
				elseR = tc.checkStmts(c, m, s.Else, env.child(), ret)
			}
			if thenR && elseR {
				returns = true
			}
		case *While:
			tc.wantBool(c, m, s.Cond, env)
			tc.checkStmts(c, m, s.Body, env.child(), ret)
		case *Return:
			if s.Val == nil {
				if ret != voidType && ret != "" {
					tc.errf(s.Pos, "%s.%s: bare return in method returning %s", c.Name, m.Name, ret)
				}
			} else {
				got := tc.typeOf(c, m, s.Val, env)
				if ret == voidType || ret == "" {
					tc.errf(s.Pos, "%s.%s: returning a value from a void method", c.Name, m.Name)
				} else if !tc.assignable(got, ret) {
					tc.errf(s.Pos, "%s.%s: cannot return %s as %s", c.Name, m.Name, got, ret)
				}
			}
			returns = true
		case *Spawn:
			tc.checkStmts(c, m, s.Body, env.child(), voidType)
		case *ExprStmt:
			tc.typeOf(c, m, s.X, env)
		case *SuperCall:
			tc.checkSuper(c, m, s, env)
		}
	}
	return returns
}

func (tc *typeChecker) checkSuper(c *Class, m *Method, s *SuperCall, env *typeEnv) {
	if c.Super == ObjectClass {
		if len(s.Args) != 0 {
			tc.errf(s.Pos, "%s.<init>: Object constructor takes no arguments", c.Name)
		}
		return
	}
	ctor := tc.ct.Ctor(c.Super)
	var params []Param
	if ctor != nil {
		params = ctor.Params
	}
	if len(s.Args) != len(params) {
		tc.errf(s.Pos, "%s.<init>: super expects %d argument(s), got %d", c.Name, len(params), len(s.Args))
		return
	}
	for i, a := range s.Args {
		got := tc.typeOf(c, m, a, env)
		if !tc.assignable(got, params[i].Type) {
			tc.errf(s.Pos, "%s.<init>: super argument %d is %s, want %s", c.Name, i+1, got, params[i].Type)
		}
	}
}

func (tc *typeChecker) fieldType(class, field string) (string, bool) {
	if isPrimitive(class) || class == dynamicType || class == nullType {
		return "", false
	}
	fs, err := tc.ct.Fields(class)
	if err != nil {
		return "", false
	}
	for _, f := range fs {
		if f.Name == field {
			return f.Type, true
		}
	}
	return "", false
}

func (tc *typeChecker) wantBool(c *Class, m *Method, e Expr, env *typeEnv) {
	if t := tc.typeOf(c, m, e, env); t != "Bool" && t != dynamicType {
		tc.errf(e.ExprPos(), "%s.%s: condition is %s, want Bool", c.Name, m.Name, t)
	}
}

// typeOf computes the static type of an expression, reporting problems as
// it goes; impossible subexpressions type as dynamic to avoid cascades.
func (tc *typeChecker) typeOf(c *Class, m *Method, e Expr, env *typeEnv) string {
	switch e := e.(type) {
	case *IntLit:
		return "Int"
	case *FloatLit:
		return "Float"
	case *StrLit:
		return "String"
	case *BoolLit:
		return "Bool"
	case *NullLit:
		return nullType
	case *This:
		return c.Name
	case *Var:
		if t, ok := env.lookup(e.Name); ok {
			return t
		}
		if builtinNamespaces[e.Name] {
			return dynamicType
		}
		return dynamicType // Check already reported unknown variables
	case *FieldAccess:
		objT := tc.typeOf(c, m, e.Obj, env)
		if objT == dynamicType {
			return dynamicType
		}
		if ft, ok := tc.fieldType(objT, e.Name); ok {
			return ft
		}
		tc.errf(e.Pos, "%s.%s: type %s has no field %s", c.Name, m.Name, objT, e.Name)
		return dynamicType
	case *Call:
		return tc.typeOfCall(c, m, e, env)
	case *New:
		cls := tc.ct.Lookup(e.Class)
		if cls == nil {
			tc.errf(e.Pos, "%s.%s: unknown class %s", c.Name, m.Name, e.Class)
			return dynamicType
		}
		ctor := tc.ct.Ctor(e.Class)
		var params []Param
		if ctor != nil {
			params = ctor.Params
		}
		if len(e.Args) != len(params) {
			tc.errf(e.Pos, "%s.%s: constructor %s expects %d argument(s), got %d",
				c.Name, m.Name, e.Class, len(params), len(e.Args))
		} else {
			for i, a := range e.Args {
				got := tc.typeOf(c, m, a, env)
				if !tc.assignable(got, params[i].Type) {
					tc.errf(a.ExprPos(), "%s.%s: constructor argument %d is %s, want %s",
						c.Name, m.Name, i+1, got, params[i].Type)
				}
			}
		}
		return e.Class
	case *Binary:
		return tc.typeOfBinary(c, m, e, env)
	case *Unary:
		t := tc.typeOf(c, m, e.X, env)
		switch e.Op {
		case "!":
			if t != "Bool" && t != dynamicType {
				tc.errf(e.Pos, "%s.%s: ! applied to %s", c.Name, m.Name, t)
			}
			return "Bool"
		case "-":
			if t != "Int" && t != "Float" && t != dynamicType {
				tc.errf(e.Pos, "%s.%s: unary - applied to %s", c.Name, m.Name, t)
			}
			return t
		}
	}
	return dynamicType
}

// stringMethodSigs types the String builtins: name -> (param types, result).
var stringMethodSigs = map[string]struct {
	params []string
	result string
}{
	"equals":     {[]string{"String"}, "Bool"},
	"concat":     {[]string{"String"}, "String"},
	"length":     {nil, "Int"},
	"contains":   {[]string{"String"}, "Bool"},
	"startsWith": {[]string{"String"}, "Bool"},
	"indexOf":    {[]string{"String"}, "Int"},
	"substring":  {[]string{"Int", "Int"}, "String"},
	"charAt":     {[]string{"Int"}, "Int"},
	"fromChar":   {[]string{"Int"}, "String"},
	"toStr":      {nil, "String"},
}

func (tc *typeChecker) typeOfCall(c *Class, m *Method, e *Call, env *typeEnv) string {
	if ns, ok := e.Recv.(*Var); ok && builtinNamespaces[ns.Name] {
		if _, shadowed := env.lookup(ns.Name); !shadowed {
			for _, a := range e.Args {
				tc.typeOf(c, m, a, env) // arguments are dynamic but must type
			}
			return tc.namespaceResult(ns.Name, e)
		}
	}
	recvT := tc.typeOf(c, m, e.Recv, env)
	if recvT == dynamicType {
		for _, a := range e.Args {
			tc.typeOf(c, m, a, env)
		}
		return dynamicType
	}
	if recvT == "String" || ((recvT == "Int" || recvT == "Float" || recvT == "Bool") && e.Method == "toStr") {
		sig, ok := stringMethodSigs[e.Method]
		if !ok && recvT == "String" {
			tc.errf(e.Pos, "%s.%s: String has no method %s", c.Name, m.Name, e.Method)
			return dynamicType
		}
		if ok {
			if len(e.Args) != len(sig.params) {
				tc.errf(e.Pos, "%s.%s: String.%s expects %d argument(s), got %d",
					c.Name, m.Name, e.Method, len(sig.params), len(e.Args))
			} else {
				for i, a := range e.Args {
					if got := tc.typeOf(c, m, a, env); !tc.assignable(got, sig.params[i]) {
						tc.errf(a.ExprPos(), "%s.%s: String.%s argument %d is %s, want %s",
							c.Name, m.Name, e.Method, i+1, got, sig.params[i])
					}
				}
			}
			return sig.result
		}
	}
	if recvT == "Int" && e.Method == "toFloat" && len(e.Args) == 0 {
		return "Float"
	}
	if recvT == "Float" && e.Method == "toInt" && len(e.Args) == 0 {
		return "Int"
	}
	if isPrimitive(recvT) || recvT == nullType || recvT == voidType {
		tc.errf(e.Pos, "%s.%s: %s value has no method %s", c.Name, m.Name, recvT, e.Method)
		return dynamicType
	}
	target, _, ok := tc.ct.MBody(e.Method, recvT)
	if !ok {
		tc.errf(e.Pos, "%s.%s: class %s has no method %s", c.Name, m.Name, recvT, e.Method)
		return dynamicType
	}
	if len(e.Args) != len(target.Params) {
		tc.errf(e.Pos, "%s.%s: %s.%s expects %d argument(s), got %d",
			c.Name, m.Name, recvT, e.Method, len(target.Params), len(e.Args))
	} else {
		for i, a := range e.Args {
			if got := tc.typeOf(c, m, a, env); !tc.assignable(got, target.Params[i].Type) {
				tc.errf(a.ExprPos(), "%s.%s: argument %d of %s.%s is %s, want %s",
					c.Name, m.Name, i+1, recvT, e.Method, got, target.Params[i].Type)
			}
		}
	}
	if target.RetType == "" || target.RetType == voidType {
		return voidType
	}
	return target.RetType
}

func (tc *typeChecker) namespaceResult(ns string, e *Call) string {
	switch ns + "." + e.Method {
	case "Sys.print", "Sys.abort":
		return voidType
	case "Sys.arg":
		return "String"
	case "Sys.numArgs", "Sys.parseInt":
		return "Int"
	case "Reflect.hasClass":
		return "Bool"
	case "Reflect.className":
		return "String"
	case "Runtime.defineClass":
		return "Bool"
	}
	return dynamicType // Reflect.create / Reflect.call
}

func (tc *typeChecker) typeOfBinary(c *Class, m *Method, e *Binary, env *typeEnv) string {
	l := tc.typeOf(c, m, e.L, env)
	r := tc.typeOf(c, m, e.R, env)
	numeric := func(t string) bool { return t == "Int" || t == "Float" || t == dynamicType }
	switch e.Op {
	case "&&", "||":
		if (l != "Bool" && l != dynamicType) || (r != "Bool" && r != dynamicType) {
			tc.errf(e.Pos, "%s.%s: %s applied to %s and %s", c.Name, m.Name, e.Op, l, r)
		}
		return "Bool"
	case "==", "!=":
		if !tc.assignable(l, r) && !tc.assignable(r, l) {
			tc.errf(e.Pos, "%s.%s: incomparable types %s and %s", c.Name, m.Name, l, r)
		}
		return "Bool"
	case "<", "<=", ">", ">=":
		if !numeric(l) || !numeric(r) {
			tc.errf(e.Pos, "%s.%s: %s applied to %s and %s", c.Name, m.Name, e.Op, l, r)
		}
		return "Bool"
	case "+":
		if l == "String" || r == "String" {
			return "String"
		}
		fallthrough
	case "-", "*", "/", "%":
		if !numeric(l) || !numeric(r) {
			tc.errf(e.Pos, "%s.%s: %s applied to %s and %s", c.Name, m.Name, e.Op, l, r)
			return dynamicType
		}
		if l == "Float" || r == "Float" {
			return "Float"
		}
		if l == dynamicType || r == dynamicType {
			return dynamicType
		}
		return "Int"
	}
	return dynamicType
}

// TypeCheckSummary renders a compact success message for CLI use.
func TypeCheckSummary(p *Program) string {
	var classes, methods int
	for _, c := range p.Classes {
		classes++
		methods += len(c.Methods)
		if c.Ctor != nil {
			methods++
		}
	}
	return fmt.Sprintf("type-checked %d class(es), %d method(s)", classes, methods)
}
