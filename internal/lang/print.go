package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the program as concrete syntax. The output re-parses to a
// structurally identical AST (modulo source positions); see the round-trip
// property test.
func Print(p *Program) string {
	var b strings.Builder
	for i, c := range p.Classes {
		if i > 0 {
			b.WriteByte('\n')
		}
		printClass(&b, c)
	}
	return b.String()
}

func printClass(b *strings.Builder, c *Class) {
	if c.Opaque {
		b.WriteString("opaque ")
	}
	fmt.Fprintf(b, "class %s", c.Name)
	if c.Super != ObjectClass {
		fmt.Fprintf(b, " extends %s", c.Super)
	}
	b.WriteString(" {\n")
	for _, f := range c.Fields {
		fmt.Fprintf(b, "  %s %s;\n", f.Type, f.Name)
	}
	if c.Ctor != nil {
		fmt.Fprintf(b, "  %s(%s) {\n", c.Name, paramList(c.Ctor.Params))
		printStmts(b, c.Ctor.Body, 2)
		b.WriteString("  }\n")
	}
	for _, m := range c.Methods {
		fmt.Fprintf(b, "  %s %s(%s) {\n", m.RetType, m.Name, paramList(m.Params))
		printStmts(b, m.Body, 2)
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

func paramList(ps []Param) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Type + " " + p.Name
	}
	return strings.Join(parts, ", ")
}

func printStmts(b *strings.Builder, ss []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch s := s.(type) {
		case *Let:
			fmt.Fprintf(b, "%slet %s = %s;\n", ind, s.Name, ExprString(s.Init))
		case *AssignLocal:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, s.Name, ExprString(s.Val))
		case *AssignField:
			fmt.Fprintf(b, "%s%s.%s = %s;\n", ind, ExprString(s.Obj), s.Name, ExprString(s.Val))
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, ExprString(s.Cond))
			printStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, ExprString(s.Cond))
			printStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *Return:
			if s.Val == nil {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			} else {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, ExprString(s.Val))
			}
		case *Spawn:
			fmt.Fprintf(b, "%sspawn {\n", ind)
			printStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, ExprString(s.X))
		case *SuperCall:
			fmt.Fprintf(b, "%ssuper(%s);\n", ind, exprList(s.Args))
		}
	}
}

// ExprString renders an expression as concrete syntax, fully
// parenthesizing nested binary operations so precedence survives the
// round trip.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Val, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case *StrLit:
		return quoteString(e.Val)
	case *BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *NullLit:
		return "null"
	case *This:
		return "this"
	case *Var:
		return e.Name
	case *FieldAccess:
		return ExprString(e.Obj) + "." + e.Name
	case *Call:
		return fmt.Sprintf("%s.%s(%s)", ExprString(e.Recv), e.Method, exprList(e.Args))
	case *New:
		return fmt.Sprintf("new %s(%s)", e.Class, exprList(e.Args))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.L), e.Op, ExprString(e.R))
	case *Unary:
		return fmt.Sprintf("%s(%s)", e.Op, ExprString(e.X))
	}
	return fmt.Sprintf("/*?%T*/", e)
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
