package lang

import (
	"strings"
	"testing"
)

func kindsAndTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll(%q): %v", src, err)
	}
	var out []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		out = append(out, tok.Kind.String()+":"+tok.Text)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kindsAndTexts(t, `class C { Int x; }`)
	want := []string{"keyword:class", "ident:C", "punct:{", "ident:Int", "ident:x", "punct:;", "punct:}"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexNumbers(t *testing.T) {
	got := kindsAndTexts(t, "12 3.5 0 007")
	want := []string{"int:12", "float:3.5", "int:0", "int:007"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexDotAfterIntIsMemberAccess(t *testing.T) {
	// "1.foo" must lex as int 1, dot, ident foo (not a float).
	got := kindsAndTexts(t, "x.f")
	want := []string{"ident:x", "punct:.", "ident:f"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := LexAll(`"a\nb\t\"c\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "a\nb\t\"c\\" {
		t.Errorf("string token = %q", toks[0].Text)
	}
}

func TestLexOperators(t *testing.T) {
	got := kindsAndTexts(t, "== != <= >= && || < > + - * / % ! =")
	for _, g := range got {
		if !strings.HasPrefix(g, "op:") {
			t.Errorf("token %s should be an operator", g)
		}
	}
	if len(got) != 15 {
		t.Errorf("got %d tokens, want 15", len(got))
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
class /* block
comment */ C {}`
	got := kindsAndTexts(t, src)
	want := []string{"keyword:class", "ident:C", "punct:{", "punct:}"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		"class @ {}",
		"/* unterminated",
	}
	for _, src := range cases {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q): expected error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("second token pos = %v", toks[1].Pos)
	}
}
