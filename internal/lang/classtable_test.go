package lang

import (
	"strings"
	"testing"
)

const hierarchySrc = `
class A {
  Int a;
  Int base() { return 1; }
  Int both() { return 10; }
}
class B extends A {
  Int b;
  Int both() { return 20; }
  Int onlyB() { return 2; }
}
class C extends B {
  Int c;
}
`

func TestFieldsCollectsInherited(t *testing.T) {
	ct, err := NewClassTable(MustParse(hierarchySrc))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ct.Fields("C")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range fs {
		names = append(names, f.Name)
	}
	if got := strings.Join(names, ","); got != "a,b,c" {
		t.Errorf("fields(C) = %s, want a,b,c", got)
	}
	if fs, _ := ct.Fields(ObjectClass); fs != nil {
		t.Error("fields(Object) should be empty")
	}
	if _, err := ct.Fields("Nope"); err == nil {
		t.Error("fields of unknown class should fail")
	}
}

func TestMBodyWalksChain(t *testing.T) {
	ct, _ := NewClassTable(MustParse(hierarchySrc))
	if _, def, ok := ct.MBody("base", "C"); !ok || def != "A" {
		t.Errorf("mbody(base, C) defined in %q ok=%v, want A", def, ok)
	}
	if _, def, ok := ct.MBody("both", "C"); !ok || def != "B" {
		t.Errorf("mbody(both, C) defined in %q, want override in B", def)
	}
	if _, def, ok := ct.MBody("both", "A"); !ok || def != "A" {
		t.Errorf("mbody(both, A) defined in %q, want A", def)
	}
	if _, _, ok := ct.MBody("nope", "C"); ok {
		t.Error("mbody of missing method should fail")
	}
	if _, _, ok := ct.MBody("base", "Unknown"); ok {
		t.Error("mbody on unknown class should fail")
	}
}

func TestIsSubclass(t *testing.T) {
	ct, _ := NewClassTable(MustParse(hierarchySrc))
	cases := []struct {
		sub, sup string
		want     bool
	}{
		{"C", "A", true},
		{"C", "C", true},
		{"A", "C", false},
		{"A", "Object", true},
		{"Unknown", "A", false},
	}
	for _, c := range cases {
		if got := ct.IsSubclass(c.sub, c.sup); got != c.want {
			t.Errorf("IsSubclass(%s, %s) = %v, want %v", c.sub, c.sup, got, c.want)
		}
	}
}

func TestDefineRejectsDuplicatesAndObject(t *testing.T) {
	ct, _ := NewClassTable(MustParse(hierarchySrc))
	if err := ct.Define(&Class{Name: "A"}); err == nil {
		t.Error("duplicate class must be rejected")
	}
	if err := ct.Define(&Class{Name: ObjectClass}); err == nil {
		t.Error("redefining Object must be rejected")
	}
	if err := ct.Define(&Class{Name: "Fresh", Super: ObjectClass}); err != nil {
		t.Errorf("fresh class rejected: %v", err)
	}
	if ct.Lookup("Fresh") == nil {
		t.Error("fresh class not found after Define")
	}
}

func TestCheckAcceptsSample(t *testing.T) {
	if err := Check(MustParse(sampleProgram)); err != nil {
		t.Errorf("Check(sample) = %v", err)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"unknown super", `class A extends Nope {}`, "unknown class"},
		{"cycle", `class A extends B {} class B extends A {}`, "cycle"},
		{"dup field", `class A { Int x; Int x; }`, "duplicate field"},
		{"dup method", `class A { Int f() { return 1; } Int f() { return 2; } }`, "duplicate method"},
		{"dup param", `class A { Int f(Int x, Int x) { return x; } }`, "duplicate parameter"},
		{"unknown var", `class A { Int f() { return y; } }`, "unknown variable"},
		{"assign undeclared", `class A { void f() { y = 1; } }`, "undeclared"},
		{"super in method", `class A { void f() { super(); } }`, "super"},
		{"super not first", `class A { A() { let x = 1; super(); } }`, "super"},
		{"new primitive", `class A { void f() { let x = new Int(3); } }`, "primitive"},
	}
	for _, c := range cases {
		err := Check(MustParse(c.src))
		if err == nil {
			t.Errorf("%s: Check accepted bad program", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.frag)
		}
	}
}

func TestCheckScopesAreLexical(t *testing.T) {
	// A let inside an if arm must not leak into the following statements.
	src := `class A { void f(Bool b) {
		if (b) { let x = 1; } else { }
		let y = x;
	} }`
	if err := Check(MustParse(src)); err == nil {
		t.Error("x must not be visible after the if block")
	}
	// But a let at method level is visible later.
	ok := `class A { void f() { let x = 1; let y = x; } }`
	if err := Check(MustParse(ok)); err != nil {
		t.Errorf("valid scoping rejected: %v", err)
	}
	// Builtin namespaces resolve without declaration.
	builtin := `class A { void f() { Sys.print("x"); Runtime.defineClass("..."); let o = Reflect.create("A"); } }`
	if err := Check(MustParse(builtin)); err != nil {
		t.Errorf("builtin namespaces rejected: %v", err)
	}
}
