package lang

import (
	"fmt"
	"strings"
)

// CheckError aggregates static well-formedness violations.
type CheckError struct {
	Problems []string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("lang: %d problem(s):\n  %s", len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// builtinNamespaces are identifiers resolvable without a local binding:
// they name intrinsic receivers handled by the interpreter.
var builtinNamespaces = map[string]bool{"Sys": true, "Reflect": true, "Runtime": true}

// primitiveTypes are the value-object types D of Fig. 3.
var primitiveTypes = map[string]bool{"Int": true, "Bool": true, "String": true, "Float": true, "void": true}

// Check performs static well-formedness checking: superclass resolution
// and cycle detection, duplicate members, unknown local variables, super()
// placement, and field-count agreement are validated. The language remains
// dynamically typed beyond this (like the paper's tool, which needs no
// source access at all), so method and field existence on *other* objects
// is a run-time concern.
func Check(p *Program) error {
	var probs []string
	addf := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	ct, err := NewClassTable(p)
	if err != nil {
		return &CheckError{Problems: []string{err.Error()}}
	}

	// Superclass existence and acyclicity.
	for _, c := range p.Classes {
		if c.Super != ObjectClass && ct.Lookup(c.Super) == nil {
			addf("%s: class %s extends unknown class %s", c.Pos, c.Name, c.Super)
			continue
		}
		seen := map[string]bool{c.Name: true}
		for cur := c.Super; cur != ObjectClass; {
			if seen[cur] {
				addf("%s: class %s participates in an inheritance cycle", c.Pos, c.Name)
				break
			}
			seen[cur] = true
			sc := ct.Lookup(cur)
			if sc == nil {
				break
			}
			cur = sc.Super
		}
	}

	for _, c := range p.Classes {
		checkClass(ct, c, addf)
	}

	if probs != nil {
		return &CheckError{Problems: probs}
	}
	return nil
}

func checkClass(ct *ClassTable, c *Class, addf func(string, ...any)) {
	fieldNames := map[string]bool{}
	for _, f := range c.Fields {
		if fieldNames[f.Name] {
			addf("%s: class %s: duplicate field %s", c.Pos, c.Name, f.Name)
		}
		fieldNames[f.Name] = true
	}
	methodNames := map[string]bool{}
	for _, m := range c.Methods {
		if methodNames[m.Name] {
			addf("%s: class %s: duplicate method %s", m.Pos, c.Name, m.Name)
		}
		methodNames[m.Name] = true
		checkMethod(c, m, false, addf)
	}
	if c.Ctor != nil {
		checkMethod(c, c.Ctor, true, addf)
	}
}

func checkMethod(c *Class, m *Method, isCtor bool, addf func(string, ...any)) {
	scope := map[string]bool{}
	for _, p := range m.Params {
		if scope[p.Name] {
			addf("%s: %s.%s: duplicate parameter %s", m.Pos, c.Name, m.Name, p.Name)
		}
		scope[p.Name] = true
	}
	for i, s := range m.Body {
		if sc, ok := s.(*SuperCall); ok {
			if !isCtor || i != 0 {
				addf("%s: %s.%s: super(...) only allowed as the first statement of a constructor",
					sc.Pos, c.Name, m.Name)
			}
		}
	}
	checkStmts(c, m, m.Body, copyScope(scope), addf)
}

func copyScope(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func checkStmts(c *Class, m *Method, body []Stmt, scope map[string]bool, addf func(string, ...any)) {
	for _, s := range body {
		switch s := s.(type) {
		case *Let:
			checkExpr(c, m, s.Init, scope, addf)
			scope[s.Name] = true
		case *AssignLocal:
			if !scope[s.Name] {
				addf("%s: %s.%s: assignment to undeclared variable %s", s.Pos, c.Name, m.Name, s.Name)
			}
			checkExpr(c, m, s.Val, scope, addf)
		case *AssignField:
			checkExpr(c, m, s.Obj, scope, addf)
			checkExpr(c, m, s.Val, scope, addf)
		case *If:
			checkExpr(c, m, s.Cond, scope, addf)
			checkStmts(c, m, s.Then, copyScope(scope), addf)
			checkStmts(c, m, s.Else, copyScope(scope), addf)
		case *While:
			checkExpr(c, m, s.Cond, scope, addf)
			checkStmts(c, m, s.Body, copyScope(scope), addf)
		case *Return:
			if s.Val != nil {
				checkExpr(c, m, s.Val, scope, addf)
			}
		case *Spawn:
			checkStmts(c, m, s.Body, copyScope(scope), addf)
		case *ExprStmt:
			checkExpr(c, m, s.X, scope, addf)
		case *SuperCall:
			for _, a := range s.Args {
				checkExpr(c, m, a, scope, addf)
			}
		}
	}
}

func checkExpr(c *Class, m *Method, e Expr, scope map[string]bool, addf func(string, ...any)) {
	switch e := e.(type) {
	case *Var:
		if !scope[e.Name] && !builtinNamespaces[e.Name] {
			addf("%s: %s.%s: unknown variable %s", e.Pos, c.Name, m.Name, e.Name)
		}
	case *FieldAccess:
		checkExpr(c, m, e.Obj, scope, addf)
	case *Call:
		checkExpr(c, m, e.Recv, scope, addf)
		for _, a := range e.Args {
			checkExpr(c, m, a, scope, addf)
		}
	case *New:
		if primitiveTypes[e.Class] {
			addf("%s: %s.%s: cannot instantiate primitive type %s", e.Pos, c.Name, m.Name, e.Class)
		}
		for _, a := range e.Args {
			checkExpr(c, m, a, scope, addf)
		}
	case *Binary:
		checkExpr(c, m, e.L, scope, addf)
		checkExpr(c, m, e.R, scope, addf)
	case *Unary:
		checkExpr(c, m, e.X, scope, addf)
	}
}
