package lang

import (
	"strings"
	"testing"
)

func TestTypeCheckAcceptsSample(t *testing.T) {
	if err := TypeCheck(MustParse(sampleProgram)); err != nil {
		t.Errorf("TypeCheck(sample) = %v", err)
	}
}

func TestTypeCheckRejections(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"assign int to bool local",
			`class A { void f() { let b = true; b = 3; } }`, "cannot assign Int"},
		{"assign wrong field type",
			`class A { Int x; void f() { this.x = "s"; } }`, "cannot assign String"},
		{"bad argument",
			`class A { Int g(Int x) { return x; } void f() { this.g(true); } }`, "want Int"},
		{"bad arity",
			`class A { Int g(Int x) { return x; } void f() { this.g(); } }`, "expects 1"},
		{"return mismatch",
			`class A { Int f() { return "s"; } }`, "cannot return String"},
		{"value from void",
			`class A { void f() { return 3; } }`, "returning a value"},
		{"bare return from typed",
			`class A { Int f() { return; } }`, "bare return"},
		{"missing return",
			`class A { Int f(Bool b) { if (b) { return 1; } } }`, "missing return"},
		{"condition not bool",
			`class A { void f() { if (1 + 2) { } } }`, "want Bool"},
		{"while condition",
			`class A { void f() { while ("x") { } } }`, "want Bool"},
		{"unknown field type",
			`class A { Zork z; }`, "unknown type"},
		{"unknown param type",
			`class A { void f(Zork z) { } }`, "unknown type"},
		{"no such method",
			`class B {} class A { void f(B b) { b.g(); } }`, "no method g"},
		{"no such field",
			`class B {} class A { Int f(B b) { return b.x; } }`, "no field x"},
		{"method on primitive",
			`class A { void f() { let x = 3; x.run(); } }`, "no method"},
		{"override signature change",
			`class A { Int f(Int x) { return x; } } class B extends A { Bool f(Int x) { return true; } }`,
			"different signature"},
		{"override arity change",
			`class A { Int f(Int x) { return x; } } class B extends A { Int f(Int x, Int y) { return x; } }`,
			"different signature"},
		{"super arity",
			`class A { A(Int x) { super(); } } class B extends A { B() { super(); } }`, "super expects 1"},
		{"super to object with args",
			`class A { A() { super(3); } }`, "no arguments"},
		{"ctor arg type",
			`class A { A(Int x) { super(); } } class Main { void main() { let a = new A("s"); } }`, "want Int"},
		{"logical on ints",
			`class A { Bool f() { return 1 && true; } }`, "&& applied"},
		{"comparison on strings",
			`class A { Bool f() { return "a" < "b"; } }`, "< applied"},
		{"incomparable equality",
			`class A { Bool f() { return 1 == "x"; } }`, "incomparable"},
		{"arith on bool",
			`class A { Int f() { return true * 2; } }`, "* applied"},
		{"unary minus on string",
			`class A { Int f() { return -("x".length()) + -(true); } }`, "unary - applied to Bool"},
		{"not on int",
			`class A { Bool f() { return !3; } }`, "! applied"},
		{"null to primitive local",
			`class A { void f() { let x = 3; x = null; } }`, "cannot assign"},
		{"string builtin arg",
			`class A { Bool f() { return "a".equals(3); } }`, "want String"},
		{"string builtin missing",
			`class A { void f() { "a".frobnicate(); } }`, "no method"},
		{"bad substring arity",
			`class A { String f() { return "abc".substring(1); } }`, "expects 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := TypeCheck(MustParse(c.src))
			if err == nil {
				t.Fatalf("TypeCheck accepted bad program")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q missing %q", err, c.frag)
			}
		})
	}
}

func TestTypeCheckAcceptances(t *testing.T) {
	cases := []struct{ name, src string }{
		{"subtyping assignment",
			`class A {} class B extends A {} class Main { A f() { let a = new B(); return a; } void main() { } }`},
		{"null to class field",
			`class B {} class A { B b; void f() { this.b = null; } }`},
		{"definite return via if-else",
			`class A { Int f(Bool b) { if (b) { return 1; } else { return 2; } } }`},
		{"string concat via plus",
			`class A { String f() { return "a" + 1 + true; } }`},
		{"float promotion",
			`class A { Float f() { return 1 + 2.5; } }`},
		{"dynamic reflect result",
			`class A { Int f() { let g = Reflect.create("A"); return Reflect.call(g, "f"); } }`},
		{"builtin signatures",
			`class A { void f() { Sys.print(Sys.parseInt(Sys.arg(0)) + Sys.numArgs()); } }`},
		{"equality with null",
			`class B {} class A { Bool f(B b) { return b == null; } }`},
		{"void method call as statement",
			`class A { void g() { } void f() { this.g(); } }`},
		{"toStr on numbers",
			`class A { String f() { return 42 .toStr() + 2.5.toStr(); } }`},
		{"while body scoping",
			`class A { Int f() { let n = 0; while (n < 3) { let x = n * 2; n = x; } return n; } }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := TypeCheck(MustParse(c.src)); err != nil {
				t.Errorf("TypeCheck rejected valid program: %v", err)
			}
		})
	}
}

func TestTypeCheckSummary(t *testing.T) {
	p := MustParse(`class A { A() { super(); } void f() {} Int g() { return 1; } }`)
	s := TypeCheckSummary(p)
	if !strings.Contains(s, "1 class(es)") || !strings.Contains(s, "3 method(s)") {
		t.Errorf("summary = %q", s)
	}
}
