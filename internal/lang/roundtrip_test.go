package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genProgram emits a random but well-formed program as source text: the
// property under test is that Parse ∘ Print is the identity on the
// printed form (printing is a fixed point).
func genProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	nClasses := 1 + rng.Intn(3)
	for c := 0; c < nClasses; c++ {
		if rng.Intn(4) == 0 {
			b.WriteString("opaque ")
		}
		fmt.Fprintf(&b, "class K%d", c)
		if c > 0 && rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " extends K%d", rng.Intn(c))
		}
		b.WriteString(" {\n")
		nFields := rng.Intn(3)
		for f := 0; f < nFields; f++ {
			fmt.Fprintf(&b, "  Int f%d;\n", f)
		}
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "  K%d(Int a) { super(); }\n", c)
		}
		nMethods := rng.Intn(3)
		for m := 0; m < nMethods; m++ {
			fmt.Fprintf(&b, "  Int m%d(Int x, Bool b) {\n", m)
			genStmts(&b, rng, 2, 2)
			b.WriteString("    return x;\n  }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func genStmts(b *strings.Builder, rng *rand.Rand, depth, indent int) {
	n := 1 + rng.Intn(3)
	ind := strings.Repeat("  ", indent)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(b, "%slet v%d = %s;\n", ind, rng.Intn(100)+10, genExpr(rng, depth))
		case 1:
			fmt.Fprintf(b, "%sx = %s;\n", ind, genExpr(rng, depth))
		case 2:
			fmt.Fprintf(b, "%sthis.touch(%s);\n", ind, genExpr(rng, depth))
		case 3:
			if depth > 0 {
				fmt.Fprintf(b, "%sif (b) {\n", ind)
				genStmts(b, rng, depth-1, indent+1)
				if rng.Intn(2) == 0 {
					fmt.Fprintf(b, "%s} else {\n", ind)
					genStmts(b, rng, depth-1, indent+1)
				}
				fmt.Fprintf(b, "%s}\n", ind)
			}
		case 4:
			if depth > 0 {
				fmt.Fprintf(b, "%swhile (b) {\n", ind)
				genStmts(b, rng, depth-1, indent+1)
				fmt.Fprintf(b, "%s}\n", ind)
			}
		default:
			fmt.Fprintf(b, "%sSys.print(%s);\n", ind, genExpr(rng, depth))
		}
	}
}

func genExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprint(rng.Intn(1000))
		case 1:
			return fmt.Sprintf("%d.%d", rng.Intn(10), 1+rng.Intn(99))
		case 2:
			return `"s` + strings.Repeat("x", rng.Intn(4)) + `"`
		case 3:
			return "x"
		case 4:
			return "true"
		default:
			return "null"
		}
	}
	switch rng.Intn(6) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
		return fmt.Sprintf("(%s %s %s)", genExpr(rng, depth-1), ops[rng.Intn(len(ops))], genExpr(rng, depth-1))
	case 1:
		return fmt.Sprintf("!(%s)", genExpr(rng, depth-1))
	case 2:
		return fmt.Sprintf("-(%s)", genExpr(rng, depth-1))
	case 3:
		return fmt.Sprintf("this.f.g(%s, %s)", genExpr(rng, depth-1), genExpr(rng, depth-1))
	case 4:
		return fmt.Sprintf("new K0(%s)", genExpr(rng, depth-1))
	default:
		return genExpr(rng, depth-1)
	}
}

func TestPropertyPrintParseFixpoint(t *testing.T) {
	prop := func(seed int64) bool {
		src := genProgram(seed)
		p1, err := Parse(src)
		if err != nil {
			t.Logf("generated program does not parse (seed %d): %v\n%s", seed, err, src)
			return false
		}
		printed := Print(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Logf("printed program does not re-parse (seed %d): %v\n%s", seed, err, printed)
			return false
		}
		return Print(p2) == printed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyClonePrintsIdentically(t *testing.T) {
	prop := func(seed int64) bool {
		p, err := Parse(genProgram(seed))
		if err != nil {
			return false
		}
		return Print(p.Clone()) == Print(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLexerNeverPanics(t *testing.T) {
	prop := func(src string) bool {
		_, _ = LexAll(src) // must not panic, error is fine
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyParserNeverPanics(t *testing.T) {
	prop := func(src string) bool {
		_, _ = Parse(src) // must not panic, error is fine
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
