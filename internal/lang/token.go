// Package lang implements the paper's core object-oriented language
// (Fig. 3) — Featherweight Java extended with locations, field assignment,
// term sequences, value objects, and threads — plus the pragmatic
// extensions documented in DESIGN.md (conditionals, loops, operators,
// locals, null) that the evaluation's bug categories require.
//
// The package provides the concrete syntax (lexer + recursive-descent
// parser), the AST, a class table with the fields/mbody lookups of Fig. 5,
// static well-formedness checking, and a pretty-printer whose output
// re-parses to an identical AST (used by the run-time class loader and the
// regression injector).
package lang

import "fmt"

// TokKind classifies lexical tokens.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokPunct   // ( ) { } , ; .
	TokOp      // operators
	TokKeyword // reserved words
)

var tokKindNames = [...]string{"eof", "ident", "int", "float", "string", "punct", "op", "keyword"}

func (k TokKind) String() string {
	if int(k) < len(tokKindNames) {
		return tokKindNames[k]
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

// Pos is a source position for diagnostics.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"class": true, "extends": true, "new": true, "this": true, "super": true,
	"return": true, "if": true, "else": true, "while": true, "let": true,
	"spawn": true, "true": true, "false": true, "null": true, "opaque": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }
