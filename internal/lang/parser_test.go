package lang

import (
	"strings"
	"testing"
)

const sampleProgram = `
class Util {
  Int min;
  Int max;
  Util(Int a, Int b) {
    super();
    this.min = a;
    this.max = b;
  }
  Bool inRange(Int x) {
    if (x < this.min) { return false; }
    if (x > this.max) { return false; }
    return true;
  }
}

opaque class Log extends Util {
  void add(String msg) {
    Sys.print(msg);
    return;
  }
}

class Main {
  void main() {
    let u = new Util(32, 127);
    let i = 0;
    while (i < 10) {
      let ok = u.inRange(i * 13 % 200);
      if (ok) { Sys.print("in"); } else { Sys.print("out"); }
      i = i + 1;
    }
    spawn {
      Sys.print("worker");
    }
    return;
  }
}
`

func TestParseSampleProgram(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Classes) != 3 {
		t.Fatalf("parsed %d classes, want 3", len(prog.Classes))
	}
	util := prog.Class("Util")
	if util == nil || len(util.Fields) != 2 || util.Ctor == nil || len(util.Methods) != 1 {
		t.Fatalf("bad Util class: %+v", util)
	}
	if util.Ctor.Arity() != 2 {
		t.Errorf("ctor arity = %d", util.Ctor.Arity())
	}
	log := prog.Class("Log")
	if log == nil || !log.Opaque || log.Super != "Util" {
		t.Fatalf("bad Log class: %+v", log)
	}
	if got := prog.Class("Main").Method("main"); got == nil {
		t.Fatal("missing Main.main")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`class C { Int f() { return 1 + 2 * 3 == 7 && true; } }`)
	ret := prog.Class("C").Method("f").Body[0].(*Return)
	and, ok := ret.Val.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("top = %v, want &&", ExprString(ret.Val))
	}
	eq, ok := and.L.(*Binary)
	if !ok || eq.Op != "==" {
		t.Fatalf("left of && = %v, want ==", ExprString(and.L))
	}
	add, ok := eq.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("left of == = %v, want +", ExprString(eq.L))
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("right of + = %v, want *", ExprString(add.R))
	}
}

func TestParseChainedCallsAndFields(t *testing.T) {
	prog := MustParse(`class C { Int f(C o) { return o.g().h.i(1, 2).j; } }`)
	ret := prog.Class("C").Method("f").Body[0].(*Return)
	fa, ok := ret.Val.(*FieldAccess)
	if !ok || fa.Name != "j" {
		t.Fatalf("outermost = %v", ExprString(ret.Val))
	}
	call, ok := fa.Obj.(*Call)
	if !ok || call.Method != "i" || len(call.Args) != 2 {
		t.Fatalf("call = %v", ExprString(fa.Obj))
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog := MustParse(`class C { Int f(Int x) {
		if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; }
	} }`)
	s := prog.Class("C").Method("f").Body[0].(*If)
	if len(s.Else) != 1 {
		t.Fatalf("else arm has %d stmts", len(s.Else))
	}
	if _, ok := s.Else[0].(*If); !ok {
		t.Fatalf("else arm is %T, want *If", s.Else[0])
	}
}

func TestParseUnary(t *testing.T) {
	prog := MustParse(`class C { Bool f(Bool b, Int x) { return !b && -x < 0; } }`)
	ret := prog.Class("C").Method("f").Body[0].(*Return)
	and := ret.Val.(*Binary)
	if _, ok := and.L.(*Unary); !ok {
		t.Errorf("left = %v, want unary", ExprString(and.L))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`class {`, "identifier"},
		{`class C extends {}`, "identifier"},
		{`class C { Int f( { } }`, "identifier"},
		{`class C { void f() { 1 + ; } }`, "expression"},
		{`class C { void f() { let = 3; } }`, "identifier"},
		{`class C { void f() { 1 = 2; } }`, "assignment"},
		{`class C { void f() { if x {} } }`, "("},
		{`class C { void f() { return 1 } }`, ";"},
		{`class C { Int x }`, "';' or '('"},
		{`class C { C() {} C() {} }`, "duplicate constructor"},
		{`class C { void f() {} } trailing`, "class"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog := MustParse(sampleProgram)
	printed := Print(prog)
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, printed)
	}
	second := Print(reparsed)
	if printed != second {
		t.Errorf("print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed, second)
	}
}

func TestPrintRoundTripExpressions(t *testing.T) {
	exprs := []string{
		`((1 + 2) * 3)`,
		`(a.f == null)`,
		`!(x.m(1, "s", 2.5))`,
		`new C(this, true)`,
		`-(3)`,
		`"tab\tnl\nq\"bs\\"`,
	}
	for _, src := range exprs {
		full := `class C { void f(C a, Int x) { let r = ` + src + `; } }`
		p1, err := Parse(full)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := Print(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse %q: %v", printed, err)
			continue
		}
		if Print(p2) != printed {
			t.Errorf("round trip changed for %q", src)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	prog := MustParse(sampleProgram)
	clone := prog.Clone()
	// Mutate the clone and ensure the original is untouched.
	clone.Class("Util").Ctor.Body = nil
	clone.Class("Util").Fields[0].Name = "zzz"
	clone.Class("Main").Method("main").Body = nil
	if prog.Class("Util").Ctor.Body == nil {
		t.Error("ctor body shared between clone and original")
	}
	if prog.Class("Util").Fields[0].Name != "min" {
		t.Error("fields shared between clone and original")
	}
	if prog.Class("Main").Method("main").Body == nil {
		t.Error("method body shared between clone and original")
	}
	if Print(prog) == Print(clone) {
		t.Error("mutated clone still prints identically")
	}
}

func TestClonePreservesStructure(t *testing.T) {
	prog := MustParse(sampleProgram)
	if got, want := Print(prog.Clone()), Print(prog); got != want {
		t.Errorf("clone print differs:\n%s\nvs\n%s", got, want)
	}
}
