package lang

import "fmt"

// ClassTable resolves class names to declarations and implements the
// auxiliary lookups of Fig. 5: fields(C) collects inherited and declared
// fields, and mbody(m, C) walks the superclass chain. The table is mutable
// at run time: Runtime.defineClass installs new classes during execution
// (modelling dynamic class loading / code generation).
type ClassTable struct {
	classes map[string]*Class
	order   []string
}

// ObjectClass is the implicit root of the class hierarchy.
const ObjectClass = "Object"

// NewClassTable builds a table from the program's class declarations.
func NewClassTable(p *Program) (*ClassTable, error) {
	ct := &ClassTable{classes: make(map[string]*Class)}
	for _, c := range p.Classes {
		if err := ct.Define(c); err != nil {
			return nil, err
		}
	}
	return ct, nil
}

// Define installs a class, rejecting duplicates and redefinitions of
// Object.
func (ct *ClassTable) Define(c *Class) error {
	if c.Name == ObjectClass {
		return fmt.Errorf("lang: cannot redefine class Object")
	}
	if _, dup := ct.classes[c.Name]; dup {
		return fmt.Errorf("lang: duplicate class %s", c.Name)
	}
	ct.classes[c.Name] = c
	ct.order = append(ct.order, c.Name)
	return nil
}

// Lookup returns the class declaration, or nil for Object and unknown
// names.
func (ct *ClassTable) Lookup(name string) *Class { return ct.classes[name] }

// Names returns all defined class names in definition order.
func (ct *ClassTable) Names() []string { return append([]string(nil), ct.order...) }

// Fields implements fields(C): superclass fields first, then declared
// fields, following the chain up to Object (which has none).
func (ct *ClassTable) Fields(name string) ([]Field, error) {
	if name == ObjectClass {
		return nil, nil
	}
	c := ct.classes[name]
	if c == nil {
		return nil, fmt.Errorf("lang: unknown class %s", name)
	}
	super, err := ct.Fields(c.Super)
	if err != nil {
		return nil, err
	}
	return append(append([]Field(nil), super...), c.Fields...), nil
}

// MBody implements mbody(m, C): the most-derived definition of m found on
// the chain from C up to Object. The boolean reports whether a definition
// exists. The second result is the class that defines the method (needed
// for fully qualified method names C.m in method views).
func (ct *ClassTable) MBody(method, class string) (*Method, string, bool) {
	for name := class; name != ObjectClass; {
		c := ct.classes[name]
		if c == nil {
			return nil, "", false
		}
		if m := c.Method(method); m != nil {
			return m, name, true
		}
		name = c.Super
	}
	return nil, "", false
}

// Ctor returns the constructor of class name, or nil for the implicit
// zero-argument constructor. Constructors are not inherited.
func (ct *ClassTable) Ctor(name string) *Method {
	if c := ct.classes[name]; c != nil {
		return c.Ctor
	}
	return nil
}

// IsSubclass reports whether sub is name or a (transitive) subclass of it.
func (ct *ClassTable) IsSubclass(sub, name string) bool {
	for cur := sub; ; {
		if cur == name {
			return true
		}
		if cur == ObjectClass {
			return false
		}
		c := ct.classes[cur]
		if c == nil {
			return false
		}
		cur = c.Super
	}
}

// QualifiedName renders the fully qualified method name C.m used as the
// view name of method views (§2.4).
func QualifiedName(class, method string) string { return class + "." + method }
