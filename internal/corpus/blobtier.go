package corpus

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/blob"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// The blob tier is the third, bottom-most trace tier: a shared object
// store (S3-compatible bucket, or a filesystem/memory backend in
// tests) behind the local disk tier. Puts write through — a trace is
// not admitted until its objects are durable in the bucket — and reads
// of digests absent locally hydrate: the segment set is pulled back
// onto local disk, re-admitted to the index, and served through the
// ordinary strict load path, so corruption checks apply to hydrated
// traces exactly as to native ones.
//
// Object keys mirror the disk tier's file names under an optional
// prefix: <prefix><digest>.<seq>.seg, <prefix><digest>.meta.json,
// <prefix><digest>.sketch.json. The meta object is written last — it
// is the commit marker; a reader that finds it can rely on the
// segments being complete.
//
// With DiskCacheTraces set, local disk becomes a bounded cache over
// the bucket: past the bound the least recently used local copy is
// deleted and its index entry moves to the remote-meta cache. The
// digest stays resolvable — the next read hydrates it back — which is
// what lets a cluster node serve a corpus larger than its own disk.

// blobKey maps a local sidecar/segment file name to its object key.
func (s *Store) blobKey(name string) string {
	return s.blobPrefix + name
}

// BlobCounters exposes the blob-tier counters (nil-safe to snapshot
// only when a blob tier is configured; the server wires them into
// /stats).
func (s *Store) BlobCounters() *metrics.BlobCounters { return &s.blobCounters }

// HasBlob reports whether a blob tier is configured.
func (s *Store) HasBlob() bool { return s.blob != nil }

// LocalLen returns how many traces are resident in the local disk
// tier (== Len() when no blob tier is configured).
func (s *Store) LocalLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// blobGet fetches one object, counting the transfer.
func (s *Store) blobGet(ctx context.Context, key string) ([]byte, error) {
	s.blobCounters.Gets.Add(1)
	data, err := blob.GetBytes(ctx, s.blob, key)
	if err != nil {
		if !errors.Is(err, blob.ErrNotFound) {
			s.blobCounters.Errors.Add(1)
		}
		return nil, err
	}
	s.blobCounters.BytesDown.Add(int64(len(data)))
	return data, nil
}

// blobPut stores one object, counting the transfer.
func (s *Store) blobPut(ctx context.Context, key string, data []byte) error {
	s.blobCounters.Puts.Add(1)
	if err := s.blob.Put(ctx, key, data); err != nil {
		s.blobCounters.Errors.Add(1)
		return err
	}
	s.blobCounters.BytesUp.Add(int64(len(data)))
	return nil
}

// blobList lists object keys under a prefix, counting the call.
func (s *Store) blobList(ctx context.Context, prefix string) ([]string, error) {
	s.blobCounters.Lists.Add(1)
	keys, err := s.blob.List(ctx, prefix)
	if err != nil {
		s.blobCounters.Errors.Add(1)
	}
	return keys, err
}

// uploadBlob writes a freshly stored trace through to the bucket:
// every local segment file, the sketch sidecar (best effort, like its
// local counterpart), and the meta object last as the commit marker.
// Caller holds putMu, so the local files cannot change underneath.
func (s *Store) uploadBlob(ctx context.Context, id trace.Digest, m Meta, metaRaw []byte) error {
	segs, err := filepath.Glob(filepath.Join(s.dir, id.String()+".*.seg"))
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	sort.Strings(segs)
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		if err := s.blobPut(ctx, s.blobKey(filepath.Base(p)), data); err != nil {
			return err
		}
	}
	if data, err := os.ReadFile(s.sketchPath(id)); err == nil {
		if err := s.blobPut(ctx, s.blobKey(id.String()+".sketch.json"), data); err != nil {
			return err
		}
	}
	return s.blobPut(ctx, s.blobKey(id.String()+".meta.json"), metaRaw)
}

// blobMeta fetches and decodes a trace's meta object.
func (s *Store) blobMeta(ctx context.Context, id trace.Digest) (Meta, error) {
	raw, err := s.blobGet(ctx, s.blobKey(id.String()+".meta.json"))
	if err != nil {
		if errors.Is(err, blob.ErrNotFound) {
			s.mu.Lock()
			nerr := s.notFoundLocked(id)
			s.mu.Unlock()
			return Meta{}, nerr
		}
		return Meta{}, fmt.Errorf("corpus: blob meta %s: %w", id, err)
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, fmt.Errorf("corpus: blob meta %s: %w", id, err)
	}
	return m, nil
}

// hydrate pulls a trace from the bucket into the local disk tier and
// admits it to the index. With force set, local state is ignored and
// the segment set re-downloaded — the recovery path when local files
// were evicted or corrupted between an index check and a load. The
// local meta sidecar is written last, mirroring Put's commit order.
func (s *Store) hydrate(ctx context.Context, id trace.Digest, force bool) (Meta, error) {
	if s.blob == nil {
		s.mu.Lock()
		err := s.notFoundLocked(id)
		s.mu.Unlock()
		return Meta{}, err
	}
	s.putMu.Lock()
	defer s.putMu.Unlock()

	s.mu.Lock()
	m, ok := s.index[id]
	s.mu.Unlock()
	if ok && !force {
		return m, nil
	}

	m, err := s.blobMeta(ctx, id)
	if err != nil {
		return Meta{}, err
	}
	// Download by listing rather than by reconstructing segment names:
	// robust against a segment-numbering scheme change, and the strict
	// load in Get still catches an incomplete set.
	keys, err := s.blobList(ctx, s.blobKey(id.String()+"."))
	if err != nil {
		return Meta{}, fmt.Errorf("corpus: hydrate %s: %w", id, err)
	}
	cleanup := func() {
		s.removeLocalFiles(id)
	}
	segs := 0
	for _, k := range keys {
		base := strings.TrimPrefix(k, s.blobPrefix)
		if !strings.HasSuffix(base, ".seg") {
			continue
		}
		data, err := s.blobGet(ctx, k)
		if err != nil {
			cleanup()
			return Meta{}, fmt.Errorf("corpus: hydrate %s: %w", id, err)
		}
		if err := os.WriteFile(filepath.Join(s.dir, base), data, 0o644); err != nil {
			cleanup()
			return Meta{}, fmt.Errorf("corpus: hydrate %s: %w", id, err)
		}
		segs++
	}
	if segs == 0 {
		cleanup()
		return Meta{}, fmt.Errorf("corpus: hydrate %s: bucket has meta but no segments", id)
	}
	if data, err := s.blobGet(ctx, s.blobKey(id.String()+".sketch.json")); err == nil {
		_ = os.WriteFile(s.sketchPath(id), data, 0o644)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		cleanup()
		return Meta{}, fmt.Errorf("corpus: %w", err)
	}
	if err := os.WriteFile(s.metaPath(id), raw, 0o644); err != nil {
		cleanup()
		return Meta{}, fmt.Errorf("corpus: %w", err)
	}

	s.mu.Lock()
	s.index[id] = m
	delete(s.remote, id)
	s.mu.Unlock()
	s.blobCounters.Hydrations.Add(1)
	s.touchLocal(id)
	return m, nil
}

// Prefetch pulls a bucket-resident trace into the local disk tier
// without decoding it — the cluster's warm-hint path hydrates likely
// diff partners ahead of the diff that will need them. Already-local
// traces are a no-op.
func (s *Store) Prefetch(ctx context.Context, id trace.Digest) error {
	_, err := s.hydrate(ctx, id, false)
	return err
}

// IsLocalTrace reports whether id holds disk-tier files on this node
// (false for traces resolvable only through the bucket).
func (s *Store) IsLocalTrace(id trace.Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// removeLocalFiles deletes a trace's disk-tier files (segments and
// sidecars), ignoring what is already gone.
func (s *Store) removeLocalFiles(id trace.Digest) {
	segs, _ := filepath.Glob(filepath.Join(s.dir, id.String()+".*.seg"))
	for _, p := range append(segs, s.metaPath(id), s.sketchPath(id)) {
		_ = os.Remove(p)
	}
}

// touchLocal marks id most-recently-used in the disk tier and evicts
// past DiskCacheTraces. Only writers call it (caller holds putMu), so
// file removal cannot race another eviction; a concurrent reader that
// loses its files mid-load recovers through Get's re-hydration.
func (s *Store) touchLocal(id trace.Digest) {
	s.mu.Lock()
	s.touchLocalLocked(id)
	var evicted []trace.Digest
	if s.blob != nil && s.opts.DiskCacheTraces > 0 {
		for s.localLRU.Len() > s.opts.DiskCacheTraces {
			oldest := s.localLRU.Back()
			eid := oldest.Value.(trace.Digest)
			s.localLRU.Remove(oldest)
			delete(s.local, eid)
			// The trace leaves the local index but stays resolvable: its
			// meta moves to the remote cache and the next read hydrates.
			if m, ok := s.index[eid]; ok {
				s.remote[eid] = m
				delete(s.index, eid)
			}
			evicted = append(evicted, eid)
		}
	}
	s.mu.Unlock()
	for _, eid := range evicted {
		s.removeLocalFiles(eid)
		s.blobCounters.DiskEvictions.Add(1)
	}
}

// touchLocalLocked refreshes recency without evicting — the read-path
// variant, safe to call under s.mu alone.
func (s *Store) touchLocalLocked(id trace.Digest) {
	if el, ok := s.local[id]; ok {
		s.localLRU.MoveToFront(el)
		return
	}
	s.local[id] = s.localLRU.PushFront(id)
}

// dropLocalLocked forgets id's disk-tier bookkeeping (Delete path).
// Caller holds s.mu.
func (s *Store) dropLocalLocked(id trace.Digest) {
	if el, ok := s.local[id]; ok {
		s.localLRU.Remove(el)
		delete(s.local, id)
	}
	delete(s.remote, id)
}

// deleteBlob removes every object of a trace from the bucket.
func (s *Store) deleteBlob(ctx context.Context, id trace.Digest) error {
	keys, err := s.blobList(ctx, s.blobKey(id.String()+"."))
	if err != nil {
		return fmt.Errorf("corpus: delete %s from blob: %w", id, err)
	}
	// Meta object first: it is the commit marker, so removing it first
	// makes a partially deleted trace read as absent, not corrupted.
	sort.Slice(keys, func(i, j int) bool {
		mi := strings.HasSuffix(keys[i], ".meta.json")
		mj := strings.HasSuffix(keys[j], ".meta.json")
		if mi != mj {
			return mi
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		s.blobCounters.Deletes.Add(1)
		if err := s.blob.Delete(ctx, k); err != nil {
			s.blobCounters.Errors.Add(1)
			return fmt.Errorf("corpus: delete %s from blob: %w", id, err)
		}
	}
	return nil
}

// ListAll returns metadata for every trace in every tier: the local
// index plus traces living only in the bucket. Remote metas are
// fetched once and cached; a key that disappears mid-walk (concurrent
// delete) is skipped.
func (s *Store) ListAll(ctx context.Context) ([]Meta, error) {
	out := s.List()
	if s.blob == nil {
		return out, nil
	}
	keys, err := s.blobList(ctx, s.blobKey(""))
	if err != nil {
		return nil, fmt.Errorf("corpus: list blob: %w", err)
	}
	seen := make(map[string]bool, len(out))
	for _, m := range out {
		seen[m.ID] = true
	}
	for _, k := range keys {
		base := strings.TrimPrefix(k, s.blobPrefix)
		idStr, ok := strings.CutSuffix(base, ".meta.json")
		if !ok || seen[idStr] {
			continue
		}
		id, err := trace.ParseDigest(idStr)
		if err != nil {
			continue
		}
		m, err := s.Meta(id)
		if err != nil {
			continue
		}
		seen[idStr] = true
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RemoteSketch resolves a trace's similarity sketch without hydrating
// the trace: in-memory map first, then the bucket's sketch object.
// The cluster's warm-hint prefetcher shortlists diff partners with it
// — pulling a few KB of sketch instead of a whole segment set.
func (s *Store) RemoteSketch(ctx context.Context, id trace.Digest) (*index.Sketch, error) {
	s.mu.Lock()
	if sk, ok := s.sketches[id]; ok {
		s.mu.Unlock()
		return sk, nil
	}
	_, local := s.index[id]
	s.mu.Unlock()
	if local {
		return s.Sketch(id)
	}
	if s.blob == nil {
		s.mu.Lock()
		err := s.notFoundLocked(id)
		s.mu.Unlock()
		return nil, err
	}
	raw, err := s.blobGet(ctx, s.blobKey(id.String()+".sketch.json"))
	if err != nil {
		if errors.Is(err, blob.ErrNotFound) {
			return nil, fmt.Errorf("%w: no sketch for %s in blob tier", ErrNotFound, id)
		}
		return nil, fmt.Errorf("corpus: remote sketch %s: %w", id, err)
	}
	sk, err := index.UnmarshalSketch(raw)
	if err != nil {
		return nil, fmt.Errorf("corpus: remote sketch %s: %w", id, err)
	}
	return sk, nil
}
