package corpus

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/trace"
)

// newBlobStore opens a store over a fresh dir with an in-memory blob
// tier, returning both so tests can fault-inject and inspect.
func newBlobStore(t *testing.T, opts Options) (*Store, *blob.Mem) {
	t.Helper()
	mem := blob.NewMem()
	opts.Blob = mem
	s, err := New(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, mem
}

func TestBlobWriteThrough(t *testing.T) {
	s, mem := newBlobStore(t, Options{BlobPrefix: "corpus"})
	id := mustPut(t, s, makeTrace("wt", 1, 50))

	ctx := context.Background()
	keys, err := mem.List(ctx, "corpus/"+id.String()+".")
	if err != nil {
		t.Fatal(err)
	}
	var segs, metas, sketches int
	for _, k := range keys {
		switch {
		case strings.HasSuffix(k, ".seg"):
			segs++
		case strings.HasSuffix(k, ".meta.json"):
			metas++
		case strings.HasSuffix(k, ".sketch.json"):
			sketches++
		}
	}
	if segs == 0 || metas != 1 || sketches != 1 {
		t.Fatalf("bucket after Put: segs=%d metas=%d sketches=%d (keys %v)", segs, metas, sketches, keys)
	}
	st := s.Stats()
	if st.Blob == nil || st.Blob.Puts == 0 || st.Blob.BytesUp == 0 {
		t.Fatalf("blob counters not populated: %+v", st.Blob)
	}
}

func TestBlobWriteThroughFailureFailsPut(t *testing.T) {
	s, mem := newBlobStore(t, Options{})
	mem.SetFault(func(op blob.Op, key string) error {
		if op == blob.OpPut {
			// Permanent so the retry wrapper does not heal it.
			return blob.ErrNotFound
		}
		return nil
	})
	tr := makeTrace("fail", 2, 20)
	id, _, err := s.Put(tr)
	if err == nil {
		t.Fatal("Put succeeded despite blob write failure")
	}
	mem.SetFault(nil)
	// The failed Put must leave no half-admitted trace behind.
	if _, err := s.Meta(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Meta after failed Put = %v, want ErrNotFound", err)
	}
	// And a retry after the fault clears succeeds cleanly.
	id2 := mustPut(t, s, makeTrace("fail", 2, 20))
	if id2 != id {
		t.Fatalf("digest changed across retries: %s vs %s", id, id2)
	}
}

// TestBlobHydration: a second store sharing the bucket (a fresh
// cluster node, or one after disk loss) serves a trace it never
// ingested — read-through hydration — and the hydrated copy is
// byte-identical (digest verification on).
func TestBlobHydration(t *testing.T) {
	mem := blob.NewMem()
	s1, err := New(t.TempDir(), Options{Blob: mem})
	if err != nil {
		t.Fatal(err)
	}
	src := makeTrace("hydrate", 3, 120)
	id := mustPut(t, s1, src)

	s2, err := New(t.TempDir(), Options{Blob: mem, VerifyOnLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.LocalLen() != 0 {
		t.Fatalf("fresh store has %d local traces", s2.LocalLen())
	}
	got, err := s2.Get(id)
	if err != nil {
		t.Fatalf("Get via hydration: %v", err)
	}
	if got.Len() != src.Len() || got.Name != "hydrate" {
		t.Fatalf("hydrated trace: len=%d name=%q", got.Len(), got.Name)
	}
	if s2.Stats().Blob.Hydrations != 1 {
		t.Fatalf("hydrations = %d, want 1", s2.Stats().Blob.Hydrations)
	}
	// Now local: a second Get must not touch the bucket again.
	gets := s2.Stats().Blob.Gets
	if _, err := s2.Get(id); err != nil {
		t.Fatal(err)
	}
	if after := s2.Stats().Blob.Gets; after != gets {
		t.Fatalf("second Get hit the bucket (%d -> %d gets)", gets, after)
	}
	// Views on a bucket-only trace hydrates too.
	s3, err := New(t.TempDir(), Options{Blob: mem})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Views(id); err != nil {
		t.Fatalf("Views via hydration: %v", err)
	}
}

// TestBlobDiskEviction: with DiskCacheTraces bounding the disk tier,
// a store holds a corpus larger than its local cap — evicted traces
// stay resolvable through the bucket and hydrate back on demand.
func TestBlobDiskEviction(t *testing.T) {
	s, _ := newBlobStore(t, Options{DiskCacheTraces: 2, TraceCacheSize: 1, WebCacheSize: 1})
	var ids []trace.Digest
	for i := 0; i < 5; i++ {
		ids = append(ids, mustPut(t, s, makeTrace("big", 10+i, 40)))
	}
	if got := s.LocalLen(); got != 2 {
		t.Fatalf("local traces = %d, want 2 (disk cap)", got)
	}
	st := s.Stats()
	if st.Blob.DiskEvictions != 3 {
		t.Fatalf("disk evictions = %d, want 3", st.Blob.DiskEvictions)
	}
	if st.RemoteTraces != 3 {
		t.Fatalf("remote traces = %d, want 3", st.RemoteTraces)
	}
	// Every trace — evicted or not — still resolves and loads.
	for i, id := range ids {
		m, err := s.Meta(id)
		if err != nil {
			t.Fatalf("Meta(%d): %v", i, err)
		}
		if m.Entries != 40 {
			t.Fatalf("Meta(%d).Entries = %d", i, m.Entries)
		}
		tr, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if tr.Len() != 40 {
			t.Fatalf("Get(%d).Len = %d", i, tr.Len())
		}
	}
	if s.Stats().Blob.Hydrations == 0 {
		t.Fatal("reading evicted traces performed no hydrations")
	}
	// The disk tier still respects its cap after the read sweep.
	if got := s.LocalLen(); got > 2 {
		t.Fatalf("local traces = %d after reads, want <= 2", got)
	}
}

func TestBlobResolvePrefix(t *testing.T) {
	s, mem := newBlobStore(t, Options{DiskCacheTraces: 1})
	var ids []trace.Digest
	for i := 0; i < 4; i++ {
		ids = append(ids, mustPut(t, s, makeTrace("rp", 20+i, 30)))
	}
	// All but one trace now live only in the bucket; each still
	// resolves by short prefix.
	for _, id := range ids {
		got, err := s.ResolvePrefix(id.String()[:8])
		if err != nil {
			t.Fatalf("ResolvePrefix(%s): %v", id.String()[:8], err)
		}
		if got != id {
			t.Fatalf("ResolvePrefix = %s, want %s", got, id)
		}
	}
	// A prefix matching nothing still reports not-found.
	if _, err := s.ResolvePrefix("0000dead"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss = %v, want ErrNotFound", err)
	}
	// A fresh node sharing the bucket resolves prefixes it never saw.
	s2, err := New(t.TempDir(), Options{Blob: mem})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.ResolvePrefix(ids[0].String()[:8]); err != nil || got != ids[0] {
		t.Fatalf("fresh-node ResolvePrefix = %s, %v", got, err)
	}
}

func TestBlobListAll(t *testing.T) {
	s, _ := newBlobStore(t, Options{DiskCacheTraces: 1})
	n := 4
	want := make(map[string]bool)
	for i := 0; i < n; i++ {
		want[mustPut(t, s, makeTrace("la", 30+i, 25)).String()] = true
	}
	all, err := s.ListAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("ListAll = %d traces, want %d", len(all), n)
	}
	for _, m := range all {
		if !want[m.ID] {
			t.Fatalf("unexpected trace %s", m.ID)
		}
		if m.Entries != 25 {
			t.Fatalf("trace %s entries = %d", m.ID, m.Entries)
		}
	}
	// Local List sees only the disk tier.
	if got := len(s.List()); got != 1 {
		t.Fatalf("List = %d, want 1 local", got)
	}
}

func TestBlobDeleteAllTiers(t *testing.T) {
	s, mem := newBlobStore(t, Options{})
	id := mustPut(t, s, makeTrace("del", 40, 30))
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 0 {
		t.Fatalf("bucket still holds %d objects after Delete", mem.Len())
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}

	// Deleting a bucket-only trace (ingested elsewhere) works too.
	s2, err := New(t.TempDir(), Options{Blob: mem})
	if err != nil {
		t.Fatal(err)
	}
	id2 := mustPut(t, s, makeTrace("del2", 41, 30))
	if err := s2.Delete(id2); err != nil {
		t.Fatalf("remote-only delete: %v", err)
	}
	if mem.Len() != 0 {
		t.Fatalf("bucket still holds %d objects", mem.Len())
	}
}

// TestBlobTransientFaultsRetry: a 5xx-style burst during hydration
// heals through the shared retry policy; the retry counter records it.
func TestBlobTransientFaultsRetry(t *testing.T) {
	mem := blob.NewMem()
	s1, err := New(t.TempDir(), Options{Blob: mem})
	if err != nil {
		t.Fatal(err)
	}
	id := mustPut(t, s1, makeTrace("burst", 50, 60))

	s2, err := New(t.TempDir(), Options{Blob: mem})
	if err != nil {
		t.Fatal(err)
	}
	mem.FailNext(2)
	if _, err := s2.Get(id); err != nil {
		t.Fatalf("Get under transient burst: %v", err)
	}
	if got := s2.Stats().Blob.Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestBlobEvictedTraceSurvivesStaleMemory: after a disk eviction the
// decoded-trace LRU may still hold the evicted trace; the files are
// gone but Get must keep working (memory hit first, hydration after).
func TestBlobEvictedTraceSurvivesStaleMemory(t *testing.T) {
	s, _ := newBlobStore(t, Options{DiskCacheTraces: 1, TraceCacheSize: 8})
	a := mustPut(t, s, makeTrace("sm", 60, 30))
	mustPut(t, s, makeTrace("sm", 61, 30)) // evicts a's disk files
	// a is still in the decoded LRU from Put: memory hit.
	if _, err := s.Get(a); err != nil {
		t.Fatalf("memory-tier Get after disk eviction: %v", err)
	}
}
