package corpus

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func recvEvent(t *testing.T, ch <-chan SessionEvent) (SessionEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-ch:
		return ev, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for session event")
		return SessionEvent{}, false
	}
}

func TestSessionSubscribeAppendAndClose(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := sessionFixture(60)
	sess, err := store.OpenSession(src.Name)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := sess.Subscribe()
	defer cancel()

	if _, err := sess.Append(src.Entries[:20]); err != nil {
		t.Fatal(err)
	}
	ev, ok := recvEvent(t, ch)
	if !ok || ev.Terminal() || ev.Entries != 20 {
		t.Fatalf("append event = %+v ok=%v, want entries=20 non-terminal", ev, ok)
	}

	// Two appends with a lagging subscriber coalesce: the pending event
	// is replaced, and the next receive sees the latest entry count.
	if _, err := sess.Append(src.Entries[20:40]); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(src.Entries[40:]); err != nil {
		t.Fatal(err)
	}
	ev, ok = recvEvent(t, ch)
	if !ok || ev.Entries != 60 {
		t.Fatalf("coalesced event = %+v ok=%v, want entries=60", ev, ok)
	}

	dig, _, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	ev, ok = recvEvent(t, ch)
	if !ok || !ev.Closed || ev.Digest != dig {
		t.Fatalf("close event = %+v ok=%v, want Closed with digest %s", ev, ok, dig)
	}
	if _, ok = recvEvent(t, ch); ok {
		t.Fatal("channel not closed after terminal event")
	}

	// A late subscriber on the finalized session gets the terminal event
	// immediately.
	late, lateCancel := sess.Subscribe()
	defer lateCancel()
	ev, ok = recvEvent(t, late)
	if !ok || !ev.Closed || ev.Digest != dig {
		t.Fatalf("late subscribe event = %+v ok=%v, want terminal Closed", ev, ok)
	}
	if _, ok = recvEvent(t, late); ok {
		t.Fatal("late channel not closed after terminal event")
	}
}

func TestSessionSubscribeAbortAndCancel(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := store.OpenSession("live")
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := sess.Subscribe()
	dropped, dropCancel := sess.Subscribe()
	dropCancel()
	dropCancel() // idempotent
	if _, ok := recvEvent(t, dropped); ok {
		t.Fatal("canceled subscription channel not closed")
	}

	src := sessionFixture(5)
	if _, err := sess.Append(src.Entries); err != nil {
		t.Fatal(err)
	}
	sess.Abort()
	// The append event was coalesced away by the terminal abort, or
	// arrives first; either way the last event is the abort.
	var last SessionEvent
	for {
		ev, ok := recvEvent(t, ch)
		if !ok {
			break
		}
		last = ev
	}
	if !last.Aborted {
		t.Fatalf("last event = %+v, want Aborted", last)
	}
	cancel() // safe after channel close
	var zero trace.Digest
	if last.Digest != zero {
		t.Fatalf("abort event carries digest %s", last.Digest)
	}
}
