package corpus

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/trace"
)

func TestPutWritesSketchSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := makeTrace("alpha", 1, 60)
	want := index.SketchTrace(tr)
	id := mustPut(t, s, tr)

	raw, err := os.ReadFile(s.sketchPath(id))
	if err != nil {
		t.Fatalf("Put did not persist the sketch sidecar: %v", err)
	}
	fromDisk, err := index.UnmarshalSketch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromDisk, want) {
		t.Error("persisted sketch differs from SketchTrace of the same trace")
	}
	got, err := s.Sketch(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("in-memory sketch differs from SketchTrace")
	}
	st := s.IndexStats()
	if st.Computed != 1 || st.Loads != 0 || st.Backfills != 0 || st.Sketches != 1 {
		t.Errorf("IndexStats = %+v, want exactly one Put-computed sketch", st)
	}
}

func TestSketchLoadsFromSidecarOnReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := makeTrace("alpha", 2, 50)
	want := index.SketchTrace(tr)
	id := mustPut(t, s1, tr)

	s2, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Sketch(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("reloaded sketch differs")
	}
	st := s2.IndexStats()
	if st.Loads != 1 || st.Backfills != 0 {
		t.Errorf("IndexStats = %+v, want one sidecar load and no backfill", st)
	}
}

func TestSketchBackfillWhenSidecarMissing(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := makeTrace("alpha", 3, 50)
	want := index.SketchTrace(tr)
	id := mustPut(t, s1, tr)
	// Simulate a pre-sketch corpus: the sidecar never existed.
	if err := os.Remove(s1.sketchPath(id)); err != nil {
		t.Fatal(err)
	}

	s2, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Sketch(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("backfilled sketch differs")
	}
	if st := s2.IndexStats(); st.Backfills != 1 {
		t.Errorf("IndexStats = %+v, want one backfill", st)
	}
	// The backfill re-persists, so a third open loads from the sidecar.
	if _, err := os.Stat(s2.sketchPath(id)); err != nil {
		t.Errorf("backfill did not re-persist the sidecar: %v", err)
	}
}

func TestSketchRejectsStaleSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := makeTrace("alpha", 4, 50)
	want := index.SketchTrace(tr)
	id := mustPut(t, s, tr)
	// Corrupt the sidecar with a sketch of the wrong entry count; the
	// loader must fall through to a backfill rather than serve it.
	wrong, _ := index.SketchTrace(makeTrace("other", 9, 10)).Marshal()
	if err := os.WriteFile(s.sketchPath(id), wrong, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Sketch(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("stale sidecar was served instead of backfilled")
	}
	if st := s2.IndexStats(); st.Backfills != 1 || st.Loads != 0 {
		t.Errorf("IndexStats = %+v, want a backfill and no load", st)
	}
}

// TestIndexRebuildOnReopenEquivalence: the LSH index built lazily after
// a reopen partitions the corpus exactly as the one maintained
// incrementally across the original Puts.
func TestIndexRebuildOnReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed <= 3; seed++ {
		for n := 40; n <= 44; n += 2 {
			mustPut(t, s1, makeTrace("t", seed, n))
		}
	}
	if err := s1.EnsureIndexed(); err != nil {
		t.Fatal(err)
	}
	liveClusters := s1.SimilarityIndex().Clusters(0.5)
	liveStats := s1.SimilarityIndex().Stats()

	s2, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.EnsureIndexed(); err != nil {
		t.Fatal(err)
	}
	if got := s2.SimilarityIndex().Clusters(0.5); !reflect.DeepEqual(got, liveClusters) {
		t.Errorf("rebuilt clusters differ:\nlive    %v\nrebuilt %v", liveClusters, got)
	}
	if got := s2.SimilarityIndex().Stats(); got != liveStats {
		t.Errorf("rebuilt index stats = %+v, live %+v", got, liveStats)
	}
}

func TestDeleteRemovesSketchEverywhere(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := mustPut(t, s, makeTrace("alpha", 5, 50))
	if _, err := s.Sketch(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.sketchPath(id)); !errors.Is(err, os.ErrNotExist) {
		t.Error("Delete left the sketch sidecar on disk")
	}
	if st := s.IndexStats(); st.Stats.Sketches != 0 {
		t.Errorf("Delete left the trace in the LSH index: %+v", st)
	}
	if _, err := s.Sketch(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("Sketch after Delete = %v, want ErrNotFound", err)
	}
}

func TestNotFoundListsNearMisses(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := mustPut(t, s, makeTrace("alpha", 6, 50))
	// An unknown digest sharing the stored one's prefix: flip the tail.
	near := id.String()[:nearMissPrefix] + strings.Repeat("0", 64-nearMissPrefix)
	nearID, err := trace.ParseDigest(near)
	if err != nil {
		t.Fatal(err)
	}
	if nearID == id {
		t.Skip("pathological digest collision")
	}
	_, err = s.Get(nearID)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if !strings.Contains(err.Error(), id.String()[:12]) {
		t.Errorf("near-miss error does not name the stored digest: %v", err)
	}
	// A digest sharing no prefix gets the plain message.
	farHex := strings.Repeat("f", 64)
	if farHex[:nearMissPrefix] == id.String()[:nearMissPrefix] {
		farHex = strings.Repeat("0", 64)
	}
	farID, _ := trace.ParseDigest(farHex)
	_, err = s.Meta(farID)
	if !errors.Is(err, ErrNotFound) || strings.Contains(err.Error(), "near misses") {
		t.Errorf("plain not-found unexpectedly lists near misses: %v", err)
	}
}

func TestResolvePrefix(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, makeTrace("alpha", 7, 50))
	b := mustPut(t, s, makeTrace("beta", 8, 60))

	got, err := s.ResolvePrefix(a.String()[:8])
	if err != nil || got != a {
		t.Fatalf("ResolvePrefix(short) = %v, %v; want %v", got, err, a)
	}
	if got, err := s.ResolvePrefix(strings.ToUpper(b.String())); err != nil || got != b {
		t.Fatalf("ResolvePrefix(full, uppercased) = %v, %v; want %v", got, err, b)
	}
	if _, err := s.ResolvePrefix("ab"); err == nil {
		t.Error("too-short prefix accepted")
	}
	if _, err := s.ResolvePrefix("zzzz"); err == nil {
		t.Error("non-hex prefix accepted")
	}
	if _, err := s.ResolvePrefix("0123456789abcdef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown prefix error = %v, want ErrNotFound", err)
	}
	if a.String()[:minResolvePrefix] != b.String()[:minResolvePrefix] {
		// Ambiguity needs a shared prefix; synthesize one only when the
		// two digests happen to share the minimum prefix (rare), so just
		// verify the unique resolutions above in the common case.
		return
	}
	if _, err := s.ResolvePrefix(a.String()[:minResolvePrefix]); err == nil {
		t.Error("ambiguous prefix resolved")
	}
}

func TestStatsCacheSnapshots(t *testing.T) {
	s, err := New(t.TempDir(), Options{TraceCacheSize: 1, WebCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, makeTrace("alpha", 10, 40))
	b := mustPut(t, s, makeTrace("beta", 11, 40))
	for _, id := range []trace.Digest{a, b, a, b} {
		if _, err := s.Get(id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Views(id); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Legacy aggregates must mirror the per-cache snapshots.
	if st.TraceHits != st.TraceCache.Hits || st.TraceMisses != st.TraceCache.Misses {
		t.Errorf("legacy trace counters diverge from snapshot: %+v", st)
	}
	if st.WebHits != st.WebCache.Hits || st.WebBuilds != st.WebCache.Misses {
		t.Errorf("legacy web counters diverge from snapshot: %+v", st)
	}
	if st.Evictions != st.TraceCache.Evictions+st.WebCache.Evictions {
		t.Errorf("legacy Evictions %d != %d + %d", st.Evictions, st.TraceCache.Evictions, st.WebCache.Evictions)
	}
	// Both single-entry caches were thrashed by two alternating ids.
	if st.TraceCache.Evictions == 0 || st.WebCache.Evictions == 0 {
		t.Errorf("expected evictions in both caches: %+v", st)
	}
	if st.TraceCache.Cap != 1 || st.WebCache.Cap != 1 || st.TraceCache.Len != 1 {
		t.Errorf("cache snapshot len/cap wrong: %+v", st)
	}
	if st.TraceCache.Misses > 0 && st.TraceCache.HitRatio <= 0 {
		// Put admits traces to the cache, so the first Gets hit.
		t.Errorf("hit ratio not computed: %+v", st.TraceCache)
	}
}
