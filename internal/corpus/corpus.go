// Package corpus is the content-addressed trace store behind
// rprism-serve: traces are uploaded once, addressed by the digest of
// their canonical encoding, and analyzed many times.
//
// Three tiers hold a trace:
//
//   - a disk tier of gob segments written through trace.SegmentWriter
//     (the §5 segmentation mechanism reused as the durable format), with
//     a small JSON sidecar of metadata per trace;
//   - an LRU of decoded *trace.Trace values, bounding resident entries;
//   - a memoized cache of built view webs, keyed by digest and
//     single-flighted: when N concurrent diffs need the views of one
//     trace, exactly one goroutine builds them and the rest wait for
//     that build.
//
// Invariants the server relies on:
//
//   - Stored traces are immutable: Put interns all symbols before the
//     trace becomes visible, so every later Build/diff only reads it.
//   - A digest admitted to the index stays resolvable until Delete:
//     eviction only drops decoded/built forms, never the disk tier.
//   - A web handed out by Views is never mutated (see views.Build), so
//     callers may share it freely across goroutines.
package corpus

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/trace"
	"repro/internal/views"
)

// ErrNotFound reports a digest the store has never admitted (or has
// deleted).
var ErrNotFound = errors.New("corpus: trace not found")

// ErrInvalidTrace reports a trace that violates the grammar's structural
// invariants (every legitimate producer assigns dense EIDs 0..n-1; the
// analysis pipeline indexes by EID and relies on that).
var ErrInvalidTrace = errors.New("corpus: invalid trace")

// Options configure a Store. Zero values select the defaults.
type Options struct {
	// TraceCacheSize bounds the decoded-trace LRU (default 16 traces).
	TraceCacheSize int
	// WebCacheSize bounds the built view-web cache (default 8 webs).
	WebCacheSize int
	// SegmentLimit is the max entries per on-disk segment (default 65536).
	SegmentLimit int
	// VerifyOnLoad recomputes the digest of every trace loaded from disk
	// and rejects corrupted content. Costs one canonical-encoding pass
	// per cache miss.
	VerifyOnLoad bool
	// SegmentFormat is the on-disk encoding of newly written segments
	// (default trace.FormatRSEG, the binary columnar format). Reads sniff
	// per segment, so a store holding legacy gob segments keeps serving
	// them regardless of this setting; `rprism convert` migrates in place.
	SegmentFormat trace.Format
	// MaxSessions bounds concurrently open live-capture sessions
	// (default 64). Sessions hold their entries and incremental webs in
	// memory, so without a cap abandoned recorders (crashed clients that
	// never close or abort) would grow the store without bound;
	// OpenSession fails once the cap is reached until sessions close,
	// abort, or are deleted.
	MaxSessions int
	// Blob, when non-nil, adds the object-store tier below the disk
	// tier: Puts write through to it (a trace is not admitted until its
	// objects are durable in the bucket) and reads of digests absent
	// locally hydrate from it. The store layers the repo-wide
	// jittered-backoff retry policy on top; pass the raw backend.
	Blob blob.Backend
	// BlobPrefix namespaces this store's object keys inside the bucket
	// (a "/" is appended if missing). Empty stores at the bucket root.
	BlobPrefix string
	// DiskCacheTraces bounds how many traces the local disk tier keeps
	// when a blob tier is configured (0 = unbounded). Past the bound
	// the least recently used local copy is deleted; the trace stays
	// resolvable through the bucket.
	DiskCacheTraces int
}

func (o Options) withDefaults() Options {
	if o.TraceCacheSize <= 0 {
		o.TraceCacheSize = 16
	}
	if o.WebCacheSize <= 0 {
		o.WebCacheSize = 8
	}
	if o.SegmentLimit <= 0 {
		o.SegmentLimit = 1 << 16
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	return o
}

// Meta describes one stored trace.
type Meta struct {
	ID       string `json:"id"` // hex digest
	Name     string `json:"name"`
	Entries  int    `json:"entries"`
	Segments int    `json:"segments"`
}

// Stats is a snapshot of store contents and cache behavior.
type Stats struct {
	Traces         int   `json:"traces"`           // traces in the index
	EntriesOnDisk  int   `json:"entries_on_disk"`  // sum of entry counts
	SegmentsOnDisk int   `json:"segments_on_disk"` // sum of segment-file counts
	OpenSessions   int   `json:"open_sessions"`    // append-open live sessions
	SessionEntries int   `json:"session_entries"`  // entries buffered across open sessions
	TraceCacheLen  int   `json:"trace_cache_len"`
	WebCacheLen    int   `json:"web_cache_len"`
	TraceHits      int64 `json:"trace_hits"`
	TraceMisses    int64 `json:"trace_misses"` // disk loads
	WebHits        int64 `json:"web_hits"`     // served an already-built web
	WebBuilds      int64 `json:"web_builds"`   // actual views.Build runs
	WebWaits       int64 `json:"web_waits"`    // coalesced onto another goroutine's build
	Evictions      int64 `json:"evictions"`    // trace + web LRU evictions
	Puts           int64 `json:"puts"`
	Dedups         int64 `json:"dedups"` // Puts that found the digest already stored
	// TraceCache and WebCache are the per-LRU hit/miss/eviction
	// breakdowns (the aggregate fields above predate them and remain for
	// compatibility). A web-cache miss is a views.Build run; web-cache
	// waits coalesced onto another goroutine's build stay in WebWaits.
	TraceCache metrics.CacheSnapshot `json:"trace_cache"`
	WebCache   metrics.CacheSnapshot `json:"web_cache"`
	// Blob is the object-store tier's counters; nil when no blob tier
	// is configured. RemoteTraces counts traces known to live only in
	// the bucket (disk-evicted locally or discovered via lookups).
	Blob         *metrics.BlobSnapshot `json:"blob,omitempty"`
	RemoteTraces int                   `json:"remote_traces,omitempty"`
}

// Store is the concurrent content-addressed trace corpus. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	// putMu serializes disk writes: without it, two Puts of the same
	// content race os.Create truncations on the same segment files, and
	// a failed rewrite could hole a trace the first writer admitted.
	putMu sync.Mutex

	mu       sync.Mutex
	index    map[trace.Digest]Meta
	traces   map[trace.Digest]*list.Element // values: *traceItem, in lru
	traceLRU *list.List                     // front = most recent
	webs     map[trace.Digest]*list.Element // values: *webItem, in lru
	webLRU   *list.List
	sessions map[string]*Session // append-open live sessions, by id

	// sketches holds the loaded similarity sketches (a subset of the
	// index: sidecars load lazily on first need) and lsh the LSH-banded
	// cluster index over them, maintained on Put/Delete.
	sketches map[trace.Digest]*index.Sketch
	lsh      *index.Index

	// blob is the retry-wrapped object-store tier (nil: disabled).
	// local/localLRU track which digests hold disk-tier files, for the
	// DiskCacheTraces bound; remote caches metas learned from the
	// bucket for traces not locally resident.
	blob       blob.Backend
	blobPrefix string
	local      map[trace.Digest]*list.Element // values: trace.Digest, in localLRU
	localLRU   *list.List
	remote     map[trace.Digest]Meta

	traceCache, webCache metrics.CacheCounters
	blobCounters         metrics.BlobCounters
	webWaits             atomic.Int64
	puts, dedups         atomic.Int64

	sketchLoads, sketchBackfills, sketchComputed atomic.Int64
}

type traceItem struct {
	id trace.Digest
	t  *trace.Trace
}

// webItem is a single-flight slot for one trace's view web: the first
// goroutine to claim the slot builds, everyone else blocks in once.Do
// until the web (or the load error) is ready.
type webItem struct {
	id   trace.Digest
	once sync.Once
	done atomic.Bool // set after once.Do's function returns
	web  *views.Web
	err  error
}

// New opens (or creates) a store rooted at dir and indexes the traces
// already on disk from their metadata sidecars.
func New(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts.withDefaults(),
		index:    make(map[trace.Digest]Meta),
		traces:   make(map[trace.Digest]*list.Element),
		traceLRU: list.New(),
		webs:     make(map[trace.Digest]*list.Element),
		webLRU:   list.New(),
		sessions: make(map[string]*Session),
		sketches: make(map[trace.Digest]*index.Sketch),
		lsh:      index.NewIndex(),
		local:    make(map[trace.Digest]*list.Element),
		localLRU: list.New(),
		remote:   make(map[trace.Digest]Meta),
	}
	if opts.Blob != nil {
		if opts.BlobPrefix != "" && !strings.HasSuffix(opts.BlobPrefix, "/") {
			opts.BlobPrefix += "/"
		}
		s.blobPrefix = opts.BlobPrefix
		// The capture stream client's jittered-backoff policy, shared via
		// internal/retry: transient blob failures (5xx, transport) retry;
		// ErrNotFound and 4xx fail fast.
		s.blob = blob.WithRetry(opts.Blob, retry.Policy{}, func() {
			s.blobCounters.Retries.Add(1)
		})
	}
	metas, err := filepath.Glob(filepath.Join(dir, "*.meta.json"))
	if err != nil {
		return nil, fmt.Errorf("corpus: scan %s: %w", dir, err)
	}
	for _, p := range metas {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		var m Meta
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("corpus: sidecar %s: %w", p, err)
		}
		id, err := trace.ParseDigest(m.ID)
		if err != nil {
			return nil, fmt.Errorf("corpus: sidecar %s: %w", p, err)
		}
		if want := strings.TrimSuffix(filepath.Base(p), ".meta.json"); want != m.ID {
			return nil, fmt.Errorf("corpus: sidecar %s names digest %s", p, m.ID)
		}
		s.index[id] = m
		s.touchLocalLocked(id)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Put admits a trace, returning its digest and whether new content was
// stored (false: deduplicated to an existing trace). The trace is fully
// interned before it becomes visible (making later concurrent reads
// race-free) and written to the disk tier unless an identical trace is
// already stored. The caller must not mutate t afterwards: the store now
// owns it.
func (s *Store) Put(t *trace.Trace) (trace.Digest, bool, error) {
	// An empty trace would write no segment files, leaving a digest
	// that becomes unresolvable once evicted from the decoded LRU —
	// breaking the admitted-stays-resolvable invariant.
	if t.Len() == 0 {
		return trace.Digest{}, false, fmt.Errorf("%w: empty trace", ErrInvalidTrace)
	}
	// The pipeline (views.Build's byEntry, diff navigation, segment
	// reassembly) indexes by EID and requires the dense 0..n-1 numbering
	// every legitimate producer emits; reject anything else before it
	// can reach an analysis goroutine.
	for i := range t.Entries {
		if int(t.Entries[i].EID) != i {
			return trace.Digest{}, false, fmt.Errorf(
				"%w: entry %d has eid %d (entry ids must be consecutive from 0)",
				ErrInvalidTrace, i, t.Entries[i].EID)
		}
	}
	t.EnsureSyms()
	id := t.ComputeDigest()
	s.puts.Add(1)

	// Serialize disk writes per store. Readers are unaffected (they
	// take s.mu, not putMu), and a concurrent Put of the same content
	// becomes a plain dedup once the first writer admits the digest.
	s.putMu.Lock()
	defer s.putMu.Unlock()

	s.mu.Lock()
	_, exists := s.index[id]
	s.mu.Unlock()
	if exists {
		s.dedups.Add(1)
		return id, false, nil
	}

	segPattern := filepath.Join(s.dir, id.String()+".*.seg")
	removeSegs := func() {
		if stale, err := filepath.Glob(segPattern); err == nil {
			for _, p := range stale {
				os.Remove(p)
			}
		}
	}
	// Clear orphans of an earlier failed attempt: LoadSegments and the
	// segment count below glob by digest, so a stale high-numbered
	// segment (e.g. from a run with a smaller SegmentLimit) would
	// corrupt this trace.
	removeSegs()

	w, err := trace.NewSegmentWriterFormat(s.dir, id.String(), s.opts.SegmentLimit, s.opts.SegmentFormat)
	if err != nil {
		return id, false, err
	}
	// The similarity sketch folds in incrementally on the same pass that
	// writes segments: ingest stays one walk over the entries, and the
	// sketch lands with the trace instead of being backfilled later.
	sketcher := index.NewSketcher()
	writeAll := func() error {
		for i := range t.Entries {
			e := &t.Entries[i]
			sketcher.Add(e)
			if _, err := w.Append(e.TID, e.Method, e.Self, e.Event); err != nil {
				return err
			}
		}
		return w.Close()
	}
	if err := writeAll(); err != nil {
		removeSegs()
		return id, false, err
	}
	sk := sketcher.Sketch()
	if raw, err := sk.Marshal(); err == nil {
		// Best effort: a missing sidecar is recomputed lazily on demand,
		// so a sketch-write failure must not fail an otherwise durable Put.
		_ = os.WriteFile(s.sketchPath(id), raw, 0o644)
	}
	segs, err := filepath.Glob(segPattern)
	if err != nil {
		return id, false, fmt.Errorf("corpus: %w", err)
	}
	m := Meta{ID: id.String(), Name: t.Name, Entries: t.Len(), Segments: len(segs)}
	raw, err := json.Marshal(m)
	if err != nil {
		removeSegs()
		return id, false, fmt.Errorf("corpus: %w", err)
	}
	if err := os.WriteFile(s.metaPath(id), raw, 0o644); err != nil {
		removeSegs()
		os.Remove(s.sketchPath(id))
		return id, false, fmt.Errorf("corpus: %w", err)
	}
	// Write through to the blob tier before admitting: a trace the
	// index serves must be durable in the bucket, or a disk-tier
	// eviction (or another cluster node's read) would lose it.
	if s.blob != nil {
		if err := s.uploadBlob(context.Background(), id, m, raw); err != nil {
			removeSegs()
			os.Remove(s.metaPath(id))
			os.Remove(s.sketchPath(id))
			return id, false, fmt.Errorf("corpus: blob write-through: %w", err)
		}
	}

	s.sketchComputed.Add(1)
	s.mu.Lock()
	s.index[id] = m
	s.admitTraceLocked(id, t)
	s.sketches[id] = sk
	s.mu.Unlock()
	s.lsh.Add(id, sk)
	s.touchLocal(id)
	return id, true, nil
}

func (s *Store) metaPath(id trace.Digest) string {
	return filepath.Join(s.dir, id.String()+".meta.json")
}

// Meta returns the metadata of a stored trace, consulting the blob
// tier for traces not locally resident (without hydrating them —
// metadata needs only the meta object).
func (s *Store) Meta(id trace.Digest) (Meta, error) {
	s.mu.Lock()
	if m, ok := s.index[id]; ok {
		s.mu.Unlock()
		return m, nil
	}
	if m, ok := s.remote[id]; ok {
		s.mu.Unlock()
		return m, nil
	}
	if s.blob == nil {
		err := s.notFoundLocked(id)
		s.mu.Unlock()
		return Meta{}, err
	}
	s.mu.Unlock()
	m, err := s.blobMeta(context.Background(), id)
	if err != nil {
		return Meta{}, err
	}
	s.mu.Lock()
	s.remote[id] = m
	s.mu.Unlock()
	return m, nil
}

// List returns metadata for every stored trace, sorted by id.
func (s *Store) List() []Meta {
	s.mu.Lock()
	out := make([]Meta, 0, len(s.index))
	for _, m := range s.index {
		out = append(out, m)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of stored traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Get returns the decoded trace for id, loading it from the disk tier on
// an LRU miss. The returned trace is shared and must be treated as
// read-only.
func (s *Store) Get(id trace.Digest) (*trace.Trace, error) {
	s.mu.Lock()
	if el, ok := s.traces[id]; ok {
		s.traceLRU.MoveToFront(el)
		t := el.Value.(*traceItem).t
		s.mu.Unlock()
		s.traceCache.Hits.Add(1)
		return t, nil
	}
	m, ok := s.index[id]
	if !ok {
		s.mu.Unlock()
		// Blob-tier fallback: hydrate the segment set onto local disk
		// and serve it through the same strict load path below.
		var err error
		if m, err = s.hydrate(context.Background(), id, false); err != nil {
			return nil, err
		}
	} else {
		s.mu.Unlock()
	}
	s.traceCache.Misses.Add(1)

	t, err := s.loadLocal(id, m)
	if err != nil && s.blob != nil {
		// The local files may have been disk-evicted (or corrupted)
		// between the index check and the load; re-pull the authoritative
		// copy from the bucket and retry once.
		if _, herr := s.hydrate(context.Background(), id, true); herr == nil {
			t, err = s.loadLocal(id, m)
		}
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.admitTraceLocked(id, t)
	s.touchLocalLocked(id)
	s.mu.Unlock()
	return t, nil
}

// loadLocal decodes a trace from its disk-tier segments, enforcing the
// store's strictness. It runs outside the locks: two goroutines
// missing on the same id both load; the second admission wins, which
// is harmless — both copies are immutable and identical.
//
// The store is strict where the capture-recovery loader is
// forgiving: a content-addressed trace that loads short — truncated
// tail skipped, or fewer entries than its sidecar recorded — is
// corruption, not a crash to salvage, and serving the prefix would
// silently break the digest contract every analysis relies on.
func (s *Store) loadLocal(id trace.Digest, m Meta) (*trace.Trace, error) {
	t, rep, err := trace.LoadSegmentsReport(s.dir, id.String())
	if err != nil {
		return nil, fmt.Errorf("corpus: load %s: %w", id, err)
	}
	if rep.Truncated() || t.Len() != m.Entries {
		detail := rep.Warning
		if detail == "" {
			detail = "segment set incomplete"
		}
		return nil, fmt.Errorf("corpus: trace %s corrupted on disk: loaded %d of %d entries (%s)",
			id, t.Len(), m.Entries, detail)
	}
	t.Name = m.Name // segments are named by digest; restore the label
	if s.opts.VerifyOnLoad {
		if got := t.ComputeDigest(); got != id {
			return nil, fmt.Errorf("corpus: trace %s corrupted on disk (digest %s)", id, got)
		}
	}
	return t, nil
}

// admitTraceLocked inserts or refreshes a decoded trace in the LRU,
// evicting from the back past capacity. Caller holds s.mu.
func (s *Store) admitTraceLocked(id trace.Digest, t *trace.Trace) {
	if el, ok := s.traces[id]; ok {
		el.Value.(*traceItem).t = t
		s.traceLRU.MoveToFront(el)
		return
	}
	s.traces[id] = s.traceLRU.PushFront(&traceItem{id: id, t: t})
	for s.traceLRU.Len() > s.opts.TraceCacheSize {
		oldest := s.traceLRU.Back()
		it := oldest.Value.(*traceItem)
		s.traceLRU.Remove(oldest)
		delete(s.traces, it.id)
		s.traceCache.Evictions.Add(1)
	}
}

// Views returns the memoized view web of a stored trace, building it at
// most once per cache residency no matter how many goroutines ask
// concurrently (single-flight). The returned web is immutable; callers
// on the diff path hand it straight to diff.ViewDiffWebs.
func (s *Store) Views(id trace.Digest) (*views.Web, error) {
	s.mu.Lock()
	if _, ok := s.index[id]; !ok {
		s.mu.Unlock()
		// Blob-tier fallback: pull the trace local before claiming a
		// build slot, so the build's Get cannot miss.
		if _, err := s.hydrate(context.Background(), id, false); err != nil {
			return nil, err
		}
		s.mu.Lock()
	}
	el, ok := s.webs[id]
	if ok {
		s.webLRU.MoveToFront(el)
	} else {
		el = s.webLRU.PushFront(&webItem{id: id})
		s.webs[id] = el
		for s.webLRU.Len() > s.opts.WebCacheSize {
			oldest := s.webLRU.Back()
			it := oldest.Value.(*webItem)
			s.webLRU.Remove(oldest)
			delete(s.webs, it.id)
			s.webCache.Evictions.Add(1)
		}
	}
	it := el.Value.(*webItem)
	s.mu.Unlock()

	wasDone := it.done.Load()
	built := false
	it.once.Do(func() {
		built = true
		s.webCache.Misses.Add(1)
		var t *trace.Trace
		if t, it.err = s.Get(id); it.err == nil {
			it.web = views.Build(t)
		}
		it.done.Store(true)
	})
	if !built {
		if wasDone {
			s.webCache.Hits.Add(1)
		} else {
			// We blocked inside once.Do while another goroutine built:
			// the single-flight coalescing path.
			s.webWaits.Add(1)
		}
	}
	if it.err != nil {
		// Failed builds must not be memoized as permanent failures:
		// drop the slot so a later call retries.
		s.mu.Lock()
		if el2, ok := s.webs[id]; ok && el2.Value.(*webItem) == it {
			s.webLRU.Remove(el2)
			delete(s.webs, id)
		}
		s.mu.Unlock()
		return nil, it.err
	}
	return it.web, nil
}

// ViewsCtx is Views with caller-side cancellation. An already-built web
// is served immediately with no extra machinery. Otherwise the build (or
// the wait on another goroutine's build) runs detached: if ctx ends
// first, this caller unblocks with the context's error while the build
// itself completes and populates the cache for future callers — one
// impatient client must not waste the work every other waiter is
// queued on.
func (s *Store) ViewsCtx(ctx context.Context, id trace.Digest) (*views.Web, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if el, ok := s.webs[id]; ok {
		it := el.Value.(*webItem)
		if it.done.Load() && it.err == nil {
			s.webLRU.MoveToFront(el)
			s.mu.Unlock()
			s.webCache.Hits.Add(1)
			return it.web, nil
		}
	}
	s.mu.Unlock()

	type out struct {
		web *views.Web
		err error
	}
	ch := make(chan out, 1)
	go func() {
		w, err := s.Views(id)
		ch <- out{w, err}
	}()
	select {
	case o := <-ch:
		return o.web, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Delete removes a trace from every tier, including disk and — when a
// blob tier is configured — the bucket. A trace resident only in the
// bucket (disk-evicted locally, or written by another cluster node) is
// deletable too.
func (s *Store) Delete(id trace.Digest) error {
	s.mu.Lock()
	if _, ok := s.index[id]; !ok {
		_, wasRemote := s.remote[id]
		if !wasRemote && s.blob != nil {
			// Not known locally at all: the bucket decides existence.
			s.mu.Unlock()
			if _, err := s.blobMeta(context.Background(), id); err != nil {
				return err
			}
			s.mu.Lock()
		} else if !wasRemote {
			err := s.notFoundLocked(id)
			s.mu.Unlock()
			return err
		}
	}
	delete(s.index, id)
	s.dropLocalLocked(id)
	if el, ok := s.traces[id]; ok {
		s.traceLRU.Remove(el)
		delete(s.traces, id)
	}
	if el, ok := s.webs[id]; ok {
		s.webLRU.Remove(el)
		delete(s.webs, id)
	}
	delete(s.sketches, id)
	s.mu.Unlock()
	s.lsh.Remove(id)

	segs, err := filepath.Glob(filepath.Join(s.dir, id.String()+".*.seg"))
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	for _, p := range append(segs, s.metaPath(id), s.sketchPath(id)) {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	if s.blob != nil {
		return s.deleteBlob(context.Background(), id)
	}
	return nil
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Traces:        len(s.index),
		TraceCacheLen: s.traceLRU.Len(),
		WebCacheLen:   s.webLRU.Len(),
	}
	for _, m := range s.index {
		st.EntriesOnDisk += m.Entries
		st.SegmentsOnDisk += m.Segments
	}
	s.mu.Unlock()
	st.OpenSessions, st.SessionEntries = s.sessionStats()
	st.TraceCache = s.traceCache.Snapshot(st.TraceCacheLen, s.opts.TraceCacheSize)
	st.WebCache = s.webCache.Snapshot(st.WebCacheLen, s.opts.WebCacheSize)
	// Legacy aggregates, derived from the per-cache counters.
	st.TraceHits = st.TraceCache.Hits
	st.TraceMisses = st.TraceCache.Misses
	st.WebHits = st.WebCache.Hits
	st.WebBuilds = st.WebCache.Misses
	st.WebWaits = s.webWaits.Load()
	st.Evictions = st.TraceCache.Evictions + st.WebCache.Evictions
	st.Puts = s.puts.Load()
	st.Dedups = s.dedups.Load()
	if s.blob != nil {
		bs := s.blobCounters.Snapshot()
		st.Blob = &bs
		s.mu.Lock()
		st.RemoteTraces = len(s.remote)
		s.mu.Unlock()
	}
	return st
}
