package corpus

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
	"repro/internal/views"
)

// Append-open sessions: the live-ingestion tier in front of the
// content-addressed store. A streaming producer (the capture recorder,
// via rprism-serve's POST /traces/stream) opens a session, appends
// decoded segments as the program runs, and closes it when the program
// finishes — at which point the accumulated trace is admitted through
// the normal Put path and earns its content digest. Until then the
// session is addressable by its session id: Snapshot and Web hand out
// consistent point-in-time projections, so analyses run against a
// still-running program exactly as they do against stored traces.

// ErrSessionClosed reports an operation on a finalized or aborted
// session.
var ErrSessionClosed = errors.New("corpus: session closed")

// ErrSessionNotFound reports a session id the store does not know.
var ErrSessionNotFound = errors.New("corpus: session not found")

// ErrTooManySessions reports that the open-session cap
// (Options.MaxSessions) is reached; close, abort, or delete sessions to
// open more.
var ErrTooManySessions = errors.New("corpus: too many open sessions")

// SessionInfo summarizes one open session.
type SessionInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Entries int    `json:"entries"`
}

// SessionEvent is one subscription notification: the session grew, was
// finalized into the store, or was discarded. Events are coalesced — a
// subscriber that lags sees the latest state change, not every
// intermediate one — so Entries is the entry count at notification
// time, to be treated as a "re-snapshot now" trigger rather than a
// delta. Digest is set only on Closed.
type SessionEvent struct {
	Entries int
	Closed  bool
	Aborted bool
	Digest  trace.Digest
}

// Terminal reports whether the event ends the session (and therefore
// the subscription: the channel is closed right after a terminal
// event).
func (e SessionEvent) Terminal() bool { return e.Closed || e.Aborted }

// Session is one append-open live trace. All methods are safe for
// concurrent use; Append calls are serialized against each other and
// against snapshots, while the traces and webs handed out stay valid
// (and unchanged) however much the session grows afterwards — see
// views.IncrementalBuilder for the mechanism.
type Session struct {
	id    string
	name  string
	store *Store

	mu      sync.Mutex
	builder *views.IncrementalBuilder
	closed  bool
	subs    map[int]chan SessionEvent
	nextSub int
	finalEv *SessionEvent
}

// newSessionID returns a random live-session id. The "live-" prefix
// keeps session ids visibly distinct from 64-hex content digests.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("corpus: session id entropy: %v", err))
	}
	return "live-" + hex.EncodeToString(b[:])
}

// OpenSession creates an append-open session for a trace with the given
// name. The session is visible in Sessions and addressable by id until
// Close or Abort. It fails with ErrTooManySessions at the
// Options.MaxSessions cap — sessions live in memory, so abandoned
// recorders must not grow the store without bound.
func (s *Store) OpenSession(name string) (*Session, error) {
	sess := &Session{
		id:      newSessionID(),
		name:    name,
		store:   s,
		builder: views.NewIncrementalBuilder(name),
	}
	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		n := len(s.sessions)
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d open (close, abort, or DELETE stale ones)", ErrTooManySessions, n)
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	return sess, nil
}

// Session resolves an open session by id.
func (s *Store) Session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	return sess, nil
}

// Sessions lists the open sessions, sorted by id.
func (s *Store) Sessions() []SessionInfo {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]SessionInfo, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.Info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// dropSession removes a session from the open set.
func (s *Store) dropSession(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// sessionEntries sums the entry counts of open sessions (for Stats).
func (s *Store) sessionStats() (int, int) {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	entries := 0
	for _, sess := range sessions {
		entries += sess.Len()
	}
	return len(sessions), entries
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Name returns the trace name the session was opened with.
func (s *Session) Name() string { return s.name }

// Len returns the number of entries appended so far.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builder.Len()
}

// Info summarizes the session.
func (s *Session) Info() SessionInfo {
	return SessionInfo{ID: s.id, Name: s.name, Entries: s.Len()}
}

// Subscribe registers for the session's lifecycle events: one
// (coalesced) notification per append, and a final Closed or Aborted
// event after which the channel is closed. The returned cancel function
// detaches the subscription; it is idempotent and safe to call after
// the channel closed. Subscribing to an already-finalized session
// yields the terminal event immediately.
//
// Delivery never blocks the appender: the channel holds one pending
// event, and a newer event replaces an unconsumed older one. This makes
// subscribers level-triggered — on receipt, snapshot the session and
// act on its current state.
func (s *Session) Subscribe() (<-chan SessionEvent, func()) {
	ch := make(chan SessionEvent, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalEv != nil {
		ch <- *s.finalEv
		close(ch)
		return ch, func() {}
	}
	if s.subs == nil {
		s.subs = make(map[int]chan SessionEvent)
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// notifyLocked delivers ev to every subscriber without blocking; the
// caller holds s.mu. A full channel is drained of its stale event first
// (coalescing), so the send after the drain cannot fail: all sends and
// closes happen under s.mu, leaving the receiver as the only other
// party touching the channel. A terminal event is recorded for late
// subscribers and closes every channel.
func (s *Session) notifyLocked(ev SessionEvent) {
	for _, ch := range s.subs {
		select {
		case ch <- ev:
			continue
		default:
		}
		select {
		case <-ch:
		default:
		}
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Terminal() {
		s.finalEv = &ev
		for _, ch := range s.subs {
			close(ch)
		}
		s.subs = nil
	}
}

// Append extends the session with one segment of entries and returns the
// new entry count. Entry ids must continue the session's dense
// numbering; entries below the current high-water mark are skipped, so
// re-delivering a batch after a dropped connection is idempotent.
func (s *Session) Append(entries []trace.Entry) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.builder.Len(), fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	if err := s.builder.Append(entries); err != nil {
		return s.builder.Len(), err
	}
	s.notifyLocked(SessionEvent{Entries: s.builder.Len()})
	return s.builder.Len(), nil
}

// Snapshot returns the trace accumulated so far. The returned trace is
// immutable: later appends never rewrite its entries.
func (s *Session) Snapshot() *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builder.SnapshotTrace()
}

// Web returns a query-ready view web over everything appended so far —
// the live session's always-current web. The web is immutable and safe
// to hand to any number of concurrent diffs while the session keeps
// streaming.
func (s *Session) Web() *views.Web {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builder.Snapshot()
}

// Close finalizes the session: the accumulated trace is admitted to the
// store through the normal Put path (canonical digest, disk segments,
// metadata sidecar, dedup against identical content) and the session
// leaves the open set. It returns the content digest the trace is now
// addressable by and whether new content was stored.
//
// Failure handling is asymmetric on purpose. Closing an empty session
// is a request error (empty traces are not admissible) and removes the
// session — there is nothing to lose. A failed Put (disk full, I/O
// error) REOPENS the session instead: the accumulated trace still lives
// in memory and a retried Close may succeed, where dropping it would
// turn a transient storage error into a lost capture.
func (s *Session) Close() (trace.Digest, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return trace.Digest{}, false, fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	// Mark closed before Put so concurrent Appends cannot slip entries
	// in behind the finalization snapshot.
	s.closed = true
	final := s.builder.SnapshotTrace()
	s.mu.Unlock()

	if final.Len() == 0 {
		s.mu.Lock()
		s.notifyLocked(SessionEvent{Aborted: true})
		s.mu.Unlock()
		s.store.dropSession(s.id)
		return trace.Digest{}, false, fmt.Errorf("%w: closing empty session %s", ErrInvalidTrace, s.id)
	}
	id, created, err := s.store.Put(final)
	if err != nil {
		s.mu.Lock()
		s.closed = false
		s.mu.Unlock()
		return trace.Digest{}, false, err
	}
	s.mu.Lock()
	s.notifyLocked(SessionEvent{Entries: final.Len(), Closed: true, Digest: id})
	s.mu.Unlock()
	s.store.dropSession(s.id)
	return id, created, nil
}

// Abort discards the session without storing anything.
func (s *Session) Abort() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	if !wasClosed {
		s.notifyLocked(SessionEvent{Entries: s.builder.Len(), Aborted: true})
	}
	s.mu.Unlock()
	if !wasClosed {
		s.store.dropSession(s.id)
	}
}
