package corpus

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/views"
)

// sessionFixture builds a deterministic multi-view trace of n entries.
func sessionFixture(n int) *trace.Trace {
	t := trace.New("live")
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%13), Class: "Node", Seq: 1 + i%13}
		t.Append(trace.ThreadID(i%3), fmt.Sprintf("C.m%d/0", i%5), obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: fmt.Sprintf("C.m%d/0", (i+1)%5)})
	}
	return t
}

func TestSessionLifecycle(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := sessionFixture(90)

	sess, err := store.OpenSession("live")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := store.Session(sess.ID()); err != nil || got != sess {
		t.Fatalf("Session(%s) = %v, %v", sess.ID(), got, err)
	}

	// Stream in three segments; mid-session projections track growth.
	for lo := 0; lo < 90; lo += 30 {
		n, err := sess.Append(src.Entries[lo : lo+30])
		if err != nil {
			t.Fatal(err)
		}
		if n != lo+30 {
			t.Fatalf("after append: %d entries, want %d", n, lo+30)
		}
	}
	if snap := sess.Snapshot(); snap.Len() != 90 {
		t.Fatalf("snapshot has %d entries, want 90", snap.Len())
	}
	web := sess.Web()
	fresh := views.Build(sess.Snapshot())
	if err := views.Equivalent(fresh, web); err != nil {
		t.Fatalf("live web not equivalent to fresh build: %v", err)
	}

	// Store stats see the open session.
	st := store.Stats()
	if st.OpenSessions != 1 || st.SessionEntries != 90 {
		t.Fatalf("stats: %d sessions / %d entries, want 1 / 90", st.OpenSessions, st.SessionEntries)
	}

	// Finalization: digest matches a batch Put of identical content.
	id, created, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("close of new content reported dedup")
	}
	if want := src.ComputeDigest(); id != want {
		t.Errorf("finalized digest %s, want %s", id, want)
	}
	if _, err := store.Session(sess.ID()); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("closed session still resolvable: %v", err)
	}
	if _, err := store.Meta(id); err != nil {
		t.Errorf("finalized trace not in index: %v", err)
	}
	got, err := store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ComputeDigest() != id {
		t.Error("stored trace content does not round-trip the digest")
	}

	// A batch Put of the same execution dedups against the finalized one.
	if _, created, err := store.Put(src); err != nil || created {
		t.Errorf("batch Put of identical content: created=%v err=%v", created, err)
	}
}

func TestSessionAppendAfterCloseFails(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := sessionFixture(10)
	sess, err := store.OpenSession("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(src.Entries); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(src.Entries); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("append after close: %v", err)
	}
	if _, _, err := sess.Close(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestSessionAbortAndEmptyClose(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := store.OpenSession("gone")
	if err != nil {
		t.Fatal(err)
	}
	sess.Abort()
	if _, err := store.Session(sess.ID()); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("aborted session still resolvable: %v", err)
	}
	empty, err := store.OpenSession("empty")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.Close(); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("closing an empty session: %v", err)
	}
	if store.Stats().OpenSessions != 0 {
		t.Error("sessions leaked into stats")
	}
}

func TestSessionIdempotentRedelivery(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := sessionFixture(50)
	sess, err := store.OpenSession("retry")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(src.Entries[:25]); err != nil {
		t.Fatal(err)
	}
	// A retried batch overlapping the high-water mark applies only the
	// new suffix.
	n, err := sess.Append(src.Entries[10:40])
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("after redelivery: %d entries, want 40", n)
	}
	// A gapped batch is rejected without corrupting the session.
	if _, err := sess.Append(src.Entries[45:]); err == nil {
		t.Error("gapped append accepted")
	}
	if _, err := sess.Append(src.Entries[40:]); err != nil {
		t.Fatal(err)
	}
	id, _, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := src.ComputeDigest(); id != want {
		t.Errorf("digest after redelivery %s, want %s", id, want)
	}
}

// TestSessionConcurrentAppendsAndReaders hammers one session with a
// writer streaming segments and readers snapshotting webs mid-flight;
// run under -race in CI this is the live-query soundness check.
func TestSessionConcurrentAppendsAndReaders(t *testing.T) {
	store, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := sessionFixture(3000)
	sess, err := store.OpenSession("hammer")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				web := sess.Web()
				n := web.Trace.Len()
				for _, name := range web.Names() {
					for _, eid := range web.View(name).EIDs {
						if int(eid) >= n {
							t.Errorf("snapshot leaked future entry %d (len %d)", eid, n)
							return
						}
					}
				}
			}
		}()
	}
	for lo := 0; lo < src.Len(); lo += 100 {
		if _, err := sess.Append(src.Entries[lo : lo+100]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	id, _, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := src.ComputeDigest(); id != want {
		t.Errorf("digest %s, want %s", id, want)
	}
}

func TestSessionCap(t *testing.T) {
	store, err := New(t.TempDir(), Options{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := store.OpenSession("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenSession("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenSession("c"); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third session at cap 2: %v", err)
	}
	// Freeing a slot (abort) lets a new session in.
	a.Abort()
	if _, err := store.OpenSession("d"); err != nil {
		t.Errorf("open after abort: %v", err)
	}
}
