package corpus

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// nearMissPrefix is how many leading hex characters two digests must
// share before one is suggested as a near miss of the other. Four
// characters (16 bits) keeps coincidental suggestions rare even in
// large corpora while still catching truncated copy-pastes.
const nearMissPrefix = 4

// minResolvePrefix is the shortest digest prefix ResolvePrefix accepts.
// Shorter prefixes are almost always typos, and in a big corpus they
// would be ambiguous anyway.
const minResolvePrefix = 4

// notFoundLocked builds the ErrNotFound error for an unknown digest,
// listing stored digests that share a leading prefix with it — the
// usual failure is a truncated or mistyped copy-paste, and the fix is
// faster when the error names the likely intended trace. Caller holds
// s.mu. The result wraps ErrNotFound, so errors.Is keeps working.
func (s *Store) notFoundLocked(id trace.Digest) error {
	matches := s.prefixMatchesLocked(id.String()[:nearMissPrefix])
	if len(matches) == 0 {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if len(matches) > 3 {
		matches = matches[:3]
	}
	short := make([]string, len(matches))
	for i, m := range matches {
		short[i] = m.String()[:12]
	}
	return fmt.Errorf("%w: %s (near misses stored: %s)",
		ErrNotFound, id, strings.Join(short, ", "))
}

// prefixMatchesLocked returns the stored digests beginning with the
// given hex prefix, sorted. Caller holds s.mu.
func (s *Store) prefixMatchesLocked(prefix string) []trace.Digest {
	var out []trace.Digest
	for id := range s.index {
		if strings.HasPrefix(id.String(), prefix) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ResolvePrefix resolves a short hex digest prefix (git-style) to the
// unique stored digest beginning with it, searching every tier: the
// local index and — when a blob tier is configured — the bucket's key
// space, so a trace held only remotely (disk-evicted here, or written
// by another cluster node) resolves the same way a local one does. A
// full digest resolves to itself. No match wraps ErrNotFound; several
// matches is an error listing them.
func (s *Store) ResolvePrefix(prefix string) (trace.Digest, error) {
	prefix = strings.ToLower(prefix)
	if len(prefix) < minResolvePrefix {
		return trace.Digest{}, fmt.Errorf(
			"corpus: digest prefix %q too short (need at least %d hex chars)",
			prefix, minResolvePrefix)
	}
	for _, c := range prefix {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return trace.Digest{}, fmt.Errorf("corpus: digest prefix %q is not hex", prefix)
		}
	}
	s.mu.Lock()
	matches := s.prefixMatchesLocked(prefix)
	s.mu.Unlock()
	if s.blob != nil {
		// Object keys start with the hex digest, so the bucket answers a
		// digest-prefix query directly. A listing failure degrades to
		// local-only resolution rather than failing the lookup: the
		// local answer is still correct for everything this node holds.
		if keys, err := s.blobList(context.Background(), s.blobKey(prefix)); err == nil {
			seen := make(map[trace.Digest]bool, len(matches))
			for _, m := range matches {
				seen[m] = true
			}
			for _, k := range keys {
				base := strings.TrimPrefix(k, s.blobPrefix)
				idStr, _, ok := strings.Cut(base, ".")
				if !ok {
					continue
				}
				id, err := trace.ParseDigest(idStr)
				if err != nil || seen[id] {
					continue
				}
				seen[id] = true
				matches = append(matches, id)
			}
			sort.Slice(matches, func(i, j int) bool {
				return matches[i].String() < matches[j].String()
			})
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return trace.Digest{}, fmt.Errorf("%w: no stored digest matches prefix %q", ErrNotFound, prefix)
	default:
		if len(matches) > 5 {
			matches = matches[:5]
		}
		short := make([]string, len(matches))
		for i, m := range matches {
			short[i] = m.String()[:12]
		}
		return trace.Digest{}, fmt.Errorf("corpus: digest prefix %q is ambiguous (%s)",
			prefix, strings.Join(short, ", "))
	}
}
