package corpus

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/trace"
)

func (s *Store) sketchPath(id trace.Digest) string {
	return filepath.Join(s.dir, id.String()+".sketch.json")
}

// Sketch returns the similarity sketch of a stored trace, resolving it
// through three tiers: the in-memory map (populated at Put and by
// earlier lookups), the persisted sidecar, and — for corpora written
// before sketches existed, or after a sidecar was lost — a backfill
// recomputed from the trace itself and re-persisted best-effort. The
// returned sketch is shared and read-only.
func (s *Store) Sketch(id trace.Digest) (*index.Sketch, error) {
	s.mu.Lock()
	if sk, ok := s.sketches[id]; ok {
		s.mu.Unlock()
		return sk, nil
	}
	m, ok := s.index[id]
	if !ok {
		err := s.notFoundLocked(id)
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	// Sidecar tier. Unreadable or stale-version sidecars fall through to
	// the backfill; Total is cross-checked against the meta so a sidecar
	// belonging to a truncated earlier write cannot be served.
	if raw, err := os.ReadFile(s.sketchPath(id)); err == nil {
		if sk, err := index.UnmarshalSketch(raw); err == nil && int(sk.Total) == m.Entries {
			s.sketchLoads.Add(1)
			s.admitSketch(id, sk)
			return sk, nil
		}
	}

	// Backfill: decode the trace and sketch it in one pass.
	t, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	sk := index.SketchTrace(t)
	s.sketchBackfills.Add(1)
	if raw, err := sk.Marshal(); err == nil {
		_ = os.WriteFile(s.sketchPath(id), raw, 0o644)
	}
	s.admitSketch(id, sk)
	return sk, nil
}

// admitSketch publishes a resolved sketch to the in-memory map and the
// LSH index. Two goroutines backfilling the same id race benignly: the
// sketches are identical (pure function of the stored trace).
func (s *Store) admitSketch(id trace.Digest, sk *index.Sketch) {
	s.mu.Lock()
	// A concurrent Delete may have removed the trace while we were
	// loading; indexing a ghost would resurrect it in search results.
	if _, ok := s.index[id]; !ok {
		s.mu.Unlock()
		return
	}
	s.sketches[id] = sk
	s.mu.Unlock()
	s.lsh.Add(id, sk)
}

// EnsureIndexed resolves the sketch of every stored trace (loading
// sidecars, backfilling where necessary) so the LSH index covers the
// whole corpus. Corpus-scale analyses call it before consulting the
// index; after the first call over a given corpus it is cheap (all
// sketches resident). Returns the first resolution error, after
// attempting every trace.
func (s *Store) EnsureIndexed() error {
	s.mu.Lock()
	missing := make([]trace.Digest, 0)
	for id := range s.index {
		if _, ok := s.sketches[id]; !ok {
			missing = append(missing, id)
		}
	}
	s.mu.Unlock()
	var firstErr error
	for _, id := range missing {
		if _, err := s.Sketch(id); err != nil && firstErr == nil {
			// A trace deleted while we walked is not an indexing failure.
			if errors.Is(err, ErrNotFound) {
				continue
			}
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("corpus: ensure indexed: %w", firstErr)
	}
	return nil
}

// SimilarityIndex exposes the LSH cluster index over the stored
// sketches. Call EnsureIndexed first if the analysis needs full-corpus
// coverage; the index is otherwise populated lazily.
func (s *Store) SimilarityIndex() *index.Index { return s.lsh }

// IndexStats reports similarity-index coverage and provenance.
type IndexStats struct {
	index.Stats
	Traces    int   `json:"traces"`           // traces in the corpus (coverage target)
	Loads     int64 `json:"sketch_loads"`     // sidecar loads
	Backfills int64 `json:"sketch_backfills"` // recomputed from trace entries
	Computed  int64 `json:"sketch_computed"`  // computed inline at Put
}

// IndexStats snapshots the similarity index.
func (s *Store) IndexStats() IndexStats {
	return IndexStats{
		Stats:     s.lsh.Stats(),
		Traces:    s.Len(),
		Loads:     s.sketchLoads.Load(),
		Backfills: s.sketchBackfills.Load(),
		Computed:  s.sketchComputed.Load(),
	}
}
