package corpus

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/diff"
	"repro/internal/trace"
)

// makeTrace builds an interned test trace whose content varies with seed.
func makeTrace(name string, seed, n int) *trace.Trace {
	t := trace.New(name)
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(i%11 + 1), Class: "Cell", Seq: i%11 + 1}
		val := trace.Repr{Class: "Int", Hash: uint64(seed*1000 + i), Str: fmt.Sprintf("%d", seed*1000+i)}
		t.Append(trace.ThreadID(i%2+1), fmt.Sprintf("Cell.op%d/1", i%4), obj,
			trace.Event{Kind: trace.KindCall, Target: obj,
				Member: fmt.Sprintf("Cell.op%d/1", i%4), Args: []trace.Repr{val}})
	}
	return t
}

func mustPut(t *testing.T, s *Store, tr *trace.Trace) trace.Digest {
	t.Helper()
	id, _, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := New(t.TempDir(), Options{SegmentLimit: 16, VerifyOnLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := makeTrace("alpha", 1, 50)
	id := mustPut(t, s, tr)

	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 || got.Name != "alpha" {
		t.Fatalf("Get returned %q with %d entries", got.Name, got.Len())
	}
	m, err := s.Meta(id)
	if err != nil {
		t.Fatal(err)
	}
	// 50 entries / 16 per segment = 4 segments.
	if m.Entries != 50 || m.Segments != 4 || m.Name != "alpha" {
		t.Errorf("meta = %+v", m)
	}
	if _, err := s.Get(trace.Digest{1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get of unknown id: %v", err)
	}
}

func TestPutDeduplicatesByContent(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, created, err := s.Put(makeTrace("first", 7, 30))
	if err != nil || !created {
		t.Fatalf("first Put: created=%v err=%v", created, err)
	}
	b, created, err := s.Put(makeTrace("second-name-same-content", 7, 30))
	if err != nil || created {
		t.Fatalf("duplicate Put: created=%v err=%v", created, err)
	}
	if a != b {
		t.Fatalf("identical content got two ids: %s vs %s", a, b)
	}
	if s.Len() != 1 {
		t.Errorf("store holds %d traces, want 1", s.Len())
	}
	if st := s.Stats(); st.Dedups != 1 {
		t.Errorf("stats.Dedups = %d, want 1", st.Dedups)
	}
	// The first-seen name wins.
	m, _ := s.Meta(a)
	if m.Name != "first" {
		t.Errorf("dedup kept name %q", m.Name)
	}
}

func TestReopenIndexesDisk(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := mustPut(t, s1, makeTrace("persist", 3, 40))

	s2, err := New(dir, Options{VerifyOnLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexes %d traces, want 1", s2.Len())
	}
	got, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 40 || got.Name != "persist" {
		t.Errorf("reloaded %q with %d entries", got.Name, got.Len())
	}
	if got.ComputeDigest() != id {
		t.Error("reloaded trace digest mismatch")
	}
}

func TestTraceLRUEviction(t *testing.T) {
	s, err := New(t.TempDir(), Options{TraceCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]trace.Digest, 4)
	for i := range ids {
		ids[i] = mustPut(t, s, makeTrace(fmt.Sprintf("t%d", i), i, 20))
	}
	st := s.Stats()
	if st.TraceCacheLen != 2 {
		t.Errorf("trace cache holds %d, want 2", st.TraceCacheLen)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// Every trace is still resolvable from the disk tier.
	for i, id := range ids {
		tr, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%d) after eviction: %v", i, err)
		}
		if tr.Len() != 20 {
			t.Errorf("trace %d reloaded with %d entries", i, tr.Len())
		}
	}
	if st := s.Stats(); st.TraceMisses == 0 {
		t.Error("evicted Gets did not count disk loads")
	}
}

func TestViewsMemoizedAndSingleFlight(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := mustPut(t, s, makeTrace("webs", 5, 200))

	// Fan out: many goroutines ask for the same web at once.
	const G = 16
	webs := make([]any, G)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, err := s.Views(id)
			if err != nil {
				t.Error(err)
				return
			}
			webs[g] = w
		}(g)
	}
	wg.Wait()
	for g := 1; g < G; g++ {
		if webs[g] != webs[0] {
			t.Fatal("concurrent Views returned distinct webs")
		}
	}
	st := s.Stats()
	if st.WebBuilds != 1 {
		t.Errorf("web built %d times under concurrency, want 1 (single-flight)", st.WebBuilds)
	}
	if st.WebHits+st.WebWaits != G-1 {
		t.Errorf("hits(%d)+waits(%d) != %d", st.WebHits, st.WebWaits, G-1)
	}

	// A later call is a plain memo hit.
	if _, err := s.Views(id); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WebBuilds != 1 {
		t.Errorf("memoized web rebuilt: %d builds", st.WebBuilds)
	}
}

func TestViewsEvictionRebuilds(t *testing.T) {
	s, err := New(t.TempDir(), Options{WebCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, makeTrace("a", 1, 30))
	b := mustPut(t, s, makeTrace("b", 2, 30))
	if _, err := s.Views(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Views(b); err != nil { // evicts a's web
		t.Fatal(err)
	}
	if _, err := s.Views(a); err != nil { // rebuild
		t.Fatal(err)
	}
	if st := s.Stats(); st.WebBuilds != 3 {
		t.Errorf("builds = %d, want 3 (evicted web rebuilt)", st.WebBuilds)
	}
}

func TestPutRejectsNonDenseEIDs(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := makeTrace("evil", 1, 10)
	tr.Entries[4].EID = 999999 // crafted upload: views.Build would index out of range
	if _, _, err := s.Put(tr); !errors.Is(err, ErrInvalidTrace) {
		t.Fatalf("Put accepted non-dense EIDs: %v", err)
	}
	if s.Len() != 0 {
		t.Error("invalid trace was admitted")
	}
}

func TestPutClearsStaleSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, Options{TraceCacheSize: 1, SegmentLimit: 16, VerifyOnLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a failed earlier attempt (e.g. under a smaller segment
	// limit): orphaned high-numbered segments with no meta sidecar.
	tr := makeTrace("retry", 9, 40)
	tr.EnsureSyms()
	id := tr.ComputeDigest()
	stale := filepath.Join(dir, id.String()+".000099.seg")
	if err := os.WriteFile(stale, []byte("junk from a failed put"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := mustPut(t, s, tr); got != id {
		t.Fatalf("digest mismatch: %s vs %s", got, id)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale segment survived Put")
	}
	// Push the trace out of the LRU and reload from disk: the stored
	// segments must reassemble (and re-verify) cleanly.
	mustPut(t, s, makeTrace("filler", 10, 20))
	if _, err := s.Get(id); err != nil {
		t.Fatalf("reload after stale-segment cleanup: %v", err)
	}
	m, _ := s.Meta(id)
	if m.Segments != 3 { // 40 entries / 16 per segment
		t.Errorf("meta counts %d segments, want 3", m.Segments)
	}
}

func TestViewsUnknownID(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Views(trace.Digest{9}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Views of unknown id: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s, err := New(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := mustPut(t, s, makeTrace("gone", 4, 25))
	if _, err := s.Views(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete: %v", err)
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete: %v", err)
	}
	// The disk tier is gone too: a reopened store sees nothing.
	s2, err := New(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Errorf("reopened store still indexes %d traces", s2.Len())
	}
}

// TestConcurrentMixedWorkload hammers every public method at once; run
// under -race this is the store's race-cleanliness proof.
func TestConcurrentMixedWorkload(t *testing.T) {
	s, err := New(t.TempDir(), Options{TraceCacheSize: 2, WebCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]trace.Digest, 5)
	for i := range ids {
		ids[i] = mustPut(t, s, makeTrace(fmt.Sprintf("w%d", i), i, 60))
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				id := ids[(g+round)%len(ids)]
				switch round % 4 {
				case 0:
					if _, err := s.Get(id); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := s.Views(id); err != nil {
						t.Error(err)
					}
				case 2:
					wl, err1 := s.Views(ids[round%len(ids)])
					wr, err2 := s.Views(ids[(round+1)%len(ids)])
					if err1 != nil || err2 != nil {
						t.Error(err1, err2)
						return
					}
					diff.ViewDiffWebs(wl, wr, diff.ViewOptions{})
				case 3:
					s.Stats()
					s.List()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestGetRejectsTruncatedDiskTier(t *testing.T) {
	// The store must stay strict where the capture-recovery loader is
	// forgiving: a stored trace whose trailing segment was truncated on
	// disk is corruption, and Get must fail rather than serve a silent
	// prefix that no longer matches its digest.
	dir := t.TempDir()
	store, err := New(dir, Options{SegmentLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("multi")
	for i := 0; i < 35; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%5), Class: "C", Seq: 1 + i%5}
		tr.Append(0, "C.m/0", obj, trace.Event{Kind: trace.KindCall, Target: obj, Member: "C.m/0"})
	}
	id, _, err := store.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, id.String()+".*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v (err %v)", segs, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh store over the same dir: the decoded-trace LRU is cold, so
	// Get must hit the (corrupted) disk tier.
	reopened, err := New(dir, Options{SegmentLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Get(id); err == nil {
		t.Fatal("Get served a trace whose trailing segment is truncated")
	}
}

// benchCorpusTrace builds a loop-heavy trace with a bounded symbol
// vocabulary — the workload shape the paper's subject programs produce,
// and the one the disk tier serves in practice.
func benchCorpusTrace(threads, per int) *trace.Trace {
	t := trace.New("bench-corpus")
	for tid := 1; tid <= threads; tid++ {
		for i := 0; i < per; i++ {
			obj := trace.Repr{Loc: trace.Loc(i%97 + 1), Class: "Worker", Seq: i % 500}
			val := trace.Repr{Class: "Int", Hash: uint64(i % 1000), Str: fmt.Sprintf("%d", i%1000)}
			t.Append(trace.ThreadID(tid), fmt.Sprintf("Worker.step%d/1", i%40), obj,
				trace.Event{Kind: trace.KindCall, Target: obj,
					Member: fmt.Sprintf("Worker.step%d/1", i%40), Args: []trace.Repr{val}})
		}
	}
	return t
}

// BenchmarkCorpusGetCold measures a cache-miss Get: a fresh store over
// the corpus directory, so every iteration pays the full disk-tier load
// of the RSEG segments (the decoded-trace LRU never helps).
func BenchmarkCorpusGetCold(b *testing.B) {
	dir := b.TempDir()
	s, err := New(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	id, _, err := s.Put(benchCorpusTrace(8, 2500))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold, err := New(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := cold.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != 8*2500 {
			b.Fatalf("loaded %d entries", tr.Len())
		}
	}
}
