package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sentinel"
	"repro/internal/trace"
)

// watchTrace builds a deterministic multi-thread trace for watch tests.
func watchTrace(n, threads int) *trace.Trace {
	tr := trace.New("watchfix")
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%7), Class: "Node", Seq: 1 + i%7}
		tr.Append(trace.ThreadID(i%threads), fmt.Sprintf("C.m%d/0", i%4), obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: fmt.Sprintf("C.m%d/0", (i+1)%4),
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i%11))}})
	}
	return tr
}

type sseResult struct {
	events []sentinel.Event
	err    error
}

// startSSE connects to a watch event stream (synchronously, so the
// caller knows the subscription exists before triggering events) and
// consumes it to EOF in the background.
func startSSE(t *testing.T, ts *httptest.Server, path string) <-chan sseResult {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	ch := make(chan sseResult, 1)
	go func() {
		defer resp.Body.Close()
		var res sseResult
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev sentinel.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				res.err = fmt.Errorf("bad SSE data frame %q: %w", line, err)
				break
			}
			res.events = append(res.events, ev)
		}
		if res.err == nil {
			res.err = sc.Err()
		}
		ch <- res
	}()
	return ch
}

// collectSSE waits for a startSSE stream to end and returns its events.
func collectSSE(t *testing.T, ch <-chan sseResult) []sentinel.Event {
	t.Helper()
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		return res.events
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not end")
		return nil
	}
}

// awaitInfo polls GET /watches/{id} until pred accepts the watch info.
func awaitInfo(t *testing.T, ts *httptest.Server, id string, pred func(sentinel.Info) bool) sentinel.Info {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var info sentinel.Info
	for time.Now().Before(deadline) {
		status, raw := doJSON(t, http.MethodGet, ts.URL+"/watches/"+id, nil, &info)
		if status != http.StatusOK {
			t.Fatalf("GET /watches/%s: status %d: %s", id, status, raw)
		}
		if pred(info) {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("watch %s never reached the awaited state: %+v", id, info)
	return info
}

// TestWatchRoutesEndToEnd drives the full HTTP watch surface: create a
// watch on a live session, diverge the session, observe the divergence
// and terminal events over SSE (with ring replay for a late subscriber
// and ?after= resume), and check /stats reflects it all.
func TestWatchRoutesEndToEnd(t *testing.T) {
	ts, srv := newTestServer(t, Options{})
	t.Cleanup(srv.eng.Close) // runs before ts.Close (LIFO): watches end first

	base := watchTrace(240, 3)
	info := upload(t, ts, base)

	sess, err := srv.store.OpenSession("livewatch")
	if err != nil {
		t.Fatal(err)
	}

	// Bad requests first: unknown session, missing fields, bad digest.
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/watches",
		[]byte(`{"session":"nope","baseline":"`+info.ID+`"}`), nil)
	if status != http.StatusNotFound {
		t.Fatalf("watch on unknown session: status %d: %s", status, raw)
	}
	assertErrEnvelope(t, raw, CodeNotFound)
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/watches", []byte(`{"session":"`+sess.ID()+`"}`), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("watch without baseline: status %d: %s", status, raw)
	}
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/watches",
		[]byte(`{"session":"`+sess.ID()+`","baseline":"zzzz"}`), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("watch with bad digest: status %d: %s", status, raw)
	}

	var wi sentinel.Info
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/watches",
		[]byte(`{"session":"session:`+sess.ID()+`","baseline":"`+info.ID+`"}`), &wi)
	if status != http.StatusCreated {
		t.Fatalf("create watch: status %d: %s", status, raw)
	}
	if wi.ID == "" || wi.Session != sess.ID() || wi.Baseline != info.ID {
		t.Fatalf("watch info: %+v", wi)
	}
	if wi.Analysis != "regression" {
		t.Fatalf("analysis defaulted to %q, want regression", wi.Analysis)
	}

	var list []sentinel.Info
	status, raw = doJSON(t, http.MethodGet, ts.URL+"/watches", nil, &list)
	if status != http.StatusOK || len(list) != 1 || list[0].ID != wi.ID {
		t.Fatalf("list watches: status %d: %s", status, raw)
	}

	// Clean prefix, then a segment with novel calls: the sentinel must
	// notice within one appended segment.
	if _, err := sess.Append(base.Entries[:120]); err != nil {
		t.Fatal(err)
	}
	divergent := trace.New("livewatch")
	for _, e := range base.Entries[:120] {
		divergent.Append(e.TID, e.Method, e.Self, e.Event)
	}
	novel := trace.Repr{Loc: trace.Loc(600), Class: "Bug", Seq: 4}
	for k := 0; k < 12; k++ {
		divergent.Append(0, "Bug.trip/0", novel,
			trace.Event{Kind: trace.KindCall, Target: novel, Member: "Bug.trip/0"})
	}
	if _, err := sess.Append(divergent.Entries[120:]); err != nil {
		t.Fatal(err)
	}
	awaitInfo(t, ts, wi.ID, func(i sentinel.Info) bool { return i.Diverged })

	// Subscribe late: the ring must replay the divergence that already
	// happened. A second stream resumes past it with ?after=1 (the
	// divergence is this watch's first event, seq 1).
	full := startSSE(t, ts, "/watches/"+wi.ID+"/events")
	tail := startSSE(t, ts, "/watches/"+wi.ID+"/events?after=1")

	// Deleting the watched session aborts it; the watch emits its
	// terminal event, both streams end, and the watch detaches.
	status, raw = doJSON(t, http.MethodDelete, ts.URL+"/sessions/"+sess.ID(), nil, nil)
	if status != http.StatusOK {
		t.Fatalf("delete session: status %d: %s", status, raw)
	}

	events := collectSSE(t, full)
	if len(events) != 2 || events[0].Kind != sentinel.EventDivergence || events[1].Kind != sentinel.EventWatchClosed {
		t.Fatalf("SSE events = %+v, want [divergence watch_closed]", events)
	}
	div := events[0]
	if div.Seq != 1 || div.WatchID != wi.ID || div.SessionID != sess.ID() || div.Baseline != info.ID {
		t.Fatalf("divergence event: %+v", div)
	}
	if div.Candidates == 0 || len(div.Summary) == 0 {
		t.Fatalf("divergence event carries no candidates: %+v", div)
	}
	if div.Watermark != trace.EntryID(divergent.Len()-1) {
		t.Fatalf("watermark = %d, want %d", div.Watermark, divergent.Len()-1)
	}
	if events[1].Reason != "session aborted" {
		t.Fatalf("terminal reason = %q, want session aborted", events[1].Reason)
	}

	after := collectSSE(t, tail)
	if len(after) != 1 || after[0].Kind != sentinel.EventWatchClosed {
		t.Fatalf("?after=1 events = %+v, want only watch_closed", after)
	}

	var stats StatsResponse
	status, raw = doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d: %s", status, raw)
	}
	if stats.Sentinel.Divergences != 1 || stats.Sentinel.WatchesOpened != 1 || stats.Sentinel.Evaluations == 0 {
		t.Fatalf("sentinel stats: %+v", stats.Sentinel)
	}
	if stats.Sentinel.Watches != 0 {
		t.Fatalf("watch still attached after terminal event: %+v", stats.Sentinel)
	}
}

// TestWatchDetachRoute pins DELETE /watches/{id}: the watch closes with
// a terminal detach event, leaves the listing, and the session itself
// stays open and usable.
func TestWatchDetachRoute(t *testing.T) {
	ts, srv := newTestServer(t, Options{})
	t.Cleanup(srv.eng.Close)

	base := watchTrace(120, 2)
	info := upload(t, ts, base)
	sess, err := srv.store.OpenSession("detachme")
	if err != nil {
		t.Fatal(err)
	}
	var wi sentinel.Info
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/watches",
		[]byte(`{"session":"`+sess.ID()+`","baseline":"`+info.ID+`"}`), &wi)
	if status != http.StatusCreated {
		t.Fatalf("create watch: status %d: %s", status, raw)
	}
	if _, err := sess.Append(base.Entries[:40]); err != nil {
		t.Fatal(err)
	}

	stream := startSSE(t, ts, "/watches/"+wi.ID+"/events")

	var closed sentinel.Info
	status, raw = doJSON(t, http.MethodDelete, ts.URL+"/watches/"+wi.ID, nil, &closed)
	if status != http.StatusOK {
		t.Fatalf("delete watch: status %d: %s", status, raw)
	}
	if !closed.Closed {
		t.Fatalf("deleted watch not closed: %+v", closed)
	}

	events := collectSSE(t, stream)
	if len(events) == 0 || events[len(events)-1].Kind != sentinel.EventWatchClosed {
		t.Fatalf("detach stream events = %+v, want terminal watch_closed", events)
	}
	for _, ev := range events {
		if ev.Kind == sentinel.EventDivergence {
			t.Fatalf("clean replay raised a divergence: %+v", ev)
		}
	}

	status, raw = doJSON(t, http.MethodGet, ts.URL+"/watches/"+wi.ID, nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("get deleted watch: status %d: %s", status, raw)
	}
	assertErrEnvelope(t, raw, CodeNotFound)
	status, raw = doJSON(t, http.MethodDelete, ts.URL+"/watches/"+wi.ID, nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("second delete: status %d: %s", status, raw)
	}

	// The session survives its watch.
	if _, err := sess.Append(base.Entries[40:80]); err != nil {
		t.Fatal(err)
	}
	sess.Abort()
}
