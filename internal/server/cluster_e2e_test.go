package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	rprism "repro"
	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/trace"
)

// The cluster end-to-end suite: three rprism-serve nodes share one
// in-process S3 stub bucket, each with a disk tier too small for the
// whole corpus, and requests land on arbitrary nodes. Run under -race
// in CI (the cluster-e2e job runs it at -cpu=1,2,4).

// clusterNode is one running rprism-serve instance of the test ring.
type clusterNode struct {
	id    string
	url   string
	srv   *Server
	store *corpus.Store
	kill  context.CancelFunc
	done  chan struct{} // closed when Serve returns
}

// startCluster boots n nodes over one shared S3-stub bucket. Every
// node's disk tier is capped at diskCache decoded traces, so a corpus
// larger than that only fits in the bucket.
func startCluster(t *testing.T, n, diskCache int) []*clusterNode {
	t.Helper()
	stub := blob.NewS3Stub("corpus", "test-access", "test-secret", "us-east-1")
	stubSrv := httptest.NewServer(stub)
	t.Cleanup(stubSrv.Close)

	// Listeners first: the ring config needs every node's URL before
	// any node starts.
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = cluster.Peer{
			ID:  string(rune('a' + i)),
			URL: "http://" + ln.Addr().String(),
		}
	}

	nodes := make([]*clusterNode, n)
	for i := range nodes {
		backend, err := blob.Config{
			Bucket:    "corpus",
			Endpoint:  stubSrv.URL,
			AccessKey: "test-access",
			SecretKey: "test-secret",
			Region:    "us-east-1",
		}.Open()
		if err != nil {
			t.Fatal(err)
		}
		store, err := corpus.New(t.TempDir(), corpus.Options{
			Blob:            backend,
			DiskCacheTraces: diskCache,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Options{Self: peers[i].ID, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(rprism.NewEngine(rprism.WithCorpus(store)), Options{Cluster: cl})
		ctx, cancel := context.WithCancel(context.Background())
		node := &clusterNode{
			id:    peers[i].ID,
			url:   peers[i].URL,
			srv:   srv,
			store: store,
			kill:  cancel,
			done:  make(chan struct{}),
		}
		ln := lns[i]
		go func() {
			_ = srv.Serve(ctx, ln, 100*time.Millisecond)
			close(node.done)
		}()
		t.Cleanup(func() {
			cancel()
			<-node.done
		})
		nodes[i] = node
	}
	// Every node answers /healthz before the suite proceeds.
	for _, node := range nodes {
		waitHealthy(t, node.url)
	}
	return nodes
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node at %s never became healthy", url)
}

// killNode shuts one node down and waits until its port refuses
// connections, so a follow-up forward fails at the transport layer
// instead of racing the shutdown.
func killNode(t *testing.T, node *clusterNode) {
	t.Helper()
	node.kill()
	<-node.done
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(node.url + "/healthz")
		if err != nil {
			return
		}
		resp.Body.Close()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node %s still answering after shutdown", node.id)
}

// mkClusterTrace builds a small deterministic trace; name and seed vary
// the digest, overlap keeps diff pairs comparable.
func mkClusterTrace(name string, seed, n int) *trace.Trace {
	tr := trace.New(name)
	for i := 0; i < n; i++ {
		m := fmt.Sprintf("Shared.m%d/0", (i*7+seed)%23)
		tr.Append(trace.ThreadID(1+i%3), m, trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: m})
	}
	return tr
}

// ownerOf names the node owning a digest (the ring is identical on
// every node, so any node's view answers).
func ownerOf(nodes []*clusterNode, id string) string {
	d, err := trace.ParseDigest(id)
	if err != nil {
		return ""
	}
	return nodes[0].srv.cl.Owner(d).ID
}

// TestClusterServesOversizedCorpus: six traces into a ring whose nodes
// each cache two on disk — the corpus only fits in the bucket — and
// every trace stays fully readable from every node, with /traces on
// each node listing the whole shared corpus.
func TestClusterServesOversizedCorpus(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	var ids []string
	for i := 0; i < 6; i++ {
		tr := mkClusterTrace(fmt.Sprintf("trace-%d", i), i, 60)
		node := nodes[i%len(nodes)]
		var info TraceInfo
		status, raw := doJSON(t, http.MethodPut, node.url+"/traces", gobBytes(t, tr), &info)
		if status != http.StatusCreated {
			t.Fatalf("upload %d via %s: status %d: %s", i, node.id, status, raw)
		}
		ids = append(ids, info.ID)
	}

	for _, node := range nodes {
		var listed []TraceInfo
		if status, raw := doJSON(t, http.MethodGet, node.url+"/traces", nil, &listed); status != http.StatusOK {
			t.Fatalf("list via %s: status %d: %s", node.id, status, raw)
		} else if len(listed) != len(ids) {
			t.Fatalf("node %s lists %d traces, want %d: %s", node.id, len(listed), len(ids), raw)
		}
		for _, id := range ids {
			req, _ := http.NewRequest(http.MethodGet, node.url+"/traces/"+id, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			served := resp.Header.Get(cluster.NodeHeader)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s via node %s: status %d", id[:8], node.id, resp.StatusCode)
			}
			// Full-digest requests are served by the ring owner, whichever
			// node took the request.
			if want := ownerOf(nodes, id); served != want {
				t.Fatalf("GET %s via node %s served by %q, want owner %q", id[:8], node.id, served, want)
			}
		}
		if local := node.store.LocalLen(); local > 2 {
			t.Fatalf("node %s holds %d traces on disk, cap is 2", node.id, local)
		}
	}

	// Views need the full decoded trace, not just metadata: force one
	// through a non-owner so the owner (or a hydration) answers.
	var vs ViewsSummary
	if status, raw := doJSON(t, http.MethodGet, nodes[0].url+"/traces/"+ids[5]+"/views", nil, &vs); status != http.StatusOK {
		t.Fatalf("views across nodes: status %d: %s", status, raw)
	} else if vs.Counts.Total == 0 {
		t.Fatalf("views across nodes: empty web: %s", raw)
	}
}

// TestClusterNodeKillDiffFallback: a diff whose owner dies keeps
// working through any surviving node — served out of the shared bucket,
// byte-identical to the answer the owner gave while alive.
func TestClusterNodeKillDiffFallback(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	// Grow traces until the diff's deciding (left) digest is owned by a
	// node we are willing to kill (anything but nodes[0], the survivor
	// we will query).
	var left, right string
	var victim *clusterNode
	for seed := 0; victim == nil && seed < 64; seed++ {
		l := mkClusterTrace(fmt.Sprintf("kill-left-%d", seed), seed, 60)
		r := mkClusterTrace(fmt.Sprintf("kill-right-%d", seed), seed+1, 60)
		var li, ri TraceInfo
		if status, raw := doJSON(t, http.MethodPut, nodes[0].url+"/traces", gobBytes(t, l), &li); status != http.StatusCreated {
			t.Fatalf("upload left: %d: %s", status, raw)
		}
		if status, raw := doJSON(t, http.MethodPut, nodes[0].url+"/traces", gobBytes(t, r), &ri); status != http.StatusCreated {
			t.Fatalf("upload right: %d: %s", status, raw)
		}
		if owner := ownerOf(nodes, li.ID); owner != nodes[0].id {
			left, right = li.ID, ri.ID
			for _, n := range nodes {
				if n.id == owner {
					victim = n
				}
			}
		}
	}
	if victim == nil {
		t.Fatal("no generated digest owned by a non-survivor node")
	}

	diffURL := nodes[0].url + "/diff?left=" + left + "&right=" + right
	status, before := doJSON(t, http.MethodGet, diffURL, nil, nil)
	if status != http.StatusOK {
		t.Fatalf("diff with owner alive: status %d: %s", status, before)
	}

	killNode(t, victim)

	req, _ := http.NewRequest(http.MethodGet, diffURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	served := resp.Header.Get(cluster.NodeHeader)
	body := make([]byte, 0, len(before))
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff after node kill: status %d: %s", resp.StatusCode, body)
	}
	if served != nodes[0].id {
		t.Fatalf("fallback diff served by %q, want local node %q", served, nodes[0].id)
	}
	if string(body) != before {
		t.Fatalf("fallback diff differs from owner's answer:\nowner: %s\nfallback: %s", before, body)
	}
	if got := nodes[0].srv.cl.Counters().Fallbacks.Load(); got < 1 {
		t.Fatalf("fallbacks = %d, want >= 1", got)
	}
}

// TestClusterLoopGuard: a request that already took its forwarding hop
// is never forwarded again — the receiving node answers locally even
// when it is not the owner.
func TestClusterLoopGuard(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	tr := mkClusterTrace("loop-guard", 3, 60)
	var info TraceInfo
	if status, raw := doJSON(t, http.MethodPut, nodes[0].url+"/traces", gobBytes(t, tr), &info); status != http.StatusCreated {
		t.Fatalf("upload: %d: %s", status, raw)
	}
	owner := ownerOf(nodes, info.ID)
	var outsider *clusterNode
	for _, n := range nodes {
		if n.id != owner {
			outsider = n
			break
		}
	}
	before := outsider.srv.cl.Counters().LoopGuarded.Load()
	req, _ := http.NewRequest(http.MethodGet, outsider.url+"/traces/"+info.ID, nil)
	req.Header.Set(cluster.ForwardedHeader, "z")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	served := resp.Header.Get(cluster.NodeHeader)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loop-guarded request: status %d", resp.StatusCode)
	}
	if served != outsider.id {
		t.Fatalf("loop-guarded request served by %q, want local %q", served, outsider.id)
	}
	if got := outsider.srv.cl.Counters().LoopGuarded.Load(); got != before+1 {
		t.Fatalf("loop-guarded counter = %d, want %d", got, before+1)
	}
}

// TestClusterStatsAggregation: /cluster/stats on any node reports every
// peer's health plus cluster-wide totals, and keeps answering (with the
// dead peer marked unhealthy) after a node dies.
func TestClusterStatsAggregation(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	var ids []string
	for i := 0; i < 4; i++ {
		tr := mkClusterTrace(fmt.Sprintf("stats-%d", i), i, 60)
		var info TraceInfo
		if status, raw := doJSON(t, http.MethodPut, nodes[i%3].url+"/traces", gobBytes(t, tr), &info); status != http.StatusCreated {
			t.Fatalf("upload: %d: %s", status, raw)
		}
		ids = append(ids, info.ID)
	}

	var cs ClusterStatsResponse
	if status, raw := doJSON(t, http.MethodGet, nodes[1].url+"/cluster/stats", nil, &cs); status != http.StatusOK {
		t.Fatalf("/cluster/stats: %d: %s", status, raw)
	}
	if cs.Self != nodes[1].id || cs.Nodes != 3 || cs.HealthyNodes != 3 {
		t.Fatalf("cluster stats header: %+v", cs)
	}
	if cs.CorpusTraces != len(ids) {
		t.Fatalf("corpus traces = %d, want %d", cs.CorpusTraces, len(ids))
	}
	if len(cs.Peers) != 3 {
		t.Fatalf("peers = %d, want 3", len(cs.Peers))
	}
	if cs.TotalRequests == 0 {
		t.Fatal("total requests = 0 after uploads")
	}
	// Round-robin uploads of ring-sharded digests must have forwarded at
	// least once somewhere.
	if cs.TotalForwards == 0 {
		t.Fatal("total forwards = 0 across the ring")
	}
	// Per-node /stats carries the cluster block too.
	var st StatsResponse
	if status, raw := doJSON(t, http.MethodGet, nodes[2].url+"/stats", nil, &st); status != http.StatusOK {
		t.Fatalf("/stats: %d: %s", status, raw)
	} else if st.Cluster == nil || st.Cluster.NodeID != nodes[2].id || st.Cluster.Peers != 3 {
		t.Fatalf("/stats cluster block: %+v", st.Cluster)
	}

	killNode(t, nodes[2])
	if status, raw := doJSON(t, http.MethodGet, nodes[0].url+"/cluster/stats", nil, &cs); status != http.StatusOK {
		t.Fatalf("/cluster/stats with a dead peer: %d: %s", status, raw)
	}
	if cs.HealthyNodes != 2 {
		t.Fatalf("healthy nodes = %d after kill, want 2", cs.HealthyNodes)
	}
	for _, p := range cs.Peers {
		if p.ID == nodes[2].id && p.Healthy {
			t.Fatalf("dead peer reported healthy: %+v", p)
		}
	}
}

// TestClusterWarmHintPrefetch: a completed diff triggers the background
// prefetcher, which hydrates similar bucket-resident traces onto the
// serving node's disk tier.
func TestClusterWarmHintPrefetch(t *testing.T) {
	nodes := startCluster(t, 3, 8)
	// A family of similar traces: shared member universe, shifted seeds,
	// so sketch similarity is high across the family.
	var ids []string
	for i := 0; i < 5; i++ {
		tr := mkClusterTrace(fmt.Sprintf("warm-%d", i), i, 80)
		var info TraceInfo
		if status, raw := doJSON(t, http.MethodPut, nodes[0].url+"/traces", gobBytes(t, tr), &info); status != http.StatusCreated {
			t.Fatalf("upload: %d: %s", status, raw)
		}
		ids = append(ids, info.ID)
	}
	// Diff two of them on whichever node owns the left digest: that node
	// serves locally and fires the warm hint.
	owner := ownerOf(nodes, ids[0])
	var serving *clusterNode
	for _, n := range nodes {
		if n.id == owner {
			serving = n
		}
	}
	if status, raw := doJSON(t, http.MethodGet,
		serving.url+"/diff?left="+ids[0]+"&right="+ids[1], nil, nil); status != http.StatusOK {
		t.Fatalf("diff: %d: %s", status, raw)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cc := serving.srv.cl.Counters()
		if cc.PrefetchHints.Load() >= 1 && cc.PrefetchHydrates.Load() >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher idle: hints=%d hydrates=%d",
				cc.PrefetchHints.Load(), cc.PrefetchHydrates.Load())
		}
		time.Sleep(25 * time.Millisecond)
	}
}
