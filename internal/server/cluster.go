package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Cluster-mode request routing. A cluster-enabled server owns a
// digest range of the shared corpus (see internal/cluster): requests
// referencing a full digest another node owns are forwarded there —
// the owner holds the warm caches — while session references, short
// prefixes and unowned refs are served locally. Forwarding is one hop
// (X-Rprism-Forwarded guards loops) and fully buffered, so when the
// owner is down the untouched ResponseWriter falls back to a local
// answer served out of the shared bucket: slower, but byte-identical,
// because every admitted trace is durable in the bucket before any
// node serves it.

// maybeForward forwards the request to the digest owner when that is
// another node, writing the peer's buffered response and returning
// true. Returning false means "serve locally": this node owns the
// digest, the refs pin the request here (sessions, prefixes), the
// request already took its hop, or the owner is down (bucket
// fallback).
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, body []byte, refs ...string) bool {
	if s.cl == nil {
		return false
	}
	id, ok := forwardDigest(refs)
	if !ok {
		return false
	}
	owner := s.cl.Owner(id)
	if owner.ID == s.cl.Self().ID {
		return false
	}
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		// One hop only: a second forward means peer configs disagree;
		// serving locally degrades to a bucket read instead of a loop.
		s.cl.Counters().LoopGuarded.Add(1)
		return false
	}
	res, err := s.cl.Forward(r.Context(), owner, r, body)
	if err != nil {
		s.cl.Counters().Fallbacks.Add(1)
		return false
	}
	res.WriteTo(w, owner.ID)
	return true
}

// forwardDigest picks the digest that decides ownership: the first
// ref that is a full hex digest. Session references and short
// prefixes return false — they resolve against local state and pin
// the request to this node.
func forwardDigest(refs []string) (trace.Digest, bool) {
	for _, ref := range refs {
		if d, err := trace.ParseDigest(ref); err == nil {
			return d, true
		}
	}
	return trace.Digest{}, false
}

// nodeID names this node in responses ("" outside cluster mode).
func (s *Server) nodeID() string {
	if s.cl == nil {
		return ""
	}
	return s.cl.Self().ID
}

// ---- cluster-wide stats ----

// ClusterInfo is the per-node cluster block inside /stats.
type ClusterInfo struct {
	NodeID string `json:"node_id"`
	Peers  int    `json:"peers"`
	metrics.ClusterSnapshot
}

// ClusterPeerStats is one node's contribution to GET /cluster/stats.
type ClusterPeerStats struct {
	cluster.PeerHealth
	Traces       int   `json:"traces,omitempty"`        // local disk-tier traces
	RemoteTraces int   `json:"remote_traces,omitempty"` // known bucket-only traces
	OpenSessions int   `json:"open_sessions,omitempty"`
	Requests     int64 `json:"requests,omitempty"`
	Forwards     int64 `json:"forwards,omitempty"`
	Fallbacks    int64 `json:"fallbacks,omitempty"`
}

// ClusterStatsResponse aggregates /stats across the ring.
type ClusterStatsResponse struct {
	Self           string             `json:"self"`
	Nodes          int                `json:"nodes"`
	HealthyNodes   int                `json:"healthy_nodes"`
	CorpusTraces   int                `json:"corpus_traces"` // every tier, bucket included
	TotalRequests  int64              `json:"total_requests"`
	TotalForwards  int64              `json:"total_forwards"`
	TotalFallbacks int64              `json:"total_fallbacks"`
	Peers          []ClusterPeerStats `json:"peers"`
}

// handleClusterStats fans GET /stats out to every peer and merges:
// per-peer health plus corpus/request/forwarding counts, and cluster
// totals. A down peer appears unhealthy with zeroed stats rather than
// failing the aggregation.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			errors.New("not running in cluster mode (start rprism-serve with -peers and -node-id)"))
		return
	}
	resp := ClusterStatsResponse{Self: s.cl.Self().ID}
	health := s.cl.ProbeAll(r.Context())
	resp.Nodes = len(health)
	for _, h := range health {
		ps := ClusterPeerStats{PeerHealth: h}
		var st *StatsResponse
		if h.Self {
			local := s.statsResponse()
			st = &local
		} else if h.Healthy {
			if raw, err := s.cl.FetchStats(r.Context(), h.Peer); err == nil {
				var decoded StatsResponse
				if json.Unmarshal(raw, &decoded) == nil {
					st = &decoded
				}
			} else {
				ps.Healthy = false
				ps.Error = err.Error()
			}
		}
		if st != nil {
			ps.Traces = st.Corpus.Traces
			ps.RemoteTraces = st.Corpus.RemoteTraces
			ps.OpenSessions = len(st.Sessions)
			ps.Requests = st.Server.Requests
			if st.Cluster != nil {
				ps.Forwards = st.Cluster.Forwards
				ps.Fallbacks = st.Cluster.Fallbacks
			}
			resp.TotalRequests += ps.Requests
			resp.TotalForwards += ps.Forwards
			resp.TotalFallbacks += ps.Fallbacks
		}
		if ps.Healthy {
			resp.HealthyNodes++
		}
		resp.Peers = append(resp.Peers, ps)
	}
	// The cluster-wide corpus size comes from the shared bucket (plus
	// anything only local to this node), not from summing per-node
	// counts — those overlap wherever traces were hydrated.
	if all, err := s.store.ListAll(r.Context()); err == nil {
		resp.CorpusTraces = len(all)
	} else {
		resp.CorpusTraces = s.store.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- warm-hint prefetch ----

const (
	// prefetchScan bounds how many bucket-resident candidates one hint
	// examines (a sketch GET each — a few KB, not a segment set).
	prefetchScan = 32
	// prefetchTop bounds how many partners one hint hydrates.
	prefetchTop = 2
)

// warmHint notes that ids were just diffed (or hydrated) and, in the
// background, pre-pulls their most similar bucket-resident partners
// into the local disk tier — the traces a follow-up diff will most
// likely name next. At most one prefetch runs at a time; hints
// arriving while one runs are dropped (they are hints, not work).
func (s *Server) warmHint(ids ...trace.Digest) {
	if s.cl == nil || !s.store.HasBlob() || len(ids) == 0 {
		return
	}
	select {
	case s.prefetchSem <- struct{}{}:
	default:
		return
	}
	go func() {
		defer func() { <-s.prefetchSem }()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for _, id := range ids {
			s.prefetchPartners(ctx, id)
		}
	}()
}

// prefetchPartners ranks bucket-only traces by sketch similarity to
// id and hydrates the top few. Sketches compare via the similarity
// index's MinHash estimate — the same shortlisting the corpus search
// analyses use.
func (s *Server) prefetchPartners(ctx context.Context, id trace.Digest) {
	cc := s.cl.Counters()
	cc.PrefetchHints.Add(1)
	sk, err := s.store.RemoteSketch(ctx, id)
	if err != nil {
		return
	}
	all, err := s.store.ListAll(ctx)
	if err != nil {
		return
	}
	type cand struct {
		id  trace.Digest
		sim float64
	}
	var cands []cand
	for _, m := range all {
		if len(cands) >= prefetchScan {
			break
		}
		cid, err := trace.ParseDigest(m.ID)
		if err != nil || cid == id || s.store.IsLocalTrace(cid) {
			continue
		}
		csk, err := s.store.RemoteSketch(ctx, cid)
		if err != nil {
			continue
		}
		cands = append(cands, cand{cid, index.EstimatedJaccard(sk, csk)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].sim > cands[j].sim })
	for i := 0; i < len(cands) && i < prefetchTop; i++ {
		if err := s.store.Prefetch(ctx, cands[i].id); err == nil {
			cc.PrefetchHydrates.Add(1)
		}
	}
}
