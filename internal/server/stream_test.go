package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	rprism "repro"
	"repro/internal/capture"
	"repro/internal/corpus"
	"repro/internal/trace"
	"repro/internal/views"
)

// baselineTrace builds a deterministic multi-thread trace to serve as
// the stored corpus baseline live sessions are diffed against.
func baselineTrace(n int) *trace.Trace {
	t := trace.New("baseline")
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%9), Class: "Worker", Seq: 1 + i%9}
		t.Append(trace.ThreadID(i%4), fmt.Sprintf("Worker.step%d/0", i%3), obj,
			trace.Event{Kind: trace.KindGet, Target: obj, Member: "state",
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i%17))}})
	}
	return t
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestLiveCaptureEndToEnd is the acceptance path of the capture tier: a
// capture.Recorder streams a multi-goroutine run into rprism-serve, the
// session's incremental web is diffed against a corpus baseline
// mid-session, and the finalized trace's digest round-trips through
// GET /traces/{id} identical to a batch-loaded copy.
func TestLiveCaptureEndToEnd(t *testing.T) {
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseGoroutines := runtime.NumGoroutine()
	func() { // scope the server lifetime for the leak check below
		ts, srv := newTestServerWithStore(t, store)
		defer ts.Close()
		_ = srv

		// Baseline into the corpus the usual way.
		base := baselineTrace(400)
		baseID, _, err := store.Put(base)
		if err != nil {
			t.Fatal(err)
		}

		// A real (Go) multi-goroutine program records itself, streaming
		// live into the server. Manual flushes keep the test deterministic.
		rec, err := capture.Start(capture.Options{
			ServerURL: ts.URL, Name: "live-run", SegmentLimit: 64, RingSize: 32, FlushInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		pool := trace.Repr{Loc: 1, Class: "Pool", Seq: 1}
		exitMain := rec.Enter("Pool.run/0", pool)
		var wg sync.WaitGroup
		phase2 := make(chan struct{})
		const workers = 3
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			rec.Go(func() {
				defer wg.Done()
				self := trace.Repr{Loc: trace.Loc(10 + w), Class: "Worker", Seq: w + 1}
				exit := rec.Enter("Worker.work/1", self, trace.PrimRepr("Int", fmt.Sprint(w)))
				defer exit()
				for i := 0; i < 25; i++ {
					rec.Emit(trace.Event{Kind: trace.KindSet, Target: self, Member: "state",
						Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i))}})
					if i == 10 {
						<-phase2 // hold mid-run so the test can query the live session
					}
				}
			})
		}
		// Let the workers reach their hold point, then push what's
		// buffered to the server: the session now exists, mid-run.
		time.Sleep(50 * time.Millisecond)
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}

		// The session is visible and counting.
		var sessions []corpus.SessionInfo
		if code := getJSON(t, ts.URL+"/sessions", &sessions); code != 200 {
			t.Fatalf("GET /sessions: %d", code)
		}
		if len(sessions) != 1 || sessions[0].Entries == 0 {
			t.Fatalf("sessions mid-run: %+v", sessions)
		}
		sid := sessions[0].ID

		var health HealthResponse
		getJSON(t, ts.URL+"/healthz", &health)
		if health.OpenSessions != 1 || health.SessionEntries != sessions[0].Entries {
			t.Errorf("healthz mid-run: %+v", health)
		}

		// Mid-session: diff the live session against the corpus baseline.
		var dr DiffResponse
		diffURL := fmt.Sprintf("%s/diff?left=session:%s&right=%s", ts.URL, sid, baseID)
		if code := getJSON(t, diffURL, &dr); code != 200 {
			t.Fatalf("mid-session diff: HTTP %d", code)
		}
		if dr.Left != "session:"+sid || dr.Right != baseID.String() {
			t.Errorf("diff labels: %q vs %q", dr.Left, dr.Right)
		}
		if dr.NumDiffs == 0 {
			t.Error("mid-session diff found no differences against an unrelated baseline")
		}

		// The live web equals a fresh batch build over the same snapshot.
		sess, err := store.Session(sid)
		if err != nil {
			t.Fatal(err)
		}
		snap := sess.Snapshot()
		if err := views.Equivalent(views.Build(snap), sess.Web()); err != nil {
			t.Errorf("incremental web vs batch build mid-session: %v", err)
		}

		// Generic /run works against the session too.
		runBody, _ := json.Marshal(map[string]any{
			"traces": map[string]string{"left": "session:" + sid, "right": baseID.String()},
		})
		resp, err := http.Post(ts.URL+"/run/diff", "application/json", bytes.NewReader(runBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("POST /run/diff with session source: HTTP %d", resp.StatusCode)
		}

		// Release the workers, finish the run, finalize the session.
		close(phase2)
		wg.Wait()
		exitMain()
		sum, err := rec.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sum.Session != sid {
			t.Errorf("recorder session %q, listed session %q", sum.Session, sid)
		}
		if sum.TraceID == "" || !sum.Created {
			t.Fatalf("close did not finalize: %+v", sum)
		}
		want := 2 + workers*(25+4)
		if sum.Entries != want {
			t.Errorf("captured %d entries, want %d", sum.Entries, want)
		}

		// The session is gone; the finalized trace round-trips by digest.
		if code := getJSON(t, ts.URL+"/sessions/"+sid, nil); code != 404 {
			t.Errorf("closed session still served: HTTP %d", code)
		}
		var info TraceInfo
		if code := getJSON(t, ts.URL+"/traces/"+sum.TraceID, &info); code != 200 {
			t.Fatalf("GET /traces/%s: %d", sum.TraceID, code)
		}
		if info.Entries != sum.Entries {
			t.Errorf("stored trace has %d entries, capture sent %d", info.Entries, sum.Entries)
		}
		id, err := trace.ParseDigest(sum.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := store.Get(id) // batch path: disk segments reassembled
		if err != nil {
			t.Fatal(err)
		}
		if got := loaded.ComputeDigest(); got != id {
			t.Errorf("batch-loaded copy digests to %s, want %s", got, id)
		}
		// Re-admitting the batch-loaded copy dedups: byte-identical content.
		copyTrace := &trace.Trace{Name: loaded.Name, Entries: loaded.Entries}
		if _, created, err := store.Put(copyTrace); err != nil || created {
			t.Errorf("batch-loaded copy not identical: created=%v err=%v", created, err)
		}
		// And its digest is addressable for normal analyses now.
		if code := getJSON(t, fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, id, baseID), nil); code != 200 {
			t.Errorf("diff over finalized trace: HTTP %d", code)
		}
	}()

	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked: %d before, %d after\n%s", baseGoroutines, g, buf[:n])
	}
}

// TestStreamResume exercises the resumability contract at the HTTP
// level: a dropped-and-retried batch is applied once, a resumed request
// continues the same session, and an unknown session 404s.
func TestStreamResume(t *testing.T) {
	ts, _ := newTestServer(t, Options{})

	src := baselineTrace(60)
	var enc trace.WireEncoder
	post := func(frames ...capture.StreamFrame) (*capture.StreamAck, int) {
		var body bytes.Buffer
		je := json.NewEncoder(&body)
		for _, f := range frames {
			if err := je.Encode(f); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(ts.URL+"/traces/stream", "application/x-ndjson", &body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			return nil, resp.StatusCode
		}
		var ack capture.StreamAck
		if err := json.Unmarshal(raw, &ack); err != nil {
			t.Fatalf("bad ack %q: %v", raw, err)
		}
		return &ack, 200
	}
	segFrame := func(entries []trace.Entry) capture.StreamFrame {
		seg := enc.Segment(entries)
		return capture.StreamFrame{Frame: capture.FrameSegment, Symbols: seg.Symbols, Entries: seg.Entries}
	}

	// Open + first batch.
	ack, code := post(
		capture.StreamFrame{Frame: capture.FrameOpen, Name: "resume"},
		segFrame(src.Entries[:20]),
	)
	if code != 200 || ack.Entries != 20 {
		t.Fatalf("first batch: code=%d ack=%+v", code, ack)
	}
	sid := ack.Session

	// Retry of the IDENTICAL first request (as after a lost ack): no
	// duplicate entries, and — critically — no duplicate symbol-delta
	// application, or every later frame's refs would skew. We rebuild
	// the byte-identical frame with a fresh encoder to simulate the
	// client resending its prepared body.
	var encRetry trace.WireEncoder
	seg0 := encRetry.Segment(src.Entries[:20])
	if ack, code = post(
		capture.StreamFrame{Frame: capture.FrameOpen, Session: sid},
		capture.StreamFrame{Frame: capture.FrameSegment, Symbols: seg0.Symbols, Entries: seg0.Entries},
	); code != 200 || ack.Entries != 20 {
		t.Fatalf("retried batch: code=%d ack=%+v", code, ack)
	}

	// Resume with the rest, in a separate request, and close.
	ack, code = post(
		capture.StreamFrame{Frame: capture.FrameOpen, Session: sid},
		segFrame(src.Entries[20:]),
		capture.StreamFrame{Frame: capture.FrameClose},
	)
	if code != 200 || ack.Trace == nil || ack.Trace.Entries != 60 {
		t.Fatalf("final batch: code=%d ack=%+v", code, ack)
	}
	if want := src.ComputeDigest().String(); ack.Trace.ID != want {
		t.Errorf("finalized digest %s, want %s", ack.Trace.ID, want)
	}
	finalID := ack.Trace.ID

	// A retried close request (lost ack) is answered idempotently from
	// the finalized-session tombstone, not 404.
	var encRetry2 trace.WireEncoder
	encRetry2.Segment(src.Entries[:20]) // advance past batch 0 like the real client
	seg2 := encRetry2.Segment(src.Entries[20:])
	ack, code = post(
		capture.StreamFrame{Frame: capture.FrameOpen, Session: sid},
		capture.StreamFrame{Frame: capture.FrameSegment, Symbols: seg2.Symbols, Entries: seg2.Entries},
		capture.StreamFrame{Frame: capture.FrameClose},
	)
	if code != 200 || ack.Trace == nil || ack.Trace.ID != finalID {
		t.Fatalf("retried close not idempotent: code=%d ack=%+v", code, ack)
	}

	// Unknown session → 404; gapped segment → 400.
	if _, code := post(capture.StreamFrame{Frame: capture.FrameOpen, Session: "live-nope"}); code != 404 {
		t.Errorf("unknown session: HTTP %d", code)
	}
	ack2, _ := post(capture.StreamFrame{Frame: capture.FrameOpen, Name: "gappy"})
	var enc2 trace.WireEncoder
	seg := enc2.Segment(src.Entries[5:10])
	if _, code := post(
		capture.StreamFrame{Frame: capture.FrameOpen, Session: ack2.Session},
		capture.StreamFrame{Frame: capture.FrameSegment, Symbols: seg.Symbols, Entries: seg.Entries},
	); code != 400 {
		t.Errorf("gapped segment: HTTP %d", code)
	}
}

func TestStreamValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	// Not starting with an open frame.
	resp, err := http.Post(ts.URL+"/traces/stream", "application/x-ndjson",
		bytes.NewBufferString(`{"frame":"segment"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("segment-first stream: HTTP %d", resp.StatusCode)
	}
	// Closing an empty session.
	var body bytes.Buffer
	body.WriteString(`{"frame":"open","name":"empty"}` + "\n" + `{"frame":"close"}` + "\n")
	resp, err = http.Post(ts.URL+"/traces/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty close: HTTP %d body %s", resp.StatusCode, raw)
	}
	// Aborting a session.
	var ack capture.StreamAck
	resp, err = http.Post(ts.URL+"/traces/stream", "application/x-ndjson",
		bytes.NewBufferString(`{"frame":"open","name":"doomed"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+ack.Session, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Errorf("abort: HTTP %d", dresp.StatusCode)
	}
	var sessions []corpus.SessionInfo
	getJSON(t, ts.URL+"/sessions", &sessions)
	for _, s := range sessions {
		if s.ID == ack.Session {
			t.Error("aborted session still listed")
		}
	}
}

// newTestServerWithStore is newTestServer over a caller-owned store.
func newTestServerWithStore(t *testing.T, store *corpus.Store) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(rprism.NewEngine(rprism.WithCorpus(store)), Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}
