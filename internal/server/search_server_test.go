package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	rprism "repro"
	"repro/internal/subjects"
)

func TestIndexStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for fam := 1; fam <= 2; fam++ {
		for v := 0; v < 3; v++ {
			upload(t, ts, subjects.GenCorpusTrace(fam, v, 80))
		}
	}
	var stats struct {
		Sketches int `json:"sketches"`
		Bands    int `json:"bands"`
		Computed int `json:"sketch_computed"`
	}
	status, raw := doJSON(t, http.MethodGet, ts.URL+"/index/stats", nil, &stats)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if stats.Sketches != 6 || stats.Bands == 0 || stats.Computed != 6 {
		t.Errorf("index stats = %+v (raw %s)", stats, raw)
	}
}

func TestRunSearchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var query string
	for fam := 1; fam <= 2; fam++ {
		for v := 0; v < 4; v++ {
			info := upload(t, ts, subjects.GenCorpusTrace(fam, v, 100))
			if fam == 1 && v == 0 {
				query = info.ID
			}
		}
	}
	body, _ := json.Marshal(RunRequest{
		Traces: map[string]string{"query": query},
		Params: json.RawMessage(`{"k": 3}`),
	})
	var out struct {
		Analysis string              `json:"analysis"`
		Result   rprism.SearchResult `json:"result"`
	}
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/run/search", body, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if out.Analysis != "search" || len(out.Result.Hits) != 3 {
		t.Fatalf("response = %s", raw)
	}
	if out.Result.Query != query || out.Result.Corpus != 7 {
		t.Errorf("result = %+v", out.Result)
	}
	// The nearest hits are the query's own family.
	for _, h := range out.Result.Hits {
		if !strings.HasPrefix(h.Name, "fam01-") {
			t.Errorf("hit %s not from the query family", h.Name)
		}
	}
}

func TestRunFlakyEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	ids := map[string]string{}
	for v := 0; v < 3; v++ {
		info := upload(t, ts, subjects.GenCorpusTrace(1, v, 80))
		ids[fmt.Sprintf("run%03d", v)] = info.ID
	}
	body, _ := json.Marshal(RunRequest{Traces: ids})
	var out struct {
		Result rprism.FlakyResult `json:"result"`
	}
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/run/flaky", body, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if out.Result.Runs != 3 || len(out.Result.Pairs) != 3 {
		t.Errorf("flaky result = %s", raw)
	}
}

func TestShortPrefixRefResolves(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	good, bad := tracePair(t)
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)
	var full, short DiffResponse
	if status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, gi.ID, bi.ID), nil, &full); status != http.StatusOK {
		t.Fatalf("full-digest diff: %d %s", status, raw)
	}
	if status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, gi.ID[:10], bi.ID[:10]), nil, &short); status != http.StatusOK {
		t.Fatalf("short-prefix diff: %d %s", status, raw)
	}
	// Left/Right echo the request refs verbatim, so compare the diff body.
	if full.NumDiffs != short.NumDiffs || full.DiffLeft != short.DiffLeft || full.DiffRight != short.DiffRight {
		t.Errorf("short-prefix diff diverges from full-digest diff:\nfull  %+v\nshort %+v", full, short)
	}
}

func TestUnknownDigestListsNearMisses(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	info := upload(t, ts, subjects.GenCorpusTrace(1, 0, 60))
	// Same 4-hex prefix, rest zeroed: unknown but near.
	near := info.ID[:4] + strings.Repeat("0", 60)
	if near == info.ID {
		t.Skip("pathological digest")
	}
	status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, near, info.ID), nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", status, raw)
	}
	if !strings.Contains(raw, info.ID[:12]) {
		t.Errorf("404 does not suggest the near-miss digest: %s", raw)
	}
}
