package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	rprism "repro"
	"repro/internal/capture"
	"repro/internal/corpus"
	"repro/internal/trace"
)

// Streaming ingestion: POST /traces/stream accepts the capture wire
// protocol (NDJSON frames, see internal/capture) and builds append-open
// corpus sessions from them. A session's web is extended incrementally
// as frames arrive, so /diff and /run/{analysis} can reference the
// still-streaming session via "session:<id>" source values while the
// traced program keeps running; the close frame finalizes the session
// into an ordinary content-addressed trace.
//
// Stream requests do not occupy analysis worker slots: appends are
// incremental-build work bounded by the frame size, and a long-lived
// chunked stream parked on a slot would starve the pool that diffs and
// regressions queue on.

// streamState pairs a corpus session with its wire decoder. The decoder
// accumulates the stream's cumulative symbol table, so it must be driven
// by exactly one request at a time: mu serializes whole requests, which
// also keeps a resumed stream's frames in order.
type streamState struct {
	mu   sync.Mutex
	sess *corpus.Session
	dec  trace.WireDecoder
}

// stream returns the wire state for a session id, or nil.
func (s *Server) stream(id string) *streamState {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.streams[id]
}

func (s *Server) dropStream(id string) {
	s.streamMu.Lock()
	delete(s.streams, id)
	s.streamMu.Unlock()
}

// finishedTombstones bounds the finalized-session memory: enough to
// absorb any realistic retry window, small enough to never matter.
const finishedTombstones = 256

// finishStream replaces a session's wire state with a tombstone holding
// its finalization ack, so a client that lost the close response can
// retry and receive the same answer instead of a 404 (the close frame
// is then idempotent like every other frame).
func (s *Server) finishStream(id string, info capture.StreamTraceInfo) {
	s.streamMu.Lock()
	delete(s.streams, id)
	if s.finished == nil {
		s.finished = make(map[string]capture.StreamTraceInfo)
	}
	s.finished[id] = info
	s.finishedOrder = append(s.finishedOrder, id)
	for len(s.finishedOrder) > finishedTombstones {
		delete(s.finished, s.finishedOrder[0])
		s.finishedOrder = s.finishedOrder[1:]
	}
	s.streamMu.Unlock()
}

// finishedStream looks up a finalized session's tombstone.
func (s *Server) finishedStream(id string) (capture.StreamTraceInfo, bool) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	info, ok := s.finished[id]
	return info, ok
}

// handleStream processes one request of the capture stream protocol:
// an open frame (create or resume a session), any number of segment
// frames appended as they decode — a concurrent diff against the
// session sees entries from frames already processed, even while this
// request is still being read — and an optional close frame that
// finalizes the session into the corpus.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	dec := json.NewDecoder(body)

	var first capture.StreamFrame
	if err := dec.Decode(&first); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("stream must start with an open frame: %w", err))
		return
	}
	if first.Frame != capture.FrameOpen {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("stream must start with an open frame, got %q", first.Frame))
		return
	}

	var st *streamState
	if first.Session == "" {
		name := first.Name
		if name == "" {
			name = "capture"
		}
		sess, err := s.store.OpenSession(name)
		if err != nil {
			// The open-session cap is pressure, not a client mistake:
			// 503 tells well-behaved recorders to back off and retry.
			writeErr(w, http.StatusServiceUnavailable, CodeTooManySessions, err)
			return
		}
		st = &streamState{sess: sess}
		s.streamMu.Lock()
		s.streams[st.sess.ID()] = st
		s.streamMu.Unlock()
	} else if st = s.stream(first.Session); st == nil {
		// A recently finalized session answers with its stored ack: the
		// request is a replay whose close response was lost, and all its
		// data is already in the trace the tombstone names.
		if info, ok := s.finishedStream(first.Session); ok {
			writeJSON(w, http.StatusOK, capture.StreamAck{
				Session: first.Session, Entries: info.Entries, Trace: &info,
			})
			return
		}
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("no open stream session %q (sessions do not survive server restarts; open a new one)", first.Session))
		return
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	ack := capture.StreamAck{Session: st.sess.ID()}
	for {
		var fr capture.StreamFrame
		if err := dec.Decode(&fr); err == io.EOF {
			break
		} else if err != nil {
			// The session survives a malformed or torn request: the client
			// resumes by re-sending from its last acked entry.
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("stream session %s: bad frame: %w", st.sess.ID(), err))
			return
		}
		switch fr.Frame {
		case capture.FrameOpen:
			if fr.Session != "" && fr.Session != st.sess.ID() {
				writeErr(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("stream is bound to session %s, got open for %q", st.sess.ID(), fr.Session))
				return
			}
		case capture.FrameSegment:
			// Replay detection must happen BEFORE decoding: a client that
			// never saw the ack of a fully-processed request resends the
			// identical frame, and running it through the decoder again
			// would re-add its symbol delta to the cumulative table,
			// skewing every later ref. Frames are processed atomically
			// under st.mu (symbols + entries together), so a frame whose
			// entries all sit below the session's high-water mark was
			// applied in full — skip it outright.
			if n := len(fr.Entries); n > 0 && int(fr.Entries[n-1].EID) < st.sess.Len() {
				continue
			}
			entries, err := st.dec.Segment(trace.WireSegment{Symbols: fr.Symbols, Entries: fr.Entries})
			if err != nil {
				writeErr(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("stream session %s: %w", st.sess.ID(), err))
				return
			}
			if _, err := st.sess.Append(entries); err != nil {
				status, code := http.StatusBadRequest, CodeBadRequest
				if errors.Is(err, corpus.ErrSessionClosed) {
					status, code = http.StatusConflict, CodeSessionClosed
				}
				writeErr(w, status, code, err)
				return
			}
		case capture.FrameClose:
			id, created, err := st.sess.Close()
			if err != nil {
				if errors.Is(err, corpus.ErrInvalidTrace) {
					// Empty session: Close removed it; drop the wire state too.
					s.dropStream(st.sess.ID())
					writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
					return
				}
				// Finalization failed (e.g. disk full): Close reopened the
				// session, so keep the wire state — the client's retried
				// close frame can still succeed.
				writeErr(w, http.StatusInternalServerError, CodeInternal, err)
				return
			}
			m, err := s.store.Meta(id)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, CodeInternal, err)
				return
			}
			info := capture.StreamTraceInfo{
				ID: m.ID, Name: m.Name, Entries: m.Entries, Created: created,
			}
			s.finishStream(st.sess.ID(), info)
			ack.Trace = &info
		default:
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("unknown stream frame %q", fr.Frame))
			return
		}
	}
	ack.Entries = st.sess.Len()
	if ack.Trace != nil {
		ack.Entries = ack.Trace.Entries
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleSessions lists the open capture sessions.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Sessions())
}

// handleGetSession reports one open session — clients also use the
// entry count as their resume point after a dropped stream.
func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.Session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

// handleAbortSession discards an open session without storing anything.
func (s *Server) handleAbortSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.Session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	sess.Abort()
	s.dropStream(sess.ID())
	writeJSON(w, http.StatusOK, map[string]string{"status": "aborted", "session": sess.ID()})
}

// sessionRefPrefix marks a source value as a live session reference in
// /diff and /run requests: "session:<id>" instead of a content digest.
const sessionRefPrefix = "session:"

// sourceRef resolves a trace reference from a request — a 64-hex content
// digest, a git-style short digest prefix (≥ 4 hex chars, resolved when
// unique), or "session:<id>" naming a live capture session — to an
// engine source. The returned label is the reference itself, used in
// wire responses where stored traces show their digest.
func (s *Server) sourceRef(val string) (rprism.Source, error) {
	if id, ok := strings.CutPrefix(val, sessionRefPrefix); ok {
		sess, err := s.store.Session(id)
		if err != nil {
			return nil, err
		}
		return rprism.FromSession(sess), nil
	}
	d, err := trace.ParseDigest(val)
	if err != nil {
		// Not a full digest — try it as a short prefix against the store.
		if rid, rerr := s.store.ResolvePrefix(val); rerr == nil {
			return rprism.FromCorpus(rid), nil
		} else if errors.Is(rerr, corpus.ErrNotFound) {
			return nil, rerr
		}
		return nil, fmt.Errorf("%q is neither a trace digest nor a session:<id> reference: %w", val, err)
	}
	return rprism.FromCorpus(d), nil
}
