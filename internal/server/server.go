// Package server exposes the trace corpus and the analysis pipeline over
// an HTTP JSON API — the long-running service face of the repo
// (rprism-serve). Traces are uploaded once in the gob format written by
// `rprism trace`, then addressed by content digest for any number of
// view, diff, and regression queries; heavy analysis work runs under a
// bounded worker pool so a burst of requests degrades to queueing, not
// to unbounded goroutines each building webs.
//
// Endpoints:
//
//	PUT  /traces                 upload a trace (body: gob trace file)
//	GET  /traces                 list stored traces
//	GET  /traces/{id}            metadata of one trace
//	GET  /traces/{id}/views      view-web summary (counts + largest views)
//	GET  /diff?left=&right=      views-based diff of two stored traces
//	POST /analyze                four-trace regression protocol (JSON body)
//	GET  /stats                  corpus, cache, symbol-table, server stats
//	GET  /healthz                liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/regression"
	"repro/internal/trace"
)

// Options configure a Server.
type Options struct {
	// Workers bounds concurrently executing heavy analyses (view builds,
	// diffs, regressions). Default 4.
	Workers int
	// MaxUploadBytes caps PUT /traces request bodies (default 256 MiB).
	MaxUploadBytes int64
	// QueueTimeout is how long a request waits for a worker slot before
	// 503 (default 30s).
	QueueTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 256 << 20
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 30 * time.Second
	}
	return o
}

// Server serves the corpus. Create with New, mount via Handler.
type Server struct {
	store *corpus.Store
	opts  Options
	sem   chan struct{}

	requests atomic.Int64
	rejected atomic.Int64 // queue-timeout 503s
}

// New wraps a corpus store in a server.
func New(store *corpus.Store, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		store: store,
		opts:  opts,
		sem:   make(chan struct{}, opts.Workers),
	}
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /traces", s.handlePutTrace)
	mux.HandleFunc("POST /traces", s.handlePutTrace)
	mux.HandleFunc("GET /traces", s.handleListTraces)
	mux.HandleFunc("GET /traces/{id}", s.handleGetTrace)
	mux.HandleFunc("GET /traces/{id}/views", s.handleGetViews)
	mux.HandleFunc("GET /diff", s.handleDiff)
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// ListenAndServe runs the server until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// grace to finish.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(ctx, ln, grace)
}

// Serve runs the server on an existing listener until ctx is canceled,
// then shuts down gracefully within the grace period. The listener is
// closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}

// acquire claims a worker slot, failing with 503 if none frees up within
// the queue timeout (or the client goes away first).
func (s *Server) acquire(r *http.Request) error {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.QueueTimeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.rejected.Add(1)
		return fmt.Errorf("analysis queue full (workers=%d)", s.opts.Workers)
	}
}

func (s *Server) release() { <-s.sem }

// ---- wire types ----

// TraceInfo is the JSON form of a stored trace's metadata.
type TraceInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Entries  int    `json:"entries"`
	Segments int    `json:"segments"`
	Created  bool   `json:"created,omitempty"` // false: deduplicated
}

// ViewsSummary summarizes a trace's view web.
type ViewsSummary struct {
	ID     string      `json:"id"`
	Counts ViewCounts  `json:"counts"`
	Views  []ViewEntry `json:"views,omitempty"`
}

// ViewCounts mirrors views.Counts.
type ViewCounts struct {
	Total        int `json:"total"`
	Thread       int `json:"thread"`
	Method       int `json:"method"`
	TargetObject int `json:"target_object"`
	ActiveObject int `json:"active_object"`
}

// ViewEntry names one view and its size.
type ViewEntry struct {
	Type    string `json:"type"`
	Key     string `json:"key"`
	Entries int    `json:"entries"`
}

// DiffSequence is one difference sequence, entries rendered.
type DiffSequence struct {
	Kind  string   `json:"kind"`
	Left  []string `json:"left,omitempty"`
	Right []string `json:"right,omitempty"`
}

// DiffResponse is the wire form of a diff result.
type DiffResponse struct {
	Left          string         `json:"left"`
	Right         string         `json:"right"`
	NumDiffs      int            `json:"num_diffs"`
	DiffLeft      int            `json:"diff_left"`
	DiffRight     int            `json:"diff_right"`
	NumSequences  int            `json:"num_sequences"`
	Sequences     []DiffSequence `json:"sequences"`
	MoreSequences int            `json:"more_sequences,omitempty"`
	Compares      int64          `json:"compares"`
	Explorations  int64          `json:"explorations"`
}

// AnalyzeRequest is the four-trace regression protocol by digest.
type AnalyzeRequest struct {
	OrigCorrect string `json:"orig_correct"`
	NewCorrect  string `json:"new_correct"`
	OrigRegr    string `json:"orig_regr"`
	NewRegr     string `json:"new_regr"`
	Removal     bool   `json:"removal,omitempty"`
	MaxSeqs     int    `json:"max_sequences,omitempty"`
}

// AnalyzeResponse reports the candidate set.
type AnalyzeResponse struct {
	Sizes      regression.SetSizes `json:"sizes"`
	Candidates int                 `json:"candidates"`
	Related    []int               `json:"related_sequences"`
	Report     string              `json:"report"`
}

// StatsResponse aggregates every statistics source.
type StatsResponse struct {
	Corpus  corpus.Stats      `json:"corpus"`
	Symbols trace.SymbolStats `json:"symbols"`
	Server  ServerStats       `json:"server"`
}

// ServerStats counts request handling.
type ServerStats struct {
	Workers  int   `json:"workers"`
	InFlight int   `json:"in_flight"`
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handlePutTrace(w http.ResponseWriter, r *http.Request) {
	// Uploads go through the worker pool too: decoding holds a full
	// trace in memory and Put serializes on the store's write lock, so
	// a burst must queue-then-503 like any other heavy request.
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	t, err := trace.ReadFrom(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("trace exceeds the %d-byte upload limit", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("body is not a gob trace (write one with 'rprism trace'): %w", err))
		return
	}
	if t.Len() == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("refusing to store an empty trace"))
		return
	}
	id, created, err := s.store.Put(t)
	if err != nil {
		if errors.Is(err, corpus.ErrInvalidTrace) {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	m, err := s.store.Meta(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, TraceInfo{
		ID: m.ID, Name: m.Name, Entries: m.Entries, Segments: m.Segments, Created: created,
	})
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	metas := s.store.List()
	out := make([]TraceInfo, len(metas))
	for i, m := range metas {
		out[i] = TraceInfo{ID: m.ID, Name: m.Name, Entries: m.Entries, Segments: m.Segments}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id, ok := s.pathDigest(w, r)
	if !ok {
		return
	}
	m, err := s.store.Meta(id)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TraceInfo{ID: m.ID, Name: m.Name, Entries: m.Entries, Segments: m.Segments})
}

func (s *Server) handleGetViews(w http.ResponseWriter, r *http.Request) {
	id, ok := s.pathDigest(w, r)
	if !ok {
		return
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()
	web, err := s.store.Views(id)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	c := web.Count()
	resp := ViewsSummary{
		ID: id.String(),
		Counts: ViewCounts{Total: c.Total, Thread: c.Thread, Method: c.Method,
			TargetObject: c.TargetObject, ActiveObject: c.ActiveObject},
	}
	// Largest views first (Names() order breaks size ties, keeping the
	// listing deterministic), truncated to ?max=.
	for _, n := range web.Names() {
		resp.Views = append(resp.Views, ViewEntry{
			Type: n.Type.String(), Key: n.KeyString(), Entries: web.View(n).Len(),
		})
	}
	sort.SliceStable(resp.Views, func(i, j int) bool {
		return resp.Views[i].Entries > resp.Views[j].Entries
	})
	if maxViews := intQuery(r, "max", 50); maxViews >= 0 && len(resp.Views) > maxViews {
		resp.Views = resp.Views[:maxViews]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	left, ok := queryDigest(w, r, "left")
	if !ok {
		return
	}
	right, ok := queryDigest(w, r, "right")
	if !ok {
		return
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()
	wl, err := s.store.Views(left)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	wr, err := s.store.Views(right)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	res := diff.ViewDiffWebs(wl, wr, diff.ViewOptions{})
	writeJSON(w, http.StatusOK, diffResponse(left, right, res, intQuery(r, "max", 20)))
}

func diffResponse(left, right trace.Digest, res *diff.Result, maxSeqs int) DiffResponse {
	resp := DiffResponse{
		Left: left.String(), Right: right.String(),
		NumDiffs: res.NumDiffs(), DiffLeft: len(res.DiffLeft), DiffRight: len(res.DiffRight),
		NumSequences: len(res.Sequences),
		Sequences:    []DiffSequence{},
		Compares:     res.Stats.Compares, Explorations: res.Stats.ViewExplorations,
	}
	for i, seq := range res.Sequences {
		if maxSeqs >= 0 && i >= maxSeqs {
			resp.MoreSequences = len(res.Sequences) - maxSeqs
			break
		}
		ds := DiffSequence{Kind: seq.Kind.String()}
		for _, eid := range seq.Left {
			ds.Left = append(ds.Left, res.Left.Entries[eid].String())
		}
		for _, eid := range seq.Right {
			ds.Right = append(ds.Right, res.Right.Entries[eid].String())
		}
		resp.Sequences = append(resp.Sequences, ds)
	}
	return resp
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	parse := func(field, v string) (trace.Digest, bool) {
		d, err := trace.ParseDigest(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("field %q: %w", field, err))
			return d, false
		}
		return d, true
	}
	oc, ok := parse("orig_correct", req.OrigCorrect)
	if !ok {
		return
	}
	nc, ok := parse("new_correct", req.NewCorrect)
	if !ok {
		return
	}
	or, ok := parse("orig_regr", req.OrigRegr)
	if !ok {
		return
	}
	nr, ok := parse("new_regr", req.NewRegr)
	if !ok {
		return
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()
	var webs regression.Webs
	var err error
	if webs.OrigCorrect, err = s.store.Views(oc); err == nil {
		if webs.NewCorrect, err = s.store.Views(nc); err == nil {
			if webs.OrigRegr, err = s.store.Views(or); err == nil {
				webs.NewRegr, err = s.store.Views(nr)
			}
		}
	}
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	an, err := regression.AnalyzeWebs(webs, req.Removal, diff.ViewOptions{})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	maxSeqs := req.MaxSeqs
	if maxSeqs == 0 {
		maxSeqs = 10
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Sizes:      an.Sizes,
		Candidates: len(an.D),
		Related:    append([]int{}, an.Related...),
		Report:     an.Report(maxSeqs),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Corpus:  s.store.Stats(),
		Symbols: trace.GlobalSymbolStats(),
		Server: ServerStats{
			Workers:  s.opts.Workers,
			InFlight: len(s.sem),
			Requests: s.requests.Load(),
			Rejected: s.rejected.Load(),
		},
	})
}

// ---- helpers ----

func (s *Server) pathDigest(w http.ResponseWriter, r *http.Request) (trace.Digest, bool) {
	d, err := trace.ParseDigest(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return d, false
	}
	return d, true
}

func queryDigest(w http.ResponseWriter, r *http.Request, key string) (trace.Digest, bool) {
	v := r.URL.Query().Get(key)
	if v == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query parameter %q", key))
		return trace.Digest{}, false
	}
	d, err := trace.ParseDigest(v)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parameter %q: %w", key, err))
		return d, false
	}
	return d, true
}

func intQuery(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func writeStoreErr(w http.ResponseWriter, err error) {
	if errors.Is(err, corpus.ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeErr(w, http.StatusInternalServerError, err)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}
