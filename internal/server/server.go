// Package server exposes the trace corpus and the analysis engine over
// an HTTP JSON API — the long-running service face of the repo
// (rprism-serve). Traces are uploaded once in any trace file format
// (RSEG, gob, or JSONL — the encoding is sniffed) as written by
// `rprism trace`, then addressed by content digest for any number of
// analysis queries; heavy work runs under a bounded worker pool so a
// burst of requests degrades to queueing, not to unbounded goroutines
// each building webs, and every analysis runs under the request's
// context (plus an optional server-side deadline) so canceled or
// runaway requests stop burning CPU.
//
// Analyses dispatch through the rprism registry: any analysis registered
// with rprism.Register is served at POST /run/{analysis} and listed by
// GET /analyses without touching this package.
//
// Diff-flavored analyses additionally parallelize inside one request:
// the engine evaluates correlated thread-view pairs on intra-diff
// workers (rprism.WithDiffParallelism, or a per-request "parallelism"
// param) drawn from the same slot budget as the engine's worker bound,
// so a busy server degrades diffs toward serial instead of
// oversubscribing the machine. GET /stats reports the configured
// default.
//
// Live capture streams in through POST /traces/stream (the NDJSON
// segment-frame protocol of internal/capture): frames build append-open
// corpus sessions whose view webs extend incrementally, so analyses can
// reference a still-running program as "session:<id>" wherever a trace
// digest is accepted; the stream's close frame finalizes the session
// into an ordinary content-addressed trace.
//
// Watches (POST /watches) attach always-on regression sentinels to live
// sessions: the sentinel re-diffs the session against a pinned baseline
// incrementally after every appended segment, and the first non-empty
// candidate set emits a structured divergence event to the watch's SSE
// stream (GET /watches/{id}/events) and optional webhook. See
// internal/sentinel for the event model and delivery semantics.
//
// Endpoints:
//
//	PUT  /traces                 upload a trace (body: any trace file format)
//	POST /traces/stream          stream live capture frames (NDJSON)
//	GET  /traces                 list stored traces
//	GET  /traces/{id}            metadata of one trace
//	GET  /traces/{id}/views      view-web summary (counts + largest views)
//	GET  /sessions               list open capture sessions
//	GET  /sessions/{id}          one session (entry count = resume point)
//	DELETE /sessions/{id}        abort a session without storing it
//	GET  /analyses               list registered analyses
//	POST /run/{analysis}         run any registered analysis (JSON body)
//	GET  /diff?left=&right=      views-based diff (digests or session:<id>)
//	POST /analyze                four-trace regression protocol (JSON body)
//	POST /watches                attach a sentinel watch to a session (JSON body)
//	GET  /watches                list attached watches
//	GET  /watches/{id}           one watch (divergence + evaluation state)
//	DELETE /watches/{id}         detach a watch (emits terminal event)
//	GET  /watches/{id}/events    per-watch SSE event stream (?after=N replay)
//	GET  /stats                  corpus, cache, symbol, session, sentinel, server stats
//	GET  /index/stats            similarity-index coverage (sketches, LSH buckets, provenance)
//	GET  /healthz                liveness + open-session counts
//
// Corpus-scale analyses (search, cluster, flaky) dispatch through the
// same generic POST /run/{analysis} endpoint; trace references there
// and on /diff also accept git-style short digest prefixes.
//
// Every error response is the JSON envelope
// {"error": {"code": "...", "message": "..."}} — including the 404/405
// responses the routing layer itself produces.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	rprism "repro"
	"repro/internal/capture"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/metrics"
	"repro/internal/regression"
	"repro/internal/trace"
)

// Options configure a Server.
type Options struct {
	// Workers bounds concurrently executing heavy analyses (view builds,
	// diffs, regressions). Default 4.
	Workers int
	// MaxUploadBytes caps PUT /traces request bodies (default 256 MiB).
	MaxUploadBytes int64
	// QueueTimeout is how long a request waits for a worker slot before
	// 503 (default 30s).
	QueueTimeout time.Duration
	// RequestTimeout caps one analysis request's execution once it holds
	// a worker slot; exceeding it aborts the analysis mid-loop (the
	// engine honors the context in its hot paths) and returns 504.
	// Zero means no server-side deadline.
	RequestTimeout time.Duration
	// Cluster, when non-nil, runs the server as one node of a
	// digest-sharded ring: requests for traces another node owns
	// forward there (one hop), /cluster/stats aggregates the ring, and
	// every response names the serving node in X-Rprism-Node. The
	// corpus should share a blob bucket with the other nodes — the
	// bucket is the fallback when an owner is down.
	Cluster *cluster.Cluster
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 256 << 20
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 30 * time.Second
	}
	return o
}

// Server serves the engine's corpus and analyses. Create with New, mount
// via Handler.
type Server struct {
	eng   *rprism.Engine
	store *corpus.Store
	opts  Options
	sem   chan struct{}

	// streams maps open capture-session ids to their wire decoders
	// (the protocol state of POST /traces/stream; the sessions
	// themselves live in the corpus store). finished holds bounded
	// tombstones of finalized sessions so retried close requests are
	// answered idempotently instead of 404ing.
	streamMu      sync.Mutex
	streams       map[string]*streamState
	finished      map[string]capture.StreamTraceInfo
	finishedOrder []string

	// cl is the node's cluster view (nil outside cluster mode);
	// prefetchSem serializes the warm-hint prefetcher (see cluster.go).
	cl          *cluster.Cluster
	prefetchSem chan struct{}

	requests atomic.Int64
	rejected atomic.Int64 // queue-timeout 503s
	timeouts atomic.Int64 // request-deadline 504s
}

// New wraps an analysis engine in a server. The engine must be
// corpus-backed (rprism.WithCorpus): uploads land in its store and
// digest-addressed sources resolve through it.
func New(eng *rprism.Engine, opts Options) *Server {
	store := eng.Corpus()
	if store == nil {
		panic("server: engine has no corpus (construct it rprism.WithCorpus)")
	}
	opts = opts.withDefaults()
	return &Server{
		eng:         eng,
		store:       store,
		opts:        opts,
		sem:         make(chan struct{}, opts.Workers),
		streams:     make(map[string]*streamState),
		cl:          opts.Cluster,
		prefetchSem: make(chan struct{}, 1),
	}
}

// Engine returns the server's engine.
func (s *Server) Engine() *rprism.Engine { return s.eng }

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /traces", s.handlePutTrace)
	mux.HandleFunc("POST /traces", s.handlePutTrace)
	mux.HandleFunc("POST /traces/stream", s.handleStream)
	mux.HandleFunc("GET /traces", s.handleListTraces)
	mux.HandleFunc("GET /traces/{id}", s.handleGetTrace)
	mux.HandleFunc("GET /traces/{id}/views", s.handleGetViews)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleAbortSession)
	mux.HandleFunc("GET /analyses", s.handleAnalyses)
	mux.HandleFunc("POST /run/{analysis}", s.handleRun)
	mux.HandleFunc("GET /diff", s.handleDiff)
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("POST /watches", s.handleCreateWatch)
	mux.HandleFunc("GET /watches", s.handleListWatches)
	mux.HandleFunc("GET /watches/{id}", s.handleGetWatch)
	mux.HandleFunc("DELETE /watches/{id}", s.handleDeleteWatch)
	mux.HandleFunc("GET /watches/{id}/events", s.handleWatchEvents)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /cluster/stats", s.handleClusterStats)
	mux.HandleFunc("GET /index/stats", s.handleIndexStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		sessions := s.store.Sessions()
		entries := 0
		for _, info := range sessions {
			entries += info.Entries
		}
		writeJSON(w, http.StatusOK, HealthResponse{
			Status:         "ok",
			NodeID:         s.nodeID(),
			OpenSessions:   len(sessions),
			SessionEntries: entries,
		})
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if s.cl != nil {
			// Name the serving node on every response; a forwarded
			// response overwrites this with the peer that actually served.
			w.Header().Set(cluster.NodeHeader, s.cl.Self().ID)
		}
		// The mux's own 404/405 responses are plain text; interpose so
		// every error that leaves this server wears the JSON envelope.
		mux.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

// jsonErrorWriter rewrites plain-text error responses originating in the
// routing layer (404 page not found, 405 method not allowed) into the
// standard JSON envelope. Handler-produced errors already set an
// application/json content type and pass through untouched.
type jsonErrorWriter struct {
	http.ResponseWriter
	intercepted bool
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		w.Header().Get("Content-Type") != "application/json" {
		w.intercepted = true
		code, msg := "not_found", "no such endpoint"
		if status == http.StatusMethodNotAllowed {
			code, msg = "method_not_allowed", "method not allowed for this endpoint"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(status)
		_ = json.NewEncoder(w.ResponseWriter).Encode(errorResponse{Error: ErrorBody{Code: code, Message: msg}})
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		return len(b), nil // swallow the plain-text body; the envelope is out
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush — SSE streaming depends on it.
func (w *jsonErrorWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ListenAndServe runs the server until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// grace to finish.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(ctx, ln, grace)
}

// Serve runs the server on an existing listener until ctx is canceled,
// then shuts down gracefully within the grace period. The listener is
// closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Detach watches first: each emits its terminal event, so open SSE
	// streams drain and end instead of pinning Shutdown until the grace
	// deadline. Pending webhook deliveries also finish here.
	s.eng.Close()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}

// acquire claims a worker slot, failing with 503 if none frees up within
// the queue timeout (or the client goes away first).
func (s *Server) acquire(r *http.Request) error {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.QueueTimeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.rejected.Add(1)
		return fmt.Errorf("analysis queue full (workers=%d)", s.opts.Workers)
	}
}

func (s *Server) release() { <-s.sem }

// analysisCtx derives the context an analysis runs under: the request's
// own (canceled when the client disconnects) plus the server-side
// deadline, when configured.
func (s *Server) analysisCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

// ---- wire types ----

// TraceInfo is the JSON form of a stored trace's metadata.
type TraceInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Entries  int    `json:"entries"`
	Segments int    `json:"segments"`
	Created  bool   `json:"created,omitempty"` // false: deduplicated
}

// ViewsSummary summarizes a trace's view web.
type ViewsSummary struct {
	ID     string      `json:"id"`
	Counts ViewCounts  `json:"counts"`
	Views  []ViewEntry `json:"views,omitempty"`
}

// ViewCounts mirrors views.Counts.
type ViewCounts struct {
	Total        int `json:"total"`
	Thread       int `json:"thread"`
	Method       int `json:"method"`
	TargetObject int `json:"target_object"`
	ActiveObject int `json:"active_object"`
}

// ViewEntry names one view and its size.
type ViewEntry struct {
	Type    string `json:"type"`
	Key     string `json:"key"`
	Entries int    `json:"entries"`
}

// DiffSequence is one difference sequence, entries rendered.
type DiffSequence struct {
	Kind  string   `json:"kind"`
	Left  []string `json:"left,omitempty"`
	Right []string `json:"right,omitempty"`
}

// DiffResponse is the wire form of a diff result.
type DiffResponse struct {
	Left          string         `json:"left"`
	Right         string         `json:"right"`
	NumDiffs      int            `json:"num_diffs"`
	DiffLeft      int            `json:"diff_left"`
	DiffRight     int            `json:"diff_right"`
	NumSequences  int            `json:"num_sequences"`
	Sequences     []DiffSequence `json:"sequences"`
	MoreSequences int            `json:"more_sequences,omitempty"`
	Compares      int64          `json:"compares"`
	Explorations  int64          `json:"explorations"`
}

// AnalyzeRequest is the four-trace regression protocol by digest.
type AnalyzeRequest struct {
	OrigCorrect string `json:"orig_correct"`
	NewCorrect  string `json:"new_correct"`
	OrigRegr    string `json:"orig_regr"`
	NewRegr     string `json:"new_regr"`
	Removal     bool   `json:"removal,omitempty"`
	MaxSeqs     int    `json:"max_sequences,omitempty"`
}

// AnalyzeResponse reports the candidate set.
type AnalyzeResponse struct {
	Sizes      regression.SetSizes `json:"sizes"`
	Candidates int                 `json:"candidates"`
	Related    []int               `json:"related_sequences"`
	Report     string              `json:"report"`
}

// RunRequest is the generic invocation body of POST /run/{analysis}:
// role-named trace digests plus analysis-specific params passed through
// to the registry verbatim.
type RunRequest struct {
	Traces  map[string]string `json:"traces"`
	Params  json.RawMessage   `json:"params,omitempty"`
	MaxSeqs int               `json:"max_sequences,omitempty"`
}

// RunResponse wraps a registered analysis's result when it has no
// dedicated wire form.
type RunResponse struct {
	Analysis string `json:"analysis"`
	Result   any    `json:"result"`
}

// HealthResponse is the /healthz liveness payload, including the live
// ingestion picture at a glance.
type HealthResponse struct {
	Status         string `json:"status"`
	NodeID         string `json:"node_id,omitempty"`
	OpenSessions   int    `json:"open_sessions"`
	SessionEntries int    `json:"session_entries"`
}

// StatsResponse aggregates every statistics source.
type StatsResponse struct {
	Corpus  corpus.Stats      `json:"corpus"`
	Symbols trace.SymbolStats `json:"symbols"`
	Server  ServerStats       `json:"server"`
	// Sessions lists the open capture sessions with per-session entry
	// counts (always present, [] when none are open).
	Sessions []corpus.SessionInfo `json:"sessions"`
	// Sentinel counts watch activity: attached watches, evaluations run
	// and coalesced, the dirty-pair ratio of incremental re-diffs,
	// divergences, and webhook deliveries.
	Sentinel metrics.SentinelSnapshot `json:"sentinel"`
	// Cluster is present only in cluster mode: this node's identity and
	// its forwarding/fallback/prefetch counters.
	Cluster *ClusterInfo `json:"cluster,omitempty"`
}

// ServerStats counts request handling.
type ServerStats struct {
	Workers int `json:"workers"`
	// DiffParallelism is the engine's default intra-diff worker count
	// (0 = GOMAXPROCS). Per-request "parallelism" params and the shared
	// worker budget can both lower what a given diff actually gets.
	DiffParallelism int   `json:"diff_parallelism"`
	InFlight        int   `json:"in_flight"`
	Requests        int64 `json:"requests"`
	Rejected        int64 `json:"rejected"`
	Timeouts        int64 `json:"timeouts"`
}

// ErrorBody is the uniform error payload: a stable machine-readable code
// plus a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// Error codes used across all endpoints.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeTooLarge        = "too_large"
	CodeQueueFull       = "queue_full"
	CodeTimeout         = "timeout"
	CodeCanceled        = "canceled"
	CodeInternal        = "internal"
	CodeUnknownAnaly    = "unknown_analysis"
	CodeSessionClosed   = "session_closed"
	CodeTooManySessions = "too_many_sessions"
)

// ---- handlers ----

func (s *Server) handlePutTrace(w http.ResponseWriter, r *http.Request) {
	// Uploads go through the worker pool too: decoding holds a full
	// trace in memory and Put serializes on the store's write lock, so
	// a burst must queue-then-503 like any other heavy request.
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	}
	defer s.release()
	// Buffered (not streamed) so cluster mode can replay the exact body
	// to the digest owner once the digest is known.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("trace exceeds the %d-byte upload limit", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("reading upload: %w", err))
		return
	}
	t, err := trace.ReadAny("upload", bytes.NewReader(raw))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("body is not a trace file (write one with 'rprism trace'): %w", err))
		return
	}
	if t.Len() == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("refusing to store an empty trace"))
		return
	}
	if s.cl != nil {
		t.EnsureSyms()
		if s.maybeForward(w, r, raw, t.ComputeDigest().String()) {
			return
		}
	}
	id, created, err := s.store.Put(t)
	if err != nil {
		if errors.Is(err, corpus.ErrInvalidTrace) {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	m, err := s.store.Meta(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, TraceInfo{
		ID: m.ID, Name: m.Name, Entries: m.Entries, Segments: m.Segments, Created: created,
	})
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	metas := s.store.List()
	if s.store.HasBlob() {
		// With a blob tier, the listing is the whole shared corpus —
		// bucket-resident traces included — so every node of a cluster
		// reports the same inventory. A bucket outage degrades to the
		// local view rather than failing the listing.
		if all, err := s.store.ListAll(r.Context()); err == nil {
			metas = all
		}
	}
	out := make([]TraceInfo, len(metas))
	for i, m := range metas {
		out[i] = TraceInfo{ID: m.ID, Name: m.Name, Entries: m.Entries, Segments: m.Segments}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id, ok := s.pathDigest(w, r)
	if !ok {
		return
	}
	if s.maybeForward(w, r, nil, id.String()) {
		return
	}
	m, err := s.store.Meta(id)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TraceInfo{ID: m.ID, Name: m.Name, Entries: m.Entries, Segments: m.Segments})
}

func (s *Server) handleGetViews(w http.ResponseWriter, r *http.Request) {
	id, ok := s.pathDigest(w, r)
	if !ok {
		return
	}
	if s.maybeForward(w, r, nil, id.String()) {
		return
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	}
	defer s.release()
	ctx, cancel := s.analysisCtx(r)
	defer cancel()
	web, err := s.eng.Views(ctx, rprism.FromCorpus(id))
	if err != nil {
		s.writeAnalysisErr(w, err)
		return
	}
	c := web.Count()
	resp := ViewsSummary{
		ID: id.String(),
		Counts: ViewCounts{Total: c.Total, Thread: c.Thread, Method: c.Method,
			TargetObject: c.TargetObject, ActiveObject: c.ActiveObject},
	}
	// Largest views first (Names() order breaks size ties, keeping the
	// listing deterministic), truncated to ?max=.
	for _, n := range web.Names() {
		resp.Views = append(resp.Views, ViewEntry{
			Type: n.Type.String(), Key: n.KeyString(), Entries: web.View(n).Len(),
		})
	}
	sort.SliceStable(resp.Views, func(i, j int) bool {
		return resp.Views[i].Entries > resp.Views[j].Entries
	})
	if maxViews := intQuery(r, "max", 50); maxViews >= 0 && len(resp.Views) > maxViews {
		resp.Views = resp.Views[:maxViews]
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAnalyses lists the registered analyses — service discovery for
// generic clients.
func (s *Server) handleAnalyses(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rprism.Analyses())
}

// handleRun is the generic analysis endpoint: any analysis in the
// rprism registry, invoked with role-named corpus digests. Results with
// a dedicated wire form (diff, regression) render exactly as their
// legacy endpoints do; anything else is marshaled verbatim inside a
// RunResponse.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("analysis")
	if _, ok := rprism.LookupAnalysis(name); !ok {
		writeErr(w, http.StatusNotFound, CodeUnknownAnaly,
			fmt.Errorf("unknown analysis %q (GET /analyses lists the registered ones)", name))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var req RunRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if s.cl != nil {
		// Route by the request's trace refs, role order made deterministic
		// so every node picks the same owning digest.
		roles := make([]string, 0, len(req.Traces))
		for role := range req.Traces {
			roles = append(roles, role)
		}
		sort.Strings(roles)
		refs := make([]string, len(roles))
		for i, role := range roles {
			refs[i] = req.Traces[role]
		}
		if s.maybeForward(w, r, raw, refs...) {
			return
		}
	}
	sources := make(map[string]rprism.Source, len(req.Traces))
	labels := make(map[string]string, len(req.Traces))
	for role, raw := range req.Traces {
		src, err := s.sourceRef(raw)
		if err != nil {
			if errors.Is(err, corpus.ErrSessionNotFound) || errors.Is(err, corpus.ErrNotFound) {
				writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("trace %q: %w", role, err))
				return
			}
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("trace %q: %w", role, err))
			return
		}
		sources[role] = src
		labels[role] = raw
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	}
	defer s.release()
	ctx, cancel := s.analysisCtx(r)
	defer cancel()
	out, err := s.eng.RunAnalysis(ctx, name, rprism.AnalysisRequest{Sources: sources, Params: req.Params})
	if err != nil {
		s.writeAnalysisErr(w, err)
		return
	}
	maxSeqs := req.MaxSeqs
	left, hasLeft := labels["left"]
	right, hasRight := labels["right"]
	switch v := out.(type) {
	// The dedicated diff wire form names the compared traces (digests or
	// session references), so it only applies when the request actually
	// used the left/right roles; a custom analysis with other roles falls
	// through to the generic wrapper rather than reporting empty labels.
	case *rprism.DiffResult:
		if !hasLeft || !hasRight {
			writeJSON(w, http.StatusOK, RunResponse{Analysis: name, Result: v})
			return
		}
		if maxSeqs == 0 {
			maxSeqs = 20
		}
		writeJSON(w, http.StatusOK, diffResponse(left, right, v, maxSeqs))
	case *rprism.RegressionAnalysis:
		if _, ok := labels["orig_correct"]; !ok {
			// Same role guard as the diff case: the dedicated wire form
			// belongs to requests shaped like the four-trace protocol.
			writeJSON(w, http.StatusOK, RunResponse{Analysis: name, Result: v})
			return
		}
		if maxSeqs == 0 {
			maxSeqs = 10
		}
		writeJSON(w, http.StatusOK, analyzeResponse(v, maxSeqs))
	default:
		writeJSON(w, http.StatusOK, RunResponse{Analysis: name, Result: v})
	}
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	// In cluster mode the left digest decides ownership: the owner holds
	// (or hydrates once) both operands' warm caches. Session references
	// pin the diff to the node holding the live session.
	if s.maybeForward(w, r, nil, r.URL.Query().Get("left"), r.URL.Query().Get("right")) {
		return
	}
	// Either side may be a stored digest or a live "session:<id>"
	// reference — diffing a still-running capture against a corpus
	// baseline is the live-debugging workflow.
	left, leftSrc, ok := s.querySource(w, r, "left")
	if !ok {
		return
	}
	right, rightSrc, ok := s.querySource(w, r, "right")
	if !ok {
		return
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	}
	defer s.release()
	ctx, cancel := s.analysisCtx(r)
	defer cancel()
	// The legacy endpoint is a thin alias of the registry's "diff"
	// analysis; both paths share one implementation and one wire form.
	out, err := s.eng.RunAnalysis(ctx, "diff", rprism.AnalysisRequest{
		Sources: map[string]rprism.Source{
			"left":  leftSrc,
			"right": rightSrc,
		},
	})
	if err != nil {
		s.writeAnalysisErr(w, err)
		return
	}
	res, ok := out.(*rprism.DiffResult)
	if !ok {
		// Register() permits replacing built-ins; a "diff" override with
		// a foreign result type must not panic the legacy alias.
		writeErr(w, http.StatusInternalServerError, CodeInternal,
			fmt.Errorf("analysis \"diff\" returned %T, not a diff result", out))
		return
	}
	// A completed diff hints the prefetcher: pull each operand's most
	// similar bucket-resident partners onto local disk before the likely
	// follow-up diff asks for them.
	var hints []trace.Digest
	for _, ref := range []string{left, right} {
		if d, err := trace.ParseDigest(ref); err == nil {
			hints = append(hints, d)
		}
	}
	s.warmHint(hints...)
	writeJSON(w, http.StatusOK, diffResponse(left, right, res, intQuery(r, "max", 20)))
}

func diffResponse(left, right string, res *diff.Result, maxSeqs int) DiffResponse {
	resp := DiffResponse{
		Left: left, Right: right,
		NumDiffs: res.NumDiffs(), DiffLeft: len(res.DiffLeft), DiffRight: len(res.DiffRight),
		NumSequences: len(res.Sequences),
		Sequences:    []DiffSequence{},
		Compares:     res.Stats.Compares, Explorations: res.Stats.ViewExplorations,
	}
	for i, seq := range res.Sequences {
		if maxSeqs >= 0 && i >= maxSeqs {
			resp.MoreSequences = len(res.Sequences) - maxSeqs
			break
		}
		ds := DiffSequence{Kind: seq.Kind.String()}
		for _, eid := range seq.Left {
			ds.Left = append(ds.Left, res.Left.Entries[eid].String())
		}
		for _, eid := range seq.Right {
			ds.Right = append(ds.Right, res.Right.Entries[eid].String())
		}
		resp.Sequences = append(resp.Sequences, ds)
	}
	return resp
}

func analyzeResponse(an *regression.Analysis, maxSeqs int) AnalyzeResponse {
	return AnalyzeResponse{
		Sizes:      an.Sizes,
		Candidates: len(an.D),
		Related:    append([]int{}, an.Related...),
		Report:     an.Report(maxSeqs),
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	sources := make(map[string]rprism.Source, 4)
	for _, f := range []struct{ field, ref string }{
		{"orig_correct", req.OrigCorrect},
		{"new_correct", req.NewCorrect},
		{"orig_regr", req.OrigRegr},
		{"new_regr", req.NewRegr},
	} {
		src, err := s.sourceRef(f.ref)
		if err != nil {
			if errors.Is(err, corpus.ErrSessionNotFound) || errors.Is(err, corpus.ErrNotFound) {
				writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("field %q: %w", f.field, err))
				return
			}
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("field %q: %w", f.field, err))
			return
		}
		sources[f.field] = src
	}
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	}
	defer s.release()
	ctx, cancel := s.analysisCtx(r)
	defer cancel()
	params, _ := json.Marshal(map[string]bool{"removal": req.Removal})
	out, err := s.eng.RunAnalysis(ctx, "regression", rprism.AnalysisRequest{
		Sources: sources,
		Params:  params,
	})
	if err != nil {
		s.writeAnalysisErr(w, err)
		return
	}
	an, ok := out.(*rprism.RegressionAnalysis)
	if !ok {
		writeErr(w, http.StatusInternalServerError, CodeInternal,
			fmt.Errorf("analysis \"regression\" returned %T, not a regression analysis", out))
		return
	}
	maxSeqs := req.MaxSeqs
	if maxSeqs == 0 {
		maxSeqs = 10
	}
	writeJSON(w, http.StatusOK, analyzeResponse(an, maxSeqs))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsResponse())
}

// statsResponse builds the /stats payload; /cluster/stats reuses it for
// the self node when aggregating across the ring.
func (s *Server) statsResponse() StatsResponse {
	sessions := s.store.Sessions()
	if sessions == nil {
		sessions = []corpus.SessionInfo{}
	}
	resp := StatsResponse{
		Corpus:   s.store.Stats(),
		Symbols:  s.eng.SymbolStats(),
		Sessions: sessions,
		Sentinel: s.eng.Sentinel().Counters().Snapshot(),
		Server: ServerStats{
			Workers:         s.opts.Workers,
			DiffParallelism: s.eng.DefaultDiffOptions().Parallelism,
			InFlight:        len(s.sem),
			Requests:        s.requests.Load(),
			Rejected:        s.rejected.Load(),
			Timeouts:        s.timeouts.Load(),
		},
	}
	if s.cl != nil {
		resp.Cluster = &ClusterInfo{
			NodeID:          s.cl.Self().ID,
			Peers:           len(s.cl.Peers()),
			ClusterSnapshot: s.cl.Counters().Snapshot(),
		}
	}
	return resp
}

// handleIndexStats reports similarity-index coverage: how many stored
// traces have resident sketches, the LSH bucket occupancy, and where
// the sketches came from (computed at Put, loaded from sidecars, or
// backfilled from trace entries).
func (s *Server) handleIndexStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.IndexStats())
}

// ---- helpers ----

func (s *Server) pathDigest(w http.ResponseWriter, r *http.Request) (trace.Digest, bool) {
	d, err := trace.ParseDigest(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return d, false
	}
	return d, true
}

// querySource resolves a query parameter holding a trace reference — a
// content digest or "session:<id>" — to an engine source plus its label
// for the response.
func (s *Server) querySource(w http.ResponseWriter, r *http.Request, key string) (string, rprism.Source, bool) {
	v := r.URL.Query().Get(key)
	if v == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("missing query parameter %q", key))
		return "", nil, false
	}
	src, err := s.sourceRef(v)
	if err != nil {
		if errors.Is(err, corpus.ErrSessionNotFound) || errors.Is(err, corpus.ErrNotFound) {
			writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("parameter %q: %w", key, err))
		} else {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("parameter %q: %w", key, err))
		}
		return "", nil, false
	}
	return v, src, true
}

func intQuery(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// writeAnalysisErr maps an engine/analysis error onto the envelope:
// store misses are 404, deadline expiry is 504, client cancellation a
// best-effort 499 (the client is usually gone), bad request payloads
// 400, everything else 500.
func (s *Server) writeAnalysisErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, corpus.ErrNotFound), errors.Is(err, corpus.ErrSessionNotFound):
		writeErr(w, http.StatusNotFound, CodeNotFound, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeErr(w, http.StatusGatewayTimeout, CodeTimeout,
			fmt.Errorf("analysis exceeded the %s request deadline", s.opts.RequestTimeout))
	case errors.Is(err, context.Canceled):
		writeErr(w, 499, CodeCanceled, errors.New("request canceled"))
	case errors.Is(err, rprism.ErrBadRequest):
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
	default:
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
	}
}

func writeStoreErr(w http.ResponseWriter, err error) {
	if errors.Is(err, corpus.ErrNotFound) {
		writeErr(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	writeErr(w, http.StatusInternalServerError, CodeInternal, err)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}
