package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rprism "repro"
	"repro/internal/corpus"
	"repro/internal/diff"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/regression"
	"repro/internal/subjects"
	"repro/internal/trace"
)

// tracePair runs the Rhino-like subject twice — once clean, once with the
// planted arithmetic bug — exactly like the CLI's own workloads.
func tracePair(t *testing.T) (*trace.Trace, *trace.Trace) {
	t.Helper()
	// Seed 11 makes the planted bug fire even on a short script (the
	// a%13/12 term needs an addition with a ≡ 12 mod 13 to diverge).
	script := subjects.GenScript(8, 11)
	run := func(src, name string) *trace.Trace {
		res, err := interp.Run(lang.MustParse(src), interp.Options{Args: []string{script}, TraceName: name})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Trace
	}
	good := run(subjects.RhinoSource(), "good")
	bad := run(strings.Replace(subjects.RhinoSource(),
		`if (sym.equals("+")) { return a + b; }`,
		`if (sym.equals("+")) { return a + b + a % 13 / 12; }`, 1), "bad")
	return good, bad
}

// gobBytes serializes a trace exactly as `rprism trace -out` would.
func gobBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(rprism.NewEngine(rprism.WithCorpus(store)), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// assertErrEnvelope requires raw to be the standard JSON error envelope
// {"error": {"code": ..., "message": ...}} and (when wantCode is
// non-empty) to carry the expected code.
func assertErrEnvelope(t *testing.T, raw, wantCode string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(raw), &env); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v\n%s", err, raw)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Errorf("envelope missing code or message: %s", raw)
	}
	if wantCode != "" && env.Error.Code != wantCode {
		t.Errorf("error code %q, want %q (message: %s)", env.Error.Code, wantCode, env.Error.Message)
	}
}

func doJSON(t *testing.T, method, url string, body []byte, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad JSON from %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func upload(t *testing.T, ts *httptest.Server, tr *trace.Trace) TraceInfo {
	t.Helper()
	var info TraceInfo
	status, raw := doJSON(t, http.MethodPut, ts.URL+"/traces", gobBytes(t, tr), &info)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("upload: status %d: %s", status, raw)
	}
	return info
}

// TestEndToEndDiffMatchesCLI is the acceptance path: upload two traces
// over HTTP and check GET /diff reports exactly the diff the CLI
// pipeline (gob load + rprism.Diff) produces on the same pair.
func TestEndToEndDiffMatchesCLI(t *testing.T) {
	good, bad := tracePair(t)
	ts, _ := newTestServer(t, Options{})

	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)
	if gi.ID == bi.ID {
		t.Fatal("distinct traces share a digest")
	}
	if !gi.Created || !bi.Created {
		t.Errorf("fresh uploads not marked created: %+v %+v", gi, bi)
	}
	if gi.Entries != good.Len() {
		t.Errorf("uploaded entry count %d, trace has %d", gi.Entries, good.Len())
	}

	// The CLI path: load the same serialized bytes and run the default
	// views-based diff, as `rprism diff -left good -right bad` does.
	l, err := trace.ReadFrom(bytes.NewReader(gobBytes(t, good)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.ReadFrom(bytes.NewReader(gobBytes(t, bad)))
	if err != nil {
		t.Fatal(err)
	}
	want := diff.ViewDiff(l, r, diff.ViewOptions{})

	var got DiffResponse
	status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s&max=-1", ts.URL, gi.ID, bi.ID), nil, &got)
	if status != http.StatusOK {
		t.Fatalf("diff: status %d: %s", status, raw)
	}
	if got.NumDiffs != want.NumDiffs() || got.DiffLeft != len(want.DiffLeft) || got.DiffRight != len(want.DiffRight) {
		t.Errorf("diff counts: got %d/%d/%d, CLI %d/%d/%d",
			got.NumDiffs, got.DiffLeft, got.DiffRight,
			want.NumDiffs(), len(want.DiffLeft), len(want.DiffRight))
	}
	if got.NumSequences != len(want.Sequences) || len(got.Sequences) != len(want.Sequences) {
		t.Fatalf("sequences: got %d (%d rendered), CLI %d",
			got.NumSequences, len(got.Sequences), len(want.Sequences))
	}
	if got.NumDiffs == 0 {
		t.Fatal("planted bug produced no differences")
	}
	for i, seq := range want.Sequences {
		g := got.Sequences[i]
		if g.Kind != seq.Kind.String() || len(g.Left) != len(seq.Left) || len(g.Right) != len(seq.Right) {
			t.Fatalf("sequence %d shape mismatch: %+v vs kind=%s %d/%d",
				i, g, seq.Kind, len(seq.Left), len(seq.Right))
		}
		for j, eid := range seq.Left {
			if g.Left[j] != want.Left.Entries[eid].String() {
				t.Fatalf("sequence %d left[%d]: %q vs %q", i, j, g.Left[j], want.Left.Entries[eid])
			}
		}
		for j, eid := range seq.Right {
			if g.Right[j] != want.Right.Entries[eid].String() {
				t.Fatalf("sequence %d right[%d]: %q vs %q", i, j, g.Right[j], want.Right.Entries[eid])
			}
		}
	}
}

func TestUploadDedupAndList(t *testing.T) {
	good, _ := tracePair(t)
	ts, _ := newTestServer(t, Options{})
	first := upload(t, ts, good)
	again := upload(t, ts, good)
	if again.Created {
		t.Error("re-upload marked created")
	}
	if first.ID != again.ID {
		t.Error("re-upload changed id")
	}
	var list []TraceInfo
	if status, raw := doJSON(t, http.MethodGet, ts.URL+"/traces", nil, &list); status != http.StatusOK {
		t.Fatalf("list: %d %s", status, raw)
	}
	if len(list) != 1 || list[0].ID != first.ID {
		t.Errorf("list = %+v", list)
	}
	var info TraceInfo
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/traces/"+first.ID, nil, &info); status != http.StatusOK {
		t.Fatal("GET /traces/{id} failed")
	}
	if info.Name != "good" {
		t.Errorf("trace name %q", info.Name)
	}
}

func TestViewsSummaryEndpoint(t *testing.T) {
	good, _ := tracePair(t)
	ts, _ := newTestServer(t, Options{})
	gi := upload(t, ts, good)
	var vs ViewsSummary
	status, raw := doJSON(t, http.MethodGet, ts.URL+"/traces/"+gi.ID+"/views?max=5", nil, &vs)
	if status != http.StatusOK {
		t.Fatalf("views: %d %s", status, raw)
	}
	if vs.Counts.Total == 0 || vs.Counts.Thread == 0 || vs.Counts.Method == 0 {
		t.Errorf("degenerate view counts: %+v", vs.Counts)
	}
	if len(vs.Views) != 5 {
		t.Errorf("max=5 returned %d views", len(vs.Views))
	}
	// Largest views first.
	for i := 1; i < len(vs.Views); i++ {
		if vs.Views[i].Entries > vs.Views[i-1].Entries {
			t.Errorf("views not sorted by size: %+v", vs.Views)
			break
		}
	}
}

func TestUploadRejectsNonDenseEIDs(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	tr := trace.New("evil")
	tr.Append(1, "M.m/0", trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: "M.m/0"})
	tr.Append(1, "M.m/0", trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: "M.m/0"})
	tr.Entries[1].EID = 1 << 20
	status, raw := doJSON(t, http.MethodPut, ts.URL+"/traces", gobBytes(t, tr), nil)
	if status != http.StatusBadRequest {
		t.Errorf("crafted EIDs: status %d: %s", status, raw)
	}
	assertErrEnvelope(t, raw, CodeBadRequest)
	if !strings.Contains(raw, "consecutive") {
		t.Errorf("unhelpful rejection: %s", raw)
	}
}

func TestUploadTooLargeIs413(t *testing.T) {
	good, _ := tracePair(t)
	ts, _ := newTestServer(t, Options{MaxUploadBytes: 1024})
	status, raw := doJSON(t, http.MethodPut, ts.URL+"/traces", gobBytes(t, good), nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d: %s", status, raw)
	}
	assertErrEnvelope(t, raw, CodeTooLarge)
}

func TestAnalyzeEndpointMatchesLibrary(t *testing.T) {
	good, bad := tracePair(t)
	ts, _ := newTestServer(t, Options{})
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)

	body, _ := json.Marshal(AnalyzeRequest{
		OrigCorrect: gi.ID, NewCorrect: gi.ID, OrigRegr: gi.ID, NewRegr: bi.ID,
	})
	var got AnalyzeResponse
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/analyze", body, &got)
	if status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, raw)
	}

	a := diff.ViewDiff(good, bad, diff.ViewOptions{})
	b := diff.ViewDiff(good, good, diff.ViewOptions{})
	c := diff.ViewDiff(good, bad, diff.ViewOptions{})
	want := regression.Combine(a, b, c, false)
	if got.Sizes != want.Sizes || got.Candidates != len(want.D) {
		t.Errorf("analyze: got sizes=%+v candidates=%d, want %+v %d",
			got.Sizes, got.Candidates, want.Sizes, len(want.D))
	}
	if got.Report == "" {
		t.Error("empty report")
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	good, _ := tracePair(t)
	gi := upload(t, ts, good)

	cases := []struct {
		name, method, url string
		body              []byte
		want              int
		code              string
	}{
		{"junk upload", http.MethodPut, ts.URL + "/traces", []byte("not a trace"), http.StatusBadRequest, CodeBadRequest},
		{"bad digest", http.MethodGet, ts.URL + "/traces/zzzz", nil, http.StatusBadRequest, CodeBadRequest},
		{"unknown trace", http.MethodGet, ts.URL + "/traces/" + strings.Repeat("ab", 32), nil, http.StatusNotFound, CodeNotFound},
		{"unknown views", http.MethodGet, ts.URL + "/traces/" + strings.Repeat("ab", 32) + "/views", nil, http.StatusNotFound, CodeNotFound},
		{"diff missing param", http.MethodGet, ts.URL + "/diff?left=" + gi.ID, nil, http.StatusBadRequest, CodeBadRequest},
		{"diff unknown right", http.MethodGet,
			ts.URL + "/diff?left=" + gi.ID + "&right=" + strings.Repeat("cd", 32), nil, http.StatusNotFound, CodeNotFound},
		{"analyze bad body", http.MethodPost, ts.URL + "/analyze", []byte("{"), http.StatusBadRequest, CodeBadRequest},
		{"analyze bad digest", http.MethodPost, ts.URL + "/analyze",
			[]byte(`{"orig_correct":"xx","new_correct":"xx","orig_regr":"xx","new_regr":"xx"}`),
			http.StatusBadRequest, CodeBadRequest},
		{"run unknown analysis", http.MethodPost, ts.URL + "/run/nope", []byte(`{}`),
			http.StatusNotFound, CodeUnknownAnaly},
		{"run bad digest", http.MethodPost, ts.URL + "/run/diff",
			[]byte(`{"traces":{"left":"xx","right":"yy"}}`), http.StatusBadRequest, CodeBadRequest},
		{"run missing role", http.MethodPost, ts.URL + "/run/diff",
			[]byte(`{"traces":{"left":"` + gi.ID + `"}}`), http.StatusBadRequest, CodeBadRequest},
		{"run missing class param", http.MethodPost, ts.URL + "/run/protocol",
			[]byte(`{"traces":{"trace":"` + gi.ID + `"}}`), http.StatusBadRequest, CodeBadRequest},
		// Routing-layer errors must wear the envelope too — these are the
		// responses Go's mux would otherwise emit as plain text.
		{"unknown endpoint", http.MethodGet, ts.URL + "/nope", nil, http.StatusNotFound, "not_found"},
		{"method not allowed", http.MethodDelete, ts.URL + "/traces", nil,
			http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		status, raw := doJSON(t, tc.method, tc.url, tc.body, nil)
		if status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.want, raw)
		}
		assertErrEnvelope(t, raw, tc.code)
	}
}

// TestConcurrentDiffsSingleFlight fans out identical diff requests and
// checks the web cache built each side exactly once.
func TestConcurrentDiffsSingleFlight(t *testing.T) {
	good, bad := tracePair(t)
	ts, srv := newTestServer(t, Options{Workers: 8})
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)

	url := fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, gi.ID, bi.ID)
	const G = 8
	results := make([]DiffResponse, G)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if status, raw := doJSON(t, http.MethodGet, url, nil, &results[g]); status != http.StatusOK {
				t.Errorf("goroutine %d: status %d: %s", g, status, raw)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < G; g++ {
		if results[g].NumDiffs != results[0].NumDiffs || results[g].NumSequences != results[0].NumSequences {
			t.Errorf("goroutine %d diverged: %d/%d vs %d/%d", g,
				results[g].NumDiffs, results[g].NumSequences, results[0].NumDiffs, results[0].NumSequences)
		}
	}
	var stats StatsResponse
	if status, raw := doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats); status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, raw)
	}
	if stats.Corpus.WebBuilds != 2 {
		t.Errorf("web builds = %d under %d concurrent diffs, want 2 (single-flight)", stats.Corpus.WebBuilds, G)
	}
	if stats.Corpus.Traces != 2 || stats.Symbols.Distinct == 0 {
		t.Errorf("stats sanity: %+v", stats)
	}
	if stats.Server.Requests == 0 || stats.Server.Workers != 8 {
		t.Errorf("server stats: %+v", stats.Server)
	}
	_ = srv
}

// TestWorkerPoolRejectsWhenSaturated holds every worker slot and checks
// the next analysis request is bounced with 503 rather than queued
// forever.
func TestWorkerPoolRejectsWhenSaturated(t *testing.T) {
	good, _ := tracePair(t)
	ts, srv := newTestServer(t, Options{Workers: 1, QueueTimeout: 50 * time.Millisecond})
	gi := upload(t, ts, good)

	srv.sem <- struct{}{} // occupy the only worker
	defer func() { <-srv.sem }()
	status, raw := doJSON(t, http.MethodGet, ts.URL+"/traces/"+gi.ID+"/views", nil, nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("saturated pool returned %d: %s", status, raw)
	}
}

func TestGracefulShutdown(t *testing.T) {
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(rprism.NewEngine(rprism.WithCorpus(store)), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	if status, _ := doJSON(t, http.MethodGet, url, nil, nil); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestAnalysesEndpoint checks discovery lists every built-in analysis.
func TestAnalysesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var list []rprism.AnalysisInfo
	status, raw := doJSON(t, http.MethodGet, ts.URL+"/analyses", nil, &list)
	if status != http.StatusOK {
		t.Fatalf("analyses: %d %s", status, raw)
	}
	if len(list) < 5 {
		t.Fatalf("only %d analyses listed: %s", len(list), raw)
	}
	have := make(map[string]rprism.AnalysisInfo)
	for _, a := range list {
		have[a.Name] = a
	}
	for _, want := range []string{"diff", "regression", "protocol", "typestate", "impact"} {
		a, ok := have[want]
		if !ok {
			t.Errorf("analysis %q not listed", want)
			continue
		}
		if a.Doc == "" || len(a.Roles) == 0 {
			t.Errorf("analysis %q missing metadata: %+v", want, a)
		}
	}
}

// TestRunDiffMatchesLegacyEndpoint checks POST /run/diff returns exactly
// what GET /diff returns on the same pair.
func TestRunDiffMatchesLegacyEndpoint(t *testing.T) {
	good, bad := tracePair(t)
	ts, _ := newTestServer(t, Options{})
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)

	var legacy DiffResponse
	status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, gi.ID, bi.ID), nil, &legacy)
	if status != http.StatusOK {
		t.Fatalf("legacy diff: %d %s", status, raw)
	}

	body, _ := json.Marshal(RunRequest{Traces: map[string]string{"left": gi.ID, "right": bi.ID}})
	var generic DiffResponse
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/run/diff", body, &generic)
	if status != http.StatusOK {
		t.Fatalf("run diff: %d %s", status, raw)
	}

	if generic.NumDiffs != legacy.NumDiffs || generic.NumSequences != legacy.NumSequences ||
		generic.DiffLeft != legacy.DiffLeft || generic.DiffRight != legacy.DiffRight ||
		generic.Left != legacy.Left || generic.Right != legacy.Right ||
		len(generic.Sequences) != len(legacy.Sequences) {
		t.Errorf("generic and legacy diff disagree:\n%+v\n%+v", generic, legacy)
	}
	if generic.NumDiffs == 0 {
		t.Error("no differences on the planted-bug pair")
	}
}

// TestRunRegressionMatchesLegacyEndpoint checks POST /run/regression
// returns exactly what POST /analyze returns on the same protocol.
func TestRunRegressionMatchesLegacyEndpoint(t *testing.T) {
	good, bad := tracePair(t)
	ts, _ := newTestServer(t, Options{})
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)

	legacyBody, _ := json.Marshal(AnalyzeRequest{
		OrigCorrect: gi.ID, NewCorrect: gi.ID, OrigRegr: gi.ID, NewRegr: bi.ID,
	})
	var legacy AnalyzeResponse
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/analyze", legacyBody, &legacy)
	if status != http.StatusOK {
		t.Fatalf("legacy analyze: %d %s", status, raw)
	}

	genericBody, _ := json.Marshal(RunRequest{Traces: map[string]string{
		"orig_correct": gi.ID, "new_correct": gi.ID, "orig_regr": gi.ID, "new_regr": bi.ID,
	}})
	var generic AnalyzeResponse
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/run/regression", genericBody, &generic)
	if status != http.StatusOK {
		t.Fatalf("run regression: %d %s", status, raw)
	}

	if generic.Sizes != legacy.Sizes || generic.Candidates != legacy.Candidates ||
		generic.Report != legacy.Report {
		t.Errorf("generic and legacy regression disagree:\n%+v\n%+v", generic, legacy)
	}
}

// TestRunPluggableAnalyses drives the registry-only analyses (no legacy
// endpoint ever existed for them) through the generic route.
func TestRunPluggableAnalyses(t *testing.T) {
	good, bad := tracePair(t)
	ts, _ := newTestServer(t, Options{})
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)

	// protocol: infer the Machine class's protocol out of the trace.
	body, _ := json.Marshal(RunRequest{
		Traces: map[string]string{"trace": gi.ID},
		Params: json.RawMessage(`{"class": "Machine"}`),
	})
	var protoResp struct {
		Analysis string `json:"analysis"`
		Result   struct {
			Class   string `json:"Class"`
			Objects int    `json:"Objects"`
		} `json:"result"`
	}
	status, raw := doJSON(t, http.MethodPost, ts.URL+"/run/protocol", body, &protoResp)
	if status != http.StatusOK {
		t.Fatalf("run protocol: %d %s", status, raw)
	}
	if protoResp.Analysis != "protocol" || protoResp.Result.Class != "Machine" {
		t.Errorf("protocol result: %s", raw)
	}

	// impact: renders through the generic wrapper with a ranked surface.
	body, _ = json.Marshal(RunRequest{Traces: map[string]string{"left": gi.ID, "right": bi.ID}})
	var impactResp struct {
		Analysis string `json:"analysis"`
		Result   struct {
			Total int `json:"Total"`
		} `json:"result"`
	}
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/run/impact", body, &impactResp)
	if status != http.StatusOK {
		t.Fatalf("run impact: %d %s", status, raw)
	}
	if impactResp.Result.Total == 0 {
		t.Errorf("impact surface empty: %s", raw)
	}

	// typestate: an over-permissive protocol yields zero violations.
	body, _ = json.Marshal(RunRequest{
		Traces: map[string]string{"trace": gi.ID},
		Params: json.RawMessage(`{"class": "NoSuchClass", "allowed": {}}`),
	})
	var tsResp struct {
		Analysis string            `json:"analysis"`
		Result   []json.RawMessage `json:"result"`
	}
	status, raw = doJSON(t, http.MethodPost, ts.URL+"/run/typestate", body, &tsResp)
	if status != http.StatusOK {
		t.Fatalf("run typestate: %d %s", status, raw)
	}
	if tsResp.Result == nil {
		t.Errorf("typestate result not a JSON array: %s", raw)
	}
}

// slowServerPair builds a trace pair whose views-based diff runs for
// seconds uncancelled: single-threaded, wholly dissimilar, so every
// divergence pays escalating correspondence scans.
func slowServerPair(n int) (*trace.Trace, *trace.Trace) {
	mk := func(side string) *trace.Trace {
		tr := trace.New(side)
		for i := 0; i < n; i++ {
			m := fmt.Sprintf("%s.m%d/0", side, i)
			tr.Append(1, m, trace.Repr{}, trace.Event{Kind: trace.KindCall, Member: m})
		}
		return tr
	}
	return mk("TimeoutL"), mk("TimeoutR")
}

// TestServerRequestTimeout checks the server-side deadline kills a
// runaway diff promptly with the 504 envelope instead of letting it run
// for seconds. Run under -race in CI.
func TestServerRequestTimeout(t *testing.T) {
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, r := slowServerPair(12000)
	lid, _, err := store.Put(l)
	if err != nil {
		t.Fatal(err)
	}
	rid, _, err := store.Put(r)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(rprism.NewEngine(rprism.WithCorpus(store)), Options{RequestTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	start := time.Now()
	status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, lid, rid), nil, nil)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("runaway diff: status %d (in %v): %s", status, elapsed, raw)
	}
	assertErrEnvelope(t, raw, CodeTimeout)
	// Uncancelled this diff runs for seconds; the deadline must bound it
	// near the 100ms budget (slack for -race and web building).
	if elapsed > 3*time.Second {
		t.Errorf("timed-out request returned after %v", elapsed)
	}

	var stats StatsResponse
	if status, raw := doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats); status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, raw)
	}
	if stats.Server.Timeouts == 0 {
		t.Error("timeout not counted in server stats")
	}
}

// TestDiffParallelismKnob drives the serve wiring of the intra-diff
// worker knob end to end: the engine default shows up in /stats, and a
// per-request "parallelism" param changes scheduling but never the
// response — compares included.
func TestDiffParallelismKnob(t *testing.T) {
	good, bad := tracePair(t)
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The rprism-serve wiring: request pool mirrored into the engine's
	// worker budget so intra-diff workers are clamped to the same slots.
	srv := New(rprism.NewEngine(rprism.WithCorpus(store),
		rprism.WithWorkers(4), rprism.WithDiffParallelism(4)), Options{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	gi := upload(t, ts, good)
	bi := upload(t, ts, bad)

	var base DiffResponse
	if status, raw := doJSON(t, http.MethodGet,
		fmt.Sprintf("%s/diff?left=%s&right=%s", ts.URL, gi.ID, bi.ID), nil, &base); status != http.StatusOK {
		t.Fatalf("diff: %d %s", status, raw)
	}
	for _, par := range []int{1, 8} {
		body, _ := json.Marshal(map[string]any{
			"traces": map[string]string{"left": gi.ID, "right": bi.ID},
			"params": map[string]int{"parallelism": par},
		})
		var res DiffResponse
		if status, raw := doJSON(t, http.MethodPost, ts.URL+"/run/diff", body, &res); status != http.StatusOK {
			t.Fatalf("run/diff parallelism=%d: %d %s", par, status, raw)
		}
		if res.NumDiffs != base.NumDiffs || res.NumSequences != base.NumSequences ||
			res.Compares != base.Compares {
			t.Errorf("parallelism=%d diverged from default: %d diffs/%d seqs/%d compares vs %d/%d/%d",
				par, res.NumDiffs, res.NumSequences, res.Compares,
				base.NumDiffs, base.NumSequences, base.Compares)
		}
	}

	var stats StatsResponse
	if status, raw := doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats); status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, raw)
	}
	if stats.Server.DiffParallelism != 4 {
		t.Errorf("stats diff_parallelism = %d, want 4", stats.Server.DiffParallelism)
	}
}

// TestUploadSniffsFormats uploads the same trace in all three file
// encodings; each must land on the identical content digest (the digest
// is format-independent), with the later two deduplicating.
func TestUploadSniffsFormats(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	tr, _ := tracePair(t)

	var rseg, jsonl bytes.Buffer
	if err := tr.WriteRSEG(&rseg); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	bodies := [][]byte{rseg.Bytes(), gobBytes(t, tr), jsonl.Bytes()}

	var first TraceInfo
	for i, body := range bodies {
		var info TraceInfo
		status, raw := doJSON(t, http.MethodPut, ts.URL+"/traces", body, &info)
		switch {
		case i == 0 && status != http.StatusCreated:
			t.Fatalf("rseg upload: status %d: %s", status, raw)
		case i > 0 && status != http.StatusOK:
			t.Fatalf("upload %d should deduplicate (200), got %d: %s", i, status, raw)
		}
		if i == 0 {
			first = info
		} else if info.ID != first.ID {
			t.Fatalf("format %d digest %s != rseg digest %s", i, info.ID, first.ID)
		}
	}
	if _, raw := doJSON(t, http.MethodGet, ts.URL+"/traces/"+first.ID, nil, nil); raw == "" {
		t.Fatal("stored trace not retrievable")
	}
}
