package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	rprism "repro"
	"repro/internal/corpus"
	"repro/internal/sentinel"
	"repro/internal/trace"
)

// The watch surface: attach always-on regression sentinels to live
// capture sessions. A watch pins a stored baseline against a session
// and re-diffs incrementally on every appended segment; divergence
// events stream out over per-watch SSE connections
// (GET /watches/{id}/events) and the watch's optional webhook.

// ssePingInterval keeps idle event streams alive through proxies and
// lets dead client connections surface.
const ssePingInterval = 15 * time.Second

// WatchRequest is the POST /watches body.
type WatchRequest struct {
	// Session is the live session to watch: its id, with or without the
	// "session:" prefix the diff endpoints use.
	Session string `json:"session"`
	// Baseline is the pinned baseline's content digest.
	Baseline string `json:"baseline"`
	// Analysis names the analysis semantics (default "regression").
	Analysis string `json:"analysis,omitempty"`
	// Webhook receives divergence events as JSON POSTs (at-least-once).
	Webhook string `json:"webhook,omitempty"`
	// ExpectedOld/ExpectedNew name an expected-change trace pair whose
	// diff signatures are subtracted from the candidate set.
	ExpectedOld string `json:"expected_old,omitempty"`
	ExpectedNew string `json:"expected_new,omitempty"`
	// Parallelism overrides the intra-diff worker count of the watch's
	// evaluations.
	Parallelism int `json:"parallelism,omitempty"`
}

func (s *Server) handleCreateWatch(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Session == "" || req.Baseline == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("a watch needs both \"session\" and \"baseline\""))
		return
	}
	if _, err := trace.ParseDigest(req.Baseline); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("baseline: %w", err))
		return
	}
	// Attaching resolves the baseline web (and the optional
	// expected-change diff) — heavy work, so it queues like any other
	// analysis request. The watch itself is not bound to this request:
	// it lives until the session ends or DELETE /watches/{id}.
	if err := s.acquire(r); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	}
	defer s.release()
	ctx, cancel := s.analysisCtx(r)
	defer cancel()
	watch, err := s.eng.WatchSession(ctx, strings.TrimPrefix(req.Session, "session:"), rprismWatchConfig(req))
	if err != nil {
		switch {
		case errors.Is(err, corpus.ErrSessionNotFound), errors.Is(err, corpus.ErrNotFound):
			writeErr(w, http.StatusNotFound, CodeNotFound, err)
		case errors.Is(err, sentinel.ErrMonitorClosed):
			writeErr(w, http.StatusServiceUnavailable, CodeInternal, err)
		default:
			s.writeAnalysisErr(w, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, watch.Info())
}

func (s *Server) handleListWatches(w http.ResponseWriter, r *http.Request) {
	infos := s.eng.Sentinel().List()
	if infos == nil {
		infos = []sentinel.Info{}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) watchByID(w http.ResponseWriter, r *http.Request) (*sentinel.Watch, bool) {
	id := r.PathValue("id")
	watch, ok := s.eng.Sentinel().Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("no watch %q (it may have closed with its session)", id))
		return nil, false
	}
	return watch, true
}

func (s *Server) handleGetWatch(w http.ResponseWriter, r *http.Request) {
	watch, ok := s.watchByID(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, watch.Info())
}

func (s *Server) handleDeleteWatch(w http.ResponseWriter, r *http.Request) {
	watch, ok := s.watchByID(w, r)
	if !ok {
		return
	}
	s.eng.Sentinel().Detach(watch.ID())
	// The terminal event reaches SSE subscribers before Done closes.
	select {
	case <-watch.Done():
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, watch.Info())
}

// handleWatchEvents is the per-watch SSE stream: buffered events replay
// from the ring (from ?after= or the standard Last-Event-ID header),
// live events follow as they are emitted, and the stream ends after the
// terminal watch-closed event. Event frames carry the per-watch
// sequence number as the SSE id, so a reconnecting client resumes
// exactly where it dropped.
func (s *Server) handleWatchEvents(w http.ResponseWriter, r *http.Request) {
	watch, ok := s.watchByID(w, r)
	if !ok {
		return
	}
	after := uint64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			after = n
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad after=%q: %w", v, err))
			return
		}
		after = n
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return // connection cannot stream; nothing sensible to send
	}

	sig, cancel := watch.Notify()
	defer cancel()
	ping := time.NewTicker(ssePingInterval)
	defer ping.Stop()
	for {
		events, ended := watch.EventsSince(after)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return
			}
			after = ev.Seq
		}
		if len(events) > 0 {
			if err := rc.Flush(); err != nil {
				return
			}
		}
		if ended {
			// Everything buffered is out and no further events can
			// follow the terminal one: end the stream cleanly.
			if rest, _ := watch.EventsSince(after); len(rest) == 0 {
				return
			}
			continue
		}
		select {
		case <-sig:
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func rprismWatchConfig(req WatchRequest) (cfg rprism.WatchConfig) {
	cfg.Baseline = req.Baseline
	cfg.Analysis = req.Analysis
	cfg.Webhook = req.Webhook
	cfg.ExpectedOld = req.ExpectedOld
	cfg.ExpectedNew = req.ExpectedNew
	cfg.DiffOpts.Parallelism = req.Parallelism
	return cfg
}
