package sentinel

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/regression"
	"repro/internal/trace"
)

// fixture builds a deterministic multi-thread, multi-view trace.
func fixture(n, threads int) *trace.Trace {
	t := trace.New("fix")
	for i := 0; i < n; i++ {
		obj := trace.Repr{Loc: trace.Loc(1 + i%7), Class: "Node", Seq: 1 + i%7}
		t.Append(trace.ThreadID(i%threads), fmt.Sprintf("C.m%d/0", i%4), obj,
			trace.Event{Kind: trace.KindCall, Target: obj, Member: fmt.Sprintf("C.m%d/0", (i+1)%4),
				Args: []trace.Repr{trace.PrimRepr("Int", fmt.Sprint(i%11))}})
	}
	return t
}

// watchFixture stores a baseline, opens a live session, and attaches a
// watch to it.
func watchFixture(t *testing.T, opts Options, spec func(*Spec)) (*Monitor, *corpus.Store, *corpus.Session, *Watch, *trace.Trace) {
	t.Helper()
	store, err := corpus.New(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := fixture(240, 3)
	dig, _, err := store.Put(base)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := store.Views(dig)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := store.OpenSession("live")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Debounce == 0 {
		opts.Debounce = -1 // tests want immediate evaluations
	}
	m := New(opts)
	t.Cleanup(m.Close)
	s := Spec{Session: sess, Baseline: wl, BaselineDigest: dig}
	if spec != nil {
		spec(&s)
	}
	w, err := m.Attach(s)
	if err != nil {
		t.Fatal(err)
	}
	return m, store, sess, w, base
}

// waitKind blocks until the watch emits an event of the given kind.
func waitKind(t *testing.T, w *Watch, kind EventKind) Event {
	t.Helper()
	sig, cancel := w.Notify()
	defer cancel()
	deadline := time.After(5 * time.Second)
	after := uint64(0)
	for {
		evs, _ := w.EventsSince(after)
		for _, ev := range evs {
			after = ev.Seq
			if ev.Kind == kind {
				return ev
			}
		}
		select {
		case <-sig:
		case <-deadline:
			t.Fatalf("timed out waiting for %s event (have %v)", kind, evs)
		}
	}
}

func awaitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestWatchDivergenceAndControl is the core sentinel contract: a session
// replaying its baseline verbatim never alarms; a session that inserts
// novel events raises exactly one divergence event, within one appended
// segment of the first divergent entry.
func TestWatchDivergenceAndControl(t *testing.T) {
	// Control: clean replay, segment by segment, then clean close.
	m, _, sess, w, base := watchFixture(t, Options{}, nil)
	for lo := 0; lo < base.Len(); lo += 60 {
		hi := lo + 60
		if hi > base.Len() {
			hi = base.Len()
		}
		if _, err := sess.Append(base.Entries[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	closed := waitKind(t, w, EventWatchClosed)
	all, _ := w.EventsSince(0)
	for _, ev := range all {
		if ev.Kind == EventDivergence {
			t.Fatalf("control session raised a divergence event: %+v", ev)
		}
	}
	if got := m.Counters().Divergences.Load(); got != 0 {
		t.Fatalf("control: divergence counter = %d", got)
	}
	if closed.Reason == "" {
		t.Fatal("terminal event carries no reason")
	}
	<-w.Done() // terminal event precedes removal; Done closes after it
	if m.WatchCount() != 0 {
		t.Fatalf("closed watch still attached: %d", m.WatchCount())
	}

	// Divergence: replay a prefix, then a segment with novel calls.
	m2, _, sess2, w2, base2 := watchFixture(t, Options{}, nil)
	if _, err := sess2.Append(base2.Entries[:120]); err != nil {
		t.Fatal(err)
	}
	divergent := trace.New("live")
	for _, e := range base2.Entries[:120] {
		divergent.Append(e.TID, e.Method, e.Self, e.Event)
	}
	novel := trace.Repr{Loc: trace.Loc(500), Class: "Bug", Seq: 9}
	for k := 0; k < 12; k++ {
		divergent.Append(0, "Bug.trip/0", novel,
			trace.Event{Kind: trace.KindCall, Target: novel, Member: "Bug.trip/0"})
	}
	if _, err := sess2.Append(divergent.Entries[120:]); err != nil {
		t.Fatal(err)
	}
	ev := waitKind(t, w2, EventDivergence)
	if ev.SessionID != sess2.ID() {
		t.Fatalf("event session = %q, want %q", ev.SessionID, sess2.ID())
	}
	if ev.Baseline == "" {
		t.Fatal("event carries no baseline digest")
	}
	if ev.Candidates == 0 || len(ev.Summary) == 0 {
		t.Fatalf("event carries no candidates: %+v", ev)
	}
	if ev.Watermark != trace.EntryID(divergent.Len()-1) {
		t.Fatalf("watermark = %d, want %d", ev.Watermark, divergent.Len()-1)
	}
	if info := w2.Info(); !info.Diverged {
		t.Fatalf("watch info not diverged: %+v", info)
	}
	if got := m2.Counters().Divergences.Load(); got != 1 {
		t.Fatalf("divergence counter = %d, want 1", got)
	}
	// More appends after divergence must not re-alarm (edge-triggered).
	for k := 0; k < 5; k++ {
		divergent.Append(0, "Bug.trip/0", novel,
			trace.Event{Kind: trace.KindCall, Target: novel, Member: "Bug.trip/0"})
	}
	if _, err := sess2.Append(divergent.Entries[132:]); err != nil {
		t.Fatal(err)
	}
	sess2.Abort()
	waitKind(t, w2, EventWatchClosed)
	n := 0
	all2, _ := w2.EventsSince(0)
	for _, e := range all2 {
		if e.Kind == EventDivergence {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("got %d divergence events, want exactly 1", n)
	}
}

// TestWatchExpectedSignaturesSuppress pins the D = (A − B) ∩ C
// subtraction: right-side differences whose signature matches the
// expected change do not alarm.
func TestWatchExpectedSignaturesSuppress(t *testing.T) {
	novel := trace.Repr{Loc: trace.Loc(501), Class: "Feature", Seq: 3}
	mkEntry := func() (trace.ThreadID, string, trace.Repr, trace.Event) {
		return 0, "Feature.new/0", novel,
			trace.Event{Kind: trace.KindCall, Target: novel, Member: "Feature.new/0"}
	}
	tid, meth, self, evt := mkEntry()
	probe := trace.New("probe")
	probe.Append(tid, meth, self, evt)
	expected := map[regression.Signature]bool{
		regression.EntrySignature(probe.Entries[0]): true,
	}

	_, _, sess, w, base := watchFixture(t, Options{}, func(s *Spec) {
		s.Expected = expected
	})
	live := trace.New("live")
	for _, e := range base.Entries[:100] {
		live.Append(e.TID, e.Method, e.Self, e.Event)
	}
	for k := 0; k < 10; k++ {
		live.Append(tid, meth, self, evt)
	}
	if _, err := sess.Append(live.Entries); err != nil {
		t.Fatal(err)
	}
	sess.Abort()
	waitKind(t, w, EventWatchClosed)
	all, _ := w.EventsSince(0)
	for _, ev := range all {
		if ev.Kind == EventDivergence {
			t.Fatalf("expected-change difference raised an alarm: %+v", ev)
		}
	}
}

// TestWatchDetachAndSessionDeleteLeakFree is the graceful-detach
// satellite: detaching a watch, and deleting (aborting) a watched
// session, both emit a terminal watch-closed event, cancel the loop,
// and leak no goroutines.
func TestWatchDetachAndSessionDeleteLeakFree(t *testing.T) {
	baseline := runtime.NumGoroutine()

	m, _, sess, w, base := watchFixture(t, Options{}, nil)
	if _, err := sess.Append(base.Entries[:50]); err != nil {
		t.Fatal(err)
	}
	if !m.Detach(w.ID()) {
		t.Fatal("Detach reported unknown watch")
	}
	ev := waitKind(t, w, EventWatchClosed)
	if ev.Reason != reasonDetached {
		t.Fatalf("reason = %q, want %q", ev.Reason, reasonDetached)
	}
	<-w.Done()
	if _, ok := m.Get(w.ID()); ok {
		t.Fatal("detached watch still resolvable")
	}
	if m.Detach(w.ID()) {
		t.Fatal("second Detach reported success")
	}
	// The session outlives the watch.
	if _, err := sess.Append(base.Entries[50:100]); err != nil {
		t.Fatal(err)
	}
	sess.Abort()

	// Session deleted (DELETE /sessions/{id} calls Abort) with a watch
	// attached: terminal event, loop gone.
	m2, _, sess2, w2, base2 := watchFixture(t, Options{}, nil)
	if _, err := sess2.Append(base2.Entries[:30]); err != nil {
		t.Fatal(err)
	}
	sess2.Abort()
	ev = waitKind(t, w2, EventWatchClosed)
	if ev.Reason != "session aborted" {
		t.Fatalf("reason = %q, want session aborted", ev.Reason)
	}
	<-w2.Done()

	m.Close()
	m2.Close()
	awaitGoroutines(t, baseline)
}

// TestWebhookRetryDelivers pins the at-least-once webhook contract: a
// flaky endpoint that fails twice with 500 still receives the
// divergence event, and the delivery counter records one success.
func TestWebhookRetryDelivers(t *testing.T) {
	var calls, delivered atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(rw, "boom", http.StatusInternalServerError)
			return
		}
		delivered.Add(1)
		rw.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	m, _, sess, w, base := watchFixture(t,
		Options{WebhookBackoff: time.Millisecond},
		func(s *Spec) { s.Webhook = srv.URL })
	live := trace.New("live")
	for _, e := range base.Entries[:80] {
		live.Append(e.TID, e.Method, e.Self, e.Event)
	}
	novel := trace.Repr{Loc: trace.Loc(502), Class: "Bug", Seq: 1}
	for k := 0; k < 8; k++ {
		live.Append(1, "Bug.trip/0", novel,
			trace.Event{Kind: trace.KindCall, Target: novel, Member: "Bug.trip/0"})
	}
	if _, err := sess.Append(live.Entries); err != nil {
		t.Fatal(err)
	}
	waitKind(t, w, EventDivergence)

	// Wait on the monitor's counter, not just the handler's: the handler
	// may have written 204 while the delivery goroutine is still reading
	// the response, and Close cancels in-flight requests.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && m.Counters().WebhookDeliveries.Load() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if delivered.Load() != 1 {
		t.Fatalf("webhook delivered %d times after %d calls, want 1", delivered.Load(), calls.Load())
	}
	sess.Abort()
	waitKind(t, w, EventWatchClosed)
	m.Close() // waits for the delivery goroutine
	if got := m.Counters().WebhookDeliveries.Load(); got != 1 {
		t.Fatalf("delivery counter = %d, want 1", got)
	}
}
